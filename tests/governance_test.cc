// Query lifecycle governance (docs/GOVERNANCE.md): cooperative
// cancellation, in-plan statement deadlines, and per-query memory budgets.
//
// Covers the ExecContext contract directly, then the interpreter-level
// behavior: kills land with the right distinct status (kCancelled /
// kDeadlineExceeded / kResourceExhausted), within a batch boundary, at
// every batch size, for every operator kind; a killed transaction bracket
// leaves the database exactly as if the script never ran; charged memory
// is fully released; the exec.*_total counters and the slow-log
// "killed:<reason>" tag fire.  The deterministic cancel points use the
// exec.cancel.{open,batch,close} failpoints.

#include "mra/exec/exec_context.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>

#include "mra/exec/operator.h"
#include "mra/exec/sort.h"
#include "mra/fault/failpoint.h"
#include "mra/lang/interpreter.h"
#include "mra/obs/metrics.h"
#include "mra/obs/slow_log.h"
#include "mra/obs/trace.h"
#include "mra/txn/database.h"

namespace mra {
namespace exec {
namespace {

class GovernanceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault::FaultRegistry::Global().DisarmAll();
    obs::SlowQueryLog::Global().SetThresholdMs(-1);
    obs::SlowQueryLog::Global().Clear();
  }
};

// --- ExecContext unit contract. -----------------------------------------

TEST_F(GovernanceTest, UngovernedContextAlwaysPasses) {
  ExecContext ctx;
  EXPECT_TRUE(ctx.Check().ok());
  EXPECT_FALSE(ctx.killed());
  EXPECT_EQ(ctx.kill_reason(), KillReason::kNone);
  EXPECT_TRUE(ctx.KillStatus().ok());
}

TEST_F(GovernanceTest, RequestCancelTripsWithCancelledStatus) {
  ExecContext ctx;
  ctx.set_query_id(42);
  ctx.RequestCancel();
  EXPECT_TRUE(ctx.killed());
  EXPECT_EQ(ctx.kill_reason(), KillReason::kCancelled);
  Status s = ctx.Check();
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_NE(s.message().find("42"), std::string::npos);
}

TEST_F(GovernanceTest, FirstKillReasonWins) {
  ExecContext ctx;
  ctx.SetMemoryBudget(10);
  ctx.RequestCancel();
  // The over-budget charge lands after the cancel; the reason must not
  // be overwritten (first-wins), and the status stays kCancelled.
  Status charge = ctx.Charge(1000, "Dedup");
  EXPECT_EQ(ctx.kill_reason(), KillReason::kCancelled);
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);
  (void)charge;
}

TEST_F(GovernanceTest, ChargeOverBudgetTripsNamingOperatorAndHighWater) {
  ExecContext ctx;
  ctx.set_query_id(7);
  ctx.SetMemoryBudget(1000);
  EXPECT_TRUE(ctx.Charge(600, "HashJoin").ok());
  EXPECT_EQ(ctx.mem_used(), 600u);
  Status s = ctx.Charge(600, "HashGroupBy");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.kill_reason(), KillReason::kMemory);
  EXPECT_NE(s.message().find("HashGroupBy"), std::string::npos);
  EXPECT_NE(s.message().find("1200"), std::string::npos);  // High water.
  EXPECT_NE(s.message().find("1000"), std::string::npos);  // Budget.
  // Releasing everything floors at zero and keeps the high-water mark.
  ctx.Release(600);
  ctx.Release(9999);
  EXPECT_EQ(ctx.mem_used(), 0u);
  EXPECT_EQ(ctx.mem_high_water(), 1200u);
}

TEST_F(GovernanceTest, DeadlineInThePastKillsAtFirstCheck) {
  ExecContext ctx;
  ctx.set_query_id(9);
  ctx.SetDeadlineAfterMs(1);
  // Busy-wait past the deadline; 1ms is well under test patience.
  auto until = std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  while (std::chrono::steady_clock::now() < until) {
  }
  Status s = ctx.Check();
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ctx.kill_reason(), KillReason::kDeadline);
  EXPECT_NE(s.message().find("1ms"), std::string::npos);
}

TEST_F(GovernanceTest, CancelTokenIsObservedByCheck) {
  ExecContext ctx;
  auto token = std::make_shared<std::atomic<bool>>(false);
  ctx.SetCancelToken(token);
  EXPECT_TRUE(ctx.Check().ok());
  token->store(true);  // What a SIGINT handler would do.
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);
}

TEST_F(GovernanceTest, KillReasonNamesAreStable) {
  EXPECT_EQ(KillReasonName(KillReason::kNone), "none");
  EXPECT_EQ(KillReasonName(KillReason::kCancelled), "cancelled");
  EXPECT_EQ(KillReasonName(KillReason::kDeadline), "deadline");
  EXPECT_EQ(KillReasonName(KillReason::kMemory), "mem_budget");
}

// --- Interpreter-level governance. --------------------------------------

// Seeds r (60 distinct 2-int tuples, some with multiplicity) and s (a
// second relation for joins), plus an empty tally for the differential
// test.  Big enough that products/joins cross many batch boundaries.
std::unique_ptr<Database> MakeDb() {
  auto db = std::move(Database::Open({}).value());
  lang::Interpreter interp(db.get());
  std::string script =
      "create r(a: int, b: int); create s(b: int, c: int);"
      "create tally(n: int);";
  script += "insert(r, {";
  for (int i = 0; i < 60; ++i) {
    script += (i ? "," : "") + std::string("(") + std::to_string(i) + "," +
              std::to_string(i % 7) + ")" + (i % 5 == 0 ? " : 2" : "");
  }
  script += "});";
  script += "insert(s, {";
  for (int i = 0; i < 60; ++i) {
    script += (i ? "," : "") + std::string("(") + std::to_string(i % 7) +
              "," + std::to_string(i) + ")";
  }
  script += "});";
  Status s = interp.ExecuteScript(script, nullptr);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return db;
}

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->value();
}

// Every operator kind the planner can emit for these queries, each killed
// by the exec.cancel.batch failpoint at batch sizes 1, 7 and 1024: the
// kill must surface as kCancelled, and with the failpoint disarmed the
// very same query must succeed (no poisoned state left behind).
TEST_F(GovernanceTest, BatchBoundaryCancelKillsEveryOperatorKind) {
  auto db = MakeDb();
  const char* queries[] = {
      "r",                                  // Scan
      "select(%1 > 10, r)",                 // Filter
      "project([%1], r)",                   // Compute
      "unique(project([%2], r))",           // Dedup (hash)
      "union(r, r)",                        // Union
      "diff(r, r)",                         // Difference
      "intersect(r, r)",                    // Intersect
      "product(r, s)",                      // NestedLoopJoin (product)
      "join(%2 = %3, r, s)",                // HashJoin (equi)
      "join(%2 < %3, r, s)",                // NestedLoopJoin (theta)
      "groupby([%2], cnt(%1), r)",          // HashGroupBy
  };
  for (bool hash_ops : {true, false}) {
    for (size_t batch : {size_t{1}, size_t{7}, size_t{1024}}) {
      lang::InterpreterOptions options;
      options.exec.batch_size = batch;
      options.exec.hash_ops = hash_ops;
      lang::Interpreter interp(db.get(), options);
      for (const char* q : queries) {
        uint64_t cancelled_before = CounterValue("exec.cancelled_total");
        ASSERT_TRUE(fault::FaultRegistry::Global()
                        .ConfigureFromSpec("exec.cancel.batch=error")
                        .ok());
        auto killed = interp.Query(q);
        fault::FaultRegistry::Global().DisarmAll();
        ASSERT_FALSE(killed.ok())
            << q << " survived an armed cancel (batch=" << batch << ")";
        EXPECT_EQ(killed.status().code(), StatusCode::kCancelled) << q;
        EXPECT_EQ(CounterValue("exec.cancelled_total"), cancelled_before + 1);
        auto clean = interp.Query(q);
        EXPECT_TRUE(clean.ok())
            << q << " failed after disarm: " << clean.status().ToString();
      }
    }
  }
}

TEST_F(GovernanceTest, CancelAtOpenUnwindsTheWholeTree) {
  auto db = MakeDb();
  lang::Interpreter interp(db.get());
  ASSERT_TRUE(fault::FaultRegistry::Global()
                  .ConfigureFromSpec("exec.cancel.open=error")
                  .ok());
  auto killed = interp.Query("join(%2 = %3, unique(r), s)");
  ASSERT_FALSE(killed.ok());
  EXPECT_EQ(killed.status().code(), StatusCode::kCancelled);
  fault::FaultRegistry::Global().DisarmAll();
  EXPECT_TRUE(interp.Query("join(%2 = %3, unique(r), s)").ok());
}

TEST_F(GovernanceTest, CancelAtCloseIsTooLateToAffectTheResult) {
  auto db = MakeDb();
  lang::Interpreter interp(db.get());
  ASSERT_TRUE(fault::FaultRegistry::Global()
                  .ConfigureFromSpec("exec.cancel.close=error")
                  .ok());
  // Close() never fails: a cancel landing there only marks the context,
  // after the result has already been drained.
  auto result = interp.Query("unique(project([%2], r))");
  EXPECT_TRUE(result.ok()) << result.status().ToString();
}

TEST_F(GovernanceTest, StatementTimeoutKillsWithDeadlineExceeded) {
  auto db = MakeDb();
  lang::InterpreterOptions options;
  options.governance.statement_timeout_ms = 1;
  lang::Interpreter interp(db.get(), options);
  uint64_t before = CounterValue("exec.deadline_exceeded_total");
  // 60^3 = 216k product rows plus a dedup build: far past 1ms.
  auto killed = interp.Query("unique(product(r, product(r, r)))");
  ASSERT_FALSE(killed.ok());
  EXPECT_EQ(killed.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(killed.status().message().find("statement timeout"),
            std::string::npos);
  EXPECT_EQ(CounterValue("exec.deadline_exceeded_total"), before + 1);
  // The interpreter is reusable after a deadline kill.
  EXPECT_TRUE(interp.Query("select(%1 > 50, r)").ok());
}

TEST_F(GovernanceTest, MemoryBudgetKillsWithResourceExhausted) {
  auto db = MakeDb();
  lang::InterpreterOptions options;
  options.governance.query_mem_budget_bytes = 4 * 1024;  // Far below the build size.
  lang::Interpreter interp(db.get(), options);
  uint64_t before = CounterValue("exec.mem_rejected_total");
  auto killed = interp.Query("unique(product(r, s))");
  ASSERT_FALSE(killed.ok());
  EXPECT_EQ(killed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(killed.status().message().find("budget"), std::string::npos);
  EXPECT_EQ(CounterValue("exec.mem_rejected_total"), before + 1);
  // Small queries fit the same budget; the interpreter is reusable.
  auto small = interp.Query("select(%1 > 58, r)");
  EXPECT_TRUE(small.ok()) << small.status().ToString();
}

TEST_F(GovernanceTest, KilledBracketLeavesDatabaseAsIfNeverRun) {
  auto db = MakeDb();
  Relation r_before = **db->catalog().GetRelation("r");
  Relation tally_before = **db->catalog().GetRelation("tally");

  lang::InterpreterOptions options;
  options.governance.query_mem_budget_bytes = 4 * 1024;
  lang::Interpreter interp(db.get(), options);
  // The bracket mutates tally, then dies on the over-budget query: the
  // whole transaction must roll back — the differential guarantee.
  Status s = interp.ExecuteScript(
      "begin insert(tally, {(1), (2)});"
      "      x := unique(product(r, s)); ? x end;",
      nullptr);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);

  EXPECT_TRUE(**db->catalog().GetRelation("r") == r_before);
  EXPECT_TRUE(**db->catalog().GetRelation("tally") == tally_before);
  EXPECT_EQ((*db->catalog().GetRelation("tally"))->size(), 0u);
}

TEST_F(GovernanceTest, CancelTokenCancelsLikeCtrlC) {
  auto db = MakeDb();
  lang::InterpreterOptions options;
  options.governance.cancel_token = std::make_shared<std::atomic<bool>>(false);
  lang::Interpreter interp(db.get(), options);
  // Token down: queries run normally.
  EXPECT_TRUE(interp.Query("r").ok());
  // Token up before the query (a Ctrl-C that lands just as it starts):
  // the first batch-boundary check sees it.
  options.governance.cancel_token->store(true);
  auto killed = interp.Query("unique(product(r, s))");
  ASSERT_FALSE(killed.ok());
  EXPECT_EQ(killed.status().code(), StatusCode::kCancelled);
  // The REPL resets the token before the next statement.
  options.governance.cancel_token->store(false);
  EXPECT_TRUE(interp.Query("r").ok());
}

TEST_F(GovernanceTest, CancelQueryAppliesPendingCancelToThatQueryOnly) {
  auto db = MakeDb();
  lang::Interpreter interp(db.get());
  {
    // Cancel-before-open: the id is remembered and kills the matching
    // query the moment it starts.
    obs::ScopedQueryId qid(777001);
    interp.CancelQuery(777001);
    auto killed = interp.Query("r");
    ASSERT_FALSE(killed.ok());
    EXPECT_EQ(killed.status().code(), StatusCode::kCancelled);
  }
  {
    // A pending id for a *different* query is stale: it must not leak
    // onto the query that actually runs next.
    obs::ScopedQueryId qid(777002);
    interp.CancelQuery(999999);
    EXPECT_TRUE(interp.Query("r").ok());
  }
  {
    // And it was consumed — the id it named can run later unharmed.
    obs::ScopedQueryId qid(999999);
    EXPECT_TRUE(interp.Query("r").ok());
  }
}

TEST_F(GovernanceTest, SlowLogTagsKillsWithTheReason) {
  auto db = MakeDb();
  // Threshold so high nothing qualifies on latency — only the governed
  // kill forces an entry, carrying the killed:<reason> event tag.
  obs::SlowQueryLog::Global().Clear();
  obs::SlowQueryLog::Global().SetThresholdMs(3'600'000);

  lang::InterpreterOptions options;
  options.governance.query_mem_budget_bytes = 4 * 1024;
  lang::Interpreter interp(db.get(), options);
  ASSERT_FALSE(interp.Query("unique(product(r, s))").ok());
  std::string lines = obs::SlowQueryLog::Global().RenderJsonLines();
  EXPECT_NE(lines.find("killed:mem_budget"), std::string::npos) << lines;

  obs::SlowQueryLog::Global().Clear();
  ASSERT_TRUE(fault::FaultRegistry::Global()
                  .ConfigureFromSpec("exec.cancel.batch=error")
                  .ok());
  ASSERT_FALSE(interp.Query("r").ok());
  fault::FaultRegistry::Global().DisarmAll();
  lines = obs::SlowQueryLog::Global().RenderJsonLines();
  EXPECT_NE(lines.find("killed:cancelled"), std::string::npos) << lines;
}

TEST_F(GovernanceTest, ExplainAnalyzeIsGovernedPlainExplainIsNot) {
  auto db = MakeDb();
  lang::InterpreterOptions options;
  options.governance.cancel_token = std::make_shared<std::atomic<bool>>(true);
  lang::Interpreter interp(db.get(), options);
  // `explain analyze` executes the plan for real, so governance applies.
  auto analyzed = interp.ExplainAnalyze("unique(product(r, s))");
  ASSERT_FALSE(analyzed.ok());
  EXPECT_EQ(analyzed.status().code(), StatusCode::kCancelled);
  // Plain `explain` never executes — a raised token must not block it.
  EXPECT_TRUE(interp.Explain("unique(product(r, s))").ok());
}

// --- Spill governance: budget-pressure spill and kill-mid-spill. ---------

// Run files the sort spilled and did not reclaim (both published runs and
// in-flight .tmp files land under the mra_sort_ prefix).
size_t LeakedRunFiles() {
  size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(
           std::filesystem::temp_directory_path())) {
    if (entry.path().filename().string().rfind("mra_sort_", 0) == 0) ++n;
  }
  return n;
}

TEST_F(GovernanceTest, SortUnderBudgetPressureSpillsInsteadOfDying) {
  // The sort's working set (60×60 product rows) is far past the 64 KiB
  // budget; a materialising operator would be killed with
  // kResourceExhausted — the sort must instead shed runs to disk and
  // complete.  (The budget still fits the product's own build side.)
  auto db = MakeDb();
  lang::InterpreterOptions options;
  options.governance.query_mem_budget_bytes = 64 * 1024;
  lang::Interpreter interp(db.get(), options);
  auto analyzed = interp.ExplainAnalyze("sort([%1, -%3], product(r, s))");
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_NE(analyzed->find("spill:"), std::string::npos) << *analyzed;
  EXPECT_EQ(LeakedRunFiles(), 0u);
}

TEST_F(GovernanceTest, KillMidSpillCleansUpRunFilesAndBudget) {
  // Each failpoint interrupts the spill at a different stage: creating a
  // run (write), publishing it (rename), and re-reading it during the
  // merge (read).  Every stage must unwind to zero run files and zero
  // charged bytes, and the same query must succeed once disarmed.
  auto db = MakeDb();
  const Relation& r = **db->catalog().GetRelation("r");
  for (const char* spec : {"sort.spill.write=error", "sort.spill.rename=error",
                           "sort.spill.read=error"}) {
    size_t files_before = LeakedRunFiles();
    ExecContext ctx;
    ctx.SetMemoryBudget(2048);  // Arms the budget-derived spill threshold.
    SortOp op({0}, {false}, 0, 0, std::make_unique<ScanOp>(&r));
    op.SetExecContext(&ctx);
    ASSERT_TRUE(
        fault::FaultRegistry::Global().ConfigureFromSpec(spec).ok());
    auto killed = ExecuteToRelation(op, 1024);
    fault::FaultRegistry::Global().DisarmAll();
    ASSERT_FALSE(killed.ok()) << spec << " did not fire";
    EXPECT_EQ(LeakedRunFiles(), files_before) << spec << " leaked run files";
    EXPECT_EQ(ctx.mem_used(), 0u) << spec << " leaked charged bytes";
    // Clean retry on the very same operator: no poisoned state.
    auto clean = ExecuteToRelation(op, 1024);
    ASSERT_TRUE(clean.ok()) << spec << ": " << clean.status().ToString();
    EXPECT_TRUE(clean->Equals(r));
    EXPECT_EQ(LeakedRunFiles(), files_before);
  }
}

TEST_F(GovernanceTest, KillMidSpillThroughTheInterpreterIsReusable) {
  auto db = MakeDb();
  lang::InterpreterOptions options;
  options.exec.sort_spill_bytes = 64;
  lang::Interpreter interp(db.get(), options);
  size_t files_before = LeakedRunFiles();
  ASSERT_TRUE(fault::FaultRegistry::Global()
                  .ConfigureFromSpec("sort.spill.write=error")
                  .ok());
  auto killed = interp.Query("sort([-%2], r)");
  fault::FaultRegistry::Global().DisarmAll();
  ASSERT_FALSE(killed.ok());
  EXPECT_EQ(LeakedRunFiles(), files_before);
  auto clean = interp.Query("sort([-%2], r)");
  EXPECT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(LeakedRunFiles(), files_before);
}

TEST_F(GovernanceTest, CancelLandsInsideASpillingSort) {
  // The cooperative cancel must also reach the spill path (the sort drains
  // its child batch-by-batch, so the batch failpoint fires mid-buffering).
  auto db = MakeDb();
  lang::InterpreterOptions options;
  options.exec.sort_spill_bytes = 64;
  lang::Interpreter interp(db.get(), options);
  size_t files_before = LeakedRunFiles();
  ASSERT_TRUE(fault::FaultRegistry::Global()
                  .ConfigureFromSpec("exec.cancel.batch=error")
                  .ok());
  auto killed = interp.Query("sort([%1], product(r, s))");
  fault::FaultRegistry::Global().DisarmAll();
  ASSERT_FALSE(killed.ok());
  EXPECT_EQ(killed.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(LeakedRunFiles(), files_before);
}

TEST_F(GovernanceTest, HashPeakBytesGaugeTracksLiveGrowth) {
  auto db = MakeDb();
  auto* peak = obs::MetricsRegistry::Global().GetGauge("hash.peak_bytes");
  peak->Set(0);
  lang::Interpreter interp(db.get());
  ASSERT_TRUE(interp.Query("unique(product(r, s))").ok());
  // The dedup build flushed its footprint during execution, not only at
  // Close — the gauge must have recorded a real high-water mark.
  EXPECT_GT(peak->value(), 0);
}

}  // namespace
}  // namespace exec
}  // namespace mra
