// Whole-stack integration scenarios: the XRA language, the SQL front end,
// the optimizer, the physical engine, transactions and durability working
// against one database — including restart/recovery in the middle of a
// scenario.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "mra/lang/interpreter.h"
#include "mra/sql/translator.h"
#include "test_util.h"

namespace mra {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("mra_integration_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string path() const { return path_.string(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

TEST(IntegrationTest, XraAndSqlShareOneDatabase) {
  auto db = Database::Open();
  ASSERT_OK(db);
  lang::Interpreter xra(db->get());
  sql::SqlSession sql(db->get());

  // Schema + data through XRA…
  ASSERT_OK(xra.ExecuteScript(
      "create beer(name: string, brewery: string, alcperc: real);"
      "insert(beer, {('pils', 'Guineken', 5.0) : 2,"
      "              ('stout', 'Kirin', 4.2)});",
      nullptr));
  // …more data through SQL…
  ASSERT_OK(sql.Execute("INSERT INTO beer VALUES ('tripel', 'Guineken', 9.0)"));
  // …and both front ends agree on the result of the same query.
  auto via_xra = xra.Query("select(%2 = 'Guineken', beer)");
  auto via_sql = sql.ExecuteCollect(
      "SELECT * FROM beer WHERE brewery = 'Guineken'");
  ASSERT_OK(via_xra);
  ASSERT_OK(via_sql);
  ASSERT_EQ(via_sql->size(), 1u);
  EXPECT_REL_EQ(*via_xra, (*via_sql)[0]);
  EXPECT_EQ(via_xra->size(), 3u);
}

TEST(IntegrationTest, DurableScenarioSurvivesRestartMidway) {
  TempDir dir;
  // Session 1: build an inventory through SQL, mutate through XRA, crash
  // (no checkpoint) with one transaction aborted.
  {
    auto db = Database::Open({.directory = dir.path()});
    ASSERT_OK(db);
    sql::SqlSession sql(db->get());
    ASSERT_OK(sql.Execute(
        "CREATE TABLE stock (item STRING, qty INT, price DECIMAL);"
        "INSERT INTO stock VALUES ('hops', 120, 3), ('malt', 80, 2),"
        "                         ('yeast', 40, 9)"));
    lang::Interpreter xra(db->get());
    // Committed bracket: sell 20 hops.
    ASSERT_OK(xra.ExecuteScript(
        "begin"
        "  delete(stock, select(%1 = 'hops', stock));"
        "  insert(stock, {('hops', 100, dec'3')})"
        " end;",
        nullptr));
    // Aborted bracket: a failing statement rolls the whole thing back.
    Status failed = xra.ExecuteScript(
        "begin delete(stock, stock); insert(missing, {(1)}) end;", nullptr);
    EXPECT_FALSE(failed.ok());
  }
  // Session 2: recover, verify, continue with SQL.
  {
    auto db = Database::Open({.directory = dir.path()});
    ASSERT_OK(db);
    sql::SqlSession sql(db->get());
    auto rows = sql.ExecuteCollect("SELECT qty FROM stock WHERE item = 'hops'");
    ASSERT_OK(rows);
    EXPECT_EQ((*rows)[0].Multiplicity(Tuple({Value::Int(100)})), 1u);
    auto count = sql.ExecuteCollect("SELECT COUNT(*) FROM stock");
    ASSERT_OK(count);
    EXPECT_EQ((*count)[0].Multiplicity(Tuple({Value::Int(3)})), 1u);
    ASSERT_OK((*db)->Checkpoint());
  }
  // Session 3: recovery from the checkpoint alone.
  {
    auto db = Database::Open({.directory = dir.path()});
    ASSERT_OK(db);
    EXPECT_TRUE((*db)->catalog().HasRelation("stock"));
    EXPECT_EQ((*db)->catalog().GetRelation("stock").value()->size(), 3u);
  }
}

TEST(IntegrationTest, OptimizedAndUnoptimizedAgreeOnComplexScript) {
  // The same script under four interpreter configurations must deliver the
  // same query results (int aggregates keep this bit-exact).
  const char* script =
      "create orders(customer: string, item: string, qty: int);"
      "create items(item: string, price: int);"
      "insert(orders, {('ann', 'hops', 3) : 2, ('ann', 'malt', 1),"
      "                ('bob', 'hops', 5), ('bob', 'yeast', 2) : 3});"
      "insert(items, {('hops', 10), ('malt', 7), ('yeast', 12)});"
      "? groupby([%1], sum(%3), cnt(%1),"
      "    select(%3 > 1, join(%2 = %4, orders, items)));"
      "? unique(project([%2], orders));"
      "? diff(project([%1], orders), project([%1], orders));";

  std::vector<std::vector<Relation>> outcomes;
  for (bool optimize : {false, true}) {
    for (bool physical : {false, true}) {
      auto db = Database::Open();
      ASSERT_OK(db);
      lang::InterpreterOptions options;
      options.planner.optimize = optimize;
      options.exec.use_physical_exec = physical;
      lang::Interpreter interp(db->get(), options);
      auto results = interp.ExecuteScriptCollect(script);
      ASSERT_OK(results);
      outcomes.push_back(*results);
    }
  }
  for (size_t config = 1; config < outcomes.size(); ++config) {
    ASSERT_EQ(outcomes[config].size(), outcomes[0].size());
    for (size_t q = 0; q < outcomes[0].size(); ++q) {
      EXPECT_REL_EQ(outcomes[config][q], outcomes[0][q])
          << "config " << config << ", query " << q;
    }
  }
}

TEST(IntegrationTest, ParallelExecutionAgreesWithSerialResults) {
  // The same statements through a serial interpreter and through one with
  // morsel-driven parallelism forced on (workers=3, threshold dropped so
  // even this tiny input fans out) must agree bag-for-bag.
  const char* script =
      "create m(g: int, v: int);"
      "insert(m, {(1, 10) : 3, (1, 20), (2, 5) : 2, (3, 7)});";
  const char* queries[] = {
      "groupby([%1], sum(%2), m)",
      "unique(project([%1], m))",
      "join(%1 = %3, m, m)",
  };
  auto serial_db = Database::Open();
  ASSERT_OK(serial_db);
  lang::Interpreter serial(serial_db->get());
  ASSERT_OK(serial.ExecuteScript(script, nullptr));

  auto parallel_db = Database::Open();
  ASSERT_OK(parallel_db);
  lang::Interpreter parallel(
      parallel_db->get(),
      ConfigBuilder().Workers(3).ParallelThreshold(1).Build());
  ASSERT_OK(parallel.ExecuteScript(script, nullptr));

  for (const char* query : queries) {
    auto serial_result = serial.Query(query);
    auto parallel_result = parallel.Query(query);
    ASSERT_OK(serial_result);
    ASSERT_OK(parallel_result);
    EXPECT_REL_EQ(*serial_result, *parallel_result) << query;
  }
}

TEST(IntegrationTest, SetStatementRetunesTheSession) {
  // `set <knob> = <value>;` flips ExecConfig mid-session across both front
  // ends; an unknown knob is rejected without damaging the session.
  auto db = Database::Open();
  ASSERT_OK(db);
  lang::Interpreter xra(db->get());
  ASSERT_OK(xra.ExecuteScript(
      "create t(x: int); insert(t, {(1), (2) : 2}); set workers = 4;"
      "set parallel_threshold = 1;", nullptr));
  EXPECT_EQ(xra.options().exec.workers, 4u);
  EXPECT_EQ(xra.options().exec.parallel_threshold, 1u);
  auto rows = xra.Query("unique(project([%1], t))");
  ASSERT_OK(rows);
  EXPECT_EQ(rows->size(), 2u);
  EXPECT_EQ(xra.ExecuteScript("set no_such_knob = 7;", nullptr).code(),
            StatusCode::kInvalidArgument);
  // Inside a bracket SET is rejected: config is not transactional.
  EXPECT_EQ(xra.ExecuteScript("begin set workers = 1 end;", nullptr).code(),
            StatusCode::kTxnError);

  sql::SqlSession sql(db->get());
  ASSERT_OK(sql.Execute("SET batch_size = 7"));
  auto count = sql.ExecuteCollect("SELECT COUNT(*) FROM t");
  ASSERT_OK(count);
  EXPECT_EQ((*count)[0].Multiplicity(Tuple({Value::Int(3)})), 1u);
}

TEST(IntegrationTest, ClosureOverDataBuiltThroughSql) {
  auto db = Database::Open();
  ASSERT_OK(db);
  sql::SqlSession sql(db->get());
  ASSERT_OK(sql.Execute(
      "CREATE TABLE reports_to (emp STRING, mgr STRING);"
      "INSERT INTO reports_to VALUES ('carol', 'bob'), ('bob', 'ann'),"
      "                              ('dave', 'ann')"));
  lang::Interpreter xra(db->get());
  auto chain = xra.Query(
      "project([%1], select(%2 = 'ann', closure(reports_to)))");
  ASSERT_OK(chain);
  // Everyone ultimately reports to ann.
  EXPECT_EQ(chain->size(), 3u);
  EXPECT_TRUE(chain->Contains(Tuple({Value::Str("carol")})));
}

TEST(IntegrationTest, LargeGeneratedWorkloadEndToEnd) {
  // A thousand-transaction workload through the language layer, verified
  // against a directly computed expectation.
  auto db = Database::Open();
  ASSERT_OK(db);
  lang::Interpreter interp(db->get());
  ASSERT_OK(interp.ExecuteScript("create counter(slot: int, n: int);",
                                 nullptr));
  for (int i = 0; i < 300; ++i) {
    std::string stmt = "insert(counter, {(" + std::to_string(i % 10) +
                       ", 1)});";
    ASSERT_OK(interp.ExecuteScript(stmt, nullptr));
  }
  auto totals = interp.Query("groupby([%1], cnt(%2), counter)");
  ASSERT_OK(totals);
  EXPECT_EQ(totals->size(), 10u);
  for (const auto& [tuple, count] : *totals) {
    EXPECT_EQ(tuple.at(1).int_value(), 30);
  }
  EXPECT_EQ((*db)->logical_time(), 300u);  // DDL does not tick; 300 inserts do
}

}  // namespace
}  // namespace mra
