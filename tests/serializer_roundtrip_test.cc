// Serializer hardening: randomized round-trip property tests for
// PutRelation/GetRelation and adversarial decode inputs — empty relations,
// max-multiplicity tuples, very long strings, every possible truncation,
// and random corruption.  The invariant under attack: a Decoder must
// return Corruption (or decode something), never crash or over-allocate.

#include <gtest/gtest.h>

#include <random>

#include "mra/storage/serializer.h"

namespace mra {
namespace storage {
namespace {

Relation RandomRelation(std::mt19937_64& rng) {
  static const Type kTypes[] = {Type::Bool(),   Type::Int(),
                                Type::Decimal(), Type::Real(),
                                Type::String(), Type::Date()};
  std::uniform_int_distribution<size_t> arity_dist(1, 5);
  std::uniform_int_distribution<size_t> type_dist(0, 5);
  std::uniform_int_distribution<size_t> rows_dist(0, 30);
  std::uniform_int_distribution<uint64_t> count_dist(1, 1'000'000);
  std::uniform_int_distribution<int64_t> int_dist(-1'000'000, 1'000'000);
  std::uniform_int_distribution<size_t> len_dist(0, 64);

  size_t arity = arity_dist(rng);
  std::vector<Attribute> attrs;
  attrs.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs.push_back(
        {"a" + std::to_string(i + 1), kTypes[type_dist(rng)]});
  }
  Relation rel(RelationSchema("rnd", std::move(attrs)));

  size_t rows = rows_dist(rng);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> values;
    values.reserve(arity);
    for (size_t i = 0; i < arity; ++i) {
      switch (rel.schema().attributes()[i].type.kind()) {
        case TypeKind::kBool:
          values.push_back(Value::Bool((rng() & 1) != 0));
          break;
        case TypeKind::kInt:
          values.push_back(Value::Int(int_dist(rng)));
          break;
        case TypeKind::kDecimal:
          values.push_back(Value::DecimalScaled(int_dist(rng)));
          break;
        case TypeKind::kReal:
          values.push_back(Value::Real(
              static_cast<double>(int_dist(rng)) / 997.0));
          break;
        case TypeKind::kString: {
          std::string s(len_dist(rng), '\0');
          for (char& c : s) {
            c = static_cast<char>('a' + (rng() % 26));
          }
          values.push_back(Value::Str(std::move(s)));
          break;
        }
        case TypeKind::kDate:
          values.push_back(
              Value::Date(static_cast<int32_t>(int_dist(rng) % 100000)));
          break;
      }
    }
    EXPECT_TRUE(rel.Insert(Tuple(std::move(values)), count_dist(rng)).ok());
  }
  return rel;
}

TEST(SerializerRoundTrip, RandomRelationsSurviveExactly) {
  std::mt19937_64 rng(20260806);
  for (int round = 0; round < 60; ++round) {
    Relation original = RandomRelation(rng);
    Encoder enc;
    enc.PutRelation(original);
    Decoder dec(enc.buffer());
    auto decoded = dec.GetRelation();
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(dec.AtEnd());
    EXPECT_EQ(*decoded, original) << "round " << round;
  }
}

TEST(SerializerRoundTrip, EmptyRelation) {
  Relation empty(RelationSchema(
      "nothing", {Attribute{"a", Type::Int()},
                  Attribute{"b", Type::String()}}));
  Encoder enc;
  enc.PutRelation(empty);
  Decoder dec(enc.buffer());
  auto decoded = dec.GetRelation();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, empty);
  EXPECT_EQ(decoded->size(), 0u);
}

TEST(SerializerRoundTrip, MaxMultiplicityTuple) {
  Relation rel(RelationSchema("huge", {Attribute{"a", Type::Int()}}));
  ASSERT_TRUE(rel.Insert(Tuple({Value::Int(1)}), UINT64_MAX).ok());
  Encoder enc;
  enc.PutRelation(rel);
  Decoder dec(enc.buffer());
  auto decoded = dec.GetRelation();
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->Multiplicity(Tuple({Value::Int(1)})), UINT64_MAX);
  EXPECT_EQ(*decoded, rel);
}

TEST(SerializerRoundTrip, LongStringValues) {
  Relation rel(RelationSchema("texts", {Attribute{"s", Type::String()}}));
  std::string big(1 << 20, 'z');
  big[12345] = 'q';
  ASSERT_TRUE(rel.Insert(Tuple({Value::Str(big)}), 3).ok());
  ASSERT_TRUE(rel.Insert(Tuple({Value::Str("")}), 1).ok());
  Encoder enc;
  enc.PutRelation(rel);
  Decoder dec(enc.buffer());
  auto decoded = dec.GetRelation();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, rel);
}

TEST(SerializerRoundTrip, EveryTruncationFailsCleanly) {
  std::mt19937_64 rng(7);
  Relation rel = RandomRelation(rng);
  Encoder enc;
  enc.PutRelation(rel);
  std::string_view bytes = enc.buffer();
  for (size_t len = 0; len < bytes.size(); ++len) {
    Decoder dec(bytes.substr(0, len));
    auto decoded = dec.GetRelation();
    // GetRelation consumes the full encoding, so every strict prefix must
    // fail — with a Status, not a crash or an allocation bomb.
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " decoded";
  }
}

TEST(SerializerRoundTrip, RandomCorruptionNeverCrashes) {
  std::mt19937_64 rng(99);
  Relation rel = RandomRelation(rng);
  Encoder enc;
  enc.PutRelation(rel);
  const std::string original = enc.buffer();
  std::uniform_int_distribution<size_t> pos_dist(0, original.size() - 1);
  std::uniform_int_distribution<int> bit_dist(0, 7);
  for (int round = 0; round < 500; ++round) {
    std::string corrupt = original;
    // Flip 1–4 random bits.
    int flips = 1 + (round % 4);
    for (int f = 0; f < flips; ++f) {
      corrupt[pos_dist(rng)] ^= static_cast<char>(1 << bit_dist(rng));
    }
    Decoder dec(corrupt);
    auto decoded = dec.GetRelation();  // Either error or some relation.
    (void)decoded;
  }
}

TEST(SerializerRoundTrip, ZeroMultiplicityIsCorruption) {
  Encoder enc;
  enc.PutSchema(RelationSchema("z", {Attribute{"a", Type::Int()}}));
  enc.PutU64(1);  // One distinct tuple...
  enc.PutTuple(Tuple({Value::Int(7)}));
  enc.PutU64(0);  // ...with multiplicity zero: not a valid support entry.
  Decoder dec(enc.buffer());
  auto decoded = dec.GetRelation();
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(SerializerRoundTrip, BadTypeTagIsCorruption) {
  Encoder enc;
  enc.PutString("bad");
  enc.PutU32(1);
  enc.PutString("a");
  enc.PutU8(42);  // No such TypeKind.
  Decoder dec(enc.buffer());
  auto decoded = dec.GetSchema();
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(SerializerRoundTrip, ImplausibleStringLengthIsRefusedWithoutAllocating) {
  // A length field of ~4GiB must be rejected by the plausibility bound
  // before any buffer is resized.
  Encoder enc;
  enc.PutU32(0xfffffff0u);
  Decoder dec(enc.buffer());
  auto s = dec.GetString();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kCorruption);
}

TEST(SerializerRoundTrip, SchemaMismatchedTupleIsRefused) {
  // Encode a relation whose tuple does not inhabit the declared schema
  // (string value under an int attribute): decode must refuse it.
  Encoder enc;
  enc.PutSchema(RelationSchema("m", {Attribute{"a", Type::Int()}}));
  enc.PutU64(1);
  enc.PutTuple(Tuple({Value::Str("not an int")}));
  enc.PutU64(2);
  Decoder dec(enc.buffer());
  auto decoded = dec.GetRelation();
  EXPECT_FALSE(decoded.ok());
}

TEST(SerializerRoundTrip, DuplicateSupportEntriesMergeWithoutCrashing) {
  // A (corrupt) encoding listing the same tuple twice is not ideal input,
  // but it must decode deterministically (multiplicities add) or error —
  // never crash.
  Encoder enc;
  enc.PutSchema(RelationSchema("d", {Attribute{"a", Type::Int()}}));
  enc.PutU64(2);
  enc.PutTuple(Tuple({Value::Int(1)}));
  enc.PutU64(3);
  enc.PutTuple(Tuple({Value::Int(1)}));
  enc.PutU64(4);
  Decoder dec(enc.buffer());
  auto decoded = dec.GetRelation();
  if (decoded.ok()) {
    EXPECT_EQ(decoded->Multiplicity(Tuple({Value::Int(1)})), 7u);
  }
}

}  // namespace
}  // namespace storage
}  // namespace mra
