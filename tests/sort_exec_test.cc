// Differential suite for ordered emission (SortOp) and the sort-merge
// join strategy, gated against the definitional semantics:
//
//   * ops::Sort with limit = 0 is the identity on bags — so the physical
//     SortOp must return the input bag exactly, *and* emit it in
//     CompareForSort order (ordering is a stream property the bag cannot
//     express; it is asserted on the drained row sequence).
//   * ops::Sort with limit = k is the deterministic weighted Top-K — the
//     physical Top-K heap must agree with it, which also pins "Top-K ==
//     full sort + weighted prefix".
//   * SortMergeJoinOp must agree with HashJoinOp and NestedLoopJoinOp on
//     the same equi-join (multiplicities multiply, Definition 3.1).
//
// Each property runs over 8 random seeds, all six value domains (bool,
// int, real, string, decimal, date), multi-key and descending orders,
// multiplicities up to 1e6, batch sizes 1/7/1024, and — via a tiny
// sort_spill_bytes — the forced external-merge spill path.

#include "mra/exec/sort.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <functional>
#include <random>

#include "mra/algebra/ops.h"
#include "mra/common/config.h"
#include "mra/exec/exec_context.h"
#include "mra/exec/operator.h"
#include "mra/lang/interpreter.h"
#include "test_util.h"

namespace mra {
namespace exec {
namespace {

using ::mra::testing::IntRel;
using ::mra::testing::RandomIntRelation;
using ::mra::testing::RandomMixedRelation;

// Drains `op` row-at-a-time, asserting the emitted stream is ordered
// under CompareForSort, and returns the emitted bag.
Result<Relation> DrainOrdered(PhysicalOperator& op,
                              const std::vector<size_t>& keys,
                              const std::vector<bool>& desc) {
  MRA_RETURN_IF_ERROR(op.Open());
  Relation out(op.schema());
  std::optional<Tuple> prev;
  while (true) {
    MRA_ASSIGN_OR_RETURN(std::optional<Row> row, op.Next());
    if (!row.has_value()) break;
    if (prev.has_value()) {
      EXPECT_LE(ops::CompareForSort(*prev, row->tuple, keys, desc), 0)
          << "stream out of order: " << prev->ToString() << " before "
          << row->tuple.ToString();
    }
    prev = row->tuple;
    out.InsertUnchecked(row->tuple, row->count);
  }
  op.Close();
  return out;
}

// One sort configuration checked end to end: bag equality against the
// definitional ops::Sort, stream orderedness, and (when expected) the
// spill trip, at every batch protocol.
void ExpectSortAgreement(const Relation& input, std::vector<size_t> keys,
                         std::vector<bool> desc, uint64_t limit,
                         uint64_t spill_bytes, bool expect_spill) {
  auto expected = ops::Sort(keys, desc, limit, input);
  ASSERT_OK(expected);

  // Row-at-a-time, with the order assertion.
  {
    SortOp op(keys, desc, limit, spill_bytes,
              std::make_unique<ScanOp>(&input));
    auto got = DrainOrdered(op, keys, desc);
    ASSERT_OK(got);
    EXPECT_REL_EQ(*got, *expected);
    if (expect_spill) {
      EXPECT_GT(op.spilled_runs(), 0u) << "expected a forced spill";
    } else if (spill_bytes == 0) {
      EXPECT_EQ(op.spilled_runs(), 0u);
    }
  }
  // Batch protocol at the three canonical sizes.
  for (size_t batch_size : {size_t{1}, size_t{7}, size_t{1024}}) {
    SortOp op(keys, desc, limit, spill_bytes,
              std::make_unique<ScanOp>(&input));
    auto got = ExecuteToRelation(op, batch_size);
    ASSERT_OK(got);
    EXPECT_REL_EQ(*got, *expected) << "batch size " << batch_size;
  }
}

class SortDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SortDifferentialTest, FullSortAllDomainsIsBagIdentityAndOrdered) {
  std::mt19937_64 rng(GetParam());
  Relation input = RandomMixedRelation(rng, /*max_distinct=*/120,
                                       /*max_multiplicity=*/5);
  // Single key per domain, ascending and descending.
  for (size_t key = 0; key < input.schema().arity(); ++key) {
    ExpectSortAgreement(input, {key}, {false}, 0, 0, false);
    ExpectSortAgreement(input, {key}, {true}, 0, 0, false);
  }
}

TEST_P(SortDifferentialTest, MultiKeyMixedDirections) {
  std::mt19937_64 rng(GetParam());
  Relation input = RandomMixedRelation(rng, 150, 5);
  ExpectSortAgreement(input, {1, 3}, {false, true}, 0, 0, false);
  ExpectSortAgreement(input, {5, 0, 2}, {true, false, true}, 0, 0, false);
  // All six keys: the whole-tuple tiebreak never fires, order still total.
  ExpectSortAgreement(input, {0, 1, 2, 3, 4, 5},
                      {true, true, false, false, true, false}, 0, 0, false);
}

TEST_P(SortDifferentialTest, TopKMatchesDefinitionalWeightedPrefix) {
  std::mt19937_64 rng(GetParam());
  Relation input = RandomMixedRelation(rng, 150, 5);
  uint64_t total = input.size();
  for (uint64_t limit : {uint64_t{1}, uint64_t{3}, total / 2 + 1, total,
                         total + 100}) {
    if (limit == 0) continue;
    ExpectSortAgreement(input, {1, 2}, {false, true}, limit, 0, false);
  }
}

TEST_P(SortDifferentialTest, ForcedSpillAgreesWithInMemory) {
  std::mt19937_64 rng(GetParam());
  Relation input = RandomMixedRelation(rng, 200, 5);
  if (input.distinct_size() < 4) return;  // Nothing to spill.
  // 64 bytes is below a single row's footprint: every buffered batch
  // trips the threshold, so the merge path carries the whole sort.
  ExpectSortAgreement(input, {3, 1}, {false, false}, 0, 64, true);
  ExpectSortAgreement(input, {4}, {true}, 0, 64, true);
  // Top-K across spilled runs: per-run pruning must stay globally sound.
  ExpectSortAgreement(input, {2}, {false}, 5, 64, true);
}

TEST_P(SortDifferentialTest, HeavyMultiplicityStaysFolded) {
  // A row with multiplicity 1e6 is one run entry: the sort (spilling or
  // not) must keep it folded and the weighted LIMIT must clamp inside it.
  Relation input = IntRel("r", {{5, 1}, {3, 2}, {7, 3}}, 2);
  input.InsertUnchecked(testing::IntTuple({1, 9}), 1'000'000);
  ExpectSortAgreement(input, {0}, {false}, 0, 0, false);
  ExpectSortAgreement(input, {0}, {false}, 0, 64, true);
  // limit = 17 lands strictly inside the heavy row: the boundary keeps
  // the clamped remainder (17 − 0 preceding = 17 copies of (1, 9)).
  auto limited = ops::Sort({0}, {false}, 17, input);
  ASSERT_OK(limited);
  EXPECT_EQ(limited->Multiplicity(testing::IntTuple({1, 9})), 17u);
  ExpectSortAgreement(input, {0}, {false}, 17, 0, false);
  ExpectSortAgreement(input, {0}, {false}, 17, 64, true);
}

TEST_P(SortDifferentialTest, EmptyAndSingletonInputs) {
  Relation empty(RelationSchema("e", {{"a", Type::Int()}}));
  ExpectSortAgreement(empty, {0}, {false}, 0, 0, false);
  ExpectSortAgreement(empty, {0}, {true}, 3, 64, false);
  Relation one = IntRel("one", {{42}}, 1);
  ExpectSortAgreement(one, {0}, {false}, 0, 0, false);
  ExpectSortAgreement(one, {0}, {false}, 1, 0, false);
}

// --- Sort-merge join vs. the other join strategies. ----------------------

using OpFactory = std::function<PhysOpPtr()>;

Relation MustExecute(const OpFactory& make, size_t batch_size) {
  PhysOpPtr op = make();
  auto rel = ExecuteToRelation(*op, batch_size);
  EXPECT_TRUE(rel.ok()) << rel.status().ToString();
  return rel.ok() ? std::move(*rel) : Relation(op->schema());
}

TEST_P(SortDifferentialTest, SortMergeJoinAgreesWithHashAndNestedLoop) {
  std::mt19937_64 rng(GetParam());
  Relation r = RandomIntRelation(rng, 2, 150, 20, 5);
  Relation s = RandomIntRelation(rng, 2, 150, 20, 5);

  auto merge = [&] {
    return std::make_unique<SortMergeJoinOp>(
        std::vector<size_t>{0}, std::vector<size_t>{0}, nullptr,
        std::make_unique<ScanOp>(&r), std::make_unique<ScanOp>(&s),
        /*spill_bytes=*/0);
  };
  auto hash = [&] {
    return std::make_unique<HashJoinOp>(
        std::vector<size_t>{0}, std::vector<size_t>{0}, nullptr,
        std::make_unique<ScanOp>(&r), std::make_unique<ScanOp>(&s));
  };
  auto nested = [&] {
    return std::make_unique<NestedLoopJoinOp>(
        Eq(Attr(0), Attr(2)), std::make_unique<ScanOp>(&r),
        std::make_unique<ScanOp>(&s));
  };
  Relation via_hash = MustExecute(hash, 0);
  EXPECT_REL_EQ(MustExecute(nested, 0), via_hash);
  for (size_t batch_size : {size_t{0}, size_t{1}, size_t{7}, size_t{1024}}) {
    EXPECT_REL_EQ(MustExecute(merge, batch_size), via_hash)
        << "batch size " << batch_size;
  }
}

TEST_P(SortDifferentialTest, SortMergeJoinMultiKeyResidualAndSpill) {
  std::mt19937_64 rng(GetParam());
  Relation r = RandomIntRelation(rng, 3, 150, 8, 5);
  Relation s = RandomIntRelation(rng, 3, 150, 8, 5);

  // Multi-key with a non-equi residual, forced through the spill path.
  auto merge = [&] {
    return std::make_unique<SortMergeJoinOp>(
        std::vector<size_t>{0, 1}, std::vector<size_t>{1, 0},
        Lt(Attr(2), Attr(5)), std::make_unique<ScanOp>(&r),
        std::make_unique<ScanOp>(&s), /*spill_bytes=*/64);
  };
  auto hash = [&] {
    return std::make_unique<HashJoinOp>(
        std::vector<size_t>{0, 1}, std::vector<size_t>{1, 0},
        Lt(Attr(2), Attr(5)), std::make_unique<ScanOp>(&r),
        std::make_unique<ScanOp>(&s));
  };
  EXPECT_REL_EQ(MustExecute(merge, 1024), MustExecute(hash, 1024));
}

TEST_P(SortDifferentialTest, SortMergeJoinEmptySides) {
  std::mt19937_64 rng(GetParam());
  Relation r = RandomIntRelation(rng, 2, 100, 20, 5);
  Relation empty(r.schema());
  for (auto [left, right] : {std::pair<const Relation*, const Relation*>{
                                 &r, &empty},
                             {&empty, &r},
                             {&empty, &empty}}) {
    SortMergeJoinOp op({0}, {0}, nullptr, std::make_unique<ScanOp>(left),
                       std::make_unique<ScanOp>(right), 0);
    auto got = ExecuteToRelation(op, 1024);
    ASSERT_OK(got);
    EXPECT_EQ(got->size(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SortDifferentialTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

// --- Contract details the sweep cannot see. ------------------------------

TEST(SortContractTest, ReopenReplaysTheStream) {
  Relation r = IntRel("r", {{3}, {1}, {2}}, 1);
  SortOp op({0}, {false}, 0, 0, std::make_unique<ScanOp>(&r));
  for (int round = 0; round < 2; ++round) {
    auto got = DrainOrdered(op, {0}, {false});
    ASSERT_OK(got);
    EXPECT_REL_EQ(*got, r);
  }
}

TEST(SortContractTest, SpilledReopenReplaysAndRewritesRuns) {
  std::mt19937_64 rng(7);
  Relation r = RandomIntRelation(rng, 2, 200, 50, 3);
  SortOp op({0}, {false}, 0, 64, std::make_unique<ScanOp>(&r));
  auto first = DrainOrdered(op, {0}, {false});
  ASSERT_OK(first);
  auto second = DrainOrdered(op, {0}, {false});
  ASSERT_OK(second);
  EXPECT_REL_EQ(*first, *second);
  EXPECT_REL_EQ(*first, r);
}

TEST(SortContractTest, RunFilesAreRemovedOnClose) {
  std::mt19937_64 rng(11);
  Relation r = RandomIntRelation(rng, 2, 300, 50, 3);
  auto leftover = [] {
    size_t n = 0;
    for (const auto& entry : std::filesystem::directory_iterator(
             std::filesystem::temp_directory_path())) {
      if (entry.path().filename().string().rfind("mra_sort_", 0) == 0) ++n;
    }
    return n;
  };
  size_t before = leftover();
  {
    SortOp op({0}, {false}, 0, 64, std::make_unique<ScanOp>(&r));
    ASSERT_OK(op.Open());
    EXPECT_GT(op.spilled_runs(), 0u);
    EXPECT_GT(leftover(), before);
    op.Close();
  }
  EXPECT_EQ(leftover(), before);
}

TEST(SortContractTest, BudgetArmsSpillWithoutExplicitKnob) {
  // No sort_spill_bytes, but an armed budget: the operator must derive a
  // threshold (budget/2) and complete by spilling instead of being killed.
  std::mt19937_64 rng(13);
  Relation r = RandomIntRelation(rng, 2, 400, 100, 3);
  ExecContext ctx;
  ctx.SetMemoryBudget(2048);
  SortOp op({0}, {false}, 0, 0, std::make_unique<ScanOp>(&r));
  op.SetExecContext(&ctx);
  auto got = ExecuteToRelation(op, 1024);
  // The sort must complete by spilling under budget pressure, not die.
  ASSERT_OK(got);
  EXPECT_GT(op.spilled_runs(), 0u);
  EXPECT_REL_EQ(*got, r);
  EXPECT_EQ(ctx.mem_used(), 0u) << "all charged bytes must be released";
}

// --- Interpreter-level: the sort node through the full stack. ------------

std::unique_ptr<Database> SeedDb(uint64_t seed) {
  auto db = std::move(Database::Open({}).value());
  lang::Interpreter interp(db.get());
  EXPECT_OK(interp.ExecuteScript(
      "create r(a: int, b: int, c: string);", nullptr));
  std::mt19937_64 rng(seed);
  std::string script = "insert(r, {";
  for (int i = 0; i < 80; ++i) {
    script += (i ? "," : "") + std::string("(") +
              std::to_string(static_cast<int64_t>(rng() % 40)) + "," +
              std::to_string(static_cast<int64_t>(rng() % 9)) + ",'" +
              std::string(1, static_cast<char>('a' + rng() % 5)) + "')" +
              (rng() % 4 == 0 ? " : 3" : "");
  }
  script += "});";
  EXPECT_OK(interp.ExecuteScript(script, nullptr));
  return db;
}

TEST(SortLanguageTest, XraSortMatchesDefinitionalAcrossConfigs) {
  auto db = SeedDb(21);
  const Relation& r = **db->catalog().GetRelation("r");
  auto expected_full = ops::Sort({2, 0}, {false, true}, 0, r);
  ASSERT_OK(expected_full);
  auto expected_top = ops::Sort({1}, {true}, 10, r);
  ASSERT_OK(expected_top);
  for (uint64_t spill : {uint64_t{0}, uint64_t{64}}) {
    lang::InterpreterOptions options;
    options.exec.sort_spill_bytes = spill;
    lang::Interpreter interp(db.get(), options);
    auto full = interp.Query("sort([%3, -%1], r)");
    ASSERT_OK(full);
    EXPECT_REL_EQ(*full, *expected_full);
    auto top = interp.Query("sort([-%2], r, 10)");
    ASSERT_OK(top);
    EXPECT_REL_EQ(*top, *expected_top);
  }
}

TEST(SortLanguageTest, ExplainAnalyzeAnnotatesSpillRuns) {
  auto db = SeedDb(22);
  lang::InterpreterOptions options;
  options.exec.sort_spill_bytes = 64;
  lang::Interpreter interp(db.get(), options);
  auto text = interp.ExplainAnalyze("sort([%1], r)");
  ASSERT_OK(text);
  EXPECT_NE(text->find("spill:"), std::string::npos) << *text;
  // Without the knob, no spill note appears.
  lang::Interpreter plain(db.get());
  auto quiet = plain.ExplainAnalyze("sort([%1], r)");
  ASSERT_OK(quiet);
  EXPECT_EQ(quiet->find("spill:"), std::string::npos) << *quiet;
}

TEST(SortLanguageTest, ForcedSortMergeJoinMatchesHashJoin) {
  auto db = SeedDb(23);
  lang::Interpreter hash_interp(db.get());
  auto via_hash = hash_interp.Query("join(%2 = %5, r, r)");
  ASSERT_OK(via_hash);

  lang::InterpreterOptions options;
  options.exec.sort_merge_join = true;
  lang::Interpreter merge_interp(db.get(), options);
  auto explained = merge_interp.Explain("join(%2 = %5, r, r)");
  ASSERT_OK(explained);
  EXPECT_NE(explained->find("sort-merge"), std::string::npos) << *explained;
  auto via_merge = merge_interp.Query("join(%2 = %5, r, r)");
  ASSERT_OK(via_merge);
  EXPECT_REL_EQ(*via_merge, *via_hash);
}

// --- Knob round-trip: registry, session SET, and config builder. ---------

TEST(SortKnobTest, SpillAndStrategyKnobsRoundTrip) {
  ExecConfig cfg;
  EXPECT_NE(cfg.Describe().find("sort_spill_bytes"), std::string::npos);
  EXPECT_NE(cfg.Describe().find("sort_merge_join"), std::string::npos);

  ASSERT_OK(cfg.Set("sort_spill_bytes", "4096"));
  EXPECT_EQ(cfg.exec.sort_spill_bytes, 4096u);
  auto got = cfg.Get("sort_spill_bytes");
  ASSERT_OK(got);
  EXPECT_EQ(*got, "4096");

  ASSERT_OK(cfg.Set("sort_merge_join", "true"));
  EXPECT_TRUE(cfg.exec.sort_merge_join);
  got = cfg.Get("sort_merge_join");
  ASSERT_OK(got);
  EXPECT_EQ(*got, "true");
  ASSERT_OK(cfg.Set("sort_merge_join", "false"));
  EXPECT_FALSE(cfg.exec.sort_merge_join);

  EXPECT_FALSE(cfg.Set("sort_spill_bytes", "not-a-number").ok());

  ExecConfig built = ConfigBuilder()
                         .SortSpillBytes(128)
                         .SortMergeJoin(true)
                         .Build();
  EXPECT_EQ(built.exec.sort_spill_bytes, 128u);
  EXPECT_TRUE(built.exec.sort_merge_join);
}

TEST(SortKnobTest, SessionSetStatementReachesTheExecutor) {
  auto db = SeedDb(24);
  lang::Interpreter interp(db.get());
  // The XRA `set` statement (the same path as the REPL's \set) arms the
  // spill knob mid-session; the very next query must spill.
  ASSERT_OK(interp.ExecuteScript("set sort_spill_bytes = 64;", nullptr));
  auto text = interp.ExplainAnalyze("sort([%1], r)");
  ASSERT_OK(text);
  EXPECT_NE(text->find("spill:"), std::string::npos) << *text;
  ASSERT_OK(interp.SetOption("sort_spill_bytes", "0"));
  text = interp.ExplainAnalyze("sort([%1], r)");
  ASSERT_OK(text);
  EXPECT_EQ(text->find("spill:"), std::string::npos) << *text;

  ASSERT_OK(interp.SetOption("sort_merge_join", "true"));
  auto explained = interp.Explain("join(%1 = %4, r, r)");
  ASSERT_OK(explained);
  EXPECT_NE(explained->find("sort-merge"), std::string::npos) << *explained;
}

}  // namespace
}  // namespace exec
}  // namespace mra
