// Tests for multi-set relations: R : dom(ℛ) → ℕ (Definition 2.2) and the
// comparison operators = and ⊑ (Definition 2.3).

#include "mra/core/relation.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace mra {
namespace {

using ::mra::testing::IntRel;
using ::mra::testing::IntTuple;

TEST(RelationTest, InsertAccumulatesMultiplicity) {
  Relation r(RelationSchema("r", {{"x", Type::Int()}}));
  ASSERT_OK(r.Insert(IntTuple({1})));
  ASSERT_OK(r.Insert(IntTuple({1}), 2));
  EXPECT_EQ(r.Multiplicity(IntTuple({1})), 3u);
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.distinct_size(), 1u);
}

TEST(RelationTest, MultiplicityZeroForAbsentTuple) {
  Relation r(RelationSchema("r", {{"x", Type::Int()}}));
  EXPECT_EQ(r.Multiplicity(IntTuple({9})), 0u);
  EXPECT_FALSE(r.Contains(IntTuple({9})));
}

TEST(RelationTest, MembershipIsPositiveMultiplicity) {
  // r ∈ R ⇔ R(r) > 0 (Definition 2.4).
  Relation r = IntRel("r", {{1}, {1}}, 1);
  EXPECT_TRUE(r.Contains(IntTuple({1})));
  EXPECT_FALSE(r.Contains(IntTuple({2})));
}

TEST(RelationTest, InsertValidatesSchema) {
  Relation r(RelationSchema("r", {{"x", Type::Int()}}));
  EXPECT_EQ(r.Insert(Tuple({Value::Str("a")})).code(),
            StatusCode::kTypeError);
  EXPECT_EQ(r.Insert(IntTuple({1, 2})).code(), StatusCode::kInvalidArgument);
}

TEST(RelationTest, InsertZeroCountIsNoop) {
  Relation r(RelationSchema("r", {{"x", Type::Int()}}));
  ASSERT_OK(r.Insert(IntTuple({1}), 0));
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.distinct_size(), 0u);
}

TEST(RelationTest, RemoveClampsAtZero) {
  Relation r = IntRel("r", {{1}, {1}, {1}}, 1);
  EXPECT_EQ(r.Remove(IntTuple({1}), 2), 2u);
  EXPECT_EQ(r.Multiplicity(IntTuple({1})), 1u);
  EXPECT_EQ(r.Remove(IntTuple({1}), 10), 1u);
  EXPECT_EQ(r.Multiplicity(IntTuple({1})), 0u);
  EXPECT_EQ(r.Remove(IntTuple({1})), 0u);
  EXPECT_TRUE(r.empty());
}

TEST(RelationTest, EqualityIsPointwise) {
  Relation a = IntRel("a", {{1}, {1}, {2}}, 1);
  Relation b = IntRel("b", {{2}, {1}, {1}}, 1);
  Relation c = IntRel("c", {{1}, {2}}, 1);  // multiplicity of 1 differs
  EXPECT_REL_EQ(a, b);
  EXPECT_FALSE(a.Equals(c));
}

TEST(RelationTest, EqualityRequiresCompatibleSchemas) {
  Relation a = IntRel("a", {}, 1);
  Relation b(RelationSchema("b", {{"x", Type::String()}}));
  EXPECT_FALSE(a.Equals(b));
}

TEST(RelationTest, MultiSubset) {
  Relation a = IntRel("a", {{1}, {2}}, 1);
  Relation b = IntRel("b", {{1}, {1}, {2}, {3}}, 1);
  EXPECT_TRUE(a.MultiSubsetOf(b));
  EXPECT_FALSE(b.MultiSubsetOf(a));
  // ⊑ is reflexive.
  EXPECT_TRUE(a.MultiSubsetOf(a));
}

TEST(RelationTest, MultiSubsetCountsMultiplicity) {
  // {1:2} is NOT a multi-subset of {1:1} — this distinguishes ⊑ from ⊆.
  Relation two = IntRel("a", {{1}, {1}}, 1);
  Relation one = IntRel("b", {{1}}, 1);
  EXPECT_FALSE(two.MultiSubsetOf(one));
  EXPECT_TRUE(one.MultiSubsetOf(two));
}

TEST(RelationTest, EmptyIsMultiSubsetOfEverything) {
  Relation empty = IntRel("e", {}, 1);
  Relation any = IntRel("a", {{5}}, 1);
  EXPECT_TRUE(empty.MultiSubsetOf(any));
  EXPECT_TRUE(empty.MultiSubsetOf(empty));
}

TEST(RelationTest, ExpandedTuplesMaterialisesDuplicates) {
  Relation r = IntRel("r", {{1}, {1}, {2}}, 1);
  std::vector<Tuple> tuples = r.ExpandedTuples();
  ASSERT_EQ(tuples.size(), 3u);
  EXPECT_EQ(tuples[0].at(0).int_value(), 1);
  EXPECT_EQ(tuples[1].at(0).int_value(), 1);
  EXPECT_EQ(tuples[2].at(0).int_value(), 2);
}

TEST(RelationTest, SortedEntriesDeterministic) {
  Relation r = IntRel("r", {{3}, {1}, {2}, {1}}, 1);
  auto entries = r.SortedEntries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].first.at(0).int_value(), 1);
  EXPECT_EQ(entries[0].second, 2u);
}

TEST(RelationTest, ToStringPairNotation) {
  Relation r = IntRel("r", {{1}, {1}, {2}}, 1);
  EXPECT_EQ(r.ToString(), "{(1) : 2, (2) : 1}");
  Relation empty = IntRel("e", {}, 1);
  EXPECT_EQ(empty.ToString(), "{}");
}

TEST(RelationTest, ClearResetsEverything) {
  Relation r = IntRel("r", {{1}, {2}}, 1);
  r.Clear();
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.distinct_size(), 0u);
  EXPECT_EQ(r.schema().arity(), 1u);  // schema survives
}

TEST(RelationTest, LargeMultiplicityIsCompact) {
  // A million duplicates occupy one map entry — the representational
  // advantage the paper's introduction claims for bag semantics.
  Relation r(RelationSchema("r", {{"x", Type::Int()}}));
  ASSERT_OK(r.Insert(IntTuple({1}), 1000000));
  EXPECT_EQ(r.size(), 1000000u);
  EXPECT_EQ(r.distinct_size(), 1u);
}

}  // namespace
}  // namespace mra
