// Tests for relation schemas (Definition 2.2) and tuples (Definition 2.4).

#include <gtest/gtest.h>

#include "mra/core/schema.h"
#include "mra/core/tuple.h"
#include "test_util.h"

namespace mra {
namespace {

RelationSchema Beer() {
  return RelationSchema("beer", {{"name", Type::String()},
                                 {"brewery", Type::String()},
                                 {"alcperc", Type::Real()}});
}

TEST(SchemaTest, BasicAccessors) {
  RelationSchema s = Beer();
  EXPECT_EQ(s.name(), "beer");
  EXPECT_EQ(s.arity(), 3u);
  EXPECT_EQ(s.attribute(0).name, "name");
  EXPECT_EQ(s.TypeOf(2), Type::Real());
}

TEST(SchemaTest, IndexOfByName) {
  RelationSchema s = Beer();
  ASSERT_OK(s.IndexOf("brewery"));
  EXPECT_EQ(*s.IndexOf("brewery"), 1u);
  EXPECT_EQ(s.IndexOf("missing").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, IndexOfAmbiguous) {
  RelationSchema s("t", {{"x", Type::Int()}, {"x", Type::Int()}});
  EXPECT_EQ(s.IndexOf("x").status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, CompatibilityIgnoresNames) {
  // The paper's "same schema" is the domain list; names are notation.
  RelationSchema a("a", {{"x", Type::Int()}, {"y", Type::String()}});
  RelationSchema b("b", {{"p", Type::Int()}, {"q", Type::String()}});
  RelationSchema c("c", {{"x", Type::Int()}, {"y", Type::Int()}});
  EXPECT_TRUE(a.CompatibleWith(b));
  EXPECT_FALSE(a.CompatibleWith(c));
  EXPECT_FALSE(a.CompatibleWith(RelationSchema("d", {{"x", Type::Int()}})));
}

TEST(SchemaTest, ConcatIsSchemaOplus) {
  RelationSchema ab = Beer().Concat(
      RelationSchema("brewery", {{"name", Type::String()},
                                 {"city", Type::String()},
                                 {"country", Type::String()}}));
  EXPECT_EQ(ab.arity(), 6u);
  EXPECT_EQ(ab.attribute(3).name, "name");
  EXPECT_EQ(ab.TypeOf(5), Type::String());
}

TEST(SchemaTest, ProjectKeepsOrderAndAllowsRepeats) {
  auto p = Beer().Project({2, 0, 0});
  ASSERT_OK(p);
  EXPECT_EQ(p->arity(), 3u);
  EXPECT_EQ(p->attribute(0).name, "alcperc");
  EXPECT_EQ(p->attribute(1).name, "name");
  EXPECT_EQ(p->attribute(2).name, "name");
}

TEST(SchemaTest, ProjectRejectsOutOfRange) {
  EXPECT_EQ(Beer().Project({3}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaTest, ToStringForm) {
  EXPECT_EQ(Beer().ToString(),
            "beer(name: string, brewery: string, alcperc: real)");
  EXPECT_EQ(RelationSchema({{"x", Type::Int()}}).ToString(),
            "<anonymous>(x: int)");
}

TEST(TupleTest, ArityAndAccess) {
  Tuple t({Value::Int(1), Value::Str("a")});
  EXPECT_EQ(t.arity(), 2u);  // #r of Definition 2.4
  EXPECT_EQ(t.at(0).int_value(), 1);
  EXPECT_EQ(t.at(1).string_value(), "a");
}

TEST(TupleTest, ConcatIsOplus) {
  Tuple r1({Value::Int(1)});
  Tuple r2({Value::Str("x"), Value::Bool(true)});
  Tuple r = r1.Concat(r2);
  EXPECT_EQ(r.arity(), 3u);
  EXPECT_EQ(r.at(0).int_value(), 1);
  EXPECT_EQ(r.at(2).bool_value(), true);
}

TEST(TupleTest, ProjectionConcatenatesListedAttributes) {
  Tuple t({Value::Int(10), Value::Int(20), Value::Int(30)});
  Tuple p = t.Project({2, 0});
  EXPECT_EQ(p.arity(), 2u);
  EXPECT_EQ(p.at(0).int_value(), 30);
  EXPECT_EQ(p.at(1).int_value(), 10);
}

TEST(TupleTest, ProjectionAllowsRepeatedIndexes) {
  Tuple t({Value::Int(5)});
  Tuple p = t.Project({0, 0, 0});
  EXPECT_EQ(p.arity(), 3u);
  EXPECT_EQ(p.at(2).int_value(), 5);
}

TEST(TupleTest, EqualityAttributeWise) {
  using ::mra::testing::IntTuple;
  EXPECT_TRUE(IntTuple({1, 2}).Equals(IntTuple({1, 2})));
  EXPECT_FALSE(IntTuple({1, 2}).Equals(IntTuple({2, 1})));
}

TEST(TupleTest, EqualityDistinguishesDomains) {
  Tuple a({Value::Int(1)});
  Tuple b({Value::Bool(true)});  // same raw representation, other domain
  EXPECT_FALSE(a.Equals(b));
}

TEST(TupleTest, HashConsistentWithEquality) {
  using ::mra::testing::IntTuple;
  EXPECT_EQ(IntTuple({1, 2, 3}).Hash(), IntTuple({1, 2, 3}).Hash());
  EXPECT_NE(IntTuple({1, 2, 3}).Hash(), IntTuple({3, 2, 1}).Hash());
}

TEST(TupleTest, ConformsToChecksArityAndDomains) {
  RelationSchema s = Beer();
  Tuple good({Value::Str("pils"), Value::Str("Guineken"), Value::Real(5.0)});
  EXPECT_OK(good.ConformsTo(s));
  Tuple short_tuple({Value::Str("pils")});
  EXPECT_EQ(short_tuple.ConformsTo(s).code(), StatusCode::kInvalidArgument);
  Tuple wrong_domain(
      {Value::Str("pils"), Value::Str("Guineken"), Value::Int(5)});
  EXPECT_EQ(wrong_domain.ConformsTo(s).code(), StatusCode::kTypeError);
}

TEST(TupleTest, ToStringForm) {
  Tuple t({Value::Int(1), Value::Str("a")});
  EXPECT_EQ(t.ToString(), "(1, 'a')");
  EXPECT_EQ(Tuple{}.ToString(), "()");
}

TEST(TupleTest, EmptyTupleEquality) {
  EXPECT_TRUE(Tuple{}.Equals(Tuple{}));
  EXPECT_EQ(Tuple{}.Hash(), Tuple{}.Hash());
}

}  // namespace
}  // namespace mra
