// Loopback integration tests for the TCP query server: ephemeral-port
// startup, concurrent clients, error frames, protocol violations, idle
// reaping, frame-size limits, and drain-then-shutdown without leaked
// sessions.  Also run under TSan in CI (.github/workflows/ci.yml).

#include "mra/net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "mra/net/client.h"
#include "mra/obs/op_metrics.h"
#include "mra/obs/slow_log.h"
#include "mra/obs/trace.h"

namespace mra {
namespace net {
namespace {

std::unique_ptr<Database> MakeSeededDb() {
  auto db = std::move(Database::Open({}).value());
  lang::Interpreter interp(db.get());
  Status s = interp.ExecuteScript(
      "create beer(name: string, brewery: string, alcperc: real);"
      "insert(beer, {('pils', 'Guineken', 5.0) : 2,"
      "              ('stout', 'Kirin', 4.2),"
      "              ('tripel', 'Bavapils', 8.0) : 3});"
      "create tally(n: int);",
      nullptr);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return db;
}

Client MustConnect(const Server& server, ClientOptions options = {}) {
  auto client = Client::Connect("127.0.0.1", server.port(), options);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(*client);
}

TEST(NetServer, HandshakeQueryPingStats) {
  auto db = MakeSeededDb();
  Server server(db.get());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  Client client = MustConnect(server);
  EXPECT_EQ(client.server_version(), kProtocolVersion);
  EXPECT_EQ(client.server_banner(), "mra_serverd");

  auto result = client.Query("select(%3 > 4.5, beer)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 5u);          // pils ×2 + tripel ×3.
  EXPECT_EQ(result->distinct_size(), 2u);

  EXPECT_TRUE(client.Ping().ok());

  auto stats = client.ServerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("\"net.requests\""), std::string::npos);
  EXPECT_NE(stats->find("\"net.connections\""), std::string::npos);
  EXPECT_NE(stats->find("\"net.request_us\""), std::string::npos);

  server.Shutdown();
  EXPECT_EQ(server.active_sessions(), 0);
}

TEST(NetServer, QueryCarriesStatsTrailerAttributedToTheClientId) {
  auto db = MakeSeededDb();
  Server server(db.get());
  ASSERT_TRUE(server.Start().ok());
  obs::ScopedExecTiming timing(true);

  Client client = MustConnect(server);
  auto result = client.Query("select(%3 > 4.5, beer)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The client minted the id; the server's stats trailer must echo it.
  EXPECT_NE(client.last_query_id(), 0u);
  ASSERT_TRUE(client.last_query_stats().has_value());
  const WireQueryStats& stats = *client.last_query_stats();
  EXPECT_EQ(stats.query_id, client.last_query_id());
  EXPECT_EQ(stats.result_rows, 5u);  // pils ×2 + tripel ×3, weighted.
  EXPECT_GE(stats.total_us,
            stats.bind_us + stats.optimize_us + stats.lower_us);
  ASSERT_FALSE(stats.operators.empty());
  uint64_t total_emitted = 0;
  for (const WireOpStats& op : stats.operators) {
    total_emitted += op.rows_emitted;
  }
  EXPECT_GT(total_emitted, 0u);

  // A later request mints a fresh id and its trailer replaces the stats.
  uint64_t first_id = client.last_query_id();
  auto second = client.Query("beer");
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_NE(client.last_query_id(), first_id);
  ASSERT_TRUE(client.last_query_stats().has_value());
  EXPECT_EQ(client.last_query_stats()->query_id, client.last_query_id());
  EXPECT_EQ(client.last_query_stats()->result_rows, 6u);
  server.Shutdown();
}

TEST(NetServer, ServerStatsExposesSessionsHistogramSlowLogAndTrace) {
  obs::SlowQueryLog::Global().Clear();
  obs::SlowQueryLog::Global().SetThresholdMs(0);  // Log every query.
  obs::Tracer::Global().SetEnabled(true);
  obs::Tracer::Global().Clear();

  auto db = MakeSeededDb();
  Server server(db.get());
  ASSERT_TRUE(server.Start().ok());
  Client client = MustConnect(server);
  auto result = client.Query("select(%3 > 4.5, beer)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  uint64_t query_id = client.last_query_id();
  ASSERT_NE(query_id, 0u);

  auto top = client.FetchServerStats();
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  EXPECT_GE(top->active_sessions, 1u);
  EXPECT_GE(top->sessions_served, 1u);
  EXPECT_GE(top->queries, 1u);
  EXPECT_GE(top->query_latency.count, 1u);
  EXPECT_GE(top->query_latency.Quantile(0.5), 0u);
  ASSERT_FALSE(top->sessions.empty());
  bool found_self = false;
  for (const ServerSessionInfo& s : top->sessions) {
    if (s.queries >= 1 && s.peer == "mra-client") found_self = true;
  }
  EXPECT_TRUE(found_self) << "own session missing from the registry";
  EXPECT_GE(top->slow_logged, 1u);
  bool logged = false;
  for (const std::string& line : top->slow_log) {
    if (line.find("\"query_id\":" + std::to_string(query_id)) !=
        std::string::npos) {
      logged = true;
    }
  }
  EXPECT_TRUE(logged) << "slow-query log misses the query (threshold 0)";

  // Filtering by the client's id pulls that query's server-side spans.
  auto filtered = client.FetchServerStats(query_id);
  ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
  EXPECT_NE(filtered->trace.find("execute"), std::string::npos)
      << filtered->trace;

  obs::Tracer::Global().SetEnabled(false);
  obs::Tracer::Global().Clear();
  obs::SlowQueryLog::Global().SetThresholdMs(-1);
  obs::SlowQueryLog::Global().Clear();
  server.Shutdown();
}

TEST(NetServer, ScriptsCommitAndQueryResultsFlowBack) {
  auto db = MakeSeededDb();
  Server server(db.get());
  ASSERT_TRUE(server.Start().ok());
  Client client = MustConnect(server);

  auto results = client.ExecuteScript(
      "begin insert(tally, {(1), (2)}); ? tally end;"
      "? unique(project([%2], beer));");
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 2u);
  EXPECT_EQ((*results)[0].size(), 2u);           // tally inside the bracket.
  EXPECT_EQ((*results)[1].distinct_size(), 3u);  // Three breweries.

  // The committed state is visible to a later query on the same session.
  auto tally = client.Query("tally");
  ASSERT_TRUE(tally.ok());
  EXPECT_EQ(tally->size(), 2u);
  server.Shutdown();
}

TEST(NetServer, ErrorFrameKeepsSessionUsable) {
  auto db = MakeSeededDb();
  Server server(db.get());
  ASSERT_TRUE(server.Start().ok());
  Client client = MustConnect(server);

  auto bad = client.Query("select(");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kParseError);

  auto missing = client.Query("no_such_relation");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // A failed bracket rolls back server-side and reports its status.
  auto aborted = client.ExecuteScript(
      "begin insert(tally, {(7)}); insert(tally, {('oops')}) end;");
  ASSERT_FALSE(aborted.ok());
  auto tally = client.Query("tally");
  ASSERT_TRUE(tally.ok());
  EXPECT_EQ(tally->size(), 0u) << "aborted bracket leaked effects";

  EXPECT_TRUE(client.Ping().ok()) << "session should survive error frames";
  server.Shutdown();
}

TEST(NetServer, EightConcurrentClientsQueryAndCommit) {
  auto db = MakeSeededDb();
  ServerOptions options;
  options.max_sessions = 8;
  Server server(db.get(), options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  constexpr int kRounds = 10;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = Client::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        auto q = client->Query("select(%3 > 4.5, beer)");
        if (!q.ok() || q->size() != 5u) ++failures;
        // Every client also commits: brackets queue on the serial slot.
        auto s = client->ExecuteScript("insert(tally, {(" +
                                       std::to_string(c * kRounds + round) +
                                       ")});");
        if (!s.ok()) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  Client checker = MustConnect(server);
  auto tally = checker.Query("tally");
  ASSERT_TRUE(tally.ok());
  EXPECT_EQ(tally->size(), static_cast<uint64_t>(kClients * kRounds));

  server.Shutdown();
  EXPECT_EQ(server.active_sessions(), 0);
  EXPECT_GE(server.sessions_served(), static_cast<uint64_t>(kClients));
}

TEST(NetServer, SessionCapQueuesExcessClients) {
  auto db = MakeSeededDb();
  ServerOptions options;
  options.max_sessions = 1;
  Server server(db.get(), options);
  ASSERT_TRUE(server.Start().ok());

  // With a cap of one, a second client queues in the kernel backlog until
  // the first disconnects — it is never rejected.
  Client first = MustConnect(server);
  EXPECT_TRUE(first.Ping().ok());

  std::thread second_thread([&] {
    Client second = MustConnect(server);
    EXPECT_TRUE(second.Ping().ok());
  });
  // Give the second client time to land in the backlog, then free the slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  first.Close();
  second_thread.join();
  server.Shutdown();
}

TEST(NetServer, ShutdownFrameDrainsServer) {
  auto db = MakeSeededDb();
  Server server(db.get());
  ASSERT_TRUE(server.Start().ok());

  Client client = MustConnect(server);
  EXPECT_TRUE(client.RequestShutdown().ok());

  server.Shutdown();  // Joins the drain triggered by the frame.
  EXPECT_EQ(server.active_sessions(), 0);
  EXPECT_TRUE(server.draining());

  // New connections are refused once drained (connect or handshake fails).
  auto late = Client::Connect("127.0.0.1", server.port());
  EXPECT_FALSE(late.ok());
}

TEST(NetServer, IdleSessionsAreReaped) {
  auto db = MakeSeededDb();
  ServerOptions options;
  options.idle_timeout_ms = 150;
  Server server(db.get(), options);
  ASSERT_TRUE(server.Start().ok());

  Client client = MustConnect(server);
  EXPECT_TRUE(client.Ping().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  // The server reaped the session; the next request fails.
  EXPECT_FALSE(client.Ping().ok());
  server.Shutdown();
  EXPECT_EQ(server.active_sessions(), 0);
}

TEST(NetServer, OversizedFrameIsRefused) {
  auto db = MakeSeededDb();
  ServerOptions options;
  options.max_frame_bytes = 1024;
  Server server(db.get(), options);
  ASSERT_TRUE(server.Start().ok());

  Client client = MustConnect(server);
  std::string big_script = "? select(%1 = '" + std::string(4096, 'x') +
                           "', beer);";
  auto result = client.ExecuteScript(big_script);
  ASSERT_FALSE(result.ok());
  // Either the server's Error frame arrived (InvalidArgument) or the
  // connection was already torn down (IoError) — both are clean refusals.
  EXPECT_TRUE(result.status().code() == StatusCode::kInvalidArgument ||
              result.status().code() == StatusCode::kIoError)
      << result.status().ToString();
  server.Shutdown();
}

TEST(NetServer, VersionMismatchIsRejected) {
  auto db = MakeSeededDb();
  Server server(db.get());
  ASSERT_TRUE(server.Start().ok());

  auto sock = Socket::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(
      WriteFrame(*sock, FrameKind::kHello, EncodeHello(999, "old-client"))
          .ok());
  auto response = ReadFrame(*sock, WireLimits{}, 5000);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->kind, FrameKind::kError);
  Status error = DecodeError(response->payload);
  EXPECT_EQ(error.code(), StatusCode::kUnavailable);
  EXPECT_NE(error.message().find("server speaks"), std::string::npos);
  server.Shutdown();
}

TEST(NetServer, GarbageBytesCloseTheConnection) {
  auto db = MakeSeededDb();
  Server server(db.get());
  ASSERT_TRUE(server.Start().ok());

  auto sock = Socket::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(sock->SendAll("GET / HTTP/1.1\r\n\r\n").ok());
  // The server answers with an Error frame (bad magic) and/or closes; the
  // key property is that it neither crashes nor hangs.
  auto response = ReadFrame(*sock, WireLimits{}, 5000);
  if (response.ok()) {
    EXPECT_EQ(response->kind, FrameKind::kError);
  }
  server.Shutdown();
  EXPECT_EQ(server.active_sessions(), 0);
}

TEST(NetServer, DoubleShutdownIsIdempotent) {
  auto db = MakeSeededDb();
  Server server(db.get());
  ASSERT_TRUE(server.Start().ok());
  server.Shutdown();
  server.Shutdown();
  EXPECT_EQ(server.active_sessions(), 0);
}

}  // namespace
}  // namespace net
}  // namespace mra
