// Final robustness pins: optimizer idempotence, physical bag-stream
// composition (operators consuming streams that repeat tuples across
// rows), and cross-layer agreement on randomized deep plans.

#include <gtest/gtest.h>

#include <random>

#include "mra/algebra/ops.h"
#include "mra/catalog/catalog.h"
#include "mra/exec/physical_planner.h"
#include "mra/opt/optimizer.h"
#include "test_util.h"

namespace mra {
namespace {

using ::mra::testing::IntRel;
using ::mra::testing::IntTuple;
using ::mra::testing::RandomIntRelation;

class RobustnessTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    std::mt19937_64 rng(GetParam());
    for (const char* name : {"a", "b", "c"}) {
      Relation rel = RandomIntRelation(rng, 2, 30, 10, 4);
      RelationSchema schema = rel.schema();
      schema.set_name(name);
      ASSERT_OK(catalog_.CreateRelation(schema));
      ASSERT_OK(catalog_.SetRelation(name, std::move(rel)));
    }
  }

  PlanPtr ScanOf(const char* name) {
    return Plan::Scan(name, catalog_.GetRelation(name).value()->schema());
  }

  Catalog catalog_;
};

// Optimizing an already-optimized plan changes neither semantics nor
// (after the first pass reaches its fixpoint) the plan materially.
TEST_P(RobustnessTest, OptimizerIsIdempotentInSemantics) {
  auto product = Plan::Product(ScanOf("a"), ScanOf("b"));
  ASSERT_OK(product);
  auto sel = Plan::Select(
      And(Eq(Attr(0), Attr(2)), Lt(Attr(1), Lit(int64_t{7}))), *product);
  ASSERT_OK(sel);
  auto grouped = Plan::GroupBy({0}, {{AggKind::kSum, 3, ""}}, *sel);
  ASSERT_OK(grouped);

  opt::Optimizer optimizer(&catalog_);
  auto once = optimizer.Optimize(*grouped);
  ASSERT_OK(once);
  auto twice = optimizer.Optimize(*once);
  ASSERT_OK(twice);

  auto r0 = EvaluatePlan(**grouped, catalog_);
  auto r1 = EvaluatePlan(**once, catalog_);
  auto r2 = EvaluatePlan(**twice, catalog_);
  ASSERT_OK(r0);
  ASSERT_OK(r1);
  ASSERT_OK(r2);
  EXPECT_REL_EQ(*r0, *r1);
  EXPECT_REL_EQ(*r1, *r2);
}

// A stream that repeats tuples across rows (UnionAll of overlapping
// inputs) feeding every stream-consuming operator must aggregate counts
// correctly.
TEST_P(RobustnessTest, BagStreamsComposeThroughAllOperators) {
  PlanPtr a = ScanOf("a");
  auto u = Plan::Union(a, a);  // every tuple appears in two stream rows
  ASSERT_OK(u);

  std::vector<PlanPtr> plans;
  auto add = [&plans](Result<PlanPtr> p) {
    ASSERT_OK(p);
    plans.push_back(*p);
  };
  add(Plan::Unique(*u));
  add(Plan::Difference(*u, a));
  add(Plan::Intersect(*u, a));
  add(Plan::GroupBy({0}, {{AggKind::kCnt, 0, ""}, {AggKind::kSum, 1, ""}},
                    *u));
  add(Plan::Join(Eq(Attr(0), Attr(2)), *u, *u));

  for (const PlanPtr& plan : plans) {
    auto reference = EvaluatePlan(*plan, catalog_);
    auto physical = exec::ExecutePlan(plan, catalog_);
    ASSERT_OK(reference);
    ASSERT_OK(physical);
    EXPECT_REL_EQ(*physical, *reference) << plan->ToString();
  }
}

// Deep randomized three-relation plans: reference evaluator, physical
// engine, and optimized physical plans all agree.
TEST_P(RobustnessTest, ThreeWayAgreementOnDeepPlans) {
  auto j1 = Plan::Join(Eq(Attr(0), Attr(2)), ScanOf("a"), ScanOf("b"));
  ASSERT_OK(j1);
  auto sel = Plan::Select(Le(Attr(1), Lit(int64_t{8})), *j1);
  ASSERT_OK(sel);
  auto j2 = Plan::Join(Eq(Attr(3), Attr(4)), *sel, ScanOf("c"));
  ASSERT_OK(j2);
  auto proj = Plan::Project({Attr(0), Add(Attr(1), Attr(5))}, *j2);
  ASSERT_OK(proj);
  auto uniq = Plan::Unique(*proj);
  ASSERT_OK(uniq);
  auto grouped = Plan::GroupBy({0}, {{AggKind::kMax, 1, ""}}, *uniq);
  ASSERT_OK(grouped);

  auto reference = EvaluatePlan(**grouped, catalog_);
  auto physical = exec::ExecutePlan(*grouped, catalog_);
  ASSERT_OK(reference);
  ASSERT_OK(physical);
  EXPECT_REL_EQ(*physical, *reference);

  opt::Optimizer optimizer(&catalog_);
  auto optimized = optimizer.Optimize(*grouped);
  ASSERT_OK(optimized);
  auto optimized_physical = exec::ExecutePlan(*optimized, catalog_);
  ASSERT_OK(optimized_physical);
  EXPECT_REL_EQ(*optimized_physical, *reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RobustnessTest,
                         ::testing::Range(uint64_t{1}, uint64_t{11}));

}  // namespace
}  // namespace mra
