// Tests for the XRA lexer and parser.

#include <gtest/gtest.h>

#include "mra/lang/lexer.h"
#include "mra/lang/parser.h"
#include "test_util.h"

namespace mra {
namespace lang {
namespace {

TEST(LexerTest, TokenizesPunctuationAndOperators) {
  auto tokens = Tokenize("( ) [ ] { } , ; : := ? = <> < <= > >= + - * /");
  ASSERT_OK(tokens);
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kLParen, TokenKind::kRParen,
                       TokenKind::kLBracket, TokenKind::kRBracket,
                       TokenKind::kLBrace, TokenKind::kRBrace,
                       TokenKind::kComma, TokenKind::kSemicolon,
                       TokenKind::kColon, TokenKind::kAssign,
                       TokenKind::kQuery, TokenKind::kEq, TokenKind::kNe,
                       TokenKind::kLt, TokenKind::kLe, TokenKind::kGt,
                       TokenKind::kGe, TokenKind::kPlus, TokenKind::kMinus,
                       TokenKind::kStar, TokenKind::kSlash,
                       TokenKind::kEnd}));
}

TEST(LexerTest, KeywordsVersusIdentifiers) {
  auto tokens = Tokenize("select beers union unions");
  ASSERT_OK(tokens);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kKwSelect);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[1].text, "beers");
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kKwUnion);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kIdentifier);
}

TEST(LexerTest, AttrRefsAreOneBased) {
  auto tokens = Tokenize("%1 %12");
  ASSERT_OK(tokens);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kAttrRef);
  EXPECT_EQ((*tokens)[0].attr_index, 0u);
  EXPECT_EQ((*tokens)[1].attr_index, 11u);
  EXPECT_FALSE(Tokenize("%0").ok());
}

TEST(LexerTest, BarePercentIsModulo) {
  auto tokens = Tokenize("%1 % 2");
  ASSERT_OK(tokens);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kPercent);
}

TEST(LexerTest, NumbersAndStrings) {
  auto tokens = Tokenize("42 3.14 'hello' 'it''s'");
  ASSERT_OK(tokens);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIntLit);
  EXPECT_EQ((*tokens)[0].text, "42");
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kRealLit);
  EXPECT_EQ((*tokens)[1].text, "3.14");
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kStringLit);
  EXPECT_EQ((*tokens)[2].text, "hello");
  EXPECT_EQ((*tokens)[3].text, "it's");
}

TEST(LexerTest, PrefixedLiterals) {
  auto tokens = Tokenize("date'1994-02-14' dec'12.34'");
  ASSERT_OK(tokens);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kDateLit);
  EXPECT_EQ((*tokens)[0].text, "1994-02-14");
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kDecimalLit);
  EXPECT_EQ((*tokens)[1].text, "12.34");
}

TEST(LexerTest, CommentsAndErrors) {
  auto tokens = Tokenize("1 -- the rest is ignored ';' \n 2");
  ASSERT_OK(tokens);
  EXPECT_EQ((*tokens)[1].text, "2");
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("@").ok());
}

TEST(ParserTest, ScalarPrecedence) {
  auto e = ParseScalarExpr("%1 + %2 * 3 = 7 and not %4 or %5 < 1");
  ASSERT_OK(e);
  EXPECT_EQ((*e)->ToString(),
            "((((%1 + (%2 * 3)) = 7) and (not %4)) or (%5 < 1))");
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  auto e = ParseScalarExpr("(%1 + %2) * 3");
  ASSERT_OK(e);
  EXPECT_EQ((*e)->ToString(), "((%1 + %2) * 3)");
}

TEST(ParserTest, UnaryMinusAndModulo) {
  auto e = ParseScalarExpr("-%1 % 2");
  ASSERT_OK(e);
  EXPECT_EQ((*e)->ToString(), "((-%1) %% 2)");
}

TEST(ParserTest, RelationalOperators) {
  auto e = ParseRelExpr(
      "project([%1], select((%6 = 'NL'), join((%2 = %4), beer, brewery)))");
  ASSERT_OK(e);
  EXPECT_EQ((*e)->kind, RelExpr::Kind::kProject);
  EXPECT_EQ((*e)->children[0]->kind, RelExpr::Kind::kSelect);
  EXPECT_EQ((*e)->children[0]->children[0]->kind, RelExpr::Kind::kJoin);
  // Round-trips through ToString.
  EXPECT_EQ((*e)->ToString(),
            "project([%1], select((%6 = 'NL'), "
            "join((%2 = %4), beer, brewery)))");
}

TEST(ParserTest, SetOperators) {
  for (const char* text :
       {"union(a, b)", "diff(a, b)", "intersect(a, b)", "product(a, b)",
        "unique(a)"}) {
    auto e = ParseRelExpr(text);
    ASSERT_OK(e);
    EXPECT_EQ((*e)->ToString(), text);
  }
}

TEST(ParserTest, GroupBySingleAndMultiAggregate) {
  auto e = ParseRelExpr("groupby([%6], avg(%3), beer)");
  ASSERT_OK(e);
  EXPECT_EQ((*e)->kind, RelExpr::Kind::kGroupBy);
  EXPECT_EQ((*e)->keys, (std::vector<size_t>{5}));
  ASSERT_EQ((*e)->aggs.size(), 1u);
  EXPECT_EQ((*e)->aggs[0].kind, AggKind::kAvg);
  EXPECT_EQ((*e)->aggs[0].attr, 2u);

  auto multi = ParseRelExpr("groupby([], cnt(%1), sum(%2), min(%2), r)");
  ASSERT_OK(multi);
  EXPECT_TRUE((*multi)->keys.empty());
  EXPECT_EQ((*multi)->aggs.size(), 3u);
}

TEST(ParserTest, GroupByRequiresAggregate) {
  EXPECT_FALSE(ParseRelExpr("groupby([%1], beer)").ok());
}

TEST(ParserTest, RelationLiterals) {
  auto e = ParseRelExpr("{(1, 'a') : 2, (2, 'b')}");
  ASSERT_OK(e);
  EXPECT_EQ((*e)->kind, RelExpr::Kind::kLiteral);
  const Relation& r = (*e)->literal;
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.Multiplicity(Tuple({Value::Int(1), Value::Str("a")})), 2u);
  EXPECT_EQ(r.schema().TypeOf(0), Type::Int());
  EXPECT_EQ(r.schema().TypeOf(1), Type::String());
}

TEST(ParserTest, RelationLiteralWithTypedValues) {
  auto e = ParseRelExpr("{(true, date'2026-07-06', dec'9.99', -1.5, -3)}");
  ASSERT_OK(e);
  const Relation& r = (*e)->literal;
  EXPECT_EQ(r.schema().TypeOf(0), Type::Bool());
  EXPECT_EQ(r.schema().TypeOf(1), Type::Date());
  EXPECT_EQ(r.schema().TypeOf(2), Type::Decimal());
  EXPECT_EQ(r.schema().TypeOf(3), Type::Real());
  EXPECT_EQ(r.schema().TypeOf(4), Type::Int());
}

TEST(ParserTest, NonUniformLiteralRejected) {
  EXPECT_FALSE(ParseRelExpr("{(1), ('a')}").ok());
  EXPECT_FALSE(ParseRelExpr("{(1), (1, 2)}").ok());
}

TEST(ParserTest, EmptyLiteralNeedsSchema) {
  EXPECT_FALSE(ParseRelExpr("{}").ok());
  auto e = ParseRelExpr("empty(x: int, s: string)");
  ASSERT_OK(e);
  EXPECT_TRUE((*e)->literal.empty());
  EXPECT_EQ((*e)->literal.schema().arity(), 2u);
  EXPECT_EQ((*e)->literal.schema().attribute(1).name, "s");
}

TEST(ParserTest, Statements) {
  auto script = ParseScript(
      "create beer(name: string, brewery: string, alcperc: real);\n"
      "insert(beer, {('pils', 'Guineken', 5.0)});\n"
      "delete(beer, select((%1 = 'pils'), beer));\n"
      "update(beer, select((%2 = 'Guineken'), beer), [%1, %2, %3 * 1.1]);\n"
      "x := unique(project([%1], beer));\n"
      "? x;\n"
      "drop beer;\n");
  ASSERT_OK(script);
  ASSERT_EQ(script->items.size(), 7u);
  EXPECT_EQ(script->items[0].stmts[0].kind, Stmt::Kind::kCreate);
  EXPECT_EQ(script->items[0].stmts[0].schema.arity(), 3u);
  EXPECT_EQ(script->items[1].stmts[0].kind, Stmt::Kind::kInsert);
  EXPECT_EQ(script->items[2].stmts[0].kind, Stmt::Kind::kDelete);
  EXPECT_EQ(script->items[3].stmts[0].kind, Stmt::Kind::kUpdate);
  EXPECT_EQ(script->items[3].stmts[0].alpha.size(), 3u);
  EXPECT_EQ(script->items[4].stmts[0].kind, Stmt::Kind::kAssign);
  EXPECT_EQ(script->items[4].stmts[0].target, "x");
  EXPECT_EQ(script->items[5].stmts[0].kind, Stmt::Kind::kQuery);
  EXPECT_EQ(script->items[6].stmts[0].kind, Stmt::Kind::kDrop);
}

TEST(ParserTest, TransactionBrackets) {
  auto script = ParseScript(
      "begin\n"
      "  insert(r, {(1)});\n"
      "  delete(r, {(2)})\n"
      "end;\n"
      "? r;");
  ASSERT_OK(script);
  ASSERT_EQ(script->items.size(), 2u);
  EXPECT_TRUE(script->items[0].is_transaction);
  EXPECT_EQ(script->items[0].stmts.size(), 2u);
  EXPECT_FALSE(script->items[1].is_transaction);
}

TEST(ParserTest, EmptyTransactionRejected) {
  EXPECT_FALSE(ParseScript("begin end").ok());
}

TEST(ParserTest, ErrorsCarryLineInfo) {
  auto bad = ParseScript("insert(beer {(1)})");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line"), std::string::npos);
}

TEST(ParserTest, StatementToStringRoundTrip) {
  const char* text =
      "update(beer, select((%2 = 'Guineken'), beer), [%1, %2, (%3 * 1.1)])";
  auto script = ParseScript(text);
  ASSERT_OK(script);
  EXPECT_EQ(script->items[0].stmts[0].ToString(), text);
}

}  // namespace
}  // namespace lang
}  // namespace mra
