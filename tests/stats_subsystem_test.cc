// Tests for the statistics subsystem: equi-depth histograms, ANALYZE
// collection, estimator edge cases, persistence through checkpoint + WAL,
// the ANALYZE statement front-ends (XRA and SQL) and the stats.* metrics.
//
// The histogram tests pin the properties the estimator relies on: buckets
// never split one value (equality stays sharp on skewed columns), range
// estimates interpolate linearly inside a bucket, and bucket mass is
// multiplicity-weighted (Definition 2.4's Dup function counts rows, not
// tuples).

#include "mra/stats/table_statistics.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "mra/catalog/catalog.h"
#include "mra/lang/interpreter.h"
#include "mra/obs/metrics.h"
#include "mra/opt/stats.h"
#include "mra/sql/translator.h"
#include "mra/stats/histogram.h"
#include "mra/txn/database.h"
#include "test_util.h"

namespace mra {
namespace stats {
namespace {

using ::mra::testing::IntRel;

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("mra_stats_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string path() const { return path_.string(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

// --- Equi-depth histogram. ---

TEST(HistogramTest, EmptyInputBuildsEmptyHistogram) {
  EquiDepthHistogram h = EquiDepthHistogram::Build({});
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.total_rows(), 0u);
  EXPECT_EQ(h.EstimateEqual(1.0), 0.0);
  EXPECT_EQ(h.SelectivityLess(1.0, true), 0.0);
}

TEST(HistogramTest, BucketsNeverSplitOneValue) {
  // Three heavy values; with depth = 3000/8 each closes its own bucket, so
  // equality estimates are exact even though the column is maximally
  // skewed — the property that makes equi-depth worth its build cost.
  EquiDepthHistogram h =
      EquiDepthHistogram::Build({{10, 1000}, {20, 1000}, {30, 1000}},
                                /*max_buckets=*/8);
  EXPECT_EQ(h.bucket_count(), 3u);
  EXPECT_EQ(h.total_rows(), 3000u);
  for (const HistogramBucket& b : h.buckets()) {
    EXPECT_EQ(b.lo, b.hi);
    EXPECT_EQ(b.distinct, 1u);
  }
  EXPECT_DOUBLE_EQ(h.EstimateEqual(20.0), 1000.0);
  EXPECT_DOUBLE_EQ(h.EstimateEqual(15.0), 0.0);  // between buckets
  EXPECT_DOUBLE_EQ(h.EstimateEqual(99.0), 0.0);  // outside the range
}

TEST(HistogramTest, DuplicateInputValuesMerge) {
  // The same value listed twice must land in one bucket with summed
  // multiplicity, never on a bucket boundary.
  EquiDepthHistogram h =
      EquiDepthHistogram::Build({{5, 300}, {5, 700}, {6, 1}}, 4);
  EXPECT_DOUBLE_EQ(h.EstimateEqual(5.0), 1000.0);
  EXPECT_EQ(h.total_rows(), 1001u);
}

TEST(HistogramTest, RangeEstimatesInterpolateLinearly) {
  std::vector<std::pair<double, uint64_t>> uniform;
  for (int i = 0; i < 1000; ++i) uniform.emplace_back(i, 1);
  EquiDepthHistogram h = EquiDepthHistogram::Build(std::move(uniform));
  EXPECT_EQ(h.bucket_count(), EquiDepthHistogram::kDefaultBuckets);
  EXPECT_EQ(h.total_rows(), 1000u);
  EXPECT_NEAR(h.SelectivityLess(500.0, false), 0.5, 0.02);
  EXPECT_NEAR(h.SelectivityLess(250.0, false), 0.25, 0.02);
  EXPECT_NEAR(h.SelectivityLess(999.0, true), 1.0, 0.001);
  EXPECT_DOUBLE_EQ(h.SelectivityLess(0.0, false), 0.0);
  // Every point estimate in a uniform column is one row.
  EXPECT_NEAR(h.EstimateEqual(123.0), 1.0, 0.001);
}

TEST(HistogramTest, BucketMassIsMultiplicityWeighted) {
  // 10 distinct values, value i with multiplicity 100·(i+1): buckets hold
  // roughly equal *row* mass, so the heavy tail gets more resolution (fewer
  // values per bucket) than the light head.
  std::vector<std::pair<double, uint64_t>> skew;
  uint64_t total = 0;
  for (int i = 0; i < 10; ++i) {
    skew.emplace_back(i, 100 * (i + 1));
    total += 100 * (i + 1);
  }
  EquiDepthHistogram h = EquiDepthHistogram::Build(std::move(skew), 5);
  EXPECT_EQ(h.total_rows(), total);
  EXPECT_LE(h.bucket_count(), 5u);
  // The last bucket (heaviest values) must span fewer distinct values than
  // the first.
  EXPECT_LE(h.buckets().back().distinct, h.buckets().front().distinct);
}

// --- ANALYZE collection. ---

TEST(AnalyzeCollectionTest, CountsRowsAndDistinctWithMultiplicities) {
  Relation r = IntRel("r", {{1, 10}, {2, 20}}, 2);
  ASSERT_OK(r.Insert(testing::IntTuple({1, 10}), 4));  // now multiplicity 5
  TableStatistics stats = Analyze(r, /*logical_time=*/7);
  EXPECT_EQ(stats.row_count, 6u);       // 5 + 1, weighted
  EXPECT_EQ(stats.distinct_count, 2u);  // two distinct tuples
  EXPECT_EQ(stats.collected_at, 7u);
  ASSERT_EQ(stats.columns.size(), 2u);
  EXPECT_EQ(stats.columns[0].distinct, 2u);
  EXPECT_EQ(stats.columns[0].null_fraction, 0.0);
  EXPECT_TRUE(stats.columns[0].has_range);
  EXPECT_EQ(stats.columns[0].min, 1.0);
  EXPECT_EQ(stats.columns[0].max, 2.0);
  // Histograms are multiplicity-weighted too.
  EXPECT_EQ(stats.columns[0].histogram.total_rows(), 6u);
  EXPECT_DOUBLE_EQ(stats.columns[0].histogram.EstimateEqual(1.0), 5.0);
}

TEST(AnalyzeCollectionTest, HistogramsOnlyOnOrderedNumericColumns) {
  Relation r(RelationSchema("r", {{"s", Type::String()},
                                  {"n", Type::Int()}}));
  ASSERT_OK(r.Insert(Tuple({Value::Str("a"), Value::Int(1)})));
  ASSERT_OK(r.Insert(Tuple({Value::Str("b"), Value::Int(2)})));
  TableStatistics stats = Analyze(r, 0);
  EXPECT_TRUE(stats.columns[0].histogram.empty());   // string
  EXPECT_FALSE(stats.columns[1].histogram.empty());  // int
  EXPECT_EQ(stats.histogram_count(), 1u);
  // Disabling histograms skips them everywhere.
  AnalyzeOptions no_hist;
  no_hist.histograms = false;
  TableStatistics bare = Analyze(r, 0, no_hist);
  EXPECT_EQ(bare.histogram_count(), 0u);
  EXPECT_EQ(bare.columns[1].distinct, 2u);
}

// --- Estimator edge cases (via stored snapshots). ---

class EstimatorEdgeTest : public ::testing::Test {
 protected:
  // Installs `r` and an ANALYZE snapshot for it, then returns the scan.
  PlanPtr Install(const Relation& r) {
    EXPECT_OK(catalog_.CreateRelation(r.schema()));
    EXPECT_OK(catalog_.SetRelation(r.schema().name(), r));
    EXPECT_OK(catalog_.SetStatistics(r.schema().name(),
                                     Analyze(r, catalog_.logical_time())));
    auto scan = Plan::Scan(r.schema().name(), r.schema());
    return scan;
  }

  double Estimate(const PlanPtr& plan) {
    opt::StatsCache cache(&catalog_);
    return opt::EstimateCardinality(*plan, catalog_, &cache);
  }

  Catalog catalog_;
};

TEST_F(EstimatorEdgeTest, EmptyRelationEstimatesZero) {
  Relation empty = IntRel("e", {}, 2);
  PlanPtr scan = Install(empty);
  EXPECT_DOUBLE_EQ(Estimate(scan), 0.0);
  auto sel = Plan::Select(Eq(Attr(0), Lit(int64_t{1})), scan);
  ASSERT_OK(sel);
  EXPECT_DOUBLE_EQ(Estimate(*sel), 0.0);
  auto uniq = Plan::Unique(scan);
  ASSERT_OK(uniq);
  EXPECT_DOUBLE_EQ(Estimate(*uniq), 0.0);
}

TEST_F(EstimatorEdgeTest, SingleDistinctValueColumnIsCertain) {
  // Every tuple carries c1 = 7: equality on 7 must select everything
  // (selectivity 1), and δ must estimate exactly one tuple.
  Relation r = IntRel("one", {{7, 1}, {7, 2}, {7, 3}}, 2);
  PlanPtr scan = Install(r);
  auto hit = Plan::Select(Eq(Attr(0), Lit(int64_t{7})), scan);
  ASSERT_OK(hit);
  EXPECT_NEAR(Estimate(*hit), 3.0, 1e-9);
  auto miss = Plan::Select(Eq(Attr(0), Lit(int64_t{8})), scan);
  ASSERT_OK(miss);
  EXPECT_NEAR(Estimate(*miss), 0.0, 1e-9);
  auto proj = Plan::ProjectIndexes({0}, scan);
  ASSERT_OK(proj);
  auto uniq = Plan::Unique(*proj);
  ASSERT_OK(uniq);
  EXPECT_NEAR(Estimate(*uniq), 1.0, 1e-9);
}

TEST_F(EstimatorEdgeTest, MultiplicitiesFarExceedDistinct) {
  // Three distinct tuples at multiplicity 10^6 each: weighted estimates
  // must count rows (3·10^6) while δ and Γ count tuples (3).
  Relation r(RelationSchema("heavy", {{"c1", Type::Int()}}));
  for (int64_t v : {1, 2, 3}) {
    ASSERT_OK(r.Insert(Tuple({Value::Int(v)}), 1000000));
  }
  PlanPtr scan = Install(r);
  EXPECT_DOUBLE_EQ(Estimate(scan), 3e6);
  auto uniq = Plan::Unique(scan);
  ASSERT_OK(uniq);
  EXPECT_NEAR(Estimate(*uniq), 3.0, 1e-9);
  // Equality on one value: the histogram isolates it exactly.
  auto sel = Plan::Select(Eq(Attr(0), Lit(int64_t{2})), scan);
  ASSERT_OK(sel);
  EXPECT_NEAR(Estimate(*sel), 1e6, 1.0);
}

TEST_F(EstimatorEdgeTest, AllNullColumnSelectsNothing) {
  // The live data model has no NULL (Definition 2.1 domains), so an
  // all-NULL column can only arise from a synthetic snapshot — but the
  // estimator math must already be right: a comparison with NULL holds for
  // no tuple, so null_fraction = 1 forces selectivity 0.
  RelationSchema schema("n", {{"c1", Type::Int()}});
  TableStatistics stats;
  stats.row_count = 100;
  stats.distinct_count = 1;
  ColumnStatistics col;
  col.distinct = 1;
  col.null_fraction = 1.0;
  stats.columns.push_back(col);
  ExprPtr eq = Eq(Attr(0), Lit(int64_t{5}));
  EXPECT_DOUBLE_EQ(opt::EstimateSelectivityWithStats(eq, schema, stats), 0.0);
  ExprPtr lt = Lt(Attr(0), Lit(int64_t{5}));
  EXPECT_DOUBLE_EQ(opt::EstimateSelectivityWithStats(lt, schema, stats), 0.0);
  // Halfway: null_fraction scales, it does not zero out.
  stats.columns[0].null_fraction = 0.5;
  EXPECT_NEAR(opt::EstimateSelectivityWithStats(eq, schema, stats), 0.5,
              1e-9);
}

TEST_F(EstimatorEdgeTest, StatsGoStaleNotInvalidAfterInserts) {
  Relation r = IntRel("s", {{1, 1}, {2, 2}}, 2);
  PlanPtr scan = Install(r);
  EXPECT_DOUBLE_EQ(Estimate(scan), 2.0);
  // Triple the relation behind the snapshot's back.
  Relation grown = IntRel("s", {{1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5},
                                {6, 6}}, 2);
  ASSERT_OK(catalog_.SetRelation("s", grown));
  catalog_.AdvanceTime();
  // The stored snapshot still answers — stale, not invalid.
  const TableStatistics* snap = catalog_.GetStatistics("s");
  ASSERT_NE(snap, nullptr);
  EXPECT_LT(snap->collected_at, catalog_.logical_time());
  EXPECT_DOUBLE_EQ(Estimate(scan), 2.0);
  // Re-ANALYZE refreshes the estimate.
  ASSERT_OK(catalog_.SetStatistics(
      "s", Analyze(grown, catalog_.logical_time())));
  EXPECT_DOUBLE_EQ(Estimate(scan), 6.0);
}

// --- Persistence: checkpoint image, WAL replay, DROP. ---

Result<std::unique_ptr<Database>> OpenAt(const std::string& dir) {
  DatabaseOptions options;
  options.directory = dir;
  return Database::Open(options);
}

// create t(a, b) with 7 weighted rows over 3 distinct tuples.
Status Seed(Database& db) {
  lang::Interpreter interp(&db);
  return interp.ExecuteScript(
      "create t(a: int, b: int);"
      "insert(t, {(1, 10) : 5, (2, 20), (3, 30)});",
      nullptr);
}

class StatsPersistenceTest : public ::testing::Test {};

TEST_F(StatsPersistenceTest, AnalyzeSurvivesWalReplay) {
  TempDir dir;
  {
    auto db = OpenAt(dir.path());
    ASSERT_OK(db);
    ASSERT_OK(Seed(**db));
    auto stats = (*db)->Analyze("t");
    ASSERT_OK(stats);
    EXPECT_EQ(stats->row_count, 7u);
    EXPECT_EQ(stats->distinct_count, 3u);
  }
  // No checkpoint taken: recovery replays the WAL, including kRecAnalyze.
  auto db = OpenAt(dir.path());
  ASSERT_OK(db);
  const TableStatistics* snap = (*db)->catalog().GetStatistics("t");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->row_count, 7u);
  EXPECT_EQ(snap->distinct_count, 3u);
  ASSERT_EQ(snap->columns.size(), 2u);
  EXPECT_EQ(snap->columns[0].distinct, 3u);
  EXPECT_FALSE(snap->columns[0].histogram.empty());
}

TEST_F(StatsPersistenceTest, AnalyzeSurvivesCheckpointImage) {
  TempDir dir;
  {
    auto db = OpenAt(dir.path());
    ASSERT_OK(db);
    ASSERT_OK(Seed(**db));
    auto analyzed = (*db)->Analyze("t");
    ASSERT_OK(analyzed);
    ASSERT_OK((*db)->Checkpoint());  // snapshot now lives in the image
  }
  auto db = OpenAt(dir.path());
  ASSERT_OK(db);
  const TableStatistics* snap = (*db)->catalog().GetStatistics("t");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->row_count, 7u);
  EXPECT_EQ(snap->columns[1].histogram.total_rows(), 7u);
}

TEST_F(StatsPersistenceTest, DropRelationDropsItsStatistics) {
  auto db = Database::Open();
  ASSERT_OK(db);
  ASSERT_OK(Seed(**db));
  auto analyzed = (*db)->Analyze("t");
  ASSERT_OK(analyzed);
  ASSERT_NE((*db)->catalog().GetStatistics("t"), nullptr);
  lang::Interpreter interp(db->get());
  ASSERT_OK(interp.ExecuteScript("drop t;", nullptr));
  EXPECT_EQ((*db)->catalog().GetStatistics("t"), nullptr);
}

TEST_F(StatsPersistenceTest, AnalyzeUnknownRelationIsNotFound) {
  auto db = Database::Open();
  ASSERT_OK(db);
  auto stats = (*db)->Analyze("ghost");
  EXPECT_FALSE(stats.ok());
}

// --- Statement front-ends. ---

TEST(AnalyzeStatementTest, XraAnalyzeProducesSummaryRelation) {
  auto db = Database::Open();
  ASSERT_OK(db);
  ASSERT_OK(Seed(**db));
  lang::Interpreter interp(db->get());
  std::vector<Relation> results;
  ASSERT_OK(interp.ExecuteScript("analyze t;",
                                 [&](const std::string&, const Relation& r) {
                                   results.push_back(r);
                                 }));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].schema().name(), "analyze");
  ASSERT_EQ(results[0].size(), 1u);
  const std::string& summary = results[0].begin()->first.at(0).string_value();
  EXPECT_NE(summary.find("rows=7"), std::string::npos) << summary;
  const TableStatistics* snap = (*db)->catalog().GetStatistics("t");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->row_count, 7u);
}

TEST(AnalyzeStatementTest, XraAnalyzeRejectedInsideBracket) {
  auto db = Database::Open();
  ASSERT_OK(db);
  ASSERT_OK(Seed(**db));
  lang::Interpreter interp(db->get());
  // Statistics describe committed state; a bracket's uncommitted writes
  // must not leak into them.
  Status st = interp.ExecuteScript("begin analyze t end;", nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ((*db)->catalog().GetStatistics("t"), nullptr);
}

TEST(AnalyzeStatementTest, SqlAnalyzeCollectsAndReports) {
  auto db = Database::Open();
  ASSERT_OK(db);
  sql::SqlSession session(db->get());
  ASSERT_OK(session.Execute(
      "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (1), (2);"));
  auto results = session.ExecuteCollect("ANALYZE t;");
  ASSERT_OK(results);
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].schema().name(), "analyze");
  const TableStatistics* snap = (*db)->catalog().GetStatistics("t");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->row_count, 3u);
  EXPECT_EQ(snap->distinct_count, 2u);
}

TEST(AnalyzeStatementTest, SqlAnalyzeRejectedInsideTransaction) {
  auto db = Database::Open();
  ASSERT_OK(db);
  sql::SqlSession session(db->get());
  ASSERT_OK(session.Execute("CREATE TABLE t (a INT);"));
  ASSERT_OK(session.Execute("BEGIN;"));
  EXPECT_FALSE(session.Execute("ANALYZE t;").ok());
}

// --- Metrics. ---

TEST(StatsMetricsTest, AnalyzeAndEstimateCountersMove) {
  obs::Counter* analyzes =
      obs::MetricsRegistry::Global().GetCounter("stats.analyze_total");
  obs::Counter* built =
      obs::MetricsRegistry::Global().GetCounter("stats.histograms_built");
  obs::Counter* estimates =
      obs::MetricsRegistry::Global().GetCounter("stats.estimate_calls");

  auto db = Database::Open();
  ASSERT_OK(db);
  ASSERT_OK(Seed(**db));
  uint64_t analyzes0 = analyzes->value();
  uint64_t built0 = built->value();
  auto analyzed = (*db)->Analyze("t");
  ASSERT_OK(analyzed);
  EXPECT_EQ(analyzes->value(), analyzes0 + 1);
  EXPECT_EQ(built->value(), built0 + 2);  // two int columns

  uint64_t estimates0 = estimates->value();
  Catalog catalog;
  Relation r = IntRel("r", {{1, 2}}, 2);
  ASSERT_OK(catalog.CreateRelation(r.schema()));
  ASSERT_OK(catalog.SetRelation("r", r));
  opt::EstimateCardinality(*Plan::Scan("r", r.schema()), catalog);
  EXPECT_EQ(estimates->value(), estimates0 + 1);
  // The ANALYZE latency histogram exists and recorded the call above.
  obs::Histogram* lat =
      obs::MetricsRegistry::Global().GetHistogram("stats.analyze_us");
  EXPECT_GE(lat->Snapshot().count, 1u);
}

}  // namespace
}  // namespace stats
}  // namespace mra
