// TPC-H-style differential gate for the ordered-query stack: a scaled-down
// customer/orders/lineitem database (tests/test_util.h generators), with
// multi-join + GROUP BY + HAVING + ORDER BY/LIMIT SQL queries shaped after
// the TPC-H workload, each executed under
//
//   * the definitional evaluator (use_physical_exec = false) — the oracle,
//   * the default physical plans (hash join),
//   * forced sort-merge join plans (sort_merge_join = true),
//   * forced external-sort spill (sort_spill_bytes = 64),
//
// and asserted bag-identical across all four.  The ORDER BY columns double
// as a determinism check: re-running a query must emit the same relation.

#include <gtest/gtest.h>

#include "mra/lang/interpreter.h"
#include "mra/sql/sql_parser.h"
#include "mra/sql/translator.h"
#include "test_util.h"

namespace mra {
namespace sql {
namespace {

using ::mra::testing::TpchMiniDb;

// Loads one generated relation into `db` via a literal-insert statement —
// the same path a translated INSERT takes, but without rendering several
// hundred rows (dates, decimals) back into SQL literal text.
void Load(Database* db, const Relation& rel) {
  ASSERT_OK(db->CreateRelation(rel.schema()));
  lang::Interpreter interp(db);
  auto txn_or = db->Begin();
  ASSERT_OK(txn_or);
  lang::Stmt stmt;
  stmt.kind = lang::Stmt::Kind::kInsert;
  stmt.target = rel.schema().name();
  auto node = std::make_shared<lang::RelExpr>();
  node->kind = lang::RelExpr::Kind::kLiteral;
  node->literal = rel;
  stmt.expr = std::move(node);
  ASSERT_OK(interp.ExecuteStmt(stmt, **txn_or, nullptr));
  ASSERT_OK((*txn_or)->Commit());
}

// The workload: joins across all three tables, aggregation, HAVING, and
// ORDER BY ... LIMIT — every query ends in an ordering so the sort node
// is on the critical path of each plan.
const char* const kQueries[] = {
    // Q1-like: pricing summary per return flag.
    "SELECT returnflag, COUNT(*) AS n, SUM(extprice) AS revenue "
    "FROM lineitem WHERE shipdate < DATE '1994-09-02' "
    "GROUP BY returnflag ORDER BY returnflag",
    // Q3-like: top orders by revenue.
    "SELECT orderkey, SUM(extprice) AS revenue, orderdate "
    "FROM orders, lineitem WHERE orderkey = l_orderkey "
    "GROUP BY orderkey, orderdate "
    "ORDER BY revenue DESC, orderdate LIMIT 10",
    // Q5-like: revenue per nation through a 3-way join.
    "SELECT nation, SUM(extprice) AS revenue "
    "FROM customer, orders, lineitem "
    "WHERE custkey = o_custkey AND orderkey = l_orderkey "
    "GROUP BY nation ORDER BY revenue DESC",
    // Q13-like: order counts per customer, aliased ordering key.
    "SELECT custkey, COUNT(*) AS c_count "
    "FROM customer, orders WHERE custkey = o_custkey "
    "GROUP BY custkey ORDER BY c_count DESC, custkey LIMIT 15",
    // HAVING + ORDER BY on a group key: big-ticket priorities only.
    "SELECT priority, COUNT(*) AS n FROM orders "
    "GROUP BY priority HAVING SUM(totalprice) > 1000 "
    "ORDER BY priority DESC",
    // Plain scan ordering with a compound key and weighted LIMIT: the
    // Top-K heap rides directly on base-table multiplicities.
    "SELECT * FROM lineitem ORDER BY shipdate, l_orderkey DESC LIMIT 25",
    // DISTINCT below the sort: ordering applies to the deduplicated bag.
    "SELECT DISTINCT nation FROM customer ORDER BY nation DESC",
};

class TpchMiniTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    auto db = Database::Open();
    ASSERT_OK(db);
    db_ = std::move(*db);
    TpchMiniDb data(GetParam());
    Load(db_.get(), data.customer);
    Load(db_.get(), data.orders);
    Load(db_.get(), data.lineitem);
  }

  Result<Relation> RunOne(const std::string& query,
                          const ExecConfig& config) {
    SqlSession session(db_.get(), config);
    MRA_ASSIGN_OR_RETURN(std::vector<Relation> results,
                         session.ExecuteCollect(query));
    if (results.size() != 1) {
      return Status::Internal("expected one result set");
    }
    return results[0];
  }

  std::unique_ptr<Database> db_;
};

TEST_P(TpchMiniTest, AllPlanShapesAgreeWithDefinitionalEvaluation) {
  ExecConfig definitional;
  definitional.exec.use_physical_exec = false;
  ExecConfig hash_plan;
  ExecConfig merge_plan = ConfigBuilder().SortMergeJoin(true).Build();
  ExecConfig spill_plan =
      ConfigBuilder().SortMergeJoin(true).SortSpillBytes(64).Build();

  for (const char* query : kQueries) {
    auto oracle = RunOne(query, definitional);
    ASSERT_OK(oracle);
    struct Named {
      const char* label;
      const ExecConfig* config;
    };
    for (const Named& plan : {Named{"hash", &hash_plan},
                              Named{"sort-merge", &merge_plan},
                              Named{"sort-merge+spill", &spill_plan}}) {
      auto got = RunOne(query, *plan.config);
      ASSERT_OK(got);
      EXPECT_REL_EQ(*got, *oracle)
          << "plan " << plan.label << " diverged on:\n  " << query;
    }
    // Determinism: the ordered query re-runs to the identical bag.
    auto again = RunOne(query, hash_plan);
    ASSERT_OK(again);
    EXPECT_REL_EQ(*again, *oracle) << "rerun diverged on:\n  " << query;
  }
}

TEST_P(TpchMiniTest, LimitIsAWeightedPrefixOfTheFullOrder) {
  // LIMIT k agrees with the unlimited query: every limited row must appear
  // in the full result with at least its multiplicity, and the limited
  // weighted size is exactly min(k, full size).
  ExecConfig config;
  auto full = RunOne(
      "SELECT orderkey, totalprice FROM orders ORDER BY totalprice DESC",
      config);
  ASSERT_OK(full);
  auto limited = RunOne(
      "SELECT orderkey, totalprice FROM orders "
      "ORDER BY totalprice DESC LIMIT 7",
      config);
  ASSERT_OK(limited);
  EXPECT_EQ(limited->size(), std::min<uint64_t>(7, full->size()));
  for (const auto& [tuple, count] : *limited) {
    EXPECT_GE(full->Multiplicity(tuple), count)
        << "limited row not in full order: " << tuple.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TpchMiniTest,
                         ::testing::Range(uint64_t{1}, uint64_t{5}));

// --- Front-end details the sweep cannot see. -----------------------------

class TpchFrontEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open();
    ASSERT_OK(db);
    db_ = std::move(*db);
    TpchMiniDb data(99, /*num_customers=*/5, /*num_orders=*/10);
    Load(db_.get(), data.customer);
    Load(db_.get(), data.orders);
  }

  std::unique_ptr<Database> db_;
};

TEST_F(TpchFrontEndTest, OrderByResolvesAliasColumnAndQualifiedName) {
  SqlSession session(db_.get());
  EXPECT_OK(session.ExecuteCollect(
      "SELECT custkey AS k FROM customer ORDER BY k").status());
  EXPECT_OK(session.ExecuteCollect(
      "SELECT custkey, name FROM customer ORDER BY name DESC").status());
  EXPECT_OK(session.ExecuteCollect(
      "SELECT * FROM customer ORDER BY customer.acctbal").status());
  EXPECT_OK(session.ExecuteCollect(
      "SELECT nation, COUNT(*) AS n FROM customer "
      "GROUP BY nation ORDER BY n DESC, nation LIMIT 3").status());
}

TEST_F(TpchFrontEndTest, OrderByRejectsColumnsOutsideTheOutput) {
  SqlSession session(db_.get());
  // `name` was projected away: ORDER BY sees the output frame only.
  auto s = session.ExecuteCollect(
      "SELECT custkey FROM customer ORDER BY name");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.status().message().find("not in the select list"),
            std::string::npos);
  // Aggregates are addressable by alias only.
  EXPECT_FALSE(session.ExecuteCollect(
      "SELECT nation, COUNT(*) AS n FROM customer "
      "GROUP BY nation ORDER BY acctbal").ok());
}

TEST_F(TpchFrontEndTest, LimitZeroAndNegativeAreRejected) {
  SqlSession session(db_.get());
  EXPECT_FALSE(session.ExecuteCollect(
      "SELECT * FROM customer LIMIT 0").ok());
  EXPECT_FALSE(session.ExecuteCollect(
      "SELECT * FROM customer LIMIT -3").ok());
}

TEST_F(TpchFrontEndTest, TranslationRendersASortNode) {
  auto stmts = ParseSql(
      "SELECT custkey FROM customer ORDER BY custkey DESC LIMIT 4");
  ASSERT_OK(stmts);
  auto translated =
      TranslateStatement((*stmts)[0], db_->catalog());
  ASSERT_OK(translated);
  std::string text = translated->ToString();
  EXPECT_NE(text.find("sort([-%1]"), std::string::npos) << text;
  EXPECT_NE(text.find(", 4)"), std::string::npos) << text;
}

}  // namespace
}  // namespace sql
}  // namespace mra
