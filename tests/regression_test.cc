// Assorted edge cases and regression pins across modules: numeric
// boundaries, empty/degenerate inputs, rendering stability, and the
// Explain surface.

#include <gtest/gtest.h>

#include "mra/algebra/ops.h"
#include "mra/lang/interpreter.h"
#include "mra/storage/serializer.h"
#include "mra/util/printer.h"
#include "test_util.h"

namespace mra {
namespace {

using ::mra::testing::IntRel;
using ::mra::testing::IntTuple;

TEST(RegressionTest, DecimalFormattingAtBoundaries) {
  EXPECT_EQ(Value::DecimalScaled(0).ToString(), "0");
  EXPECT_EQ(Value::DecimalScaled(-1).ToString(), "-0.0001");
  // Large magnitudes survive formatting and serialization.
  int64_t big = int64_t{922337203685477} * 10000;  // near the scaled max
  Value v = Value::DecimalScaled(big);
  storage::Encoder enc;
  enc.PutValue(v);
  storage::Decoder dec(enc.buffer());
  auto back = dec.GetValue();
  ASSERT_OK(back);
  EXPECT_EQ(back->decimal_scaled(), big);
}

TEST(RegressionTest, NegativeIntLiteralsThroughXra) {
  auto db = Database::Open();
  ASSERT_OK(db);
  lang::Interpreter interp(db->get());
  auto results = interp.ExecuteScriptCollect(
      "create t(x: int);"
      "insert(t, {(-5), (0), (5)});"
      "? select(%1 < 0, t);"
      "? project([-%1 * 2], t);");
  ASSERT_OK(results);
  EXPECT_EQ((*results)[0].Multiplicity(IntTuple({-5})), 1u);
  EXPECT_EQ((*results)[1].Multiplicity(IntTuple({10})), 1u);
  EXPECT_EQ((*results)[1].Multiplicity(IntTuple({-10})), 1u);
}

TEST(RegressionTest, ProjectionOntoSingleRepeatedColumn) {
  Relation r = IntRel("r", {{1, 2}}, 2);
  auto p = ops::ProjectIndexes({1, 1, 1}, r);
  ASSERT_OK(p);
  EXPECT_EQ(p->Multiplicity(IntTuple({2, 2, 2})), 1u);
}

TEST(RegressionTest, SelfJoinDoesNotAliasState) {
  // Joining a relation with itself must not corrupt shared state.
  Relation r = IntRel("r", {{1, 2}, {2, 3}}, 2);
  auto j = ops::Join(Eq(Attr(1), Attr(2)), r, r);
  ASSERT_OK(j);
  EXPECT_EQ(j->Multiplicity(IntTuple({1, 2, 2, 3})), 1u);
  EXPECT_EQ(j->size(), 1u);
  // r unchanged.
  EXPECT_EQ(r.size(), 2u);
}

TEST(RegressionTest, UnionOfRelationWithItself) {
  Relation r = IntRel("r", {{1}}, 1);
  auto u = ops::Union(r, r);
  ASSERT_OK(u);
  EXPECT_EQ(u->Multiplicity(IntTuple({1})), 2u);
}

TEST(RegressionTest, GroupByOnAllColumns) {
  // Grouping on every column degenerates to per-distinct-tuple counts.
  Relation r = IntRel("r", {{1, 2}, {1, 2}, {3, 4}}, 2);
  auto g = ops::GroupBy({0, 1}, {{AggKind::kCnt, 0, "n"}}, r);
  ASSERT_OK(g);
  EXPECT_EQ(g->Multiplicity(IntTuple({1, 2, 2})), 1u);
  EXPECT_EQ(g->Multiplicity(IntTuple({3, 4, 1})), 1u);
}

TEST(RegressionTest, EmptyRelationThroughEveryOperator) {
  Relation empty = IntRel("e", {}, 2);
  Relation some = IntRel("s", {{1, 2}}, 2);
  EXPECT_EQ(ops::Union(empty, empty)->size(), 0u);
  EXPECT_EQ(ops::Difference(empty, some)->size(), 0u);
  EXPECT_EQ(ops::Intersect(empty, some)->size(), 0u);
  EXPECT_EQ(ops::Product(empty, some)->size(), 0u);
  EXPECT_EQ(ops::Select(Lit(true), empty)->size(), 0u);
  EXPECT_EQ(ops::ProjectIndexes({0}, empty)->size(), 0u);
  EXPECT_EQ(ops::Unique(empty)->size(), 0u);
  EXPECT_EQ(ops::Join(Lit(true), empty, some)->size(), 0u);
}

TEST(RegressionTest, PrinterHandlesEmptyRelation) {
  Relation empty = IntRel("e", {}, 1);
  std::string table = util::RenderTable(empty);
  EXPECT_NE(table.find("c1"), std::string::npos);  // header still renders
}

TEST(RegressionTest, ExplainRendersAllThreePlans) {
  auto db = Database::Open();
  ASSERT_OK(db);
  lang::Interpreter interp(db->get());
  ASSERT_OK(interp.ExecuteScript(
      "create r(a: int, b: int); create s(a: int, c: int);"
      "insert(r, {(1, 2)}); insert(s, {(1, 3)});",
      nullptr));
  auto explained = interp.Explain(
      "project([%2], select(%1 = %3, product(r, s)))");
  ASSERT_OK(explained);
  EXPECT_NE(explained->find("logical plan:"), std::string::npos);
  EXPECT_NE(explained->find("optimized plan:"), std::string::npos);
  EXPECT_NE(explained->find("physical plan:"), std::string::npos);
  // Theorem 3.1 fired: σ(×) became a join, lowered to HashJoin.
  EXPECT_NE(explained->find("HashJoin"), std::string::npos);
  // Errors surface cleanly.
  EXPECT_FALSE(interp.Explain("select(%9 = 1, r)").ok());
}

TEST(RegressionTest, StringsWithQuotesAndUnicodeBytes) {
  auto db = Database::Open();
  ASSERT_OK(db);
  lang::Interpreter interp(db->get());
  auto results = interp.ExecuteScriptCollect(
      "create t(s: string);"
      "insert(t, {('it''s'), ('h\xc3\xa4llo')});"
      "? select(%1 = 'it''s', t);");
  ASSERT_OK(results);
  EXPECT_EQ((*results)[0].size(), 1u);
  EXPECT_EQ((*results)[0].begin()->first.at(0).string_value(), "it's");
}

TEST(RegressionTest, DeepExpressionNesting) {
  // 200-deep arithmetic chain parses and evaluates without issue.
  std::string expr = "%1";
  for (int i = 0; i < 200; ++i) expr = "(" + expr + " + 1)";
  auto db = Database::Open();
  ASSERT_OK(db);
  lang::Interpreter interp(db->get());
  ASSERT_OK(interp.ExecuteScript("create t(x: int); insert(t, {(0)});",
                                 nullptr));
  auto result = interp.Query("project([" + expr + "], t)");
  ASSERT_OK(result);
  EXPECT_EQ(result->begin()->first.at(0).int_value(), 200);
}

TEST(RegressionTest, ManyRelationsInOneCatalog) {
  auto db = Database::Open();
  ASSERT_OK(db);
  lang::Interpreter interp(db->get());
  for (int i = 0; i < 100; ++i) {
    std::string n = "rel" + std::to_string(i);
    ASSERT_OK(interp.ExecuteScript(
        "create " + n + "(x: int); insert(" + n + ", {(" +
            std::to_string(i) + ")});",
        nullptr));
  }
  EXPECT_EQ((*db)->catalog().relation_count(), 100u);
  auto r = interp.Query("union(rel3, rel97)");
  ASSERT_OK(r);
  EXPECT_EQ(r->size(), 2u);
}

TEST(RegressionTest, UpdateWithEmptyMatchSetIsNoop) {
  auto db = Database::Open();
  ASSERT_OK(db);
  lang::Interpreter interp(db->get());
  ASSERT_OK(interp.ExecuteScript(
      "create t(x: int); insert(t, {(1) : 5});"
      "update(t, select(%1 = 99, t), [%1 * 2]);",
      nullptr));
  auto r = interp.Query("t");
  ASSERT_OK(r);
  EXPECT_EQ(r->Multiplicity(IntTuple({1})), 5u);
}

TEST(RegressionTest, DeleteMoreThanPresentClampsToEmpty) {
  auto db = Database::Open();
  ASSERT_OK(db);
  lang::Interpreter interp(db->get());
  ASSERT_OK(interp.ExecuteScript(
      "create t(x: int); insert(t, {(1) : 2});"
      "delete(t, {(1) : 10});",
      nullptr));
  auto r = interp.Query("t");
  ASSERT_OK(r);
  EXPECT_TRUE(r->empty());
}

TEST(RegressionTest, DateArithmeticThroughLanguage) {
  auto db = Database::Open();
  ASSERT_OK(db);
  lang::Interpreter interp(db->get());
  auto results = interp.ExecuteScriptCollect(
      "create ev(day: date);"
      "insert(ev, {(date'1994-02-14'), (date'1994-03-02')});"
      "? select(%1 - date'1994-02-14' > 10, ev);"
      "? project([%1 + 7], ev);");
  ASSERT_OK(results);
  EXPECT_EQ((*results)[0].size(), 1u);
  EXPECT_TRUE((*results)[1].Contains(
      Tuple({Value::DateFromString("1994-02-21").value()})));
}

}  // namespace
}  // namespace mra
