// Differential tests for cost-based join ordering (optimizer v2).
//
// Theorem 3.3 licenses any bracketing of a ⋈/× region; these tests hold the
// enumerator to it: every reordered plan must evaluate to the *identical
// multiset* as the front-end order under the definitional evaluator, across
// multiplicities 1, 5 and 10^6 and under δ/⊎ contexts (where bag semantics
// diverge hardest from set semantics — δ does not commute through ⊎).
// Shape tests then check that the enumerator actually adopts cheaper orders
// and reports them through the optimizer trail.

#include "mra/opt/join_order.h"

#include <gtest/gtest.h>

#include <random>

#include "mra/algebra/evaluator.h"
#include "mra/catalog/catalog.h"
#include "mra/opt/optimizer.h"
#include "test_util.h"

namespace mra {
namespace opt {
namespace {

// Multiplicity ceilings cycled across the differential seeds: the set-like
// case, small duplication, and counts that overflow any int32 arithmetic.
constexpr uint64_t kMults[] = {1, 5, 1000000};

// A random two-int-column relation named `name`.  Values are drawn from a
// tiny range so equi-joins actually match across relations.
Relation RandomNamedRel(std::mt19937_64& rng, const std::string& name,
                        uint64_t max_mult) {
  Relation rel(RelationSchema(
      name, {{"a", Type::Int()}, {"b", Type::Int()}}));
  std::uniform_int_distribution<int64_t> value(0, 3);
  std::uniform_int_distribution<uint64_t> mult(1, max_mult);
  std::uniform_int_distribution<size_t> distinct(1, 8);
  size_t n = distinct(rng);
  for (size_t i = 0; i < n; ++i) {
    rel.InsertUnchecked(
        Tuple({Value::Int(value(rng)), Value::Int(value(rng))}), mult(rng));
  }
  return rel;
}

class JoinOrderTest : public ::testing::Test {
 protected:
  // Fills the catalog with r0 … r{n-1} drawn from `rng` and returns their
  // scans.
  std::vector<PlanPtr> Populate(std::mt19937_64& rng, size_t n,
                                uint64_t max_mult) {
    std::vector<PlanPtr> scans;
    for (size_t i = 0; i < n; ++i) {
      std::string name = "r" + std::to_string(i);
      Relation rel = RandomNamedRel(rng, name, max_mult);
      EXPECT_OK(catalog_.CreateRelation(rel.schema()));
      EXPECT_OK(catalog_.SetRelation(name, rel));
      scans.push_back(Plan::Scan(name, rel.schema()));
    }
    return scans;
  }

  // Left-deep chain: … ((r0 ⋈ r1) ⋈ r2) … with ri.b = r{i+1}.a conditions.
  PlanPtr Chain(const std::vector<PlanPtr>& scans) {
    PlanPtr acc = scans[0];
    for (size_t i = 1; i < scans.size(); ++i) {
      auto joined =
          Plan::Join(Eq(Attr(2 * i - 1), Attr(2 * i)), acc, scans[i]);
      EXPECT_OK(joined);
      acc = *joined;
    }
    return acc;
  }

  // Optimizes `plan` and requires the result to be the identical multiset.
  void ExpectPreservesSemantics(const PlanPtr& plan,
                                OptimizerReport* report = nullptr) {
    Optimizer optimizer(&catalog_);
    auto optimized = optimizer.Optimize(plan, report);
    ASSERT_OK(optimized);
    auto before = EvaluatePlan(*plan, catalog_);
    auto after = EvaluatePlan(**optimized, catalog_);
    ASSERT_OK(before);
    ASSERT_OK(after);
    EXPECT_REL_EQ(*before, *after)
        << "original:\n" << plan->ToString()
        << "optimized:\n" << (*optimized)->ToString();
  }

  Catalog catalog_;
};

// The 8-seed differential suite: chains, a δ cap, and ⊎ of two join
// regions, under all three multiplicity regimes.
TEST_F(JoinOrderTest, EightSeedDifferentialSuite) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    catalog_ = Catalog();
    std::mt19937_64 rng(seed);
    uint64_t max_mult = kMults[seed % 3];
    std::vector<PlanPtr> scans = Populate(rng, 4, max_mult);

    // Plain 4-relation chain.
    PlanPtr chain = Chain(scans);
    ExpectPreservesSemantics(chain);

    // δ over the region: reordering must not change which *tuples* exist
    // either (δ strips multiplicities after the region runs).
    auto dedup = Plan::Unique(chain);
    ASSERT_OK(dedup);
    ExpectPreservesSemantics(*dedup);

    // ⊎ of two independently reorderable regions, then δ above: the case
    // where set-based reasoning breaks (δ does not distribute over ⊎), so
    // any enumerator bug that multiplies or drops duplicates surfaces.
    PlanPtr left = Chain({scans[0], scans[1], scans[2]});
    PlanPtr right = Chain({scans[0], scans[2], scans[3]});
    auto both = Plan::Union(left, right);
    ASSERT_OK(both);
    ExpectPreservesSemantics(*both);
    auto capped = Plan::Unique(*both);
    ASSERT_OK(capped);
    ExpectPreservesSemantics(*capped);
  }
}

TEST_F(JoinOrderTest, StarQueryDifferential) {
  // A star region: fact(a, b) joins two dimension tables on separate
  // columns.  Reordering must preserve multiplicities across both join
  // edges simultaneously.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    catalog_ = Catalog();
    std::mt19937_64 rng(seed + 100);
    std::vector<PlanPtr> scans = Populate(rng, 3, kMults[seed % 3]);
    auto j1 = Plan::Join(Eq(Attr(0), Attr(2)), scans[0], scans[1]);
    ASSERT_OK(j1);
    auto j2 = Plan::Join(Eq(Attr(1), Attr(4)), *j1, scans[2]);
    ASSERT_OK(j2);
    ExpectPreservesSemantics(*j2);
  }
}

TEST_F(JoinOrderTest, CrossProductRegionDifferential) {
  // (r0 × r1) ⋈ r2 where the join condition links r0 and r2 only: the
  // region's join graph is disconnected at r1, so the enumerator must
  // handle a cross-product member without dropping or double-counting it.
  for (uint64_t seed = 0; seed < 4; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    catalog_ = Catalog();
    std::mt19937_64 rng(seed + 200);
    std::vector<PlanPtr> scans = Populate(rng, 3, kMults[seed % 3]);
    auto prod = Plan::Product(scans[0], scans[1]);
    ASSERT_OK(prod);
    auto join = Plan::Join(Eq(Attr(0), Attr(4)), *prod, scans[2]);
    ASSERT_OK(join);
    ExpectPreservesSemantics(*join);
  }
}

TEST_F(JoinOrderTest, GreedyFallbackAboveDpLimit) {
  // Twelve chained relations exceed kDpLeafLimit, forcing the greedy
  // enumerator; semantics must hold there too (same Theorem 3.3 argument,
  // different search strategy).
  static_assert(12 > kDpLeafLimit);
  std::mt19937_64 rng(42);
  std::vector<PlanPtr> scans = Populate(rng, 12, /*max_mult=*/2);
  PlanPtr chain = Chain(scans);
  ExpectPreservesSemantics(chain);
}

TEST_F(JoinOrderTest, AdoptsCheaperOrderAndReportsIt) {
  // r0 ⋈ r1 is a wide join of two bulky relations; r2 is a single tuple
  // that joins r1 down to almost nothing.  The front-end order pays for
  // the bulky intermediate; the enumerator must start from r2 instead and
  // say so in the trail.
  Relation r0(RelationSchema("r0", {{"a", Type::Int()}, {"b", Type::Int()}}));
  Relation r1(RelationSchema("r1", {{"a", Type::Int()}, {"b", Type::Int()}}));
  for (int64_t i = 0; i < 40; ++i) {
    r0.InsertUnchecked(Tuple({Value::Int(i % 4), Value::Int(i % 5)}), 25);
    r1.InsertUnchecked(Tuple({Value::Int(i % 5), Value::Int(i % 4)}), 25);
  }
  Relation r2(RelationSchema("r2", {{"a", Type::Int()}, {"b", Type::Int()}}));
  r2.InsertUnchecked(Tuple({Value::Int(2), Value::Int(2)}), 1);
  for (Relation* rel : {&r0, &r1, &r2}) {
    ASSERT_OK(catalog_.CreateRelation(rel->schema()));
    ASSERT_OK(catalog_.SetRelation(rel->schema().name(), *rel));
  }
  std::vector<PlanPtr> scans = {Plan::Scan("r0", r0.schema()),
                                Plan::Scan("r1", r1.schema()),
                                Plan::Scan("r2", r2.schema())};
  PlanPtr chain = Chain(scans);

  OptimizerReport report;
  ExpectPreservesSemantics(chain, &report);
  bool reordered = false;
  for (const std::string& entry : report.entries) {
    if (entry.rfind("reordered: ", 0) == 0) reordered = true;
  }
  EXPECT_TRUE(reordered) << "no reorder entry in the optimizer trail";
}

TEST_F(JoinOrderTest, RegionWithoutStatisticsLeftUntouched) {
  // One leaf scans a relation the provider cannot resolve: the region has
  // no estimate (kNoEstimate), so ReorderJoins must keep the front-end
  // order rather than gamble on fabricated numbers.
  std::mt19937_64 rng(7);
  std::vector<PlanPtr> scans = Populate(rng, 1, 1);
  PlanPtr ghost = Plan::Scan(
      "ghost",
      RelationSchema("ghost", {{"a", Type::Int()}, {"b", Type::Int()}}));
  auto join = Plan::Join(Eq(Attr(1), Attr(2)), scans[0], ghost);
  ASSERT_OK(join);
  StatsCache cache(&catalog_);
  std::vector<std::string> trail;
  auto reordered = ReorderJoins(*join, catalog_, &cache, &trail);
  ASSERT_OK(reordered);
  EXPECT_EQ((*reordered)->ToString(), (*join)->ToString());
  EXPECT_TRUE(trail.empty());
}

}  // namespace
}  // namespace opt
}  // namespace mra
