// Tests for the set-semantics baseline algebra, including the paper's
// central cautionary example: under set semantics, inserting a
// size-reducing projection silently changes aggregate results
// (Example 3.2), while the bag algebra is immune.

#include "mra/setalg/set_ops.h"

#include <gtest/gtest.h>

#include "mra/algebra/ops.h"
#include "test_util.h"

namespace mra {
namespace {

using ::mra::testing::IntRel;
using ::mra::testing::IntTuple;
using ::mra::testing::PaperBeerDb;

TEST(SetAlgTest, ToSetRemovesDuplicates) {
  Relation r = IntRel("r", {{1}, {1}, {2}}, 1);
  auto s = setalg::ToSet(r);
  ASSERT_OK(s);
  EXPECT_EQ(s->size(), 2u);
  EXPECT_EQ(s->Multiplicity(IntTuple({1})), 1u);
}

TEST(SetAlgTest, UnionIsSetUnion) {
  Relation a = IntRel("a", {{1}, {1}}, 1);
  Relation b = IntRel("b", {{1}, {2}}, 1);
  auto u = setalg::Union(a, b);
  ASSERT_OK(u);
  EXPECT_EQ(u->size(), 2u);  // {1, 2}, not {1:3, 2:1}
}

TEST(SetAlgTest, DifferenceIsMembershipBased) {
  // Set semantics: 1 ∈ b ⟹ no copy of 1 survives — unlike the bag
  // difference, which would keep 3 − 1 = 2 copies.
  Relation a = IntRel("a", {{1}, {1}, {1}, {2}}, 1);
  Relation b = IntRel("b", {{1}}, 1);
  auto set_diff = setalg::Difference(a, b);
  ASSERT_OK(set_diff);
  EXPECT_EQ(set_diff->Multiplicity(IntTuple({1})), 0u);
  EXPECT_EQ(set_diff->Multiplicity(IntTuple({2})), 1u);
  auto bag_diff = ops::Difference(a, b);
  ASSERT_OK(bag_diff);
  EXPECT_EQ(bag_diff->Multiplicity(IntTuple({1})), 2u);
}

TEST(SetAlgTest, IntersectAndProductAreSets) {
  Relation a = IntRel("a", {{1}, {1}, {2}}, 1);
  Relation b = IntRel("b", {{1}, {1}, {3}}, 1);
  auto i = setalg::Intersect(a, b);
  ASSERT_OK(i);
  EXPECT_EQ(i->Multiplicity(IntTuple({1})), 1u);
  auto p = setalg::Product(a, b);
  ASSERT_OK(p);
  EXPECT_EQ(p->Multiplicity(IntTuple({1, 1})), 1u);  // 2×2 copies collapse
  EXPECT_EQ(p->size(), 4u);                          // {1,2} × {1,3}
}

TEST(SetAlgTest, ProjectDeduplicates) {
  Relation r = IntRel("r", {{1, 10}, {1, 20}, {2, 30}}, 2);
  auto p = setalg::Project({Attr(0)}, r);
  ASSERT_OK(p);
  EXPECT_EQ(p->size(), 2u);  // bag projection would keep 3
  auto bag = ops::ProjectIndexes({0}, r);
  ASSERT_OK(bag);
  EXPECT_EQ(bag->size(), 3u);
}

TEST(SetAlgTest, SelectAndJoinOperateOnSupports) {
  Relation a = IntRel("a", {{1}, {1}, {2}}, 1);
  auto s = setalg::Select(Ge(Attr(0), Lit(int64_t{1})), a);
  ASSERT_OK(s);
  EXPECT_EQ(s->size(), 2u);
  Relation b = IntRel("b", {{1}, {1}}, 1);
  auto j = setalg::Join(Eq(Attr(0), Attr(1)), a, b);
  ASSERT_OK(j);
  EXPECT_EQ(j->Multiplicity(IntTuple({1, 1})), 1u);
}

TEST(SetAlgTest, OutputsAreAlwaysDuplicateFree) {
  Relation a = IntRel("a", {{1}, {1}, {2}, {2}, {3}}, 1);
  Relation b = IntRel("b", {{2}, {2}, {3}, {4}}, 1);
  for (const auto& result :
       {setalg::Union(a, b), setalg::Difference(a, b),
        setalg::Intersect(a, b), setalg::Select(Lt(Attr(0), Lit(int64_t{9})), a)}) {
    ASSERT_OK(result);
    for (const auto& [tuple, count] : *result) {
      EXPECT_EQ(count, 1u) << tuple.ToString();
    }
  }
}

TEST(SetAlgTest, Example32SetSemanticsGivesWrongAggregate) {
  // The paper's key demonstration.  Under bag semantics the early
  // projection is harmless; under set semantics it collapses duplicate
  // (alcperc, country) pairs and corrupts AVG.
  PaperBeerDb db;
  ExprPtr join_cond = Eq(Attr(1), Attr(3));

  // Correct reference: bag pipeline over the full join.
  auto bag_join = ops::Join(join_cond, db.beer, db.brewery);
  ASSERT_OK(bag_join);
  auto correct = ops::GroupBy({5}, {{AggKind::kAvg, 2, "avg"}}, *bag_join);
  ASSERT_OK(correct);

  // Set pipeline WITH the early projection of Example 3.2.
  auto set_join = setalg::Join(join_cond, db.beer, db.brewery);
  ASSERT_OK(set_join);
  auto set_narrow = setalg::Project({Attr(2), Attr(5)}, *set_join);
  ASSERT_OK(set_narrow);
  auto set_result = setalg::GroupBy({1}, {{AggKind::kAvg, 0, "avg"}},
                                    *set_narrow);
  ASSERT_OK(set_result);

  // Both have one row per country, but the NL averages differ: the set
  // pipeline lost one of the two (5.0, NL) rows to duplicate removal.
  EXPECT_EQ(correct->size(), set_result->size());
  double correct_nl = 0, set_nl = 0;
  for (const auto& [tuple, count] : *correct) {
    if (tuple.at(0).string_value() == "NL") correct_nl = tuple.at(1).real_value();
  }
  for (const auto& [tuple, count] : *set_result) {
    if (tuple.at(0).string_value() == "NL") set_nl = tuple.at(1).real_value();
  }
  EXPECT_DOUBLE_EQ(correct_nl, (5.0 * 2 + 6.5 + 7.0) / 4.0);
  EXPECT_DOUBLE_EQ(set_nl, (5.0 + 6.5 + 7.0) / 3.0);
  EXPECT_NE(correct_nl, set_nl);
}

TEST(SetAlgTest, SetAndBagAgreeOnDuplicateFreeInputs) {
  // On genuine sets the two algebras coincide (the classical theory is
  // the restriction of the bag theory).
  Relation a = IntRel("a", {{1}, {2}, {3}}, 1);
  Relation b = IntRel("b", {{2}, {3}, {4}}, 1);
  EXPECT_REL_EQ(*setalg::Union(a, b), *ops::Unique(*ops::Union(a, b)));
  EXPECT_REL_EQ(*setalg::Intersect(a, b), *ops::Intersect(a, b));
  EXPECT_REL_EQ(*setalg::Difference(a, b), *ops::Difference(a, b));
  EXPECT_REL_EQ(*setalg::Product(a, b), *ops::Product(a, b));
}

}  // namespace
}  // namespace mra
