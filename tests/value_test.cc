// Tests for the atomic value domains (Definition 2.1).

#include "mra/core/value.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace mra {
namespace {

TEST(TypeTest, NamesRoundTrip) {
  for (Type t : {Type::Bool(), Type::Int(), Type::Decimal(), Type::Real(),
                 Type::String(), Type::Date()}) {
    auto parsed = Type::FromName(t.name());
    ASSERT_OK(parsed);
    EXPECT_EQ(*parsed, t);
  }
}

TEST(TypeTest, FromNameRejectsUnknown) {
  EXPECT_EQ(Type::FromName("float").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Type::FromName("INT").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TypeTest, NumericClassification) {
  EXPECT_TRUE(Type::Int().IsNumeric());
  EXPECT_TRUE(Type::Real().IsNumeric());
  EXPECT_TRUE(Type::Decimal().IsNumeric());
  EXPECT_FALSE(Type::Bool().IsNumeric());
  EXPECT_FALSE(Type::String().IsNumeric());
  EXPECT_FALSE(Type::Date().IsNumeric());
}

TEST(TypeTest, CommonNumericPromotion) {
  EXPECT_EQ(Type::CommonNumeric(Type::Int(), Type::Int()), Type::Int());
  EXPECT_EQ(Type::CommonNumeric(Type::Int(), Type::Decimal()),
            Type::Decimal());
  EXPECT_EQ(Type::CommonNumeric(Type::Decimal(), Type::Real()), Type::Real());
  EXPECT_EQ(Type::CommonNumeric(Type::Real(), Type::Int()), Type::Real());
}

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_EQ(Value::Int(-7).int_value(), -7);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).real_value(), 2.5);
  EXPECT_EQ(Value::Str("abc").string_value(), "abc");
  EXPECT_EQ(Value::Date(100).date_days(), 100);
  EXPECT_EQ(Value::Decimal(12).decimal_scaled(), 120000);
  EXPECT_EQ(Value::DecimalScaled(123456).decimal_scaled(), 123456);
}

TEST(ValueTest, EqualitySameKind) {
  EXPECT_TRUE(Value::Int(3).Equals(Value::Int(3)));
  EXPECT_FALSE(Value::Int(3).Equals(Value::Int(4)));
  EXPECT_TRUE(Value::Str("x").Equals(Value::Str("x")));
  EXPECT_FALSE(Value::Str("x").Equals(Value::Str("y")));
  EXPECT_TRUE(Value::Bool(false) == Value::Bool(false));
  EXPECT_TRUE(Value::Real(1.5) != Value::Real(1.6));
}

TEST(ValueTest, CompareOrdersWithinDomain) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_GT(Value::Int(5).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(2).Compare(Value::Int(2)), 0);
  EXPECT_LT(Value::Str("abc").Compare(Value::Str("abd")), 0);
  EXPECT_LT(Value::Bool(false).Compare(Value::Bool(true)), 0);
  EXPECT_LT(Value::Real(-1.0).Compare(Value::Real(0.0)), 0);
  EXPECT_LT(Value::Date(10).Compare(Value::Date(11)), 0);
  EXPECT_LT(Value::DecimalScaled(100).Compare(Value::DecimalScaled(200)), 0);
}

TEST(ValueTest, HashEqualForEqualValues) {
  EXPECT_EQ(Value::Int(42).Hash(), Value::Int(42).Hash());
  EXPECT_EQ(Value::Str("beer").Hash(), Value::Str("beer").Hash());
  EXPECT_EQ(Value::Real(0.0).Hash(), Value::Real(-0.0).Hash());
}

TEST(ValueTest, HashDistinguishesKinds) {
  // int 1 and bool true share representation; kinds must separate them.
  EXPECT_NE(Value::Int(1).Hash(), Value::Bool(true).Hash());
  EXPECT_NE(Value::Int(5).Hash(), Value::Date(5).Hash());
}

TEST(ValueTest, AsRealWidensNumerics) {
  EXPECT_DOUBLE_EQ(Value::Int(3).AsReal(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Real(2.25).AsReal(), 2.25);
  EXPECT_DOUBLE_EQ(Value::DecimalScaled(123400).AsReal(), 12.34);
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Int(-12).ToString(), "-12");
  EXPECT_EQ(Value::Real(3.5).ToString(), "3.5");
  EXPECT_EQ(Value::Real(4.0).ToString(), "4.0");
  EXPECT_EQ(Value::Str("ale").ToString(), "'ale'");
}

TEST(DecimalTest, ParsePlain) {
  auto v = Value::DecimalFromString("12.34");
  ASSERT_OK(v);
  EXPECT_EQ(v->decimal_scaled(), 123400);
  EXPECT_EQ(v->ToString(), "12.34");
}

TEST(DecimalTest, ParseWholeAndFractionOnly) {
  EXPECT_EQ(Value::DecimalFromString("7")->decimal_scaled(), 70000);
  EXPECT_EQ(Value::DecimalFromString("0.5")->decimal_scaled(), 5000);
  EXPECT_EQ(Value::DecimalFromString(".25")->decimal_scaled(), 2500);
}

TEST(DecimalTest, ParseNegative) {
  EXPECT_EQ(Value::DecimalFromString("-3.1")->decimal_scaled(), -31000);
  EXPECT_EQ(Value::DecimalFromString("-3.1")->ToString(), "-3.1");
}

TEST(DecimalTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Value::DecimalFromString("").ok());
  EXPECT_FALSE(Value::DecimalFromString("abc").ok());
  EXPECT_FALSE(Value::DecimalFromString("1.23456").ok());  // > 4 digits
  EXPECT_FALSE(Value::DecimalFromString("1.2.3").ok());
  EXPECT_FALSE(Value::DecimalFromString("-").ok());
}

TEST(DecimalTest, ToStringTrimsTrailingZeros) {
  EXPECT_EQ(Value::DecimalScaled(50000).ToString(), "5");
  EXPECT_EQ(Value::DecimalScaled(51000).ToString(), "5.1");
  EXPECT_EQ(Value::DecimalScaled(50100).ToString(), "5.01");
  EXPECT_EQ(Value::DecimalScaled(1).ToString(), "0.0001");
}

TEST(DateTest, EpochIsDayZero) {
  EXPECT_EQ(Value::DaysFromCivil(1970, 1, 1), 0);
  int y, m, d;
  Value::CivilFromDays(0, &y, &m, &d);
  EXPECT_EQ(y, 1970);
  EXPECT_EQ(m, 1);
  EXPECT_EQ(d, 1);
}

TEST(DateTest, KnownDates) {
  // The paper appeared at ICDE, February 1994.
  EXPECT_EQ(Value::DaysFromCivil(1994, 2, 14), 8810);
  EXPECT_EQ(Value::DaysFromCivil(2000, 3, 1), 11017);
  EXPECT_EQ(Value::DaysFromCivil(1969, 12, 31), -1);
}

TEST(DateTest, CivilRoundTripAcrossLeapYears) {
  for (int64_t days = -1000; days <= 25000; days += 13) {
    int y, m, d;
    Value::CivilFromDays(days, &y, &m, &d);
    EXPECT_EQ(Value::DaysFromCivil(y, m, d), days);
  }
}

TEST(DateTest, ParseAndPrint) {
  auto v = Value::DateFromString("1994-02-14");
  ASSERT_OK(v);
  EXPECT_EQ(v->date_days(), 8810);
  EXPECT_EQ(v->ToString(), "1994-02-14");
}

TEST(DateTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Value::DateFromString("1994/02/14").ok());
  EXPECT_FALSE(Value::DateFromString("94-02-14").ok());
  EXPECT_FALSE(Value::DateFromString("1994-13-01").ok());
  EXPECT_FALSE(Value::DateFromString("1994-02-30").ok());
  EXPECT_FALSE(Value::DateFromString("").ok());
}

TEST(DateTest, LeapDayValidation) {
  EXPECT_OK(Value::DateFromCivil(2000, 2, 29));  // 400-year leap
  EXPECT_FALSE(Value::DateFromCivil(1900, 2, 29).ok());  // century non-leap
  EXPECT_FALSE(Value::DateFromCivil(1994, 2, 29).ok());
}

TEST(StatusTest, CodesAndMessages) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  Status err = Status::TypeError("bad domain");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kTypeError);
  EXPECT_EQ(err.ToString(), "TypeError: bad domain");
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  Result<int> bad = Status::NotFound("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_EQ(good.value_or(-1), 42);
}

}  // namespace
}  // namespace mra
