// Differential multiset-correctness suite for the hash-based physical
// operators (HashJoinOp, HashGroupByOp, DedupOp, SortDedupOp).
//
// Each operator is checked against its *definitional* implementation in
// mra/algebra/ops.h — direct transcriptions of Definitions 3.1/3.2/3.4 —
// over randomized multisets, demanding exact multiset equality (Def 2.3:
// the same tuples with the same multiplicities).  The set-semantics algebra
// (mra/setalg) serves as the degeneration oracle: hash δ must coincide with
// the set interpretation, and an Example-3.2-style case pins down that hash
// group-by follows the bag semantics where set semantics silently differs.
//
// The suite also pins the non-algebraic surface: Def 3.3 partiality of
// AVG/MIN/MAX over an empty input through both the XRA and SQL front ends,
// the optimizer's hash-vs-fallback choice as shown by EXPLAIN (ANALYZE),
// and the process-wide hash.* metrics.

#include <gtest/gtest.h>

#include <random>

#include "mra/algebra/ops.h"
#include "mra/exec/operator.h"
#include "mra/exec/physical_planner.h"
#include "mra/lang/interpreter.h"
#include "mra/obs/metrics.h"
#include "mra/setalg/set_ops.h"
#include "mra/sql/translator.h"
#include "test_util.h"

namespace mra {
namespace exec {
namespace {

using ::mra::testing::IntRel;
using ::mra::testing::IntTuple;
using ::mra::testing::PaperBeerDb;
using ::mra::testing::RandomIntRelation;

// Input profiles: multiplicity 1 degenerates to set behaviour on δ-free
// plans, 5 exercises ordinary bags, the huge profile guards the count
// arithmetic (products reach ~10^12, far past uint32).
struct Profile {
  uint64_t max_multiplicity;
  size_t max_distinct;
  int64_t value_range;
};
constexpr Profile kProfiles[] = {
    {1, 200, 25}, {5, 200, 25}, {1'000'000, 40, 8}};

/// Executes through both protocols (row-at-a-time and default batches) and
/// checks each against `expected`.
void ExpectOperatorResult(const std::function<PhysOpPtr()>& make,
                          const Relation& expected, const char* what) {
  for (size_t batch_size : {size_t{0}, kDefaultBatchSize}) {
    PhysOpPtr op = make();
    auto got = ExecuteToRelation(*op, batch_size);
    ASSERT_OK(got);
    EXPECT_REL_EQ(*got, expected)
        << what << " (batch_size=" << batch_size << ")";
  }
}

class HashOpsDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HashOpsDifferentialTest, HashJoinMatchesDefinitionalJoin) {
  std::mt19937_64 rng(GetParam());
  for (const Profile& p : kProfiles) {
    Relation r = RandomIntRelation(rng, 2, p.max_distinct, p.value_range,
                                   p.max_multiplicity);
    Relation s = RandomIntRelation(rng, 2, p.max_distinct, p.value_range,
                                   p.max_multiplicity);
    ExprPtr condition = Eq(Attr(0), Attr(2));
    auto oracle = ops::Join(condition, r, s);
    ASSERT_OK(oracle);
    ExpectOperatorResult(
        [&] {
          return std::make_unique<HashJoinOp>(
              std::vector<size_t>{0}, std::vector<size_t>{0}, nullptr,
              std::make_unique<ScanOp>(&r), std::make_unique<ScanOp>(&s));
        },
        *oracle, "hash join vs Def 3.2 join");
  }
}

TEST_P(HashOpsDifferentialTest, HashJoinMultiKeyAndResidual) {
  std::mt19937_64 rng(GetParam());
  Relation r = RandomIntRelation(rng, 3, 300, 10, 5);
  Relation s = RandomIntRelation(rng, 3, 300, 10, 5);
  // %0=%3 ∧ %1=%4 as keys, %2 < %5 as residual.
  ExprPtr condition =
      And(And(Eq(Attr(0), Attr(3)), Eq(Attr(1), Attr(4))),
          Lt(Attr(2), Attr(5)));
  auto oracle = ops::Join(condition, r, s);
  ASSERT_OK(oracle);
  ExpectOperatorResult(
      [&] {
        return std::make_unique<HashJoinOp>(
            std::vector<size_t>{0, 1}, std::vector<size_t>{0, 1},
            Lt(Attr(2), Attr(5)), std::make_unique<ScanOp>(&r),
            std::make_unique<ScanOp>(&s));
      },
      *oracle, "multi-key hash join with residual");
}

TEST_P(HashOpsDifferentialTest, HashJoinAllDuplicateInputs) {
  // Every row identical on both sides: one hash bucket, maximal chaining,
  // and the output multiplicity is exactly the product of the input sizes
  // (Def 3.1: (E1 × E3)(x1 ⊕ x3) = E1(x1) · E3(x3)).
  uint64_t m = 2 + GetParam(), n = 5 + GetParam();
  Relation r = IntRel("r", {{7, 1}}, 2);
  Relation s = IntRel("s", {{7, 2}}, 2);
  Relation rm(r.schema()), sn(s.schema());
  ASSERT_OK(rm.Insert(IntTuple({7, 1}), m));
  ASSERT_OK(sn.Insert(IntTuple({7, 2}), n));
  auto oracle = ops::Join(Eq(Attr(0), Attr(2)), rm, sn);
  ASSERT_OK(oracle);
  EXPECT_EQ(oracle->Multiplicity(IntTuple({7, 1, 7, 2})), m * n);
  ExpectOperatorResult(
      [&] {
        return std::make_unique<HashJoinOp>(
            std::vector<size_t>{0}, std::vector<size_t>{0}, nullptr,
            std::make_unique<ScanOp>(&rm), std::make_unique<ScanOp>(&sn));
      },
      *oracle, "all-duplicate hash join");
}

TEST_P(HashOpsDifferentialTest, HashJoinEmptySides) {
  std::mt19937_64 rng(GetParam());
  Relation r = RandomIntRelation(rng, 2, 100, 20, 5);
  Relation empty(r.schema());
  for (auto [left, right] : {std::pair<const Relation*, const Relation*>{
                                 &r, &empty},
                             {&empty, &r},
                             {&empty, &empty}}) {
    auto oracle = ops::Join(Eq(Attr(0), Attr(2)), *left, *right);
    ASSERT_OK(oracle);
    ExpectOperatorResult(
        [&, left = left, right = right] {
          return std::make_unique<HashJoinOp>(
              std::vector<size_t>{0}, std::vector<size_t>{0}, nullptr,
              std::make_unique<ScanOp>(left),
              std::make_unique<ScanOp>(right));
        },
        *oracle, "hash join with empty side(s)");
  }
}

TEST(HashOpsTest, HashJoinMixedTypeKeys) {
  // String key (beer.brewery = brewery.name) over the paper's database:
  // hash-key equality must agree with = on strings, and "pils" carries
  // multiplicity 2 through the join.
  PaperBeerDb db;
  ExprPtr condition = Eq(Attr(1), Attr(3));
  auto oracle = ops::Join(condition, db.beer, db.brewery);
  ASSERT_OK(oracle);
  ExpectOperatorResult(
      [&] {
        return std::make_unique<HashJoinOp>(
            std::vector<size_t>{1}, std::vector<size_t>{0}, nullptr,
            std::make_unique<ScanOp>(&db.beer),
            std::make_unique<ScanOp>(&db.brewery));
      },
      *oracle, "string-keyed hash join");
  EXPECT_EQ(oracle->Multiplicity(
                Tuple({Value::Str("pils"), Value::Str("Guineken"),
                       Value::Real(5.0), Value::Str("Guineken"),
                       Value::Str("Amsterdam"), Value::Str("NL")})),
            2u);
}

TEST_P(HashOpsDifferentialTest, DedupMatchesDefinitionalUnique) {
  std::mt19937_64 rng(GetParam());
  for (const Profile& p : kProfiles) {
    Relation r = RandomIntRelation(rng, 2, p.max_distinct, p.value_range,
                                   p.max_multiplicity);
    auto oracle = ops::Unique(r);
    ASSERT_OK(oracle);
    // δ is also exactly the set interpretation (Def 3.4 degenerates to
    // setalg::ToSet).
    auto as_set = setalg::ToSet(r);
    ASSERT_OK(as_set);
    EXPECT_REL_EQ(*oracle, *as_set);
    ExpectOperatorResult(
        [&] {
          return std::make_unique<DedupOp>(std::make_unique<ScanOp>(&r));
        },
        *oracle, "hash dedup vs Def 3.4 unique");
    ExpectOperatorResult(
        [&] {
          return std::make_unique<SortDedupOp>(std::make_unique<ScanOp>(&r));
        },
        *oracle, "sort dedup vs Def 3.4 unique");
  }
}

TEST_P(HashOpsDifferentialTest, DedupEdgeInputs) {
  // Empty input and an all-duplicate input (single distinct tuple with a
  // large multiplicity collapsing to 1).
  Relation empty = IntRel("e", {}, 2);
  Relation dup(empty.schema());
  ASSERT_OK(dup.Insert(IntTuple({3, 4}), 1'000'000 + GetParam()));
  for (const Relation* input : {&empty, &dup}) {
    auto oracle = ops::Unique(*input);
    ASSERT_OK(oracle);
    ExpectOperatorResult(
        [&, input = input] {
          return std::make_unique<DedupOp>(std::make_unique<ScanOp>(input));
        },
        *oracle, "hash dedup edge input");
    ExpectOperatorResult(
        [&, input = input] {
          return std::make_unique<SortDedupOp>(
              std::make_unique<ScanOp>(input));
        },
        *oracle, "sort dedup edge input");
  }
}

TEST_P(HashOpsDifferentialTest, GroupByMatchesDefinitionalGroupBy) {
  std::mt19937_64 rng(GetParam());
  for (const Profile& p : kProfiles) {
    Relation r = RandomIntRelation(rng, 3, p.max_distinct, p.value_range,
                                   p.max_multiplicity);
    // All five aggregate kinds at once; every group that exists is
    // non-empty, so AVG/MIN/MAX are defined (partiality is tested below).
    std::vector<AggSpec> aggs = {{AggKind::kCnt, 0, "n"},
                                 {AggKind::kSum, 1, "s"},
                                 {AggKind::kAvg, 1, "a"},
                                 {AggKind::kMin, 2, "lo"},
                                 {AggKind::kMax, 2, "hi"}};
    for (const std::vector<size_t>& keys :
         {std::vector<size_t>{0}, std::vector<size_t>{0, 1},
          std::vector<size_t>{}}) {
      if (keys.empty() && r.size() == 0) continue;  // Partial, tested below.
      auto oracle = ops::GroupBy(keys, aggs, r);
      ASSERT_OK(oracle);
      auto schema = ops::GroupBySchema(keys, aggs, r.schema());
      ASSERT_OK(schema);
      ExpectOperatorResult(
          [&] {
            return std::make_unique<HashGroupByOp>(
                keys, aggs, *schema, std::make_unique<ScanOp>(&r));
          },
          *oracle, "hash group-by vs Def 3.4 Γ");
    }
  }
}

TEST(HashOpsTest, GroupByFollowsBagSemanticsNotSetSemantics) {
  // Example 3.2 in miniature: a duplicated row must be aggregated once per
  // occurrence.  The bag oracle and the hash operator agree; the
  // set-semantics Γ sees the distinct tuple once and differs.
  Relation r(IntRel("r", {{1, 10}}, 2).schema());
  ASSERT_OK(r.Insert(IntTuple({1, 10}), 2));
  ASSERT_OK(r.Insert(IntTuple({2, 5}), 1));
  std::vector<AggSpec> aggs = {{AggKind::kSum, 1, "s"}};
  auto bag = ops::GroupBy({0}, aggs, r);
  ASSERT_OK(bag);
  auto set = setalg::GroupBy({0}, aggs, r);
  ASSERT_OK(set);
  EXPECT_EQ(bag->Multiplicity(IntTuple({1, 20})), 1u);  // 10 counted twice.
  EXPECT_EQ(set->Multiplicity(IntTuple({1, 10})), 1u);  // …or once, set-wise.
  EXPECT_FALSE(bag->Equals(*set));
  auto schema = ops::GroupBySchema({0}, aggs, r.schema());
  ASSERT_OK(schema);
  ExpectOperatorResult(
      [&] {
        return std::make_unique<HashGroupByOp>(
            std::vector<size_t>{0}, aggs, *schema,
            std::make_unique<ScanOp>(&r));
      },
      *bag, "hash group-by must follow the bag oracle");
}

TEST_P(HashOpsDifferentialTest, JoinDegeneratesToSetJoinOnSupports) {
  // δ(E1 ⋈ E2) = δ(E1) ⋈_set δ(E2): deduping the hash join's bag output
  // yields exactly the set-semantics join of the supports.
  std::mt19937_64 rng(GetParam());
  Relation r = RandomIntRelation(rng, 2, 150, 20, 5);
  Relation s = RandomIntRelation(rng, 2, 150, 20, 5);
  auto set_join = setalg::Join(Eq(Attr(0), Attr(2)), r, s);
  ASSERT_OK(set_join);
  auto op = std::make_unique<DedupOp>(std::make_unique<HashJoinOp>(
      std::vector<size_t>{0}, std::vector<size_t>{0}, nullptr,
      std::make_unique<ScanOp>(&r), std::make_unique<ScanOp>(&s)));
  auto got = ExecuteToRelation(*op);
  ASSERT_OK(got);
  EXPECT_REL_EQ(*got, *set_join);
}

TEST(HashOpsTest, OperatorReopenRecyclesArena) {
  // Executing the same operator instance twice must give identical results:
  // the second Open reuses the parked hash arena (HashKeyIndex::Reset).
  std::mt19937_64 rng(99);
  Relation r = RandomIntRelation(rng, 2, 200, 25, 5);
  Relation s = RandomIntRelation(rng, 2, 200, 25, 5);
  HashJoinOp join(std::vector<size_t>{0}, std::vector<size_t>{0}, nullptr,
                  std::make_unique<ScanOp>(&r), std::make_unique<ScanOp>(&s));
  auto first = ExecuteToRelation(join);
  ASSERT_OK(first);
  auto second = ExecuteToRelation(join);
  ASSERT_OK(second);
  EXPECT_REL_EQ(*first, *second);

  DedupOp dedup(std::make_unique<ScanOp>(&r));
  auto d1 = ExecuteToRelation(dedup);
  ASSERT_OK(d1);
  auto d2 = ExecuteToRelation(dedup);
  ASSERT_OK(d2);
  EXPECT_REL_EQ(*d1, *d2);

  std::vector<AggSpec> aggs = {{AggKind::kSum, 1, "s"}};
  auto schema = ops::GroupBySchema({0}, aggs, r.schema());
  ASSERT_OK(schema);
  HashGroupByOp gb(std::vector<size_t>{0}, aggs, *schema,
                   std::make_unique<ScanOp>(&r));
  auto g1 = ExecuteToRelation(gb);
  ASSERT_OK(g1);
  auto g2 = ExecuteToRelation(gb);
  ASSERT_OK(g2);
  EXPECT_REL_EQ(*g1, *g2);
}

TEST(HashOpsTest, HashMetricsSurfaceInRegistryAndOperator) {
  std::mt19937_64 rng(7);
  Relation r = RandomIntRelation(rng, 2, 200, 25, 5);
  Relation s = RandomIntRelation(rng, 2, 200, 25, 5);
  // Guarantee a joinable row on each side, whatever the seed produced.
  ASSERT_OK(r.Insert(IntTuple({1, 1}), 1));
  ASSERT_OK(s.Insert(IntTuple({1, 2}), 1));
  obs::Counter* build =
      obs::MetricsRegistry::Global().GetCounter("hash.build_rows");
  obs::Counter* probe =
      obs::MetricsRegistry::Global().GetCounter("hash.probe_rows");
  obs::Gauge* peak = obs::MetricsRegistry::Global().GetGauge("hash.peak_bytes");
  uint64_t build_before = build->value();
  uint64_t probe_before = probe->value();

  HashJoinOp join(std::vector<size_t>{0}, std::vector<size_t>{0}, nullptr,
                  std::make_unique<ScanOp>(&r), std::make_unique<ScanOp>(&s));
  ASSERT_OK(ExecuteToRelation(join).status());
  EXPECT_EQ(join.metrics().build_rows, s.distinct_size());
  EXPECT_EQ(join.metrics().probe_rows, r.distinct_size());
  EXPECT_GT(join.metrics().hash_bytes, 0u);
  EXPECT_EQ(build->value() - build_before, join.metrics().build_rows);
  EXPECT_EQ(probe->value() - probe_before, join.metrics().probe_rows);
  EXPECT_GE(static_cast<uint64_t>(peak->value()), join.metrics().hash_bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HashOpsDifferentialTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

// --- Aggregate partiality (Def 3.3) through the front ends. ---

class HashOpsFrontEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open();
    ASSERT_OK(db);
    db_ = std::move(*db);
    interp_ = std::make_unique<lang::Interpreter>(db_.get());
    ASSERT_OK(interp_->ExecuteScript(
        "create t(a: int, b: int);"
        "create u(a: int, b: int);"
        "insert(u, {(1, 10), (1, 20), (2, 5)});",
        nullptr));
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<lang::Interpreter> interp_;
};

TEST_F(HashOpsFrontEndTest, XraAvgMinMaxOverEmptyInputAreUndefined) {
  // t is empty: the global group exists (Def 3.4's single-attribute-tuple
  // case) but AVG/MIN/MAX of zero tuples are partial — they must error
  // with kUndefined, not return 0.
  for (const char* agg : {"avg", "min", "max"}) {
    auto result =
        interp_->Query(std::string("groupby([], ") + agg + "(%1), t)");
    ASSERT_FALSE(result.ok()) << agg << " over empty input must be undefined";
    EXPECT_EQ(result.status().code(), StatusCode::kUndefined) << agg;
  }
  // CNT and SUM are total: one global row with 0.
  auto cnt = interp_->Query("groupby([], cnt(%1), t)");
  ASSERT_OK(cnt);
  EXPECT_EQ(cnt->Multiplicity(IntTuple({0})), 1u);
  auto sum = interp_->Query("groupby([], sum(%1), t)");
  ASSERT_OK(sum);
  EXPECT_EQ(sum->Multiplicity(IntTuple({0})), 1u);
}

TEST_F(HashOpsFrontEndTest, SqlAvgOverEmptyTableIsUndefined) {
  sql::SqlSession session(db_.get());
  for (const char* agg : {"AVG(b)", "MIN(b)", "MAX(b)"}) {
    auto result = session.ExecuteCollect(std::string("SELECT ") + agg +
                                         " FROM t");
    ASSERT_FALSE(result.ok()) << agg << " over empty table must be undefined";
    EXPECT_EQ(result.status().code(), StatusCode::kUndefined) << agg;
  }
  auto cnt = session.ExecuteCollect("SELECT COUNT(*) FROM t");
  ASSERT_OK(cnt);
  ASSERT_EQ(cnt->size(), 1u);
  EXPECT_EQ((*cnt)[0].Multiplicity(IntTuple({0})), 1u);
}

TEST_F(HashOpsFrontEndTest, NonEmptyGroupsKeepAvgDefined) {
  // Groups only exist where rows exist, so a keyed AVG never hits the
  // partial case — even though some *other* key value is absent.
  auto result = interp_->Query("groupby([%1], avg(%2), u)");
  ASSERT_OK(result);
  EXPECT_EQ(
      result->Multiplicity(Tuple({Value::Int(1), Value::Real(15.0)})), 1u);
  EXPECT_EQ(result->Multiplicity(Tuple({Value::Int(2), Value::Real(5.0)})),
            1u);
}

// --- Planner choice, visible through EXPLAIN (ANALYZE). ---

TEST_F(HashOpsFrontEndTest, ExplainShowsHashJoinKeysAndBuildProbeCounts) {
  auto plan = interp_->Explain("join(%1 = %3, u, u)");
  ASSERT_OK(plan);
  EXPECT_NE(plan->find("HashJoin"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("[keys: %1=%3]"), std::string::npos) << *plan;

  auto analyzed = interp_->ExplainAnalyze("join(%1 = %3, u, u)");
  ASSERT_OK(analyzed);
  EXPECT_NE(analyzed->find("HashJoin"), std::string::npos) << *analyzed;
  EXPECT_NE(analyzed->find("build="), std::string::npos) << *analyzed;
  EXPECT_NE(analyzed->find("probe="), std::string::npos) << *analyzed;
  EXPECT_NE(analyzed->find("hashKB="), std::string::npos) << *analyzed;
}

TEST_F(HashOpsFrontEndTest, ExplainShowsNestedLoopFallbackForThetaJoin) {
  auto plan = interp_->Explain("join(%1 < %3, u, u)");
  ASSERT_OK(plan);
  EXPECT_EQ(plan->find("HashJoin"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("NestedLoopJoin"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("[fallback: predicate not hashable]"),
            std::string::npos)
      << *plan;
}

TEST_F(HashOpsFrontEndTest, HashOpsDisabledFallsBackEverywhere) {
  lang::InterpreterOptions options;
  options.exec.hash_ops = false;
  lang::Interpreter interp(db_.get(), options);

  auto join_plan = interp.Explain("join(%1 = %3, u, u)");
  ASSERT_OK(join_plan);
  EXPECT_EQ(join_plan->find("HashJoin"), std::string::npos) << *join_plan;
  EXPECT_NE(join_plan->find("NestedLoopJoin"), std::string::npos)
      << *join_plan;
  EXPECT_NE(join_plan->find("[fallback: hash ops disabled]"),
            std::string::npos)
      << *join_plan;

  auto dedup_plan = interp.Explain("unique(u)");
  ASSERT_OK(dedup_plan);
  EXPECT_NE(dedup_plan->find("SortDedup"), std::string::npos) << *dedup_plan;

  // The fallback plans still compute the same multisets.
  auto with_hash = interp_->Query("join(%1 = %3, u, u)");
  ASSERT_OK(with_hash);
  auto without_hash = interp.Query("join(%1 = %3, u, u)");
  ASSERT_OK(without_hash);
  EXPECT_REL_EQ(*with_hash, *without_hash);
  auto uniq_hash = interp_->Query("unique(project([%1], u))");
  ASSERT_OK(uniq_hash);
  auto uniq_sort = interp.Query("unique(project([%1], u))");
  ASSERT_OK(uniq_sort);
  EXPECT_REL_EQ(*uniq_hash, *uniq_sort);
}

}  // namespace
}  // namespace exec
}  // namespace mra
