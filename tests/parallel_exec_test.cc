// Differential and governance suite for the morsel-driven parallel kernels
// (docs/PARALLELISM.md).  The oracle is always the single-threaded
// definitional path (mra/algebra) — Definition 3.1 for join multiplicities,
// Definition 3.3 for aggregates, δ for dedup — so any partitioning or merge
// bug shows up as a bag mismatch, not just a flaky count.
//
// The matrix runs every parallel operator at worker counts 1/2/8 and
// morsel/batch granularities 1/7/1024 over seeded random inputs whose
// multiplicities reach 10^6 (multiplicity arithmetic must not be rebuilt
// from row repetition).  The cancel hammer and the failpoint kills are the
// TSan targets: cancellation arriving from another thread must land within
// one morsel on every lane and unwind with balanced memory accounting.

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "mra/algebra/ops.h"
#include "mra/common/config.h"
#include "mra/exec/exec_context.h"
#include "mra/exec/operator.h"
#include "mra/fault/failpoint.h"
#include "mra/lang/interpreter.h"
#include "mra/obs/metrics.h"
#include "mra/parallel/parallel_ops.h"
#include "mra/parallel/worker_pool.h"
#include "test_util.h"

namespace mra {
namespace {

using mra::testing::RandomIntRelation;

exec::PhysOpPtr Scan(const Relation& rel) {
  return std::make_unique<exec::ScanOp>(&rel);
}

exec::PhysOpPtr ParallelJoin(const Relation& left, const Relation& right,
                             size_t workers, size_t morsel) {
  return std::make_unique<parallel::ParallelHashJoinOp>(
      std::vector<size_t>{0}, std::vector<size_t>{0}, nullptr, Scan(left),
      Scan(right), workers, morsel);
}

exec::PhysOpPtr ParallelGroupBy(const Relation& input,
                                const std::vector<size_t>& keys,
                                const std::vector<AggSpec>& aggs,
                                size_t workers, size_t morsel) {
  auto schema = ops::GroupBySchema(keys, aggs, input.schema());
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  return std::make_unique<parallel::ParallelHashGroupByOp>(
      keys, aggs, *schema, Scan(input), workers, morsel);
}

std::vector<AggSpec> AllAggs() {
  return {{AggKind::kSum, 1, "sum_v"},
          {AggKind::kCnt, 0, "cnt"},
          {AggKind::kMin, 1, "min_v"},
          {AggKind::kMax, 1, "max_v"}};
}

// --- The differential matrix: 8 seeds x workers {1,2,8} x morsel {1,7,1024}
// --- x multiplicities {1, 5, 10^6}, every operator against its definition.

TEST(ParallelExecDifferential, JoinGroupByDedupMatchDefinitionalOracle) {
  const size_t worker_counts[] = {1, 2, 8};
  const size_t granularities[] = {1, 7, 1024};
  const uint64_t multiplicities[] = {1, 5, 1000000};
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    std::mt19937_64 rng(seed);
    uint64_t max_mult = multiplicities[seed % 3];
    Relation r = RandomIntRelation(rng, 2, 200, 40, max_mult);
    Relation s = RandomIntRelation(rng, 2, 150, 40, max_mult);

    auto join_oracle = ops::Join(Eq(Attr(0), Attr(2)), r, s);
    auto group_oracle = ops::GroupBy({0}, AllAggs(), r);
    auto dedup_oracle = ops::Unique(r);
    ASSERT_OK(join_oracle);
    ASSERT_OK(group_oracle);
    ASSERT_OK(dedup_oracle);

    for (size_t workers : worker_counts) {
      for (size_t morsel : granularities) {
        SCOPED_TRACE("seed=" + std::to_string(seed) +
                     " workers=" + std::to_string(workers) +
                     " morsel=" + std::to_string(morsel) +
                     " mult=" + std::to_string(max_mult));
        auto join = exec::ExecuteToRelation(
            *ParallelJoin(r, s, workers, morsel), morsel);
        ASSERT_OK(join);
        EXPECT_REL_EQ(*join, *join_oracle);

        auto grouped = exec::ExecuteToRelation(
            *ParallelGroupBy(r, {0}, AllAggs(), workers, morsel), morsel);
        ASSERT_OK(grouped);
        EXPECT_REL_EQ(*grouped, *group_oracle);

        auto deduped = exec::ExecuteToRelation(
            *std::make_unique<parallel::ParallelDedupOp>(Scan(r), workers,
                                                         morsel),
            morsel);
        ASSERT_OK(deduped);
        EXPECT_REL_EQ(*deduped, *dedup_oracle);
      }
    }
  }
}

TEST(ParallelExecDifferential, ResidualPredicateFiltersMatchPairs) {
  // Equi-key plus a non-hashable residual: the residual must run against
  // the concatenated tuple in whichever lane found the match.
  std::mt19937_64 rng(99);
  Relation r = RandomIntRelation(rng, 2, 120, 20, 4);
  Relation s = RandomIntRelation(rng, 2, 120, 20, 4);
  auto oracle =
      ops::Join(And(Eq(Attr(0), Attr(2)), Lt(Attr(1), Attr(3))), r, s);
  ASSERT_OK(oracle);
  auto op = std::make_unique<parallel::ParallelHashJoinOp>(
      std::vector<size_t>{0}, std::vector<size_t>{0}, Lt(Attr(1), Attr(3)),
      Scan(r), Scan(s), /*workers=*/4, /*morsel_size=*/7);
  auto result = exec::ExecuteToRelation(*op);
  ASSERT_OK(result);
  EXPECT_REL_EQ(*result, *oracle);
}

TEST(ParallelExecDifferential, KeyFreeAggregationKeepsEmptyInputGroup) {
  // Definition 3.3's key-free case: one global group, present even over an
  // empty input (CNT = 0, SUM = 0; AVG/MIN/MAX undefined).  The merge
  // phase must synthesise it when no lane saw a row.
  std::vector<AggSpec> aggs = {{AggKind::kCnt, 0, "cnt"},
                               {AggKind::kSum, 1, "sum_v"}};
  Relation empty(RelationSchema("e", {{"c1", Type::Int()},
                                      {"c2", Type::Int()}}));
  std::mt19937_64 rng(7);
  Relation full = RandomIntRelation(rng, 2, 50, 10, 1000000);
  for (const Relation* input : {&empty, &full}) {
    auto oracle = ops::GroupBy({}, aggs, *input);
    ASSERT_OK(oracle);
    auto result = exec::ExecuteToRelation(
        *ParallelGroupBy(*input, {}, aggs, /*workers=*/8, /*morsel=*/7));
    ASSERT_OK(result);
    EXPECT_REL_EQ(*result, *oracle);
  }
}

// --- Governance: cancellation, deadline and budget kills reach every lane.

Relation BigPairs(size_t n) {
  Relation rel(RelationSchema("big", {{"k", Type::Int()},
                                      {"v", Type::Int()}}));
  for (size_t i = 0; i < n; ++i) {
    rel.InsertUnchecked(
        Tuple({Value::Int(static_cast<int64_t>(i % (n / 16 + 1))),
               Value::Int(static_cast<int64_t>(i))}),
        1 + i % 3);
  }
  return rel;
}

TEST(ParallelExecGovernance, CancelHammerFromAnotherThread) {
  // The TSan target: an external cancel lands while 8 lanes are mid-build
  // or mid-probe.  Whatever the timing, the query either completes with
  // the right bag or dies with kCancelled — and the memory accounting
  // balances either way.  Many iterations walk the cancel point across
  // every phase.
  Relation r = BigPairs(6000);
  auto oracle = ops::Join(Eq(Attr(0), Attr(2)), r, r);
  ASSERT_OK(oracle);
  for (int round = 0; round < 12; ++round) {
    exec::ExecContext ctx;
    auto op = ParallelJoin(r, r, /*workers=*/8, /*morsel=*/64);
    op->SetExecContext(&ctx);
    std::thread killer([&ctx, round] {
      std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
      ctx.RequestCancel();
    });
    auto result = exec::ExecuteToRelation(*op, 64);
    killer.join();
    if (result.ok()) {
      EXPECT_REL_EQ(*result, *oracle) << "round " << round;
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
          << "round " << round << ": " << result.status().ToString();
    }
    EXPECT_EQ(ctx.mem_used(), 0u) << "round " << round;
  }
}

TEST(ParallelExecGovernance, FailpointCancelKillsEachParallelOperator) {
  // exec.cancel.batch trips on the very first batch pull, so the kill
  // arrives while the build scan is feeding worker lanes; the fresh rerun
  // after disarm proves no poisoned pool or operator state survives.
  Relation r = BigPairs(4000);
  struct Case {
    const char* name;
    std::function<exec::PhysOpPtr()> build;
  };
  const Case cases[] = {
      {"join", [&] { return ParallelJoin(r, r, 8, 32); }},
      {"groupby", [&] { return ParallelGroupBy(r, {0}, AllAggs(), 8, 32); }},
      {"dedup",
       [&] {
         return std::make_unique<parallel::ParallelDedupOp>(Scan(r), 8, 32);
       }},
  };
  for (const Case& c : cases) {
    ASSERT_TRUE(fault::FaultRegistry::Global()
                    .ConfigureFromSpec("exec.cancel.batch=error")
                    .ok());
    exec::ExecContext ctx;
    auto op = c.build();
    op->SetExecContext(&ctx);
    auto killed = exec::ExecuteToRelation(*op, 32);
    fault::FaultRegistry::Global().DisarmAll();
    ASSERT_FALSE(killed.ok()) << c.name << " survived an armed cancel";
    EXPECT_EQ(killed.status().code(), StatusCode::kCancelled) << c.name;
    EXPECT_EQ(ctx.mem_used(), 0u) << c.name;

    exec::ExecContext clean_ctx;
    auto rerun = c.build();
    rerun->SetExecContext(&clean_ctx);
    EXPECT_TRUE(exec::ExecuteToRelation(*rerun, 32).ok())
        << c.name << " failed after disarm";
  }
}

TEST(ParallelExecGovernance, DeadlineKillLandsWithinAMorsel) {
  // An already-expired deadline must stop the fan-out at the first morsel
  // boundary on every lane with kDeadlineExceeded.
  Relation r = BigPairs(20000);
  exec::ExecContext ctx;
  ctx.SetDeadlineAfterMs(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  auto op = ParallelJoin(r, r, /*workers=*/8, /*morsel=*/16);
  op->SetExecContext(&ctx);
  auto killed = exec::ExecuteToRelation(*op, 16);
  ASSERT_FALSE(killed.ok());
  EXPECT_EQ(killed.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ctx.mem_used(), 0u);
}

TEST(ParallelExecGovernance, MemoryBudgetTripsDuringParallelBuild) {
  Relation r = BigPairs(20000);
  exec::ExecContext ctx;
  ctx.SetMemoryBudget(4 * 1024);  // Far below the build footprint.
  auto op = ParallelJoin(r, r, /*workers=*/4, /*morsel=*/256);
  op->SetExecContext(&ctx);
  auto killed = exec::ExecuteToRelation(*op, 256);
  ASSERT_FALSE(killed.ok());
  EXPECT_EQ(killed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.mem_used(), 0u);
}

// --- The pool itself.

TEST(WorkerPoolTest, ParallelForRunsEveryLaneExactlyOnce) {
  auto& pool = parallel::WorkerPool::Global();
  auto lease = pool.Admit(4);
  std::vector<std::atomic<int>> hits(lease.lanes());
  pool.ParallelFor(lease, [&](size_t lane) { hits[lane].fetch_add(1); });
  for (size_t lane = 0; lane < hits.size(); ++lane) {
    EXPECT_EQ(hits[lane].load(), 1) << "lane " << lane;
  }
}

TEST(WorkerPoolTest, SaturationShedsToSerialLease) {
  auto& pool = parallel::WorkerPool::Global();
  // Drain the pool, then the next admission must degrade to one lane (the
  // caller's own) rather than queue.
  std::vector<parallel::WorkerPool::Lease> hogs;
  for (size_t i = 0; i < pool.capacity() + 1; ++i) {
    hogs.push_back(pool.Admit(2));
  }
  auto starved = pool.Admit(8);
  EXPECT_EQ(starved.lanes(), 1u);
  hogs.clear();  // Leases return their lanes on destruction...
  auto refreshed = pool.Admit(2);
  EXPECT_GE(refreshed.lanes(), 2u);  // ...so admission recovers.
}

// --- Planner integration: EXPLAIN ANALYZE carries the lane metrics.

TEST(ParallelExecPlanner, ExplainAnalyzeRendersWorkersAndCpu) {
  auto db = Database::Open();
  ASSERT_OK(db);
  lang::Interpreter interp(
      db->get(), ConfigBuilder().Workers(4).ParallelThreshold(1).Build());
  ASSERT_OK(interp.ExecuteScript(
      "create t(g: int, v: int);"
      "insert(t, {(1, 10) : 3, (1, 20), (2, 5) : 2, (3, 7), (4, 1)});",
      nullptr));
  ASSERT_OK(interp.ExecuteScript("analyze t;", nullptr));
  auto text = interp.ExplainAnalyze("groupby([%1], sum(%2), unique(t))");
  ASSERT_OK(text);
  EXPECT_NE(text->find("ParallelHashGroupBy"), std::string::npos) << *text;
  EXPECT_NE(text->find("ParallelDedup"), std::string::npos) << *text;
  EXPECT_NE(text->find("workers="), std::string::npos) << *text;
  EXPECT_NE(text->find("cpu="), std::string::npos) << *text;
}

TEST(ParallelExecPlanner, ThresholdKeepsSmallQueriesSerial) {
  // Default threshold (8192 estimated rows) vs a 5-row table: the planner
  // must keep the serial kernels even with workers available.
  auto db = Database::Open();
  ASSERT_OK(db);
  lang::Interpreter interp(db->get(), ConfigBuilder().Workers(4).Build());
  ASSERT_OK(interp.ExecuteScript(
      "create t(g: int, v: int);"
      "insert(t, {(1, 10) : 3, (1, 20), (2, 5) : 2, (3, 7), (4, 1)});",
      nullptr));
  ASSERT_OK(interp.ExecuteScript("analyze t;", nullptr));
  auto text = interp.Explain("groupby([%1], sum(%2), unique(t))");
  ASSERT_OK(text);
  EXPECT_EQ(text->find("Parallel"), std::string::npos) << *text;
}

}  // namespace
}  // namespace mra
