// Tests for the fault-injection framework: spec parsing, trigger gating
// (after/limit), environment configuration, the registry lifecycle, and a
// failpoint actually tearing a WAL write.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "mra/fault/failpoint.h"
#include "mra/obs/metrics.h"
#include "mra/storage/wal.h"
#include "test_util.h"

namespace mra {
namespace fault {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("mra_fault_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

// Every test leaves the process-wide registry disarmed, so tests cannot
// leak faults into each other (or into other suites in the same binary).
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultRegistry::Global().DisarmAll(); }
};

TEST_F(FaultTest, ParseSimpleActions) {
  auto error = ParseFaultAction("error");
  ASSERT_OK(error);
  EXPECT_EQ(error->kind, ActionKind::kError);

  auto abort_cfg = ParseFaultAction("abort");
  ASSERT_OK(abort_cfg);
  EXPECT_EQ(abort_cfg->kind, ActionKind::kAbort);

  auto off = ParseFaultAction("off");
  ASSERT_OK(off);
  EXPECT_EQ(off->kind, ActionKind::kOff);

  auto torn = ParseFaultAction("torn(7)");
  ASSERT_OK(torn);
  EXPECT_EQ(torn->kind, ActionKind::kTorn);
  EXPECT_EQ(torn->keep_bytes, 7u);

  auto delay = ParseFaultAction("delay(25)");
  ASSERT_OK(delay);
  EXPECT_EQ(delay->kind, ActionKind::kDelay);
  EXPECT_EQ(delay->delay_ms, 25);
}

TEST_F(FaultTest, ParseModifiers) {
  auto cfg = ParseFaultAction("torn(3):after=5:limit=2");
  ASSERT_OK(cfg);
  EXPECT_EQ(cfg->kind, ActionKind::kTorn);
  EXPECT_EQ(cfg->keep_bytes, 3u);
  EXPECT_EQ(cfg->start_after, 5u);
  EXPECT_EQ(cfg->max_triggers, 2u);

  auto spaced = ParseFaultAction("  error : after = 1 ");
  ASSERT_OK(spaced);
  EXPECT_EQ(spaced->kind, ActionKind::kError);
  EXPECT_EQ(spaced->start_after, 1u);
}

TEST_F(FaultTest, ParseRejectsMalformedActions) {
  EXPECT_FALSE(ParseFaultAction("").ok());
  EXPECT_FALSE(ParseFaultAction("explode").ok());
  EXPECT_FALSE(ParseFaultAction("torn").ok());        // Needs byte count.
  EXPECT_FALSE(ParseFaultAction("torn(x)").ok());
  EXPECT_FALSE(ParseFaultAction("delay()").ok());
  EXPECT_FALSE(ParseFaultAction("error:bogus=1").ok());
  EXPECT_FALSE(ParseFaultAction("error:after=").ok());
}

TEST_F(FaultTest, SpecConfiguresMultipleSites) {
  auto& reg = FaultRegistry::Global();
  ASSERT_OK(reg.ConfigureFromSpec(
      "test.spec.a=error; test.spec.b=torn(4):limit=1 , test.spec.c=off"));
  std::vector<std::string> armed = reg.ArmedSites();
  EXPECT_NE(std::find(armed.begin(), armed.end(), "test.spec.a"), armed.end());
  EXPECT_NE(std::find(armed.begin(), armed.end(), "test.spec.b"), armed.end());
  EXPECT_EQ(std::find(armed.begin(), armed.end(), "test.spec.c"), armed.end());
  EXPECT_TRUE(reg.Get("test.spec.a")->armed());
  reg.DisarmAll();
  EXPECT_TRUE(reg.ArmedSites().empty());
}

TEST_F(FaultTest, SpecParseErrorNamesTheEntry) {
  Status bad = FaultRegistry::Global().ConfigureFromSpec("a=error;b=kaboom");
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.message().find("b"), std::string::npos);
}

TEST_F(FaultTest, HitFiresErrorWhileArmed) {
  auto& reg = FaultRegistry::Global();
  Failpoint* fp = reg.Get("test.hit.error");
  EXPECT_EQ(fp->Hit().kind, ActionKind::kOff);  // Disarmed: passes.
  ASSERT_OK(reg.ConfigureFromSpec("test.hit.error=error"));
  EXPECT_EQ(fp->Hit().kind, ActionKind::kError);
  Status injected = fp->InjectedError();
  EXPECT_EQ(injected.code(), StatusCode::kIoError);
  EXPECT_NE(injected.message().find("test.hit.error"), std::string::npos);
  reg.Disarm("test.hit.error");
  EXPECT_EQ(fp->Hit().kind, ActionKind::kOff);
}

TEST_F(FaultTest, AfterAndLimitGateTriggering) {
  auto& reg = FaultRegistry::Global();
  Failpoint* fp = reg.Get("test.hit.gated");
  ASSERT_OK(reg.ConfigureFromSpec("test.hit.gated=error:after=2:limit=2"));
  EXPECT_EQ(fp->Hit().kind, ActionKind::kOff);    // Hit 1: before `after`.
  EXPECT_EQ(fp->Hit().kind, ActionKind::kOff);    // Hit 2: before `after`.
  EXPECT_EQ(fp->Hit().kind, ActionKind::kError);  // Trigger 1.
  EXPECT_EQ(fp->Hit().kind, ActionKind::kError);  // Trigger 2 (limit).
  EXPECT_EQ(fp->Hit().kind, ActionKind::kOff);    // Limit exhausted.
  EXPECT_EQ(fp->Hit().kind, ActionKind::kOff);
}

TEST_F(FaultTest, InjectIfArmedTreatsTornAsError) {
  auto& reg = FaultRegistry::Global();
  Failpoint* fp = reg.Get("test.inject.torn");
  EXPECT_OK(InjectIfArmed(fp));
  ASSERT_OK(reg.ConfigureFromSpec("test.inject.torn=torn(9)"));
  EXPECT_EQ(InjectIfArmed(fp).code(), StatusCode::kIoError);
}

TEST_F(FaultTest, EnvVariableConfiguresRegistry) {
  ::setenv("MRA_FAILPOINTS", "test.env.site=error:limit=1", 1);
  FaultRegistry reg;  // Local registry: Global() already consumed the env.
  ASSERT_OK(reg.ConfigureFromEnv());
  EXPECT_EQ(reg.ArmedSites(), std::vector<std::string>{"test.env.site"});
  ::unsetenv("MRA_FAILPOINTS");
  ASSERT_OK(reg.ConfigureFromEnv());  // Unset is a no-op, not an error.
}

TEST_F(FaultTest, HitCountersExportedThroughObs) {
  auto& reg = FaultRegistry::Global();
  Failpoint* fp = reg.Get("test.obs.site");
  auto& metrics = obs::MetricsRegistry::Global();
  uint64_t hits0 = metrics.GetCounter("fault.test.obs.site.hits")->value();
  uint64_t trig0 = metrics.GetCounter("fault.test.obs.site.triggered")->value();
  ASSERT_OK(reg.ConfigureFromSpec("test.obs.site=error:after=1"));
  fp->Hit();  // Passes through (after=1) but counts as a hit.
  fp->Hit();  // Triggers.
  EXPECT_EQ(metrics.GetCounter("fault.test.obs.site.hits")->value(),
            hits0 + 2);
  EXPECT_EQ(metrics.GetCounter("fault.test.obs.site.triggered")->value(),
            trig0 + 1);
}

TEST_F(FaultTest, TornActionShortensWalWrite) {
  TempDir dir;
  const std::string path = dir.file("wal.log");
  {
    auto writer = storage::WalWriter::Open(path);
    ASSERT_OK(writer);
    ASSERT_OK(writer->Append("intact-record", false));
    // Frame = 12-byte header + payload; keep 5 bytes → the second record
    // survives only as a truncated header.
    ASSERT_OK(
        FaultRegistry::Global().ConfigureFromSpec("wal.append=torn(5)"));
    Status torn = writer->Append("doomed-record", false);
    EXPECT_EQ(torn.code(), StatusCode::kIoError);
    FaultRegistry::Global().DisarmAll();
  }
  auto read = storage::ReadWal(path);
  ASSERT_OK(read);
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0], "intact-record");
  EXPECT_TRUE(read->torn_tail);
  // valid_bytes points at the end of the intact record, i.e. where the
  // torn frame starts.
  EXPECT_EQ(read->valid_bytes, 12u + std::string("intact-record").size());
  EXPECT_EQ(std::filesystem::file_size(path), read->valid_bytes + 5);
}

TEST_F(FaultTest, ErrorActionFailsAppendWithoutWriting) {
  TempDir dir;
  const std::string path = dir.file("wal.log");
  auto writer = storage::WalWriter::Open(path);
  ASSERT_OK(writer);
  ASSERT_OK(
      FaultRegistry::Global().ConfigureFromSpec("wal.append=error:limit=1"));
  EXPECT_EQ(writer->Append("rejected", false).code(), StatusCode::kIoError);
  ASSERT_OK(writer->Append("accepted", false));  // Limit exhausted.
  auto read = storage::ReadWal(path);
  ASSERT_OK(read);
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0], "accepted");
  EXPECT_FALSE(read->torn_tail);
}

}  // namespace
}  // namespace fault
}  // namespace mra
