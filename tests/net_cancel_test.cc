// Wire-level query governance (docs/GOVERNANCE.md): the v4 Cancel frame,
// the server's running-query registry, in-plan deadline preemption with
// the Busy-style retry-after hint, and the client's out-of-band interrupt
// path (what REPL Ctrl-C uses).  The hammer test races Cancel frames
// against query completion from a second session and runs under TSan in
// CI (.github/workflows/ci.yml).

#include "mra/net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "mra/net/client.h"
#include "mra/obs/trace.h"

namespace mra {
namespace net {
namespace {

// r (100 × 2-int rows) and s (100 rows) make products/joins heavy enough
// to span many batch boundaries: unique(product(r, product(r, r))) pushes
// a million rows through a dedup build.
std::unique_ptr<Database> MakeDb() {
  auto db = std::move(Database::Open({}).value());
  lang::Interpreter interp(db.get());
  std::string script = "create r(a: int, b: int); create s(b: int, c: int);";
  script += "insert(r, {";
  for (int i = 0; i < 100; ++i) {
    script += (i ? "," : "") + std::string("(") + std::to_string(i) + "," +
              std::to_string(i % 11) + ")";
  }
  script += "}); insert(s, {";
  for (int i = 0; i < 100; ++i) {
    script += (i ? "," : "") + std::string("(") + std::to_string(i % 11) +
              "," + std::to_string(i) + ")";
  }
  script += "});";
  Status s = interp.ExecuteScript(script, nullptr);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return db;
}

Client MustConnect(const Server& server, ClientOptions options = {}) {
  auto client = Client::Connect("127.0.0.1", server.port(), options);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(*client);
}

constexpr char kHeavyQuery[] = "unique(product(r, product(r, r)))";

TEST(NetCancel, CancelOfUnknownIdReportsNotDelivered) {
  auto db = MakeDb();
  Server server(db.get());
  ASSERT_TRUE(server.Start().ok());
  Client client = MustConnect(server);
  auto delivered = client.Cancel(987654321);
  ASSERT_TRUE(delivered.ok()) << delivered.status().ToString();
  EXPECT_FALSE(*delivered);
  // Zero is rejected client-side: it can never name a running query.
  EXPECT_EQ(client.Cancel(0).status().code(), StatusCode::kInvalidArgument);
  server.Shutdown();
}

TEST(NetCancel, CancelFromAnotherSessionKillsTheRunningQuery) {
  auto db = MakeDb();
  Server server(db.get());
  ASSERT_TRUE(server.Start().ok());
  Client runner = MustConnect(server);
  Client killer = MustConnect(server);

  // The client mints ids from the process-global counter, so the next
  // Query's id is predictable from here (nothing else mints in between).
  uint64_t target = obs::NextQueryId() + 1;
  std::atomic<bool> done{false};
  Result<Relation> result = Status::IoError("query never ran");
  std::thread t([&] {
    result = runner.Query(kHeavyQuery);
    done.store(true);
  });
  bool delivered = false;
  while (!done.load() && !delivered) {
    auto d = killer.Cancel(target);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    delivered = *d;
    if (!delivered) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  t.join();
  ASSERT_TRUE(delivered) << "query finished before any Cancel landed";
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(runner.last_query_id(), target);

  // The runner session survives its own query's death.
  auto after = runner.Query("r");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->distinct_size(), 100u);
  server.Shutdown();
}

// Cancel frames racing query completion: every round predicts the next
// query id and spams Cancel while the query runs; small queries usually
// win the race (not delivered), heavy ones usually die.  Every outcome
// must be clean — OK or kCancelled, nothing else, and the session must
// stay usable.  The interesting assertions are TSan's.
TEST(NetCancel, HammerCancelRacesCompletion) {
  auto db = MakeDb();
  Server server(db.get());
  ASSERT_TRUE(server.Start().ok());
  Client runner = MustConnect(server);
  Client killer = MustConnect(server);

  const char* queries[] = {
      "r",                              // Tiny: completion usually wins.
      "join(%2 = %3, r, s)",            // Medium.
      "unique(product(r, s))",          // Medium, with a dedup build.
      kHeavyQuery,                      // Heavy: the cancel usually wins.
  };
  int killed = 0;
  int completed = 0;
  for (int round = 0; round < 24; ++round) {
    uint64_t target = obs::NextQueryId() + 1;
    std::atomic<bool> done{false};
    Result<Relation> result = Status::IoError("query never ran");
    std::thread t([&, round] {
      result = runner.Query(queries[round % 4]);
      done.store(true);
    });
    // Spam cancels — including one for a wrong id — until the race ends.
    while (!done.load()) {
      ASSERT_TRUE(killer.Cancel(target).ok());
      ASSERT_TRUE(killer.Cancel(target + 1'000'000).ok());
    }
    t.join();
    if (result.ok()) {
      ++completed;
    } else {
      ASSERT_EQ(result.status().code(), StatusCode::kCancelled)
          << result.status().ToString();
      ++killed;
    }
  }
  // Both outcomes must actually occur across the mix; if either never
  // happens the race is not being exercised.
  EXPECT_GT(killed, 0);
  EXPECT_GT(completed, 0);
  EXPECT_TRUE(runner.Query("r").ok());
  server.Shutdown();
}

TEST(NetCancel, RequestTimeoutPreemptsMidPlanWithRetryAfterHint) {
  auto db = MakeDb();
  ServerOptions options;
  options.request_timeout_ms = 50;
  options.busy_retry_after_ms = 321;
  Server server(db.get(), options);
  ASSERT_TRUE(server.Start().ok());
  Client client = MustConnect(server);

  auto result = client.Query(kHeavyQuery);
  ASSERT_FALSE(result.ok());
  // Preempted mid-plan — a governed kill with its own status, not the old
  // post-hoc IoError teardown — and the connection survives.
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(result.status().message().find("statement timeout"),
            std::string::npos);
  EXPECT_EQ(client.last_busy_retry_after_ms(), 321u);
  EXPECT_TRUE(client.connected());
  EXPECT_TRUE(client.Query("r").ok());
  server.Shutdown();
}

TEST(NetCancel, ExplicitStatementTimeoutGovernsIndependently) {
  auto db = MakeDb();
  ServerOptions options;
  options.interpreter.governance.statement_timeout_ms = 20;  // Request timeout stays 30s.
  Server server(db.get(), options);
  ASSERT_TRUE(server.Start().ok());
  Client client = MustConnect(server);
  auto result = client.Query(kHeavyQuery);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(client.last_busy_retry_after_ms(), options.busy_retry_after_ms);
  server.Shutdown();
}

TEST(NetCancel, InterruptTokenCancelsInFlightQueryOutOfBand) {
  auto db = MakeDb();
  Server server(db.get());
  ASSERT_TRUE(server.Start().ok());
  ClientOptions options;
  options.interrupt = std::make_shared<std::atomic<bool>>(false);
  Client client = MustConnect(server, options);

  // What the REPL's SIGINT handler does mid-query: one atomic store.
  std::thread interrupter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    options.interrupt->store(true);
  });
  auto result = client.Query(kHeavyQuery);
  interrupter.join();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  // The token was consumed, the session survived, later queries run.
  EXPECT_FALSE(options.interrupt->load());
  EXPECT_TRUE(client.connected());
  EXPECT_TRUE(client.Query("r").ok());
  server.Shutdown();
}

TEST(NetCancel, CancelFramesRequireProtocolV4) {
  auto db = MakeDb();
  Server server(db.get());
  ASSERT_TRUE(server.Start().ok());

  auto sock = Socket::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(sock.ok());
  WireLimits limits{1u << 20};
  ASSERT_TRUE(WriteFrame(*sock, FrameKind::kHello, EncodeHello(3, "v3")).ok());
  auto hello = ReadFrame(*sock, limits, 2'000);
  ASSERT_TRUE(hello.ok());
  ASSERT_EQ(hello->kind, FrameKind::kHello);

  ASSERT_TRUE(
      WriteFrame(*sock, FrameKind::kCancel, EncodeCancelRequest(1)).ok());
  auto response = ReadFrame(*sock, limits, 2'000);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->kind, FrameKind::kError);
  Status error = DecodeError(response->payload);
  EXPECT_EQ(error.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(error.message().find("protocol v4"), std::string::npos);
  server.Shutdown();
}

}  // namespace
}  // namespace net
}  // namespace mra
