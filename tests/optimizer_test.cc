// Tests for the rewrite rules and the optimizer driver.  Shape assertions
// check that the intended rewrites fire; randomized semantic tests check
// that optimization never changes a plan's meaning (the executable form of
// the paper's claim that the classical equivalences hold for bags).

#include "mra/opt/optimizer.h"

#include <gtest/gtest.h>

#include <random>

#include "mra/algebra/evaluator.h"
#include "mra/catalog/catalog.h"
#include "mra/common/annotation.h"
#include "mra/exec/physical_planner.h"
#include "mra/opt/rules.h"
#include "test_util.h"

namespace mra {
namespace opt {
namespace {

using ::mra::testing::IntRel;
using ::mra::testing::PaperBeerDb;
using ::mra::testing::RandomIntRelation;

class RuleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PaperBeerDb db;
    ASSERT_OK(catalog_.CreateRelation(db.beer.schema()));
    ASSERT_OK(catalog_.SetRelation("beer", db.beer));
    ASSERT_OK(catalog_.CreateRelation(db.brewery.schema()));
    ASSERT_OK(catalog_.SetRelation("brewery", db.brewery));
    beer_ = Plan::Scan("beer", db.beer.schema());
    brewery_ = Plan::Scan("brewery", db.brewery.schema());
  }

  // Evaluates pre- and post-rewrite plans and requires identical results.
  void ExpectSameSemantics(const PlanPtr& before, const PlanPtr& after) {
    auto r1 = EvaluatePlan(*before, catalog_);
    auto r2 = EvaluatePlan(*after, catalog_);
    ASSERT_OK(r1);
    ASSERT_OK(r2);
    EXPECT_REL_EQ(*r1, *r2) << "before:\n"
                            << before->ToString() << "after:\n"
                            << after->ToString();
  }

  Catalog catalog_;
  PlanPtr beer_;
  PlanPtr brewery_;
};

TEST_F(RuleTest, MergeSelects) {
  auto inner = Plan::Select(Eq(Attr(1), Lit("Guineken")), beer_);
  ASSERT_OK(inner);
  auto outer = Plan::Select(Gt(Attr(2), Lit(5.0)), *inner);
  ASSERT_OK(outer);
  auto merged = TryMergeSelects(*outer);
  ASSERT_OK(merged);
  ASSERT_NE(*merged, nullptr);
  EXPECT_EQ((*merged)->kind(), PlanKind::kSelect);
  EXPECT_EQ((*merged)->child(0)->kind(), PlanKind::kScan);
  ExpectSameSemantics(*outer, *merged);
}

TEST_F(RuleTest, SelectPushdownThroughUnion) {
  auto u = Plan::Union(beer_, beer_);
  ASSERT_OK(u);
  auto sel = Plan::Select(Eq(Attr(1), Lit("Guineken")), *u);
  ASSERT_OK(sel);
  auto pushed = TrySelectPushdown(*sel);
  ASSERT_OK(pushed);
  ASSERT_NE(*pushed, nullptr);
  EXPECT_EQ((*pushed)->kind(), PlanKind::kUnion);
  EXPECT_EQ((*pushed)->child(0)->kind(), PlanKind::kSelect);
  ExpectSameSemantics(*sel, *pushed);
}

TEST_F(RuleTest, SelectOverProductBecomesJoinWithPushedSides) {
  // σ(beer.brewery = brewery.name AND country = 'NL' AND alcperc > 5)
  // over beer × brewery: the one-sided conjuncts must descend, the
  // cross-side one becomes the join condition (Theorem 3.1).
  auto prod = Plan::Product(beer_, brewery_);
  ASSERT_OK(prod);
  ExprPtr cond = And(And(Eq(Attr(1), Attr(3)), Eq(Attr(5), Lit("NL"))),
                     Gt(Attr(2), Lit(5.0)));
  auto sel = Plan::Select(cond, *prod);
  ASSERT_OK(sel);
  auto pushed = TrySelectPushdown(*sel);
  ASSERT_OK(pushed);
  ASSERT_NE(*pushed, nullptr);
  EXPECT_EQ((*pushed)->kind(), PlanKind::kJoin);
  EXPECT_EQ((*pushed)->child(0)->kind(), PlanKind::kSelect);  // alcperc > 5
  EXPECT_EQ((*pushed)->child(1)->kind(), PlanKind::kSelect);  // country = NL
  ExpectSameSemantics(*sel, *pushed);
}

TEST_F(RuleTest, BareJoinConditionPushdown) {
  ExprPtr cond = And(Eq(Attr(1), Attr(3)), Eq(Attr(5), Lit("NL")));
  auto join = Plan::Join(cond, beer_, brewery_);
  ASSERT_OK(join);
  auto pushed = TrySelectPushdown(*join);
  ASSERT_OK(pushed);
  ASSERT_NE(*pushed, nullptr);
  EXPECT_EQ((*pushed)->kind(), PlanKind::kJoin);
  EXPECT_EQ((*pushed)->child(1)->kind(), PlanKind::kSelect);
  ExpectSameSemantics(*join, *pushed);
}

TEST_F(RuleTest, SelectPushdownThroughProjection) {
  auto proj = Plan::ProjectIndexes({2, 0}, beer_);
  ASSERT_OK(proj);
  auto sel = Plan::Select(Gt(Attr(0), Lit(5.0)), *proj);
  ASSERT_OK(sel);
  auto pushed = TrySelectPushdown(*sel);
  ASSERT_OK(pushed);
  ASSERT_NE(*pushed, nullptr);
  EXPECT_EQ((*pushed)->kind(), PlanKind::kProject);
  EXPECT_EQ((*pushed)->child(0)->kind(), PlanKind::kSelect);
  // The condition was rewritten to the pre-projection frame: %1 → %3.
  EXPECT_EQ((*pushed)->child(0)->condition()->ToString(), "(%3 > 5.0)");
  ExpectSameSemantics(*sel, *pushed);
}

TEST_F(RuleTest, SelectNotPushedThroughExpensiveProjection) {
  // The projection computes alcperc * 1.1; substituting it into the
  // condition would duplicate work, so the rule declines.
  auto proj = Plan::Project({Mul(Attr(2), Lit(1.1))}, beer_);
  ASSERT_OK(proj);
  auto sel = Plan::Select(Gt(Attr(0), Lit(6.0)), *proj);
  ASSERT_OK(sel);
  auto pushed = TrySelectPushdown(*sel);
  ASSERT_OK(pushed);
  EXPECT_EQ(*pushed, nullptr);
}

TEST_F(RuleTest, SelectPushdownThroughDiffIntersectUnique) {
  for (auto make : {&Plan::Difference, &Plan::Intersect}) {
    auto combined = (*make)(beer_, beer_);
    ASSERT_OK(combined);
    auto sel = Plan::Select(Eq(Attr(0), Lit("pils")), *combined);
    ASSERT_OK(sel);
    auto pushed = TrySelectPushdown(*sel);
    ASSERT_OK(pushed);
    ASSERT_NE(*pushed, nullptr);
    ExpectSameSemantics(*sel, *pushed);
  }
  auto uniq = Plan::Unique(beer_);
  ASSERT_OK(uniq);
  auto sel = Plan::Select(Eq(Attr(0), Lit("pils")), *uniq);
  ASSERT_OK(sel);
  auto pushed = TrySelectPushdown(*sel);
  ASSERT_OK(pushed);
  ASSERT_NE(*pushed, nullptr);
  EXPECT_EQ((*pushed)->kind(), PlanKind::kUnique);
  ExpectSameSemantics(*sel, *pushed);
}

TEST_F(RuleTest, MergeProjects) {
  auto inner = Plan::ProjectIndexes({2, 1, 0}, beer_);
  ASSERT_OK(inner);
  auto outer = Plan::ProjectIndexes({2}, *inner);
  ASSERT_OK(outer);
  auto merged = TryMergeProjects(*outer);
  ASSERT_OK(merged);
  ASSERT_NE(*merged, nullptr);
  EXPECT_EQ((*merged)->child(0)->kind(), PlanKind::kScan);
  ExpectSameSemantics(*outer, *merged);
}

TEST_F(RuleTest, UniqueSimplifications) {
  auto uu = Plan::Unique(Plan::Unique(beer_).value());
  ASSERT_OK(uu);
  auto simplified = TryUniqueSimplify(*uu);
  ASSERT_OK(simplified);
  ASSERT_NE(*simplified, nullptr);
  EXPECT_EQ((*simplified)->kind(), PlanKind::kUnique);
  EXPECT_EQ((*simplified)->child(0)->kind(), PlanKind::kScan);

  auto g = Plan::GroupBy({1}, {{AggKind::kCnt, 0, ""}}, beer_);
  ASSERT_OK(g);
  auto ug = Plan::Unique(*g);
  ASSERT_OK(ug);
  auto dropped = TryUniqueSimplify(*ug);
  ASSERT_OK(dropped);
  ASSERT_NE(*dropped, nullptr);
  EXPECT_EQ((*dropped)->kind(), PlanKind::kGroupBy);

  auto prod = Plan::Product(beer_, brewery_);
  ASSERT_OK(prod);
  auto up = Plan::Unique(*prod);
  ASSERT_OK(up);
  auto distributed = TryUniqueSimplify(*up);
  ASSERT_OK(distributed);
  ASSERT_NE(*distributed, nullptr);
  EXPECT_EQ((*distributed)->kind(), PlanKind::kProduct);
  EXPECT_EQ((*distributed)->child(0)->kind(), PlanKind::kUnique);
  ExpectSameSemantics(*up, *distributed);
}

TEST_F(RuleTest, PreDedupUnionRule) {
  auto u = Plan::Union(beer_, beer_);
  ASSERT_OK(u);
  auto du = Plan::Unique(*u);
  ASSERT_OK(du);
  auto rewritten = TryUniquePreDedupUnion(*du);
  ASSERT_OK(rewritten);
  ASSERT_NE(*rewritten, nullptr);
  EXPECT_EQ((*rewritten)->kind(), PlanKind::kUnique);
  EXPECT_EQ((*rewritten)->child(0)->child(0)->kind(), PlanKind::kUnique);
  ExpectSameSemantics(*du, *rewritten);
  // Applying again must not fire (guard against infinite rewriting).
  auto again = TryUniquePreDedupUnion(*rewritten);
  ASSERT_OK(again);
  EXPECT_EQ(*again, nullptr);
}

TEST_F(RuleTest, ConstantSimplify) {
  auto always = Plan::Select(Lit(true), beer_);
  ASSERT_OK(always);
  auto s1 = TryConstantSimplify(*always);
  ASSERT_OK(s1);
  EXPECT_EQ((*s1)->kind(), PlanKind::kScan);

  auto never = Plan::Select(Lit(false), beer_);
  ASSERT_OK(never);
  auto s2 = TryConstantSimplify(*never);
  ASSERT_OK(s2);
  EXPECT_EQ((*s2)->kind(), PlanKind::kConstRel);
  EXPECT_TRUE((*s2)->const_relation().empty());

  auto folded = Plan::Select(
      Gt(Attr(2), Add(Lit(2.0), Lit(3.0))), beer_);
  ASSERT_OK(folded);
  auto s3 = TryConstantSimplify(*folded);
  ASSERT_OK(s3);
  ASSERT_NE(*s3, nullptr);
  EXPECT_EQ((*s3)->condition()->ToString(), "(%3 > 5.0)");

  auto identity = Plan::ProjectIndexes({0, 1, 2}, beer_);
  ASSERT_OK(identity);
  auto s4 = TryConstantSimplify(*identity);
  ASSERT_OK(s4);
  EXPECT_EQ((*s4)->kind(), PlanKind::kScan);

  auto true_join = Plan::Join(Lit(true), beer_, brewery_);
  ASSERT_OK(true_join);
  auto s5 = TryConstantSimplify(*true_join);
  ASSERT_OK(s5);
  EXPECT_EQ((*s5)->kind(), PlanKind::kProduct);
}

TEST_F(RuleTest, JoinCommutePutsSmallerBuildSideRight) {
  // beer has 5 tuples (with multiplicities), brewery 3 — make a lopsided
  // pair by unioning beer with itself.
  auto big = Plan::Union(beer_, beer_);
  ASSERT_OK(big);
  // Join with the big side RIGHT (bad build side).
  auto join = Plan::Join(Eq(Attr(1), Attr(4)), brewery_, *big);
  ASSERT_OK(join);
  auto commuted = TryJoinCommute(*join, catalog_);
  ASSERT_OK(commuted);
  ASSERT_NE(*commuted, nullptr);
  ExpectSameSemantics(*join, *commuted);
  // A well-ordered join is left alone.
  auto good = Plan::Join(Eq(Attr(1), Attr(3)), *big, brewery_);
  ASSERT_OK(good);
  auto untouched = TryJoinCommute(*good, catalog_);
  ASSERT_OK(untouched);
  EXPECT_EQ(*untouched, nullptr);
}

TEST_F(RuleTest, PruneColumnsInsertsEarlyProjection) {
  // Example 3.2: Γ over a join needs only alcperc and country; pruning
  // must narrow the join inputs.
  auto join = Plan::Join(Eq(Attr(1), Attr(3)), beer_, brewery_);
  ASSERT_OK(join);
  auto grouped = Plan::GroupBy({5}, {{AggKind::kAvg, 2, "avg"}}, *join);
  ASSERT_OK(grouped);
  auto pruned = PruneColumns(*grouped);
  ASSERT_OK(pruned);
  ExpectSameSemantics(*grouped, *pruned);
  // The join inside the pruned plan must be narrower than 6 columns.
  const Plan* node = pruned->get();
  while (node->kind() != PlanKind::kJoin) {
    ASSERT_GT(node->num_children(), 0u);
    node = node->child(0).get();
  }
  EXPECT_LT(node->schema().arity(), 6u);
}

TEST_F(RuleTest, PruneColumnsKeepsDifferenceWhole) {
  // π does not distribute over −: pruning must not descend.
  auto diff = Plan::Difference(beer_, beer_);
  ASSERT_OK(diff);
  auto proj = Plan::ProjectIndexes({0}, *diff);
  ASSERT_OK(proj);
  auto pruned = PruneColumns(*proj);
  ASSERT_OK(pruned);
  ExpectSameSemantics(*proj, *pruned);
  const Plan* node = pruned->get();
  while (node->kind() != PlanKind::kDifference) {
    ASSERT_GT(node->num_children(), 0u);
    node = node->child(0).get();
  }
  EXPECT_EQ(node->schema().arity(), 3u);  // still full beer schema
}

class OptimizerSemanticsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptimizerSemanticsTest, OptimizedPlansPreserveSemantics) {
  std::mt19937_64 rng(GetParam());
  Catalog catalog;
  Relation r = RandomIntRelation(rng, 2, 25, 8, 3);
  Relation s = RandomIntRelation(rng, 2, 25, 8, 3);
  Relation t = RandomIntRelation(rng, 2, 25, 8, 3);
  for (auto [name, rel] : {std::pair<const char*, Relation*>{"r", &r},
                           {"s", &s},
                           {"t", &t}}) {
    RelationSchema schema = rel->schema();
    schema.set_name(name);
    ASSERT_OK(catalog.CreateRelation(schema));
    ASSERT_OK(catalog.SetRelation(name, *rel));
  }
  PlanPtr scan_r = Plan::Scan("r", catalog.GetRelation("r").value()->schema());
  PlanPtr scan_s = Plan::Scan("s", catalog.GetRelation("s").value()->schema());
  PlanPtr scan_t = Plan::Scan("t", catalog.GetRelation("t").value()->schema());

  std::vector<PlanPtr> plans;
  auto add = [&plans](Result<PlanPtr> p) {
    ASSERT_OK(p);
    plans.push_back(*p);
  };

  // σ over × with pushable conjuncts.
  auto prod = Plan::Product(scan_r, scan_s);
  ASSERT_OK(prod);
  add(Plan::Select(And(And(Eq(Attr(0), Attr(2)), Lt(Attr(1), Lit(int64_t{5}))),
                       Gt(Attr(3), Lit(int64_t{2}))),
                   *prod));
  // σ over ⊎.
  auto u = Plan::Union(scan_r, scan_s);
  ASSERT_OK(u);
  add(Plan::Select(Le(Attr(0), Lit(int64_t{4})), *u));
  // Γ over a three-way join: column pruning and join commute both apply.
  auto j1 = Plan::Join(Eq(Attr(0), Attr(2)), scan_r, scan_s);
  ASSERT_OK(j1);
  auto j2 = Plan::Join(Eq(Attr(3), Attr(4)), *j1, scan_t);
  ASSERT_OK(j2);
  add(Plan::GroupBy({0}, {{AggKind::kSum, 5, ""}}, *j2));
  // δ over ⊎ and over ×.
  add(Plan::Unique(*u));
  add(Plan::Unique(*prod));
  // Project chains.
  auto p1 = Plan::ProjectIndexes({1, 0}, scan_r);
  ASSERT_OK(p1);
  add(Plan::Project({Add(Attr(0), Attr(1)), Attr(0)}, *p1));
  // σ over δ over −.
  auto d = Plan::Difference(scan_r, scan_s);
  ASSERT_OK(d);
  auto ud = Plan::Unique(*d);
  ASSERT_OK(ud);
  add(Plan::Select(Gt(Attr(1), Lit(int64_t{3})), *ud));

  for (bool pre_dedup : {false, true}) {
    OptimizerOptions options;
    options.pre_dedup_union = pre_dedup;
    Optimizer optimizer(&catalog, options);
    for (const PlanPtr& plan : plans) {
      auto optimized = optimizer.Optimize(plan);
      ASSERT_OK(optimized);
      auto before = EvaluatePlan(*plan, catalog);
      auto after = EvaluatePlan(**optimized, catalog);
      ASSERT_OK(before);
      ASSERT_OK(after);
      EXPECT_REL_EQ(*before, *after)
          << "plan:\n"
          << plan->ToString() << "optimized:\n"
          << (*optimized)->ToString();
      // The optimized plan must also execute identically on the physical
      // engine.
      auto physical = exec::ExecutePlan(*optimized, catalog);
      ASSERT_OK(physical);
      EXPECT_REL_EQ(*physical, *before);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerSemanticsTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

// --- Annotation format (satellite of optimizer v2). ---
//
// Every planner and optimizer annotation goes through the helpers in
// mra/common/annotation.h; this is the one test that pins the exact
// format, so EXPLAIN output stays machine-greppable.
TEST(AnnotationFormatTest, PinnedExactly) {
  EXPECT_EQ(AnnotationText("rule", "merge_selects"), "rule: merge_selects");
  EXPECT_EQ(BracketAnnotation("keys: %2=%4"), "[keys: %2=%4]");
  EXPECT_EQ(RenderAnnotation("fallback", "hash ops disabled"),
            "[fallback: hash ops disabled]");
  EXPECT_EQ(RenderAnnotation("reordered", "t ⋈ r ⋈ s"),
            "[reordered: t ⋈ r ⋈ s]");
  EXPECT_EQ(BracketAnnotation(AnnotationText("rule", "subplan_reuse")),
            RenderAnnotation("rule", "subplan_reuse"));
}

TEST(OptimizerReportTest, AddDeduplicatesEntries) {
  OptimizerReport report;
  report.Add("rule", "split_select");
  report.Add("rule", "split_select");
  report.Add("reordered", "r ⋈ s");
  ASSERT_EQ(report.entries.size(), 2u);
  EXPECT_EQ(report.entries[0], "rule: split_select");
  EXPECT_EQ(report.entries[1], "reordered: r ⋈ s");
}

TEST_F(RuleTest, SplitSelectUnpacksConjunctions) {
  auto sel = Plan::Select(And(Eq(Attr(1), Lit("Guineken")),
                              Gt(Attr(2), Lit(5.0))),
                          beer_);
  ASSERT_OK(sel);
  auto split = TrySplitSelect(*sel);
  ASSERT_OK(split);
  ASSERT_NE(*split, nullptr);
  // A chain of single-conjunct selections over the scan.
  EXPECT_EQ((*split)->kind(), PlanKind::kSelect);
  EXPECT_EQ((*split)->child(0)->kind(), PlanKind::kSelect);
  EXPECT_EQ((*split)->child(0)->child(0)->kind(), PlanKind::kScan);
  ExpectSameSemantics(*sel, *split);
  // A single-conjunct selection is already split: no rewrite.
  auto single = Plan::Select(Gt(Attr(2), Lit(5.0)), beer_);
  ASSERT_OK(single);
  auto none = TrySplitSelect(*single);
  ASSERT_OK(none);
  EXPECT_EQ(*none, nullptr);
}

TEST_F(RuleTest, OptimizerReportsItsTrail) {
  // A conjunction over a product must at least fire the split and
  // pushdown family; the report must carry the trail in the pinned
  // "kind: detail" form.
  auto prod = Plan::Product(beer_, brewery_);
  ASSERT_OK(prod);
  auto sel = Plan::Select(And(Eq(Attr(1), Attr(3)), Eq(Attr(5), Lit("NL"))),
                          *prod);
  ASSERT_OK(sel);
  Optimizer optimizer(&catalog_);
  OptimizerReport report;
  auto optimized = optimizer.Optimize(*sel, &report);
  ASSERT_OK(optimized);
  EXPECT_FALSE(report.entries.empty());
  for (const std::string& entry : report.entries) {
    EXPECT_NE(entry.find(": "), std::string::npos) << entry;
  }
  ExpectSameSemantics(*sel, *optimized);
}

// --- Subplan reuse (common-subexpression elimination at lowering). ---

TEST_F(RuleTest, SubplanReuseLowersDuplicateJoinOnce) {
  auto join = Plan::Join(Eq(Attr(1), Attr(3)), beer_, brewery_);
  ASSERT_OK(join);
  auto twice = Plan::Union(*join, *join);
  ASSERT_OK(twice);
  auto lowered = exec::LowerPlan(*twice, catalog_);
  ASSERT_OK(lowered);
  std::string tree = (*lowered)->ToString();
  EXPECT_NE(tree.find("SubplanCache"), std::string::npos) << tree;
  EXPECT_NE(tree.find(AnnotationText("rule", "subplan_reuse")),
            std::string::npos)
      << tree;
  // The owner site renders the join subtree; the reuse site must not —
  // the shared subplan appears exactly once.
  size_t first = tree.find("HashJoin");
  ASSERT_NE(first, std::string::npos) << tree;
  EXPECT_EQ(tree.find("HashJoin", first + 1), std::string::npos) << tree;
  // Streaming the cached result is bag-preserving.
  auto executed = exec::ExecuteToRelation(**lowered);
  ASSERT_OK(executed);
  auto reference = EvaluatePlan(**twice, catalog_);
  ASSERT_OK(reference);
  EXPECT_REL_EQ(*executed, *reference);

  // With the pass disabled, both join sites lower independently.
  auto plain = exec::LowerPlan(*twice, catalog_, nullptr,
                               ConfigBuilder().SubplanReuse(false).Build());
  ASSERT_OK(plain);
  EXPECT_EQ((*plain)->ToString().find("SubplanCache"), std::string::npos);
  auto plain_result = exec::ExecuteToRelation(**plain);
  ASSERT_OK(plain_result);
  EXPECT_REL_EQ(*plain_result, *reference);
}

TEST_F(RuleTest, SubplanReuseSkipsCheapDuplicates) {
  // Bare scans are not worth caching: no SubplanCache for δ-free repeats
  // of a leaf.
  auto twice = Plan::Union(beer_, beer_);
  ASSERT_OK(twice);
  auto lowered = exec::LowerPlan(*twice, catalog_);
  ASSERT_OK(lowered);
  EXPECT_EQ((*lowered)->ToString().find("SubplanCache"), std::string::npos);
}

// --- EXPLAIN cardinality placeholders (satellite of optimizer v2). ---

TEST_F(RuleTest, ExplainRendersDashWithoutEstimate) {
  // An estimator that cannot answer must surface as "(est=-, err=-)",
  // never as a fabricated default.
  exec::CardinalityEstimator none = [](const Plan&) { return kNoEstimate; };
  auto lowered = exec::LowerPlan(beer_, catalog_, &none);
  ASSERT_OK(lowered);
  auto executed = exec::ExecuteToRelation(**lowered);
  ASSERT_OK(executed);
  std::string text = exec::RenderPlanWithMetrics(**lowered);
  EXPECT_NE(text.find("(est=-, err=-)"), std::string::npos) << text;

  // With a real estimate the same node renders numbers.
  exec::CardinalityEstimator five = [](const Plan&) { return 5.0; };
  auto with = exec::LowerPlan(beer_, catalog_, &five);
  ASSERT_OK(with);
  ASSERT_OK(exec::ExecuteToRelation(**with));
  std::string text2 = exec::RenderPlanWithMetrics(**with);
  EXPECT_NE(text2.find("est=5"), std::string::npos) << text2;
  EXPECT_EQ(text2.find("est=-"), std::string::npos) << text2;
}

TEST_F(RuleTest, OptimizerEndToEndExample32) {
  // The unoptimized Example 3.2 plan: Γ over the full join.  After
  // optimization a narrowing projection must appear below the group-by.
  auto join = Plan::Join(Eq(Attr(1), Attr(3)), beer_, brewery_);
  ASSERT_OK(join);
  auto grouped = Plan::GroupBy({5}, {{AggKind::kAvg, 2, "avg_alcperc"}},
                               *join);
  ASSERT_OK(grouped);
  Optimizer optimizer(&catalog_);
  auto optimized = optimizer.Optimize(*grouped);
  ASSERT_OK(optimized);
  ExpectSameSemantics(*grouped, *optimized);
}

}  // namespace
}  // namespace opt
}  // namespace mra
