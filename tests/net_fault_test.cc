// Error-path tests for the network layer: adversarial raw peers (close
// mid-frame, corrupt CRC, stalls), the retriable-vs-fatal classification,
// client retry/backoff/reconnect, and the server's Busy load-shedding.
// Also run under TSan in CI (.github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <string>
#include <thread>

#include "mra/fault/failpoint.h"
#include "mra/net/client.h"
#include "mra/net/server.h"
#include "mra/obs/metrics.h"

namespace mra {
namespace net {
namespace {

std::unique_ptr<Database> MakeDb() {
  auto db = std::move(Database::Open({}).value());
  lang::Interpreter interp(db.get());
  Status s = interp.ExecuteScript("create t(x: int);", nullptr);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return db;
}

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->value();
}

// An adversarial single-shot peer: accepts one connection, reads the
// client's request bytes, runs `respond`, and closes the connection.
class RawPeer {
 public:
  explicit RawPeer(std::function<void(Socket&)> respond) {
    listener_ = std::move(Listener::Bind("127.0.0.1", 0, 4).value());
    thread_ = std::thread([this, respond = std::move(respond)] {
      auto acceptable = listener_.WaitAcceptable(5'000);
      if (!acceptable.ok() || !*acceptable) return;
      auto sock = listener_.Accept();
      if (!sock.ok()) return;
      // Drain whatever request the client sent (one recv is enough: the
      // client writes its frame in one SendAll on loopback).
      (void)sock->RecvExact(1, 5'000);
      respond(*sock);
      sock->Close();
    });
  }
  ~RawPeer() {
    if (thread_.joinable()) thread_.join();
    listener_.Close();
  }
  uint16_t port() const { return listener_.port(); }

 private:
  Listener listener_;
  std::thread thread_;
};

class NetFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::FaultRegistry::Global().DisarmAll(); }
};

TEST_F(NetFaultTest, RetriableVersusFatalClassification) {
  EXPECT_TRUE(Client::IsRetriable(Status::IoError("connection reset")));
  EXPECT_TRUE(Client::IsRetriable(Status::Unavailable("shedding")));
  EXPECT_FALSE(Client::IsRetriable(Status::Corruption("bad CRC")));
  EXPECT_FALSE(Client::IsRetriable(Status::ParseError("bad query")));
  EXPECT_FALSE(Client::IsRetriable(Status::InvalidArgument("bad version")));
  EXPECT_FALSE(Client::IsRetriable(Status::OK()));
}

TEST_F(NetFaultTest, BusyFramePayloadRoundTrips) {
  std::string payload = EncodeBusy(250, "server at session capacity");
  auto notice = DecodeBusy(payload);
  ASSERT_TRUE(notice.ok()) << notice.status().ToString();
  EXPECT_EQ(notice->retry_after_ms, 250u);
  EXPECT_EQ(notice->message, "server at session capacity");
  EXPECT_FALSE(DecodeBusy(payload.substr(0, 3)).ok());  // Truncated.
  EXPECT_EQ(FrameKindName(FrameKind::kBusy), "Busy");
  EXPECT_TRUE(IsValidFrameKind(static_cast<uint8_t>(FrameKind::kBusy)));
  EXPECT_TRUE(IsValidFrameKind(static_cast<uint8_t>(FrameKind::kServerStats)));
  EXPECT_TRUE(IsValidFrameKind(static_cast<uint8_t>(FrameKind::kCancel)));
  EXPECT_FALSE(IsValidFrameKind(12));
}

TEST_F(NetFaultTest, PeerClosingMidFrameIsRetriableIoError) {
  // The peer sends a valid header announcing a payload, delivers only a
  // fragment of it, and closes: framing dies mid-read.
  RawPeer peer([](Socket& sock) {
    std::string frame =
        EncodeFrame(FrameKind::kHello, EncodeHello(kProtocolVersion, "evil"));
    (void)sock.SendAll(std::string_view(frame).substr(0, frame.size() - 4));
  });
  auto client = Client::Connect("127.0.0.1", peer.port());
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kIoError);
  EXPECT_TRUE(Client::IsRetriable(client.status()));
}

TEST_F(NetFaultTest, CorruptCrcIsFatalAndNotRetried) {
  RawPeer peer([](Socket& sock) {
    std::string frame =
        EncodeFrame(FrameKind::kHello, EncodeHello(kProtocolVersion, "evil"));
    frame.back() ^= 0x5a;  // Flip payload bits; the header CRC now lies.
    (void)sock.SendAll(frame);
  });
  uint64_t retries_before = CounterValue("net.client.retries");
  ClientOptions options;
  options.max_retries = 3;  // Must not be spent on a protocol error.
  options.retry_base_ms = 1;
  auto client = Client::Connect("127.0.0.1", peer.port(), options);
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(CounterValue("net.client.retries"), retries_before);
}

TEST_F(NetFaultTest, StallPastDeadlineTimesOut) {
  RawPeer peer([](Socket&) {
    // Say nothing until the client has long given up.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
  });
  ClientOptions options;
  options.io_timeout_ms = 50;
  auto t0 = std::chrono::steady_clock::now();
  auto client = Client::Connect("127.0.0.1", peer.port(), options);
  auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kIoError);
  EXPECT_NE(client.status().message().find("timed out"), std::string::npos);
  EXPECT_LT(elapsed, std::chrono::milliseconds(2'000));
}

TEST_F(NetFaultTest, ConnectRetriesCapOutAgainstDeadEndpoint) {
  // Bind-then-close guarantees a port that refuses connections.
  uint16_t dead_port;
  {
    Listener gone = std::move(Listener::Bind("127.0.0.1", 0, 1).value());
    dead_port = gone.port();
  }
  uint64_t retries_before = CounterValue("net.client.retries");
  ClientOptions options;
  options.max_retries = 2;
  options.retry_base_ms = 1;
  options.retry_cap_ms = 8;
  auto t0 = std::chrono::steady_clock::now();
  auto client = Client::Connect("127.0.0.1", dead_port, options);
  auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kIoError);
  // Exactly max_retries extra attempts, each with a capped backoff.
  EXPECT_EQ(CounterValue("net.client.retries"), retries_before + 2);
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST_F(NetFaultTest, InjectedTransportFaultTriggersReconnectAndRetry) {
  auto db = MakeDb();
  Server server(db.get());
  ASSERT_TRUE(server.Start().ok());

  ClientOptions options;
  options.max_retries = 4;
  options.retry_base_ms = 1;
  auto client = Client::Connect("127.0.0.1", server.port(), options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // One injected receive failure: whichever side trips it, the client
  // observes a transport fault, reconnects, and the retry succeeds.
  uint64_t retries_before = CounterValue("net.client.retries");
  ASSERT_TRUE(fault::FaultRegistry::Global()
                  .ConfigureFromSpec("net.recv=error:limit=1")
                  .ok());
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_TRUE(client->connected());
  EXPECT_GT(CounterValue("net.client.retries"), retries_before);

  fault::FaultRegistry::Global().DisarmAll();
  server.Shutdown();
}

TEST_F(NetFaultTest, WithoutRetriesInjectedFaultSurfaces) {
  auto db = MakeDb();
  Server server(db.get());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  ASSERT_TRUE(fault::FaultRegistry::Global()
                  .ConfigureFromSpec("net.recv=error:limit=1")
                  .ok());
  Status ping = client->Ping();
  fault::FaultRegistry::Global().DisarmAll();
  EXPECT_EQ(ping.code(), StatusCode::kIoError);
  EXPECT_FALSE(client->connected());
  server.Shutdown();
}

TEST_F(NetFaultTest, OverloadedServerShedsWithBusyAndRetryAfterHint) {
  auto db = MakeDb();
  ServerOptions server_options;
  server_options.max_sessions = 1;
  server_options.shed_grace_ms = 0;  // Shed immediately at the cap.
  server_options.busy_retry_after_ms = 123;
  Server server(db.get(), server_options);
  ASSERT_TRUE(server.Start().ok());

  Client first = std::move(
      Client::Connect("127.0.0.1", server.port()).value());
  ASSERT_TRUE(first.Ping().ok());

  // A second client without retries is turned away with the hint.
  uint64_t sheds_before = CounterValue("net.sheds");
  uint64_t busy_before = CounterValue("net.client.busy");
  auto second = Client::Connect("127.0.0.1", server.port());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(second.status().message().find("123"), std::string::npos);
  EXPECT_GT(CounterValue("net.sheds"), sheds_before);
  EXPECT_GT(CounterValue("net.client.busy"), busy_before);

  // With retries, the same client wins a slot once the first disconnects.
  std::thread release([&first] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    first.Close();
  });
  ClientOptions retrying;
  retrying.max_retries = 8;
  retrying.retry_base_ms = 40;
  retrying.retry_cap_ms = 400;
  auto third = Client::Connect("127.0.0.1", server.port(), retrying);
  release.join();
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_TRUE(third->Ping().ok());
  server.Shutdown();
}

TEST_F(NetFaultTest, SessionFailpointFailsSessionsWithErrorFrame) {
  auto db = MakeDb();
  Server server(db.get());
  ASSERT_TRUE(server.Start().ok());

  ASSERT_TRUE(fault::FaultRegistry::Global()
                  .ConfigureFromSpec("server.session=error:limit=1")
                  .ok());
  auto doomed = Client::Connect("127.0.0.1", server.port());
  fault::FaultRegistry::Global().DisarmAll();
  // The injected session failure answers the handshake with an Error
  // frame (IoError naming the site) and closes.
  ASSERT_FALSE(doomed.ok());
  EXPECT_EQ(doomed.status().code(), StatusCode::kIoError);
  EXPECT_NE(doomed.status().message().find("server.session"),
            std::string::npos);

  // The next session is healthy.
  auto fine = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(fine.ok()) << fine.status().ToString();
  EXPECT_TRUE(fine->Ping().ok());
  server.Shutdown();
}

}  // namespace
}  // namespace net
}  // namespace mra
