// Shared helpers for the mra test suite.

#ifndef MRA_TESTS_TEST_UTIL_H_
#define MRA_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "mra/core/relation.h"

namespace mra {
namespace testing {

/// Builds an all-int relation from rows; duplicates in `rows` accumulate
/// multiplicity, matching multi-set insertion.
inline Relation IntRel(const std::string& name,
                       const std::vector<std::vector<int64_t>>& rows,
                       size_t arity) {
  std::vector<Attribute> attrs;
  for (size_t i = 0; i < arity; ++i) {
    attrs.push_back({"c" + std::to_string(i + 1), Type::Int()});
  }
  Relation rel(RelationSchema(name, std::move(attrs)));
  for (const auto& row : rows) {
    EXPECT_EQ(row.size(), arity);
    std::vector<Value> values;
    for (int64_t v : row) values.push_back(Value::Int(v));
    rel.InsertUnchecked(Tuple(std::move(values)), 1);
  }
  return rel;
}

/// Builds an int tuple.
inline Tuple IntTuple(const std::vector<int64_t>& values) {
  std::vector<Value> vs;
  for (int64_t v : values) vs.push_back(Value::Int(v));
  return Tuple(std::move(vs));
}

/// Random int relation with controlled multiplicities, for property tests.
/// Small value ranges force overlaps so −, ∩ and δ get exercised.
inline Relation RandomIntRelation(std::mt19937_64& rng, size_t arity,
                                  size_t max_distinct, int64_t value_range,
                                  uint64_t max_multiplicity) {
  std::vector<Attribute> attrs;
  for (size_t i = 0; i < arity; ++i) {
    attrs.push_back({"c" + std::to_string(i + 1), Type::Int()});
  }
  Relation rel(RelationSchema("rnd", std::move(attrs)));
  std::uniform_int_distribution<size_t> distinct_dist(0, max_distinct);
  std::uniform_int_distribution<int64_t> value_dist(0, value_range - 1);
  std::uniform_int_distribution<uint64_t> count_dist(1, max_multiplicity);
  size_t n = distinct_dist(rng);
  for (size_t i = 0; i < n; ++i) {
    std::vector<Value> values;
    for (size_t a = 0; a < arity; ++a) {
      values.push_back(Value::Int(value_dist(rng)));
    }
    rel.InsertUnchecked(Tuple(std::move(values)), count_dist(rng));
  }
  return rel;
}

/// The paper's beer database (Examples 3.1, 3.2, 4.1), small and
/// hand-checkable.  Both Guineken and Bavapils brew a beer named
/// "dubbel", so projecting beer names yields duplicates (Example 3.1),
/// and beer "pils" by Guineken carries multiplicity 2 to make the
/// multi-set character explicit.
struct PaperBeerDb {
  Relation beer;
  Relation brewery;

  PaperBeerDb()
      : beer(RelationSchema("beer", {{"name", Type::String()},
                                     {"brewery", Type::String()},
                                     {"alcperc", Type::Real()}})),
        brewery(RelationSchema("brewery", {{"name", Type::String()},
                                           {"city", Type::String()},
                                           {"country", Type::String()}})) {
    auto b = [](const char* n, const char* br, double a) {
      return Tuple({Value::Str(n), Value::Str(br), Value::Real(a)});
    };
    EXPECT_TRUE(beer.Insert(b("pils", "Guineken", 5.0), 2).ok());
    EXPECT_TRUE(beer.Insert(b("dubbel", "Guineken", 6.5)).ok());
    EXPECT_TRUE(beer.Insert(b("dubbel", "Bavapils", 7.0)).ok());
    EXPECT_TRUE(beer.Insert(b("stout", "Kirin", 4.2)).ok());
    auto w = [](const char* n, const char* c, const char* co) {
      return Tuple({Value::Str(n), Value::Str(c), Value::Str(co)});
    };
    EXPECT_TRUE(brewery.Insert(w("Guineken", "Amsterdam", "NL")).ok());
    EXPECT_TRUE(brewery.Insert(w("Bavapils", "Lieshout", "NL")).ok());
    EXPECT_TRUE(brewery.Insert(w("Kirin", "Tokyo", "JP")).ok());
  }
};

/// Random relation spanning every value domain (bool, int, real, string,
/// decimal, date), so sort-order tests exercise each Value::Compare branch.
/// Small ranges force key collisions; multiplicities up to `max_multiplicity`
/// keep the bag character visible.
inline Relation RandomMixedRelation(std::mt19937_64& rng, size_t max_distinct,
                                    uint64_t max_multiplicity) {
  Relation rel(RelationSchema("mixed", {{"flag", Type::Bool()},
                                        {"i", Type::Int()},
                                        {"x", Type::Real()},
                                        {"s", Type::String()},
                                        {"amount", Type::Decimal()},
                                        {"day", Type::Date()}}));
  std::uniform_int_distribution<size_t> distinct_dist(0, max_distinct);
  std::uniform_int_distribution<int64_t> int_dist(-5, 5);
  std::uniform_int_distribution<int> real_dist(0, 8);
  std::uniform_int_distribution<int> str_dist(0, 6);
  std::uniform_int_distribution<int64_t> dec_dist(-300, 300);
  std::uniform_int_distribution<int32_t> date_dist(10'000, 10'020);
  std::uniform_int_distribution<uint64_t> count_dist(1, max_multiplicity);
  size_t n = distinct_dist(rng);
  for (size_t i = 0; i < n; ++i) {
    rel.InsertUnchecked(
        Tuple({Value::Bool(int_dist(rng) > 0),
               Value::Int(int_dist(rng)),
               Value::Real(real_dist(rng) * 0.5),
               Value::Str(std::string(1 + str_dist(rng) % 3,
                                      static_cast<char>('a' + str_dist(rng)))),
               Value::DecimalScaled(dec_dist(rng)),
               Value::Date(date_dist(rng))}),
        count_dist(rng));
  }
  return rel;
}

/// A scaled-down TPC-H-style trio — customer ⟵ orders ⟵ lineitem — with
/// realistic key skew: every orders.custkey hits a customer, every
/// lineitem.orderkey hits an order, 1–4 lineitems per order.  Sizes are
/// small enough for definitional (nested-loop, whole-bag) evaluation to
/// stay fast, large enough that joins cross batch boundaries.
struct TpchMiniDb {
  Relation customer;
  Relation orders;
  Relation lineitem;

  explicit TpchMiniDb(uint64_t seed, size_t num_customers = 25,
                      size_t num_orders = 120)
      : customer(RelationSchema("customer", {{"custkey", Type::Int()},
                                             {"name", Type::String()},
                                             {"nation", Type::String()},
                                             {"acctbal", Type::Decimal()}})),
        orders(RelationSchema("orders", {{"orderkey", Type::Int()},
                                         {"o_custkey", Type::Int()},
                                         {"orderdate", Type::Date()},
                                         {"totalprice", Type::Decimal()},
                                         {"priority", Type::String()}})),
        lineitem(RelationSchema("lineitem", {{"l_orderkey", Type::Int()},
                                             {"partkey", Type::Int()},
                                             {"quantity", Type::Int()},
                                             {"extprice", Type::Decimal()},
                                             {"discount", Type::Real()},
                                             {"shipdate", Type::Date()},
                                             {"returnflag", Type::String()}})) {
    std::mt19937_64 rng(seed);
    static const char* kNations[] = {"NL", "JP", "DE", "US", "BR"};
    static const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM"};
    static const char* kFlags[] = {"A", "N", "R"};
    std::uniform_int_distribution<int64_t> bal_dist(-99'999, 999'999);
    for (size_t c = 1; c <= num_customers; ++c) {
      customer.InsertUnchecked(
          Tuple({Value::Int(static_cast<int64_t>(c)),
                 Value::Str("Customer#" + std::to_string(c)),
                 Value::Str(kNations[rng() % 5]),
                 Value::DecimalScaled(bal_dist(rng))}),
          1);
    }
    std::uniform_int_distribution<int64_t> price_dist(1'000, 500'000);
    std::uniform_int_distribution<int32_t> date_dist(9'000, 9'365);
    for (size_t o = 1; o <= num_orders; ++o) {
      orders.InsertUnchecked(
          Tuple({Value::Int(static_cast<int64_t>(o)),
                 Value::Int(static_cast<int64_t>(1 + rng() % num_customers)),
                 Value::Date(date_dist(rng)),
                 Value::DecimalScaled(price_dist(rng)),
                 Value::Str(kPriorities[rng() % 3])}),
          1);
      size_t items = 1 + rng() % 4;
      for (size_t l = 0; l < items; ++l) {
        lineitem.InsertUnchecked(
            Tuple({Value::Int(static_cast<int64_t>(o)),
                   Value::Int(static_cast<int64_t>(1 + rng() % 50)),
                   Value::Int(static_cast<int64_t>(1 + rng() % 50)),
                   Value::DecimalScaled(price_dist(rng)),
                   Value::Real((rng() % 10) * 0.01),
                   Value::Date(date_dist(rng)),
                   Value::Str(kFlags[rng() % 3])}),
            // Occasional multiplicity: identical line items do occur in a
            // bag and must survive every plan shape.
            rng() % 5 == 0 ? 2 : 1);
      }
    }
  }
};

}  // namespace testing
}  // namespace mra

/// Relation equality with readable diagnostics.
#define EXPECT_REL_EQ(a, b)                                           \
  EXPECT_TRUE((a).Equals(b)) << "left:  " << (a).ToString() << "\n"   \
                             << "right: " << (b).ToString()

#define ASSERT_OK(expr)                                               \
  do {                                                                \
    const auto& mra_st_ = (expr);                                     \
    ASSERT_TRUE(mra_st_.ok()) << ::mra::internal::ToStatus(mra_st_).ToString(); \
  } while (false)

#define EXPECT_OK(expr)                                               \
  do {                                                                \
    const auto& mra_st_ = (expr);                                     \
    EXPECT_TRUE(mra_st_.ok()) << ::mra::internal::ToStatus(mra_st_).ToString(); \
  } while (false)

#endif  // MRA_TESTS_TEST_UTIL_H_
