// Shared helpers for the mra test suite.

#ifndef MRA_TESTS_TEST_UTIL_H_
#define MRA_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "mra/core/relation.h"

namespace mra {
namespace testing {

/// Builds an all-int relation from rows; duplicates in `rows` accumulate
/// multiplicity, matching multi-set insertion.
inline Relation IntRel(const std::string& name,
                       const std::vector<std::vector<int64_t>>& rows,
                       size_t arity) {
  std::vector<Attribute> attrs;
  for (size_t i = 0; i < arity; ++i) {
    attrs.push_back({"c" + std::to_string(i + 1), Type::Int()});
  }
  Relation rel(RelationSchema(name, std::move(attrs)));
  for (const auto& row : rows) {
    EXPECT_EQ(row.size(), arity);
    std::vector<Value> values;
    for (int64_t v : row) values.push_back(Value::Int(v));
    rel.InsertUnchecked(Tuple(std::move(values)), 1);
  }
  return rel;
}

/// Builds an int tuple.
inline Tuple IntTuple(const std::vector<int64_t>& values) {
  std::vector<Value> vs;
  for (int64_t v : values) vs.push_back(Value::Int(v));
  return Tuple(std::move(vs));
}

/// Random int relation with controlled multiplicities, for property tests.
/// Small value ranges force overlaps so −, ∩ and δ get exercised.
inline Relation RandomIntRelation(std::mt19937_64& rng, size_t arity,
                                  size_t max_distinct, int64_t value_range,
                                  uint64_t max_multiplicity) {
  std::vector<Attribute> attrs;
  for (size_t i = 0; i < arity; ++i) {
    attrs.push_back({"c" + std::to_string(i + 1), Type::Int()});
  }
  Relation rel(RelationSchema("rnd", std::move(attrs)));
  std::uniform_int_distribution<size_t> distinct_dist(0, max_distinct);
  std::uniform_int_distribution<int64_t> value_dist(0, value_range - 1);
  std::uniform_int_distribution<uint64_t> count_dist(1, max_multiplicity);
  size_t n = distinct_dist(rng);
  for (size_t i = 0; i < n; ++i) {
    std::vector<Value> values;
    for (size_t a = 0; a < arity; ++a) {
      values.push_back(Value::Int(value_dist(rng)));
    }
    rel.InsertUnchecked(Tuple(std::move(values)), count_dist(rng));
  }
  return rel;
}

/// The paper's beer database (Examples 3.1, 3.2, 4.1), small and
/// hand-checkable.  Both Guineken and Bavapils brew a beer named
/// "dubbel", so projecting beer names yields duplicates (Example 3.1),
/// and beer "pils" by Guineken carries multiplicity 2 to make the
/// multi-set character explicit.
struct PaperBeerDb {
  Relation beer;
  Relation brewery;

  PaperBeerDb()
      : beer(RelationSchema("beer", {{"name", Type::String()},
                                     {"brewery", Type::String()},
                                     {"alcperc", Type::Real()}})),
        brewery(RelationSchema("brewery", {{"name", Type::String()},
                                           {"city", Type::String()},
                                           {"country", Type::String()}})) {
    auto b = [](const char* n, const char* br, double a) {
      return Tuple({Value::Str(n), Value::Str(br), Value::Real(a)});
    };
    EXPECT_TRUE(beer.Insert(b("pils", "Guineken", 5.0), 2).ok());
    EXPECT_TRUE(beer.Insert(b("dubbel", "Guineken", 6.5)).ok());
    EXPECT_TRUE(beer.Insert(b("dubbel", "Bavapils", 7.0)).ok());
    EXPECT_TRUE(beer.Insert(b("stout", "Kirin", 4.2)).ok());
    auto w = [](const char* n, const char* c, const char* co) {
      return Tuple({Value::Str(n), Value::Str(c), Value::Str(co)});
    };
    EXPECT_TRUE(brewery.Insert(w("Guineken", "Amsterdam", "NL")).ok());
    EXPECT_TRUE(brewery.Insert(w("Bavapils", "Lieshout", "NL")).ok());
    EXPECT_TRUE(brewery.Insert(w("Kirin", "Tokyo", "JP")).ok());
  }
};

}  // namespace testing
}  // namespace mra

/// Relation equality with readable diagnostics.
#define EXPECT_REL_EQ(a, b)                                           \
  EXPECT_TRUE((a).Equals(b)) << "left:  " << (a).ToString() << "\n"   \
                             << "right: " << (b).ToString()

#define ASSERT_OK(expr)                                               \
  do {                                                                \
    const auto& mra_st_ = (expr);                                     \
    ASSERT_TRUE(mra_st_.ok()) << ::mra::internal::ToStatus(mra_st_).ToString(); \
  } while (false)

#define EXPECT_OK(expr)                                               \
  do {                                                                \
    const auto& mra_st_ = (expr);                                     \
    EXPECT_TRUE(mra_st_.ok()) << ::mra::internal::ToStatus(mra_st_).ToString(); \
  } while (false)

#endif  // MRA_TESTS_TEST_UTIL_H_
