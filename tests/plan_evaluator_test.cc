// Tests for logical plan construction (type checking at build time) and the
// definitional plan evaluator.

#include <gtest/gtest.h>

#include "mra/algebra/evaluator.h"
#include "mra/algebra/ops.h"
#include "mra/algebra/plan.h"
#include "mra/catalog/catalog.h"
#include "test_util.h"

namespace mra {
namespace {

using ::mra::testing::IntRel;
using ::mra::testing::IntTuple;
using ::mra::testing::PaperBeerDb;

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PaperBeerDb db;
    ASSERT_OK(catalog_.CreateRelation(db.beer.schema()));
    ASSERT_OK(catalog_.SetRelation("beer", db.beer));
    ASSERT_OK(catalog_.CreateRelation(db.brewery.schema()));
    ASSERT_OK(catalog_.SetRelation("brewery", db.brewery));
  }

  Result<PlanPtr> ScanOf(const std::string& name) {
    MRA_ASSIGN_OR_RETURN(const Relation* rel, catalog_.GetRelation(name));
    return Plan::Scan(name, rel->schema());
  }

  Catalog catalog_;
};

TEST_F(PlanTest, ScanEvaluatesToRelation) {
  auto plan = ScanOf("beer");
  ASSERT_OK(plan);
  auto result = EvaluatePlan(**plan, catalog_);
  ASSERT_OK(result);
  EXPECT_REL_EQ(*result, *catalog_.GetRelation("beer").value());
}

TEST_F(PlanTest, ScanOfUnknownRelationFailsAtEvaluation) {
  PlanPtr plan = Plan::Scan("ghost", RelationSchema("ghost", {{"x", Type::Int()}}));
  EXPECT_EQ(EvaluatePlan(*plan, catalog_).status().code(),
            StatusCode::kNotFound);
}

TEST_F(PlanTest, ConstRelEvaluatesToItself) {
  Relation lit = IntRel("lit", {{1}, {1}}, 1);
  PlanPtr plan = Plan::ConstRel(lit);
  auto result = EvaluatePlan(*plan, EmptyProvider());
  ASSERT_OK(result);
  EXPECT_REL_EQ(*result, lit);
}

TEST_F(PlanTest, BuildersValidateSchemas) {
  auto beer = ScanOf("beer");
  auto brewery = ScanOf("brewery");
  ASSERT_OK(beer);
  ASSERT_OK(brewery);
  // beer(string,string,real) vs brewery(string,string,string): union is
  // rejected at build time.
  EXPECT_EQ(Plan::Union(*beer, *brewery).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Plan::Difference(*beer, *brewery).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Plan::Intersect(*beer, *brewery).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PlanTest, BuildersValidateConditions) {
  auto beer = ScanOf("beer");
  ASSERT_OK(beer);
  // Non-boolean selection condition.
  EXPECT_EQ(Plan::Select(Attr(0), *beer).status().code(),
            StatusCode::kTypeError);
  // Attribute out of range.
  EXPECT_EQ(Plan::Select(Eq(Attr(9), Lit("x")), *beer).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PlanTest, JoinConditionSeesConcatenatedSchema) {
  auto beer = ScanOf("beer");
  auto brewery = ScanOf("brewery");
  ASSERT_OK(beer);
  ASSERT_OK(brewery);
  auto join = Plan::Join(Eq(Attr(1), Attr(3)), *beer, *brewery);
  ASSERT_OK(join);
  EXPECT_EQ((*join)->schema().arity(), 6u);
  // %7 does not exist in the 6-attribute join schema.
  EXPECT_EQ(Plan::Join(Eq(Attr(1), Attr(6)), *beer, *brewery)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PlanTest, FullExample31PlanEvaluates) {
  auto beer = ScanOf("beer");
  auto brewery = ScanOf("brewery");
  ASSERT_OK(beer);
  ASSERT_OK(brewery);
  auto join = Plan::Join(Eq(Attr(1), Attr(3)), *beer, *brewery);
  ASSERT_OK(join);
  auto sel = Plan::Select(Eq(Attr(5), Lit("NL")), *join);
  ASSERT_OK(sel);
  auto proj = Plan::ProjectIndexes({0}, *sel);
  ASSERT_OK(proj);
  auto result = EvaluatePlan(**proj, catalog_);
  ASSERT_OK(result);
  EXPECT_EQ(result->size(), 4u);
  EXPECT_EQ(result->Multiplicity(Tuple({Value::Str("dubbel")})), 2u);
}

TEST_F(PlanTest, GroupByPlanValidates) {
  auto beer = ScanOf("beer");
  ASSERT_OK(beer);
  auto good = Plan::GroupBy({1}, {{AggKind::kAvg, 2, ""}}, *beer);
  ASSERT_OK(good);
  EXPECT_EQ((*good)->schema().arity(), 2u);
  // SUM over a string attribute.
  EXPECT_EQ(Plan::GroupBy({1}, {{AggKind::kSum, 0, ""}}, *beer)
                .status()
                .code(),
            StatusCode::kTypeError);
  // No aggregates.
  EXPECT_EQ(Plan::GroupBy({1}, {}, *beer).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PlanTest, EvaluatorMatchesOpsComposition) {
  auto beer = ScanOf("beer");
  auto brewery = ScanOf("brewery");
  ASSERT_OK(beer);
  ASSERT_OK(brewery);
  auto join = Plan::Join(Eq(Attr(1), Attr(3)), *beer, *brewery);
  ASSERT_OK(join);
  auto grouped = Plan::GroupBy({5}, {{AggKind::kAvg, 2, "avg_alcperc"}},
                               *join);
  ASSERT_OK(grouped);
  auto via_plan = EvaluatePlan(**grouped, catalog_);
  ASSERT_OK(via_plan);

  PaperBeerDb db;
  auto joined = ops::Join(Eq(Attr(1), Attr(3)), db.beer, db.brewery);
  auto direct = ops::GroupBy({5}, {{AggKind::kAvg, 2, "avg_alcperc"}},
                             *joined);
  ASSERT_OK(direct);
  EXPECT_REL_EQ(*via_plan, *direct);
}

TEST_F(PlanTest, ToStringRendersTree) {
  auto beer = ScanOf("beer");
  ASSERT_OK(beer);
  auto sel = Plan::Select(Eq(Attr(1), Lit("Guineken")), *beer);
  ASSERT_OK(sel);
  std::string rendered = (*sel)->ToString();
  EXPECT_NE(rendered.find("select"), std::string::npos);
  EXPECT_NE(rendered.find("beer"), std::string::npos);
  EXPECT_NE(rendered.find("%2 = 'Guineken'"), std::string::npos);
}

TEST_F(PlanTest, ToInlineStringExample31) {
  auto beer = ScanOf("beer");
  auto brewery = ScanOf("brewery");
  ASSERT_OK(beer);
  ASSERT_OK(brewery);
  auto join = Plan::Join(Eq(Attr(1), Attr(3)), *beer, *brewery);
  ASSERT_OK(join);
  auto sel = Plan::Select(Eq(Attr(5), Lit("NL")), *join);
  ASSERT_OK(sel);
  auto proj = Plan::ProjectIndexes({0}, *sel);
  ASSERT_OK(proj);
  EXPECT_EQ((*proj)->ToInlineString(),
            "project([%1], select((%6 = 'NL'), "
            "join((%2 = %4), beer, brewery)))");
}

TEST_F(PlanTest, PlanEqualsStructural) {
  auto beer1 = ScanOf("beer");
  auto beer2 = ScanOf("beer");
  ASSERT_OK(beer1);
  ASSERT_OK(beer2);
  EXPECT_TRUE(PlanEquals(*beer1, *beer2));
  auto s1 = Plan::Select(Eq(Attr(0), Lit("x")), *beer1);
  auto s2 = Plan::Select(Eq(Attr(0), Lit("x")), *beer2);
  auto s3 = Plan::Select(Eq(Attr(0), Lit("y")), *beer2);
  ASSERT_OK(s1);
  ASSERT_OK(s2);
  ASSERT_OK(s3);
  EXPECT_TRUE(PlanEquals(*s1, *s2));
  EXPECT_FALSE(PlanEquals(*s1, *s3));
  EXPECT_FALSE(PlanEquals(*s1, *beer1));
}

TEST_F(PlanTest, CatalogBasics) {
  EXPECT_TRUE(catalog_.HasRelation("beer"));
  EXPECT_FALSE(catalog_.HasRelation("wine"));
  EXPECT_EQ(catalog_.relation_count(), 2u);
  EXPECT_EQ(catalog_.RelationNames(),
            (std::vector<std::string>{"beer", "brewery"}));
  EXPECT_EQ(catalog_.logical_time(), 0u);
  catalog_.AdvanceTime();
  EXPECT_EQ(catalog_.logical_time(), 1u);
}

TEST_F(PlanTest, CatalogRejectsDuplicateAndAnonymous) {
  EXPECT_EQ(catalog_.CreateRelation(RelationSchema("beer", {{"x", Type::Int()}}))
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog_.CreateRelation(RelationSchema({{"x", Type::Int()}}))
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PlanTest, CatalogSetRelationChecksSchema) {
  Relation wrong = IntRel("beer", {{1}}, 1);
  EXPECT_EQ(catalog_.SetRelation("beer", wrong).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(catalog_.SetRelation("missing", wrong).code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace mra
