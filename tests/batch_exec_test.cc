// Differential test for the batch-at-a-time protocol: every physical
// operator must produce the identical multiset through NextBatch() — at
// batch sizes 1 (degenerate), 7 (odd, never aligned with input sizes) and
// 1024 (the default) — as through the legacy row-at-a-time Next() loop
// (batch size 0 in ExecuteToRelation).  This pins down the adapter in the
// base class, every native NextBatchImpl override, and the compiled
// fast paths (CompiledPredicate, attribute-only projection), which only
// engage on the batch path.

#include <gtest/gtest.h>

#include <functional>
#include <random>

#include "mra/algebra/ops.h"
#include "mra/exec/operator.h"
#include "test_util.h"

namespace mra {
namespace exec {
namespace {

using ::mra::testing::IntRel;
using ::mra::testing::RandomIntRelation;

using OpFactory = std::function<PhysOpPtr()>;

// Drains a fresh operator tree per protocol/batch size — each Open
// re-compiles the fast paths, so nothing leaks between runs.
void ExpectBatchAgreement(const OpFactory& make) {
  PhysOpPtr reference_op = make();
  auto reference = ExecuteToRelation(*reference_op, /*batch_size=*/0);
  ASSERT_OK(reference);
  for (size_t batch_size : {size_t{1}, size_t{7}, size_t{1024}}) {
    PhysOpPtr op = make();
    auto batched = ExecuteToRelation(*op, batch_size);
    ASSERT_OK(batched);
    EXPECT_REL_EQ(*batched, *reference)
        << op->name() << " diverged at batch size " << batch_size;
  }
}

// Shared inputs: small value range so difference/intersect/join overlap,
// multiplicities up to 5 so the bag semantics are exercised.
struct Corpus {
  explicit Corpus(uint64_t seed) {
    std::mt19937_64 rng(seed);
    r = RandomIntRelation(rng, /*arity=*/2, /*max_distinct=*/200,
                          /*value_range=*/25, /*max_multiplicity=*/5);
    s = RandomIntRelation(rng, 2, 200, 25, 5);
    empty = Relation(r.schema());
  }
  Relation r, s, empty;
};

class BatchDifferentialTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  Corpus c{GetParam()};
};

TEST_P(BatchDifferentialTest, ScanOp) {
  ExpectBatchAgreement([&] { return std::make_unique<ScanOp>(&c.r); });
  ExpectBatchAgreement([&] { return std::make_unique<ScanOp>(&c.empty); });
}

TEST_P(BatchDifferentialTest, ConstScanOp) {
  ExpectBatchAgreement([&] { return std::make_unique<ConstScanOp>(c.s); });
}

TEST_P(BatchDifferentialTest, FilterOpCompiledPredicate) {
  // %0 < 12 ∧ %1 > 3: conjunction of attr-op-literal — the compiled path.
  ExpectBatchAgreement([&] {
    return std::make_unique<FilterOp>(
        And(Lt(Attr(0), Lit(int64_t{12})), Gt(Attr(1), Lit(int64_t{3}))),
        std::make_unique<ScanOp>(&c.r));
  });
}

TEST_P(BatchDifferentialTest, FilterOpGeneralExpression) {
  // %0 + %1 > 20 involves arithmetic, so it must take the interpreter path.
  ExpectBatchAgreement([&] {
    return std::make_unique<FilterOp>(
        Gt(Add(Attr(0), Attr(1)), Lit(int64_t{20})),
        std::make_unique<ScanOp>(&c.r));
  });
}

TEST_P(BatchDifferentialTest, ComputeOpAttrOnly) {
  // Pure column shuffle — the Tuple::Project fast path.
  ExpectBatchAgreement([&] {
    std::vector<ExprPtr> exprs;
    exprs.push_back(Attr(1));
    exprs.push_back(Attr(0));
    auto schema = InferProjectionSchema(exprs, c.r.schema());
    MRA_CHECK(schema.ok());
    return std::make_unique<ComputeOp>(std::move(exprs), *schema,
                                       std::make_unique<ScanOp>(&c.r));
  });
}

TEST_P(BatchDifferentialTest, ComputeOpGeneralExpression) {
  ExpectBatchAgreement([&] {
    std::vector<ExprPtr> exprs;
    exprs.push_back(Add(Attr(0), Attr(1)));
    auto schema = InferProjectionSchema(exprs, c.r.schema());
    MRA_CHECK(schema.ok());
    return std::make_unique<ComputeOp>(std::move(exprs), *schema,
                                       std::make_unique<ScanOp>(&c.r));
  });
}

TEST_P(BatchDifferentialTest, DedupOp) {
  ExpectBatchAgreement(
      [&] { return std::make_unique<DedupOp>(std::make_unique<ScanOp>(&c.r)); });
  ExpectBatchAgreement([&] {
    return std::make_unique<DedupOp>(std::make_unique<ScanOp>(&c.empty));
  });
}

TEST_P(BatchDifferentialTest, SortDedupOp) {
  ExpectBatchAgreement([&] {
    return std::make_unique<SortDedupOp>(std::make_unique<ScanOp>(&c.r));
  });
  ExpectBatchAgreement([&] {
    return std::make_unique<SortDedupOp>(std::make_unique<ScanOp>(&c.empty));
  });
}

TEST_P(BatchDifferentialTest, UnionAllOp) {
  ExpectBatchAgreement([&] {
    return std::make_unique<UnionAllOp>(std::make_unique<ScanOp>(&c.r),
                                        std::make_unique<ScanOp>(&c.s));
  });
  // Asymmetric: one side empty exercises the stream hand-over.
  ExpectBatchAgreement([&] {
    return std::make_unique<UnionAllOp>(std::make_unique<ScanOp>(&c.empty),
                                        std::make_unique<ScanOp>(&c.s));
  });
}

TEST_P(BatchDifferentialTest, DifferenceOp) {
  ExpectBatchAgreement([&] {
    return std::make_unique<DifferenceOp>(std::make_unique<ScanOp>(&c.r),
                                          std::make_unique<ScanOp>(&c.s));
  });
}

TEST_P(BatchDifferentialTest, IntersectOp) {
  ExpectBatchAgreement([&] {
    return std::make_unique<IntersectOp>(std::make_unique<ScanOp>(&c.r),
                                         std::make_unique<ScanOp>(&c.s));
  });
}

TEST_P(BatchDifferentialTest, NestedLoopJoinOp) {
  // Product (no condition) and a theta join.
  ExpectBatchAgreement([&] {
    return std::make_unique<NestedLoopJoinOp>(
        nullptr, std::make_unique<ScanOp>(&c.r),
        std::make_unique<ScanOp>(&c.s));
  });
  ExpectBatchAgreement([&] {
    return std::make_unique<NestedLoopJoinOp>(
        Lt(Attr(0), Attr(2)), std::make_unique<ScanOp>(&c.r),
        std::make_unique<ScanOp>(&c.s));
  });
}

TEST_P(BatchDifferentialTest, HashJoinOp) {
  ExpectBatchAgreement([&] {
    return std::make_unique<HashJoinOp>(
        std::vector<size_t>{0}, std::vector<size_t>{0}, nullptr,
        std::make_unique<ScanOp>(&c.r), std::make_unique<ScanOp>(&c.s));
  });
  // With residual condition.
  ExpectBatchAgreement([&] {
    return std::make_unique<HashJoinOp>(
        std::vector<size_t>{0}, std::vector<size_t>{0}, Lt(Attr(1), Attr(3)),
        std::make_unique<ScanOp>(&c.r), std::make_unique<ScanOp>(&c.s));
  });
}

TEST_P(BatchDifferentialTest, HashJoinOpMultiKey) {
  ExpectBatchAgreement([&] {
    return std::make_unique<HashJoinOp>(
        std::vector<size_t>{0, 1}, std::vector<size_t>{1, 0}, nullptr,
        std::make_unique<ScanOp>(&c.r), std::make_unique<ScanOp>(&c.s));
  });
}

TEST_P(BatchDifferentialTest, HashJoinOpEmptySides) {
  // Empty build side: every probe misses.  Empty probe side: the build
  // table is constructed and then never probed.
  ExpectBatchAgreement([&] {
    return std::make_unique<HashJoinOp>(
        std::vector<size_t>{0}, std::vector<size_t>{0}, nullptr,
        std::make_unique<ScanOp>(&c.r), std::make_unique<ScanOp>(&c.empty));
  });
  ExpectBatchAgreement([&] {
    return std::make_unique<HashJoinOp>(
        std::vector<size_t>{0}, std::vector<size_t>{0}, nullptr,
        std::make_unique<ScanOp>(&c.empty), std::make_unique<ScanOp>(&c.s));
  });
}

TEST_P(BatchDifferentialTest, ClosureOp) {
  ExpectBatchAgreement([&] {
    return std::make_unique<ClosureOp>(std::make_unique<ScanOp>(&c.r));
  });
}

TEST_P(BatchDifferentialTest, HashGroupByOp) {
  std::vector<AggSpec> aggs = {{AggKind::kSum, 1, "s"},
                               {AggKind::kCnt, 0, "n"},
                               {AggKind::kMax, 1, "m"}};
  auto schema = ops::GroupBySchema({0}, aggs, c.r.schema());
  ASSERT_OK(schema);
  ExpectBatchAgreement([&] {
    return std::make_unique<HashGroupByOp>(
        std::vector<size_t>{0}, aggs, *schema, std::make_unique<ScanOp>(&c.r));
  });
}

TEST_P(BatchDifferentialTest, HashGroupByOpGlobalAndEmpty) {
  // Global group (no keys) and an empty input.  Only the total aggregates
  // (CNT/SUM) appear here: AVG/MIN/MAX over the empty input are undefined
  // by Def 3.3 and would (correctly) error on both protocols.
  std::vector<AggSpec> aggs = {{AggKind::kCnt, 0, "n"},
                               {AggKind::kSum, 1, "s"}};
  auto schema = ops::GroupBySchema({}, aggs, c.r.schema());
  ASSERT_OK(schema);
  ExpectBatchAgreement([&] {
    return std::make_unique<HashGroupByOp>(std::vector<size_t>{}, aggs,
                                           *schema,
                                           std::make_unique<ScanOp>(&c.r));
  });
  ExpectBatchAgreement([&] {
    return std::make_unique<HashGroupByOp>(
        std::vector<size_t>{}, aggs, *schema,
        std::make_unique<ScanOp>(&c.empty));
  });
  // Keyed group-by over an empty input: no groups, empty result.
  auto keyed_schema = ops::GroupBySchema({0}, aggs, c.r.schema());
  ASSERT_OK(keyed_schema);
  ExpectBatchAgreement([&] {
    return std::make_unique<HashGroupByOp>(
        std::vector<size_t>{0}, aggs, *keyed_schema,
        std::make_unique<ScanOp>(&c.empty));
  });
}

TEST_P(BatchDifferentialTest, ComposedPipeline) {
  // The e15 shape — scan → filter → project — plus a dedup on top, as one
  // tree, so batch boundaries propagate through multiple operators.
  ExpectBatchAgreement([&] {
    auto filter = std::make_unique<FilterOp>(Lt(Attr(0), Lit(int64_t{15})),
                                             std::make_unique<ScanOp>(&c.r));
    std::vector<ExprPtr> exprs;
    exprs.push_back(Attr(0));
    auto schema = InferProjectionSchema(exprs, c.r.schema());
    MRA_CHECK(schema.ok());
    auto project = std::make_unique<ComputeOp>(std::move(exprs), *schema,
                                               std::move(filter));
    return std::make_unique<DedupOp>(std::move(project));
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchDifferentialTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

// Batch-protocol contract details that the differential sweep cannot see.

TEST(RowBatchContractTest, EmptyBatchAfterOkCallMeansEndOfStream) {
  Relation r = IntRel("r", {{1}, {2}, {3}}, 1);
  ScanOp scan(&r);
  ASSERT_OK(scan.Open());
  RowBatch batch(2);
  ASSERT_OK(scan.NextBatch(batch));
  EXPECT_EQ(batch.size(), 2u);
  ASSERT_OK(scan.NextBatch(batch));
  EXPECT_EQ(batch.size(), 1u);
  ASSERT_OK(scan.NextBatch(batch));
  EXPECT_TRUE(batch.empty());
  scan.Close();
}

TEST(RowBatchContractTest, ProtocolsShareTheCursor) {
  // Interleaving Next() and NextBatch() drains one stream, not two.
  Relation r = IntRel("r", {{1}, {2}, {3}, {4}}, 1);
  ScanOp scan(&r);
  ASSERT_OK(scan.Open());
  auto row = scan.Next();
  ASSERT_OK(row);
  ASSERT_TRUE(row->has_value());
  RowBatch batch(8);
  ASSERT_OK(scan.NextBatch(batch));
  EXPECT_EQ(batch.size(), 3u);  // The remaining rows, not all four.
  ASSERT_OK(scan.NextBatch(batch));
  EXPECT_TRUE(batch.empty());
  scan.Close();
}

TEST(RowBatchContractTest, ClearRecyclesRowStorage) {
  // Clear parks rows instead of destroying them: the slot handed back by
  // AppendSlot still owns the previous tuple's buffer, so assigning a
  // same-arity tuple reuses it (no reallocation).
  RowBatch batch(4);
  batch.AppendSlot() = Row{Tuple({Value::Int(1), Value::Int(2)}), 1};
  const Value* before = batch[0].tuple.values().data();
  batch.Clear();
  EXPECT_TRUE(batch.empty());
  // Copy-assign (the ScanOp refill pattern) — a move would replace the
  // buffer instead of reusing it.
  const Tuple next({Value::Int(7), Value::Int(8)});
  Row& slot = batch.AppendSlot();
  slot.tuple = next;
  slot.count = 3;
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].tuple.values().data(), before);
  EXPECT_EQ(batch[0].tuple.at(0).int_value(), 7);
}

TEST(RowBatchContractTest, TruncateCompactsLogicalSizeOnly) {
  RowBatch batch(4);
  for (int64_t i = 0; i < 3; ++i) {
    batch.AppendSlot() = Row{Tuple({Value::Int(i)}), 1};
  }
  batch.Truncate(1);
  EXPECT_EQ(batch.size(), 1u);
  size_t seen = 0;
  for (const Row& row : batch) {
    EXPECT_EQ(row.tuple.at(0).int_value(), 0);
    ++seen;
  }
  EXPECT_EQ(seen, 1u);
}

TEST(RowBatchContractTest, MetricsAgreeAcrossProtocols) {
  Relation r = IntRel("r", {{1}, {1}, {2}, {3}}, 1);
  ScanOp by_row(&r);
  ASSERT_OK(ExecuteToRelation(by_row, 0).status());
  ScanOp by_batch(&r);
  ASSERT_OK(ExecuteToRelation(by_batch, 7).status());
  EXPECT_EQ(by_row.metrics().weighted_rows, by_batch.metrics().weighted_rows);
  EXPECT_EQ(by_row.metrics().distinct_rows, by_batch.metrics().distinct_rows);
  EXPECT_GT(by_batch.metrics().batches_emitted, 0u);
}

}  // namespace
}  // namespace exec
}  // namespace mra
