// Tests for scalar expressions: the σ conditions of Definition 3.1 and the
// arithmetic expressions of the extended projection (Definition 3.4).

#include <gtest/gtest.h>

#include "mra/expr/eval.h"
#include "mra/expr/scalar_expr.h"
#include "test_util.h"

namespace mra {
namespace {

using ::mra::testing::IntTuple;

RelationSchema IntSchema(size_t arity) {
  std::vector<Attribute> attrs;
  for (size_t i = 0; i < arity; ++i) {
    attrs.push_back({"c" + std::to_string(i + 1), Type::Int()});
  }
  return RelationSchema("t", std::move(attrs));
}

Value EvalOk(const ExprPtr& e, const Tuple& t) {
  auto r = e->Eval(t);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : Value();
}

TEST(ExprInferTest, AttrRefTypesFromSchema) {
  RelationSchema s("t", {{"x", Type::Int()}, {"y", Type::String()}});
  EXPECT_EQ(*Attr(0)->Infer(s), Type::Int());
  EXPECT_EQ(*Attr(1)->Infer(s), Type::String());
  EXPECT_EQ(Attr(2)->Infer(s).status().code(), StatusCode::kInvalidArgument);
}

TEST(ExprInferTest, ArithmeticPromotion) {
  RelationSchema s("t", {{"i", Type::Int()},
                         {"r", Type::Real()},
                         {"d", Type::Decimal()}});
  EXPECT_EQ(*Add(Attr(0), Attr(0))->Infer(s), Type::Int());
  EXPECT_EQ(*Add(Attr(0), Attr(1))->Infer(s), Type::Real());
  EXPECT_EQ(*Mul(Attr(0), Attr(2))->Infer(s), Type::Decimal());
  EXPECT_EQ(*Div(Attr(2), Attr(1))->Infer(s), Type::Real());
}

TEST(ExprInferTest, ArithmeticRejectsNonNumeric) {
  RelationSchema s("t", {{"x", Type::String()}});
  EXPECT_EQ(Add(Attr(0), Lit(int64_t{1}))->Infer(s).status().code(),
            StatusCode::kTypeError);
}

TEST(ExprInferTest, ModRequiresInts) {
  RelationSchema s("t", {{"r", Type::Real()}});
  EXPECT_EQ(Mod(Attr(0), Lit(int64_t{2}))->Infer(s).status().code(),
            StatusCode::kTypeError);
}

TEST(ExprInferTest, ComparisonsYieldBool) {
  RelationSchema s("t", {{"i", Type::Int()}, {"s", Type::String()}});
  EXPECT_EQ(*Lt(Attr(0), Lit(int64_t{3}))->Infer(s), Type::Bool());
  EXPECT_EQ(*Eq(Attr(1), Lit("x"))->Infer(s), Type::Bool());
  // Cross-domain non-numeric comparison is a type error.
  EXPECT_EQ(Eq(Attr(0), Attr(1))->Infer(s).status().code(),
            StatusCode::kTypeError);
}

TEST(ExprInferTest, MixedNumericComparisonAllowed) {
  RelationSchema s("t", {{"i", Type::Int()}, {"r", Type::Real()}});
  EXPECT_EQ(*Le(Attr(0), Attr(1))->Infer(s), Type::Bool());
}

TEST(ExprInferTest, BooleanConnectives) {
  RelationSchema s("t", {{"b", Type::Bool()}, {"i", Type::Int()}});
  EXPECT_EQ(*And(Attr(0), Not(Attr(0)))->Infer(s), Type::Bool());
  EXPECT_EQ(And(Attr(0), Attr(1))->Infer(s).status().code(),
            StatusCode::kTypeError);
  EXPECT_EQ(Not(Attr(1))->Infer(s).status().code(), StatusCode::kTypeError);
}

TEST(ExprInferTest, DateArithmetic) {
  RelationSchema s("t", {{"d", Type::Date()}, {"i", Type::Int()}});
  EXPECT_EQ(*Add(Attr(0), Attr(1))->Infer(s), Type::Date());
  EXPECT_EQ(*Sub(Attr(0), Attr(1))->Infer(s), Type::Date());
  EXPECT_EQ(*Sub(Attr(0), Attr(0))->Infer(s), Type::Int());
  EXPECT_EQ(Mul(Attr(0), Attr(1))->Infer(s).status().code(),
            StatusCode::kTypeError);
  EXPECT_EQ(Add(Attr(1), Attr(0))->Infer(s).status().code(),
            StatusCode::kTypeError);
}

TEST(ExprEvalTest, IntArithmetic) {
  Tuple t = IntTuple({7, 3});
  EXPECT_EQ(EvalOk(Add(Attr(0), Attr(1)), t).int_value(), 10);
  EXPECT_EQ(EvalOk(Sub(Attr(0), Attr(1)), t).int_value(), 4);
  EXPECT_EQ(EvalOk(Mul(Attr(0), Attr(1)), t).int_value(), 21);
  EXPECT_EQ(EvalOk(Div(Attr(0), Attr(1)), t).int_value(), 2);  // truncating
  EXPECT_EQ(EvalOk(Mod(Attr(0), Attr(1)), t).int_value(), 1);
  EXPECT_EQ(EvalOk(Neg(Attr(0)), t).int_value(), -7);
}

TEST(ExprEvalTest, DivisionByZeroIsEvalError) {
  Tuple t = IntTuple({1, 0});
  EXPECT_EQ(Div(Attr(0), Attr(1))->Eval(t).status().code(),
            StatusCode::kEvalError);
  EXPECT_EQ(Mod(Attr(0), Attr(1))->Eval(t).status().code(),
            StatusCode::kEvalError);
  Tuple rt({Value::Real(1.0), Value::Real(0.0)});
  EXPECT_EQ(Div(Attr(0), Attr(1))->Eval(rt).status().code(),
            StatusCode::kEvalError);
}

TEST(ExprEvalTest, MixedNumericPromotesToReal) {
  Tuple t({Value::Int(3), Value::Real(0.5)});
  Value v = EvalOk(Add(Attr(0), Attr(1)), t);
  EXPECT_EQ(v.kind(), TypeKind::kReal);
  EXPECT_DOUBLE_EQ(v.real_value(), 3.5);
}

TEST(ExprEvalTest, DecimalArithmetic) {
  Tuple t({Value::DecimalScaled(25000), Value::DecimalScaled(15000)});  // 2.5, 1.5
  EXPECT_EQ(EvalOk(Add(Attr(0), Attr(1)), t).decimal_scaled(), 40000);
  EXPECT_EQ(EvalOk(Mul(Attr(0), Attr(1)), t).decimal_scaled(), 37500);  // 3.75
  EXPECT_EQ(EvalOk(Div(Attr(0), Attr(1)), t).decimal_scaled(), 16666);
  // int * decimal promotes to decimal.
  Tuple t2({Value::Int(3), Value::DecimalScaled(15000)});
  EXPECT_EQ(EvalOk(Mul(Attr(0), Attr(1)), t2).decimal_scaled(), 45000);
}

TEST(ExprEvalTest, DateArithmetic) {
  Tuple t({Value::Date(100), Value::Int(5), Value::Date(90)});
  EXPECT_EQ(EvalOk(Add(Attr(0), Attr(1)), t).date_days(), 105);
  EXPECT_EQ(EvalOk(Sub(Attr(0), Attr(1)), t).date_days(), 95);
  EXPECT_EQ(EvalOk(Sub(Attr(0), Attr(2)), t).int_value(), 10);
}

TEST(ExprEvalTest, Comparisons) {
  Tuple t = IntTuple({2, 3});
  EXPECT_TRUE(EvalOk(Lt(Attr(0), Attr(1)), t).bool_value());
  EXPECT_FALSE(EvalOk(Gt(Attr(0), Attr(1)), t).bool_value());
  EXPECT_TRUE(EvalOk(Ne(Attr(0), Attr(1)), t).bool_value());
  EXPECT_TRUE(EvalOk(Le(Attr(0), Attr(0)), t).bool_value());
  EXPECT_TRUE(EvalOk(Ge(Attr(1), Attr(0)), t).bool_value());
  EXPECT_FALSE(EvalOk(Eq(Attr(0), Attr(1)), t).bool_value());
}

TEST(ExprEvalTest, MixedNumericComparison) {
  Tuple t({Value::Int(2), Value::Real(2.0), Value::DecimalScaled(20000)});
  EXPECT_TRUE(EvalOk(Eq(Attr(0), Attr(1)), t).bool_value());
  EXPECT_TRUE(EvalOk(Eq(Attr(0), Attr(2)), t).bool_value());
}

TEST(ExprEvalTest, ShortCircuitGuardsRuntimeErrors) {
  // false AND (1/0 = 1) must not evaluate the division.
  Tuple t = IntTuple({0});
  ExprPtr e = And(Lit(false), Eq(Div(Lit(int64_t{1}), Attr(0)),
                                 Lit(int64_t{1})));
  auto r = e->Eval(t);
  ASSERT_OK(r);
  EXPECT_FALSE(r->bool_value());
  ExprPtr o = Or(Lit(true), Eq(Div(Lit(int64_t{1}), Attr(0)),
                               Lit(int64_t{1})));
  ASSERT_OK(o->Eval(t));
}

TEST(ExprEvalTest, PredicateHelpers) {
  RelationSchema s = IntSchema(1);
  ExprPtr good = Gt(Attr(0), Lit(int64_t{5}));
  EXPECT_OK(CheckPredicate(good, s));
  // Non-boolean condition rejected statically.
  EXPECT_EQ(CheckPredicate(Add(Attr(0), Attr(0)), s).code(),
            StatusCode::kTypeError);
  auto v = EvalPredicate(*good, IntTuple({9}));
  ASSERT_OK(v);
  EXPECT_TRUE(*v);
}

TEST(ExprToStringTest, PaperNotation) {
  // %i is printed 1-based, as in the paper.
  EXPECT_EQ(Attr(0)->ToString(), "%1");
  EXPECT_EQ(Eq(Attr(1), Lit("Guineken"))->ToString(), "(%2 = 'Guineken')");
  EXPECT_EQ(Mul(Attr(2), Lit(1.1))->ToString(), "(%3 * 1.1)");
  EXPECT_EQ(And(Lit(true), Not(Lit(false)))->ToString(),
            "(true and (not false))");
}

TEST(ExprRewriteTest, AttrsUsed) {
  ExprPtr e = And(Eq(Attr(0), Attr(3)), Gt(Attr(5), Lit(int64_t{1})));
  std::set<size_t> attrs = AttrsUsed(e);
  EXPECT_EQ(attrs, (std::set<size_t>{0, 3, 5}));
  EXPECT_TRUE(IsConstantExpr(Lit(int64_t{1})));
  EXPECT_FALSE(IsConstantExpr(e));
}

TEST(ExprRewriteTest, RemapAndShift) {
  ExprPtr e = Eq(Attr(0), Attr(2));
  ExprPtr remapped = RemapAttrs(e, {5, 6, 7});
  EXPECT_EQ(remapped->ToString(), "(%6 = %8)");
  ExprPtr shifted = ShiftAttrs(e, 3);
  EXPECT_EQ(shifted->ToString(), "(%4 = %6)");
  ExprPtr back = ShiftAttrs(shifted, -3);
  EXPECT_TRUE(ExprEquals(back, e));
}

TEST(ExprRewriteTest, SubstituteAttrs) {
  // σ condition over a projection's outputs, rewritten to the inputs.
  ExprPtr cond = Gt(Attr(1), Lit(int64_t{10}));
  std::vector<ExprPtr> projections = {Attr(3), Add(Attr(0), Attr(1))};
  ExprPtr pushed = SubstituteAttrs(cond, projections);
  EXPECT_EQ(pushed->ToString(), "((%1 + %2) > 10)");
}

TEST(ExprRewriteTest, ConjunctSplitAndCombine) {
  ExprPtr e = And(And(Eq(Attr(0), Lit(int64_t{1})), Gt(Attr(1), Attr(2))),
                  Lit(true));
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(e, &conjuncts);
  ASSERT_EQ(conjuncts.size(), 3u);
  ExprPtr combined = CombineConjuncts(conjuncts);
  EXPECT_TRUE(ExprEquals(combined, e));
  EXPECT_EQ(CombineConjuncts({})->ToString(), "true");
}

TEST(ExprRewriteTest, FoldConstants) {
  ExprPtr e = Add(Lit(int64_t{2}), Mul(Lit(int64_t{3}), Lit(int64_t{4})));
  ExprPtr folded = FoldConstants(e);
  ASSERT_EQ(folded->kind(), ExprKind::kLiteral);
  EXPECT_EQ(static_cast<const LiteralExpr&>(*folded).value().int_value(), 14);
}

TEST(ExprRewriteTest, FoldKeepsRuntimeErrorsUnfolded) {
  ExprPtr e = Div(Lit(int64_t{1}), Lit(int64_t{0}));
  ExprPtr folded = FoldConstants(e);
  EXPECT_EQ(folded->kind(), ExprKind::kBinary);  // still a division
}

TEST(ExprRewriteTest, FoldShortCircuitsBooleans) {
  ExprPtr x = Gt(Attr(0), Lit(int64_t{1}));
  EXPECT_TRUE(ExprEquals(FoldConstants(And(Lit(true), x)), x));
  EXPECT_EQ(FoldConstants(And(Lit(false), x))->ToString(), "false");
  EXPECT_EQ(FoldConstants(Or(Lit(true), x))->ToString(), "true");
  EXPECT_TRUE(ExprEquals(FoldConstants(Or(x, Lit(false))), x));
}

TEST(ExprRewriteTest, StructuralEquality) {
  EXPECT_TRUE(ExprEquals(Add(Attr(0), Lit(int64_t{1})),
                         Add(Attr(0), Lit(int64_t{1}))));
  EXPECT_FALSE(ExprEquals(Add(Attr(0), Lit(int64_t{1})),
                          Add(Attr(0), Lit(int64_t{2}))));
  EXPECT_FALSE(ExprEquals(Lit(int64_t{1}), Lit(1.0)));
}

TEST(ProjectionHelperTest, InferSchemaAndApply) {
  RelationSchema s("t", {{"x", Type::Int()}, {"y", Type::Int()}});
  std::vector<ExprPtr> exprs = {Attr(1), Mul(Attr(0), Lit(int64_t{2}))};
  auto schema = InferProjectionSchema(exprs, s);
  ASSERT_OK(schema);
  EXPECT_EQ(schema->attribute(0).name, "y");  // plain refs keep their name
  EXPECT_EQ(schema->attribute(1).name, "e2");
  EXPECT_EQ(schema->TypeOf(1), Type::Int());
  auto t = ProjectTuple(exprs, IntTuple({3, 4}));
  ASSERT_OK(t);
  EXPECT_EQ(t->at(0).int_value(), 4);
  EXPECT_EQ(t->at(1).int_value(), 6);
}

TEST(ProjectionHelperTest, RequiresAtLeastOneExpr) {
  // Definition 2.4: attribute lists have n >= 1.
  RelationSchema s("t", {{"x", Type::Int()}});
  EXPECT_EQ(InferProjectionSchema({}, s).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace mra
