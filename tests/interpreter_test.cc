// End-to-end tests for the XRA interpreter: §4's statements, programs and
// transactions running against a database, including the paper's worked
// examples in their textual form.

#include "mra/lang/interpreter.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace mra {
namespace lang {
namespace {

class InterpreterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open();
    ASSERT_OK(db);
    db_ = std::move(*db);
    interp_ = std::make_unique<Interpreter>(db_.get());
    ASSERT_OK(interp_->ExecuteScript(
        "create beer(name: string, brewery: string, alcperc: real);"
        "create brewery(name: string, city: string, country: string);"
        "insert(beer, {('pils', 'Guineken', 5.0) : 2,"
        "              ('dubbel', 'Guineken', 6.5),"
        "              ('dubbel', 'Bavapils', 7.0),"
        "              ('stout', 'Kirin', 4.2)});"
        "insert(brewery, {('Guineken', 'Amsterdam', 'NL'),"
        "                 ('Bavapils', 'Lieshout', 'NL'),"
        "                 ('Kirin', 'Tokyo', 'JP')});",
        nullptr));
  }

  Result<Relation> Query(const std::string& text) {
    return interp_->Query(text);
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Interpreter> interp_;
};

TEST_F(InterpreterTest, Example31DutchBeerNames) {
  auto result = Query(
      "project([%1], select(%6 = 'NL', join(%2 = %4, beer, brewery)))");
  ASSERT_OK(result);
  EXPECT_EQ(result->size(), 4u);
  EXPECT_EQ(result->Multiplicity(Tuple({Value::Str("dubbel")})), 2u);
  EXPECT_EQ(result->Multiplicity(Tuple({Value::Str("pils")})), 2u);
}

TEST_F(InterpreterTest, Example32AvgAlcPerCountry) {
  auto full = Query(
      "groupby([%6], avg(%3), join(%2 = %4, beer, brewery))");
  ASSERT_OK(full);
  auto early = Query(
      "groupby([%2], avg(%1),"
      " project([%3, %6], join(%2 = %4, beer, brewery)))");
  ASSERT_OK(early);
  // Bag semantics: both forms agree (the point of Example 3.2).
  EXPECT_REL_EQ(*full, *early);
  EXPECT_EQ(full->Multiplicity(
                Tuple({Value::Str("NL"), Value::Real(5.875)})),
            1u);
  EXPECT_EQ(full->Multiplicity(
                Tuple({Value::Str("JP"), Value::Real(4.2)})),
            1u);
}

TEST_F(InterpreterTest, Example41GuinekenUpdate) {
  // update(beer, σ_{brewery='Guineken'} beer, (name, brewery, alcperc*1.1)).
  ASSERT_OK(interp_->ExecuteScript(
      "update(beer, select(%2 = 'Guineken', beer), [%1, %2, %3 * 1.1]);",
      nullptr));
  auto result = Query("select(%2 = 'Guineken', beer)");
  ASSERT_OK(result);
  EXPECT_EQ(result->Multiplicity(Tuple({Value::Str("pils"),
                                        Value::Str("Guineken"),
                                        Value::Real(5.0 * 1.1)})),
            2u);
  EXPECT_EQ(result->Multiplicity(Tuple({Value::Str("dubbel"),
                                        Value::Str("Guineken"),
                                        Value::Real(6.5 * 1.1)})),
            1u);
  // Kirin untouched.
  auto other = Query("select(%2 = 'Kirin', beer)");
  ASSERT_OK(other);
  EXPECT_EQ(other->Multiplicity(Tuple({Value::Str("stout"),
                                       Value::Str("Kirin"),
                                       Value::Real(4.2)})),
            1u);
}

TEST_F(InterpreterTest, InsertAccumulatesPerDefinition41) {
  // insert is ⊎, so inserting an existing tuple raises its multiplicity.
  ASSERT_OK(interp_->ExecuteScript(
      "insert(beer, {('pils', 'Guineken', 5.0)});", nullptr));
  auto result = Query("select(%1 = 'pils', beer)");
  ASSERT_OK(result);
  EXPECT_EQ(result->size(), 3u);
}

TEST_F(InterpreterTest, DeleteSubtractsMultiplicities) {
  ASSERT_OK(interp_->ExecuteScript(
      "delete(beer, {('pils', 'Guineken', 5.0)});", nullptr));
  auto result = Query("select(%1 = 'pils', beer)");
  ASSERT_OK(result);
  EXPECT_EQ(result->size(), 1u);  // one of the two copies removed
}

TEST_F(InterpreterTest, QueryCallbackReceivesResults) {
  std::vector<std::string> queries;
  std::vector<uint64_t> sizes;
  ASSERT_OK(interp_->ExecuteScript("? beer; ? brewery;",
                                   [&](const std::string& q,
                                       const Relation& r) {
                                     queries.push_back(q);
                                     sizes.push_back(r.size());
                                   }));
  ASSERT_EQ(queries.size(), 2u);
  EXPECT_EQ(queries[0], "? beer");
  EXPECT_EQ(sizes[0], 5u);
  EXPECT_EQ(sizes[1], 3u);
}

TEST_F(InterpreterTest, AssignmentCreatesTemporaries) {
  auto results = interp_->ExecuteScriptCollect(
      "begin"
      "  nl := select(%3 = 'NL', brewery);"
      "  ? join(%2 = %4, beer, nl)"
      " end;");
  ASSERT_OK(results);
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].size(), 4u);
}

TEST_F(InterpreterTest, TemporariesVanishAfterTransaction) {
  ASSERT_OK(interp_->ExecuteScript(
      "begin x := beer; ? x end;", nullptr));
  // x is gone in the next bracket.
  EXPECT_EQ(interp_->ExecuteScriptCollect("? x;").status().code(),
            StatusCode::kNotFound);
}

TEST_F(InterpreterTest, AssignmentCannotShadowDatabaseRelation) {
  EXPECT_EQ(interp_->ExecuteScript("beer := brewery;", nullptr).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(InterpreterTest, TransactionAtomicityOnFailure) {
  // The second statement fails (unknown relation); the first must roll
  // back (Definition 4.3: T(D) = D on abort).
  Status s = interp_->ExecuteScript(
      "begin"
      "  delete(beer, beer);"
      "  insert(ghost, {(1)})"
      " end;",
      nullptr);
  EXPECT_FALSE(s.ok());
  auto beer = Query("beer");
  ASSERT_OK(beer);
  EXPECT_EQ(beer->size(), 5u);  // delete rolled back
}

TEST_F(InterpreterTest, FailedAutocommitStatementHasNoEffect) {
  // Division by zero inside the update's α aborts the statement.
  Status s = interp_->ExecuteScript(
      "update(beer, beer, [%1, %2, %3 / (%3 - %3)]);", nullptr);
  EXPECT_EQ(s.code(), StatusCode::kEvalError);
  auto beer = Query("beer");
  ASSERT_OK(beer);
  EXPECT_EQ(beer->Multiplicity(Tuple({Value::Str("stout"),
                                      Value::Str("Kirin"),
                                      Value::Real(4.2)})),
            1u);
}

TEST_F(InterpreterTest, UpdateRequiresStructurePreservingAlpha) {
  // α yielding (string, string) for a (string, string, real) relation.
  Status s = interp_->ExecuteScript(
      "update(beer, beer, [%1, %2]);", nullptr);
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
}

TEST_F(InterpreterTest, LogicalTimeAdvancesPerTransaction) {
  uint64_t t0 = db_->logical_time();
  ASSERT_OK(interp_->ExecuteScript(
      "begin insert(beer, {('x', 'Kirin', 1.0)});"
      " delete(beer, {('x', 'Kirin', 1.0)}) end;",
      nullptr));
  EXPECT_EQ(db_->logical_time(), t0 + 1);  // one bracket → one transition
}

TEST_F(InterpreterTest, DdlInsideTransactionRejected) {
  EXPECT_EQ(interp_->ExecuteScript(
                    "begin create t(x: int); insert(t, {(1)}) end;", nullptr)
                .code(),
            StatusCode::kTxnError);
}

TEST_F(InterpreterTest, ReferenceAndPhysicalModesAgree) {
  Interpreter::Options reference_options;
  reference_options.exec.use_physical_exec = false;
  reference_options.planner.optimize = false;
  Interpreter reference(db_.get(), reference_options);
  const char* query =
      "groupby([%6], avg(%3), cnt(%1),"
      " join(%2 = %4, beer, brewery))";
  auto a = interp_->Query(query);
  auto b = reference.Query(query);
  ASSERT_OK(a);
  ASSERT_OK(b);
  EXPECT_REL_EQ(*a, *b);
}

TEST_F(InterpreterTest, AggregatesOverEmptyGroupsErrorCleanly) {
  EXPECT_EQ(interp_->ExecuteScriptCollect(
                    "? groupby([], avg(%3), select(%1 = 'nope', beer));")
                .status()
                .code(),
            StatusCode::kUndefined);
}

TEST_F(InterpreterTest, RelationLiteralSchemaMismatchRejected) {
  EXPECT_FALSE(
      interp_->ExecuteScript("insert(beer, {(1, 2, 3)});", nullptr).ok());
}

TEST_F(InterpreterTest, ExplainAnalyzeReportsActualsAgainstEstimates) {
  auto out = interp_->ExplainAnalyze(
      "groupby([%6], avg(%3), join(%2 = %4, beer, brewery))");
  ASSERT_OK(out);
  EXPECT_NE(out->find("logical plan:"), std::string::npos);
  EXPECT_NE(out->find("optimized plan:"), std::string::npos);
  EXPECT_NE(out->find("physical plan (analyzed):"), std::string::npos);
  EXPECT_NE(out->find("est="), std::string::npos);
  EXPECT_NE(out->find("err="), std::string::npos);
  EXPECT_NE(out->find("actual rows="), std::string::npos);
  EXPECT_NE(out->find("result: "), std::string::npos);

  // The analyzed run fills the programmatic stats, preorder, with a
  // cardinality estimate annotated on every node.
  QueryStats stats = interp_->last_query_stats();
  ASSERT_TRUE(stats.valid);
  ASSERT_FALSE(stats.operators.empty());
  EXPECT_EQ(stats.operators[0].depth, 0u);
  for (const auto& op : stats.operators) {
    EXPECT_GE(op.estimated_rows, 0.0) << op.name;
  }

  // Actual cardinalities match an independent execution of the same query.
  auto result = Query("groupby([%6], avg(%3), join(%2 = %4, beer, brewery))");
  ASSERT_OK(result);
  EXPECT_EQ(stats.result_rows, result->size());
  EXPECT_EQ(stats.operators[0].metrics.weighted_rows, result->size());
}

TEST_F(InterpreterTest, QueryStatsCaptureLastPhysicalExecution) {
  auto result = Query("join(%2 = %4, beer, brewery)");
  ASSERT_OK(result);
  const QueryStats& stats = interp_->last_query_stats();
  ASSERT_TRUE(stats.valid);
  EXPECT_EQ(stats.result_rows, result->size());
  ASSERT_FALSE(stats.operators.empty());
  EXPECT_EQ(stats.operators[0].metrics.weighted_rows, result->size());
  // Plain queries carry estimates too: the production lowering path wires
  // the statistics estimator in, because it drives the parallel-degree
  // decision (docs/PARALLELISM.md) — not just EXPLAIN ANALYZE display.
  EXPECT_GE(stats.operators[0].estimated_rows, 0.0);
  // The hash join reports its materialised build side.
  bool saw_join = false;
  for (const auto& op : stats.operators) {
    if (op.name.find("HashJoin") != std::string::npos) {
      saw_join = true;
      EXPECT_GT(op.metrics.peak_hash_entries, 0u);
    }
  }
  EXPECT_TRUE(saw_join);
}

TEST_F(InterpreterTest, ExplainAnalyzeStatementReturnsPlanRelation) {
  auto results = interp_->ExecuteScriptCollect(
      "explain analyze select(%3 > 4.5, beer);");
  ASSERT_OK(results);
  ASSERT_EQ(results->size(), 1u);
  const Relation& rel = (*results)[0];
  EXPECT_EQ(rel.schema().name(), "explain");
  ASSERT_EQ(rel.distinct_size(), 1u);
  const std::string& text = rel.begin()->first.at(0).string_value();
  EXPECT_NE(text.find("physical plan (analyzed):"), std::string::npos);
  EXPECT_NE(text.find("Scan"), std::string::npos);
}

TEST_F(InterpreterTest, ExplainStatementWithoutAnalyzeSkipsExecution) {
  auto results = interp_->ExecuteScriptCollect("explain select(%3 > 4.5, beer);");
  ASSERT_OK(results);
  ASSERT_EQ(results->size(), 1u);
  const std::string& text = (*results)[0].begin()->first.at(0).string_value();
  EXPECT_NE(text.find("physical plan:"), std::string::npos);
  EXPECT_EQ(text.find("analyzed"), std::string::npos);
  EXPECT_EQ(text.find("actual rows="), std::string::npos);
}

}  // namespace
}  // namespace lang
}  // namespace mra
