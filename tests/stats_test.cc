// Tests for the cardinality/selectivity estimator.

#include "mra/opt/stats.h"

#include <gtest/gtest.h>

#include "mra/catalog/catalog.h"
#include "test_util.h"

namespace mra {
namespace opt {
namespace {

using ::mra::testing::IntRel;

class StatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Relation r = IntRel("r", {{1, 1}, {2, 2}, {3, 3}, {4, 4}}, 2);
    Relation s = IntRel("s", {{1, 1}, {2, 2}}, 2);
    ASSERT_OK(catalog_.CreateRelation(r.schema()));
    ASSERT_OK(catalog_.SetRelation("r", r));
    ASSERT_OK(catalog_.CreateRelation(s.schema()));
    ASSERT_OK(catalog_.SetRelation("s", s));
    scan_r_ = Plan::Scan("r", r.schema());
    scan_s_ = Plan::Scan("s", s.schema());
  }

  Catalog catalog_;
  PlanPtr scan_r_;
  PlanPtr scan_s_;
};

TEST_F(StatsTest, ScanUsesExactCounts) {
  EXPECT_DOUBLE_EQ(EstimateCardinality(*scan_r_, catalog_), 4.0);
  EXPECT_DOUBLE_EQ(EstimateCardinality(*scan_s_, catalog_), 2.0);
}

TEST_F(StatsTest, UnknownScanHasNoEstimate) {
  // A subtree over an unresolvable relation yields the kNoEstimate
  // sentinel, not a fabricated default (EXPLAIN renders `est=-`).
  PlanPtr ghost = Plan::Scan(
      "ghost", RelationSchema("g", {{"c1", Type::Int()}, {"c2", Type::Int()}}));
  EXPECT_LT(EstimateCardinality(*ghost, catalog_), 0.0);
  EXPECT_DOUBLE_EQ(EstimateCardinality(*ghost, catalog_), kNoEstimate);
  // The sentinel propagates through operators above the unknown scan.
  auto u = Plan::Union(scan_r_, ghost);
  ASSERT_OK(u);
  EXPECT_DOUBLE_EQ(EstimateCardinality(**u, catalog_), kNoEstimate);
}

TEST_F(StatsTest, UnionAddsProductMultiplies) {
  auto u = Plan::Union(scan_r_, scan_s_);
  ASSERT_OK(u);
  EXPECT_DOUBLE_EQ(EstimateCardinality(**u, catalog_), 6.0);
  auto p = Plan::Product(scan_r_, scan_s_);
  ASSERT_OK(p);
  EXPECT_DOUBLE_EQ(EstimateCardinality(**p, catalog_), 8.0);
}

TEST_F(StatsTest, SelectScalesBySelectivity) {
  auto eq = Plan::Select(Eq(Attr(0), Lit(int64_t{1})), scan_r_);
  ASSERT_OK(eq);
  EXPECT_DOUBLE_EQ(EstimateCardinality(**eq, catalog_),
                   4.0 * kEqSelectivity);
  auto range = Plan::Select(Lt(Attr(0), Lit(int64_t{3})), scan_r_);
  ASSERT_OK(range);
  EXPECT_DOUBLE_EQ(EstimateCardinality(**range, catalog_),
                   4.0 * kRangeSelectivity);
}

TEST_F(StatsTest, ConjunctsMultiply) {
  ExprPtr cond = And(Eq(Attr(0), Lit(int64_t{1})),
                     Lt(Attr(1), Lit(int64_t{5})));
  EXPECT_DOUBLE_EQ(EstimateSelectivity(cond),
                   kEqSelectivity * kRangeSelectivity);
}

TEST_F(StatsTest, DisjunctionUsesInclusionExclusion) {
  ExprPtr cond = Or(Eq(Attr(0), Lit(int64_t{1})),
                    Eq(Attr(0), Lit(int64_t{2})));
  double s = EstimateSelectivity(cond);
  EXPECT_GT(s, kEqSelectivity);
  EXPECT_LT(s, 2 * kEqSelectivity);
}

TEST_F(StatsTest, NotInverts) {
  ExprPtr cond = Not(Eq(Attr(0), Lit(int64_t{1})));
  EXPECT_DOUBLE_EQ(EstimateSelectivity(cond), 1.0 - kEqSelectivity);
}

TEST_F(StatsTest, BooleanLiteralSelectivity) {
  EXPECT_DOUBLE_EQ(EstimateSelectivity(Lit(true)), 1.0);
  EXPECT_DOUBLE_EQ(EstimateSelectivity(Lit(false)), 0.0);
}

TEST_F(StatsTest, ProjectionPreservesCardinality) {
  // π is additive in the bag algebra — the estimator must NOT shrink it.
  auto p = Plan::ProjectIndexes({0}, scan_r_);
  ASSERT_OK(p);
  EXPECT_DOUBLE_EQ(EstimateCardinality(**p, catalog_), 4.0);
}

TEST_F(StatsTest, UniqueAndGroupByShrink) {
  auto u = Plan::Unique(scan_r_);
  ASSERT_OK(u);
  EXPECT_LE(EstimateCardinality(**u, catalog_), 4.0);
  auto g = Plan::GroupBy({0}, {{AggKind::kCnt, 0, ""}}, scan_r_);
  ASSERT_OK(g);
  EXPECT_LE(EstimateCardinality(**g, catalog_), 4.0);
  auto global = Plan::GroupBy({}, {{AggKind::kCnt, 0, ""}}, scan_r_);
  ASSERT_OK(global);
  EXPECT_DOUBLE_EQ(EstimateCardinality(**global, catalog_), 1.0);
}

// --- Live column statistics. ---

class ColumnStatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Key uniform in [0, 20), value = key * 10 (range [0, 190]), string
    // column with 5 distinct values; (k, v, s) has 20 distinct tuples
    // (s is determined by k mod 5) carried with multiplicities.
    Relation r(RelationSchema("m", {{"k", Type::Int()},
                                    {"v", Type::Int()},
                                    {"s", Type::String()}}));
    for (int64_t i = 0; i < 100; ++i) {
      r.InsertUnchecked(Tuple({Value::Int(i % 20), Value::Int((i % 20) * 10),
                               Value::Str("s" + std::to_string(i % 5))}),
                        1 + i % 3);
    }
    // Histograms off: these tests pin the pure distinct-count and range
    // interpolation math (histogram refinement is covered by the stats
    // subsystem tests).
    stats::AnalyzeOptions options;
    options.histograms = false;
    stats_ = stats::Analyze(r, /*logical_time=*/0, options);
    ASSERT_OK(catalog_.CreateRelation(r.schema()));
    ASSERT_OK(catalog_.SetRelation("m", std::move(r)));
    scan_ = Plan::Scan("m", catalog_.GetRelation("m").value()->schema());
  }

  Catalog catalog_;
  stats::TableStatistics stats_;
  PlanPtr scan_;
};

TEST_F(ColumnStatsTest, ComputesDistinctAndRanges) {
  EXPECT_EQ(stats_.distinct_count, 20u);
  ASSERT_EQ(stats_.columns.size(), 3u);
  EXPECT_EQ(stats_.columns[0].distinct, 20u);
  EXPECT_EQ(stats_.columns[1].distinct, 20u);
  EXPECT_EQ(stats_.columns[2].distinct, 5u);
  EXPECT_TRUE(stats_.columns[0].has_range);
  EXPECT_DOUBLE_EQ(stats_.columns[0].min, 0.0);
  EXPECT_DOUBLE_EQ(stats_.columns[0].max, 19.0);
  EXPECT_FALSE(stats_.columns[2].has_range);  // strings have no range
}

TEST_F(ColumnStatsTest, EqualitySelectivityUsesDistinct) {
  const RelationSchema& schema = scan_->schema();
  // k = 3: one of 20 distinct values.
  EXPECT_DOUBLE_EQ(EstimateSelectivityWithStats(
                       Eq(Attr(0), Lit(int64_t{3})), schema, stats_),
                   1.0 / 20);
  // literal = attr orientation works too.
  EXPECT_DOUBLE_EQ(EstimateSelectivityWithStats(
                       Eq(Lit(int64_t{3}), Attr(0)), schema, stats_),
                   1.0 / 20);
  // s = 'x': one of 5.
  EXPECT_DOUBLE_EQ(EstimateSelectivityWithStats(Eq(Attr(2), Lit("x")),
                                                schema, stats_),
                   1.0 / 5);
}

TEST_F(ColumnStatsTest, RangeSelectivityInterpolates) {
  const RelationSchema& schema = scan_->schema();
  // v < 95 with range [0, 190] → 0.5.
  EXPECT_NEAR(EstimateSelectivityWithStats(
                  Lt(Attr(1), Lit(int64_t{95})), schema, stats_),
              0.5, 1e-9);
  // v > 95 → 0.5; v > 190 → 0; 95 > v (flipped) → 0.5 on the < side.
  EXPECT_NEAR(EstimateSelectivityWithStats(
                  Gt(Attr(1), Lit(int64_t{95})), schema, stats_),
              0.5, 1e-9);
  EXPECT_NEAR(EstimateSelectivityWithStats(
                  Gt(Attr(1), Lit(int64_t{190})), schema, stats_),
              0.0, 1e-9);
  EXPECT_NEAR(EstimateSelectivityWithStats(
                  Gt(Lit(int64_t{95}), Attr(1)), schema, stats_),
              0.5, 1e-9);
}

TEST_F(ColumnStatsTest, ConjunctsMultiplyAndFallBack) {
  const RelationSchema& schema = scan_->schema();
  ExprPtr cond = And(Eq(Attr(0), Lit(int64_t{1})),
                     Lt(Attr(1), Lit(int64_t{95})));
  EXPECT_NEAR(EstimateSelectivityWithStats(cond, schema, stats_),
              (1.0 / 20) * 0.5, 1e-9);
  // Attr-vs-attr comparisons fall back to the heuristic constants.
  EXPECT_DOUBLE_EQ(EstimateSelectivityWithStats(Eq(Attr(0), Attr(1)),
                                                schema, stats_),
                   kEqSelectivity);
}

TEST_F(ColumnStatsTest, CardinalityUsesStatsThroughCache) {
  StatsCache cache(&catalog_);
  auto sel = Plan::Select(Eq(Attr(0), Lit(int64_t{3})), scan_);
  ASSERT_OK(sel);
  double total = EstimateCardinality(*scan_, catalog_);
  // Without stats: fixed 0.1; with stats: 1/20.
  EXPECT_DOUBLE_EQ(EstimateCardinality(**sel, catalog_), total * 0.1);
  EXPECT_DOUBLE_EQ(EstimateCardinality(**sel, catalog_, &cache),
                   total / 20.0);
  // δ over a scan knows the exact distinct count with stats.
  auto uniq = Plan::Unique(scan_);
  ASSERT_OK(uniq);
  EXPECT_DOUBLE_EQ(EstimateCardinality(**uniq, catalog_, &cache), 20.0);
  // Γ by the key column estimates the number of groups from distinct(k).
  auto grouped = Plan::GroupBy({0}, {{AggKind::kCnt, 0, ""}}, scan_);
  ASSERT_OK(grouped);
  EXPECT_DOUBLE_EQ(EstimateCardinality(**grouped, catalog_, &cache), 20.0);
}

TEST_F(ColumnStatsTest, EquiJoinEstimateUsesKeyDistincts) {
  // A second relation with 10 distinct keys.
  Relation s(RelationSchema("n", {{"k", Type::Int()}}));
  for (int64_t i = 0; i < 10; ++i) {
    s.InsertUnchecked(Tuple({Value::Int(i)}), 2);
  }
  ASSERT_OK(catalog_.CreateRelation(s.schema()));
  ASSERT_OK(catalog_.SetRelation("n", std::move(s)));
  PlanPtr scan_n = Plan::Scan("n", catalog_.GetRelation("n").value()->schema());
  auto join = Plan::Join(Eq(Attr(0), Attr(3)), scan_, scan_n);
  ASSERT_OK(join);
  StatsCache cache(&catalog_);
  double l = EstimateCardinality(*scan_, catalog_);
  double r = EstimateCardinality(*scan_n, catalog_);
  // |L|·|R| / max(d=20, d=10) = l·r/20.
  EXPECT_DOUBLE_EQ(EstimateCardinality(**join, catalog_, &cache),
                   l * r / 20.0);
}

TEST(StatsCacheTest, ComputesOncePerRelation) {
  Catalog catalog;
  Relation r = IntRel("r", {{1}, {2}}, 1);
  RelationSchema schema = r.schema();
  schema.set_name("r");
  ASSERT_OK(catalog.CreateRelation(schema));
  ASSERT_OK(catalog.SetRelation("r", std::move(r)));
  StatsCache cache(&catalog);
  const stats::TableStatistics* first = cache.StatsFor("r");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->row_count, 2u);
  // Same pointer on repeat lookups; unknown names yield nullptr.
  EXPECT_EQ(cache.StatsFor("r"), first);
  EXPECT_EQ(cache.StatsFor("ghost"), nullptr);
}

TEST(AnalyzeTest, DistinctCapExtrapolates) {
  Relation r(RelationSchema("big", {{"x", Type::Int()}}));
  for (int64_t i = 0; i < 1000; ++i) {
    r.InsertUnchecked(Tuple({Value::Int(i)}), 1);
  }
  stats::AnalyzeOptions capped_opts;
  capped_opts.max_tracked_distinct = 100;
  stats::TableStatistics capped = stats::Analyze(r, 0, capped_opts);
  EXPECT_EQ(capped.columns[0].distinct, 1000u);  // falls back to |distinct|
  stats::TableStatistics exact = stats::Analyze(r, 0);
  EXPECT_EQ(exact.columns[0].distinct, 1000u);
}

}  // namespace
}  // namespace opt
}  // namespace mra
