// Tests for plan/expression serialization: round trips for every node
// kind, corruption detection, and the durable-constraint path it enables.

#include "mra/storage/plan_serializer.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "mra/algebra/evaluator.h"
#include "mra/catalog/catalog.h"
#include "mra/lang/interpreter.h"
#include "test_util.h"

namespace mra {
namespace storage {
namespace {

using ::mra::testing::IntRel;
using ::mra::testing::IntTuple;
using ::mra::testing::PaperBeerDb;

ExprPtr RoundTripExpr(const ExprPtr& expr) {
  Encoder enc;
  EncodeExpr(&enc, *expr);
  Decoder dec(enc.buffer());
  auto back = DecodeExpr(&dec);
  EXPECT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(dec.AtEnd());
  return back.ok() ? *back : nullptr;
}

TEST(ExprSerializerTest, AllNodeKindsRoundTrip) {
  std::vector<ExprPtr> exprs = {
      Attr(3),
      Lit(Value::Str("Guineken")),
      Lit(Value::DecimalScaled(-12345)),
      Neg(Attr(0)),
      Not(Lt(Attr(1), Lit(int64_t{7}))),
      And(Or(Eq(Attr(0), Attr(1)), Ge(Attr(2), Lit(2.5))),
          Ne(Mod(Attr(3), Lit(int64_t{4})), Lit(int64_t{0}))),
      Div(Mul(Add(Attr(0), Attr(1)), Sub(Attr(2), Attr(3))),
          Lit(int64_t{10})),
  };
  for (const ExprPtr& e : exprs) {
    ExprPtr back = RoundTripExpr(e);
    ASSERT_NE(back, nullptr);
    EXPECT_TRUE(ExprEquals(e, back)) << e->ToString();
  }
}

TEST(ExprSerializerTest, CorruptTagsRejected) {
  Encoder enc;
  EncodeExpr(&enc, *Attr(0));
  std::string data = enc.buffer();
  data[0] = 99;  // bad ExprKind
  Decoder dec(data);
  EXPECT_EQ(DecodeExpr(&dec).status().code(), StatusCode::kCorruption);
}

PlanPtr RoundTripPlan(const PlanPtr& plan) {
  auto back = DecodePlanFromString(EncodePlanToString(*plan));
  EXPECT_TRUE(back.ok()) << back.status().ToString();
  return back.ok() ? *back : nullptr;
}

TEST(PlanSerializerTest, EveryPlanKindRoundTrips) {
  PaperBeerDb db;
  PlanPtr beer = Plan::Scan("beer", db.beer.schema());
  PlanPtr brewery = Plan::Scan("brewery", db.brewery.schema());
  PlanPtr edges = Plan::ConstRel(IntRel("e", {{1, 2}, {2, 3}}, 2));

  std::vector<PlanPtr> plans;
  auto add = [&plans](Result<PlanPtr> p) {
    ASSERT_OK(p);
    plans.push_back(*p);
  };
  plans.push_back(beer);
  plans.push_back(edges);
  add(Plan::Union(beer, beer));
  add(Plan::Difference(beer, beer));
  add(Plan::Intersect(beer, beer));
  add(Plan::Product(beer, brewery));
  add(Plan::Join(Eq(Attr(1), Attr(3)), beer, brewery));
  add(Plan::Select(Gt(Attr(2), Lit(5.0)), beer));
  add(Plan::Project({Attr(0), Mul(Attr(2), Lit(1.1))}, beer,
                    {"name", "stronger"}));
  add(Plan::Unique(beer));
  add(Plan::GroupBy({1}, {{AggKind::kAvg, 2, "avg"}, {AggKind::kCnt, 0, "n"}},
                    beer));
  add(Plan::Closure(edges));
  // A deep composite.
  auto join = Plan::Join(Eq(Attr(1), Attr(3)), beer, brewery);
  ASSERT_OK(join);
  auto sel = Plan::Select(Eq(Attr(5), Lit("NL")), *join);
  ASSERT_OK(sel);
  add(Plan::GroupBy({5}, {{AggKind::kAvg, 2, "avg"}}, *sel));

  Catalog catalog;
  ASSERT_OK(catalog.CreateRelation(db.beer.schema()));
  ASSERT_OK(catalog.SetRelation("beer", db.beer));
  ASSERT_OK(catalog.CreateRelation(db.brewery.schema()));
  ASSERT_OK(catalog.SetRelation("brewery", db.brewery));

  for (const PlanPtr& plan : plans) {
    PlanPtr back = RoundTripPlan(plan);
    ASSERT_NE(back, nullptr);
    EXPECT_TRUE(PlanEquals(plan, back)) << plan->ToString();
    // Decoded plans evaluate identically.
    auto original = EvaluatePlan(*plan, catalog);
    auto decoded = EvaluatePlan(*back, catalog);
    ASSERT_OK(original);
    ASSERT_OK(decoded);
    EXPECT_REL_EQ(*original, *decoded);
    // Schema (incl. attribute names) survives.
    EXPECT_EQ(plan->schema().ToString(), back->schema().ToString());
  }
}

TEST(PlanSerializerTest, TruncationAndTrailingBytesRejected) {
  PaperBeerDb db;
  PlanPtr plan = Plan::Select(Eq(Attr(0), Lit("pils")),
                              Plan::Scan("beer", db.beer.schema()))
                     .value();
  std::string data = EncodePlanToString(*plan);
  EXPECT_EQ(DecodePlanFromString(std::string_view(data.data(), data.size() / 2))
                .status()
                .code(),
            StatusCode::kCorruption);
  EXPECT_EQ(DecodePlanFromString(data + "junk").status().code(),
            StatusCode::kCorruption);
}

TEST(PlanSerializerTest, DecodedPlansAreRevalidated) {
  // Encode a valid select, then corrupt the attribute index so the decoded
  // condition no longer type-checks: the builder must reject it.
  PlanPtr scan = Plan::Scan("r", RelationSchema("r", {{"x", Type::Int()}}));
  PlanPtr plan = Plan::Select(Gt(Attr(0), Lit(int64_t{0})), scan).value();
  Encoder enc;
  EncodePlan(&enc, *plan);
  std::string data = enc.TakeBuffer();
  // The attr index is the 8 bytes following [kSelect][kBinary][kGt? no —
  // op][kAttrRef]; rather than byte-surgery, rebuild with a bad plan
  // directly: select over arity-1 scan referencing %5.
  Encoder bad;
  bad.PutU8(static_cast<uint8_t>(PlanKind::kSelect));
  EncodeExpr(&bad, *Gt(Attr(4), Lit(int64_t{0})));
  bad.PutU8(static_cast<uint8_t>(PlanKind::kScan));
  bad.PutString("r");
  bad.PutSchema(RelationSchema("r", {{"x", Type::Int()}}));
  EXPECT_FALSE(DecodePlanFromString(bad.buffer()).ok());
}

TEST(DurableConstraintTest, ConstraintsSurviveReopen) {
  auto dir = std::filesystem::temp_directory_path() /
             ("mra_dur_constraint_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  {
    auto db = Database::Open({.directory = dir.string()});
    ASSERT_OK(db);
    lang::Interpreter interp(db->get());
    ASSERT_OK(interp.ExecuteScript(
        "create account(owner: string, balance: int);"
        "insert(account, {('ann', 10)});"
        "constraint nonneg (select(%2 < 0, account));",
        nullptr));
  }
  {
    auto db = Database::Open({.directory = dir.string()});
    ASSERT_OK(db);
    EXPECT_EQ((*db)->ConstraintNames(),
              (std::vector<std::string>{"nonneg"}));
    lang::Interpreter interp(db->get());
    // Still enforced after recovery from the WAL.
    EXPECT_EQ(interp.ExecuteScript("insert(account, {('eve', -1)});", nullptr)
                  .code(),
              StatusCode::kConstraintViolation);
    ASSERT_OK((*db)->Checkpoint());
  }
  {
    // And after recovery from the checkpoint (WAL truncated).
    auto db = Database::Open({.directory = dir.string()});
    ASSERT_OK(db);
    EXPECT_EQ((*db)->ConstraintNames(),
              (std::vector<std::string>{"nonneg"}));
    lang::Interpreter interp(db->get());
    EXPECT_EQ(interp.ExecuteScript("insert(account, {('eve', -1)});", nullptr)
                  .code(),
              StatusCode::kConstraintViolation);
    ASSERT_OK(interp.ExecuteScript("drop constraint nonneg;", nullptr));
  }
  {
    // The drop is durable too.
    auto db = Database::Open({.directory = dir.string()});
    ASSERT_OK(db);
    EXPECT_TRUE((*db)->ConstraintNames().empty());
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace storage
}  // namespace mra
