// Property tests for §3.3: the expression equivalences of the multi-set
// algebra, executed over randomized relations.  Each TEST_P runs across a
// sweep of seeds (parameterized gtest), so every law is checked on many
// random multi-sets with overlapping supports and non-trivial
// multiplicities.

#include <gtest/gtest.h>

#include <random>

#include "mra/algebra/ops.h"
#include "test_util.h"

namespace mra {
namespace {

using ::mra::testing::RandomIntRelation;

class AlgebraLawTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  AlgebraLawTest() : rng_(GetParam()) {}

  // Unary-schema relations with heavy support overlap.
  Relation R1() { return RandomIntRelation(rng_, 1, 40, 12, 4); }
  // Binary-schema relations.
  Relation R2() { return RandomIntRelation(rng_, 2, 40, 6, 4); }

  ExprPtr RandomUnaryPred() {
    std::uniform_int_distribution<int64_t> c(0, 11);
    switch (rng_() % 3) {
      case 0:
        return Lt(Attr(0), Lit(c(rng_)));
      case 1:
        return Eq(Attr(0), Lit(c(rng_)));
      default:
        return Ge(Attr(0), Lit(c(rng_)));
    }
  }

  std::mt19937_64 rng_;
};

// Theorem 3.1: E1 ∩ E2 = E1 − (E1 − E2).
TEST_P(AlgebraLawTest, IntersectEqualsDoubleDifference) {
  Relation a = R1(), b = R1();
  auto direct = ops::Intersect(a, b);
  auto via = ops::Difference(a, *ops::Difference(a, b));
  ASSERT_OK(direct);
  ASSERT_OK(via);
  EXPECT_REL_EQ(*direct, *via);
}

// Theorem 3.1: E1 ⋈_φ E2 = σ_φ(E1 × E2).
TEST_P(AlgebraLawTest, JoinEqualsSelectOverProduct) {
  Relation a = R2(), b = R2();
  ExprPtr cond = Eq(Attr(0), Attr(2));
  auto direct = ops::Join(cond, a, b);
  auto via = ops::Select(cond, *ops::Product(a, b));
  ASSERT_OK(direct);
  ASSERT_OK(via);
  EXPECT_REL_EQ(*direct, *via);
}

// Theorem 3.2: σ_p(E1 ⊎ E2) = σ_p E1 ⊎ σ_p E2.
TEST_P(AlgebraLawTest, SelectDistributesOverUnion) {
  Relation a = R1(), b = R1();
  ExprPtr p = RandomUnaryPred();
  auto lhs = ops::Select(p, *ops::Union(a, b));
  auto rhs = ops::Union(*ops::Select(p, a), *ops::Select(p, b));
  ASSERT_OK(lhs);
  ASSERT_OK(rhs);
  EXPECT_REL_EQ(*lhs, *rhs);
}

// Theorem 3.2: π_a(E1 ⊎ E2) = π_a E1 ⊎ π_a E2.
TEST_P(AlgebraLawTest, ProjectDistributesOverUnion) {
  Relation a = R2(), b = R2();
  auto lhs = ops::ProjectIndexes({1}, *ops::Union(a, b));
  auto rhs = ops::Union(*ops::ProjectIndexes({1}, a),
                        *ops::ProjectIndexes({1}, b));
  ASSERT_OK(lhs);
  ASSERT_OK(rhs);
  EXPECT_REL_EQ(*lhs, *rhs);
}

// Bag-valid relatives used by the optimizer's pushdown rules.
TEST_P(AlgebraLawTest, SelectDistributesOverDifference) {
  Relation a = R1(), b = R1();
  ExprPtr p = RandomUnaryPred();
  auto lhs = ops::Select(p, *ops::Difference(a, b));
  auto rhs = ops::Difference(*ops::Select(p, a), *ops::Select(p, b));
  ASSERT_OK(lhs);
  ASSERT_OK(rhs);
  EXPECT_REL_EQ(*lhs, *rhs);
}

TEST_P(AlgebraLawTest, SelectDistributesOverIntersection) {
  Relation a = R1(), b = R1();
  ExprPtr p = RandomUnaryPred();
  auto lhs = ops::Select(p, *ops::Intersect(a, b));
  auto rhs = ops::Intersect(*ops::Select(p, a), *ops::Select(p, b));
  ASSERT_OK(lhs);
  ASSERT_OK(rhs);
  EXPECT_REL_EQ(*lhs, *rhs);
}

TEST_P(AlgebraLawTest, SelectCommutesWithUnique) {
  Relation a = R1();
  ExprPtr p = RandomUnaryPred();
  auto lhs = ops::Select(p, *ops::Unique(a));
  auto rhs = ops::Unique(*ops::Select(p, a));
  ASSERT_OK(lhs);
  ASSERT_OK(rhs);
  EXPECT_REL_EQ(*lhs, *rhs);
}

// §3.3 (stated in the note after Theorem 3.2): δ does NOT distribute over
// ⊎, but δ(E1 ⊎ E2) = δ(δE1 ⊎ δE2) holds.
TEST_P(AlgebraLawTest, UniqueOverUnionLaw) {
  Relation a = R1(), b = R1();
  auto lhs = ops::Unique(*ops::Union(a, b));
  auto rhs = ops::Unique(*ops::Union(*ops::Unique(a), *ops::Unique(b)));
  ASSERT_OK(lhs);
  ASSERT_OK(rhs);
  EXPECT_REL_EQ(*lhs, *rhs);
}

TEST_P(AlgebraLawTest, UniqueDoesNotDistributeOverUnionWhenOverlapping) {
  // Verify the *inequivalence* on a constructed witness (random relations
  // may miss the overlap; this one cannot).
  Relation a = ::mra::testing::IntRel("a", {{1}}, 1);
  Relation b = ::mra::testing::IntRel("b", {{1}}, 1);
  auto lhs = ops::Unique(*ops::Union(a, b));          // {1 : 1}
  auto rhs = ops::Union(*ops::Unique(a), *ops::Unique(b));  // {1 : 2}
  ASSERT_OK(lhs);
  ASSERT_OK(rhs);
  EXPECT_FALSE(lhs->Equals(*rhs));
}

TEST_P(AlgebraLawTest, UniqueDistributesOverProduct) {
  Relation a = R1(), b = R1();
  auto lhs = ops::Unique(*ops::Product(a, b));
  auto rhs = ops::Product(*ops::Unique(a), *ops::Unique(b));
  ASSERT_OK(lhs);
  ASSERT_OK(rhs);
  EXPECT_REL_EQ(*lhs, *rhs);
}

// Theorem 3.3: associativity of ×, ⋈, ⊎ and ∩.
TEST_P(AlgebraLawTest, UnionAssociative) {
  Relation a = R1(), b = R1(), c = R1();
  auto lhs = ops::Union(*ops::Union(a, b), c);
  auto rhs = ops::Union(a, *ops::Union(b, c));
  ASSERT_OK(lhs);
  ASSERT_OK(rhs);
  EXPECT_REL_EQ(*lhs, *rhs);
}

TEST_P(AlgebraLawTest, IntersectAssociative) {
  Relation a = R1(), b = R1(), c = R1();
  auto lhs = ops::Intersect(*ops::Intersect(a, b), c);
  auto rhs = ops::Intersect(a, *ops::Intersect(b, c));
  ASSERT_OK(lhs);
  ASSERT_OK(rhs);
  EXPECT_REL_EQ(*lhs, *rhs);
}

TEST_P(AlgebraLawTest, ProductAssociativeUpToSchema) {
  Relation a = R1(), b = R1(), c = R1();
  auto lhs = ops::Product(*ops::Product(a, b), c);
  auto rhs = ops::Product(a, *ops::Product(b, c));
  ASSERT_OK(lhs);
  ASSERT_OK(rhs);
  // (A × B) × C and A × (B × C) produce the same tuples and counts.
  EXPECT_REL_EQ(*lhs, *rhs);
}

TEST_P(AlgebraLawTest, JoinAssociative) {
  Relation a = R1(), b = R1(), c = R1();
  // (a ⋈_{%1=%2} b) ⋈_{%2=%3} c  vs  a ⋈_{%1=%2} (b ⋈_{%1=%2} c).
  auto ab = ops::Join(Eq(Attr(0), Attr(1)), a, b);
  ASSERT_OK(ab);
  auto lhs = ops::Join(Eq(Attr(1), Attr(2)), *ab, c);
  ASSERT_OK(lhs);
  auto bc = ops::Join(Eq(Attr(0), Attr(1)), b, c);
  ASSERT_OK(bc);
  auto rhs = ops::Join(Eq(Attr(0), Attr(1)), a, *bc);
  ASSERT_OK(rhs);
  EXPECT_REL_EQ(*lhs, *rhs);
}

// Commutativity (referenced implicitly by the optimizer's join commute).
TEST_P(AlgebraLawTest, UnionAndIntersectCommutative) {
  Relation a = R1(), b = R1();
  EXPECT_REL_EQ(*ops::Union(a, b), *ops::Union(b, a));
  EXPECT_REL_EQ(*ops::Intersect(a, b), *ops::Intersect(b, a));
}

TEST_P(AlgebraLawTest, ProductCommutativeUpToColumnOrder) {
  Relation a = R1(), b = R1();
  auto ab = ops::Product(a, b);
  auto ba = ops::Product(b, a);
  ASSERT_OK(ab);
  ASSERT_OK(ba);
  auto ba_swapped = ops::ProjectIndexes({1, 0}, *ba);
  ASSERT_OK(ba_swapped);
  EXPECT_REL_EQ(*ab, *ba_swapped);
}

// Union/difference interplay: (E1 ⊎ E2) − E2 = E1 in bags (unlike sets!).
TEST_P(AlgebraLawTest, UnionThenDifferenceRestores) {
  Relation a = R1(), b = R1();
  auto lhs = ops::Difference(*ops::Union(a, b), b);
  ASSERT_OK(lhs);
  EXPECT_REL_EQ(*lhs, a);
}

// Size laws implied by the multiplicity definitions.
TEST_P(AlgebraLawTest, CardinalityLaws) {
  Relation a = R1(), b = R1();
  EXPECT_EQ(ops::Union(a, b)->size(), a.size() + b.size());
  EXPECT_EQ(ops::Product(a, b)->size(), a.size() * b.size());
  EXPECT_EQ(ops::ProjectIndexes({0}, a)->size(), a.size());
  EXPECT_EQ(ops::Unique(a)->size(), a.distinct_size());
}

// Definition 4.1's update identity: with α the identity list,
// (R − E) ⊎ π_α(R ∩ E) = R whenever E ⊑ has arbitrary overlap with R.
TEST_P(AlgebraLawTest, UpdateWithIdentityAlphaIsNoop) {
  Relation r = R2(), e = R2();
  auto untouched = ops::Difference(r, e);
  auto hit = ops::Intersect(r, e);
  ASSERT_OK(untouched);
  ASSERT_OK(hit);
  auto rewritten = ops::ProjectIndexes({0, 1}, *hit);
  ASSERT_OK(rewritten);
  auto result = ops::Union(*untouched, *rewritten);
  ASSERT_OK(result);
  EXPECT_REL_EQ(*result, r);
}

// Difference/intersection partition: (E1 − E2) ⊎ (E1 ∩ E2) = E1.
TEST_P(AlgebraLawTest, DifferencePlusIntersectionPartitions) {
  Relation a = R1(), b = R1();
  auto result = ops::Union(*ops::Difference(a, b), *ops::Intersect(a, b));
  ASSERT_OK(result);
  EXPECT_REL_EQ(*result, a);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraLawTest,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

}  // namespace
}  // namespace mra
