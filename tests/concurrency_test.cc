// Thread-safety hammer over one shared Database: concurrent read-only
// queries racing with committing transactions, concurrent commit storms,
// and DDL attempts against live brackets.  Written to be TSan-clean (CI
// runs this binary under ThreadSanitizer): readers evaluate under the
// database's shared lock, writers queue on the serial transaction slot.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "mra/lang/interpreter.h"

namespace mra {
namespace {

std::unique_ptr<Database> MakeDb() {
  auto db = std::move(Database::Open({}).value());
  lang::Interpreter interp(db.get());
  Status s = interp.ExecuteScript(
      "create r(a: int, b: int);"
      "insert(r, {(0, 0) : 5});",
      nullptr);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return db;
}

lang::InterpreterOptions Blocking() {
  lang::InterpreterOptions options;
  options.session.block_on_txn_slot = true;
  return options;
}

TEST(Concurrency, ReadersRaceOneWriter) {
  auto db = MakeDb();
  constexpr int kReaders = 4;
  constexpr int kCommits = 40;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&] {
      lang::Interpreter interp(db.get());
      while (!stop.load(std::memory_order_relaxed)) {
        auto result = interp.Query("select(%1 >= 0, r)");
        if (!result.ok()) {
          ++failures;
          continue;
        }
        // Every observed state is a committed one: the seed 5 tuples plus
        // one per completed commit, never a torn intermediate.
        uint64_t size = result->size();
        if (size < 5 || size > 5 + kCommits) ++failures;
      }
    });
  }

  {
    lang::Interpreter writer(db.get(), Blocking());
    for (int i = 1; i <= kCommits; ++i) {
      Status s = writer.ExecuteScript(
          "insert(r, {(" + std::to_string(i) + ", " + std::to_string(i * i) +
              ")});",
          nullptr);
      if (!s.ok()) ++failures;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0);
  lang::Interpreter interp(db.get());
  auto final_state = interp.Query("r");
  ASSERT_TRUE(final_state.ok());
  EXPECT_EQ(final_state->size(), 5u + kCommits);
}

TEST(Concurrency, CommitStormSerializesOnTheSlot) {
  auto db = MakeDb();
  constexpr int kWriters = 4;
  constexpr int kCommitsEach = 25;
  const uint64_t time_before = db->logical_time();
  std::atomic<int> failures{0};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      lang::Interpreter interp(db.get(), Blocking());
      for (int i = 0; i < kCommitsEach; ++i) {
        int v = w * kCommitsEach + i;
        Status s = interp.ExecuteScript(
            "begin x := {(" + std::to_string(v) +
                ", 1)}; insert(r, x); ? r end;",
            [](const std::string&, const Relation&) {});
        if (!s.ok()) ++failures;
      }
    });
  }
  for (auto& t : writers) t.join();

  EXPECT_EQ(failures.load(), 0);
  lang::Interpreter interp(db.get());
  auto result = interp.Query("r");
  ASSERT_TRUE(result.ok());
  // All-or-nothing per bracket: every one of the 100 commits landed.
  EXPECT_EQ(result->size(), 5u + kWriters * kCommitsEach);
  EXPECT_EQ(db->logical_time() - time_before,
            static_cast<uint64_t>(kWriters * kCommitsEach));
}

TEST(Concurrency, NonBlockingBeginStillBouncesWhenContended) {
  auto db = MakeDb();
  auto txn = db->Begin();
  ASSERT_TRUE(txn.ok());
  // Default semantics are unchanged: no waiting, immediate TxnError.
  auto second = db->Begin();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kTxnError);
  ASSERT_TRUE((*txn)->Abort().ok());
  // A waiting Begin succeeds once the slot is free.
  auto third = db->Begin(/*wait=*/true);
  ASSERT_TRUE(third.ok());
  ASSERT_TRUE((*third)->Abort().ok());
}

TEST(Concurrency, BlockingBeginWaitsForTheSlot) {
  auto db = MakeDb();
  auto held = db->Begin();
  ASSERT_TRUE(held.ok());

  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    auto txn = db->Begin(/*wait=*/true);
    ASSERT_TRUE(txn.ok());
    acquired.store(true);
    ASSERT_TRUE((*txn)->Abort().ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired.load()) << "waiter acquired a taken slot";
  ASSERT_TRUE((*held)->Abort().ok());
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(Concurrency, DdlAgainstLiveBracketIsRefusedNotRaced) {
  auto db = MakeDb();
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::thread writer([&] {
    lang::Interpreter interp(db.get(), Blocking());
    for (int i = 0; i < 30; ++i) {
      Status s = interp.ExecuteScript("insert(r, {(9, 9)});", nullptr);
      if (!s.ok()) ++failures;
    }
    stop.store(true);
  });
  // DDL from other threads either succeeds between brackets or is refused
  // with TxnError while one is active — never a torn catalog.
  std::thread ddl([&] {
    int round = 0;
    while (!stop.load()) {
      std::string name = "scratch" + std::to_string(round++);
      Status created = db->CreateRelation(
          RelationSchema(name, {Attribute{"x", Type::Int()}}));
      if (created.ok()) {
        Status dropped = db->DropRelation(name);
        if (!dropped.ok() && dropped.code() != StatusCode::kTxnError) {
          ++failures;
        }
      } else if (created.code() != StatusCode::kTxnError) {
        ++failures;
      }
    }
  });
  writer.join();
  ddl.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(Concurrency, ReadersRaceCheckpoints) {
  // Durable database: queries race commits *and* checkpoints (which
  // serialize the whole catalog).
  std::string dir = ::testing::TempDir() + "/mra_concurrency_ckpt";
  DatabaseOptions options;
  options.directory = dir;
  auto db = std::move(Database::Open(options).value());
  lang::Interpreter setup(db.get());
  if (!db->catalog().HasRelation("r")) {
    ASSERT_TRUE(setup
                    .ExecuteScript("create r(a: int, b: int);"
                                   "insert(r, {(0, 0) : 5});",
                                   nullptr)
                    .ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread reader([&] {
    lang::Interpreter interp(db.get());
    while (!stop.load()) {
      if (!interp.Query("unique(r)").ok()) ++failures;
    }
  });
  lang::Interpreter writer(db.get(), Blocking());
  for (int i = 0; i < 10; ++i) {
    if (!writer.ExecuteScript("insert(r, {(1, 2)});", nullptr).ok()) {
      ++failures;
    }
    Status cp = db->Checkpoint();
    if (!cp.ok()) ++failures;
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace mra
