// Tests for the transaction layer: the statement semantics of
// Definition 4.1 and the ACID properties of Definition 4.3, including
// durability (WAL + checkpoint recovery) and crash injection.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "mra/algebra/ops.h"
#include "mra/txn/database.h"
#include "mra/txn/transaction.h"
#include "test_util.h"

namespace mra {
namespace {

using ::mra::testing::IntRel;
using ::mra::testing::IntTuple;

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("mra_txn_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string path() const { return path_.string(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

RelationSchema XSchema(const std::string& name) {
  return RelationSchema(name, {{"x", Type::Int()}});
}

Relation Delta(const std::vector<std::pair<int64_t, uint64_t>>& rows) {
  Relation r(RelationSchema({{"x", Type::Int()}}));
  for (auto [v, c] : rows) r.InsertUnchecked(IntTuple({v}), c);
  return r;
}

TEST(DatabaseTest, CreateAndDropRelations) {
  auto db = Database::Open();
  ASSERT_OK(db);
  ASSERT_OK((*db)->CreateRelation(XSchema("r")));
  EXPECT_EQ((*db)->CreateRelation(XSchema("r")).code(),
            StatusCode::kAlreadyExists);
  ASSERT_OK((*db)->DropRelation("r"));
  EXPECT_EQ((*db)->DropRelation("r").code(), StatusCode::kNotFound);
}

TEST(TransactionTest, InsertIsUnion) {
  auto db = Database::Open();
  ASSERT_OK(db);
  ASSERT_OK((*db)->CreateRelation(XSchema("r")));
  auto txn = (*db)->Begin();
  ASSERT_OK(txn);
  ASSERT_OK((*txn)->Insert("r", Delta({{1, 2}})));
  ASSERT_OK((*txn)->Insert("r", Delta({{1, 1}, {2, 1}})));
  auto view = (*txn)->GetRelation("r");
  ASSERT_OK(view);
  EXPECT_EQ((*view)->Multiplicity(IntTuple({1})), 3u);
  ASSERT_OK((*txn)->Commit());
  EXPECT_EQ((*db)->catalog().GetRelation("r").value()->size(), 4u);
}

TEST(TransactionTest, DeleteIsClampedDifference) {
  auto db = Database::Open();
  ASSERT_OK(db);
  ASSERT_OK((*db)->CreateRelation(XSchema("r")));
  {
    auto txn = (*db)->Begin();
    ASSERT_OK(txn);
    ASSERT_OK((*txn)->Insert("r", Delta({{1, 3}, {2, 1}})));
    ASSERT_OK((*txn)->Commit());
  }
  auto txn = (*db)->Begin();
  ASSERT_OK(txn);
  ASSERT_OK((*txn)->Delete("r", Delta({{1, 5}, {9, 1}})));
  ASSERT_OK((*txn)->Commit());
  const Relation* r = (*db)->catalog().GetRelation("r").value();
  EXPECT_EQ(r->Multiplicity(IntTuple({1})), 0u);
  EXPECT_EQ(r->Multiplicity(IntTuple({2})), 1u);
}

TEST(TransactionTest, UpdateFollowsDefinition41) {
  // update(R, E, α): R ← (R − E) ⊎ π_α(R ∩ E).
  auto db = Database::Open();
  ASSERT_OK(db);
  ASSERT_OK((*db)->CreateRelation(XSchema("r")));
  {
    auto txn = (*db)->Begin();
    ASSERT_OK(txn);
    ASSERT_OK((*txn)->Insert("r", Delta({{1, 2}, {5, 1}})));
    ASSERT_OK((*txn)->Commit());
  }
  auto txn = (*db)->Begin();
  ASSERT_OK(txn);
  // E = {1:1} (only one of the two copies), α = (x * 10).
  ASSERT_OK((*txn)->Update("r", Delta({{1, 1}}),
                           {Mul(Attr(0), Lit(int64_t{10}))}));
  ASSERT_OK((*txn)->Commit());
  const Relation* r = (*db)->catalog().GetRelation("r").value();
  EXPECT_EQ(r->Multiplicity(IntTuple({1})), 1u);   // one copy stayed
  EXPECT_EQ(r->Multiplicity(IntTuple({10})), 1u);  // one copy rewritten
  EXPECT_EQ(r->Multiplicity(IntTuple({5})), 1u);
}

TEST(TransactionTest, UpdateRejectsNonStructurePreservingAlpha) {
  auto db = Database::Open();
  ASSERT_OK(db);
  ASSERT_OK((*db)->CreateRelation(XSchema("r")));
  auto txn = (*db)->Begin();
  ASSERT_OK(txn);
  EXPECT_EQ((*txn)->Update("r", Delta({}), {Lit("wrong-type")}).code(),
            StatusCode::kTypeError);
}

TEST(TransactionTest, AbortRestoresPreTransactionState) {
  auto db = Database::Open();
  ASSERT_OK(db);
  ASSERT_OK((*db)->CreateRelation(XSchema("r")));
  uint64_t t0 = (*db)->logical_time();
  auto txn = (*db)->Begin();
  ASSERT_OK(txn);
  ASSERT_OK((*txn)->Insert("r", Delta({{1, 100}})));
  ASSERT_OK((*txn)->Abort());
  EXPECT_TRUE((*db)->catalog().GetRelation("r").value()->empty());
  EXPECT_EQ((*db)->logical_time(), t0);  // no transition happened
}

TEST(TransactionTest, CommitAdvancesLogicalTime) {
  auto db = Database::Open();
  ASSERT_OK(db);
  ASSERT_OK((*db)->CreateRelation(XSchema("r")));
  uint64_t t0 = (*db)->logical_time();
  auto txn = (*db)->Begin();
  ASSERT_OK(txn);
  ASSERT_OK((*txn)->Insert("r", Delta({{1, 1}})));
  ASSERT_OK((*txn)->Commit());
  EXPECT_EQ((*db)->logical_time(), t0 + 1);
}

TEST(TransactionTest, IntermediateStatesInvisibleOutside) {
  auto db = Database::Open();
  ASSERT_OK(db);
  ASSERT_OK((*db)->CreateRelation(XSchema("r")));
  auto txn = (*db)->Begin();
  ASSERT_OK(txn);
  ASSERT_OK((*txn)->Insert("r", Delta({{7, 1}})));
  // The committed catalog still shows D_t while the bracket is open.
  EXPECT_TRUE((*db)->catalog().GetRelation("r").value()->empty());
  ASSERT_OK((*txn)->Commit());
  EXPECT_EQ((*db)->catalog().GetRelation("r").value()->size(), 1u);
}

TEST(TransactionTest, SerialIsolationOneActiveBracket) {
  auto db = Database::Open();
  ASSERT_OK(db);
  auto t1 = (*db)->Begin();
  ASSERT_OK(t1);
  EXPECT_EQ((*db)->Begin().status().code(), StatusCode::kTxnError);
  ASSERT_OK((*t1)->Commit());
  auto t2 = (*db)->Begin();
  EXPECT_OK(t2);
}

TEST(TransactionTest, AbandonedBracketAborts) {
  auto db = Database::Open();
  ASSERT_OK(db);
  ASSERT_OK((*db)->CreateRelation(XSchema("r")));
  {
    auto txn = (*db)->Begin();
    ASSERT_OK(txn);
    ASSERT_OK((*txn)->Insert("r", Delta({{1, 1}})));
    // Destructor runs without Commit.
  }
  EXPECT_TRUE((*db)->catalog().GetRelation("r").value()->empty());
  EXPECT_OK((*db)->Begin());  // the slot was released
}

TEST(TransactionTest, TemporariesAreAssignmentOnly) {
  auto db = Database::Open();
  ASSERT_OK(db);
  ASSERT_OK((*db)->CreateRelation(XSchema("r")));
  auto txn = (*db)->Begin();
  ASSERT_OK(txn);
  ASSERT_OK((*txn)->Assign("tmp", Delta({{1, 1}})));
  EXPECT_EQ((*txn)->TemporaryNames(),
            (std::vector<std::string>{"tmp"}));
  // Reading works; updating does not.
  ASSERT_OK((*txn)->GetRelation("tmp"));
  EXPECT_EQ((*txn)->Insert("tmp", Delta({{2, 1}})).code(),
            StatusCode::kTxnError);
  // Re-assignment replaces.
  ASSERT_OK((*txn)->Assign("tmp", Delta({{9, 4}})));
  EXPECT_EQ((*txn)->GetRelation("tmp").value()->size(), 4u);
}

TEST(TransactionTest, AssignCannotShadowDatabaseRelation) {
  auto db = Database::Open();
  ASSERT_OK(db);
  ASSERT_OK((*db)->CreateRelation(XSchema("r")));
  auto txn = (*db)->Begin();
  ASSERT_OK(txn);
  EXPECT_EQ((*txn)->Assign("r", Delta({})).code(),
            StatusCode::kAlreadyExists);
}

TEST(TransactionTest, StatementsAfterEndAreRejected) {
  auto db = Database::Open();
  ASSERT_OK(db);
  ASSERT_OK((*db)->CreateRelation(XSchema("r")));
  auto txn = (*db)->Begin();
  ASSERT_OK(txn);
  ASSERT_OK((*txn)->Commit());
  EXPECT_EQ((*txn)->Insert("r", Delta({{1, 1}})).code(),
            StatusCode::kTxnError);
  EXPECT_EQ((*txn)->Commit().code(), StatusCode::kTxnError);
  EXPECT_EQ((*txn)->Abort().code(), StatusCode::kTxnError);
}

// --- Durability. ---

TEST(DurabilityTest, CommittedStateSurvivesReopen) {
  TempDir dir;
  {
    auto db = Database::Open({.directory = dir.path()});
    ASSERT_OK(db);
    ASSERT_OK((*db)->CreateRelation(XSchema("r")));
    auto txn = (*db)->Begin();
    ASSERT_OK(txn);
    ASSERT_OK((*txn)->Insert("r", Delta({{1, 3}, {2, 1}})));
    ASSERT_OK((*txn)->Commit());
  }
  auto db = Database::Open({.directory = dir.path()});
  ASSERT_OK(db);
  const Relation* r = (*db)->catalog().GetRelation("r").value();
  EXPECT_EQ(r->Multiplicity(IntTuple({1})), 3u);
  EXPECT_EQ(r->size(), 4u);
  EXPECT_EQ((*db)->logical_time(), 1u);
}

TEST(DurabilityTest, UncommittedWorkIsNotRecovered) {
  TempDir dir;
  {
    auto db = Database::Open({.directory = dir.path()});
    ASSERT_OK(db);
    ASSERT_OK((*db)->CreateRelation(XSchema("r")));
    auto txn = (*db)->Begin();
    ASSERT_OK(txn);
    ASSERT_OK((*txn)->Insert("r", Delta({{1, 1}})));
    // Process "crashes" before commit: destructor aborts.
  }
  auto db = Database::Open({.directory = dir.path()});
  ASSERT_OK(db);
  EXPECT_TRUE((*db)->catalog().GetRelation("r").value()->empty());
}

TEST(DurabilityTest, CheckpointPlusWalRecovery) {
  TempDir dir;
  {
    auto db = Database::Open({.directory = dir.path()});
    ASSERT_OK(db);
    ASSERT_OK((*db)->CreateRelation(XSchema("r")));
    auto t1 = (*db)->Begin();
    ASSERT_OK(t1);
    ASSERT_OK((*t1)->Insert("r", Delta({{1, 1}})));
    ASSERT_OK((*t1)->Commit());
    ASSERT_OK((*db)->Checkpoint());  // r = {1:1} in the checkpoint
    auto t2 = (*db)->Begin();
    ASSERT_OK(t2);
    ASSERT_OK((*t2)->Insert("r", Delta({{2, 2}})));
    ASSERT_OK((*t2)->Commit());      // {2:2} only in the WAL
  }
  auto db = Database::Open({.directory = dir.path()});
  ASSERT_OK(db);
  const Relation* r = (*db)->catalog().GetRelation("r").value();
  EXPECT_EQ(r->Multiplicity(IntTuple({1})), 1u);
  EXPECT_EQ(r->Multiplicity(IntTuple({2})), 2u);
  EXPECT_EQ((*db)->logical_time(), 2u);
}

TEST(DurabilityTest, TornWalTailLosesOnlyTheTornCommit) {
  TempDir dir;
  std::string wal_path;
  {
    auto db = Database::Open({.directory = dir.path()});
    ASSERT_OK(db);
    wal_path = (*db)->wal_path();
    ASSERT_OK((*db)->CreateRelation(XSchema("r")));
    for (int i = 1; i <= 2; ++i) {
      auto txn = (*db)->Begin();
      ASSERT_OK(txn);
      ASSERT_OK((*txn)->Insert("r", Delta({{i, 1}})));
      ASSERT_OK((*txn)->Commit());
    }
  }
  // Crash injection: chop the final commit record in half.
  auto size = std::filesystem::file_size(wal_path);
  std::filesystem::resize_file(wal_path, size - 7);
  auto db = Database::Open({.directory = dir.path()});
  ASSERT_OK(db);
  const Relation* r = (*db)->catalog().GetRelation("r").value();
  EXPECT_EQ(r->Multiplicity(IntTuple({1})), 1u);  // first commit survives
  EXPECT_EQ(r->Multiplicity(IntTuple({2})), 0u);  // torn commit discarded
}

TEST(DurabilityTest, DdlIsDurable) {
  TempDir dir;
  {
    auto db = Database::Open({.directory = dir.path()});
    ASSERT_OK(db);
    ASSERT_OK((*db)->CreateRelation(XSchema("keep")));
    ASSERT_OK((*db)->CreateRelation(XSchema("gone")));
    ASSERT_OK((*db)->DropRelation("gone"));
  }
  auto db = Database::Open({.directory = dir.path()});
  ASSERT_OK(db);
  EXPECT_TRUE((*db)->catalog().HasRelation("keep"));
  EXPECT_FALSE((*db)->catalog().HasRelation("gone"));
}

TEST(DurabilityTest, CheckpointTruncatesWal) {
  TempDir dir;
  auto db = Database::Open({.directory = dir.path()});
  ASSERT_OK(db);
  ASSERT_OK((*db)->CreateRelation(XSchema("r")));
  auto txn = (*db)->Begin();
  ASSERT_OK(txn);
  ASSERT_OK((*txn)->Insert("r", Delta({{1, 1}})));
  ASSERT_OK((*txn)->Commit());
  ASSERT_OK((*db)->Checkpoint());
  EXPECT_EQ(std::filesystem::file_size((*db)->wal_path()), 0u);
  // State is still intact after a further reopen.
  db->reset();
  auto reopened = Database::Open({.directory = dir.path()});
  ASSERT_OK(reopened);
  EXPECT_EQ((*reopened)->catalog().GetRelation("r").value()->size(), 1u);
}

TEST(DurabilityTest, TornTailIsTruncatedSoTheLogStaysAppendable) {
  TempDir dir;
  std::string wal_path;
  {
    auto db = Database::Open({.directory = dir.path()});
    ASSERT_OK(db);
    wal_path = (*db)->wal_path();
    ASSERT_OK((*db)->CreateRelation(XSchema("r")));
    auto txn = (*db)->Begin();
    ASSERT_OK(txn);
    ASSERT_OK((*txn)->Insert("r", Delta({{1, 1}})));
    ASSERT_OK((*txn)->Commit());
  }
  auto size = std::filesystem::file_size(wal_path);
  std::filesystem::resize_file(wal_path, size - 7);
  {
    // Recovery must truncate the torn frame before appending, otherwise
    // this commit lands after garbage and is unreadable on reopen.
    auto db = Database::Open({.directory = dir.path()});
    ASSERT_OK(db);
    EXPECT_LT(std::filesystem::file_size(wal_path), size - 7);
    auto txn = (*db)->Begin();
    ASSERT_OK(txn);
    ASSERT_OK((*txn)->Insert("r", Delta({{2, 1}})));
    ASSERT_OK((*txn)->Commit());
  }
  auto reopened = Database::Open({.directory = dir.path()});
  ASSERT_OK(reopened);
  const Relation* r = (*reopened)->catalog().GetRelation("r").value();
  EXPECT_EQ(r->Multiplicity(IntTuple({2})), 1u);
}

TEST(DurabilityTest, SalvageModeRecoversPrefixOfCorruptWal) {
  TempDir dir;
  std::string wal_path;
  uint64_t first_commit_end = 0;
  {
    auto db = Database::Open({.directory = dir.path()});
    ASSERT_OK(db);
    wal_path = (*db)->wal_path();
    ASSERT_OK((*db)->CreateRelation(XSchema("r")));
    auto txn = (*db)->Begin();
    ASSERT_OK(txn);
    ASSERT_OK((*txn)->Insert("r", Delta({{1, 1}})));
    ASSERT_OK((*txn)->Commit());
    first_commit_end = std::filesystem::file_size(wal_path);
    auto txn2 = (*db)->Begin();
    ASSERT_OK(txn2);
    ASSERT_OK((*txn2)->Insert("r", Delta({{2, 1}})));
    ASSERT_OK((*txn2)->Commit());
  }
  // Corrupt the SECOND commit record's payload, then append garbage
  // behind it so the damage is mid-log corruption rather than a clean
  // torn tail.
  {
    std::FILE* f = std::fopen(wal_path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(first_commit_end) + 12 + 2, SEEK_SET);
    std::fputc('X', f);
    std::fseek(f, 0, SEEK_END);
    std::fwrite("garbage-trailer!", 1, 16, f);
    std::fclose(f);
  }
  // Default recovery refuses the corrupt log.
  EXPECT_EQ(Database::Open({.directory = dir.path()}).status().code(),
            StatusCode::kCorruption);
  // Salvage keeps the intact prefix and truncates, so new commits work.
  auto db = Database::Open({.directory = dir.path(), .salvage_wal = true});
  ASSERT_OK(db);
  {
    const Relation* r = (*db)->catalog().GetRelation("r").value();
    EXPECT_EQ(r->Multiplicity(IntTuple({1})), 1u);
    EXPECT_EQ(r->Multiplicity(IntTuple({2})), 0u);  // Lost to corruption.
  }
  EXPECT_EQ(std::filesystem::file_size(wal_path), first_commit_end);
  auto txn = (*db)->Begin();
  ASSERT_OK(txn);
  ASSERT_OK((*txn)->Insert("r", Delta({{3, 1}})));
  ASSERT_OK((*txn)->Commit());
  db->reset();
  auto reopened = Database::Open({.directory = dir.path()});
  ASSERT_OK(reopened);
  const Relation* r = (*reopened)->catalog().GetRelation("r").value();
  EXPECT_EQ(r->Multiplicity(IntTuple({1})), 1u);
  EXPECT_EQ(r->Multiplicity(IntTuple({3})), 1u);
}

TEST(DurabilityTest, SyncCommitsModeWorks) {
  TempDir dir;
  auto db = Database::Open({.directory = dir.path(), .sync_commits = true});
  ASSERT_OK(db);
  ASSERT_OK((*db)->CreateRelation(XSchema("r")));
  auto txn = (*db)->Begin();
  ASSERT_OK(txn);
  ASSERT_OK((*txn)->Insert("r", Delta({{1, 1}})));
  ASSERT_OK((*txn)->Commit());
  db->reset();
  auto reopened = Database::Open({.directory = dir.path()});
  ASSERT_OK(reopened);
  EXPECT_EQ((*reopened)->catalog().GetRelation("r").value()->size(), 1u);
}

}  // namespace
}  // namespace mra
