// Tests for the workload generators, table printer and CSV I/O.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "mra/util/csv.h"
#include "mra/util/generator.h"
#include "mra/util/printer.h"
#include "test_util.h"

namespace mra {
namespace util {
namespace {

using ::mra::testing::IntRel;

TEST(GeneratorTest, BeerDbRespectsOptions) {
  BeerDbOptions options;
  options.num_breweries = 10;
  options.num_beers = 200;
  options.num_beer_names = 20;
  BeerDb db = *MakeBeerDb(options);
  EXPECT_EQ(db.brewery.size(), 10u);
  EXPECT_EQ(db.beer.distinct_size(), 200u);
  EXPECT_EQ(db.beer.size(), 200u);  // duplicate_factor 1.0
  EXPECT_TRUE(db.beer.schema().CompatibleWith(BeerSchema()));
  EXPECT_TRUE(db.brewery.schema().CompatibleWith(BrewerySchema()));
}

TEST(GeneratorTest, DuplicateFactorInflatesMultiplicities) {
  BeerDbOptions options;
  options.num_beers = 500;
  options.duplicate_factor = 4.0;
  BeerDb db = *MakeBeerDb(options);
  EXPECT_GT(db.beer.size(), 2 * db.beer.distinct_size());
}

TEST(GeneratorTest, Deterministic) {
  BeerDbOptions options;
  options.seed = 123;
  BeerDb a = *MakeBeerDb(options);
  BeerDb b = *MakeBeerDb(options);
  EXPECT_REL_EQ(a.beer, b.beer);
  EXPECT_REL_EQ(a.brewery, b.brewery);
}

TEST(GeneratorTest, IntRelationShapes) {
  IntRelationOptions options;
  options.distinct_tuples = 100;
  options.arity = 3;
  options.duplicates = DupDistribution::kNone;
  Relation flat = *MakeIntRelation(options);
  EXPECT_EQ(flat.size(), flat.distinct_size());
  EXPECT_EQ(flat.schema().arity(), 3u);

  options.duplicates = DupDistribution::kUniform;
  options.max_multiplicity = 10;
  Relation uniform = *MakeIntRelation(options);
  EXPECT_GT(uniform.size(), uniform.distinct_size());

  options.duplicates = DupDistribution::kZipf;
  Relation zipf = *MakeIntRelation(options);
  EXPECT_GE(zipf.size(), zipf.distinct_size());
}

TEST(GeneratorTest, BeerDbRejectsEmptyDomains) {
  // Each of these would feed an empty range to a random distribution
  // (undefined behavior) if not refused up front.
  BeerDbOptions no_breweries;
  no_breweries.num_breweries = 0;
  EXPECT_EQ(MakeBeerDb(no_breweries).status().code(),
            StatusCode::kInvalidArgument);

  BeerDbOptions no_names;
  no_names.num_beer_names = 0;
  EXPECT_EQ(MakeBeerDb(no_names).status().code(),
            StatusCode::kInvalidArgument);

  BeerDbOptions no_countries;
  no_countries.countries.clear();
  EXPECT_EQ(MakeBeerDb(no_countries).status().code(),
            StatusCode::kInvalidArgument);

  BeerDbOptions shrinking;
  shrinking.duplicate_factor = 0.5;
  EXPECT_EQ(MakeBeerDb(shrinking).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GeneratorTest, IntRelationRejectsEmptyDomains) {
  IntRelationOptions no_columns;
  no_columns.arity = 0;
  EXPECT_EQ(MakeIntRelation(no_columns).status().code(),
            StatusCode::kInvalidArgument);

  IntRelationOptions no_values;
  no_values.value_range = 0;
  EXPECT_EQ(MakeIntRelation(no_values).status().code(),
            StatusCode::kInvalidArgument);

  IntRelationOptions no_mult;
  no_mult.duplicates = DupDistribution::kUniform;
  no_mult.max_multiplicity = 0;
  EXPECT_EQ(MakeIntRelation(no_mult).status().code(),
            StatusCode::kInvalidArgument);

  // max_multiplicity is irrelevant without a duplicate distribution, so
  // zero is fine there.
  IntRelationOptions flat;
  flat.duplicates = DupDistribution::kNone;
  flat.max_multiplicity = 0;
  EXPECT_TRUE(MakeIntRelation(flat).ok());
}

TEST(PrinterTest, RendersAlignedTable) {
  Relation r = IntRel("r", {{1, 10}, {1, 10}, {2, 20}}, 2);
  std::string table = RenderTable(r);
  EXPECT_NE(table.find("| c1"), std::string::npos);
  EXPECT_NE(table.find("#"), std::string::npos);  // multiplicity column
  EXPECT_NE(table.find("| 1 "), std::string::npos);
  EXPECT_NE(table.find("| 2 "), std::string::npos);
}

TEST(PrinterTest, OmitsMultiplicityColumnForSets) {
  Relation r = IntRel("r", {{1}, {2}}, 1);
  std::string table = RenderTable(r);
  EXPECT_EQ(table.find("#"), std::string::npos);
}

TEST(PrinterTest, ElidesBeyondMaxRows) {
  Relation r(RelationSchema("r", {{"x", Type::Int()}}));
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_OK(r.Insert(Tuple({Value::Int(i)})));
  }
  PrintOptions options;
  options.max_rows = 5;
  std::string table = RenderTable(r, options);
  EXPECT_NE(table.find("95 more distinct tuples elided"), std::string::npos);
}

TEST(CsvTest, RoundTripWithDuplicatesAndQuoting) {
  Relation r(RelationSchema("r", {{"name", Type::String()},
                                  {"score", Type::Real()}}));
  ASSERT_OK(r.Insert(Tuple({Value::Str("plain"), Value::Real(1.5)}), 2));
  ASSERT_OK(r.Insert(Tuple({Value::Str("with,comma"), Value::Real(2.0)})));
  ASSERT_OK(r.Insert(Tuple({Value::Str("with\"quote"), Value::Real(3.0)})));
  ASSERT_OK(r.Insert(Tuple({Value::Str("with\nnewline"), Value::Real(4.0)})));
  std::string csv = RelationToCsv(r);
  auto back = RelationFromCsv(csv, r.schema());
  ASSERT_OK(back);
  EXPECT_REL_EQ(*back, r);
}

TEST(CsvTest, ParsesAllDomains) {
  RelationSchema schema("t", {{"b", Type::Bool()},
                              {"i", Type::Int()},
                              {"d", Type::Decimal()},
                              {"r", Type::Real()},
                              {"s", Type::String()},
                              {"day", Type::Date()}});
  auto r = RelationFromCsv("b,i,d,r,s,day\ntrue,-3,9.99,2.5,hi,1994-02-14\n",
                           schema);
  ASSERT_OK(r);
  EXPECT_EQ(r->size(), 1u);
  const Tuple& t = r->begin()->first;
  EXPECT_TRUE(t.at(0).bool_value());
  EXPECT_EQ(t.at(1).int_value(), -3);
  EXPECT_EQ(t.at(2).decimal_scaled(), 99900);
  EXPECT_DOUBLE_EQ(t.at(3).real_value(), 2.5);
  EXPECT_EQ(t.at(4).string_value(), "hi");
  EXPECT_EQ(t.at(5).date_days(), 8810);
}

TEST(CsvTest, RejectsMalformedFields) {
  RelationSchema schema("t", {{"i", Type::Int()}});
  EXPECT_FALSE(RelationFromCsv("i\nabc\n", schema).ok());
  EXPECT_FALSE(RelationFromCsv("i\n1,2\n", schema).ok());
  EXPECT_FALSE(RelationFromCsv("i\n\"unterminated\n", schema).ok());
}

TEST(CsvTest, HeaderHandling) {
  RelationSchema schema("t", {{"i", Type::Int()}});
  auto with = RelationFromCsv("i\n5\n", schema, /*has_header=*/true);
  ASSERT_OK(with);
  EXPECT_EQ(with->size(), 1u);
  auto without = RelationFromCsv("5\n7\n", schema, /*has_header=*/false);
  ASSERT_OK(without);
  EXPECT_EQ(without->size(), 2u);
}

TEST(CsvTest, FileRoundTrip) {
  auto path = std::filesystem::temp_directory_path() /
              ("mra_csv_" + std::to_string(::getpid()) + ".csv");
  Relation r = IntRel("r", {{1, 2}, {3, 4}, {3, 4}}, 2);
  ASSERT_OK(SaveCsvFile(path.string(), r));
  auto back = LoadCsvFile(path.string(), r.schema());
  std::filesystem::remove(path);
  ASSERT_OK(back);
  EXPECT_REL_EQ(*back, r);
}

TEST(CsvTest, MissingFileIsIoError) {
  RelationSchema schema("t", {{"i", Type::Int()}});
  EXPECT_EQ(LoadCsvFile("/no/such/file.csv", schema).status().code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace util
}  // namespace mra
