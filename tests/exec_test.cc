// Tests for the physical executor: each operator against its definitional
// counterpart, plus randomized whole-plan agreement between
// exec::ExecutePlan and the reference evaluator.

#include <gtest/gtest.h>

#include <random>

#include "mra/algebra/ops.h"
#include "mra/catalog/catalog.h"
#include "mra/exec/operator.h"
#include "mra/exec/physical_planner.h"
#include "test_util.h"

namespace mra {
namespace exec {
namespace {

using ::mra::testing::IntRel;
using ::mra::testing::IntTuple;
using ::mra::testing::PaperBeerDb;
using ::mra::testing::RandomIntRelation;

TEST(ScanOpTest, StreamsAllEntries) {
  Relation r = IntRel("r", {{1}, {1}, {2}}, 1);
  ScanOp scan(&r);
  auto result = ExecuteToRelation(scan);
  ASSERT_OK(result);
  EXPECT_REL_EQ(*result, r);
}

TEST(ConstScanOpTest, OwnsItsRelation) {
  auto op = std::make_unique<ConstScanOp>(IntRel("r", {{5}}, 1));
  auto result = ExecuteToRelation(*op);
  ASSERT_OK(result);
  EXPECT_EQ(result->Multiplicity(IntTuple({5})), 1u);
}

TEST(FilterOpTest, MatchesDefinitionalSelect) {
  Relation r = IntRel("r", {{1}, {2}, {2}, {3}}, 1);
  ExprPtr pred = Ge(Attr(0), Lit(int64_t{2}));
  FilterOp op(pred, std::make_unique<ScanOp>(&r));
  auto result = ExecuteToRelation(op);
  ASSERT_OK(result);
  EXPECT_REL_EQ(*result, *ops::Select(pred, r));
}

TEST(ComputeOpTest, MatchesDefinitionalProject) {
  Relation r = IntRel("r", {{1, 10}, {2, 20}, {2, 20}}, 2);
  std::vector<ExprPtr> exprs = {Add(Attr(0), Attr(1))};
  auto schema = InferProjectionSchema(exprs, r.schema());
  ASSERT_OK(schema);
  ComputeOp op(exprs, *schema, std::make_unique<ScanOp>(&r));
  auto result = ExecuteToRelation(op);
  ASSERT_OK(result);
  EXPECT_REL_EQ(*result, *ops::Project(exprs, r));
}

TEST(DedupOpTest, StreamsFirstOccurrenceOnly) {
  Relation r = IntRel("r", {{1}, {1}, {2}}, 1);
  DedupOp op(std::make_unique<ScanOp>(&r));
  auto result = ExecuteToRelation(op);
  ASSERT_OK(result);
  EXPECT_REL_EQ(*result, *ops::Unique(r));
}

TEST(UnionAllOpTest, CountsAddAcrossStreams) {
  Relation a = IntRel("a", {{1}, {1}}, 1);
  Relation b = IntRel("b", {{1}, {2}}, 1);
  UnionAllOp op(std::make_unique<ScanOp>(&a), std::make_unique<ScanOp>(&b));
  auto result = ExecuteToRelation(op);
  ASSERT_OK(result);
  EXPECT_REL_EQ(*result, *ops::Union(a, b));
}

TEST(DifferenceOpTest, MatchesDefinitionalDifference) {
  Relation a = IntRel("a", {{1}, {1}, {1}, {2}}, 1);
  Relation b = IntRel("b", {{1}, {2}, {3}}, 1);
  DifferenceOp op(std::make_unique<ScanOp>(&a), std::make_unique<ScanOp>(&b));
  auto result = ExecuteToRelation(op);
  ASSERT_OK(result);
  EXPECT_REL_EQ(*result, *ops::Difference(a, b));
}

TEST(IntersectOpTest, MatchesDefinitionalIntersect) {
  Relation a = IntRel("a", {{1}, {1}, {2}}, 1);
  Relation b = IntRel("b", {{1}, {3}}, 1);
  IntersectOp op(std::make_unique<ScanOp>(&a), std::make_unique<ScanOp>(&b));
  auto result = ExecuteToRelation(op);
  ASSERT_OK(result);
  EXPECT_REL_EQ(*result, *ops::Intersect(a, b));
}

TEST(NestedLoopJoinOpTest, ProductWhenNoCondition) {
  Relation a = IntRel("a", {{1}, {1}}, 1);
  Relation b = IntRel("b", {{7}, {8}}, 1);
  NestedLoopJoinOp op(nullptr, std::make_unique<ScanOp>(&a),
                      std::make_unique<ScanOp>(&b));
  auto result = ExecuteToRelation(op);
  ASSERT_OK(result);
  EXPECT_REL_EQ(*result, *ops::Product(a, b));
  EXPECT_EQ(op.name(), "Product");
}

TEST(NestedLoopJoinOpTest, ThetaJoin) {
  Relation a = IntRel("a", {{1}, {2}, {3}}, 1);
  Relation b = IntRel("b", {{2}, {3}}, 1);
  ExprPtr cond = Lt(Attr(0), Attr(1));
  NestedLoopJoinOp op(cond, std::make_unique<ScanOp>(&a),
                      std::make_unique<ScanOp>(&b));
  auto result = ExecuteToRelation(op);
  ASSERT_OK(result);
  EXPECT_REL_EQ(*result, *ops::Join(cond, a, b));
}

TEST(HashJoinOpTest, EquiJoinMatchesDefinitional) {
  Relation a = IntRel("a", {{1, 100}, {2, 200}, {2, 201}}, 2);
  Relation b = IntRel("b", {{2, 7}, {3, 8}, {2, 9}}, 2);
  ExprPtr cond = Eq(Attr(0), Attr(2));
  HashJoinOp op({0}, {0}, nullptr, std::make_unique<ScanOp>(&a),
                std::make_unique<ScanOp>(&b));
  auto result = ExecuteToRelation(op);
  ASSERT_OK(result);
  EXPECT_REL_EQ(*result, *ops::Join(cond, a, b));
}

TEST(HashJoinOpTest, ResidualConditionApplied) {
  Relation a = IntRel("a", {{1, 5}, {1, 50}}, 2);
  Relation b = IntRel("b", {{1, 10}}, 2);
  // Equi on col1 = col3, residual col2 < col4.
  ExprPtr full = And(Eq(Attr(0), Attr(2)), Lt(Attr(1), Attr(3)));
  HashJoinOp op({0}, {0}, Lt(Attr(1), Attr(3)), std::make_unique<ScanOp>(&a),
                std::make_unique<ScanOp>(&b));
  auto result = ExecuteToRelation(op);
  ASSERT_OK(result);
  EXPECT_REL_EQ(*result, *ops::Join(full, a, b));
  EXPECT_EQ(result->size(), 1u);
}

TEST(HashGroupByOpTest, MatchesDefinitionalGroupBy) {
  Relation r = IntRel("r", {{1, 10}, {1, 20}, {2, 30}}, 2);
  std::vector<AggSpec> aggs = {{AggKind::kSum, 1, "s"},
                               {AggKind::kCnt, 0, "n"}};
  auto schema = ops::GroupBySchema({0}, aggs, r.schema());
  ASSERT_OK(schema);
  HashGroupByOp op({0}, aggs, *schema, std::make_unique<ScanOp>(&r));
  auto result = ExecuteToRelation(op);
  ASSERT_OK(result);
  EXPECT_REL_EQ(*result, *ops::GroupBy({0}, aggs, r));
}

TEST(HashGroupByOpTest, GlobalAggregateOverEmptyStream) {
  Relation empty(RelationSchema("e", {{"x", Type::Int()}}));
  std::vector<AggSpec> aggs = {{AggKind::kCnt, 0, "n"}};
  auto schema = ops::GroupBySchema({}, aggs, empty.schema());
  ASSERT_OK(schema);
  HashGroupByOp op({}, aggs, *schema, std::make_unique<ScanOp>(&empty));
  auto result = ExecuteToRelation(op);
  ASSERT_OK(result);
  EXPECT_EQ(result->Multiplicity(IntTuple({0})), 1u);
}

TEST(ExtractEquiJoinKeysTest, FindsCrossSideEqualities) {
  // Schema: 2 left ints + 2 right ints.
  RelationSchema combined("j", {{"a", Type::Int()},
                                {"b", Type::Int()},
                                {"c", Type::Int()},
                                {"d", Type::Int()}});
  ExprPtr cond = And(Eq(Attr(0), Attr(2)),
                     And(Eq(Attr(3), Attr(1)), Gt(Attr(1), Lit(int64_t{5}))));
  std::vector<size_t> lk, rk;
  ExprPtr residual;
  EXPECT_TRUE(ExtractEquiJoinKeys(cond, combined, 2, &lk, &rk, &residual));
  EXPECT_EQ(lk, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(rk, (std::vector<size_t>{0, 1}));
  ASSERT_NE(residual, nullptr);
  EXPECT_EQ(residual->ToString(), "(%2 > 5)");
}

TEST(ExtractEquiJoinKeysTest, RejectsSameSideAndMixedDomain) {
  RelationSchema combined("j", {{"a", Type::Int()},
                                {"b", Type::Int()},
                                {"c", Type::Real()}});
  // Same-side equality: not a join key.
  std::vector<size_t> lk, rk;
  ExprPtr residual;
  EXPECT_FALSE(ExtractEquiJoinKeys(Eq(Attr(0), Attr(1)), combined, 2, &lk,
                                   &rk, &residual));
  ASSERT_NE(residual, nullptr);
  // Cross-side but int vs real: promotion-based equality cannot be hashed.
  EXPECT_FALSE(ExtractEquiJoinKeys(Eq(Attr(0), Attr(2)), combined, 2, &lk,
                                   &rk, &residual));
}

TEST(PhysicalPlannerTest, LowersJoinToHashJoin) {
  Catalog catalog;
  PaperBeerDb db;
  ASSERT_OK(catalog.CreateRelation(db.beer.schema()));
  ASSERT_OK(catalog.SetRelation("beer", db.beer));
  ASSERT_OK(catalog.CreateRelation(db.brewery.schema()));
  ASSERT_OK(catalog.SetRelation("brewery", db.brewery));

  PlanPtr beer = Plan::Scan("beer", db.beer.schema());
  PlanPtr brewery = Plan::Scan("brewery", db.brewery.schema());
  auto join = Plan::Join(Eq(Attr(1), Attr(3)), beer, brewery);
  ASSERT_OK(join);
  auto op = LowerPlan(*join, catalog);
  ASSERT_OK(op);
  EXPECT_EQ((*op)->name(), "HashJoin");

  auto theta = Plan::Join(Lt(Attr(2), Attr(2)), beer, brewery);
  ASSERT_OK(theta);
  auto op2 = LowerPlan(*theta, catalog);
  ASSERT_OK(op2);
  EXPECT_EQ((*op2)->name(), "NestedLoopJoin");
}

TEST(PhysicalPlannerTest, PhysicalToStringShowsTree) {
  Catalog catalog;
  PaperBeerDb db;
  ASSERT_OK(catalog.CreateRelation(db.beer.schema()));
  ASSERT_OK(catalog.SetRelation("beer", db.beer));
  PlanPtr beer = Plan::Scan("beer", db.beer.schema());
  auto sel = Plan::Select(Eq(Attr(1), Lit("Guineken")), beer);
  ASSERT_OK(sel);
  auto op = LowerPlan(*sel, catalog);
  ASSERT_OK(op);
  std::string rendered = (*op)->ToString();
  EXPECT_NE(rendered.find("Filter"), std::string::npos);
  EXPECT_NE(rendered.find("Scan"), std::string::npos);
}

class ExecAgreementTest : public ::testing::TestWithParam<uint64_t> {};

// Random plans over random catalogs: the physical executor must agree with
// the definitional evaluator exactly.
TEST_P(ExecAgreementTest, PhysicalMatchesReference) {
  std::mt19937_64 rng(GetParam());
  Catalog catalog;
  Relation r = RandomIntRelation(rng, 2, 30, 8, 3);
  Relation s = RandomIntRelation(rng, 2, 30, 8, 3);
  RelationSchema rs = r.schema();
  rs.set_name("r");
  RelationSchema ss = s.schema();
  ss.set_name("s");
  ASSERT_OK(catalog.CreateRelation(rs));
  ASSERT_OK(catalog.SetRelation("r", r));
  ASSERT_OK(catalog.CreateRelation(ss));
  ASSERT_OK(catalog.SetRelation("s", s));

  PlanPtr scan_r = Plan::Scan("r", rs);
  PlanPtr scan_s = Plan::Scan("s", ss);

  std::vector<PlanPtr> plans;
  auto add = [&plans](Result<PlanPtr> p) {
    ASSERT_OK(p);
    plans.push_back(*p);
  };
  add(Plan::Union(scan_r, scan_s));
  add(Plan::Difference(scan_r, scan_s));
  add(Plan::Intersect(scan_r, scan_s));
  add(Plan::Join(Eq(Attr(0), Attr(2)), scan_r, scan_s));
  add(Plan::Join(And(Eq(Attr(0), Attr(2)), Lt(Attr(1), Attr(3))), scan_r,
                 scan_s));
  add(Plan::Select(Gt(Attr(1), Lit(int64_t{3})), scan_r));
  add(Plan::Unique(Plan::ProjectIndexes({0}, scan_r).value()));
  add(Plan::GroupBy({0}, {{AggKind::kSum, 1, ""}, {AggKind::kCnt, 0, ""}},
                    scan_r));
  // A deeper composite: Γ(δ(σ(join))).
  auto join = Plan::Join(Eq(Attr(1), Attr(2)), scan_r, scan_s);
  ASSERT_OK(join);
  auto sel = Plan::Select(Le(Attr(0), Lit(int64_t{6})), *join);
  ASSERT_OK(sel);
  auto uniq = Plan::Unique(*sel);
  ASSERT_OK(uniq);
  add(Plan::GroupBy({0}, {{AggKind::kMax, 3, ""}}, *uniq));

  for (const PlanPtr& plan : plans) {
    auto reference = EvaluatePlan(*plan, catalog);
    auto physical = ExecutePlan(plan, catalog);
    ASSERT_OK(reference);
    ASSERT_OK(physical);
    EXPECT_REL_EQ(*physical, *reference) << plan->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecAgreementTest,
                         ::testing::Range(uint64_t{1}, uint64_t{16}));

// --- Operator lifecycle contract (enforced by the base wrappers). ---

TEST(OperatorContractTest, CloseWithoutOpenIsANoOp) {
  Relation r = IntRel("r", {{1}}, 1);
  ScanOp scan(&r);
  scan.Close();  // Never opened: must not crash or touch resources.
  scan.Close();
}

TEST(OperatorContractTest, DoubleCloseIsSafe) {
  Relation a = IntRel("a", {{1}, {2}}, 1);
  Relation b = IntRel("b", {{2}, {3}}, 1);
  // A materialising operator: the second Close must not double-free.
  IntersectOp op(std::make_unique<ScanOp>(&a), std::make_unique<ScanOp>(&b));
  ASSERT_OK(op.Open());
  op.Close();
  op.Close();
  op.Close();
}

TEST(OperatorContractTest, ReopenAfterCloseRestartsTheStream) {
  Relation r = IntRel("r", {{1}, {2}}, 1);
  ScanOp scan(&r);
  auto first = ExecuteToRelation(scan);
  ASSERT_OK(first);
  auto second = ExecuteToRelation(scan);
  ASSERT_OK(second);
  EXPECT_REL_EQ(*second, *first);
  // Metrics reset on reopen: counts reflect the second run only.
  EXPECT_EQ(scan.metrics().weighted_rows, r.size());
}

TEST(OperatorContractTest, CloseMidStreamReleasesCleanly) {
  Relation a = IntRel("a", {{1}, {2}, {3}}, 1);
  Relation b = IntRel("b", {{1}, {2}, {3}}, 1);
  HashJoinOp op({0}, {0}, nullptr, std::make_unique<ScanOp>(&a),
                std::make_unique<ScanOp>(&b));
  ASSERT_OK(op.Open());
  auto row = op.Next();
  ASSERT_OK(row);
  EXPECT_TRUE(row->has_value());
  op.Close();  // Build table freed with the stream half-drained.
  op.Close();
  EXPECT_EQ(op.metrics().peak_hash_entries, 3u);
}

TEST(OperatorContractTest, EstimateAnnotationDefaultsToUnset) {
  Relation r = IntRel("r", {{1}}, 1);
  ScanOp scan(&r);
  EXPECT_LT(scan.estimated_rows(), 0.0);
  scan.set_estimated_rows(17.0);
  EXPECT_DOUBLE_EQ(scan.estimated_rows(), 17.0);
}

}  // namespace
}  // namespace exec
}  // namespace mra
