// Tests for binary serialization and the write-ahead log, including
// failure injection (torn tails, corrupt frames).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <random>

#include "mra/catalog/catalog.h"
#include "mra/storage/serializer.h"
#include "mra/storage/wal.h"
#include "test_util.h"

namespace mra {
namespace storage {
namespace {

using ::mra::testing::IntRel;
using ::mra::testing::PaperBeerDb;

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("mra_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

TEST(SerializerTest, PrimitivesRoundTrip) {
  Encoder enc;
  enc.PutU8(200);
  enc.PutU32(0xdeadbeef);
  enc.PutU64(0x0123456789abcdefULL);
  enc.PutI64(-42);
  enc.PutDouble(3.25);
  enc.PutString("multi-set");
  Decoder dec(enc.buffer());
  EXPECT_EQ(*dec.GetU8(), 200);
  EXPECT_EQ(*dec.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(*dec.GetU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(*dec.GetI64(), -42);
  EXPECT_DOUBLE_EQ(*dec.GetDouble(), 3.25);
  EXPECT_EQ(*dec.GetString(), "multi-set");
  EXPECT_TRUE(dec.AtEnd());
}

TEST(SerializerTest, AllValueKindsRoundTrip) {
  std::vector<Value> values = {
      Value::Bool(true),     Value::Int(-7),
      Value::DecimalScaled(-123456),            Value::Real(2.5),
      Value::Str("it's"),    Value::Date(8810),
  };
  Encoder enc;
  for (const Value& v : values) enc.PutValue(v);
  Decoder dec(enc.buffer());
  for (const Value& v : values) {
    auto decoded = dec.GetValue();
    ASSERT_OK(decoded);
    EXPECT_EQ(decoded->kind(), v.kind());
    EXPECT_TRUE(decoded->Equals(v));
  }
}

TEST(SerializerTest, RelationRoundTrip) {
  PaperBeerDb db;
  Encoder enc;
  enc.PutRelation(db.beer);
  Decoder dec(enc.buffer());
  auto decoded = dec.GetRelation();
  ASSERT_OK(decoded);
  EXPECT_REL_EQ(*decoded, db.beer);
  EXPECT_EQ(decoded->schema().name(), "beer");
  EXPECT_EQ(decoded->schema().attribute(2).name, "alcperc");
}

TEST(SerializerTest, TruncationDetected) {
  Encoder enc;
  enc.PutRelation(IntRel("r", {{1}, {2}}, 1));
  std::string data = enc.buffer();
  for (size_t cut : {data.size() - 1, data.size() / 2, size_t{1}}) {
    Decoder dec(std::string_view(data.data(), cut));
    EXPECT_EQ(dec.GetRelation().status().code(), StatusCode::kCorruption);
  }
}

TEST(SerializerTest, CorruptKindTagRejected) {
  Encoder enc;
  enc.PutValue(Value::Int(1));
  std::string data = enc.buffer();
  data[0] = 99;  // invalid TypeKind
  Decoder dec(data);
  EXPECT_EQ(dec.GetValue().status().code(), StatusCode::kCorruption);
}

TEST(SerializerTest, CatalogRoundTrip) {
  PaperBeerDb db;
  Catalog catalog;
  ASSERT_OK(catalog.CreateRelation(db.beer.schema()));
  ASSERT_OK(catalog.SetRelation("beer", db.beer));
  ASSERT_OK(catalog.CreateRelation(db.brewery.schema()));
  ASSERT_OK(catalog.SetRelation("brewery", db.brewery));
  catalog.set_logical_time(17);

  auto decoded = DecodeCatalog(EncodeCatalog(catalog));
  ASSERT_OK(decoded);
  EXPECT_EQ(decoded->logical_time(), 17u);
  EXPECT_EQ(decoded->relation_count(), 2u);
  EXPECT_REL_EQ(*decoded->GetRelation("beer").value(), db.beer);
  EXPECT_REL_EQ(*decoded->GetRelation("brewery").value(), db.brewery);
}

TEST(Crc32Test, KnownVectorsAndSensitivity) {
  // Standard test vector: CRC32("123456789") = 0xCBF43926.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_NE(Crc32("abc"), Crc32("abd"));
}

TEST(WalTest, AppendAndReadBack) {
  TempDir dir;
  std::string path = dir.file("wal.log");
  {
    auto writer = WalWriter::Open(path);
    ASSERT_OK(writer);
    ASSERT_OK(writer->Append("first", false));
    ASSERT_OK(writer->Append("second", true));
  }
  auto read = ReadWal(path);
  ASSERT_OK(read);
  EXPECT_FALSE(read->torn_tail);
  ASSERT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->records[0], "first");
  EXPECT_EQ(read->records[1], "second");
}

TEST(WalTest, MissingFileIsEmptyHistory) {
  auto read = ReadWal("/nonexistent/dir/wal.log");
  ASSERT_OK(read);
  EXPECT_TRUE(read->records.empty());
}

TEST(WalTest, AppendsAccumulateAcrossReopens) {
  TempDir dir;
  std::string path = dir.file("wal.log");
  for (int i = 0; i < 3; ++i) {
    auto writer = WalWriter::Open(path);
    ASSERT_OK(writer);
    ASSERT_OK(writer->Append("rec" + std::to_string(i), false));
  }
  auto read = ReadWal(path);
  ASSERT_OK(read);
  EXPECT_EQ(read->records.size(), 3u);
}

TEST(WalTest, TornTailDiscarded) {
  TempDir dir;
  std::string path = dir.file("wal.log");
  {
    auto writer = WalWriter::Open(path);
    ASSERT_OK(writer);
    ASSERT_OK(writer->Append("keep", false));
    ASSERT_OK(writer->Append("lost-in-crash", false));
  }
  // Chop bytes off the tail (simulated crash mid-write).
  auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 5);
  auto read = ReadWal(path);
  ASSERT_OK(read);
  EXPECT_TRUE(read->torn_tail);
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0], "keep");
}

TEST(WalTest, MidFileCorruptionIsError) {
  TempDir dir;
  std::string path = dir.file("wal.log");
  {
    auto writer = WalWriter::Open(path);
    ASSERT_OK(writer);
    ASSERT_OK(writer->Append("aaaa", false));
    ASSERT_OK(writer->Append("bbbb", false));
  }
  // Flip a payload byte of the FIRST record: its CRC fails and it is not
  // the final record, so this is corruption, not a torn tail.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 12, SEEK_SET);  // first payload byte
  std::fputc('X', f);
  std::fclose(f);
  EXPECT_EQ(ReadWal(path).status().code(), StatusCode::kCorruption);
}

TEST(WalTest, SalvageKeepsIntactPrefixOfCorruptLog) {
  TempDir dir;
  std::string path = dir.file("wal.log");
  {
    auto writer = WalWriter::Open(path);
    ASSERT_OK(writer);
    ASSERT_OK(writer->Append("good-1", false));
    ASSERT_OK(writer->Append("good-2", false));
    ASSERT_OK(writer->Append("corrupted", false));
    ASSERT_OK(writer->Append("collateral", false));
  }
  // Flip a payload byte of the THIRD record: mid-log corruption that also
  // costs the structurally intact record behind it.
  uint64_t third_off = 2 * (12 + 6);
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, static_cast<long>(third_off + 12), SEEK_SET);
  std::fputc('X', f);
  std::fclose(f);

  ASSERT_EQ(ReadWal(path).status().code(), StatusCode::kCorruption);
  auto read = ReadWal(path, Salvage::kPrefix);
  ASSERT_OK(read);
  EXPECT_TRUE(read->salvaged);
  EXPECT_FALSE(read->torn_tail);
  ASSERT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->records[0], "good-1");
  EXPECT_EQ(read->records[1], "good-2");
  EXPECT_EQ(read->valid_bytes, third_off);
  // The corrupt frame plus the intact-but-unreachable one behind it.
  EXPECT_EQ(read->discarded_records, 2u);
}

TEST(WalTest, SalvageOfCleanLogIsPassThrough) {
  TempDir dir;
  std::string path = dir.file("wal.log");
  {
    auto writer = WalWriter::Open(path);
    ASSERT_OK(writer);
    ASSERT_OK(writer->Append("only", false));
  }
  auto read = ReadWal(path, Salvage::kPrefix);
  ASSERT_OK(read);
  EXPECT_FALSE(read->salvaged);
  EXPECT_EQ(read->discarded_records, 0u);
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->valid_bytes, 12u + 4u);
}

TEST(WalTest, TruncateToOffsetMakesTornLogAppendable) {
  TempDir dir;
  std::string path = dir.file("wal.log");
  {
    auto writer = WalWriter::Open(path);
    ASSERT_OK(writer);
    ASSERT_OK(writer->Append("keep", false));
    ASSERT_OK(writer->Append("torn-away", false));
  }
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) - 3);
  auto read = ReadWal(path);
  ASSERT_OK(read);
  ASSERT_TRUE(read->torn_tail);
  ASSERT_OK(TruncateWalToOffset(path, read->valid_bytes));
  EXPECT_EQ(std::filesystem::file_size(path), read->valid_bytes);
  // Appending after the truncation yields a clean two-record log — the
  // fresh record lands where the torn frame used to start.
  {
    auto writer = WalWriter::Open(path);
    ASSERT_OK(writer);
    ASSERT_OK(writer->Append("after-recovery", false));
  }
  auto reread = ReadWal(path);
  ASSERT_OK(reread);
  EXPECT_FALSE(reread->torn_tail);
  ASSERT_EQ(reread->records.size(), 2u);
  EXPECT_EQ(reread->records[0], "keep");
  EXPECT_EQ(reread->records[1], "after-recovery");
}

TEST(WalTest, BadMagicIsError) {
  TempDir dir;
  std::string path = dir.file("wal.log");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("GARBAGE-GARBAGE!", 1, 16, f);
  std::fclose(f);
  EXPECT_EQ(ReadWal(path).status().code(), StatusCode::kCorruption);
}

TEST(WalTest, TruncateEmptiesTheLog) {
  TempDir dir;
  std::string path = dir.file("wal.log");
  {
    auto writer = WalWriter::Open(path);
    ASSERT_OK(writer);
    ASSERT_OK(writer->Append("data", false));
  }
  ASSERT_OK(TruncateWal(path));
  auto read = ReadWal(path);
  ASSERT_OK(read);
  EXPECT_TRUE(read->records.empty());
  // Truncating a missing log is fine.
  EXPECT_OK(TruncateWal(dir.file("never-existed.log")));
}

// Randomized round-trips: arbitrary relations over mixed domains survive
// encode → decode bit-for-bit.
class SerializerFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializerFuzzTest, RandomRelationRoundTrip) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int> arity_dist(1, 5);
  std::uniform_int_distribution<int> kind_dist(0, 5);
  std::uniform_int_distribution<int64_t> int_dist(-1000000, 1000000);
  std::uniform_int_distribution<int> len_dist(0, 12);
  std::uniform_int_distribution<int> rows_dist(0, 40);
  std::uniform_int_distribution<uint64_t> count_dist(1, 1000);

  int arity = arity_dist(rng);
  std::vector<Attribute> attrs;
  std::vector<TypeKind> kinds;
  for (int i = 0; i < arity; ++i) {
    TypeKind kind = static_cast<TypeKind>(kind_dist(rng));
    kinds.push_back(kind);
    attrs.push_back({"a" + std::to_string(i), Type(kind)});
  }
  Relation rel(RelationSchema("fuzz", std::move(attrs)));
  auto random_value = [&](TypeKind kind) {
    switch (kind) {
      case TypeKind::kBool:
        return Value::Bool(rng() % 2 == 0);
      case TypeKind::kInt:
        return Value::Int(int_dist(rng));
      case TypeKind::kDecimal:
        return Value::DecimalScaled(int_dist(rng));
      case TypeKind::kReal:
        return Value::Real(static_cast<double>(int_dist(rng)) / 7.0);
      case TypeKind::kString: {
        std::string s;
        int len = len_dist(rng);
        for (int i = 0; i < len; ++i) {
          s.push_back(static_cast<char>('!' + rng() % 90));
        }
        return Value::Str(std::move(s));
      }
      case TypeKind::kDate:
        return Value::Date(static_cast<int32_t>(int_dist(rng) % 100000));
    }
    return Value();
  };
  int rows = rows_dist(rng);
  for (int r = 0; r < rows; ++r) {
    std::vector<Value> values;
    for (TypeKind kind : kinds) values.push_back(random_value(kind));
    rel.InsertUnchecked(Tuple(std::move(values)), count_dist(rng));
  }

  Encoder enc;
  enc.PutRelation(rel);
  Decoder dec(enc.buffer());
  auto back = dec.GetRelation();
  ASSERT_OK(back);
  EXPECT_REL_EQ(*back, rel);
  EXPECT_TRUE(dec.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializerFuzzTest,
                         ::testing::Range(uint64_t{1}, uint64_t{26}));

}  // namespace
}  // namespace storage
}  // namespace mra
