// Tests for the PRISMA-style parallel operators: every parallel operator
// must produce exactly the multi-set its sequential counterpart defines,
// for any thread count.

#include "mra/parallel/parallel.h"

#include <gtest/gtest.h>

#include <random>

#include "mra/algebra/ops.h"
#include "test_util.h"

namespace mra {
namespace parallel {
namespace {

using ::mra::testing::IntRel;
using ::mra::testing::IntTuple;
using ::mra::testing::RandomIntRelation;

TEST(PartitionTest, HashPartitionIsDisjointAndComplete) {
  std::mt19937_64 rng(3);
  Relation input = RandomIntRelation(rng, 2, 200, 50, 4);
  std::vector<Relation> fragments = HashPartition(input, {0}, 4);
  ASSERT_EQ(fragments.size(), 4u);
  // Recombining with ⊎ restores the input exactly.
  Relation combined(input.schema());
  uint64_t total = 0;
  for (const Relation& f : fragments) {
    total += f.size();
    for (const auto& [tuple, count] : f) combined.InsertUnchecked(tuple, count);
  }
  EXPECT_EQ(total, input.size());
  EXPECT_REL_EQ(combined, input);
  // Tuples with one key value land in one fragment.
  for (const auto& [tuple, count] : input) {
    int owners = 0;
    for (const Relation& f : fragments) owners += f.Contains(tuple) ? 1 : 0;
    EXPECT_EQ(owners, 1) << tuple.ToString();
  }
}

TEST(PartitionTest, HashPartitionKeepsEqualKeysTogether) {
  Relation input = IntRel("r", {{1, 10}, {1, 20}, {1, 30}, {2, 40}}, 2);
  std::vector<Relation> fragments = HashPartition(input, {0}, 3);
  // All key-1 tuples share one fragment.
  int fragment_of_key1 = -1;
  for (size_t i = 0; i < fragments.size(); ++i) {
    if (fragments[i].Contains(IntTuple({1, 10}))) {
      fragment_of_key1 = static_cast<int>(i);
    }
  }
  ASSERT_GE(fragment_of_key1, 0);
  EXPECT_TRUE(fragments[fragment_of_key1].Contains(IntTuple({1, 20})));
  EXPECT_TRUE(fragments[fragment_of_key1].Contains(IntTuple({1, 30})));
}

TEST(PartitionTest, RoundRobinBalances) {
  std::mt19937_64 rng(5);
  Relation input = RandomIntRelation(rng, 1, 100, 1000, 1);
  std::vector<Relation> fragments = RoundRobinPartition(input, 4);
  size_t total = 0;
  for (const Relation& f : fragments) {
    total += f.distinct_size();
    EXPECT_LE(f.distinct_size(), input.distinct_size() / 4 + 1);
  }
  EXPECT_EQ(total, input.distinct_size());
}

class ParallelAgreementTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {
 protected:
  uint64_t seed() const { return std::get<0>(GetParam()); }
  ParallelOptions Opts() const {
    ParallelOptions o;
    o.num_threads = std::get<1>(GetParam());
    return o;
  }
};

TEST_P(ParallelAgreementTest, SelectMatchesSequential) {
  std::mt19937_64 rng(seed());
  Relation input = RandomIntRelation(rng, 2, 300, 40, 4);
  ExprPtr pred = Lt(Attr(0), Lit(int64_t{20}));
  auto sequential = ops::Select(pred, input);
  auto par = ParallelSelect(pred, input, Opts());
  ASSERT_OK(sequential);
  ASSERT_OK(par);
  EXPECT_REL_EQ(*par, *sequential);
}

TEST_P(ParallelAgreementTest, ProjectMatchesSequential) {
  std::mt19937_64 rng(seed());
  Relation input = RandomIntRelation(rng, 2, 300, 40, 4);
  std::vector<ExprPtr> exprs = {Add(Attr(0), Attr(1))};
  auto sequential = ops::Project(exprs, input);
  auto par = ParallelProject(exprs, input, Opts());
  ASSERT_OK(sequential);
  ASSERT_OK(par);
  EXPECT_REL_EQ(*par, *sequential);
}

TEST_P(ParallelAgreementTest, EquiJoinMatchesSequential) {
  std::mt19937_64 rng(seed());
  Relation left = RandomIntRelation(rng, 2, 200, 30, 3);
  Relation right = RandomIntRelation(rng, 2, 200, 30, 3);
  ExprPtr condition = Eq(Attr(0), Attr(2));
  auto sequential = ops::Join(condition, left, right);
  auto par = ParallelEquiJoin({0}, {0}, nullptr, left, right, Opts());
  ASSERT_OK(sequential);
  ASSERT_OK(par);
  EXPECT_REL_EQ(*par, *sequential);
}

TEST_P(ParallelAgreementTest, EquiJoinWithResidualMatchesSequential) {
  std::mt19937_64 rng(seed());
  Relation left = RandomIntRelation(rng, 2, 200, 30, 3);
  Relation right = RandomIntRelation(rng, 2, 200, 30, 3);
  ExprPtr residual = Lt(Attr(1), Attr(3));
  ExprPtr condition = And(Eq(Attr(0), Attr(2)), residual);
  auto sequential = ops::Join(condition, left, right);
  auto par = ParallelEquiJoin({0}, {0}, residual, left, right, Opts());
  ASSERT_OK(sequential);
  ASSERT_OK(par);
  EXPECT_REL_EQ(*par, *sequential);
}

TEST_P(ParallelAgreementTest, KeyedGroupByMatchesSequential) {
  std::mt19937_64 rng(seed());
  Relation input = RandomIntRelation(rng, 2, 300, 20, 5);
  std::vector<AggSpec> aggs = {{AggKind::kSum, 1, "s"},
                               {AggKind::kCnt, 0, "n"},
                               {AggKind::kMax, 1, "m"}};
  if (input.empty()) return;  // keyed groupby over empty is trivially empty
  auto sequential = ops::GroupBy({0}, aggs, input);
  auto par = ParallelGroupBy({0}, aggs, input, Opts());
  ASSERT_OK(sequential);
  ASSERT_OK(par);
  EXPECT_REL_EQ(*par, *sequential);
}

TEST_P(ParallelAgreementTest, GlobalGroupByMatchesSequential) {
  std::mt19937_64 rng(seed());
  Relation input = RandomIntRelation(rng, 2, 300, 20, 5);
  std::vector<AggSpec> aggs = {{AggKind::kSum, 1, "s"},
                               {AggKind::kCnt, 0, "n"},
                               {AggKind::kMin, 0, "lo"}};
  if (input.empty()) return;  // MIN over empty is the partial-function case
  auto sequential = ops::GroupBy({}, aggs, input);
  auto par = ParallelGroupBy({}, aggs, input, Opts());
  ASSERT_OK(sequential);
  ASSERT_OK(par);
  EXPECT_REL_EQ(*par, *sequential);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndThreads, ParallelAgreementTest,
    ::testing::Combine(::testing::Values(uint64_t{1}, uint64_t{2},
                                         uint64_t{3}, uint64_t{4}),
                       ::testing::Values(size_t{1}, size_t{2}, size_t{4},
                                         size_t{7})));

TEST(ParallelErrorsTest, JoinValidation) {
  Relation a = IntRel("a", {{1, 2}}, 2);
  Relation b = IntRel("b", {{1, 2}}, 2);
  EXPECT_EQ(ParallelEquiJoin({}, {}, nullptr, a, b).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParallelEquiJoin({0, 1}, {0}, nullptr, a, b).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParallelEquiJoin({5}, {0}, nullptr, a, b).status().code(),
            StatusCode::kInvalidArgument);
  Relation s(RelationSchema("s", {{"x", Type::String()}, {"y", Type::Int()}}));
  EXPECT_EQ(ParallelEquiJoin({0}, {0}, nullptr, a, s).status().code(),
            StatusCode::kTypeError);
}

TEST(ParallelErrorsTest, WorkerErrorsPropagate) {
  // Division by zero inside a parallel projection surfaces as EvalError.
  Relation input = IntRel("r", {{1, 0}, {2, 1}}, 2);
  std::vector<ExprPtr> exprs = {Div(Attr(0), Attr(1))};
  ParallelOptions options;
  options.num_threads = 2;
  EXPECT_EQ(ParallelProject(exprs, input, options).status().code(),
            StatusCode::kEvalError);
}

TEST(ParallelErrorsTest, GlobalAvgOverEmptyIsUndefined) {
  Relation empty = IntRel("e", {}, 1);
  EXPECT_EQ(ParallelGroupBy({}, {{AggKind::kAvg, 0, ""}}, empty)
                .status()
                .code(),
            StatusCode::kUndefined);
  // CNT over empty still yields the single zero row.
  auto cnt = ParallelGroupBy({}, {{AggKind::kCnt, 0, ""}}, empty);
  ASSERT_OK(cnt);
  EXPECT_EQ(cnt->Multiplicity(IntTuple({0})), 1u);
}

}  // namespace
}  // namespace parallel
}  // namespace mra
