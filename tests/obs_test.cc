// Tests for the observability layer: metrics registry (counters, gauges,
// histograms, snapshot exports), trace spans, and the per-operator metrics
// collected by the PhysicalOperator wrappers.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "mra/exec/operator.h"
#include "mra/obs/metrics.h"
#include "mra/obs/op_metrics.h"
#include "mra/obs/trace.h"
#include "test_util.h"

namespace mra {
namespace obs {
namespace {

using ::mra::testing::IntRel;

TEST(CounterTest, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, MovesBothWays) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
}

TEST(HistogramTest, BucketBoundariesAreExponential) {
  EXPECT_EQ(Histogram::BucketUpperBound(0), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 2u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1024u);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kNumBuckets - 1),
            UINT64_MAX);
}

TEST(HistogramTest, ObservationsLandInTheRightBucket) {
  Histogram h;
  h.Observe(0);    // ≤ 1µs → bucket 0
  h.Observe(1);    // ≤ 1µs → bucket 0
  h.Observe(2);    // (1, 2] → bucket 1
  h.Observe(3);    // (2, 4] → bucket 2
  h.Observe(100);  // (64, 128] → bucket 7
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum_micros(), 106u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(7), 1u);
}

TEST(MetricsRegistryTest, ReturnsStablePointersPerName) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x");
  Counter* b = reg.GetCounter("x");
  Counter* c = reg.GetCounter("y");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      Counter* c = reg.GetCounter("shared");
      for (int i = 0; i < kIncrements; ++i) c->Inc();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(reg.GetCounter("shared")->value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsRegistryTest, SnapshotExportsAreDeterministic) {
  MetricsRegistry reg;
  reg.GetCounter("b.count")->Inc(2);
  reg.GetCounter("a.count")->Inc(1);
  reg.GetGauge("depth")->Set(3);
  reg.GetHistogram("lat_us")->Observe(5);

  std::string json1 = reg.RenderJson();
  std::string json2 = reg.RenderJson();
  EXPECT_EQ(json1, json2);
  // Keys are sorted, so a.count precedes b.count.
  EXPECT_LT(json1.find("\"a.count\":1"), json1.find("\"b.count\":2"));
  EXPECT_NE(json1.find("\"gauges\":{\"depth\":3}"), std::string::npos);
  EXPECT_NE(json1.find("\"lat_us\":{\"count\":1,\"sum_us\":5"),
            std::string::npos);

  std::string text = reg.RenderText();
  EXPECT_NE(text.find("a.count 1"), std::string::npos);
  EXPECT_NE(text.find("lat_us count=1 sum_us=5"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsRegistrations) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("n");
  c->Inc(7);
  reg.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(reg.GetCounter("n"), c);
  EXPECT_NE(reg.RenderJson().find("\"n\":0"), std::string::npos);
}

TEST(TracerTest, RecordsNestedSpansWithDepth) {
  Tracer& tracer = Tracer::Global();
  tracer.SetEnabled(true);
  tracer.Clear();
  {
    ScopedSpan outer("outer");
    ScopedSpan inner("inner");
  }
  tracer.SetEnabled(false);

  std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  // Events sort by start time: outer starts first at depth 0.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_GE(events[0].duration_us, events[1].duration_us);

  std::string rendered = tracer.Render();
  EXPECT_NE(rendered.find("outer"), std::string::npos);
  EXPECT_NE(rendered.find("inner"), std::string::npos);
  tracer.Clear();
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.SetEnabled(false);
  tracer.Clear();
  { ScopedSpan span("ghost"); }
  EXPECT_TRUE(tracer.Events().empty());
}

TEST(ExecTimingTest, ScopedToggleRestoresPreviousState) {
  ASSERT_FALSE(ExecTimingEnabled());
  {
    ScopedExecTiming on(true);
    EXPECT_TRUE(ExecTimingEnabled());
    {
      ScopedExecTiming off(false);
      EXPECT_FALSE(ExecTimingEnabled());
    }
    EXPECT_TRUE(ExecTimingEnabled());
  }
  EXPECT_FALSE(ExecTimingEnabled());
}

TEST(OperatorMetricsTest, RowCountsAlwaysCollected) {
  Relation r = IntRel("r", {{1}, {1}, {2}}, 1);
  // {1} twice inserts as one distinct tuple with multiplicity 2.
  exec::ScanOp scan(&r);
  auto result = exec::ExecuteToRelation(scan);
  ASSERT_OK(result);
  const OperatorMetrics& m = scan.metrics();
  EXPECT_EQ(m.rows_emitted, r.distinct_size());
  EXPECT_EQ(m.weighted_rows, r.size());
  // Timing was off, so no wall time was measured.
  EXPECT_EQ(m.total_ns(), 0u);
}

TEST(OperatorMetricsTest, WallTimeOnlyWhenTimingEnabled) {
  std::vector<std::vector<int64_t>> rows;
  for (int i = 0; i < 512; ++i) rows.push_back({i});
  Relation r = IntRel("r", rows, 1);
  exec::ScanOp scan(&r);
  ScopedExecTiming timing(true);
  auto result = exec::ExecuteToRelation(scan);
  ASSERT_OK(result);
  EXPECT_GT(scan.metrics().total_ns(), 0u);
}

TEST(OperatorMetricsTest, HashOperatorsReportPeakAndDistinct) {
  Relation r = IntRel("r", {{1}, {1}, {2}, {3}}, 1);
  exec::DedupOp dedup(std::make_unique<exec::ScanOp>(&r));
  auto result = exec::ExecuteToRelation(dedup);
  ASSERT_OK(result);
  EXPECT_EQ(dedup.metrics().distinct_rows, 3u);
  EXPECT_EQ(dedup.metrics().peak_hash_entries, 3u);
}

}  // namespace
}  // namespace obs
}  // namespace mra
