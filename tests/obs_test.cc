// Tests for the observability layer: metrics registry (counters, gauges,
// histograms, snapshot exports), trace spans and query-id attribution,
// the slow-query log, and the per-operator metrics collected by the
// PhysicalOperator wrappers.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "mra/exec/operator.h"
#include "mra/obs/metrics.h"
#include "mra/obs/op_metrics.h"
#include "mra/obs/slow_log.h"
#include "mra/obs/trace.h"
#include "test_util.h"

namespace mra {
namespace obs {
namespace {

using ::mra::testing::IntRel;

TEST(CounterTest, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, MovesBothWays) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
}

TEST(HistogramTest, BucketBoundariesAreLogLinear) {
  // The exact region: one bucket per value below kSubBuckets.
  for (size_t i = 0; i < Histogram::kSubBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketUpperBound(i), i);
    EXPECT_EQ(Histogram::BucketFor(i), i);
  }
  // First octave group continues the exact region: [16, 31] map to
  // width-1 buckets, so index still equals value there.
  for (uint64_t v = 16; v <= 31; ++v) {
    EXPECT_EQ(Histogram::BucketFor(v), v);
    EXPECT_EQ(Histogram::BucketUpperBound(v), v);
  }
  // Group 4 covers [128, 255] in 16 width-8 sub-buckets.
  EXPECT_EQ(Histogram::BucketFor(128), 64u);
  EXPECT_EQ(Histogram::BucketUpperBound(64), 135u);
  EXPECT_EQ(Histogram::BucketFor(255), 79u);
  EXPECT_EQ(Histogram::BucketUpperBound(79), 255u);
  // The last bucket is unbounded and absorbs everything past the range.
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kNumBuckets - 1),
            UINT64_MAX);
  EXPECT_EQ(Histogram::BucketFor(UINT64_MAX), Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, BucketsAreContiguousAndOrdered) {
  // Every value lands in the bucket whose range contains it: upper bound
  // of bucket i is ≥ value, and bucket i-1's upper bound is < value.
  for (uint64_t v : {0ull, 1ull, 15ull, 16ull, 17ull, 100ull, 1000ull,
                     4096ull, 65537ull, 1000000ull, 123456789ull}) {
    size_t i = Histogram::BucketFor(v);
    EXPECT_LE(v, Histogram::BucketUpperBound(i)) << "value " << v;
    if (i > 0) {
      EXPECT_GT(v, Histogram::BucketUpperBound(i - 1)) << "value " << v;
    }
  }
  // Upper bounds strictly increase over the bounded range.
  for (size_t i = 1; i + 1 < Histogram::kNumBuckets; ++i) {
    EXPECT_GT(Histogram::BucketUpperBound(i),
              Histogram::BucketUpperBound(i - 1));
  }
}

TEST(HistogramTest, ObservationsLandInTheRightBucket) {
  Histogram h;
  h.Observe(0);
  h.Observe(1);
  h.Observe(1);
  h.Observe(7);
  h.Observe(100);  // Group 3, width 4: bucket 57 covers [100, 103].
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum_micros(), 109u);
  EXPECT_EQ(h.max_micros(), 100u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(7), 1u);
  EXPECT_EQ(h.bucket(57), 1u);
}

TEST(HistogramTest, RelativeErrorStaysUnderSubBucketWidth) {
  // The defining HDR property: the bucket upper bound over-reports any
  // recorded value by at most 1/kSubBuckets (6.25%).
  for (uint64_t v = 1; v < 2'000'000; v = v * 3 / 2 + 1) {
    uint64_t upper = Histogram::BucketUpperBound(Histogram::BucketFor(v));
    EXPECT_GE(upper, v);
    EXPECT_LE(static_cast<double>(upper - v),
              static_cast<double>(v) / Histogram::kSubBuckets)
        << "value " << v << " upper " << upper;
  }
}

TEST(HistogramTest, QuantilesTrackTheDistribution) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Observe(v);
  HistogramData d = h.Snapshot();
  // Bucketed quantiles over-report by at most one sub-bucket width.
  EXPECT_GE(d.Quantile(0.50), 500u);
  EXPECT_LE(d.Quantile(0.50), 532u);
  EXPECT_GE(d.Quantile(0.95), 950u);
  EXPECT_LE(d.Quantile(0.95), 1011u);
  EXPECT_EQ(d.Quantile(1.0), 1000u);  // Clamped to the observed max.
  EXPECT_EQ(d.Quantile(0.0), Histogram::BucketUpperBound(
                                 Histogram::BucketFor(1)));
  EXPECT_EQ(HistogramData{}.Quantile(0.5), 0u);
}

TEST(HistogramTest, SnapshotsMergeLosslessly) {
  Histogram a;
  Histogram b;
  for (uint64_t v = 0; v < 100; ++v) a.Observe(v);
  for (uint64_t v = 100; v < 200; ++v) b.Observe(v);

  HistogramData merged = a.Snapshot();
  merged.MergeFrom(b.Snapshot());
  EXPECT_EQ(merged.count, 200u);
  EXPECT_EQ(merged.sum_micros, 199u * 200u / 2u);
  EXPECT_EQ(merged.max_micros, 199u);

  // Merging back into a live histogram accumulates the same totals.
  Histogram c;
  c.Merge(a.Snapshot());
  c.Merge(b.Snapshot());
  EXPECT_EQ(c.count(), merged.count);
  EXPECT_EQ(c.sum_micros(), merged.sum_micros);
  EXPECT_EQ(c.max_micros(), merged.max_micros);
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(c.bucket(i), merged.buckets[i]) << "bucket " << i;
  }
}

TEST(HistogramTest, ConcurrentObserveIsLossless) {
  // Exercised under TSan in CI: relaxed atomics must not lose counts.
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kObservations = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kObservations; ++i) {
        h.Observe(static_cast<uint64_t>(t * 131 + i % 97));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kObservations);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    bucket_total += h.bucket(i);
  }
  EXPECT_EQ(bucket_total, h.count());
  EXPECT_EQ(h.max_micros(), 7u * 131u + 96u);
}

TEST(HistogramTest, PrometheusExpositionIsCumulative) {
  MetricsRegistry reg;
  reg.GetCounter("exec.queries")->Inc(3);
  reg.GetGauge("depth")->Set(-2);
  Histogram* h = reg.GetHistogram("exec.query_us");
  h->Observe(5);
  h->Observe(5);
  h->Observe(200);

  std::string prom = reg.RenderPrometheus();
  EXPECT_NE(prom.find("# TYPE mra_exec_queries counter\nmra_exec_queries 3"),
            std::string::npos);
  EXPECT_NE(prom.find("mra_depth -2"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE mra_exec_query_us histogram"),
            std::string::npos);
  // Buckets are cumulative: le="5" has 2, the 200 bucket has all 3.
  EXPECT_NE(prom.find("mra_exec_query_us_bucket{le=\"5\"} 2"),
            std::string::npos);
  uint64_t upper200 = Histogram::BucketUpperBound(Histogram::BucketFor(200));
  EXPECT_NE(prom.find("mra_exec_query_us_bucket{le=\"" +
                      std::to_string(upper200) + "\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("mra_exec_query_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("mra_exec_query_us_sum 210"), std::string::npos);
  EXPECT_NE(prom.find("mra_exec_query_us_count 3"), std::string::npos);
}

TEST(MetricsRegistryTest, ReturnsStablePointersPerName) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x");
  Counter* b = reg.GetCounter("x");
  Counter* c = reg.GetCounter("y");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      Counter* c = reg.GetCounter("shared");
      for (int i = 0; i < kIncrements; ++i) c->Inc();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(reg.GetCounter("shared")->value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsRegistryTest, SnapshotExportsAreDeterministic) {
  MetricsRegistry reg;
  reg.GetCounter("b.count")->Inc(2);
  reg.GetCounter("a.count")->Inc(1);
  reg.GetGauge("depth")->Set(3);
  reg.GetHistogram("lat_us")->Observe(5);

  std::string json1 = reg.RenderJson();
  std::string json2 = reg.RenderJson();
  EXPECT_EQ(json1, json2);
  // Keys are sorted, so a.count precedes b.count.
  EXPECT_LT(json1.find("\"a.count\":1"), json1.find("\"b.count\":2"));
  EXPECT_NE(json1.find("\"gauges\":{\"depth\":3}"), std::string::npos);
  EXPECT_NE(json1.find("\"lat_us\":{\"count\":1,\"sum_us\":5"),
            std::string::npos);

  std::string text = reg.RenderText();
  EXPECT_NE(text.find("a.count 1"), std::string::npos);
  EXPECT_NE(text.find("lat_us count=1 sum_us=5"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsRegistrations) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("n");
  c->Inc(7);
  reg.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(reg.GetCounter("n"), c);
  EXPECT_NE(reg.RenderJson().find("\"n\":0"), std::string::npos);
}

TEST(TracerTest, RecordsNestedSpansWithDepth) {
  Tracer& tracer = Tracer::Global();
  tracer.SetEnabled(true);
  tracer.Clear();
  {
    ScopedSpan outer("outer");
    ScopedSpan inner("inner");
  }
  tracer.SetEnabled(false);

  std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  // Events sort by start time: outer starts first at depth 0.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_GE(events[0].duration_us, events[1].duration_us);

  std::string rendered = tracer.Render();
  EXPECT_NE(rendered.find("outer"), std::string::npos);
  EXPECT_NE(rendered.find("inner"), std::string::npos);
  tracer.Clear();
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.SetEnabled(false);
  tracer.Clear();
  { ScopedSpan span("ghost"); }
  EXPECT_TRUE(tracer.Events().empty());
}

TEST(QueryIdTest, NextQueryIdIsMonotonicAndNonzero) {
  uint64_t a = NextQueryId();
  uint64_t b = NextQueryId();
  EXPECT_NE(a, 0u);
  EXPECT_EQ(b, a + 1);
}

TEST(QueryIdTest, ScopedQueryIdNestsAndRestores) {
  EXPECT_EQ(CurrentQueryId(), 0u);
  {
    ScopedQueryId outer(41);
    EXPECT_EQ(CurrentQueryId(), 41u);
    {
      ScopedQueryId inner(42);
      EXPECT_EQ(CurrentQueryId(), 42u);
    }
    EXPECT_EQ(CurrentQueryId(), 41u);
  }
  EXPECT_EQ(CurrentQueryId(), 0u);
}

TEST(QueryIdTest, SpansCaptureTheCurrentIdAndEventsFilterByIt) {
  Tracer& tracer = Tracer::Global();
  tracer.SetEnabled(true);
  tracer.Clear();
  {
    ScopedQueryId q1(101);
    ScopedSpan span("first.query");
  }
  {
    ScopedQueryId q2(202);
    ScopedSpan span("second.query");
  }
  { ScopedSpan span("unattributed"); }
  tracer.SetEnabled(false);

  ASSERT_EQ(tracer.Events().size(), 3u);
  std::vector<TraceEvent> only_first = tracer.Events(101);
  ASSERT_EQ(only_first.size(), 1u);
  EXPECT_EQ(only_first[0].name, "first.query");
  EXPECT_EQ(only_first[0].query_id, 101u);

  std::string rendered = tracer.Render(202);
  EXPECT_NE(rendered.find("second.query"), std::string::npos);
  EXPECT_EQ(rendered.find("first.query"), std::string::npos);
  EXPECT_EQ(rendered.find("unattributed"), std::string::npos);
  tracer.Clear();
}

TEST(SlowQueryLogTest, ThresholdGatesRecording) {
  SlowQueryLog log;
  EXPECT_FALSE(log.enabled());  // Disabled by default.
  EXPECT_FALSE(log.ShouldLog(1'000'000'000));

  log.SetThresholdMs(10);
  EXPECT_TRUE(log.enabled());
  EXPECT_FALSE(log.ShouldLog(9'999));
  EXPECT_TRUE(log.ShouldLog(10'000));

  log.SetThresholdMs(0);
  EXPECT_TRUE(log.ShouldLog(0));  // 0 logs everything.
}

TEST(SlowQueryLogTest, EntriesRenderAsJsonLines) {
  SlowQueryLog log;
  log.SetThresholdMs(0);
  SlowQueryEntry entry;
  entry.query_id = 7;
  entry.latency_us = 1500;
  entry.bind_us = 100;
  entry.exec_us = 1300;
  entry.result_rows = 2;
  entry.source = "? select(%3 > 4.5, beer)";
  entry.plan = "Select\n  Scan(beer)";
  entry.events = {"shed"};
  log.Record(entry);

  std::vector<std::string> lines = log.Lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(log.total_logged(), 1u);
  const std::string& line = lines[0];
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"query_id\":7"), std::string::npos);
  EXPECT_NE(line.find("\"latency_us\":1500"), std::string::npos);
  EXPECT_NE(line.find("\"result_rows\":2"), std::string::npos);
  EXPECT_NE(line.find("select(%3 > 4.5, beer)"), std::string::npos);
  EXPECT_NE(line.find("\"events\":[\"shed\"]"), std::string::npos);
  EXPECT_NE(line.find("\"wall_ms\":"), std::string::npos);  // Auto-stamped.
  // Newlines inside the plan must be escaped — one JSON object per line.
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(SlowQueryLogTest, RingOverwritesOldestBeyondCapacity) {
  SlowQueryLog log;
  log.SetThresholdMs(0);
  for (uint64_t i = 0; i < SlowQueryLog::kCapacity + 10; ++i) {
    SlowQueryEntry entry;
    entry.query_id = i;
    log.Record(entry);
  }
  std::vector<std::string> lines = log.Lines();
  ASSERT_EQ(lines.size(), SlowQueryLog::kCapacity);
  EXPECT_EQ(log.total_logged(), SlowQueryLog::kCapacity + 10);
  // Oldest first: entry 10 survived, 0..9 were overwritten.
  EXPECT_NE(lines.front().find("\"query_id\":10"), std::string::npos)
      << lines.front();
  EXPECT_NE(lines.back().find("\"query_id\":" +
                              std::to_string(SlowQueryLog::kCapacity + 9)),
            std::string::npos)
      << lines.back();
}

TEST(SlowQueryLogTest, OversizedFieldsAreClipped) {
  SlowQueryLog log;
  log.SetThresholdMs(0);
  SlowQueryEntry entry;
  entry.source = std::string(2 * SlowQueryLog::kMaxFieldBytes, 'x');
  log.Record(entry);
  std::vector<std::string> lines = log.Lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_LT(lines[0].size(), 2 * SlowQueryLog::kMaxFieldBytes);
  EXPECT_NE(lines[0].find("truncated"), std::string::npos);
}

TEST(ExecTimingTest, ScopedToggleRestoresPreviousState) {
  ASSERT_FALSE(ExecTimingEnabled());
  {
    ScopedExecTiming on(true);
    EXPECT_TRUE(ExecTimingEnabled());
    {
      ScopedExecTiming off(false);
      EXPECT_FALSE(ExecTimingEnabled());
    }
    EXPECT_TRUE(ExecTimingEnabled());
  }
  EXPECT_FALSE(ExecTimingEnabled());
}

TEST(OperatorMetricsTest, RowCountsAlwaysCollected) {
  Relation r = IntRel("r", {{1}, {1}, {2}}, 1);
  // {1} twice inserts as one distinct tuple with multiplicity 2.
  exec::ScanOp scan(&r);
  auto result = exec::ExecuteToRelation(scan);
  ASSERT_OK(result);
  const OperatorMetrics& m = scan.metrics();
  EXPECT_EQ(m.rows_emitted, r.distinct_size());
  EXPECT_EQ(m.weighted_rows, r.size());
  // Timing was off, so no wall time was measured.
  EXPECT_EQ(m.total_ns(), 0u);
}

TEST(OperatorMetricsTest, WallTimeOnlyWhenTimingEnabled) {
  std::vector<std::vector<int64_t>> rows;
  for (int i = 0; i < 512; ++i) rows.push_back({i});
  Relation r = IntRel("r", rows, 1);
  exec::ScanOp scan(&r);
  ScopedExecTiming timing(true);
  auto result = exec::ExecuteToRelation(scan);
  ASSERT_OK(result);
  EXPECT_GT(scan.metrics().total_ns(), 0u);
}

TEST(OperatorMetricsTest, HashOperatorsReportPeakAndDistinct) {
  Relation r = IntRel("r", {{1}, {1}, {2}, {3}}, 1);
  exec::DedupOp dedup(std::make_unique<exec::ScanOp>(&r));
  auto result = exec::ExecuteToRelation(dedup);
  ASSERT_OK(result);
  EXPECT_EQ(dedup.metrics().distinct_rows, 3u);
  EXPECT_EQ(dedup.metrics().peak_hash_entries, 3u);
}

}  // namespace
}  // namespace obs
}  // namespace mra
