// Tests for the SQL front end: parsing, translation into the algebra (the
// paper's "formal background for SQL" claim, with Examples 3.2 and 4.1 as
// the reference translations) and end-to-end execution.

#include <gtest/gtest.h>

#include "mra/sql/sql_parser.h"
#include "mra/sql/translator.h"
#include "test_util.h"

namespace mra {
namespace sql {
namespace {

class SqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open();
    ASSERT_OK(db);
    db_ = std::move(*db);
    session_ = std::make_unique<SqlSession>(db_.get());
    ASSERT_OK(session_->Execute(
        "CREATE TABLE beer (name STRING, brewery STRING, alcperc REAL);"
        "CREATE TABLE brewery (name STRING, city STRING, country STRING);"
        "INSERT INTO beer VALUES"
        "  ('pils', 'Guineken', 5.0), ('pils', 'Guineken', 5.0),"
        "  ('dubbel', 'Guineken', 6.5), ('dubbel', 'Bavapils', 7.0),"
        "  ('stout', 'Kirin', 4.2);"
        "INSERT INTO brewery VALUES"
        "  ('Guineken', 'Amsterdam', 'NL'), ('Bavapils', 'Lieshout', 'NL'),"
        "  ('Kirin', 'Tokyo', 'JP');"));
  }

  Result<Relation> One(const std::string& sql) {
    MRA_ASSIGN_OR_RETURN(std::vector<Relation> results,
                         session_->ExecuteCollect(sql));
    if (results.size() != 1) {
      return Status::Internal("expected one result set");
    }
    return results[0];
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<SqlSession> session_;
};

TEST_F(SqlTest, ParserHandlesStatementKinds) {
  auto stmts = ParseSql(
      "SELECT * FROM t;"
      "SELECT DISTINCT a, b FROM t WHERE x = 1 GROUP BY a, b;"
      "INSERT INTO t VALUES (1, 'x');"
      "UPDATE t SET a = a + 1 WHERE b < 2;"
      "DELETE FROM t WHERE a <> 0;"
      "CREATE TABLE t (a INT, b VARCHAR(20));"
      "DROP TABLE t;"
      "BEGIN; COMMIT; ROLLBACK;");
  ASSERT_OK(stmts);
  EXPECT_EQ(stmts->size(), 10u);
  EXPECT_TRUE(std::holds_alternative<SelectStmt>((*stmts)[0]));
  EXPECT_TRUE(std::holds_alternative<InsertStmt>((*stmts)[2]));
  EXPECT_TRUE(std::holds_alternative<UpdateStmt>((*stmts)[3]));
  EXPECT_TRUE(std::holds_alternative<DeleteStmt>((*stmts)[4]));
  EXPECT_TRUE(std::holds_alternative<CreateTableStmt>((*stmts)[5]));
  EXPECT_TRUE(std::holds_alternative<DropTableStmt>((*stmts)[6]));
  EXPECT_EQ(std::get<TxnControl>((*stmts)[7]), TxnControl::kBegin);
}

TEST_F(SqlTest, ParserKeywordsCaseInsensitive) {
  EXPECT_OK(ParseSql("select * from beer where name = 'pils'"));
  EXPECT_OK(ParseSql("SeLeCt * FrOm beer"));
}

TEST_F(SqlTest, ParserRejectsMalformed) {
  EXPECT_FALSE(ParseSql("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM").ok());
  EXPECT_FALSE(ParseSql("INSERT INTO t (1)").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t SELECT").ok());
  EXPECT_FALSE(ParseSql("SELECT SUM(*) FROM t").ok());
}

TEST_F(SqlTest, SelectStarPreservesDuplicates) {
  auto result = One("SELECT * FROM beer");
  ASSERT_OK(result);
  EXPECT_EQ(result->size(), 5u);
  EXPECT_EQ(result->Multiplicity(Tuple({Value::Str("pils"),
                                        Value::Str("Guineken"),
                                        Value::Real(5.0)})),
            2u);
}

TEST_F(SqlTest, ProjectionKeepsDuplicatesWithoutDistinct) {
  // SQL bag semantics: SELECT name keeps duplicates, DISTINCT removes.
  auto bag = One("SELECT name FROM beer");
  ASSERT_OK(bag);
  EXPECT_EQ(bag->size(), 5u);
  auto set = One("SELECT DISTINCT name FROM beer");
  ASSERT_OK(set);
  EXPECT_EQ(set->size(), 3u);
}

TEST_F(SqlTest, WhereAndQualifiedColumns) {
  auto result = One(
      "SELECT beer.name FROM beer, brewery"
      " WHERE beer.brewery = brewery.name AND brewery.country = 'NL'");
  ASSERT_OK(result);
  EXPECT_EQ(result->size(), 4u);  // Example 3.1 in SQL
  EXPECT_EQ(result->Multiplicity(Tuple({Value::Str("dubbel")})), 2u);
}

TEST_F(SqlTest, AmbiguousColumnRejected) {
  // `name` exists in both tables.
  EXPECT_EQ(One("SELECT name FROM beer, brewery").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SqlTest, UnknownColumnAndTableRejected) {
  EXPECT_EQ(One("SELECT ghost FROM beer").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(One("SELECT * FROM ghost").status().code(),
            StatusCode::kNotFound);
}

TEST_F(SqlTest, Example32GroupByAvg) {
  // The paper's own SQL equivalent of Example 3.2.
  auto result = One(
      "SELECT country, AVG(alcperc) FROM beer, brewery"
      " WHERE beer.brewery = brewery.name GROUP BY country");
  ASSERT_OK(result);
  EXPECT_EQ(result->size(), 2u);
  EXPECT_EQ(result->Multiplicity(
                Tuple({Value::Str("NL"), Value::Real(5.875)})),
            1u);
  EXPECT_EQ(result->Multiplicity(
                Tuple({Value::Str("JP"), Value::Real(4.2)})),
            1u);
}

TEST_F(SqlTest, AggregateSelectListOrderRespected) {
  auto result = One(
      "SELECT AVG(alcperc) AS a, country FROM beer, brewery"
      " WHERE beer.brewery = brewery.name GROUP BY country");
  ASSERT_OK(result);
  EXPECT_EQ(result->schema().attribute(0).name, "a");
  EXPECT_EQ(result->schema().attribute(1).name, "country");
  EXPECT_EQ(result->Multiplicity(
                Tuple({Value::Real(5.875), Value::Str("NL")})),
            1u);
}

TEST_F(SqlTest, CountStarAndGlobalAggregates) {
  auto result = One("SELECT COUNT(*) FROM beer");
  ASSERT_OK(result);
  EXPECT_EQ(result->Multiplicity(Tuple({Value::Int(5)})), 1u);
  auto minmax = One("SELECT MIN(alcperc), MAX(alcperc) FROM beer");
  ASSERT_OK(minmax);
  EXPECT_EQ(minmax->Multiplicity(
                Tuple({Value::Real(4.2), Value::Real(7.0)})),
            1u);
}

TEST_F(SqlTest, NonGroupedColumnRejected) {
  EXPECT_EQ(One("SELECT city, AVG(alcperc) FROM beer, brewery"
                " WHERE beer.brewery = brewery.name GROUP BY country")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SqlTest, Example41Update) {
  // UPDATE beer SET alcperc = alcperc * 1.1 WHERE brewery = 'Guineken'.
  ASSERT_OK(session_->Execute(
      "UPDATE beer SET alcperc = alcperc * 1.1 WHERE brewery = 'Guineken'"));
  auto result = One("SELECT alcperc FROM beer WHERE name = 'pils'");
  ASSERT_OK(result);
  EXPECT_EQ(result->Multiplicity(Tuple({Value::Real(5.0 * 1.1)})), 2u);
  // Non-matching rows untouched.
  auto stout = One("SELECT alcperc FROM beer WHERE name = 'stout'");
  ASSERT_OK(stout);
  EXPECT_EQ(stout->Multiplicity(Tuple({Value::Real(4.2)})), 1u);
}

TEST_F(SqlTest, UpdateTranslationMatchesPaperForm) {
  // The translated statement must be exactly Example 4.1's
  // update(beer, select(...), [...]) shape.
  auto stmts = ParseSql(
      "UPDATE beer SET alcperc = alcperc * 1.1 WHERE brewery = 'Guineken'");
  ASSERT_OK(stmts);
  auto translated = TranslateStatement((*stmts)[0], db_->catalog());
  ASSERT_OK(translated);
  EXPECT_EQ(translated->ToString(),
            "update(beer, select((%2 = 'Guineken'), beer), "
            "[%1, %2, (%3 * 1.1)])");
}

TEST_F(SqlTest, SelectTranslationShowsAlgebraForm) {
  auto stmts = ParseSql(
      "SELECT country, AVG(alcperc) FROM beer, brewery"
      " WHERE beer.brewery = brewery.name GROUP BY country");
  ASSERT_OK(stmts);
  auto translated = TranslateStatement((*stmts)[0], db_->catalog());
  ASSERT_OK(translated);
  EXPECT_EQ(translated->ToString(),
            "? groupby([%6], avg(%3), "
            "select((%2 = %4), product(beer, brewery)))");
}

TEST_F(SqlTest, DeleteWithAndWithoutWhere) {
  ASSERT_OK(session_->Execute("DELETE FROM beer WHERE name = 'pils'"));
  auto rest = One("SELECT COUNT(*) FROM beer");
  ASSERT_OK(rest);
  EXPECT_EQ(rest->Multiplicity(Tuple({Value::Int(3)})), 1u);
  ASSERT_OK(session_->Execute("DELETE FROM beer"));
  auto none = One("SELECT COUNT(*) FROM beer");
  ASSERT_OK(none);
  EXPECT_EQ(none->Multiplicity(Tuple({Value::Int(0)})), 1u);
}

TEST_F(SqlTest, InsertCoercesWideningLiterals) {
  ASSERT_OK(session_->Execute(
      "CREATE TABLE price (item STRING, cost DECIMAL, weight REAL);"
      "INSERT INTO price VALUES ('hop', 3, 2)"));  // int → decimal, real
  auto result = One("SELECT cost, weight FROM price");
  ASSERT_OK(result);
  EXPECT_EQ(result->Multiplicity(
                Tuple({Value::Decimal(3), Value::Real(2.0)})),
            1u);
  // Narrowing (string into real) is rejected and nothing is inserted.
  EXPECT_EQ(session_->Execute("INSERT INTO price VALUES ('x', 'y', 'z')")
                .code(),
            StatusCode::kTypeError);
}

TEST_F(SqlTest, InsertArityMismatchRejected) {
  EXPECT_EQ(session_->Execute("INSERT INTO beer VALUES ('a', 'b')").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SqlTest, ExplicitTransactionCommitAndRollback) {
  ASSERT_OK(session_->Execute(
      "BEGIN;"
      "DELETE FROM beer;"
      "ROLLBACK;"));
  EXPECT_EQ(One("SELECT COUNT(*) FROM beer")
                ->Multiplicity(Tuple({Value::Int(5)})),
            1u);
  ASSERT_OK(session_->Execute(
      "BEGIN;"
      "DELETE FROM beer WHERE name = 'stout';"
      "COMMIT;"));
  EXPECT_EQ(One("SELECT COUNT(*) FROM beer")
                ->Multiplicity(Tuple({Value::Int(4)})),
            1u);
}

TEST_F(SqlTest, ReadYourOwnWritesInsideTransaction) {
  std::vector<Relation> results;
  ASSERT_OK(session_->Execute(
      "BEGIN;"
      "INSERT INTO beer VALUES ('tripel', 'Guineken', 9.5);"
      "SELECT COUNT(*) FROM beer;"
      "ROLLBACK;",
      [&results](const std::string&, const Relation& r) {
        results.push_back(r);
      }));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].Multiplicity(Tuple({Value::Int(6)})), 1u);
  // And the rollback removed it again.
  EXPECT_EQ(One("SELECT COUNT(*) FROM beer")
                ->Multiplicity(Tuple({Value::Int(5)})),
            1u);
}

TEST_F(SqlTest, FailingStatementAbortsExplicitTransaction) {
  Status s = session_->Execute(
      "BEGIN;"
      "DELETE FROM beer;"
      "SELECT * FROM ghost;");
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(session_->in_transaction());
  EXPECT_EQ(One("SELECT COUNT(*) FROM beer")
                ->Multiplicity(Tuple({Value::Int(5)})),
            1u);
}

TEST_F(SqlTest, TxnControlErrors) {
  EXPECT_EQ(session_->Execute("COMMIT").code(), StatusCode::kTxnError);
  EXPECT_EQ(session_->Execute("ROLLBACK").code(), StatusCode::kTxnError);
  ASSERT_OK(session_->Execute("BEGIN"));
  EXPECT_EQ(session_->Execute("BEGIN").code(), StatusCode::kTxnError);
  EXPECT_EQ(session_->Execute("CREATE TABLE t (x INT)").code(),
            StatusCode::kTxnError);
  ASSERT_OK(session_->Execute("ROLLBACK"));
}

TEST_F(SqlTest, ArithmeticAndBooleanExpressions) {
  auto result = One(
      "SELECT name, alcperc * 2 + 1 FROM beer"
      " WHERE NOT (alcperc < 5.0) AND (name = 'pils' OR name = 'dubbel')");
  ASSERT_OK(result);
  EXPECT_EQ(result->Multiplicity(
                Tuple({Value::Str("pils"), Value::Real(11.0)})),
            2u);
  EXPECT_EQ(result->size(), 4u);
}

TEST_F(SqlTest, DateAndDecimalLiterals) {
  ASSERT_OK(session_->Execute(
      "CREATE TABLE batch (brewed DATE, cost DECIMAL);"
      "INSERT INTO batch VALUES (DATE '1994-02-14', DECIMAL '19.99')"));
  auto result = One("SELECT * FROM batch WHERE brewed < DATE '2000-01-01'");
  ASSERT_OK(result);
  EXPECT_EQ(result->size(), 1u);
}

TEST_F(SqlTest, HavingFiltersGroups) {
  // σ over Γ: countries averaging above 5.0.
  auto result = One(
      "SELECT country, AVG(alcperc) FROM beer, brewery"
      " WHERE beer.brewery = brewery.name GROUP BY country"
      " HAVING AVG(alcperc) > 5.0");
  ASSERT_OK(result);
  EXPECT_EQ(result->size(), 1u);  // NL (5.875) stays, JP (4.2) drops
  EXPECT_EQ(result->Multiplicity(
                Tuple({Value::Str("NL"), Value::Real(5.875)})),
            1u);
}

TEST_F(SqlTest, HavingWithHiddenAggregate) {
  // The HAVING aggregate (COUNT) is not in the select list: a hidden
  // aggregate is added to Γ and projected away afterwards.
  auto result = One(
      "SELECT country, AVG(alcperc) FROM beer, brewery"
      " WHERE beer.brewery = brewery.name GROUP BY country"
      " HAVING COUNT(*) > 1");
  ASSERT_OK(result);
  EXPECT_EQ(result->size(), 1u);  // only NL has more than one beer
  EXPECT_EQ(result->schema().arity(), 2u);  // hidden COUNT projected away
}

TEST_F(SqlTest, HavingMayReferenceGroupedColumns) {
  auto result = One(
      "SELECT country, COUNT(*) FROM beer, brewery"
      " WHERE beer.brewery = brewery.name GROUP BY country"
      " HAVING country <> 'JP' AND COUNT(*) >= 1");
  ASSERT_OK(result);
  EXPECT_EQ(result->size(), 1u);
  EXPECT_EQ(result->Multiplicity(Tuple({Value::Str("NL"), Value::Int(4)})),
            1u);
}

TEST_F(SqlTest, HavingErrors) {
  // HAVING without grouping/aggregates.
  EXPECT_EQ(One("SELECT name FROM beer HAVING COUNT(*) > 1").status().code(),
            StatusCode::kInvalidArgument);
  // Non-grouped column inside HAVING.
  EXPECT_EQ(One("SELECT country, COUNT(*) FROM beer, brewery"
                " WHERE beer.brewery = brewery.name GROUP BY country"
                " HAVING city = 'Tokyo'")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Aggregates are not allowed in WHERE.
  EXPECT_EQ(One("SELECT name FROM beer WHERE COUNT(*) > 1").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SqlTest, HavingTranslationShape) {
  auto stmts = ParseSql(
      "SELECT country, AVG(alcperc) FROM beer, brewery"
      " WHERE beer.brewery = brewery.name GROUP BY country"
      " HAVING AVG(alcperc) > 5.0");
  ASSERT_OK(stmts);
  auto translated = TranslateStatement((*stmts)[0], db_->catalog());
  ASSERT_OK(translated);
  EXPECT_EQ(translated->ToString(),
            "? select((%2 > 5.0), groupby([%6], avg(%3), "
            "select((%2 = %4), product(beer, brewery))))");
}

TEST_F(SqlTest, ExplainSelectRendersPlans) {
  auto rel = One("EXPLAIN SELECT * FROM beer WHERE alcperc > 5.0");
  ASSERT_OK(rel);
  EXPECT_EQ(rel->schema().name(), "explain");
  ASSERT_EQ(rel->distinct_size(), 1u);
  const std::string& text = rel->begin()->first.at(0).string_value();
  EXPECT_NE(text.find("logical plan:"), std::string::npos);
  EXPECT_NE(text.find("physical plan:"), std::string::npos);
  EXPECT_EQ(text.find("analyzed"), std::string::npos);
}

TEST_F(SqlTest, ExplainAnalyzeSelectExecutesAndReportsActuals) {
  auto rel = One(
      "EXPLAIN ANALYZE SELECT country, AVG(alcperc) FROM beer, brewery"
      " WHERE beer.brewery = brewery.name GROUP BY country");
  ASSERT_OK(rel);
  EXPECT_EQ(rel->schema().name(), "explain");
  const std::string& text = rel->begin()->first.at(0).string_value();
  EXPECT_NE(text.find("physical plan (analyzed):"), std::string::npos);
  EXPECT_NE(text.find("est="), std::string::npos);
  EXPECT_NE(text.find("actual rows="), std::string::npos);
}

TEST_F(SqlTest, ExplainRequiresSelect) {
  EXPECT_FALSE(ParseSql("EXPLAIN DROP TABLE beer").ok());
}

TEST_F(SqlTest, DropTable) {
  ASSERT_OK(session_->Execute("DROP TABLE brewery"));
  EXPECT_EQ(One("SELECT * FROM brewery").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace sql
}  // namespace mra
