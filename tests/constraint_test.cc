// Tests for integrity constraints — the correctness property of §4.3:
// a transaction commits only if its post-state satisfies every registered
// constraint (violation queries must stay empty), following the
// integrity-control companion work the paper cites as [11].

#include <gtest/gtest.h>

#include "mra/lang/interpreter.h"
#include "mra/lang/parser.h"
#include "test_util.h"

namespace mra {
namespace {

using ::mra::testing::IntTuple;

class ConstraintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open();
    ASSERT_OK(db);
    db_ = std::move(*db);
    interp_ = std::make_unique<lang::Interpreter>(db_.get());
    ASSERT_OK(interp_->ExecuteScript(
        "create account(owner: string, balance: int);"
        "insert(account, {('ann', 100), ('bob', 50)});",
        nullptr));
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<lang::Interpreter> interp_;
};

TEST_F(ConstraintTest, RegisterAndList) {
  ASSERT_OK(interp_->ExecuteScript(
      "constraint nonneg (select(%2 < 0, account));", nullptr));
  EXPECT_EQ(db_->ConstraintNames(), (std::vector<std::string>{"nonneg"}));
}

TEST_F(ConstraintTest, ViolatingTransactionAborts) {
  ASSERT_OK(interp_->ExecuteScript(
      "constraint nonneg (select(%2 < 0, account));", nullptr));
  Status s = interp_->ExecuteScript(
      "insert(account, {('eve', -10)});", nullptr);
  EXPECT_EQ(s.code(), StatusCode::kConstraintViolation);
  EXPECT_NE(s.message().find("nonneg"), std::string::npos);
  // Atomicity: nothing committed.
  auto account = interp_->Query("account");
  ASSERT_OK(account);
  EXPECT_EQ(account->size(), 2u);
  EXPECT_EQ(db_->logical_time(), 1u);  // only the initial insert committed
}

TEST_F(ConstraintTest, SatisfyingTransactionCommits) {
  ASSERT_OK(interp_->ExecuteScript(
      "constraint nonneg (select(%2 < 0, account));", nullptr));
  ASSERT_OK(interp_->ExecuteScript(
      "insert(account, {('eve', 10)});", nullptr));
  auto account = interp_->Query("account");
  ASSERT_OK(account);
  EXPECT_EQ(account->size(), 3u);
}

TEST_F(ConstraintTest, BracketCheckedAsAWhole) {
  // A bracket may pass through "invalid" intermediate states; only the
  // post-state counts (the paper: intermediate states have no semantics
  // beyond the execution of T).
  ASSERT_OK(interp_->ExecuteScript(
      "constraint nonneg (select(%2 < 0, account));", nullptr));
  ASSERT_OK(interp_->ExecuteScript(
      "begin"
      "  insert(account, {('eve', -10)});"  // invalid here…
      "  delete(account, {('eve', -10)});"  // …repaired before the end
      "  insert(account, {('eve', 5)})"
      " end;",
      nullptr));
  auto eve = interp_->Query("select(%1 = 'eve', account)");
  ASSERT_OK(eve);
  EXPECT_EQ(eve->Multiplicity(Tuple({Value::Str("eve"), Value::Int(5)})), 1u);
}

TEST_F(ConstraintTest, PreViolatedConstraintRejectedAtRegistration) {
  ASSERT_OK(interp_->ExecuteScript(
      "insert(account, {('debtor', -1)});", nullptr));
  Status s = interp_->ExecuteScript(
      "constraint nonneg (select(%2 < 0, account));", nullptr);
  EXPECT_EQ(s.code(), StatusCode::kConstraintViolation);
  EXPECT_TRUE(db_->ConstraintNames().empty());
}

TEST_F(ConstraintTest, CrossRelationForeignKeyStyle) {
  ASSERT_OK(interp_->ExecuteScript(
      "create owner(name: string);"
      "insert(owner, {('ann'), ('bob')});"
      // Violation: account owners without an owner row.
      "constraint fk_owner (diff(unique(project([%1], account)),"
      "                          unique(project([%1], owner))));",
      nullptr));
  // Insert with a known owner: fine.
  ASSERT_OK(interp_->ExecuteScript(
      "insert(account, {('ann', 7)});", nullptr));
  // Insert with an unknown owner: rejected.
  Status s = interp_->ExecuteScript(
      "insert(account, {('mallory', 1)});", nullptr);
  EXPECT_EQ(s.code(), StatusCode::kConstraintViolation);
  // Deleting the last owner row of an account holder is also rejected.
  s = interp_->ExecuteScript("delete(owner, {('bob')});", nullptr);
  EXPECT_EQ(s.code(), StatusCode::kConstraintViolation);
  // But bob's owner row can go once his accounts are gone.
  ASSERT_OK(interp_->ExecuteScript(
      "begin"
      "  delete(account, select(%1 = 'bob', account));"
      "  delete(owner, {('bob')})"
      " end;"
      "drop constraint fk_owner;",
      nullptr));
  EXPECT_TRUE(db_->ConstraintNames().empty());
}

TEST_F(ConstraintTest, MultipleConstraintsAllChecked) {
  ASSERT_OK(interp_->ExecuteScript(
      "constraint nonneg (select(%2 < 0, account));"
      "constraint cap (select(%2 > 1000, account));",
      nullptr));
  EXPECT_EQ(interp_->ExecuteScript("insert(account, {('x', -1)});", nullptr)
                .code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(interp_->ExecuteScript("insert(account, {('x', 2000)});", nullptr)
                .code(),
            StatusCode::kConstraintViolation);
  EXPECT_OK(interp_->ExecuteScript("insert(account, {('x', 500)});", nullptr));
}

TEST_F(ConstraintTest, UpdateStatementsAreCheckedToo) {
  ASSERT_OK(interp_->ExecuteScript(
      "constraint nonneg (select(%2 < 0, account));", nullptr));
  Status s = interp_->ExecuteScript(
      "update(account, account, [%1, %2 - 200]);", nullptr);
  EXPECT_EQ(s.code(), StatusCode::kConstraintViolation);
  // Balances unchanged.
  auto ann = interp_->Query("select(%1 = 'ann', account)");
  ASSERT_OK(ann);
  EXPECT_EQ(ann->Multiplicity(Tuple({Value::Str("ann"), Value::Int(100)})),
            1u);
}

TEST_F(ConstraintTest, DdlRules) {
  // Duplicate and unknown names.
  ASSERT_OK(interp_->ExecuteScript(
      "constraint c1 (select(%2 < 0, account));", nullptr));
  EXPECT_EQ(interp_->ExecuteScript(
                    "constraint c1 (select(%2 < 0, account));", nullptr)
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(interp_->ExecuteScript("drop constraint ghost;", nullptr).code(),
            StatusCode::kNotFound);
  // Not inside transactions.
  EXPECT_EQ(interp_->ExecuteScript(
                    "begin constraint c2 (select(%2 < 0, account));"
                    " insert(account, {('y', 1)}) end;",
                    nullptr)
                .code(),
            StatusCode::kTxnError);
}

TEST_F(ConstraintTest, StatementFormRoundTrips) {
  auto script = lang::ParseScript(
      "constraint nonneg (select((%2 < 0), account));"
      "drop constraint nonneg;");
  ASSERT_OK(script);
  EXPECT_EQ(script->items[0].stmts[0].ToString(),
            "constraint nonneg (select((%2 < 0), account))");
  EXPECT_EQ(script->items[1].stmts[0].ToString(), "drop constraint nonneg");
}

}  // namespace
}  // namespace mra
