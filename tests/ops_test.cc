// Tests for the definitional multi-set operators of Definitions 3.1, 3.2
// and 3.4, against hand-computed multiplicities, plus the paper's worked
// Examples 3.1 and 3.2.

#include "mra/algebra/ops.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace mra {
namespace {

using ::mra::testing::IntRel;
using ::mra::testing::IntTuple;
using ::mra::testing::PaperBeerDb;

TEST(UnionTest, MultiplicitiesAdd) {
  Relation a = IntRel("a", {{1}, {1}, {2}}, 1);
  Relation b = IntRel("b", {{1}, {3}}, 1);
  auto u = ops::Union(a, b);
  ASSERT_OK(u);
  EXPECT_EQ(u->Multiplicity(IntTuple({1})), 3u);
  EXPECT_EQ(u->Multiplicity(IntTuple({2})), 1u);
  EXPECT_EQ(u->Multiplicity(IntTuple({3})), 1u);
  EXPECT_EQ(u->size(), 5u);
}

TEST(UnionTest, RejectsIncompatibleSchemas) {
  Relation a = IntRel("a", {{1}}, 1);
  Relation b = IntRel("b", {{1, 2}}, 2);
  EXPECT_EQ(ops::Union(a, b).status().code(), StatusCode::kInvalidArgument);
}

TEST(UnionTest, WithEmptyIsIdentity) {
  Relation a = IntRel("a", {{1}, {1}}, 1);
  Relation empty = IntRel("e", {}, 1);
  EXPECT_REL_EQ(*ops::Union(a, empty), a);
  EXPECT_REL_EQ(*ops::Union(empty, a), a);
}

TEST(DifferenceTest, SubtractsClampedAtZero) {
  Relation a = IntRel("a", {{1}, {1}, {1}, {2}}, 1);
  Relation b = IntRel("b", {{1}, {2}, {2}, {3}}, 1);
  auto d = ops::Difference(a, b);
  ASSERT_OK(d);
  EXPECT_EQ(d->Multiplicity(IntTuple({1})), 2u);  // 3 - 1
  EXPECT_EQ(d->Multiplicity(IntTuple({2})), 0u);  // max(0, 1 - 2)
  EXPECT_EQ(d->Multiplicity(IntTuple({3})), 0u);
  EXPECT_EQ(d->size(), 2u);
}

TEST(DifferenceTest, SelfDifferenceIsEmpty) {
  Relation a = IntRel("a", {{1}, {1}, {2}}, 1);
  auto d = ops::Difference(a, a);
  ASSERT_OK(d);
  EXPECT_TRUE(d->empty());
}

TEST(ProductTest, MultiplicitiesMultiply) {
  Relation a = IntRel("a", {{1}, {1}}, 1);       // (1):2
  Relation b = IntRel("b", {{7}, {7}, {8}}, 1);  // (7):2, (8):1
  auto p = ops::Product(a, b);
  ASSERT_OK(p);
  EXPECT_EQ(p->schema().arity(), 2u);
  EXPECT_EQ(p->Multiplicity(IntTuple({1, 7})), 4u);  // 2 * 2
  EXPECT_EQ(p->Multiplicity(IntTuple({1, 8})), 2u);  // 2 * 1
  EXPECT_EQ(p->size(), 6u);
}

TEST(ProductTest, SchemaIsOplus) {
  PaperBeerDb db;
  auto p = ops::Product(db.beer, db.brewery);
  ASSERT_OK(p);
  EXPECT_EQ(p->schema().arity(), 6u);
  EXPECT_EQ(p->schema().attribute(5).name, "country");
  EXPECT_EQ(p->size(), db.beer.size() * db.brewery.size());
}

TEST(SelectTest, FiltersByCondition) {
  Relation a = IntRel("a", {{1}, {1}, {2}, {3}}, 1);
  auto s = ops::Select(Ge(Attr(0), Lit(int64_t{2})), a);
  ASSERT_OK(s);
  EXPECT_EQ(s->Multiplicity(IntTuple({1})), 0u);
  EXPECT_EQ(s->Multiplicity(IntTuple({2})), 1u);
  EXPECT_EQ(s->Multiplicity(IntTuple({3})), 1u);
}

TEST(SelectTest, PreservesMultiplicities) {
  Relation a = IntRel("a", {{5}, {5}, {5}}, 1);
  auto s = ops::Select(Eq(Attr(0), Lit(int64_t{5})), a);
  ASSERT_OK(s);
  EXPECT_EQ(s->Multiplicity(IntTuple({5})), 3u);
}

TEST(SelectTest, TypeChecksCondition) {
  Relation a = IntRel("a", {{1}}, 1);
  EXPECT_EQ(ops::Select(Add(Attr(0), Attr(0)), a).status().code(),
            StatusCode::kTypeError);
  EXPECT_EQ(ops::Select(Eq(Attr(3), Lit(int64_t{0})), a).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ProjectTest, AdditiveNoDedup) {
  // π sums multiplicities of tuples mapping to the same image — and does
  // NOT remove duplicates (the core multi-set departure from sets).
  Relation a = IntRel("a", {{1, 10}, {1, 20}, {2, 30}}, 2);
  auto p = ops::ProjectIndexes({0}, a);
  ASSERT_OK(p);
  EXPECT_EQ(p->Multiplicity(IntTuple({1})), 2u);
  EXPECT_EQ(p->Multiplicity(IntTuple({2})), 1u);
  EXPECT_EQ(p->size(), a.size());  // cardinality preserved
}

TEST(ProjectTest, ExtendedProjectionComputes) {
  Relation a = IntRel("a", {{2, 3}}, 2);
  auto p = ops::Project({Mul(Attr(0), Attr(1)), Add(Attr(0), Lit(int64_t{1}))},
                        a);
  ASSERT_OK(p);
  EXPECT_EQ(p->Multiplicity(IntTuple({6, 3})), 1u);
}

TEST(ProjectTest, ReportsEvalErrors) {
  Relation a = IntRel("a", {{1, 0}}, 2);
  EXPECT_EQ(ops::Project({Div(Attr(0), Attr(1))}, a).status().code(),
            StatusCode::kEvalError);
}

TEST(IntersectTest, TakesMinimum) {
  Relation a = IntRel("a", {{1}, {1}, {1}, {2}}, 1);
  Relation b = IntRel("b", {{1}, {1}, {3}}, 1);
  auto i = ops::Intersect(a, b);
  ASSERT_OK(i);
  EXPECT_EQ(i->Multiplicity(IntTuple({1})), 2u);  // min(3, 2)
  EXPECT_EQ(i->Multiplicity(IntTuple({2})), 0u);
  EXPECT_EQ(i->Multiplicity(IntTuple({3})), 0u);
}

TEST(IntersectTest, WithSelfIsIdentity) {
  Relation a = IntRel("a", {{1}, {1}, {2}}, 1);
  EXPECT_REL_EQ(*ops::Intersect(a, a), a);
}

TEST(JoinTest, MatchesConditionAcrossSides) {
  Relation a = IntRel("a", {{1}, {2}}, 1);
  Relation b = IntRel("b", {{1, 10}, {2, 20}, {2, 21}}, 2);
  auto j = ops::Join(Eq(Attr(0), Attr(1)), a, b);
  ASSERT_OK(j);
  EXPECT_EQ(j->Multiplicity(IntTuple({1, 1, 10})), 1u);
  EXPECT_EQ(j->Multiplicity(IntTuple({2, 2, 20})), 1u);
  EXPECT_EQ(j->Multiplicity(IntTuple({2, 2, 21})), 1u);
  EXPECT_EQ(j->size(), 3u);
}

TEST(JoinTest, MultiplicitiesMultiplyThroughJoin) {
  Relation a = IntRel("a", {{1}, {1}}, 1);
  Relation b = IntRel("b", {{1}, {1}, {1}}, 1);
  auto j = ops::Join(Eq(Attr(0), Attr(1)), a, b);
  ASSERT_OK(j);
  EXPECT_EQ(j->Multiplicity(IntTuple({1, 1})), 6u);
}

TEST(UniqueTest, MapsPositiveMultiplicityToOne) {
  Relation a = IntRel("a", {{1}, {1}, {1}, {2}}, 1);
  auto u = ops::Unique(a);
  ASSERT_OK(u);
  EXPECT_EQ(u->Multiplicity(IntTuple({1})), 1u);
  EXPECT_EQ(u->Multiplicity(IntTuple({2})), 1u);
  EXPECT_EQ(u->size(), 2u);
}

TEST(UniqueTest, Idempotent) {
  Relation a = IntRel("a", {{1}, {1}, {2}}, 1);
  auto once = ops::Unique(a);
  ASSERT_OK(once);
  auto twice = ops::Unique(*once);
  ASSERT_OK(twice);
  EXPECT_REL_EQ(*once, *twice);
}

// --- Theorem 3.1 on concrete relations (the paper proves it; we execute
// both sides). ---

TEST(Theorem31Test, IntersectViaDoubleDifference) {
  Relation a = IntRel("a", {{1}, {1}, {1}, {2}, {4}}, 1);
  Relation b = IntRel("b", {{1}, {1}, {2}, {2}, {3}}, 1);
  auto direct = ops::Intersect(a, b);
  auto via = ops::Difference(a, *ops::Difference(a, b));
  ASSERT_OK(direct);
  ASSERT_OK(via);
  EXPECT_REL_EQ(*direct, *via);
}

TEST(Theorem31Test, JoinViaSelectionOverProduct) {
  Relation a = IntRel("a", {{1}, {2}, {2}}, 1);
  Relation b = IntRel("b", {{2, 7}, {3, 8}}, 2);
  ExprPtr cond = Eq(Attr(0), Attr(1));
  auto direct = ops::Join(cond, a, b);
  auto via = ops::Select(cond, *ops::Product(a, b));
  ASSERT_OK(direct);
  ASSERT_OK(via);
  EXPECT_REL_EQ(*direct, *via);
}

// --- Example 3.1: names of beers brewn in the Netherlands, duplicates
// preserved. ---

TEST(PaperExampleTest, Example31DutchBeerNames) {
  PaperBeerDb db;
  // π_(%1) σ_(%6 = 'NL') (beer ⋈_(%2 = %4) brewery)
  auto joined = ops::Join(Eq(Attr(1), Attr(3)), db.beer, db.brewery);
  ASSERT_OK(joined);
  auto dutch = ops::Select(Eq(Attr(5), Lit("NL")), *joined);
  ASSERT_OK(dutch);
  auto names = ops::ProjectIndexes({0}, *dutch);
  ASSERT_OK(names);
  // Guineken (NL): pils ×2, dubbel ×1.  Bavapils (NL): dubbel ×1.
  // Kirin (JP) excluded.  "dubbel" appears twice — the duplicates the
  // example highlights.
  EXPECT_EQ(names->Multiplicity(Tuple({Value::Str("pils")})), 2u);
  EXPECT_EQ(names->Multiplicity(Tuple({Value::Str("dubbel")})), 2u);
  EXPECT_EQ(names->Multiplicity(Tuple({Value::Str("stout")})), 0u);
  EXPECT_EQ(names->size(), 4u);
}

// --- Example 3.2: average alcohol percentage per country; inserting an
// early projection preserves the result under bag semantics. ---

TEST(PaperExampleTest, Example32EarlyProjectionEquivalent) {
  PaperBeerDb db;
  ExprPtr join_cond = Eq(Attr(1), Attr(3));
  auto joined = ops::Join(join_cond, db.beer, db.brewery);
  ASSERT_OK(joined);

  // Γ_(country),AVG,alcperc over the full join.
  auto direct = ops::GroupBy({5}, {{AggKind::kAvg, 2, "avg_alcperc"}},
                             *joined);
  ASSERT_OK(direct);

  // With the size-reducing projection π_(alcperc, country) inserted.
  auto narrowed = ops::ProjectIndexes({2, 5}, *joined);
  ASSERT_OK(narrowed);
  auto via = ops::GroupBy({1}, {{AggKind::kAvg, 0, "avg_alcperc"}},
                          *narrowed);
  ASSERT_OK(via);

  EXPECT_REL_EQ(*direct, *via);

  // Hand-check the NL average: (5.0*2 + 6.5 + 7.0) / 4 = 5.875.
  bool found_nl = false;
  for (const auto& [tuple, count] : *direct) {
    if (tuple.at(0).string_value() == "NL") {
      found_nl = true;
      EXPECT_DOUBLE_EQ(tuple.at(1).real_value(), 5.875);
      EXPECT_EQ(count, 1u);
    }
  }
  EXPECT_TRUE(found_nl);
}

TEST(GroupBySchemaTest, KeySchemaPlusAggregateRange) {
  PaperBeerDb db;
  auto schema = ops::GroupBySchema({5}, {{AggKind::kAvg, 2, ""}},
                                   db.beer.schema().Concat(
                                       db.brewery.schema()));
  ASSERT_OK(schema);
  EXPECT_EQ(schema->arity(), 2u);
  EXPECT_EQ(schema->attribute(0).name, "country");
  EXPECT_EQ(schema->attribute(1).name, "avg_alcperc");
  EXPECT_EQ(schema->TypeOf(1), Type::Real());
}

TEST(GroupBySchemaTest, RejectsDuplicateKeys) {
  Relation a = IntRel("a", {{1, 2}}, 2);
  EXPECT_EQ(ops::GroupBySchema({0, 0}, {{AggKind::kCnt, 0, ""}},
                               a.schema())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(GroupBySchemaTest, RejectsSumOverString) {
  PaperBeerDb db;
  EXPECT_EQ(ops::GroupBySchema({}, {{AggKind::kSum, 0, ""}},
                               db.beer.schema())
                .status()
                .code(),
            StatusCode::kTypeError);
}

}  // namespace
}  // namespace mra
