// Tests for the multi-set aggregate functions (Definition 3.3) and the
// groupby operator (Definition 3.4).

#include "mra/algebra/aggregate.h"

#include <gtest/gtest.h>

#include "mra/algebra/ops.h"
#include "test_util.h"

namespace mra {
namespace {

using ::mra::testing::IntRel;
using ::mra::testing::IntTuple;

Relation WeightedInts() {
  // (2):3, (5):1  → CNT 4, SUM 11, AVG 2.75, MIN 2, MAX 5.
  Relation r(RelationSchema("r", {{"x", Type::Int()}}));
  EXPECT_TRUE(r.Insert(IntTuple({2}), 3).ok());
  EXPECT_TRUE(r.Insert(IntTuple({5}), 1).ok());
  return r;
}

TEST(AggregateTest, CntCountsDuplicates) {
  auto v = Aggregate(AggKind::kCnt, 0, WeightedInts());
  ASSERT_OK(v);
  EXPECT_EQ(v->int_value(), 4);
}

TEST(AggregateTest, SumIsMultiplicityWeighted) {
  auto v = Aggregate(AggKind::kSum, 0, WeightedInts());
  ASSERT_OK(v);
  EXPECT_EQ(v->int_value(), 11);  // 2*3 + 5 — NOT 2 + 5
}

TEST(AggregateTest, AvgIsSumOverCnt) {
  auto v = Aggregate(AggKind::kAvg, 0, WeightedInts());
  ASSERT_OK(v);
  EXPECT_DOUBLE_EQ(v->real_value(), 2.75);
}

TEST(AggregateTest, MinMaxOverSupport) {
  Relation r = WeightedInts();
  EXPECT_EQ(Aggregate(AggKind::kMin, 0, r)->int_value(), 2);
  EXPECT_EQ(Aggregate(AggKind::kMax, 0, r)->int_value(), 5);
}

TEST(AggregateTest, MinMaxOnStringsUseLexicographicOrder) {
  Relation r(RelationSchema("r", {{"s", Type::String()}}));
  ASSERT_OK(r.Insert(Tuple({Value::Str("pils")})));
  ASSERT_OK(r.Insert(Tuple({Value::Str("ale")}), 5));
  EXPECT_EQ(Aggregate(AggKind::kMin, 0, r)->string_value(), "ale");
  EXPECT_EQ(Aggregate(AggKind::kMax, 0, r)->string_value(), "pils");
}

TEST(AggregateTest, EmptyInputPartialFunctions) {
  // Definition 3.3: AVG/MIN/MAX are partial — undefined on empty input.
  Relation empty = IntRel("e", {}, 1);
  EXPECT_EQ(Aggregate(AggKind::kAvg, 0, empty).status().code(),
            StatusCode::kUndefined);
  EXPECT_EQ(Aggregate(AggKind::kMin, 0, empty).status().code(),
            StatusCode::kUndefined);
  EXPECT_EQ(Aggregate(AggKind::kMax, 0, empty).status().code(),
            StatusCode::kUndefined);
  // CNT and SUM are total: the empty sum is 0.
  EXPECT_EQ(Aggregate(AggKind::kCnt, 0, empty)->int_value(), 0);
  EXPECT_EQ(Aggregate(AggKind::kSum, 0, empty)->int_value(), 0);
}

TEST(AggregateTest, SumRejectsNonNumeric) {
  Relation r(RelationSchema("r", {{"s", Type::String()}}));
  ASSERT_OK(r.Insert(Tuple({Value::Str("a")})));
  EXPECT_EQ(Aggregate(AggKind::kSum, 0, r).status().code(),
            StatusCode::kTypeError);
  EXPECT_EQ(Aggregate(AggKind::kAvg, 0, r).status().code(),
            StatusCode::kTypeError);
}

TEST(AggregateTest, CntAttributeIsDummy) {
  // "parameter p is a dummy parameter, included only for reasons of
  // syntactical uniformity" (Definition 3.3).
  Relation r(RelationSchema("r", {{"s", Type::String()}, {"x", Type::Int()}}));
  ASSERT_OK(r.Insert(Tuple({Value::Str("a"), Value::Int(1)}), 3));
  EXPECT_EQ(Aggregate(AggKind::kCnt, 0, r)->int_value(), 3);
  EXPECT_EQ(Aggregate(AggKind::kCnt, 1, r)->int_value(), 3);
}

TEST(AggregateTest, AttributeOutOfRange) {
  EXPECT_EQ(Aggregate(AggKind::kCnt, 5, WeightedInts()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(AggregateTest, RealAndDecimalSums) {
  Relation r(RelationSchema("r", {{"x", Type::Real()}}));
  ASSERT_OK(r.Insert(Tuple({Value::Real(1.5)}), 2));
  ASSERT_OK(r.Insert(Tuple({Value::Real(2.0)}), 1));
  EXPECT_DOUBLE_EQ(Aggregate(AggKind::kSum, 0, r)->real_value(), 5.0);

  Relation d(RelationSchema("d", {{"m", Type::Decimal()}}));
  ASSERT_OK(d.Insert(Tuple({Value::DecimalScaled(12500)}), 2));  // 1.25 × 2
  auto sum = Aggregate(AggKind::kSum, 0, d);
  ASSERT_OK(sum);
  EXPECT_EQ(sum->decimal_scaled(), 25000);
  auto avg = Aggregate(AggKind::kAvg, 0, d);
  ASSERT_OK(avg);
  EXPECT_EQ(avg->kind(), TypeKind::kDecimal);
  EXPECT_EQ(avg->decimal_scaled(), 12500);
}

TEST(AggResultTypeTest, Ranges) {
  EXPECT_EQ(*AggResultType(AggKind::kCnt, Type::String()), Type::Int());
  EXPECT_EQ(*AggResultType(AggKind::kSum, Type::Int()), Type::Int());
  EXPECT_EQ(*AggResultType(AggKind::kSum, Type::Decimal()), Type::Decimal());
  EXPECT_EQ(*AggResultType(AggKind::kAvg, Type::Int()), Type::Real());
  EXPECT_EQ(*AggResultType(AggKind::kAvg, Type::Decimal()), Type::Decimal());
  EXPECT_EQ(*AggResultType(AggKind::kMin, Type::Date()), Type::Date());
  EXPECT_EQ(*AggResultType(AggKind::kMax, Type::String()), Type::String());
}

TEST(AggKindTest, NamesRoundTrip) {
  for (AggKind k : {AggKind::kCnt, AggKind::kSum, AggKind::kAvg,
                    AggKind::kMin, AggKind::kMax}) {
    auto parsed = AggKindFromName(AggKindName(k));
    ASSERT_OK(parsed);
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_OK(AggKindFromName("count"));  // SQL spelling
  EXPECT_FALSE(AggKindFromName("median").ok());
}

// --- GroupBy (Definition 3.4). ---

TEST(GroupByTest, GroupsByKeyEquality) {
  Relation r = IntRel("r", {{1, 10}, {1, 20}, {2, 30}, {2, 30}}, 2);
  auto g = ops::GroupBy({0}, {{AggKind::kSum, 1, "total"}}, r);
  ASSERT_OK(g);
  EXPECT_EQ(g->Multiplicity(IntTuple({1, 30})), 1u);
  EXPECT_EQ(g->Multiplicity(IntTuple({2, 60})), 1u);  // 30 × 2
  EXPECT_EQ(g->size(), 2u);
}

TEST(GroupByTest, OutputIsDuplicateFree) {
  Relation r = IntRel("r", {{1, 1}, {1, 1}, {1, 2}}, 2);
  auto g = ops::GroupBy({0}, {{AggKind::kCnt, 0, ""}}, r);
  ASSERT_OK(g);
  for (const auto& [tuple, count] : *g) {
    EXPECT_EQ(count, 1u);
  }
}

TEST(GroupByTest, EmptyKeysProducesSingleRow) {
  // "If the attribute list α is empty … the result is one single attribute
  // tuple" (Definition 3.4).
  Relation r = IntRel("r", {{1}, {2}, {2}}, 1);
  auto g = ops::GroupBy({}, {{AggKind::kCnt, 0, ""}}, r);
  ASSERT_OK(g);
  EXPECT_EQ(g->size(), 1u);
  EXPECT_EQ(g->Multiplicity(IntTuple({3})), 1u);
}

TEST(GroupByTest, EmptyKeysOverEmptyInputCntIsZero) {
  Relation empty = IntRel("e", {}, 1);
  auto g = ops::GroupBy({}, {{AggKind::kCnt, 0, ""}}, empty);
  ASSERT_OK(g);
  EXPECT_EQ(g->Multiplicity(IntTuple({0})), 1u);
}

TEST(GroupByTest, EmptyKeysOverEmptyInputAvgUndefined) {
  Relation empty = IntRel("e", {}, 1);
  EXPECT_EQ(ops::GroupBy({}, {{AggKind::kAvg, 0, ""}}, empty)
                .status()
                .code(),
            StatusCode::kUndefined);
}

TEST(GroupByTest, NonEmptyKeysOverEmptyInputIsEmpty) {
  Relation empty = IntRel("e", {}, 1);
  auto g = ops::GroupBy({0}, {{AggKind::kCnt, 0, ""}}, empty);
  ASSERT_OK(g);
  EXPECT_TRUE(g->empty());
}

TEST(GroupByTest, MultipleAggregatesExtension) {
  // Documented extension: the paper's single (f, p) is the one-element case.
  Relation r = IntRel("r", {{1, 10}, {1, 30}, {2, 5}}, 2);
  auto g = ops::GroupBy(
      {0},
      {{AggKind::kCnt, 0, "n"}, {AggKind::kMin, 1, "lo"},
       {AggKind::kMax, 1, "hi"}},
      r);
  ASSERT_OK(g);
  EXPECT_EQ(g->schema().arity(), 4u);
  EXPECT_EQ(g->Multiplicity(IntTuple({1, 2, 10, 30})), 1u);
  EXPECT_EQ(g->Multiplicity(IntTuple({2, 1, 5, 5})), 1u);
}

TEST(GroupByTest, MultiKeyGrouping) {
  Relation r = IntRel("r", {{1, 1, 100}, {1, 1, 200}, {1, 2, 300}}, 3);
  auto g = ops::GroupBy({0, 1}, {{AggKind::kSum, 2, ""}}, r);
  ASSERT_OK(g);
  EXPECT_EQ(g->Multiplicity(IntTuple({1, 1, 300})), 1u);
  EXPECT_EQ(g->Multiplicity(IntTuple({1, 2, 300})), 1u);
}

TEST(GroupByTest, MultiplicityWeightedAverages) {
  // The whole point of Example 3.2: duplicates must weight the average.
  Relation r(RelationSchema("r", {{"k", Type::Int()}, {"v", Type::Real()}}));
  ASSERT_OK(r.Insert(Tuple({Value::Int(1), Value::Real(5.0)}), 2));
  ASSERT_OK(r.Insert(Tuple({Value::Int(1), Value::Real(6.5)}), 1));
  auto g = ops::GroupBy({0}, {{AggKind::kAvg, 1, ""}}, r);
  ASSERT_OK(g);
  ASSERT_EQ(g->size(), 1u);
  const Tuple& out = g->begin()->first;
  EXPECT_DOUBLE_EQ(out.at(1).real_value(), (5.0 * 2 + 6.5) / 3.0);
}

}  // namespace
}  // namespace mra
