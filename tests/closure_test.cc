// Tests for the transitive closure operator (§5's named extension):
// definitional properties, semi-naive vs naive agreement, plan/executor
// integration and the XRA surface syntax.

#include "mra/algebra/closure.h"

#include <gtest/gtest.h>

#include <random>

#include "mra/algebra/evaluator.h"
#include "mra/algebra/ops.h"
#include "mra/catalog/catalog.h"
#include "mra/exec/physical_planner.h"
#include "mra/lang/interpreter.h"
#include "mra/opt/optimizer.h"
#include "test_util.h"

namespace mra {
namespace {

using ::mra::testing::IntRel;
using ::mra::testing::IntTuple;

TEST(ClosureTest, ChainReachability) {
  // 1→2→3→4 closes to all 6 forward pairs.
  Relation edges = IntRel("e", {{1, 2}, {2, 3}, {3, 4}}, 2);
  auto c = ops::TransitiveClosure(edges);
  ASSERT_OK(c);
  EXPECT_EQ(c->size(), 6u);
  EXPECT_TRUE(c->Contains(IntTuple({1, 4})));
  EXPECT_TRUE(c->Contains(IntTuple({2, 4})));
  EXPECT_FALSE(c->Contains(IntTuple({4, 1})));
}

TEST(ClosureTest, CycleTerminatesWithFiniteResult) {
  // 1→2→3→1: every node reaches every node (including itself).
  Relation edges = IntRel("e", {{1, 2}, {2, 3}, {3, 1}}, 2);
  auto c = ops::TransitiveClosure(edges);
  ASSERT_OK(c);
  EXPECT_EQ(c->size(), 9u);
  EXPECT_TRUE(c->Contains(IntTuple({1, 1})));
  EXPECT_TRUE(c->Contains(IntTuple({3, 2})));
}

TEST(ClosureTest, ResultIsDuplicateFree) {
  // Duplicate edges and multiple paths collapse: closure is set-valued.
  Relation edges(RelationSchema("e", {{"a", Type::Int()}, {"b", Type::Int()}}));
  ASSERT_OK(edges.Insert(IntTuple({1, 2}), 5));
  ASSERT_OK(edges.Insert(IntTuple({1, 3})));
  ASSERT_OK(edges.Insert(IntTuple({3, 2})));  // second path 1→2
  auto c = ops::TransitiveClosure(edges);
  ASSERT_OK(c);
  for (const auto& [tuple, count] : *c) {
    EXPECT_EQ(count, 1u) << tuple.ToString();
  }
  EXPECT_EQ(c->Multiplicity(IntTuple({1, 2})), 1u);
}

TEST(ClosureTest, EmptyAndSelfLoopInputs) {
  Relation empty = IntRel("e", {}, 2);
  auto c = ops::TransitiveClosure(empty);
  ASSERT_OK(c);
  EXPECT_TRUE(c->empty());

  Relation self = IntRel("s", {{7, 7}}, 2);
  auto cs = ops::TransitiveClosure(self);
  ASSERT_OK(cs);
  EXPECT_EQ(cs->size(), 1u);
}

TEST(ClosureTest, InputValidation) {
  Relation unary = IntRel("u", {{1}}, 1);
  EXPECT_EQ(ops::TransitiveClosure(unary).status().code(),
            StatusCode::kInvalidArgument);
  Relation mixed(RelationSchema("m", {{"a", Type::Int()},
                                      {"b", Type::String()}}));
  EXPECT_EQ(ops::TransitiveClosure(mixed).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ClosureTest, ContainsDedupedInputAndIsTransitive) {
  std::mt19937_64 rng(99);
  Relation edges = ::mra::testing::RandomIntRelation(rng, 2, 40, 15, 3);
  auto c = ops::TransitiveClosure(edges);
  ASSERT_OK(c);
  // δE ⊑ closure(E).
  auto base = ops::Unique(edges);
  ASSERT_OK(base);
  EXPECT_TRUE(base->MultiSubsetOf(*c));
  // Transitivity: (x,y), (y,z) ∈ C ⟹ (x,z) ∈ C.
  for (const auto& [p1, c1] : *c) {
    for (const auto& [p2, c2] : *c) {
      if (p1.at(1).Equals(p2.at(0))) {
        EXPECT_TRUE(c->Contains(Tuple({p1.at(0), p2.at(1)})))
            << p1.ToString() << " + " << p2.ToString();
      }
    }
  }
}

TEST(ClosureTest, Idempotent) {
  std::mt19937_64 rng(7);
  Relation edges = ::mra::testing::RandomIntRelation(rng, 2, 30, 10, 2);
  auto once = ops::TransitiveClosure(edges);
  ASSERT_OK(once);
  auto twice = ops::TransitiveClosure(*once);
  ASSERT_OK(twice);
  EXPECT_REL_EQ(*once, *twice);
}

class ClosureStrategyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClosureStrategyTest, SemiNaiveMatchesNaive) {
  std::mt19937_64 rng(GetParam());
  Relation edges = ::mra::testing::RandomIntRelation(rng, 2, 30, 12, 3);
  auto semi = ops::TransitiveClosure(edges);
  auto naive = ops::TransitiveClosureNaive(edges);
  ASSERT_OK(semi);
  ASSERT_OK(naive);
  EXPECT_REL_EQ(*semi, *naive);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosureStrategyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{11}));

TEST(ClosurePlanTest, PlanBuilderValidatesAndEvaluates) {
  Relation edges = IntRel("e", {{1, 2}, {2, 3}}, 2);
  Catalog catalog;
  RelationSchema schema = edges.schema();
  schema.set_name("e");
  ASSERT_OK(catalog.CreateRelation(schema));
  ASSERT_OK(catalog.SetRelation("e", edges));

  PlanPtr scan = Plan::Scan("e", schema);
  auto plan = Plan::Closure(scan);
  ASSERT_OK(plan);
  EXPECT_EQ((*plan)->ToInlineString(), "closure(e)");

  auto reference = EvaluatePlan(**plan, catalog);
  auto physical = exec::ExecutePlan(*plan, catalog);
  ASSERT_OK(reference);
  ASSERT_OK(physical);
  EXPECT_REL_EQ(*reference, *physical);
  EXPECT_EQ(reference->size(), 3u);

  // Non-binary input rejected at build time.
  PlanPtr wide = Plan::ConstRel(IntRel("w", {{1, 2, 3}}, 3));
  EXPECT_EQ(Plan::Closure(wide).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ClosurePlanTest, OptimizerPreservesClosureSemantics) {
  Relation edges = IntRel("e", {{1, 2}, {2, 3}, {3, 1}, {4, 4}}, 2);
  Catalog catalog;
  RelationSchema schema = edges.schema();
  schema.set_name("e");
  ASSERT_OK(catalog.CreateRelation(schema));
  ASSERT_OK(catalog.SetRelation("e", edges));
  PlanPtr scan = Plan::Scan("e", schema);
  // σ over δ over closure, projected to one column: exercises narrowing
  // around the opaque closure node plus the δ-elimination rule.
  auto closure = Plan::Closure(scan);
  ASSERT_OK(closure);
  auto uniq = Plan::Unique(*closure);
  ASSERT_OK(uniq);
  auto sel = Plan::Select(Ne(Attr(0), Attr(1)), *uniq);
  ASSERT_OK(sel);
  auto proj = Plan::ProjectIndexes({0}, *sel);
  ASSERT_OK(proj);

  opt::Optimizer optimizer(&catalog);
  auto optimized = optimizer.Optimize(*proj);
  ASSERT_OK(optimized);
  auto before = EvaluatePlan(**proj, catalog);
  auto after = EvaluatePlan(**optimized, catalog);
  ASSERT_OK(before);
  ASSERT_OK(after);
  EXPECT_REL_EQ(*before, *after);
}

TEST(ClosureXraTest, ParsesAndExecutes) {
  auto db = Database::Open();
  ASSERT_OK(db);
  lang::Interpreter interp(db->get());
  auto results = interp.ExecuteScriptCollect(
      "create flight(origin: string, dest: string);"
      "insert(flight, {('AMS', 'LHR'), ('LHR', 'JFK'), ('JFK', 'SFO')});"
      "? closure(flight);");
  ASSERT_OK(results);
  ASSERT_EQ(results->size(), 1u);
  const Relation& reachable = (*results)[0];
  EXPECT_EQ(reachable.size(), 6u);
  EXPECT_TRUE(reachable.Contains(
      Tuple({Value::Str("AMS"), Value::Str("SFO")})));
}

TEST(ClosureXraTest, RejectsNonBinaryRelation) {
  auto db = Database::Open();
  ASSERT_OK(db);
  lang::Interpreter interp(db->get());
  ASSERT_OK(interp.ExecuteScript(
      "create beer(name: string, brewery: string, alcperc: real);", nullptr));
  EXPECT_EQ(interp.ExecuteScriptCollect("? closure(beer);").status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace mra
