// Crash-recovery torture harness.
//
// Each iteration forks a child that runs a scripted workload — create a
// relation, then N single-tuple transactions, with a checkpoint in the
// middle — under a randomly drawn failpoint scenario (armed through the
// fault registry after the fork, so the parent is never contaminated).
// The child either finishes cleanly or dies at the injected point with
// fault::kAbortExitCode and no cleanup, exactly like a crash.
//
// The parent then recovers the directory and asserts the §4.3 atomicity
// invariant: the recovered relation holds exactly the values {1..n} for
// some n ≤ N, each with multiplicity 1 — a clean prefix of the committed
// history, never a hybrid state, a gap, or a duplicate.  It then commits
// once more and reopens, proving the recovered log is appendable (a torn
// tail must have been truncated, not appended after).

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <random>
#include <string>

#include "mra/fault/failpoint.h"
#include "mra/txn/database.h"
#include "mra/txn/transaction.h"
#include "test_util.h"

namespace mra {
namespace {

using ::mra::testing::IntTuple;

// Transactions per child run; the checkpoint lands in the middle.
constexpr int kCommits = 10;
constexpr int kCheckpointAt = 5;
// The WAL sees one append per DDL/commit: 1 (create) + kCommits.
constexpr int kWalAppends = 1 + kCommits;

// Child exit codes beyond fault::kAbortExitCode; any of these failing in
// the child is a harness bug, not an injected crash.
constexpr int kChildBadSpec = 99;
constexpr int kChildOpenFailed = 98;
constexpr int kChildBeginFailed = 97;

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("mra_crash_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string path() const { return path_.string(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

struct Scenario {
  std::string spec;
  bool sync_commits = false;
};

// Draws one failpoint scenario.  `after` values are spread over the whole
// append history so kills land before, at, and beyond the checkpoint.
Scenario DrawScenario(std::mt19937& rng) {
  auto uniform = [&rng](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  // Deliberately overshoots the append count now and then, so some abort
  // scenarios never fire and the clean-exit half of the invariant (all N
  // commits recovered) is exercised too.
  int after = uniform(0, kWalAppends + 2);
  int keep = uniform(0, 23);  // 0..11 tears the header, 12+ the payload.
  switch (uniform(0, 9)) {
    case 0:
      return {"wal.append=abort:after=" + std::to_string(after)};
    case 1:
      return {"wal.append=torn(" + std::to_string(keep) +
              "):after=" + std::to_string(after)};
    case 2:
      return {"wal.sync=abort:after=" + std::to_string(after), true};
    case 3:
      return {"wal.sync=error:after=" + std::to_string(after), true};
    case 4:
      return {"checkpoint.write=torn(" + std::to_string(keep) + ")"};
    case 5:
      return {"checkpoint.write=error"};
    case 6:
      return {"checkpoint.sync=abort"};
    case 7:
      return {"checkpoint.rename=abort"};
    case 8:
      return {"checkpoint.dirsync=abort"};
    default:
      return {"wal.truncate=abort"};
  }
}

// EXPECT_OK with the iteration's scenario attached to the failure.
template <typename T>
bool ExpectOk(const T& v, const std::string& context, const char* what) {
  EXPECT_TRUE(v.ok()) << context << " — " << what << ": "
                      << ::mra::internal::ToStatus(v).ToString();
  return v.ok();
}

Relation OneTuple(int64_t value) {
  Relation r(RelationSchema({{"x", Type::Int()}}));
  r.InsertUnchecked(IntTuple({value}));
  return r;
}

// The child's workload.  Never returns: _Exit only, so an injected commit
// failure behaves like a crash (no destructors, no flushing).
[[noreturn]] void RunChild(const std::string& dir, const Scenario& scenario) {
  if (!fault::FaultRegistry::Global().ConfigureFromSpec(scenario.spec).ok()) {
    std::_Exit(kChildBadSpec);
  }
  DatabaseOptions options;
  options.directory = dir;
  options.sync_commits = scenario.sync_commits;
  auto db = Database::Open(options);
  if (!db.ok()) std::_Exit(kChildOpenFailed);
  if (!(*db)->CreateRelation(RelationSchema("t", {{"x", Type::Int()}})).ok()) {
    std::_Exit(fault::kAbortExitCode);
  }
  for (int i = 1; i <= kCommits; ++i) {
    if (i == kCheckpointAt && !(*db)->Checkpoint().ok()) {
      std::_Exit(fault::kAbortExitCode);
    }
    auto txn = (*db)->Begin();
    if (!txn.ok()) std::_Exit(kChildBeginFailed);
    if (!(*txn)->Insert("t", OneTuple(i)).ok() || !(*txn)->Commit().ok()) {
      std::_Exit(fault::kAbortExitCode);
    }
  }
  std::_Exit(0);
}

// Recovers `dir` and asserts the prefix invariant; returns the recovered
// commit count n, or -1 after a recorded failure.
int VerifyRecovered(const std::string& dir, const std::string& context) {
  DatabaseOptions options;
  options.directory = dir;
  auto db = Database::Open(options);
  if (!ExpectOk(db, context, "recovery open")) return -1;

  int n = 0;
  if ((*db)->catalog().HasRelation("t")) {
    auto rel = (*db)->catalog().GetRelation("t");
    if (!ExpectOk(rel, context, "read recovered relation")) return -1;
    n = static_cast<int>((*rel)->distinct_size());
    EXPECT_LE(n, kCommits) << context;
    // Exactly {1..n}, multiplicity 1 each: no gaps, no duplicates, no
    // partially applied transaction.
    EXPECT_EQ((*rel)->size(), static_cast<uint64_t>(n)) << context;
    for (int i = 1; i <= n; ++i) {
      EXPECT_EQ((*rel)->Multiplicity(IntTuple({i})), 1u)
          << context << " — missing commit " << i << " of prefix " << n;
    }
  }

  // The recovered database must accept new commits (a torn tail left in
  // place would corrupt the log right here)...
  ExpectOk(
      (*db)->CreateRelation(RelationSchema("probe", {{"x", Type::Int()}})),
      context, "post-recovery DDL");
  auto txn = (*db)->Begin();
  if (ExpectOk(txn, context, "post-recovery begin")) {
    ExpectOk((*txn)->Insert("probe", OneTuple(1)), context, "probe insert");
    ExpectOk((*txn)->Commit(), context, "probe commit");
  }
  db->reset();

  // ...and the new commit must itself survive a reopen.
  auto reopened = Database::Open(options);
  if (ExpectOk(reopened, context, "reopen after probe")) {
    auto probe = (*reopened)->catalog().GetRelation("probe");
    if (ExpectOk(probe, context, "read probe")) {
      EXPECT_EQ((*probe)->Multiplicity(IntTuple({1})), 1u) << context;
    }
  }
  return n;
}

TEST(CrashRecoveryTortureTest, RandomizedKillPointsRecoverToCleanPrefix) {
  int iterations = 120;
  if (const char* env = std::getenv("MRA_TORTURE_ITERS")) {
    iterations = std::max(1, std::atoi(env));
  }
  uint32_t seed = 0x4d524131;  // Fixed default: reproducible CI runs.
  if (const char* env = std::getenv("MRA_TORTURE_SEED")) {
    seed = static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
  }
  std::mt19937 rng(seed);
  SCOPED_TRACE("MRA_TORTURE_SEED=" + std::to_string(seed));

  int clean_exits = 0;
  int killed = 0;
  for (int iter = 0; iter < iterations; ++iter) {
    TempDir dir;
    Scenario scenario = DrawScenario(rng);
    std::string context = "iter " + std::to_string(iter) + ", failpoints \"" +
                          scenario.spec + "\"" +
                          (scenario.sync_commits ? " (sync commits)" : "");

    pid_t pid = ::fork();
    ASSERT_GE(pid, 0) << context;
    if (pid == 0) RunChild(dir.path(), scenario);  // Never returns.

    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid) << context;
    ASSERT_TRUE(WIFEXITED(wstatus)) << context << " — child was signalled";
    int code = WEXITSTATUS(wstatus);
    ASSERT_TRUE(code == 0 || code == fault::kAbortExitCode)
        << context << " — child exited " << code;

    int n = VerifyRecovered(dir.path(), context);
    ASSERT_GE(n, 0) << context;
    if (code == 0) {
      // The child acknowledged every commit; recovery must keep them all.
      EXPECT_EQ(n, kCommits) << context;
      ++clean_exits;
    } else {
      ++killed;
    }
    if (::testing::Test::HasFailure()) {
      FAIL() << "stopping after first failing iteration: " << context;
    }
  }
  // The scenario mix must actually exercise both halves of the invariant
  // (only meaningful at full scale — skip under a shortened smoke run).
  if (iterations >= 100) {
    EXPECT_GT(killed, iterations / 4) << "injection mostly missed";
    EXPECT_GT(clean_exits, 0) << "every child died before finishing";
  }
  ::testing::Test::RecordProperty("torture_iterations", iterations);
  ::testing::Test::RecordProperty("torture_killed", killed);
}

}  // namespace
}  // namespace mra
