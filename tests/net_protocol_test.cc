// Wire-protocol unit tests: frame encode/decode round trips, CRC and
// framing violations, size limits, and the payload codecs (Hello, Error,
// chunked ResultSet, v3 QueryRequest / stats trailer / ServerStats) on
// in-memory buffers — plus loopback handshake tests pinning the
// version-negotiation contract: unsupported versions are refused naming
// both dialects, v2 clients are negotiated down and served v2 payloads.

#include "mra/net/protocol.h"

#include <gtest/gtest.h>

#include "mra/lang/interpreter.h"
#include "mra/net/client.h"
#include "mra/net/server.h"
#include "mra/net/socket.h"
#include "mra/storage/serializer.h"

namespace mra {
namespace net {
namespace {

Relation SmallRelation() {
  Relation r(RelationSchema(
      "beer", {Attribute{"name", Type::String()},
               Attribute{"alcperc", Type::Real()}}));
  EXPECT_TRUE(r.Insert(Tuple({Value::Str("pils"), Value::Real(5.0)}), 2).ok());
  EXPECT_TRUE(
      r.Insert(Tuple({Value::Str("stout"), Value::Real(4.2)}), 1).ok());
  return r;
}

TEST(FrameCodec, RoundTripsEveryKind) {
  WireLimits limits;
  for (uint8_t k = 1; k <= 10; ++k) {
    FrameKind kind = static_cast<FrameKind>(k);
    std::string payload = "payload for " + std::string(FrameKindName(kind));
    std::string wire = EncodeFrame(kind, payload);
    auto frame = DecodeFrame(wire, limits);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->kind, kind);
    EXPECT_EQ(frame->payload, payload);
  }
}

TEST(FrameCodec, RoundTripsEmptyPayload) {
  std::string wire = EncodeFrame(FrameKind::kPing, "");
  EXPECT_EQ(wire.size(), kFrameHeaderBytes);
  auto frame = DecodeFrame(wire, WireLimits{});
  ASSERT_TRUE(frame.ok());
  EXPECT_TRUE(frame->payload.empty());
}

TEST(FrameCodec, RejectsBadMagic) {
  std::string wire = EncodeFrame(FrameKind::kPing, "x");
  wire[0] ^= 0x5a;
  auto frame = DecodeFrame(wire, WireLimits{});
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
}

TEST(FrameCodec, RejectsUnknownKind) {
  std::string wire = EncodeFrame(FrameKind::kPing, "x");
  wire[4] = 99;
  auto frame = DecodeFrame(wire, WireLimits{});
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
}

TEST(FrameCodec, CrcCoversKindByte) {
  // Flipping the kind to another *valid* kind must still fail the CRC.
  std::string wire = EncodeFrame(FrameKind::kQuery, "? beer");
  wire[4] = static_cast<char>(FrameKind::kScript);
  auto frame = DecodeFrame(wire, WireLimits{});
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
}

TEST(FrameCodec, RejectsCorruptPayload) {
  std::string wire = EncodeFrame(FrameKind::kQuery, "? beer");
  wire.back() ^= 0x01;
  auto frame = DecodeFrame(wire, WireLimits{});
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
}

TEST(FrameCodec, RejectsEveryTruncation) {
  std::string wire = EncodeFrame(FrameKind::kScript, "insert(beer, {...});");
  for (size_t len = 0; len < wire.size(); ++len) {
    auto frame = DecodeFrame(std::string_view(wire).substr(0, len),
                             WireLimits{});
    EXPECT_FALSE(frame.ok()) << "prefix of " << len << " bytes decoded";
  }
}

TEST(FrameCodec, RejectsTrailingBytes) {
  std::string wire = EncodeFrame(FrameKind::kPing, "x");
  wire += "junk";
  EXPECT_FALSE(DecodeFrame(wire, WireLimits{}).ok());
}

TEST(FrameCodec, EnforcesFrameSizeLimit) {
  WireLimits tight;
  tight.max_frame_bytes = 16;
  std::string wire =
      EncodeFrame(FrameKind::kScript, std::string(1000, 'x'));
  auto frame = DecodeFrame(wire, tight);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
  // The same frame passes under the default limit.
  EXPECT_TRUE(DecodeFrame(wire, WireLimits{}).ok());
}

TEST(FrameCodec, HeaderAloneIsValidatedBeforePayload) {
  // An adversarial header announcing 4GiB must be refused from the header
  // bytes alone — no payload allocation.
  std::string wire = EncodeFrame(FrameKind::kQuery, "q");
  storage::Encoder enc;
  enc.PutU32(0xffffff00u);
  std::string len_bytes = enc.TakeBuffer();
  wire.replace(5, 4, len_bytes);  // Overwrite payload_len in the header.
  auto header = ParseFrameHeader(
      std::string_view(wire).substr(0, kFrameHeaderBytes), WireLimits{});
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kInvalidArgument);
}

TEST(HelloCodec, RoundTrips) {
  std::string payload = EncodeHello(kProtocolVersion, "xra_repl");
  auto hello = DecodeHello(payload);
  ASSERT_TRUE(hello.ok());
  EXPECT_EQ(hello->version, kProtocolVersion);
  EXPECT_EQ(hello->peer, "xra_repl");
  EXPECT_FALSE(DecodeHello(payload + "x").ok());
  EXPECT_FALSE(DecodeHello(payload.substr(0, 3)).ok());
}

TEST(ErrorCodec, TransportsStatusCodeAndMessage) {
  Status original = Status::ParseError("unexpected token ')' at line 3");
  Status decoded = DecodeError(EncodeError(original));
  EXPECT_EQ(decoded.code(), original.code());
  EXPECT_EQ(decoded.message(), original.message());
}

TEST(ErrorCodec, RefusesMalformedPayloads) {
  EXPECT_EQ(DecodeError("").code(), StatusCode::kCorruption);
  // A payload claiming StatusCode 0 (OK) is nonsense for an Error frame.
  storage::Encoder enc;
  enc.PutU8(0);
  enc.PutString("not an error");
  EXPECT_EQ(DecodeError(enc.buffer()).code(), StatusCode::kCorruption);
}

TEST(ResultSetCodec, RoundTripsRelations) {
  Relation beer = SmallRelation();
  Relation empty(RelationSchema("empty_rel", {Attribute{"a", Type::Int()}}));
  std::string payload = EncodeResultSet({beer, empty});
  auto decoded = DecodeResultSet(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0], beer);
  EXPECT_EQ((*decoded)[1], empty);
}

TEST(ResultSetCodec, RoundTripsZeroRelations) {
  auto decoded = DecodeResultSet(EncodeResultSet({}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(ResultSetCodec, RefusesGarbage) {
  EXPECT_FALSE(DecodeResultSet("garbage").ok());
  std::string payload = EncodeResultSet({SmallRelation()});
  EXPECT_FALSE(DecodeResultSet(payload.substr(0, payload.size() - 1)).ok());
  EXPECT_FALSE(DecodeResultSet(payload + "x").ok());
}

TEST(ResultSetCodec, RoundTripsAcrossChunkBoundaries) {
  // Enough distinct rows for three chunks (two full, one partial) — the
  // decoder must reassemble them into one relation, multiplicities intact.
  Relation big(RelationSchema("nums", {Attribute{"n", Type::Int()}}));
  const uint64_t kRows = 2 * kResultSetChunkRows + 451;
  for (uint64_t i = 0; i < kRows; ++i) {
    ASSERT_TRUE(
        big.Insert(Tuple({Value::Int(static_cast<int64_t>(i))}), i % 3 + 1)
            .ok());
  }
  auto decoded = DecodeResultSet(EncodeResultSet({big}));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), 1u);
  EXPECT_EQ((*decoded)[0], big);
}

TEST(ResultSetCodec, ExactChunkMultipleRoundTrips) {
  // Edge case: the last chunk is exactly full, so only the 0-terminator
  // follows it.
  Relation big(RelationSchema("nums", {Attribute{"n", Type::Int()}}));
  for (uint64_t i = 0; i < kResultSetChunkRows; ++i) {
    ASSERT_TRUE(
        big.Insert(Tuple({Value::Int(static_cast<int64_t>(i))}), 1).ok());
  }
  auto decoded = DecodeResultSet(EncodeResultSet({big}));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ((*decoded)[0], big);
}

TEST(ResultSetCodec, RefusesZeroMultiplicityInChunk) {
  Relation beer = SmallRelation();
  storage::Encoder enc;
  enc.PutU32(1);
  enc.PutSchema(beer.schema());
  enc.PutU32(1);  // One-row chunk...
  enc.PutTuple(Tuple({Value::Str("pils"), Value::Real(5.0)}));
  enc.PutU64(0);  // ...carrying a nonsense multiplicity.
  enc.PutU32(0);
  auto decoded = DecodeResultSet(enc.buffer());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(ResultSetCodec, ImplausibleChunkCountFailsFast) {
  // A corrupt chunk header announcing 4 billion rows must fail at the
  // first missing tuple, not allocate or spin.
  Relation beer = SmallRelation();
  storage::Encoder enc;
  enc.PutU32(1);
  enc.PutSchema(beer.schema());
  enc.PutU32(0xfffffff0u);
  auto decoded = DecodeResultSet(enc.buffer());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(ResultSetCodec, MissingTerminatorIsRefused) {
  // Strip the trailing end-of-relation terminator (the final u32 0): the
  // decoder must report truncation instead of returning a relation.
  std::string payload = EncodeResultSet({SmallRelation()});
  EXPECT_FALSE(DecodeResultSet(payload.substr(0, payload.size() - 4)).ok());
}

TEST(QueryRequestCodec, RoundTripsIdAndText) {
  std::string payload = EncodeQueryRequest(0x1234'5678'9abcull, "? beer");
  auto req = DecodeQueryRequest(payload);
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->query_id, 0x1234'5678'9abcull);
  EXPECT_EQ(req->text, "? beer");
  EXPECT_FALSE(DecodeQueryRequest(payload + "x").ok());
  EXPECT_FALSE(DecodeQueryRequest(payload.substr(0, 5)).ok());
  EXPECT_FALSE(DecodeQueryRequest("").ok());
}

WireQueryStats SampleStats() {
  WireQueryStats stats;
  stats.query_id = 42;
  stats.result_rows = 3;
  stats.total_us = 1200;
  stats.bind_us = 100;
  stats.optimize_us = 200;
  stats.lower_us = 300;
  stats.exec_us = 600;
  WireOpStats select;
  select.name = "Select";
  select.depth = 0;
  select.estimated_rows = 2.5;
  select.rows_emitted = 3;
  select.batches_emitted = 1;
  select.weighted_rows = 4;
  select.time_ns = 123'456;
  WireOpStats scan;
  scan.name = "Scan(beer)";
  scan.depth = 1;
  scan.rows_emitted = 2;
  scan.batches_emitted = 1;
  scan.weighted_rows = 3;
  scan.peak_hash_entries = 7;
  scan.hash_bytes = 512;
  stats.operators = {select, scan};
  return stats;
}

TEST(ResultSetCodec, StatsTrailerRoundTrips) {
  WireQueryStats stats = SampleStats();
  std::string payload = EncodeResultSetWithStats({SmallRelation()}, &stats);
  std::optional<WireQueryStats> decoded_stats;
  auto decoded = DecodeResultSetWithStats(payload, &decoded_stats);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ((*decoded)[0], SmallRelation());
  ASSERT_TRUE(decoded_stats.has_value());
  EXPECT_EQ(decoded_stats->query_id, 42u);
  EXPECT_EQ(decoded_stats->result_rows, 3u);
  EXPECT_EQ(decoded_stats->total_us, 1200u);
  EXPECT_EQ(decoded_stats->exec_us, 600u);
  ASSERT_EQ(decoded_stats->operators.size(), 2u);
  EXPECT_EQ(decoded_stats->operators[0].name, "Select");
  EXPECT_EQ(decoded_stats->operators[0].estimated_rows, 2.5);
  EXPECT_EQ(decoded_stats->operators[0].time_ns, 123'456u);
  EXPECT_EQ(decoded_stats->operators[1].depth, 1u);
  EXPECT_EQ(decoded_stats->operators[1].peak_hash_entries, 7u);
}

TEST(ResultSetCodec, MissingTrailerDecodesToEmptyOptional) {
  std::string payload =
      EncodeResultSetWithStats({SmallRelation()}, /*stats=*/nullptr);
  std::optional<WireQueryStats> decoded_stats;
  auto decoded = DecodeResultSetWithStats(payload, &decoded_stats);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded_stats.has_value());
  // A caller that does not care about the trailer may pass nullptr.
  EXPECT_TRUE(DecodeResultSetWithStats(payload, nullptr).ok());
}

TEST(ResultSetCodec, StatsTrailerRefusesGarbage) {
  WireQueryStats stats = SampleStats();
  std::string payload = EncodeResultSetWithStats({SmallRelation()}, &stats);
  EXPECT_FALSE(
      DecodeResultSetWithStats(payload.substr(0, payload.size() - 1), nullptr)
          .ok());
  EXPECT_FALSE(DecodeResultSetWithStats(payload + "x", nullptr).ok());
  // has_stats must be 0 or 1.
  std::string bad = EncodeResultSetWithStats({SmallRelation()}, nullptr);
  bad.back() = 2;
  auto decoded = DecodeResultSetWithStats(bad, nullptr);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(ServerStatsCodec, RequestRoundTrips) {
  auto id = DecodeServerStatsRequest(EncodeServerStatsRequest(77));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 77u);
  EXPECT_FALSE(DecodeServerStatsRequest("").ok());
  EXPECT_FALSE(
      DecodeServerStatsRequest(EncodeServerStatsRequest(77) + "x").ok());
}

TEST(ServerStatsCodec, ReplyRoundTrips) {
  ServerStatsReply reply;
  reply.uptime_us = 5'000'000;
  reply.sessions_served = 9;
  reply.active_sessions = 2;
  reply.queries = 123;
  reply.sheds = 4;
  reply.slow_logged = 1;
  obs::Histogram h;
  h.Observe(10);
  h.Observe(100);
  h.Observe(10'000);
  reply.query_latency = h.Snapshot();
  ServerSessionInfo s;
  s.id = 3;
  s.peer = "xra_repl";
  s.current_query = "? select(%3 > 4.5, beer)";
  s.busy = true;
  s.queries = 12;
  s.last_latency_us = 900;
  s.idle_ms = 0;
  reply.sessions.push_back(s);
  reply.slow_log = {"{\"query_id\":1}", "{\"query_id\":2}"};
  reply.trace = "query 1:\n  interpreter.execute 1.2ms\n";

  auto decoded = DecodeServerStatsReply(EncodeServerStatsReply(reply));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->uptime_us, reply.uptime_us);
  EXPECT_EQ(decoded->sessions_served, 9u);
  EXPECT_EQ(decoded->active_sessions, 2u);
  EXPECT_EQ(decoded->queries, 123u);
  EXPECT_EQ(decoded->sheds, 4u);
  EXPECT_EQ(decoded->slow_logged, 1u);
  EXPECT_EQ(decoded->query_latency.count, 3u);
  EXPECT_EQ(decoded->query_latency.sum_micros, 10'110u);
  EXPECT_EQ(decoded->query_latency.max_micros, 10'000u);
  EXPECT_EQ(decoded->query_latency.buckets, reply.query_latency.buckets);
  ASSERT_EQ(decoded->sessions.size(), 1u);
  EXPECT_EQ(decoded->sessions[0].peer, "xra_repl");
  EXPECT_TRUE(decoded->sessions[0].busy);
  EXPECT_EQ(decoded->sessions[0].current_query, s.current_query);
  EXPECT_EQ(decoded->slow_log, reply.slow_log);
  EXPECT_EQ(decoded->trace, reply.trace);
}

TEST(ServerStatsCodec, ReplyRefusesGarbage) {
  ServerStatsReply reply;
  std::string payload = EncodeServerStatsReply(reply);
  EXPECT_FALSE(
      DecodeServerStatsReply(payload.substr(0, payload.size() - 1)).ok());
  EXPECT_FALSE(DecodeServerStatsReply(payload + "x").ok());
  EXPECT_FALSE(DecodeServerStatsReply("").ok());
}

TEST(Handshake, UnsupportedVersionIsUnavailableAndNamesBothVersions) {
  auto db = std::move(Database::Open({}).value());
  Server server(db.get());
  ASSERT_TRUE(server.Start().ok());

  auto sock = Socket::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(sock.ok());
  // Version 1 predates kMinProtocolVersion and must be refused (v2+ is
  // negotiated down instead — see the fallback test below).
  ASSERT_TRUE(WriteFrame(*sock, FrameKind::kHello,
                         EncodeHello(1, "v1-client"))
                  .ok());
  auto response = ReadFrame(*sock, WireLimits{}, 5000);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->kind, FrameKind::kError);
  Status error = DecodeError(response->payload);
  EXPECT_EQ(error.code(), StatusCode::kUnavailable);
  EXPECT_NE(error.message().find("protocol version 1"), std::string::npos)
      << error.ToString();
  EXPECT_NE(error.message().find(
                "server speaks " + std::to_string(kProtocolVersion)),
            std::string::npos)
      << error.ToString();
  server.Shutdown();
}

TEST(Handshake, OldV2ClientNegotiatesDownAndGetsTrailerFreeResults) {
  // An old client speaking protocol v2 sends raw-text Query payloads and
  // expects plain ResultSet responses; the new server must serve both.
  auto db = std::move(Database::Open({}).value());
  {
    lang::Interpreter interp(db.get());
    ASSERT_TRUE(interp
                    .ExecuteScript(
                        "create beer(name: string, alcperc: real);"
                        "insert(beer, {('pils', 5.0) : 2});",
                        [](const std::string&, const Relation&) {})
                    .ok());
  }
  Server server(db.get());
  ASSERT_TRUE(server.Start().ok());

  auto sock = Socket::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(
      WriteFrame(*sock, FrameKind::kHello, EncodeHello(2, "old-client")).ok());
  auto hello_response = ReadFrame(*sock, WireLimits{}, 5000);
  ASSERT_TRUE(hello_response.ok()) << hello_response.status().ToString();
  ASSERT_EQ(hello_response->kind, FrameKind::kHello);
  auto hello = DecodeHello(hello_response->payload);
  ASSERT_TRUE(hello.ok());
  EXPECT_EQ(hello->version, 2u);  // Negotiated down to the client's dialect.

  // v2 payload: the raw relation expression, no id prefix.
  ASSERT_TRUE(WriteFrame(*sock, FrameKind::kQuery, "beer").ok());
  auto response = ReadFrame(*sock, WireLimits{}, 5000);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->kind, FrameKind::kResultSet);
  // The strict v2 decoder must accept the payload byte-for-byte — any
  // trailer would surface as trailing garbage here.
  auto relations = DecodeResultSet(response->payload);
  ASSERT_TRUE(relations.ok()) << relations.status().ToString();
  ASSERT_EQ(relations->size(), 1u);
  EXPECT_EQ((*relations)[0].size(), 2u);
  server.Shutdown();
}

TEST(CancelCodec, RequestRoundTripsAndRejectsZeroAndTrailing) {
  std::string payload = EncodeCancelRequest(0xDEADBEEFCAFEull);
  auto id = DecodeCancelRequest(payload);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(*id, 0xDEADBEEFCAFEull);

  EXPECT_FALSE(DecodeCancelRequest("").ok());
  EXPECT_FALSE(DecodeCancelRequest(payload.substr(0, 3)).ok());
  EXPECT_FALSE(DecodeCancelRequest(payload + "x").ok());
  // Id 0 is never valid on the wire (it can never name a running query).
  EXPECT_FALSE(DecodeCancelRequest(std::string(8, '\0')).ok());
}

TEST(CancelCodec, ReplyRoundTrips) {
  for (bool delivered : {true, false}) {
    auto decoded = DecodeCancelReply(EncodeCancelReply(delivered));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, delivered);
  }
  EXPECT_FALSE(DecodeCancelReply("").ok());
  EXPECT_FALSE(DecodeCancelReply("\x02").ok());  // Only 0/1 are valid.
  EXPECT_FALSE(DecodeCancelReply(EncodeCancelReply(true) + "x").ok());
}

TEST(ErrorCodec, RetryAfterHintRoundTripsThroughErrorNotice) {
  Status original = Status::DeadlineExceeded("query 7 exceeded the deadline");
  std::string payload = EncodeErrorWithHint(original, 250);
  auto notice = DecodeErrorNotice(payload);
  ASSERT_TRUE(notice.ok()) << notice.status().ToString();
  EXPECT_EQ(notice->status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(notice->status.message(), original.message());
  EXPECT_EQ(notice->retry_after_ms, 250u);
  // Plain DecodeError tolerates the trailing hint (it delegates).
  Status decoded = DecodeError(payload);
  EXPECT_EQ(decoded.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(decoded.message(), original.message());
}

TEST(ErrorCodec, HintOfZeroEncodesTheLegacyShape) {
  Status original = Status::Cancelled("query 9 cancelled on request");
  EXPECT_EQ(EncodeErrorWithHint(original, 0), EncodeError(original));
  auto notice = DecodeErrorNotice(EncodeError(original));
  ASSERT_TRUE(notice.ok());
  EXPECT_EQ(notice->status.code(), StatusCode::kCancelled);
  EXPECT_EQ(notice->retry_after_ms, 0u);
}

TEST(ErrorCodec, GovernanceStatusCodesSurviveTheWire) {
  for (StatusCode code : {StatusCode::kCancelled,
                          StatusCode::kDeadlineExceeded,
                          StatusCode::kResourceExhausted}) {
    Status original(code, "governed kill");
    Status decoded = DecodeError(EncodeError(original));
    EXPECT_EQ(decoded.code(), code);
    EXPECT_EQ(decoded.message(), "governed kill");
  }
}

TEST(ErrorCodec, NoticeRefusesMalformedTrailers) {
  Status original = Status::DeadlineExceeded("killed");
  std::string payload = EncodeErrorWithHint(original, 250);
  // A partial trailer is neither the legacy nor the hinted shape.
  EXPECT_FALSE(DecodeErrorNotice(payload.substr(0, payload.size() - 1)).ok());
  EXPECT_FALSE(DecodeErrorNotice(payload + "x").ok());
  // An out-of-range status code byte is corruption, not a silent status.
  std::string bad = EncodeError(Status::InvalidArgument("x"));
  bad[0] = static_cast<char>(200);
  EXPECT_FALSE(DecodeErrorNotice(bad).ok());
}

TEST(Handshake, V3ClientAgainstV4ServerNegotiatesV3) {
  // The Cancel frame and the Error hint are v4-only; a v3 hello must
  // still negotiate cleanly down (kMinProtocolVersion stays 2).
  static_assert(kProtocolVersion == 4, "update this test with the protocol");
  static_assert(kMinProtocolVersion == 2,
                "v2/v3 compatibility must not regress");
  auto hello = DecodeHello(EncodeHello(3, "old-client"));
  ASSERT_TRUE(hello.ok());
  EXPECT_EQ(hello->version, 3u);
}

TEST(HostPort, ParsesAndRejects) {
  auto hp = ParseHostPort("127.0.0.1:7411");
  ASSERT_TRUE(hp.ok());
  EXPECT_EQ(hp->first, "127.0.0.1");
  EXPECT_EQ(hp->second, 7411);

  auto v6 = ParseHostPort("[::1]:9000");
  ASSERT_TRUE(v6.ok());
  EXPECT_EQ(v6->first, "::1");
  EXPECT_EQ(v6->second, 9000);

  EXPECT_FALSE(ParseHostPort("nohost").ok());
  EXPECT_FALSE(ParseHostPort("host:").ok());
  EXPECT_FALSE(ParseHostPort(":123").ok());
  EXPECT_FALSE(ParseHostPort("host:0").ok());
  EXPECT_FALSE(ParseHostPort("host:99999").ok());
  EXPECT_FALSE(ParseHostPort("host:12x").ok());
  EXPECT_FALSE(ParseHostPort("[::1]9000").ok());
}

}  // namespace
}  // namespace net
}  // namespace mra
