// Wire-protocol unit tests: frame encode/decode round trips, CRC and
// framing violations, size limits, and the payload codecs (Hello, Error,
// chunked ResultSet) on in-memory buffers — plus one loopback handshake
// test pinning the version-mismatch contract (Unavailable, both versions
// named).

#include "mra/net/protocol.h"

#include <gtest/gtest.h>

#include "mra/net/client.h"
#include "mra/net/server.h"
#include "mra/net/socket.h"
#include "mra/storage/serializer.h"

namespace mra {
namespace net {
namespace {

Relation SmallRelation() {
  Relation r(RelationSchema(
      "beer", {Attribute{"name", Type::String()},
               Attribute{"alcperc", Type::Real()}}));
  EXPECT_TRUE(r.Insert(Tuple({Value::Str("pils"), Value::Real(5.0)}), 2).ok());
  EXPECT_TRUE(
      r.Insert(Tuple({Value::Str("stout"), Value::Real(4.2)}), 1).ok());
  return r;
}

TEST(FrameCodec, RoundTripsEveryKind) {
  WireLimits limits;
  for (uint8_t k = 1; k <= 8; ++k) {
    FrameKind kind = static_cast<FrameKind>(k);
    std::string payload = "payload for " + std::string(FrameKindName(kind));
    std::string wire = EncodeFrame(kind, payload);
    auto frame = DecodeFrame(wire, limits);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->kind, kind);
    EXPECT_EQ(frame->payload, payload);
  }
}

TEST(FrameCodec, RoundTripsEmptyPayload) {
  std::string wire = EncodeFrame(FrameKind::kPing, "");
  EXPECT_EQ(wire.size(), kFrameHeaderBytes);
  auto frame = DecodeFrame(wire, WireLimits{});
  ASSERT_TRUE(frame.ok());
  EXPECT_TRUE(frame->payload.empty());
}

TEST(FrameCodec, RejectsBadMagic) {
  std::string wire = EncodeFrame(FrameKind::kPing, "x");
  wire[0] ^= 0x5a;
  auto frame = DecodeFrame(wire, WireLimits{});
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
}

TEST(FrameCodec, RejectsUnknownKind) {
  std::string wire = EncodeFrame(FrameKind::kPing, "x");
  wire[4] = 99;
  auto frame = DecodeFrame(wire, WireLimits{});
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
}

TEST(FrameCodec, CrcCoversKindByte) {
  // Flipping the kind to another *valid* kind must still fail the CRC.
  std::string wire = EncodeFrame(FrameKind::kQuery, "? beer");
  wire[4] = static_cast<char>(FrameKind::kScript);
  auto frame = DecodeFrame(wire, WireLimits{});
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
}

TEST(FrameCodec, RejectsCorruptPayload) {
  std::string wire = EncodeFrame(FrameKind::kQuery, "? beer");
  wire.back() ^= 0x01;
  auto frame = DecodeFrame(wire, WireLimits{});
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
}

TEST(FrameCodec, RejectsEveryTruncation) {
  std::string wire = EncodeFrame(FrameKind::kScript, "insert(beer, {...});");
  for (size_t len = 0; len < wire.size(); ++len) {
    auto frame = DecodeFrame(std::string_view(wire).substr(0, len),
                             WireLimits{});
    EXPECT_FALSE(frame.ok()) << "prefix of " << len << " bytes decoded";
  }
}

TEST(FrameCodec, RejectsTrailingBytes) {
  std::string wire = EncodeFrame(FrameKind::kPing, "x");
  wire += "junk";
  EXPECT_FALSE(DecodeFrame(wire, WireLimits{}).ok());
}

TEST(FrameCodec, EnforcesFrameSizeLimit) {
  WireLimits tight;
  tight.max_frame_bytes = 16;
  std::string wire =
      EncodeFrame(FrameKind::kScript, std::string(1000, 'x'));
  auto frame = DecodeFrame(wire, tight);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
  // The same frame passes under the default limit.
  EXPECT_TRUE(DecodeFrame(wire, WireLimits{}).ok());
}

TEST(FrameCodec, HeaderAloneIsValidatedBeforePayload) {
  // An adversarial header announcing 4GiB must be refused from the header
  // bytes alone — no payload allocation.
  std::string wire = EncodeFrame(FrameKind::kQuery, "q");
  storage::Encoder enc;
  enc.PutU32(0xffffff00u);
  std::string len_bytes = enc.TakeBuffer();
  wire.replace(5, 4, len_bytes);  // Overwrite payload_len in the header.
  auto header = ParseFrameHeader(
      std::string_view(wire).substr(0, kFrameHeaderBytes), WireLimits{});
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kInvalidArgument);
}

TEST(HelloCodec, RoundTrips) {
  std::string payload = EncodeHello(kProtocolVersion, "xra_repl");
  auto hello = DecodeHello(payload);
  ASSERT_TRUE(hello.ok());
  EXPECT_EQ(hello->version, kProtocolVersion);
  EXPECT_EQ(hello->peer, "xra_repl");
  EXPECT_FALSE(DecodeHello(payload + "x").ok());
  EXPECT_FALSE(DecodeHello(payload.substr(0, 3)).ok());
}

TEST(ErrorCodec, TransportsStatusCodeAndMessage) {
  Status original = Status::ParseError("unexpected token ')' at line 3");
  Status decoded = DecodeError(EncodeError(original));
  EXPECT_EQ(decoded.code(), original.code());
  EXPECT_EQ(decoded.message(), original.message());
}

TEST(ErrorCodec, RefusesMalformedPayloads) {
  EXPECT_EQ(DecodeError("").code(), StatusCode::kCorruption);
  // A payload claiming StatusCode 0 (OK) is nonsense for an Error frame.
  storage::Encoder enc;
  enc.PutU8(0);
  enc.PutString("not an error");
  EXPECT_EQ(DecodeError(enc.buffer()).code(), StatusCode::kCorruption);
}

TEST(ResultSetCodec, RoundTripsRelations) {
  Relation beer = SmallRelation();
  Relation empty(RelationSchema("empty_rel", {Attribute{"a", Type::Int()}}));
  std::string payload = EncodeResultSet({beer, empty});
  auto decoded = DecodeResultSet(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0], beer);
  EXPECT_EQ((*decoded)[1], empty);
}

TEST(ResultSetCodec, RoundTripsZeroRelations) {
  auto decoded = DecodeResultSet(EncodeResultSet({}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(ResultSetCodec, RefusesGarbage) {
  EXPECT_FALSE(DecodeResultSet("garbage").ok());
  std::string payload = EncodeResultSet({SmallRelation()});
  EXPECT_FALSE(DecodeResultSet(payload.substr(0, payload.size() - 1)).ok());
  EXPECT_FALSE(DecodeResultSet(payload + "x").ok());
}

TEST(ResultSetCodec, RoundTripsAcrossChunkBoundaries) {
  // Enough distinct rows for three chunks (two full, one partial) — the
  // decoder must reassemble them into one relation, multiplicities intact.
  Relation big(RelationSchema("nums", {Attribute{"n", Type::Int()}}));
  const uint64_t kRows = 2 * kResultSetChunkRows + 451;
  for (uint64_t i = 0; i < kRows; ++i) {
    ASSERT_TRUE(
        big.Insert(Tuple({Value::Int(static_cast<int64_t>(i))}), i % 3 + 1)
            .ok());
  }
  auto decoded = DecodeResultSet(EncodeResultSet({big}));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), 1u);
  EXPECT_EQ((*decoded)[0], big);
}

TEST(ResultSetCodec, ExactChunkMultipleRoundTrips) {
  // Edge case: the last chunk is exactly full, so only the 0-terminator
  // follows it.
  Relation big(RelationSchema("nums", {Attribute{"n", Type::Int()}}));
  for (uint64_t i = 0; i < kResultSetChunkRows; ++i) {
    ASSERT_TRUE(
        big.Insert(Tuple({Value::Int(static_cast<int64_t>(i))}), 1).ok());
  }
  auto decoded = DecodeResultSet(EncodeResultSet({big}));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ((*decoded)[0], big);
}

TEST(ResultSetCodec, RefusesZeroMultiplicityInChunk) {
  Relation beer = SmallRelation();
  storage::Encoder enc;
  enc.PutU32(1);
  enc.PutSchema(beer.schema());
  enc.PutU32(1);  // One-row chunk...
  enc.PutTuple(Tuple({Value::Str("pils"), Value::Real(5.0)}));
  enc.PutU64(0);  // ...carrying a nonsense multiplicity.
  enc.PutU32(0);
  auto decoded = DecodeResultSet(enc.buffer());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(ResultSetCodec, ImplausibleChunkCountFailsFast) {
  // A corrupt chunk header announcing 4 billion rows must fail at the
  // first missing tuple, not allocate or spin.
  Relation beer = SmallRelation();
  storage::Encoder enc;
  enc.PutU32(1);
  enc.PutSchema(beer.schema());
  enc.PutU32(0xfffffff0u);
  auto decoded = DecodeResultSet(enc.buffer());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(ResultSetCodec, MissingTerminatorIsRefused) {
  // Strip the trailing end-of-relation terminator (the final u32 0): the
  // decoder must report truncation instead of returning a relation.
  std::string payload = EncodeResultSet({SmallRelation()});
  EXPECT_FALSE(DecodeResultSet(payload.substr(0, payload.size() - 4)).ok());
}

TEST(Handshake, VersionMismatchIsUnavailableAndNamesBothVersions) {
  auto db = std::move(Database::Open({}).value());
  Server server(db.get());
  ASSERT_TRUE(server.Start().ok());

  auto sock = Socket::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(WriteFrame(*sock, FrameKind::kHello,
                         EncodeHello(kProtocolVersion - 1, "v1-client"))
                  .ok());
  auto response = ReadFrame(*sock, WireLimits{}, 5000);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->kind, FrameKind::kError);
  Status error = DecodeError(response->payload);
  EXPECT_EQ(error.code(), StatusCode::kUnavailable);
  EXPECT_NE(error.message().find("protocol version 1"), std::string::npos)
      << error.ToString();
  EXPECT_NE(error.message().find(
                "server speaks " + std::to_string(kProtocolVersion)),
            std::string::npos)
      << error.ToString();
  server.Shutdown();
}

TEST(HostPort, ParsesAndRejects) {
  auto hp = ParseHostPort("127.0.0.1:7411");
  ASSERT_TRUE(hp.ok());
  EXPECT_EQ(hp->first, "127.0.0.1");
  EXPECT_EQ(hp->second, 7411);

  auto v6 = ParseHostPort("[::1]:9000");
  ASSERT_TRUE(v6.ok());
  EXPECT_EQ(v6->first, "::1");
  EXPECT_EQ(v6->second, 9000);

  EXPECT_FALSE(ParseHostPort("nohost").ok());
  EXPECT_FALSE(ParseHostPort("host:").ok());
  EXPECT_FALSE(ParseHostPort(":123").ok());
  EXPECT_FALSE(ParseHostPort("host:0").ok());
  EXPECT_FALSE(ParseHostPort("host:99999").ok());
  EXPECT_FALSE(ParseHostPort("host:12x").ok());
  EXPECT_FALSE(ParseHostPort("[::1]9000").ok());
}

}  // namespace
}  // namespace net
}  // namespace mra
