// E19 — governance overhead: the E15 1M-row scan → filter → project
// batch pipeline with query-lifecycle governance armed (an ExecContext
// carrying a far-off deadline, a generous memory budget, and a live
// cancel token) versus no governance at all (a null ExecContext).
//
// The claim backing "deadlines and budgets on by default is safe" in
// docs/GOVERNANCE.md: the hot-path cost is one relaxed atomic load per
// NextBatch plus — only when armed — a steady_clock read and a token
// load, amortised over RowBatch::capacity rows — under 2% end to end.
// The summary block times both modes best-of-5, asserts identical
// drained cardinalities, and prints "REGRESSION" when the overhead
// crosses 2%, so the CI smoke run can grep for it.
//
//   $ ./build/bench/e19_governance_overhead                  # full 1M rows
//   $ ./build/bench/e19_governance_overhead --rows 50000     # CI smoke

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>

#include "bench_util.h"
#include "mra/exec/exec_context.h"
#include "mra/exec/operator.h"
#include "mra/expr/scalar_expr.h"

namespace mra {
namespace bench {
namespace {

constexpr int64_t kValueRange = 1'000'000;

Relation MakePipelineInput(size_t rows) {
  util::IntRelationOptions options;
  options.name = "r";
  options.distinct_tuples = rows;
  options.arity = 2;
  options.value_range = kValueRange;
  options.duplicates = util::DupDistribution::kUniform;
  options.max_multiplicity = 4;
  options.seed = 17;
  return Unwrap(util::MakeIntRelation(options));
}

// The E15 pipeline: σ_{%1 < kValueRange/2} then π_{%1}, both stages on
// the batch fast paths — the configuration where per-call bookkeeping is
// the thinnest slice and governance overhead is *most* visible.
exec::PhysOpPtr BuildPipeline(const Relation* input) {
  auto filter = std::make_unique<exec::FilterOp>(
      Lt(Attr(0), Lit(kValueRange / 2)),
      std::make_unique<exec::ScanOp>(input));
  RelationSchema out_schema("p", {Attribute{"c1", Type::Int()}});
  std::vector<ExprPtr> exprs;
  exprs.push_back(Attr(0));
  return std::make_unique<exec::ComputeOp>(
      std::move(exprs), std::move(out_schema), std::move(filter));
}

uint64_t DrainPipeline(exec::PhysicalOperator& root) {
  MRA_CHECK(root.Open().ok());
  uint64_t weighted = 0;
  exec::RowBatch batch(exec::kDefaultBatchSize);
  while (true) {
    MRA_CHECK(root.NextBatch(batch).ok());
    if (batch.empty()) break;
    for (const exec::Row& row : batch) weighted += row.count;
  }
  root.Close();
  return weighted;
}

// One drain, governed or not.  The governed context carries everything a
// production query would — a one-hour deadline, a 4GiB budget, and a live
// (never-flipped) cancel token — so every armed check runs for real.
double SecondsToDrain(const Relation* input, bool governed,
                      uint64_t* weighted_out) {
  exec::PhysOpPtr root = BuildPipeline(input);
  exec::ExecContext ctx;
  if (governed) {
    ctx.set_query_id(19);
    ctx.SetDeadlineAfterMs(3'600'000);
    ctx.SetMemoryBudget(4ull << 30);
    ctx.SetCancelToken(std::make_shared<std::atomic<bool>>(false));
    root->SetExecContext(&ctx);
  }
  auto start = std::chrono::steady_clock::now();
  *weighted_out = DrainPipeline(*root);
  auto end = std::chrono::steady_clock::now();
  MRA_CHECK(ctx.kill_reason() == exec::KillReason::kNone)
      << "governed drain was killed: " << exec::KillReasonName(ctx.kill_reason());
  return std::chrono::duration<double>(end - start).count();
}

void BM_PipelineDrain(benchmark::State& state) {
  Relation input = MakePipelineInput(100'000);
  bool governed = state.range(0) != 0;
  for (auto _ : state) {
    uint64_t weighted = 0;
    benchmark::DoNotOptimize(SecondsToDrain(&input, governed, &weighted));
    benchmark::DoNotOptimize(weighted);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(input.distinct_size()));
}
BENCHMARK(BM_PipelineDrain)->Arg(0)->Arg(1);

void VerifyOverhead(size_t rows) {
  Header("E19: governance overhead",
         "Claim: armed query governance (deadline + memory budget + cancel "
         "token, checked every batch) costs < 2% on the E15 1M-row batch "
         "pipeline.");
  Relation input = MakePipelineInput(rows);

  // Interleaved best-of-5 per mode: wall-clock seconds, so guard against
  // scheduler hiccups polluting either side of the ratio.
  double off_s = 1e30;
  double on_s = 1e30;
  uint64_t off_weighted = 0;
  uint64_t on_weighted = 0;
  for (int rep = 0; rep < 5; ++rep) {
    off_s = std::min(off_s, SecondsToDrain(&input, false, &off_weighted));
    on_s = std::min(on_s, SecondsToDrain(&input, true, &on_weighted));
  }
  MRA_CHECK(off_weighted == on_weighted)
      << "governance changed the drained bag cardinality";

  double overhead_pct = (on_s - off_s) / off_s * 100.0;
  Row("%-12s %-12s %-12s %-14s %-10s", "rows", "gov-off s", "gov-on s",
      "rows/s gov-on", "overhead");
  Row("%-12zu %-12.3f %-12.3f %-14.3g %.2f%%", rows, off_s, on_s,
      static_cast<double>(rows) / on_s, overhead_pct);
  if (overhead_pct >= 2.0) {
    Row("REGRESSION: governance overhead %.2f%% >= 2%% budget",
        overhead_pct);
  }
  Row("");
  Row("drained: %llu weighted rows under both modes",
      static_cast<unsigned long long>(on_weighted));
}

}  // namespace
}  // namespace bench
}  // namespace mra

int main(int argc, char** argv) {
  size_t rows = 1'000'000;
  // Strip --rows N before benchmark::Initialize sees (and rejects) it.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      rows = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  mra::bench::VerifyOverhead(rows);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  mra::bench::DumpMetricsJson("E19");
  return 0;
}
