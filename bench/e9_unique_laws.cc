// E9 — §3.3's δ note: δ(E1 ⊎ E2) = δ(δE1 ⊎ δE2), even though δ does not
// distribute over ⊎ outright.
//
// The rewrite pre-deduplicates the union's inputs.  Whether that pays
// depends on the duplicate factor: for near-set inputs it only adds passes;
// for duplicate-heavy inputs it shrinks the union's intermediate.  With the
// count-map representation both sides are close (duplicates are already
// compressed), so the experiment reports where the crossover falls — and
// verifies the law at every point.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "mra/algebra/ops.h"

namespace mra {
namespace bench {
namespace {

// With value_range << distinct_tuples the generated relations contain many
// *generated* duplicate tuples, which the expansion below turns into real
// multiplicity (and, for the expanded-stream benches, real repeated work).
Relation MakeInput(size_t distinct, uint64_t max_mult, uint64_t seed) {
  util::IntRelationOptions options;
  options.arity = 1;
  options.distinct_tuples = distinct;
  options.value_range = static_cast<int64_t>(distinct / 2 + 1);
  options.duplicates = max_mult <= 1 ? util::DupDistribution::kNone
                                     : util::DupDistribution::kUniform;
  options.max_multiplicity = max_mult;
  options.seed = seed;
  return Unwrap(util::MakeIntRelation(options));
}

void BM_UniqueOverUnionDirect(benchmark::State& state) {
  Relation a = MakeInput(50000, state.range(0), 91);
  Relation b = MakeInput(50000, state.range(0), 92);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unwrap(ops::Unique(Unwrap(ops::Union(a, b)))));
  }
}
BENCHMARK(BM_UniqueOverUnionDirect)->Arg(1)->Arg(8)->Arg(64);

void BM_UniqueOverUnionPreDedup(benchmark::State& state) {
  Relation a = MakeInput(50000, state.range(0), 91);
  Relation b = MakeInput(50000, state.range(0), 92);
  for (auto _ : state) {
    Relation da = Unwrap(ops::Unique(a));
    Relation db = Unwrap(ops::Unique(b));
    benchmark::DoNotOptimize(Unwrap(ops::Unique(Unwrap(ops::Union(da, db)))));
  }
}
BENCHMARK(BM_UniqueOverUnionPreDedup)->Arg(1)->Arg(8)->Arg(64);

void Report() {
  Header("E9: δ over ⊎ (§3.3 note)",
         "Claim: δ(E1⊎E2) ≠ δE1⊎δE2 in general, but "
         "δ(E1⊎E2) = δ(δE1⊎δE2) always holds.");
  Row("%-12s %-14s %-14s %-18s %-8s", "max_mult", "|E1⊎E2|", "|δ(E1⊎E2)|",
      "|δE1⊎δE2|", "law holds?");
  for (uint64_t mult : {1, 8, 64}) {
    Relation a = MakeInput(20000, mult, 91);
    Relation b = MakeInput(20000, mult, 92);
    Relation u = Unwrap(ops::Union(a, b));
    Relation direct = Unwrap(ops::Unique(u));
    Relation naive =
        Unwrap(ops::Union(Unwrap(ops::Unique(a)), Unwrap(ops::Unique(b))));
    Relation rewrite = Unwrap(ops::Unique(naive));
    MRA_CHECK(direct.Equals(rewrite));
    Row("%-12llu %-14llu %-14llu %-18llu %-8s",
        static_cast<unsigned long long>(mult),
        static_cast<unsigned long long>(u.size()),
        static_cast<unsigned long long>(direct.size()),
        static_cast<unsigned long long>(naive.size()),
        "yes");
    // And the naive distribution differs whenever supports overlap:
    if (!direct.Equals(naive)) {
      Row("%-12s note: δE1 ⊎ δE2 has %llu tuples — NOT equal to "
          "δ(E1⊎E2), as the paper warns",
          "",
          static_cast<unsigned long long>(naive.size()));
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace mra

int main(int argc, char** argv) {
  mra::bench::Report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
