// E18 — cost-based optimizer v2: join ordering steered by ANALYZE
// statistics.
//
// Two multi-join query shapes over a generated warehouse:
//
//  * star: fact ⋈ dim (fan-out 8) ⋈ sel (selectivity ~1/16), written in
//    the worst front-end order (the widening dimension first);
//  * chain: r0 ⋈ r1 ⋈ r2 ⋈ r3 with sizes descending along the path, so
//    the profitable order starts from the small end.
//
// Every relation is ANALYZEd first (equi-depth histograms + distinct
// sketches), then each query runs twice: the front-end order with join
// reordering disabled, and the full cost-based pipeline.  Both plans must
// return the identical multiset (asserted); the summary reports modeled
// plan cost, wall time, the adopted order, and the median symmetric
// estimation error (q-error, max(est,act)/min(est,act)) across the
// cost-based plan's operators — the acceptance bar is a median ≤ 2.0 with
// fresh statistics.  "REGRESSION" is printed when the cost-based plan is
// slower than the front-end order, so CI can grep for it.
//
//   $ ./build/bench/e18_optimizer_v2                # full 200k-row summary
//   $ ./build/bench/e18_optimizer_v2 --rows 20000   # CI smoke scale

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "mra/exec/physical_planner.h"
#include "mra/opt/join_order.h"
#include "mra/opt/optimizer.h"
#include "mra/opt/stats.h"
#include "mra/stats/table_statistics.h"

namespace mra {
namespace bench {
namespace {

constexpr int64_t kKeyRange = 256;

// Builds the warehouse and collects fresh ANALYZE snapshots for every
// relation — the statistics the cost model steers by.
Catalog MakeWarehouse(size_t rows) {
  Catalog catalog;
  // Star: fact(c1 → dim.c1 with fan-out ~8, c2 → sel.c1 hitting ~1/16).
  AddIntRelation(&catalog, "fact", rows, kKeyRange,
                 util::DupDistribution::kUniform, 2, 181);
  AddIntRelation(&catalog, "dim", 2048, kKeyRange,
                 util::DupDistribution::kUniform, 1, 182);
  AddIntRelation(&catalog, "sel", 16, kKeyRange,
                 util::DupDistribution::kUniform, 1, 183);
  // Chain: sizes descend along the join path.
  AddIntRelation(&catalog, "r0", rows, 128,
                 util::DupDistribution::kUniform, 2, 184);
  AddIntRelation(&catalog, "r1", 4096, 128,
                 util::DupDistribution::kUniform, 1, 185);
  AddIntRelation(&catalog, "r2", 512, 128,
                 util::DupDistribution::kUniform, 1, 186);
  AddIntRelation(&catalog, "r3", 8, 128,
                 util::DupDistribution::kUniform, 1, 187);
  for (const std::string& name : catalog.RelationNames()) {
    const Relation* rel = Unwrap(catalog.GetRelation(name));
    Unwrap(catalog.SetStatistics(
        name, stats::Analyze(*rel, catalog.logical_time())));
  }
  return catalog;
}

PlanPtr ScanOf(const Catalog& catalog, const std::string& name) {
  return Plan::Scan(name, Unwrap(catalog.GetRelation(name))->schema());
}

// Left-deep chain over `names` joining column 1 of the running result to
// column 0 of each next relation (all relations here have arity 2).
PlanPtr ChainQuery(const Catalog& catalog,
                   const std::vector<std::string>& names) {
  PlanPtr acc = ScanOf(catalog, names[0]);
  for (size_t i = 1; i < names.size(); ++i) {
    acc = Unwrap(Plan::Join(Eq(Attr(2 * i - 1), Attr(2 * i)), acc,
                            ScanOf(catalog, names[i])));
  }
  return acc;
}

// The star in its worst front-end order: the widening dim first, the
// selective filter last.
PlanPtr StarQuery(const Catalog& catalog) {
  PlanPtr fact = ScanOf(catalog, "fact");
  PlanPtr j1 = Unwrap(
      Plan::Join(Eq(Attr(0), Attr(2)), fact, ScanOf(catalog, "dim")));
  return Unwrap(
      Plan::Join(Eq(Attr(1), Attr(4)), j1, ScanOf(catalog, "sel")));
}

// Modeled cost of a physical-order choice, using the same weights as the
// enumerator (join_order.h): hash build ~2x probe, plus output
// materialisation, summed over every join of the tree.
double ModeledCost(const Plan& plan, const Catalog& catalog,
                   opt::StatsCache* cache) {
  double cost = 0.0;
  for (size_t i = 0; i < plan.num_children(); ++i) {
    cost += ModeledCost(*plan.child(i), catalog, cache);
  }
  if (plan.kind() == PlanKind::kJoin || plan.kind() == PlanKind::kProduct) {
    double build = opt::EstimateCardinality(*plan.child(1), catalog, cache);
    double probe = opt::EstimateCardinality(*plan.child(0), catalog, cache);
    double out = opt::EstimateCardinality(plan, catalog, cache);
    if (build >= 0 && probe >= 0 && out >= 0) {
      cost += opt::kBuildCostPerRow * build + opt::kProbeCostPerRow * probe +
              opt::kOutputCostPerRow * out;
    }
  }
  return cost;
}

/// Best-of-3 wall-clock seconds to execute `plan`.
double SecondsToRun(const PlanPtr& plan, const Catalog& catalog) {
  double best = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(Unwrap(exec::ExecutePlan(plan, catalog)));
    auto end = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double>(end - start).count());
  }
  return best;
}

// Executes the cost-based plan with the estimator wired in and returns the
// median symmetric q-error over all operators that carry an estimate.
double MedianQError(const PlanPtr& plan, const Catalog& catalog) {
  opt::StatsCache cache(&catalog);
  exec::CardinalityEstimator estimator = [&](const Plan& node) {
    return opt::EstimateCardinality(node, catalog, &cache);
  };
  exec::PhysOpPtr root =
      Unwrap(exec::LowerPlan(plan, catalog, &estimator));
  Unwrap(exec::ExecuteToRelation(*root).status());

  std::vector<double> errors;
  std::vector<const exec::PhysicalOperator*> pending = {root.get()};
  while (!pending.empty()) {
    const exec::PhysicalOperator* op = pending.back();
    pending.pop_back();
    for (const exec::PhysicalOperator* child : op->children()) {
      pending.push_back(child);
    }
    if (op->estimated_rows() < 0) continue;
    double est = std::max(1.0, op->estimated_rows());
    double act = std::max(1.0, static_cast<double>(
                                   op->metrics().weighted_rows));
    errors.push_back(std::max(est, act) / std::min(est, act));
  }
  MRA_CHECK(!errors.empty());
  std::sort(errors.begin(), errors.end());
  return errors[errors.size() / 2];
}

void CompareOrders(const char* label, const PlanPtr& raw,
                   const Catalog& catalog) {
  opt::OptimizerOptions frontend;
  frontend.join_reorder = false;
  opt::Optimizer naive(&catalog, frontend);
  opt::Optimizer cbo(&catalog);

  PlanPtr naive_plan = Unwrap(naive.Optimize(raw));
  opt::OptimizerReport report;
  PlanPtr cbo_plan = Unwrap(cbo.Optimize(raw, &report));

  Relation naive_result = Unwrap(exec::ExecutePlan(naive_plan, catalog));
  Relation cbo_result = Unwrap(exec::ExecutePlan(cbo_plan, catalog));
  MRA_CHECK(naive_result.Equals(cbo_result))
      << label << ": cost-based reorder changed the result multiset";

  opt::StatsCache cache(&catalog);
  double naive_cost = ModeledCost(*naive_plan, catalog, &cache);
  double cbo_cost = ModeledCost(*cbo_plan, catalog, &cache);
  double naive_s = SecondsToRun(naive_plan, catalog);
  double cbo_s = SecondsToRun(cbo_plan, catalog);
  double qerror = MedianQError(cbo_plan, catalog);
  double speedup = naive_s / cbo_s;

  std::string order = "(front-end order kept)";
  for (const std::string& entry : report.entries) {
    if (entry.rfind("reordered: ", 0) == 0) {
      order = entry.substr(std::strlen("reordered: "));
    }
  }
  char speedup_text[32];
  std::snprintf(speedup_text, sizeof(speedup_text), "%.2fx", speedup);
  Row("%-6s %-12.0f %-12.0f %-11.4f %-11.4f %-8.2f %-8s %s", label,
      naive_cost, cbo_cost, naive_s, cbo_s, qerror, speedup_text,
      order.c_str());
  if (speedup < 1.0) {
    Row("REGRESSION: %s cost-based plan slower than the front-end order "
        "(%.2fx)", label, speedup);
  }
  if (qerror > 2.0) {
    Row("WARNING: %s median q-error %.2f exceeds the 2.0 acceptance bar",
        label, qerror);
  }
}

void Summary(size_t rows) {
  Header("E18: cost-based optimizer v2 (histograms + join ordering)",
         "Claim: with fresh ANALYZE statistics the DP join-order enumerator "
         "picks a cheaper bracketing than the front-end order on star and "
         "chain shapes, never changes the result multiset, and estimates "
         "with median symmetric error (q-error) <= 2.0.");
  Catalog catalog = MakeWarehouse(rows);
  Row("%-6s %-12s %-12s %-11s %-11s %-8s %-8s %s", "shape", "cost(fe)",
      "cost(cbo)", "fe s", "cbo s", "qerr", "speedup", "adopted order");
  CompareOrders("star", StarQuery(catalog), catalog);
  CompareOrders("chain", ChainQuery(catalog, {"r0", "r1", "r2", "r3"}),
                catalog);
  Row("");
  Row("fact/r0 rows=%zu, dim fan-out ~8, sel hits ~1/16; fe = front-end "
      "order (reorder disabled), cbo = cost-based", rows);
}

// --- Microbenchmarks at fixed scales. ---

void RunStar(benchmark::State& state, bool reorder) {
  Catalog catalog = MakeWarehouse(static_cast<size_t>(state.range(0)));
  opt::OptimizerOptions options;
  options.join_reorder = reorder;
  opt::Optimizer optimizer(&catalog, options);
  PlanPtr plan = Unwrap(optimizer.Optimize(StarQuery(catalog)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unwrap(exec::ExecutePlan(plan, catalog)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_StarFrontEndOrder(benchmark::State& state) { RunStar(state, false); }
BENCHMARK(BM_StarFrontEndOrder)->Arg(50'000)->Arg(200'000);

void BM_StarCostBased(benchmark::State& state) { RunStar(state, true); }
BENCHMARK(BM_StarCostBased)->Arg(50'000)->Arg(200'000);

void BM_Analyze(benchmark::State& state) {
  util::IntRelationOptions options;
  options.name = "a";
  options.distinct_tuples = static_cast<size_t>(state.range(0));
  options.value_range = 1 << 16;
  options.max_multiplicity = 4;
  options.seed = 188;
  Relation rel = Unwrap(util::MakeIntRelation(options));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::Analyze(rel, 0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Analyze)->Arg(100'000)->Arg(1'000'000);

}  // namespace
}  // namespace bench
}  // namespace mra

int main(int argc, char** argv) {
  size_t rows = 200'000;
  // Strip --rows N before benchmark::Initialize sees (and rejects) it.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      rows = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  mra::bench::Summary(rows);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  mra::bench::DumpMetricsJson("E18");
  return 0;
}
