// E7 — Definitions 3.3/3.4: aggregate functions and groupby.
//
// Scaling of the multiplicity-weighted aggregates: cost grows with the
// number of *distinct* tuples, not the multi-set cardinality — duplicates
// aggregate in O(1) via their counts.  The sweep varies group count and
// duplicate factor and reports CNT/SUM/AVG over the generated beer data.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "mra/algebra/ops.h"
#include "mra/exec/physical_planner.h"

namespace mra {
namespace bench {
namespace {

Relation MakeMeasurements(size_t distinct, size_t groups, uint64_t mult) {
  Relation r(RelationSchema("m", {{"g", Type::Int()}, {"v", Type::Int()}}));
  std::mt19937_64 rng(77);
  std::uniform_int_distribution<int64_t> value(0, 999);
  for (size_t i = 0; i < distinct; ++i) {
    r.InsertUnchecked(
        Tuple({Value::Int(static_cast<int64_t>(i % groups)),
               Value::Int(value(rng))}),
        mult);
  }
  return r;
}

void BM_GroupByGroups(benchmark::State& state) {
  Relation r = MakeMeasurements(100000, state.range(0), 1);
  std::vector<AggSpec> aggs = {{AggKind::kCnt, 0, "n"},
                               {AggKind::kSum, 1, "s"},
                               {AggKind::kAvg, 1, "a"}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unwrap(ops::GroupBy({0}, aggs, r)));
  }
}
BENCHMARK(BM_GroupByGroups)->Arg(10)->Arg(1000)->Arg(100000);

void BM_GroupByMultiplicity(benchmark::State& state) {
  // Same distinct size, growing multiplicities: time should stay flat —
  // the representational win of bag semantics.
  Relation r = MakeMeasurements(50000, 1000, state.range(0));
  std::vector<AggSpec> aggs = {{AggKind::kCnt, 0, "n"},
                               {AggKind::kSum, 1, "s"}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unwrap(ops::GroupBy({0}, aggs, r)));
  }
  state.counters["total_tuples"] =
      static_cast<double>(r.size());
}
BENCHMARK(BM_GroupByMultiplicity)->Arg(1)->Arg(16)->Arg(256);

void BM_GlobalAggregates(benchmark::State& state) {
  Relation r = MakeMeasurements(state.range(0), 1, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unwrap(Aggregate(AggKind::kSum, 1, r)));
    benchmark::DoNotOptimize(Unwrap(Aggregate(AggKind::kMin, 1, r)));
    benchmark::DoNotOptimize(Unwrap(Aggregate(AggKind::kMax, 1, r)));
  }
}
BENCHMARK(BM_GlobalAggregates)->Arg(10000)->Arg(100000);

void BM_Example32AtScale(benchmark::State& state) {
  Catalog catalog = MakeBeerCatalog(state.range(0), 2.0);
  PlanPtr beer = Plan::Scan("beer", Unwrap(catalog.GetRelation("beer"))->schema());
  PlanPtr brewery =
      Plan::Scan("brewery", Unwrap(catalog.GetRelation("brewery"))->schema());
  PlanPtr join = Unwrap(Plan::Join(Eq(Attr(1), Attr(3)), std::move(beer),
                                   std::move(brewery)));
  PlanPtr plan = Unwrap(Plan::GroupBy(
      {5}, {{AggKind::kAvg, 2, "avg"}, {AggKind::kCnt, 0, "n"}},
      std::move(join)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unwrap(exec::ExecutePlan(plan, catalog)));
  }
}
BENCHMARK(BM_Example32AtScale)->Arg(10000)->Arg(100000);

void Report() {
  Header("E7: aggregates over multi-sets (Definitions 3.3/3.4)",
         "Claim: aggregates are multiplicity-weighted and cost O(distinct), "
         "not O(total).");
  Row("%-14s %-14s %-14s %-14s %-14s", "multiplicity", "total", "CNT",
      "SUM", "AVG");
  for (uint64_t mult : {1, 16, 256}) {
    Relation r = MakeMeasurements(10000, 100, mult);
    Value cnt = Unwrap(Aggregate(AggKind::kCnt, 1, r));
    Value sum = Unwrap(Aggregate(AggKind::kSum, 1, r));
    Value avg = Unwrap(Aggregate(AggKind::kAvg, 1, r));
    Row("%-14llu %-14llu %-14s %-14s %-14s",
        static_cast<unsigned long long>(mult),
        static_cast<unsigned long long>(r.size()), cnt.ToString().c_str(),
        sum.ToString().c_str(), avg.ToString().c_str());
  }
  Row("");
  Row("(CNT/SUM scale linearly with multiplicity while the timing stays "
      "flat — see BM_GroupByMultiplicity.)");
}

}  // namespace
}  // namespace bench
}  // namespace mra

int main(int argc, char** argv) {
  mra::bench::Report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
