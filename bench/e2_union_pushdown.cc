// E2 — Theorem 3.2: σ_p(E1 ⊎ E2) = σ_pE1 ⊎ σ_pE2 (and π likewise).
//
// The equivalence is the licence for the optimizer's pushdown pass; the
// experiment verifies it and measures the win: filtering before the union
// avoids materialising the unfiltered whole.  (With our streaming UnionAll
// the win is the avoided intermediate inserts; at higher selectivities the
// two converge — the crossover is part of the reported series.)

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "mra/algebra/ops.h"
#include "mra/exec/physical_planner.h"
#include "mra/opt/optimizer.h"

namespace mra {
namespace bench {
namespace {

// Selectivity is controlled through the constant in x < c with x uniform
// in [0, 1000).
Catalog MakeCatalog(size_t n) {
  Catalog catalog;
  AddIntRelation(&catalog, "r", n, 1000, util::DupDistribution::kUniform, 4,
                 31);
  AddIntRelation(&catalog, "s", n, 1000, util::DupDistribution::kUniform, 4,
                 32);
  return catalog;
}

PlanPtr SelectOverUnion(const Catalog& catalog, int64_t cutoff) {
  PlanPtr r = Plan::Scan("r", Unwrap(catalog.GetRelation("r"))->schema());
  PlanPtr s = Plan::Scan("s", Unwrap(catalog.GetRelation("s"))->schema());
  PlanPtr u = Unwrap(Plan::Union(std::move(r), std::move(s)));
  return Unwrap(Plan::Select(Lt(Attr(0), Lit(cutoff)), std::move(u)));
}

void RunPlan(benchmark::State& state, bool optimize, int64_t cutoff) {
  Catalog catalog = MakeCatalog(state.range(0));
  PlanPtr plan = SelectOverUnion(catalog, cutoff);
  if (optimize) {
    opt::Optimizer optimizer(&catalog);
    plan = Unwrap(optimizer.Optimize(plan));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unwrap(EvaluatePlan(*plan, catalog)));
  }
}

void BM_SelectAboveUnion_Sel10(benchmark::State& state) {
  RunPlan(state, false, 100);
}
void BM_SelectPushedDown_Sel10(benchmark::State& state) {
  RunPlan(state, true, 100);
}
void BM_SelectAboveUnion_Sel90(benchmark::State& state) {
  RunPlan(state, false, 900);
}
void BM_SelectPushedDown_Sel90(benchmark::State& state) {
  RunPlan(state, true, 900);
}
BENCHMARK(BM_SelectAboveUnion_Sel10)->Arg(10000)->Arg(100000);
BENCHMARK(BM_SelectPushedDown_Sel10)->Arg(10000)->Arg(100000);
BENCHMARK(BM_SelectAboveUnion_Sel90)->Arg(10000)->Arg(100000);
BENCHMARK(BM_SelectPushedDown_Sel90)->Arg(10000)->Arg(100000);

void VerifyTheorem() {
  Header("E2: Theorem 3.2 — selection/projection pushdown over ⊎",
         "Claim: σ and π distribute over ⊎ in the bag algebra, enabling "
         "the classical pushdown optimizations unchanged.");
  Row("%-10s %-12s %-16s %-16s %-8s", "n", "selectivity", "|σ(E1⊎E2)|",
      "|σE1 ⊎ σE2|", "equal?");
  for (size_t n : {1000, 10000}) {
    Catalog catalog = MakeCatalog(n);
    const Relation* r = Unwrap(catalog.GetRelation("r"));
    const Relation* s = Unwrap(catalog.GetRelation("s"));
    for (int64_t cutoff : {100, 500, 900}) {
      ExprPtr pred = Lt(Attr(0), Lit(cutoff));
      Relation above = Unwrap(ops::Select(pred, Unwrap(ops::Union(*r, *s))));
      Relation below =
          Unwrap(ops::Union(Unwrap(ops::Select(pred, *r)),
                            Unwrap(ops::Select(pred, *s))));
      Row("%-10zu %-12.2f %-16llu %-16llu %-8s", n, cutoff / 1000.0,
          static_cast<unsigned long long>(above.size()),
          static_cast<unsigned long long>(below.size()),
          above.Equals(below) ? "yes" : "NO!");
      MRA_CHECK(above.Equals(below));
    }
    // π over ⊎ as well.
    Relation pa = Unwrap(ops::ProjectIndexes({0}, Unwrap(ops::Union(*r, *s))));
    Relation pb = Unwrap(ops::Union(Unwrap(ops::ProjectIndexes({0}, *r)),
                                    Unwrap(ops::ProjectIndexes({0}, *s))));
    MRA_CHECK(pa.Equals(pb));
    Row("%-10zu %-12s %-16llu %-16llu %-8s", n, "π over ⊎",
        static_cast<unsigned long long>(pa.size()),
        static_cast<unsigned long long>(pb.size()), "yes");
  }
}

}  // namespace
}  // namespace bench
}  // namespace mra

int main(int argc, char** argv) {
  mra::bench::VerifyTheorem();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
