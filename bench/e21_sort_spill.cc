// E21 — external sort, weighted Top-K, and the sort-merge join strategy
// (docs/EXECUTION.md "Ordering and spill", docs/OPTIMIZER.md).
//
// The claims, at the 1M-row scale:
//   * the spilling sort produces the identical bag to the in-memory sort
//     (asserted, not timed) and completes within 20x of it — external
//     merge costs I/O and re-decoding, but must stay in the same decade;
//   * Top-K under a LIMIT beats the full sort by >= 1.5x, because the
//     weighted heap prunes rows that can never reach the top k before
//     they are sorted or spilled;
//   * the sort-merge join agrees with the hash join on the same equi-join
//     (asserted) — its time is reported for the cost model's reference.
//
// Violations print "REGRESSION" lines for the CI smoke grep.
//
//   $ ./build/bench/e21_sort_spill               # full 1M-row run
//   $ ./build/bench/e21_sort_spill --rows 50000  # CI smoke scale

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>

#include "bench_util.h"
#include "mra/exec/operator.h"
#include "mra/exec/sort.h"
#include "mra/expr/scalar_expr.h"

namespace mra {
namespace bench {
namespace {

Relation MakeInput(size_t distinct, uint64_t seed, const char* name) {
  util::IntRelationOptions options;
  options.name = name;
  options.distinct_tuples = distinct;
  options.arity = 2;
  options.value_range = static_cast<int64_t>(distinct) * 4;
  options.duplicates = util::DupDistribution::kUniform;
  options.max_multiplicity = 4;
  options.seed = seed;
  return Unwrap(util::MakeIntRelation(options));
}

// Run cap sized for ~8 merge runs at any --rows scale (a 2-int row buffers
// at roughly 140 bytes): enough fan-in to exercise the k-way merge even in
// the CI smoke run, not so many runs that open file handles dominate.
uint64_t RunBytesFor(size_t rows) {
  return std::max<uint64_t>(rows * 140 / 8, 16 << 10);
}

exec::PhysOpPtr FullSort(const Relation* input, uint64_t spill_bytes) {
  return std::make_unique<exec::SortOp>(
      std::vector<size_t>{1, 0}, std::vector<bool>{false, true}, 0,
      spill_bytes, std::make_unique<exec::ScanOp>(input));
}

exec::PhysOpPtr TopK(const Relation* input, uint64_t limit) {
  return std::make_unique<exec::SortOp>(
      std::vector<size_t>{1, 0}, std::vector<bool>{false, true}, limit,
      /*spill_bytes=*/0, std::make_unique<exec::ScanOp>(input));
}

uint64_t Drain(exec::PhysicalOperator& root) {
  MRA_CHECK(root.Open().ok());
  exec::RowBatch batch;
  uint64_t weighted = 0;
  while (true) {
    MRA_CHECK(root.NextBatch(batch).ok());
    if (batch.empty()) break;
    for (const exec::Row& row : batch) weighted += row.count;
  }
  root.Close();
  return weighted;
}

double SecondsToDrain(const std::function<exec::PhysOpPtr()>& make,
                      uint64_t* weighted_out) {
  double best = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    exec::PhysOpPtr root = make();
    auto start = std::chrono::steady_clock::now();
    *weighted_out = Drain(*root);
    auto end = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double>(end - start).count());
  }
  return best;
}

void VerifySortAndSpill(size_t rows) {
  Header("E21: external sort, Top-K, sort-merge join",
         "Claim: the spilling sort matches the in-memory bag and stays "
         "within 20x of it; Top-K (limit 100) beats the full sort by "
         ">= 1.5x; the sort-merge join agrees with the hash join.");

  Relation input = MakeInput(rows, 31, "sortin");
  const uint64_t run_bytes = RunBytesFor(rows);

  // Correctness gates before anything is timed.
  {
    Relation in_memory = Unwrap(exec::ExecuteToRelation(*FullSort(&input, 0)));
    exec::PhysOpPtr spilling_op = FullSort(&input, run_bytes);
    Relation spilled = Unwrap(exec::ExecuteToRelation(*spilling_op));
    MRA_CHECK(spilled.Equals(in_memory))
        << "spilling sort changed the result multiset";
    auto* sort = static_cast<exec::SortOp*>(spilling_op.get());
    Row("spill runs at %zu rows / %llu-byte cap: %zu", rows,
        static_cast<unsigned long long>(run_bytes), sort->spilled_runs());
    if (sort->spilled_runs() == 0) {
      Row("REGRESSION: the spilling configuration never spilled — the "
          "external path went unmeasured");
    }
  }

  Row("%-22s %-12s %-10s", "variant", "seconds", "vs mem");
  uint64_t weighted = 0;
  double mem_s = SecondsToDrain([&] { return FullSort(&input, 0); },
                                &weighted);
  Row("%-22s %-12.4f %-10s", "full sort (memory)", mem_s, "1.00x");
  double spill_s = SecondsToDrain([&] { return FullSort(&input, run_bytes); },
                                  &weighted);
  Row("%-22s %-12.4f %.2fx", "full sort (spill)", spill_s,
      spill_s / mem_s);
  double topk_s = SecondsToDrain([&] { return TopK(&input, 100); },
                                 &weighted);
  Row("%-22s %-12.4f %.2fx", "top-100 (heap)", topk_s, topk_s / mem_s);

  if (spill_s > 20.0 * mem_s) {
    Row("REGRESSION: spilling sort %.1fx over in-memory (budget: 20x)",
        spill_s / mem_s);
  }
  if (mem_s < 1.5 * topk_s) {
    Row("REGRESSION: top-100 only %.2fx faster than the full sort "
        "(bar: 1.5x)", mem_s / topk_s);
  }

  // Join strategies on a shared key domain.
  size_t side = std::max<size_t>(rows / 4, 10'000);
  Relation jl = MakeInput(side, 32, "jl");
  Relation jr = MakeInput(side, 33, "jr");
  auto merge_join = [&] {
    return std::make_unique<exec::SortMergeJoinOp>(
        std::vector<size_t>{0}, std::vector<size_t>{0}, nullptr,
        std::make_unique<exec::ScanOp>(&jl),
        std::make_unique<exec::ScanOp>(&jr), /*spill_bytes=*/0);
  };
  auto hash_join = [&] {
    return std::make_unique<exec::HashJoinOp>(
        std::vector<size_t>{0}, std::vector<size_t>{0}, nullptr,
        std::make_unique<exec::ScanOp>(&jl),
        std::make_unique<exec::ScanOp>(&jr));
  };
  Relation via_hash = Unwrap(exec::ExecuteToRelation(*hash_join()));
  Relation via_merge = Unwrap(exec::ExecuteToRelation(*merge_join()));
  MRA_CHECK(via_merge.Equals(via_hash))
      << "sort-merge join disagreed with the hash join";

  double hash_s = SecondsToDrain(hash_join, &weighted);
  double merge_s = SecondsToDrain(merge_join, &weighted);
  Row("");
  Row("%-22s %-12.4f %-10s", "hash join", hash_s, "1.00x");
  Row("%-22s %-12.4f %.2fx", "sort-merge join", merge_s, merge_s / hash_s);
}

// --- Microbenchmarks. ---

void BM_FullSort(benchmark::State& state) {
  // Arg: spill cap in bytes (0 = in-memory).
  uint64_t spill_bytes = static_cast<uint64_t>(state.range(0));
  Relation input = MakeInput(200'000, 31, "bm");
  for (auto _ : state) {
    exec::PhysOpPtr root = FullSort(&input, spill_bytes);
    benchmark::DoNotOptimize(Drain(*root));
  }
  state.SetItemsProcessed(state.iterations() * 200'000);
}
BENCHMARK(BM_FullSort)->Arg(0)->Arg(1 << 20);

void BM_TopK(benchmark::State& state) {
  uint64_t limit = static_cast<uint64_t>(state.range(0));
  Relation input = MakeInput(200'000, 31, "bm");
  for (auto _ : state) {
    exec::PhysOpPtr root = TopK(&input, limit);
    benchmark::DoNotOptimize(Drain(*root));
  }
  state.SetItemsProcessed(state.iterations() * 200'000);
}
BENCHMARK(BM_TopK)->Arg(10)->Arg(1000);

void BM_SortMergeJoin(benchmark::State& state) {
  Relation jl = MakeInput(100'000, 32, "jl");
  Relation jr = MakeInput(100'000, 33, "jr");
  for (auto _ : state) {
    exec::SortMergeJoinOp join({0}, {0}, nullptr,
                               std::make_unique<exec::ScanOp>(&jl),
                               std::make_unique<exec::ScanOp>(&jr), 0);
    benchmark::DoNotOptimize(Drain(join));
  }
  state.SetItemsProcessed(state.iterations() * 200'000);
}
BENCHMARK(BM_SortMergeJoin);

}  // namespace
}  // namespace bench
}  // namespace mra

int main(int argc, char** argv) {
  size_t rows = 1'000'000;
  // Strip --rows N before benchmark::Initialize sees (and rejects) it.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      rows = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  mra::bench::VerifySortAndSpill(rows);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  mra::bench::DumpMetricsJson("E21");
  return 0;
}
