// E12 — ablation of the optimizer passes (the design choices DESIGN.md
// calls out).  One query shape — the SQL-style σ over × chain with an
// aggregate on top, at warehouse scale — executed with each rewrite pass
// disabled in turn.  Every configuration returns the same relation
// (verified); the timing quantifies what each equivalence of §3.3 buys.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "mra/exec/physical_planner.h"
#include "mra/opt/optimizer.h"

namespace mra {
namespace bench {
namespace {

Catalog WarehouseCatalog(size_t n) { return MakeBeerCatalog(n, 2.0, 300); }

// SELECT country, COUNT(*) FROM beer, brewery
// WHERE beer.brewery = brewery.name AND alcperc > 6 GROUP BY country —
// in its raw translated form: Γ(σ(beer × brewery)).
PlanPtr RawQuery(const Catalog& catalog) {
  PlanPtr beer = Plan::Scan("beer", Unwrap(catalog.GetRelation("beer"))->schema());
  PlanPtr brewery =
      Plan::Scan("brewery", Unwrap(catalog.GetRelation("brewery"))->schema());
  PlanPtr product = Unwrap(Plan::Product(std::move(beer), std::move(brewery)));
  PlanPtr filtered = Unwrap(Plan::Select(
      And(Eq(Attr(1), Attr(3)), Gt(Attr(2), Lit(6.0))), std::move(product)));
  return Unwrap(Plan::GroupBy({5}, {{AggKind::kCnt, 0, "n"}},
                              std::move(filtered)));
}

void RunWith(benchmark::State& state, opt::OptimizerOptions options) {
  Catalog catalog = WarehouseCatalog(state.range(0));
  opt::Optimizer optimizer(&catalog, options);
  PlanPtr plan = Unwrap(optimizer.Optimize(RawQuery(catalog)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unwrap(exec::ExecutePlan(plan, catalog)));
  }
}

void BM_AllPasses(benchmark::State& state) {
  RunWith(state, opt::OptimizerOptions{});
}
BENCHMARK(BM_AllPasses)->Arg(20000)->Arg(60000);

void BM_NoSelectPushdown(benchmark::State& state) {
  opt::OptimizerOptions options;
  options.select_pushdown = false;
  RunWith(state, options);
}
BENCHMARK(BM_NoSelectPushdown)->Arg(20000);

void BM_NoColumnPruning(benchmark::State& state) {
  opt::OptimizerOptions options;
  options.column_pruning = false;
  RunWith(state, options);
}
BENCHMARK(BM_NoColumnPruning)->Arg(20000)->Arg(60000);

void BM_NoJoinCommute(benchmark::State& state) {
  opt::OptimizerOptions options;
  options.join_commute = false;
  RunWith(state, options);
}
BENCHMARK(BM_NoJoinCommute)->Arg(20000)->Arg(60000);

void BM_Unoptimized(benchmark::State& state) {
  Catalog catalog = WarehouseCatalog(state.range(0));
  PlanPtr plan = RawQuery(catalog);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unwrap(exec::ExecutePlan(plan, catalog)));
  }
}
BENCHMARK(BM_Unoptimized)->Arg(20000);

void Report() {
  Header("E12: optimizer pass ablation",
         "Claim: each §3.3 equivalence contributes independently; disabling "
         "a pass never changes results, only cost.");
  Catalog catalog = WarehouseCatalog(20000);
  PlanPtr raw = RawQuery(catalog);
  Relation reference = Unwrap(EvaluatePlan(*raw, catalog));
  struct Config {
    const char* name;
    opt::OptimizerOptions options;
  };
  std::vector<Config> configs = {{"all passes", {}}};
  {
    opt::OptimizerOptions o;
    o.select_pushdown = false;
    configs.push_back({"- select pushdown", o});
  }
  {
    opt::OptimizerOptions o;
    o.column_pruning = false;
    configs.push_back({"- column pruning", o});
  }
  {
    opt::OptimizerOptions o;
    o.join_commute = false;
    configs.push_back({"- join commute", o});
  }
  {
    opt::OptimizerOptions o;
    o.constant_folding = false;
    configs.push_back({"- constant folding", o});
  }
  Row("%-22s %-10s %-8s", "configuration", "|result|", "equal?");
  for (const Config& config : configs) {
    opt::Optimizer optimizer(&catalog, config.options);
    PlanPtr plan = Unwrap(optimizer.Optimize(raw));
    Relation result = Unwrap(exec::ExecutePlan(plan, catalog));
    MRA_CHECK(result.Equals(reference));
    Row("%-22s %-10llu %-8s", config.name,
        static_cast<unsigned long long>(result.size()), "yes");
  }
  Row("");
  Row("(timings in the benchmark table below; the CNT aggregate keeps all "
      "configurations bit-exact, so equality is literal.)");
}

}  // namespace
}  // namespace bench
}  // namespace mra

int main(int argc, char** argv) {
  mra::bench::Report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
