// E5 — Introduction claim C1: "the high costs of duplicate removal in
// database operations is often prohibitive for the use of a data model that
// does not allow duplicates."
//
// The experiment runs the same logical pipeline — π_name(σ_alcperc>5(beer))
// followed by a union with itself — through (a) the multi-set operators,
// which never deduplicate, and (b) the set-semantics baseline, which
// deduplicates inside every operator, sweeping the duplicate factor.  The
// reported series shows the set pipeline's cost growing with duplication
// while the bag pipeline stays flat per distinct tuple (duplicates ride
// along as counts).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "mra/algebra/ops.h"
#include "mra/setalg/set_ops.h"

namespace mra {
namespace bench {
namespace {

// duplicate factor = range(1) → 1, (2) → 4, (3) → 16.
double DupFactor(int64_t level) {
  double f = 1.0;
  for (int64_t i = 1; i < level; ++i) f *= 4.0;
  return f;
}

Relation MakeBeer(size_t n, double dup) {
  util::BeerDbOptions options;
  options.num_beers = n;
  options.num_beer_names = n / 4;
  options.duplicate_factor = dup;
  return Unwrap(util::MakeBeerDb(options)).beer;
}

void BagPipeline(const Relation& beer, Relation* out) {
  Relation selected = Unwrap(ops::Select(Gt(Attr(2), Lit(5.0)), beer));
  Relation names = Unwrap(ops::ProjectIndexes({0}, selected));
  *out = Unwrap(ops::Union(names, names));
}

void SetPipeline(const Relation& beer, Relation* out) {
  Relation selected = Unwrap(setalg::Select(Gt(Attr(2), Lit(5.0)), beer));
  Relation names = Unwrap(setalg::Project({Attr(0)}, selected));
  *out = Unwrap(setalg::Union(names, names));
}

void BM_BagPipeline(benchmark::State& state) {
  Relation beer = MakeBeer(20000, DupFactor(state.range(0)));
  Relation out;
  for (auto _ : state) {
    BagPipeline(beer, &out);
    benchmark::DoNotOptimize(out);
  }
  state.counters["dup_factor"] = DupFactor(state.range(0));
  state.counters["input_tuples"] = static_cast<double>(beer.size());
}
BENCHMARK(BM_BagPipeline)->Arg(1)->Arg(2)->Arg(3);

void BM_SetPipeline(benchmark::State& state) {
  Relation beer = MakeBeer(20000, DupFactor(state.range(0)));
  Relation out;
  for (auto _ : state) {
    SetPipeline(beer, &out);
    benchmark::DoNotOptimize(out);
  }
  state.counters["dup_factor"] = DupFactor(state.range(0));
  state.counters["input_tuples"] = static_cast<double>(beer.size());
}
BENCHMARK(BM_SetPipeline)->Arg(1)->Arg(2)->Arg(3);

// The cost of the *representation* itself: streaming one row per distinct
// tuple versus one row per occurrence (what a duplicate-expanding engine
// would touch).
void BM_ScanDistinctRepresentation(benchmark::State& state) {
  Relation beer = MakeBeer(20000, DupFactor(state.range(0)));
  for (auto _ : state) {
    uint64_t total = 0;
    for (const auto& [tuple, count] : beer) {
      benchmark::DoNotOptimize(tuple);
      total += count;
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_ScanDistinctRepresentation)->Arg(1)->Arg(3);

void BM_ScanExpandedRepresentation(benchmark::State& state) {
  Relation beer = MakeBeer(20000, DupFactor(state.range(0)));
  std::vector<Tuple> expanded = beer.ExpandedTuples();
  for (auto _ : state) {
    uint64_t total = 0;
    for (const Tuple& tuple : expanded) {
      benchmark::DoNotOptimize(tuple);
      ++total;
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_ScanExpandedRepresentation)->Arg(1)->Arg(3);

void Report() {
  Header("E5: cost of duplicate elimination (intro claim C1)",
         "Claim: set semantics forces a dedup inside every operator, whose "
         "cost grows with the duplicate factor; bag semantics carries "
         "duplicates as counts for free.");
  Row("%-12s %-14s %-16s %-16s", "dup_factor", "input tuples",
      "bag |result|", "set |result|");
  for (int64_t level : {1, 2, 3}) {
    Relation beer = MakeBeer(20000, DupFactor(level));
    Relation bag, set;
    BagPipeline(beer, &bag);
    SetPipeline(beer, &set);
    Row("%-12.0f %-14llu %-16llu %-16llu", DupFactor(level),
        static_cast<unsigned long long>(beer.size()),
        static_cast<unsigned long long>(bag.size()),
        static_cast<unsigned long long>(set.size()));
  }
  Row("");
  Row("(bag result counts duplicates; the set pipeline has destroyed them "
      "— functional difference — while also paying per-operator dedup "
      "cost: see the timing table.)");
}

}  // namespace
}  // namespace bench
}  // namespace mra

int main(int argc, char** argv) {
  mra::bench::Report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
