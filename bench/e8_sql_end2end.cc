// E8 — §1/§5 claim C3: the algebra as a complete language and as a formal
// background for SQL.
//
// Runs the paper's own SQL statements (Examples 3.2 and 4.1) end-to-end
// through parse → translate-to-algebra → optimize → physical execution,
// and separates translation overhead from execution time.  The report
// prints the XRA translation of each SQL statement — the artefact the
// paper's "background for SQL" claim is about.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "mra/lang/interpreter.h"
#include "mra/sql/sql_parser.h"
#include "mra/sql/translator.h"
#include "mra/txn/database.h"

namespace mra {
namespace bench {
namespace {

constexpr char kExample32Sql[] =
    "SELECT country, AVG(alcperc) FROM beer, brewery "
    "WHERE beer.brewery = brewery.name GROUP BY country";
constexpr char kExample41Sql[] =
    "UPDATE beer SET alcperc = alcperc * 1.1 WHERE brewery = 'Guineken'";

std::unique_ptr<Database> MakeDb(size_t num_beers) {
  auto db = Unwrap(Database::Open());
  util::BeerDbOptions options;
  options.num_beers = num_beers;
  options.num_beer_names = std::max<size_t>(num_beers / 4, 1);
  options.duplicate_factor = 2.0;
  util::BeerDb data = Unwrap(util::MakeBeerDb(options));
  Unwrap(db->CreateRelation(data.beer.schema()));
  Unwrap(db->CreateRelation(data.brewery.schema()));
  auto txn = Unwrap(db->Begin());
  Unwrap(txn->Insert("beer", data.beer));
  Unwrap(txn->Insert("brewery", data.brewery));
  Unwrap(txn->Commit());
  return db;
}

void BM_SqlParseAndTranslate(benchmark::State& state) {
  auto db = MakeDb(1000);
  for (auto _ : state) {
    auto stmts = Unwrap(sql::ParseSql(kExample32Sql));
    benchmark::DoNotOptimize(
        Unwrap(sql::TranslateStatement(stmts[0], db->catalog())));
  }
}
BENCHMARK(BM_SqlParseAndTranslate);

void BM_SqlSelectEndToEnd(benchmark::State& state) {
  auto db = MakeDb(state.range(0));
  sql::SqlSession session(db.get());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unwrap(session.ExecuteCollect(kExample32Sql)));
  }
}
BENCHMARK(BM_SqlSelectEndToEnd)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_XraSelectEndToEnd(benchmark::State& state) {
  // The same query written directly in XRA — measures what SQL costs on
  // top of the algebra.
  auto db = MakeDb(state.range(0));
  lang::Interpreter interp(db.get());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unwrap(interp.Query(
        "groupby([%6], avg(%3), join(%2 = %4, beer, brewery))")));
  }
}
BENCHMARK(BM_XraSelectEndToEnd)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SqlUpdateEndToEnd(benchmark::State& state) {
  auto db = MakeDb(state.range(0));
  sql::SqlSession session(db.get());
  for (auto _ : state) {
    Unwrap(session.Execute(kExample41Sql));
  }
}
BENCHMARK(BM_SqlUpdateEndToEnd)->Arg(1000)->Arg(10000);

void Report() {
  Header("E8: SQL over the algebra (claim C3)",
         "Claim: SQL statements translate into extended-algebra statements; "
         "the paper's Examples 3.2 and 4.1 are the reference pairs.");
  auto db = MakeDb(1000);
  for (const char* sql_text : {kExample32Sql, kExample41Sql}) {
    auto stmts = Unwrap(sql::ParseSql(sql_text));
    lang::Stmt stmt = Unwrap(sql::TranslateStatement(stmts[0], db->catalog()));
    Row("SQL : %s", sql_text);
    Row("XRA : %s", stmt.ToString().c_str());
    Row("");
  }
  // SQL and hand-written XRA agree on results.
  sql::SqlSession session(db.get());
  lang::Interpreter interp(db.get());
  auto sql_result = Unwrap(session.ExecuteCollect(kExample32Sql));
  Relation xra_result = Unwrap(interp.Query(
      "groupby([%6], avg(%3), join(%2 = %4, beer, brewery))"));
  MRA_CHECK(sql_result.size() == 1);
  Row("SQL result rows  : %llu",
      static_cast<unsigned long long>(sql_result[0].size()));
  Row("XRA result rows  : %llu",
      static_cast<unsigned long long>(xra_result.size()));
  Row("results identical: %s",
      sql_result[0].Equals(xra_result) ? "yes" : "NO!");
  MRA_CHECK(sql_result[0].Equals(xra_result));
}

}  // namespace
}  // namespace bench
}  // namespace mra

int main(int argc, char** argv) {
  mra::bench::Report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
