// E10 — the §5 extension: transitive closure.
//
// Compares the naive fixpoint (re-deriving all pairs each round, built
// from the algebra's own ⋈/π/⊎/δ — the formulation in the thesis the
// paper cites) with the semi-naive strategy (extending only the frontier),
// on chain graphs (worst-case depth) and random sparse graphs.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "mra/algebra/closure.h"

namespace mra {
namespace bench {
namespace {

Relation ChainGraph(size_t n) {
  Relation edges(RelationSchema("e", {{"a", Type::Int()},
                                      {"b", Type::Int()}}));
  for (size_t i = 0; i + 1 < n; ++i) {
    edges.InsertUnchecked(Tuple({Value::Int(static_cast<int64_t>(i)),
                                 Value::Int(static_cast<int64_t>(i + 1))}),
                          1);
  }
  return edges;
}

Relation RandomGraph(size_t nodes, size_t edges, uint64_t seed) {
  Relation rel(RelationSchema("e", {{"a", Type::Int()},
                                    {"b", Type::Int()}}));
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> node(0,
                                              static_cast<int64_t>(nodes) - 1);
  for (size_t i = 0; i < edges; ++i) {
    rel.InsertUnchecked(Tuple({Value::Int(node(rng)), Value::Int(node(rng))}),
                        1);
  }
  return rel;
}

void BM_ClosureSemiNaiveChain(benchmark::State& state) {
  Relation edges = ChainGraph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unwrap(ops::TransitiveClosure(edges)));
  }
}
BENCHMARK(BM_ClosureSemiNaiveChain)->Arg(100)->Arg(400)->Arg(1600);

void BM_ClosureNaiveChain(benchmark::State& state) {
  Relation edges = ChainGraph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unwrap(ops::TransitiveClosureNaive(edges)));
  }
}
BENCHMARK(BM_ClosureNaiveChain)->Arg(100)->Arg(400);

void BM_ClosureSemiNaiveRandom(benchmark::State& state) {
  Relation edges = RandomGraph(state.range(0), state.range(0) * 2, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unwrap(ops::TransitiveClosure(edges)));
  }
}
BENCHMARK(BM_ClosureSemiNaiveRandom)->Arg(200)->Arg(400);

void BM_ClosureNaiveRandom(benchmark::State& state) {
  Relation edges = RandomGraph(state.range(0), state.range(0) * 2, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unwrap(ops::TransitiveClosureNaive(edges)));
  }
}
BENCHMARK(BM_ClosureNaiveRandom)->Arg(200)->Arg(400);

void Report() {
  Header("E10: transitive closure (§5 extension)",
         "Claim: the algebra extends to recursive expressions; semi-naive "
         "evaluation beats the naive fixpoint the operators alone express.");
  Row("%-22s %-10s %-12s %-12s %-8s", "graph", "edges", "|closure|",
      "naive ==", "");
  for (size_t n : {50, 200}) {
    Relation chain = ChainGraph(n);
    Relation semi = Unwrap(ops::TransitiveClosure(chain));
    Relation naive = Unwrap(ops::TransitiveClosureNaive(chain));
    MRA_CHECK(semi.Equals(naive));
    Row("%-22s %-10llu %-12llu %-12s", ("chain(" + std::to_string(n) + ")").c_str(),
        static_cast<unsigned long long>(chain.size()),
        static_cast<unsigned long long>(semi.size()), "yes");
  }
  for (size_t n : {100, 300}) {
    Relation graph = RandomGraph(n, n * 2, 5);
    Relation semi = Unwrap(ops::TransitiveClosure(graph));
    Relation naive = Unwrap(ops::TransitiveClosureNaive(graph));
    MRA_CHECK(semi.Equals(naive));
    Row("%-22s %-10llu %-12llu %-12s",
        ("random(" + std::to_string(n) + ")").c_str(),
        static_cast<unsigned long long>(graph.size()),
        static_cast<unsigned long long>(semi.size()), "yes");
  }
}

}  // namespace
}  // namespace bench
}  // namespace mra

int main(int argc, char** argv) {
  mra::bench::Report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
