// E1 — Theorem 3.1: E1 ∩ E2 = E1 − (E1 − E2) and E1 ⋈_φ E2 = σ_φ(E1 × E2).
//
// The theorem makes the ∩ and ⋈ operators definable in the basic algebra;
// this experiment verifies both identities executable-y at several scales
// and measures what the derived forms cost compared to the direct physical
// operators — the practical reason the standard algebra includes them.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "mra/algebra/ops.h"
#include "mra/exec/operator.h"

namespace mra {
namespace bench {
namespace {

struct IntersectInputs {
  Relation a;
  Relation b;
};

IntersectInputs MakeIntersectInputs(size_t n) {
  util::IntRelationOptions options;
  options.arity = 1;
  options.distinct_tuples = n;
  // Narrow value range → the supports overlap heavily, exercising min().
  options.value_range = static_cast<int64_t>(n);
  options.duplicates = util::DupDistribution::kUniform;
  options.max_multiplicity = 4;
  options.seed = 11;
  Relation a = Unwrap(util::MakeIntRelation(options));
  options.seed = 12;
  Relation b = Unwrap(util::MakeIntRelation(options));
  return {std::move(a), std::move(b)};
}

void BM_IntersectDirect(benchmark::State& state) {
  IntersectInputs in = MakeIntersectInputs(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unwrap(ops::Intersect(in.a, in.b)));
  }
}
BENCHMARK(BM_IntersectDirect)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_IntersectViaDifference(benchmark::State& state) {
  IntersectInputs in = MakeIntersectInputs(state.range(0));
  for (auto _ : state) {
    Relation inner = Unwrap(ops::Difference(in.a, in.b));
    benchmark::DoNotOptimize(Unwrap(ops::Difference(in.a, inner)));
  }
}
BENCHMARK(BM_IntersectViaDifference)->Arg(1000)->Arg(10000)->Arg(100000);

Catalog JoinCatalog(size_t n) {
  Catalog catalog;
  AddIntRelation(&catalog, "r", n, static_cast<int64_t>(n),
                 util::DupDistribution::kUniform, 3, 21);
  AddIntRelation(&catalog, "s", n / 4, static_cast<int64_t>(n),
                 util::DupDistribution::kUniform, 3, 22);
  return catalog;
}

void BM_JoinDirectHash(benchmark::State& state) {
  Catalog catalog = JoinCatalog(state.range(0));
  const Relation* r = Unwrap(catalog.GetRelation("r"));
  const Relation* s = Unwrap(catalog.GetRelation("s"));
  for (auto _ : state) {
    exec::HashJoinOp join({0}, {0}, nullptr,
                          std::make_unique<exec::ScanOp>(r),
                          std::make_unique<exec::ScanOp>(s));
    benchmark::DoNotOptimize(Unwrap(exec::ExecuteToRelation(join)));
  }
}
BENCHMARK(BM_JoinDirectHash)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_JoinViaSelectProduct(benchmark::State& state) {
  Catalog catalog = JoinCatalog(state.range(0));
  const Relation* r = Unwrap(catalog.GetRelation("r"));
  const Relation* s = Unwrap(catalog.GetRelation("s"));
  ExprPtr cond = Eq(Attr(0), Attr(2));
  for (auto _ : state) {
    Relation product = Unwrap(ops::Product(*r, *s));
    benchmark::DoNotOptimize(Unwrap(ops::Select(cond, product)));
  }
}
BENCHMARK(BM_JoinViaSelectProduct)->Arg(500)->Arg(1000)->Arg(2000);

void VerifyTheorem() {
  Header("E1: Theorem 3.1",
         "Claim: E1 ∩ E2 = E1 − (E1 − E2) and E1 ⋈ E2 = σ(E1 × E2) hold in "
         "the bag algebra; direct operators are the efficient forms.");
  Row("%-10s %-14s %-14s %-10s", "n", "|E1 ∩ E2|", "via −", "equal?");
  for (size_t n : {100, 1000, 10000}) {
    IntersectInputs in = MakeIntersectInputs(n);
    Relation direct = Unwrap(ops::Intersect(in.a, in.b));
    Relation via =
        Unwrap(ops::Difference(in.a, Unwrap(ops::Difference(in.a, in.b))));
    Row("%-10zu %-14llu %-14llu %-10s", n,
        static_cast<unsigned long long>(direct.size()),
        static_cast<unsigned long long>(via.size()),
        direct.Equals(via) ? "yes" : "NO!");
    MRA_CHECK(direct.Equals(via));
  }
  Row("");
  Row("%-10s %-14s %-14s %-10s", "n", "|E1 ⋈ E2|", "via σ(×)", "equal?");
  for (size_t n : {100, 500, 2000}) {
    Catalog catalog = JoinCatalog(n);
    const Relation* r = Unwrap(catalog.GetRelation("r"));
    const Relation* s = Unwrap(catalog.GetRelation("s"));
    ExprPtr cond = Eq(Attr(0), Attr(2));
    Relation direct = Unwrap(ops::Join(cond, *r, *s));
    Relation via = Unwrap(ops::Select(cond, Unwrap(ops::Product(*r, *s))));
    Row("%-10zu %-14llu %-14llu %-10s", n,
        static_cast<unsigned long long>(direct.size()),
        static_cast<unsigned long long>(via.size()),
        direct.Equals(via) ? "yes" : "NO!");
    MRA_CHECK(direct.Equals(via));
  }
}

}  // namespace
}  // namespace bench
}  // namespace mra

int main(int argc, char** argv) {
  mra::bench::VerifyTheorem();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  mra::bench::DumpMetricsJson("E1");
  return 0;
}
