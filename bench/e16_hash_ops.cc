// E16 — hash-based batch kernels vs the legacy operators.
//
// Two head-to-head comparisons, both with asserted result identity:
//
//  * equi-join: HashJoinOp (build right, probe left, counts multiply per
//    Def 3.1) against the definitional σ_φ(E1 × E2) nested-loop plan the
//    planner would otherwise emit.  The nested loop is O(|E1|·|E2|), so
//    the join inputs are sized at rows/250 per side (4000 at the 1M
//    default) — large enough that hashing's O(|E1|+|E2|) shows, small
//    enough that the quadratic baseline terminates.
//  * δ (unique): the streaming hash DedupOp against SortDedupOp, the
//    sort-based fallback, at the full row count.
//
// The acceptance bar for both is >= 2x at the 1M scale; "REGRESSION" is
// printed when a hash kernel is *slower* than its baseline, so the CI
// smoke run can grep for it.
//
//   $ ./build/bench/e16_hash_ops                  # full 1M-row summary
//   $ ./build/bench/e16_hash_ops --rows 50000     # CI smoke scale

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>
#include <string>

#include "bench_util.h"
#include "mra/algebra/ops.h"
#include "mra/exec/operator.h"
#include "mra/expr/scalar_expr.h"

namespace mra {
namespace bench {
namespace {

Relation MakeInput(size_t distinct, int64_t value_range, uint64_t seed,
                   const char* name) {
  util::IntRelationOptions options;
  options.name = name;
  options.distinct_tuples = distinct;
  options.arity = 2;
  options.value_range = value_range;
  options.duplicates = util::DupDistribution::kUniform;
  options.max_multiplicity = 4;
  options.seed = seed;
  return Unwrap(util::MakeIntRelation(options));
}

exec::PhysOpPtr BuildHashJoin(const Relation* left, const Relation* right) {
  return std::make_unique<exec::HashJoinOp>(
      std::vector<size_t>{0}, std::vector<size_t>{0}, nullptr,
      std::make_unique<exec::ScanOp>(left),
      std::make_unique<exec::ScanOp>(right));
}

exec::PhysOpPtr BuildNestedLoopJoin(const Relation* left,
                                    const Relation* right) {
  return std::make_unique<exec::NestedLoopJoinOp>(
      Eq(Attr(0), Attr(2)), std::make_unique<exec::ScanOp>(left),
      std::make_unique<exec::ScanOp>(right));
}

exec::PhysOpPtr BuildHashDedup(const Relation* input) {
  return std::make_unique<exec::DedupOp>(
      std::make_unique<exec::ScanOp>(input));
}

exec::PhysOpPtr BuildSortDedup(const Relation* input) {
  return std::make_unique<exec::SortDedupOp>(
      std::make_unique<exec::ScanOp>(input));
}

/// Drains the tree through the batch protocol, returning the weighted row
/// count so the work cannot be optimised away.
uint64_t Drain(exec::PhysicalOperator& root) {
  MRA_CHECK(root.Open().ok());
  exec::RowBatch batch;
  uint64_t weighted = 0;
  while (true) {
    MRA_CHECK(root.NextBatch(batch).ok());
    if (batch.empty()) break;
    for (const exec::Row& row : batch) weighted += row.count;
  }
  root.Close();
  return weighted;
}

using OpFactory = std::function<exec::PhysOpPtr()>;

/// Best-of-3 wall-clock seconds to drain a freshly built tree.
double SecondsToDrain(const OpFactory& make, uint64_t* weighted_out) {
  double best = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    exec::PhysOpPtr root = make();
    auto start = std::chrono::steady_clock::now();
    *weighted_out = Drain(*root);
    auto end = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double>(end - start).count());
  }
  return best;
}

/// Times hash vs legacy, asserts identical result multisets, prints one
/// summary row, and flags a regression when hash is slower.
void Compare(const char* label, size_t scale, const OpFactory& hash,
             const OpFactory& legacy) {
  Relation hash_result = Unwrap(exec::ExecuteToRelation(*hash()));
  Relation legacy_result = Unwrap(exec::ExecuteToRelation(*legacy()));
  MRA_CHECK(hash_result.Equals(legacy_result))
      << label << ": hash kernel changed the result multiset";

  uint64_t hash_weighted = 0, legacy_weighted = 0;
  double hash_s = SecondsToDrain(hash, &hash_weighted);
  double legacy_s = SecondsToDrain(legacy, &legacy_weighted);
  MRA_CHECK(hash_weighted == legacy_weighted)
      << label << ": kernels drained different bag cardinalities";

  double speedup = legacy_s / hash_s;
  Row("%-10s %-10zu %-12.4f %-12.4f %-14llu %.2fx", label, scale, legacy_s,
      hash_s, static_cast<unsigned long long>(hash_result.size()), speedup);
  if (speedup < 1.0) {
    Row("REGRESSION: %s hash kernel slower than the legacy operator "
        "(%.2fx)", label, speedup);
  }
}

void VerifySpeedup(size_t rows) {
  Header("E16: hash-based batch kernels",
         "Claim: the hash equi-join beats the definitional nested-loop "
         "sigma(E1 x E2) plan and the streaming hash dedup beats the "
         "sort-based fallback, both >= 2x at the 1M-row scale, with "
         "identical result multisets.");

  // Join inputs: quadratic baseline, so rows/250 distinct tuples per side
  // (>= 2000 so the CI smoke scale still measures something).  A quarter
  // of the key range overlaps, giving a selective but non-empty join.
  size_t side = std::max<size_t>(2000, rows / 250);
  int64_t range = static_cast<int64_t>(side) / 4;
  Relation jl = MakeInput(side, range, 16, "jl");
  Relation jr = MakeInput(side, range, 17, "jr");

  // Dedup input: linear kernels, full scale, heavy duplication (value
  // range rows/8 over 2 attributes keeps distinct keys well below rows).
  Relation d = MakeInput(rows, std::max<int64_t>(2, rows / 8), 18, "d");

  Row("%-10s %-10s %-12s %-12s %-14s %-10s", "kernel", "scale", "legacy s",
      "hash s", "result rows", "speedup");
  Compare("join", side, [&] { return BuildHashJoin(&jl, &jr); },
          [&] { return BuildNestedLoopJoin(&jl, &jr); });
  Compare("dedup", rows, [&] { return BuildHashDedup(&d); },
          [&] { return BuildSortDedup(&d); });
  Row("");
  Row("join side=%zu (nested loop is O(n^2); hash is O(n)), dedup "
      "rows=%zu", side, rows);
}

// --- Microbenchmarks at fixed scales. ---

void BM_HashJoin(benchmark::State& state) {
  size_t side = static_cast<size_t>(state.range(0));
  Relation l = MakeInput(side, static_cast<int64_t>(side) / 4, 16, "l");
  Relation r = MakeInput(side, static_cast<int64_t>(side) / 4, 17, "r");
  for (auto _ : state) {
    exec::PhysOpPtr root = BuildHashJoin(&l, &r);
    benchmark::DoNotOptimize(Drain(*root));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(side));
}
BENCHMARK(BM_HashJoin)->Arg(100'000)->Arg(1'000'000);

void BM_HashDedup(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Relation d = MakeInput(rows, std::max<int64_t>(2, rows / 8), 18, "d");
  for (auto _ : state) {
    exec::PhysOpPtr root = BuildHashDedup(&d);
    benchmark::DoNotOptimize(Drain(*root));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(rows));
}
BENCHMARK(BM_HashDedup)->Arg(100'000)->Arg(1'000'000);

void BM_SortDedup(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Relation d = MakeInput(rows, std::max<int64_t>(2, rows / 8), 18, "d");
  for (auto _ : state) {
    exec::PhysOpPtr root = BuildSortDedup(&d);
    benchmark::DoNotOptimize(Drain(*root));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(rows));
}
BENCHMARK(BM_SortDedup)->Arg(100'000)->Arg(1'000'000);

void BM_HashGroupBy(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Relation d = MakeInput(rows, std::max<int64_t>(2, rows / 8), 18, "d");
  std::vector<AggSpec> aggs = {{AggKind::kSum, 1, "s"},
                               {AggKind::kCnt, 0, "n"}};
  RelationSchema schema =
      Unwrap(ops::GroupBySchema({0}, aggs, d.schema()));
  for (auto _ : state) {
    auto root = std::make_unique<exec::HashGroupByOp>(
        std::vector<size_t>{0}, aggs, schema,
        std::make_unique<exec::ScanOp>(&d));
    benchmark::DoNotOptimize(Drain(*root));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(rows));
}
BENCHMARK(BM_HashGroupBy)->Arg(100'000)->Arg(1'000'000);

}  // namespace
}  // namespace bench
}  // namespace mra

int main(int argc, char** argv) {
  size_t rows = 1'000'000;
  // Strip --rows N before benchmark::Initialize sees (and rejects) it.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      rows = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  mra::bench::VerifySpeedup(rows);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  mra::bench::DumpMetricsJson("E16");
  return 0;
}
