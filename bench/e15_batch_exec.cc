// E15 — batch-at-a-time execution: NextBatch() vs the tuple-at-a-time
// volcano Next() loop on the canonical scan → filter → project pipeline.
//
// The per-row cost of tuple-at-a-time execution is two virtual calls plus
// metrics bookkeeping per operator; batching amortizes both across
// RowBatch::capacity rows and unlocks the compiled-predicate and
// attribute-only-projection fast paths (docs/EXECUTION.md).  The summary
// block times the 1M-row pipeline both ways and reports the speedup —
// the acceptance bar is ≥ 2× — and both executions must produce the same
// multiset (asserted).  Prints "REGRESSION" when batching is *slower*, so
// the CI smoke run can grep for it.
//
//   $ ./build/bench/e15_batch_exec                  # full 1M-row summary
//   $ ./build/bench/e15_batch_exec --rows 50000     # CI smoke scale

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "mra/exec/operator.h"
#include "mra/expr/scalar_expr.h"

namespace mra {
namespace bench {
namespace {

constexpr int64_t kValueRange = 1'000'000;

Relation MakePipelineInput(size_t rows) {
  util::IntRelationOptions options;
  options.name = "r";
  options.distinct_tuples = rows;
  options.arity = 2;
  options.value_range = kValueRange;
  options.duplicates = util::DupDistribution::kUniform;
  options.max_multiplicity = 4;
  options.seed = 15;
  return Unwrap(util::MakeIntRelation(options));
}

// σ_{%1 < kValueRange/2} then π_{%1}: ~50% selectivity, both stages on the
// operators' batch fast paths (compiled predicate, attribute-only
// projection).
exec::PhysOpPtr BuildPipeline(const Relation* input) {
  auto filter = std::make_unique<exec::FilterOp>(
      Lt(Attr(0), Lit(kValueRange / 2)),
      std::make_unique<exec::ScanOp>(input));
  RelationSchema out_schema("p", {Attribute{"c1", Type::Int()}});
  std::vector<ExprPtr> exprs;
  exprs.push_back(Attr(0));
  return std::make_unique<exec::ComputeOp>(
      std::move(exprs), std::move(out_schema), std::move(filter));
}

// Pulls every row through the operator tree without materialising a
// result relation: this times the pipeline itself — scan, filter,
// project, and the inter-operator hand-off — which is what the batch
// protocol changes.  (Materialising into a hash Relation costs the same
// per row in both modes and only dilutes the comparison; result identity
// is asserted separately below via ExecuteToRelation.)  Returns the
// multiplicity-weighted row count so the work cannot be optimised away.
uint64_t DrainPipeline(exec::PhysicalOperator& root, size_t batch_size) {
  MRA_CHECK(root.Open().ok());
  uint64_t weighted = 0;
  if (batch_size == 0) {
    while (true) {
      auto row = root.Next();
      MRA_CHECK(row.ok());
      if (!row->has_value()) break;
      weighted += (*row)->count;
    }
  } else {
    exec::RowBatch batch(batch_size);
    while (true) {
      MRA_CHECK(root.NextBatch(batch).ok());
      if (batch.empty()) break;
      for (const exec::Row& row : batch) weighted += row.count;
    }
  }
  root.Close();
  return weighted;
}

double SecondsToDrain(const Relation* input, size_t batch_size,
                      uint64_t* weighted_out) {
  exec::PhysOpPtr root = BuildPipeline(input);
  auto start = std::chrono::steady_clock::now();
  *weighted_out = DrainPipeline(*root, batch_size);
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

void BM_ScanFilterProject(benchmark::State& state) {
  // Arg is the batch size; 0 selects the legacy row-at-a-time Next() loop.
  Relation input = MakePipelineInput(100'000);
  size_t batch_size = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    exec::PhysOpPtr root = BuildPipeline(&input);
    benchmark::DoNotOptimize(DrainPipeline(*root, batch_size));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(input.distinct_size()));
}
BENCHMARK(BM_ScanFilterProject)
    ->Arg(0)
    ->Arg(1)
    ->Arg(64)
    ->Arg(1024)
    ->Arg(4096);

void VerifySpeedup(size_t rows) {
  Header("E15: batch-at-a-time execution",
         "Claim: pulling RowBatches through scan->filter->project beats "
         "the tuple-at-a-time Next() loop >= 2x at the 1M-row scale, with "
         "an identical result multiset.");
  Relation input = MakePipelineInput(rows);

  // Result identity first (materialised through both protocols): the
  // speedup claim is worthless if batching changes the answer.
  exec::PhysOpPtr tuple_root = BuildPipeline(&input);
  Relation tuple_result =
      Unwrap(exec::ExecuteToRelation(*tuple_root, /*batch_size=*/0));
  exec::PhysOpPtr batch_root = BuildPipeline(&input);
  Relation batch_result =
      Unwrap(exec::ExecuteToRelation(*batch_root, exec::kDefaultBatchSize));
  MRA_CHECK(tuple_result.Equals(batch_result))
      << "batched execution changed the result multiset";

  // Best-of-3 per mode: these are wall-clock seconds, so guard against a
  // scheduler hiccup polluting the claim.
  double tuple_s = 1e30;
  double batch_s = 1e30;
  uint64_t tuple_weighted = 0;
  uint64_t batch_weighted = 0;
  for (int rep = 0; rep < 3; ++rep) {
    tuple_s = std::min(tuple_s, SecondsToDrain(&input, 0, &tuple_weighted));
    batch_s = std::min(
        batch_s, SecondsToDrain(&input, exec::kDefaultBatchSize,
                                &batch_weighted));
  }
  MRA_CHECK(tuple_weighted == batch_weighted)
      << "protocols drained different bag cardinalities";

  double speedup = tuple_s / batch_s;
  Row("%-12s %-18s %-14s %-16s %-10s", "rows", "tuple-at-a-time s",
      "batch(1024) s", "rows/s batched", "speedup");
  Row("%-12zu %-18.3f %-14.3f %-16.3g %.2fx", rows, tuple_s, batch_s,
      static_cast<double>(rows) / batch_s, speedup);
  if (speedup < 1.0) {
    Row("REGRESSION: batched execution slower than tuple-at-a-time "
        "(%.2fx)", speedup);
  }
  Row("");
  Row("result: %llu rows (%llu distinct), identical under both protocols",
      static_cast<unsigned long long>(batch_result.size()),
      static_cast<unsigned long long>(batch_result.distinct_size()));
}

}  // namespace
}  // namespace bench
}  // namespace mra

int main(int argc, char** argv) {
  size_t rows = 1'000'000;
  // Strip --rows N before benchmark::Initialize sees (and rejects) it.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      rows = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  mra::bench::VerifySpeedup(rows);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  mra::bench::DumpMetricsJson("E15");
  return 0;
}
