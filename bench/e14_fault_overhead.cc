// E14 — fault-injection overhead.
//
// The failpoint discipline only earns its place in the hot paths if a
// disarmed site is effectively free.  This benchmark measures (a) the raw
// cost of a disarmed Failpoint::Hit() (one acquire load) against an armed
// pass-through hit, and (b) the end-to-end WAL append path — whose three
// failpoint sites are compiled in — so the relative overhead can be read
// directly: acceptance is disarmed-hit cost ≤ 2% of a WAL append.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <filesystem>
#include <string>

#include "bench_util.h"
#include "mra/fault/failpoint.h"
#include "mra/storage/wal.h"

namespace mra {
namespace bench {
namespace {

std::string TempWalPath() {
  return (std::filesystem::temp_directory_path() /
          ("mra_e14_" + std::to_string(::getpid()) + ".wal"))
      .string();
}

void BM_DisarmedFailpointHit(benchmark::State& state) {
  fault::Failpoint* fp = fault::FaultRegistry::Global().Get("bench.disarmed");
  for (auto _ : state) {
    benchmark::DoNotOptimize(fp->Hit().kind);
  }
}
BENCHMARK(BM_DisarmedFailpointHit);

void BM_ArmedPassThroughHit(benchmark::State& state) {
  // Armed but gated far in the future: every hit takes the slow path
  // (mutex + counters) yet still passes through — the worst case for a
  // site that is being watched but not fired.
  auto& reg = fault::FaultRegistry::Global();
  Unwrap(reg.ConfigureFromSpec("bench.armed=error:after=1000000000"));
  fault::Failpoint* fp = reg.Get("bench.armed");
  for (auto _ : state) {
    benchmark::DoNotOptimize(fp->Hit().kind);
  }
  reg.DisarmAll();
}
BENCHMARK(BM_ArmedPassThroughHit);

// The production path the ≤2% acceptance bound is measured against: one
// framed append (failpoints disarmed), flushed to the OS but not fsynced.
void BM_WalAppendWithDisarmedFailpoints(benchmark::State& state) {
  std::string path = TempWalPath();
  std::string payload(static_cast<size_t>(state.range(0)), 'x');
  {
    auto writer = Unwrap(storage::WalWriter::Open(path));
    for (auto _ : state) {
      Status s = writer.Append(payload, false);
      if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(payload.size()));
  }
  std::filesystem::remove(path);
}
BENCHMARK(BM_WalAppendWithDisarmedFailpoints)->Arg(64)->Arg(1024)->Arg(16384);

}  // namespace
}  // namespace bench
}  // namespace mra

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  mra::bench::DumpMetricsJson("E14");  // Includes the fault.* family.
  return 0;
}
