// E11 — the PRISMA direction (§5): parallel data processing over the
// multi-set algebra.  The fragmentation operators recombine with ⊎, so
// every parallel operator equals its sequential definition — measured here
// as speedup curves over worker count for select, equi-join and group-by.

#include <benchmark/benchmark.h>

#include <thread>

#include "bench_util.h"
#include "mra/algebra/ops.h"
#include "mra/exec/operator.h"
#include "mra/parallel/parallel.h"

namespace mra {
namespace bench {
namespace {

Relation BigInts(size_t distinct, uint64_t seed) {
  util::IntRelationOptions options;
  options.arity = 2;
  options.distinct_tuples = distinct;
  options.value_range = static_cast<int64_t>(distinct);
  options.duplicates = util::DupDistribution::kUniform;
  options.max_multiplicity = 3;
  options.seed = seed;
  return Unwrap(util::MakeIntRelation(options));
}

// An expensive predicate so per-tuple work dominates partitioning cost.
ExprPtr HeavyPredicate() {
  // ((x*31 + y) % 97) < 45, with some extra arithmetic layers.
  ExprPtr mix = Add(Mul(Attr(0), Lit(int64_t{31})), Attr(1));
  ExprPtr folded = Mod(Add(Mul(mix, mix), Lit(int64_t{7})), Lit(int64_t{97}));
  return Lt(folded, Lit(int64_t{45}));
}

void BM_SelectSequential(benchmark::State& state) {
  Relation input = BigInts(200000, 61);
  ExprPtr pred = HeavyPredicate();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unwrap(ops::Select(pred, input)));
  }
}
BENCHMARK(BM_SelectSequential);

void BM_SelectParallel(benchmark::State& state) {
  Relation input = BigInts(200000, 61);
  ExprPtr pred = HeavyPredicate();
  parallel::ParallelOptions options;
  options.num_threads = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Unwrap(parallel::ParallelSelect(pred, input, options)));
  }
}
BENCHMARK(BM_SelectParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_JoinSequential(benchmark::State& state) {
  Relation left = BigInts(100000, 62);
  Relation right = BigInts(25000, 63);
  for (auto _ : state) {
    exec::HashJoinOp join({0}, {0}, nullptr,
                          std::make_unique<exec::ScanOp>(&left),
                          std::make_unique<exec::ScanOp>(&right));
    benchmark::DoNotOptimize(Unwrap(exec::ExecuteToRelation(join)));
  }
}
BENCHMARK(BM_JoinSequential);

void BM_JoinParallel(benchmark::State& state) {
  Relation left = BigInts(100000, 62);
  Relation right = BigInts(25000, 63);
  parallel::ParallelOptions options;
  options.num_threads = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unwrap(
        parallel::ParallelEquiJoin({0}, {0}, nullptr, left, right, options)));
  }
}
BENCHMARK(BM_JoinParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_GroupBySequential(benchmark::State& state) {
  Relation input = BigInts(200000, 64);
  std::vector<AggSpec> aggs = {{AggKind::kSum, 1, "s"},
                               {AggKind::kCnt, 0, "n"}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unwrap(ops::GroupBy({0}, aggs, input)));
  }
}
BENCHMARK(BM_GroupBySequential);

void BM_GroupByParallel(benchmark::State& state) {
  Relation input = BigInts(200000, 64);
  std::vector<AggSpec> aggs = {{AggKind::kSum, 1, "s"},
                               {AggKind::kCnt, 0, "n"}};
  parallel::ParallelOptions options;
  options.num_threads = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Unwrap(parallel::ParallelGroupBy({0}, aggs, input, options)));
  }
}
BENCHMARK(BM_GroupByParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void Report() {
  Header("E11: parallel processing (PRISMA direction, §5)",
         "Claim: the algebra extends with fragmentation-based parallel "
         "operators that recombine with ⊎; results are identical to the "
         "sequential operators.");
  Row("host hardware concurrency: %u cores — on a single-core host this",
      std::thread::hardware_concurrency());
  Row("series demonstrates correctness and bounded overhead; speedup");
  Row("scales with physical cores.");
  Row("");
  Relation left = BigInts(50000, 62);
  Relation right = BigInts(20000, 63);
  exec::HashJoinOp reference({0}, {0}, nullptr,
                             std::make_unique<exec::ScanOp>(&left),
                             std::make_unique<exec::ScanOp>(&right));
  Relation sequential = Unwrap(exec::ExecuteToRelation(reference));
  Row("%-10s %-14s %-10s", "threads", "|join|", "equal?");
  for (size_t threads : {1, 2, 4, 8}) {
    parallel::ParallelOptions options;
    options.num_threads = threads;
    Relation par = Unwrap(
        parallel::ParallelEquiJoin({0}, {0}, nullptr, left, right, options));
    MRA_CHECK(par.Equals(sequential));
    Row("%-10zu %-14llu %-10s", threads,
        static_cast<unsigned long long>(par.size()), "yes");
  }
}

}  // namespace
}  // namespace bench
}  // namespace mra

int main(int argc, char** argv) {
  mra::bench::Report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
