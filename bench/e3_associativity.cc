// E3 — Theorem 3.3: ×, ⋈, ⊎ and ∩ are associative.
//
// Associativity (with commutativity) is what makes join *ordering* a free
// choice for the optimizer; the experiment verifies the identity and
// measures how much the order matters: joining the selective pair first
// wins, and the cost-based build-side commutation picks the cheap side.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "mra/algebra/ops.h"
#include "mra/exec/physical_planner.h"
#include "mra/opt/optimizer.h"

namespace mra {
namespace bench {
namespace {

// r(a, b) joins s(b, c) on b; s joins t(c, d) on c.  s and t are small,
// r is large: (s ⋈ t) first is the good order.  The key range scales with
// n so join fan-out (and thus result density) stays constant across the
// sweep.
Catalog MakeChainCatalog(size_t n) {
  int64_t range = static_cast<int64_t>(n) / 50;
  Catalog catalog;
  AddIntRelation(&catalog, "r", n, range, util::DupDistribution::kUniform, 3,
                 41);
  AddIntRelation(&catalog, "s", n / 10, range, util::DupDistribution::kNone,
                 1, 42);
  // t is tiny and therefore selective: joining s ⋈ t first (right-deep)
  // shrinks the intermediate before the expensive join against r.
  AddIntRelation(&catalog, "t", std::max<size_t>(n / 500, 4), range,
                 util::DupDistribution::kNone, 1, 43);
  return catalog;
}

PlanPtr LeftDeep(const Catalog& catalog) {
  PlanPtr r = Plan::Scan("r", Unwrap(catalog.GetRelation("r"))->schema());
  PlanPtr s = Plan::Scan("s", Unwrap(catalog.GetRelation("s"))->schema());
  PlanPtr t = Plan::Scan("t", Unwrap(catalog.GetRelation("t"))->schema());
  // (r ⋈_{r.b = s.b} s) ⋈_{s.c = t.c} t.
  PlanPtr rs = Unwrap(Plan::Join(Eq(Attr(1), Attr(2)), std::move(r),
                                 std::move(s)));
  return Unwrap(Plan::Join(Eq(Attr(3), Attr(4)), std::move(rs),
                           std::move(t)));
}

PlanPtr RightDeep(const Catalog& catalog) {
  PlanPtr r = Plan::Scan("r", Unwrap(catalog.GetRelation("r"))->schema());
  PlanPtr s = Plan::Scan("s", Unwrap(catalog.GetRelation("s"))->schema());
  PlanPtr t = Plan::Scan("t", Unwrap(catalog.GetRelation("t"))->schema());
  // r ⋈_{r.b = s.b} (s ⋈_{s.c = t.c} t).
  PlanPtr st = Unwrap(Plan::Join(Eq(Attr(1), Attr(2)), std::move(s),
                                 std::move(t)));
  return Unwrap(Plan::Join(Eq(Attr(1), Attr(2)), std::move(r),
                           std::move(st)));
}

void BM_LeftDeepJoin(benchmark::State& state) {
  Catalog catalog = MakeChainCatalog(state.range(0));
  PlanPtr plan = LeftDeep(catalog);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unwrap(exec::ExecutePlan(plan, catalog)));
  }
}
BENCHMARK(BM_LeftDeepJoin)->Arg(10000)->Arg(50000);

void BM_RightDeepJoin(benchmark::State& state) {
  Catalog catalog = MakeChainCatalog(state.range(0));
  PlanPtr plan = RightDeep(catalog);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unwrap(exec::ExecutePlan(plan, catalog)));
  }
}
BENCHMARK(BM_RightDeepJoin)->Arg(10000)->Arg(50000);

void BM_LeftDeepOptimized(benchmark::State& state) {
  Catalog catalog = MakeChainCatalog(state.range(0));
  opt::Optimizer optimizer(&catalog);
  PlanPtr plan = Unwrap(optimizer.Optimize(LeftDeep(catalog)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unwrap(exec::ExecutePlan(plan, catalog)));
  }
}
BENCHMARK(BM_LeftDeepOptimized)->Arg(10000)->Arg(50000);

void VerifyTheorem() {
  Header("E3: Theorem 3.3 — associativity of ×, ⋈, ⊎, ∩",
         "Claim: operand grouping is semantically free, so the optimizer "
         "may pick the cheap order; cardinalities decide which that is.");
  Catalog catalog = MakeChainCatalog(10000);
  Relation left = Unwrap(exec::ExecutePlan(LeftDeep(catalog), catalog));
  Relation right = Unwrap(exec::ExecutePlan(RightDeep(catalog), catalog));
  Row("%-28s %-14llu", "|(r ⋈ s) ⋈ t|",
      static_cast<unsigned long long>(left.size()));
  Row("%-28s %-14llu", "|r ⋈ (s ⋈ t)|",
      static_cast<unsigned long long>(right.size()));
  Row("%-28s %-14s", "equal?", left.Equals(right) ? "yes" : "NO!");
  MRA_CHECK(left.Equals(right));

  // ⊎ and ∩ associativity at scale.
  const Relation* r = Unwrap(catalog.GetRelation("r"));
  const Relation* s = Unwrap(catalog.GetRelation("s"));
  const Relation* t = Unwrap(catalog.GetRelation("t"));
  Relation u1 = Unwrap(ops::Union(Unwrap(ops::Union(*r, *s)), *t));
  Relation u2 = Unwrap(ops::Union(*r, Unwrap(ops::Union(*s, *t))));
  MRA_CHECK(u1.Equals(u2));
  Row("%-28s %-14s", "(r ⊎ s) ⊎ t = r ⊎ (s ⊎ t)?", "yes");
  Relation i1 = Unwrap(ops::Intersect(Unwrap(ops::Intersect(*r, *s)), *t));
  Relation i2 = Unwrap(ops::Intersect(*r, Unwrap(ops::Intersect(*s, *t))));
  MRA_CHECK(i1.Equals(i2));
  Row("%-28s %-14s", "(r ∩ s) ∩ t = r ∩ (s ∩ t)?", "yes");
}

}  // namespace
}  // namespace bench
}  // namespace mra

int main(int argc, char** argv) {
  mra::bench::VerifyTheorem();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
