// E4 — Example 3.2: the size-reducing early projection.
//
// The paper's central practical example: computing AVG(alcperc) per country
// over beer ⋈ brewery, with a projection inserted below the group-by "to
// reduce the size of intermediate results".  Under bag semantics both
// expressions agree; under set semantics the projected variant is WRONG
// (its hidden duplicate elimination merges equal (alcperc, country) rows).
// The experiment reports (a) the correctness table for both semantics and
// (b) the performance effect of the optimizer's automatic column pruning.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.h"
#include "mra/algebra/ops.h"
#include "mra/exec/physical_planner.h"
#include "mra/opt/optimizer.h"
#include "mra/setalg/set_ops.h"

namespace mra {
namespace bench {
namespace {

// Compares two (country, avg) relations allowing floating-point slack:
// the early projection merges duplicate (alcperc, country) pairs before
// summation, so the AVG accumulates in a different order — equal over the
// reals (the paper's claim), not necessarily bit-equal over doubles.
bool ApproxAvgEquals(const Relation& a, const Relation& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [tuple, count] : a) {
    bool found = false;
    for (const auto& [other, other_count] : b) {
      if (!tuple.at(0).Equals(other.at(0))) continue;
      double x = tuple.at(1).real_value();
      double y = other.at(1).real_value();
      double tolerance = 1e-9 * std::max({1.0, std::abs(x), std::abs(y)});
      found = std::abs(x - y) <= tolerance && count == other_count;
      break;
    }
    if (!found) return false;
  }
  return true;
}

PlanPtr Example32Plan(const Catalog& catalog) {
  PlanPtr beer = Plan::Scan("beer", Unwrap(catalog.GetRelation("beer"))->schema());
  PlanPtr brewery =
      Plan::Scan("brewery", Unwrap(catalog.GetRelation("brewery"))->schema());
  PlanPtr join = Unwrap(Plan::Join(Eq(Attr(1), Attr(3)), std::move(beer),
                                   std::move(brewery)));
  return Unwrap(Plan::GroupBy({5}, {{AggKind::kAvg, 2, "avg_alcperc"}},
                              std::move(join)));
}

void BM_Example32_NoPruning(benchmark::State& state) {
  Catalog catalog = MakeBeerCatalog(state.range(0), 3.0);
  opt::OptimizerOptions options;
  options.column_pruning = false;
  opt::Optimizer optimizer(&catalog, options);
  PlanPtr plan = Unwrap(optimizer.Optimize(Example32Plan(catalog)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unwrap(exec::ExecutePlan(plan, catalog)));
  }
}
BENCHMARK(BM_Example32_NoPruning)->Arg(10000)->Arg(100000);

void BM_Example32_WithPruning(benchmark::State& state) {
  Catalog catalog = MakeBeerCatalog(state.range(0), 3.0);
  opt::Optimizer optimizer(&catalog);
  PlanPtr plan = Unwrap(optimizer.Optimize(Example32Plan(catalog)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unwrap(exec::ExecutePlan(plan, catalog)));
  }
}
BENCHMARK(BM_Example32_WithPruning)->Arg(10000)->Arg(100000);

void BM_Example32_HandWrittenEarlyProjection(benchmark::State& state) {
  // The exact second expression of Example 3.2, written by hand:
  // Γ(π_(alcperc,country)(beer ⋈ brewery)).
  Catalog catalog = MakeBeerCatalog(state.range(0), 3.0);
  PlanPtr beer = Plan::Scan("beer", Unwrap(catalog.GetRelation("beer"))->schema());
  PlanPtr brewery =
      Plan::Scan("brewery", Unwrap(catalog.GetRelation("brewery"))->schema());
  PlanPtr join = Unwrap(Plan::Join(Eq(Attr(1), Attr(3)), std::move(beer),
                                   std::move(brewery)));
  PlanPtr narrow = Unwrap(Plan::ProjectIndexes({2, 5}, std::move(join)));
  PlanPtr plan = Unwrap(Plan::GroupBy({1}, {{AggKind::kAvg, 0, "avg_alcperc"}},
                                      std::move(narrow)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unwrap(exec::ExecutePlan(plan, catalog)));
  }
}
BENCHMARK(BM_Example32_HandWrittenEarlyProjection)->Arg(10000)->Arg(100000);

// The paper motivates the projection as "reducing the size of intermediate
// results".  With the narrow 3-column beer schema the projection pass can
// cost more than it saves; with realistic wide tuples (here: 8 payload
// columns) the narrowing pays.  This variant measures that regime.
Catalog MakeWideBeerCatalog(size_t n) {
  Catalog narrow = MakeBeerCatalog(n, 3.0);
  const Relation* beer = Unwrap(narrow.GetRelation("beer"));

  std::vector<Attribute> attrs = beer->schema().attributes();
  for (int i = 0; i < 8; ++i) {
    attrs.push_back({"payload" + std::to_string(i), Type::String()});
  }
  Relation wide(RelationSchema("beer", std::move(attrs)));
  for (const auto& [tuple, count] : *beer) {
    std::vector<Value> values = tuple.values();
    for (int i = 0; i < 8; ++i) {
      values.push_back(Value::Str("payload-" + std::to_string(i) + "-" +
                                  tuple.at(0).string_value()));
    }
    wide.InsertUnchecked(Tuple(std::move(values)), count);
  }
  Catalog catalog;
  Unwrap(catalog.CreateRelation(wide.schema()));
  Unwrap(catalog.SetRelation("beer", std::move(wide)));
  const Relation* brewery = Unwrap(narrow.GetRelation("brewery"));
  Unwrap(catalog.CreateRelation(brewery->schema()));
  Unwrap(catalog.SetRelation("brewery", *brewery));
  return catalog;
}

PlanPtr WideExample32Plan(const Catalog& catalog) {
  PlanPtr beer = Plan::Scan("beer", Unwrap(catalog.GetRelation("beer"))->schema());
  PlanPtr brewery =
      Plan::Scan("brewery", Unwrap(catalog.GetRelation("brewery"))->schema());
  // beer is 11 columns wide; brewery starts at index 11, country at 13.
  PlanPtr join = Unwrap(Plan::Join(Eq(Attr(1), Attr(11)), std::move(beer),
                                   std::move(brewery)));
  return Unwrap(Plan::GroupBy({13}, {{AggKind::kAvg, 2, "avg_alcperc"}},
                              std::move(join)));
}

void BM_WideTuples_NoPruning(benchmark::State& state) {
  Catalog catalog = MakeWideBeerCatalog(state.range(0));
  opt::OptimizerOptions options;
  options.column_pruning = false;
  opt::Optimizer optimizer(&catalog, options);
  PlanPtr plan = Unwrap(optimizer.Optimize(WideExample32Plan(catalog)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unwrap(exec::ExecutePlan(plan, catalog)));
  }
}
BENCHMARK(BM_WideTuples_NoPruning)->Arg(10000)->Arg(50000);

void BM_WideTuples_WithPruning(benchmark::State& state) {
  Catalog catalog = MakeWideBeerCatalog(state.range(0));
  opt::Optimizer optimizer(&catalog);
  PlanPtr plan = Unwrap(optimizer.Optimize(WideExample32Plan(catalog)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unwrap(exec::ExecutePlan(plan, catalog)));
  }
}
BENCHMARK(BM_WideTuples_WithPruning)->Arg(10000)->Arg(50000);

void VerifyExample() {
  Header("E4: Example 3.2 — early projection",
         "Claim: with bag semantics the inserted projection preserves the "
         "aggregate; with set semantics it silently corrupts it.");
  Catalog catalog = MakeBeerCatalog(20000, 3.0);
  const Relation* beer = Unwrap(catalog.GetRelation("beer"));
  const Relation* brewery = Unwrap(catalog.GetRelation("brewery"));
  ExprPtr join_cond = Eq(Attr(1), Attr(3));

  // Bag semantics, both forms.
  Relation join = Unwrap(ops::Join(join_cond, *beer, *brewery));
  Relation direct =
      Unwrap(ops::GroupBy({5}, {{AggKind::kAvg, 2, "avg"}}, join));
  Relation narrow = Unwrap(ops::ProjectIndexes({2, 5}, join));
  Relation early =
      Unwrap(ops::GroupBy({1}, {{AggKind::kAvg, 0, "avg"}}, narrow));
  Row("bag semantics:  direct vs early projection equal?  %s",
      ApproxAvgEquals(direct, early)
          ? "yes (up to floating-point summation order)"
          : "NO!");
  MRA_CHECK(ApproxAvgEquals(direct, early));

  // Set semantics with the same early projection.
  Relation set_join = Unwrap(setalg::Join(join_cond, *beer, *brewery));
  Relation set_narrow =
      Unwrap(setalg::Project({Attr(2), Attr(5)}, set_join));
  Relation set_early =
      Unwrap(setalg::GroupBy({1}, {{AggKind::kAvg, 0, "avg"}}, set_narrow));

  Row("set semantics:  early projection equals bag result?  %s",
      direct.Equals(set_early) ? "yes (unexpectedly)" : "NO — corrupted");
  Row("");
  Row("%-10s %-22s %-22s", "country", "bag AVG(alcperc)", "set AVG(alcperc)");
  auto find = [](const Relation& rel, const std::string& country) -> double {
    for (const auto& [tuple, count] : rel) {
      if (tuple.at(0).string_value() == country) {
        return tuple.at(1).real_value();
      }
    }
    return -1.0;
  };
  for (const char* country : {"NL", "BE", "DE"}) {
    Row("%-10s %-22.6f %-22.6f", country, find(direct, country),
        find(set_early, country));
  }
  Row("");
  Row("intermediate sizes: |join| = %llu tuples (%zu distinct), "
      "|π(join)| = %llu tuples (%zu distinct)",
      static_cast<unsigned long long>(join.size()), join.distinct_size(),
      static_cast<unsigned long long>(narrow.size()),
      narrow.distinct_size());
}

}  // namespace
}  // namespace bench
}  // namespace mra

int main(int argc, char** argv) {
  mra::bench::VerifyExample();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
