// Shared helpers for the experiment benchmarks (E1–E9 in DESIGN.md).
//
// Each bench binary prints, before the google-benchmark timing table, a
// paper-style summary block (the "rows" the experiment reproduces:
// equivalence checks, result cardinalities, speedup factors), so running
// `for b in build/bench/*; do $b; done` regenerates every reported series.

#ifndef MRA_BENCH_BENCH_UTIL_H_
#define MRA_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>

#include "mra/catalog/catalog.h"
#include "mra/common/check.h"
#include "mra/obs/metrics.h"
#include "mra/util/generator.h"

namespace mra {
namespace bench {

/// Aborts the benchmark on error results — benches only run on valid
/// plans, so failures are programming errors.
template <typename T>
T Unwrap(Result<T> result) {
  MRA_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

inline void Unwrap(const Status& status) {
  MRA_CHECK(status.ok()) << status.ToString();
}

/// Builds a catalog holding a generated beer database of the given scale.
inline Catalog MakeBeerCatalog(size_t num_beers, double duplicate_factor,
                               size_t num_breweries = 100) {
  util::BeerDbOptions options;
  options.num_beers = num_beers;
  options.num_breweries = num_breweries;
  options.num_beer_names = std::max<size_t>(num_beers / 4, 1);
  options.duplicate_factor = duplicate_factor;
  util::BeerDb db = Unwrap(util::MakeBeerDb(options));
  Catalog catalog;
  Unwrap(catalog.CreateRelation(db.beer.schema()));
  Unwrap(catalog.SetRelation("beer", std::move(db.beer)));
  Unwrap(catalog.CreateRelation(db.brewery.schema()));
  Unwrap(catalog.SetRelation("brewery", std::move(db.brewery)));
  return catalog;
}

/// Adds an integer relation to a catalog.
inline void AddIntRelation(Catalog* catalog, const std::string& name,
                           size_t distinct, int64_t value_range,
                           util::DupDistribution dup, uint64_t max_mult,
                           uint64_t seed) {
  util::IntRelationOptions options;
  options.name = name;
  options.distinct_tuples = distinct;
  options.value_range = value_range;
  options.duplicates = dup;
  options.max_multiplicity = max_mult;
  options.seed = seed;
  Relation rel = Unwrap(util::MakeIntRelation(options));
  Unwrap(catalog->CreateRelation(rel.schema()));
  Unwrap(catalog->SetRelation(name, std::move(rel)));
}

/// Prints a one-line summary row (the paper-style report).
template <typename... Args>
void Row(const char* format, Args... args) {
  std::printf(format, args...);
  std::printf("\n");
}

inline void Header(const char* experiment, const char* claim) {
  std::printf("\n=== %s ===\n%s\n\n", experiment, claim);
}

/// Dumps the process-wide metrics registry as JSON, tagged with the
/// experiment name — run after the summary block so each bench reports
/// what the engine actually did (rule firings, WAL traffic, queries).
inline void DumpMetricsJson(const char* experiment) {
  std::printf("\n--- metrics after %s ---\n%s\n", experiment,
              obs::MetricsRegistry::Global().RenderJson().c_str());
}

}  // namespace bench
}  // namespace mra

#endif  // MRA_BENCH_BENCH_UTIL_H_
