// E13 — network query server throughput.
//
// Measures end-to-end request throughput over the loopback TCP server:
// handshake-amortised query round trips (select over the beer relation),
// committing scripts that queue on the serial transaction slot, and pings
// (pure framing + socket cost, no query evaluation).  Each benchmark
// thread owns one client connection, so ->ThreadRange(1, 8) reports how
// qps scales with concurrent sessions against one shared Database.

#include <benchmark/benchmark.h>

#include <memory>
#include <mutex>

#include "bench_util.h"
#include "mra/lang/interpreter.h"
#include "mra/net/client.h"
#include "mra/net/server.h"

namespace mra {
namespace bench {
namespace {

// One server for the whole binary: started lazily, torn down at exit.
class ServerHarness {
 public:
  static ServerHarness& Get() {
    static ServerHarness harness;
    return harness;
  }

  int port() const { return server_->port(); }

 private:
  ServerHarness() {
    db_ = std::move(Database::Open({}).value());
    lang::Interpreter interp(db_.get());
    Status s = interp.ExecuteScript(
        "create beer(name: string, brewery: string, alcperc: real);"
        "create tally(n: int);",
        nullptr);
    if (!s.ok()) std::abort();
    // 1000 distinct beers so the select has real work to do.
    for (int chunk = 0; chunk < 10; ++chunk) {
      std::string script = "insert(beer, {";
      for (int i = 0; i < 100; ++i) {
        int id = chunk * 100 + i;
        if (i > 0) script += ",";
        script += "('beer" + std::to_string(id) + "', 'brew" +
                  std::to_string(id % 7) + "', " +
                  std::to_string(3.0 + (id % 60) * 0.1) + ")";
      }
      script += "});";
      if (!interp.ExecuteScript(script, nullptr).ok()) std::abort();
    }
    net::ServerOptions options;
    options.max_sessions = 64;
    server_ = std::make_unique<net::Server>(db_.get(), options);
    if (!server_->Start().ok()) std::abort();
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<net::Server> server_;
};

net::Client ConnectClient() {
  auto client = net::Client::Connect("127.0.0.1", ServerHarness::Get().port());
  if (!client.ok()) std::abort();
  return std::move(*client);
}

void BM_ServerQuery(benchmark::State& state) {
  net::Client client = ConnectClient();
  for (auto _ : state) {
    auto result = client.Query("select(%3 > 5.5, beer)");
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServerQuery)->ThreadRange(1, 8)->UseRealTime();

void BM_ServerCommitScript(benchmark::State& state) {
  net::Client client = ConnectClient();
  int64_t tick = state.thread_index() * 1'000'000;
  for (auto _ : state) {
    auto results = client.ExecuteScript(
        "insert(tally, {(" + std::to_string(tick++) + ")});");
    if (!results.ok()) {
      state.SkipWithError(results.status().ToString().c_str());
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServerCommitScript)->ThreadRange(1, 8)->UseRealTime();

void BM_ServerPing(benchmark::State& state) {
  net::Client client = ConnectClient();
  for (auto _ : state) {
    Status s = client.Ping();
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServerPing)->ThreadRange(1, 8)->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace mra

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  mra::bench::DumpMetricsJson("E13");  // Includes the net.* family.
  return 0;
}
