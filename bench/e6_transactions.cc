// E6 — §4.3: transactions.
//
// Measures the cost of the transaction machinery the paper layers over the
// algebra: commit throughput (in-memory, WAL, WAL+fsync), abort cost
// (copy-on-write overlays make it O(touched relations)), and recovery
// (checkpoint + WAL replay), with a correctness check that recovery
// reproduces the pre-shutdown state exactly.

#include <benchmark/benchmark.h>

#include <filesystem>

#include "bench_util.h"
#include "mra/txn/database.h"
#include "mra/txn/transaction.h"

namespace mra {
namespace bench {
namespace {

RelationSchema AccountSchema() {
  return RelationSchema("account", {{"id", Type::Int()},
                                    {"balance", Type::Decimal()}});
}

Relation OneAccount(int64_t id, int64_t units) {
  Relation r(RelationSchema({{"id", Type::Int()},
                             {"balance", Type::Decimal()}}));
  r.InsertUnchecked(Tuple({Value::Int(id), Value::Decimal(units)}), 1);
  return r;
}

std::string TempDbDir() {
  static int counter = 0;
  auto path = std::filesystem::temp_directory_path() /
              ("mra_bench_db_" + std::to_string(::getpid()) + "_" +
               std::to_string(counter++));
  return path.string();
}

void RunCommits(benchmark::State& state, const DatabaseOptions& options) {
  std::string dir = options.directory;
  auto db = Unwrap(Database::Open(options));
  Unwrap(db->CreateRelation(AccountSchema()));
  // Pre-populate a fixed-size ledger so each commit's after-image (and
  // therefore each WAL record) has constant size.
  {
    auto setup = Unwrap(db->Begin());
    for (int64_t i = 0; i < 100; ++i) {
      Unwrap(setup->Insert("account", OneAccount(i, 100)));
    }
    Unwrap(setup->Commit());
  }
  int64_t tick = 0;
  for (auto _ : state) {
    int64_t id = tick++ % 100;
    auto txn = Unwrap(db->Begin());
    Unwrap(txn->Delete("account", OneAccount(id, 100)));
    Unwrap(txn->Insert("account", OneAccount(id, 100)));
    Unwrap(txn->Commit());
  }
  state.SetItemsProcessed(state.iterations());
  db.reset();
  if (!dir.empty()) std::filesystem::remove_all(dir);
}

void BM_CommitInMemory(benchmark::State& state) {
  RunCommits(state, DatabaseOptions{});
}
BENCHMARK(BM_CommitInMemory);

void BM_CommitWal(benchmark::State& state) {
  RunCommits(state, DatabaseOptions{.directory = TempDbDir()});
}
BENCHMARK(BM_CommitWal);

void BM_CommitWalFsync(benchmark::State& state) {
  RunCommits(state, DatabaseOptions{.directory = TempDbDir(),
                                    .sync_commits = true});
}
BENCHMARK(BM_CommitWalFsync)->Iterations(200);

void BM_AbortAfterLargeInsert(benchmark::State& state) {
  auto db = Unwrap(Database::Open());
  Unwrap(db->CreateRelation(AccountSchema()));
  Relation big(RelationSchema({{"id", Type::Int()},
                               {"balance", Type::Decimal()}}));
  for (int64_t i = 0; i < state.range(0); ++i) {
    big.InsertUnchecked(Tuple({Value::Int(i), Value::Decimal(1)}), 1);
  }
  for (auto _ : state) {
    auto txn = Unwrap(db->Begin());
    Unwrap(txn->Insert("account", big));
    Unwrap(txn->Abort());
  }
}
BENCHMARK(BM_AbortAfterLargeInsert)->Arg(1000)->Arg(10000);

void BM_RecoveryFromWal(benchmark::State& state) {
  std::string dir = TempDbDir();
  {
    auto db = Unwrap(Database::Open({.directory = dir}));
    Unwrap(db->CreateRelation(AccountSchema()));
    for (int64_t i = 0; i < state.range(0); ++i) {
      auto txn = Unwrap(db->Begin());
      Unwrap(txn->Insert("account", OneAccount(i, 100)));
      Unwrap(txn->Commit());
    }
  }
  for (auto _ : state) {
    auto db = Unwrap(Database::Open({.directory = dir}));
    benchmark::DoNotOptimize(db->logical_time());
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_RecoveryFromWal)->Arg(100)->Arg(500);

void Report() {
  Header("E6: transactions (§4.3)",
         "Claim: bracketed programs execute with atomicity, isolation and "
         "durability on top of the algebra's statement semantics.");
  // Correctness: recovery reproduces the committed state bit-for-bit.
  std::string dir = TempDbDir();
  Relation before(AccountSchema());
  {
    auto db = Unwrap(Database::Open({.directory = dir}));
    Unwrap(db->CreateRelation(AccountSchema()));
    for (int64_t i = 0; i < 500; ++i) {
      auto txn = Unwrap(db->Begin());
      Unwrap(txn->Insert("account", OneAccount(i % 50, i)));
      if (i % 7 == 0) {
        Unwrap(txn->Abort());
      } else {
        Unwrap(txn->Commit());
      }
    }
    before = *Unwrap(db->catalog().GetRelation("account"));
  }
  auto db = Unwrap(Database::Open({.directory = dir}));
  const Relation* after = Unwrap(db->catalog().GetRelation("account"));
  Row("committed tuples before shutdown : %llu",
      static_cast<unsigned long long>(before.size()));
  Row("recovered tuples after reopen    : %llu",
      static_cast<unsigned long long>(after->size()));
  Row("states identical?                : %s",
      before.Equals(*after) ? "yes" : "NO!");
  MRA_CHECK(before.Equals(*after));
  Row("logical time after recovery      : %llu",
      static_cast<unsigned long long>(db->logical_time()));
  db.reset();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace bench
}  // namespace mra

int main(int argc, char** argv) {
  mra::bench::Report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  mra::bench::DumpMetricsJson("E6");
  return 0;
}
