// E20 — morsel-driven intra-query parallel scaling (supersedes E11, which
// measured the old free-standing parallel helpers; docs/PARALLELISM.md).
//
// The claim: at the 1M-row scale the partitioned hash kernels scale with
// worker lanes — the 4-worker join+group-by pipeline runs >= 2x faster
// than 1 worker — while the 1-worker parallel operator stays within 5% of
// the serial kernel (a one-lane lease skips radix routing entirely, so
// the morsel scheduler must be nearly free when it buys nothing).
//
// Both claims print "REGRESSION" lines when violated so the CI smoke run
// can grep for them; the scaling check is skipped (with a note) on
// machines with fewer than 4 hardware threads, where a 2x expectation is
// physically meaningless.  Result multisets are asserted identical across
// all lane counts before anything is timed.
//
//   $ ./build/bench/e20_parallel_scaling               # full 1M-row run
//   $ ./build/bench/e20_parallel_scaling --rows 50000  # CI smoke scale

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "mra/algebra/ops.h"
#include "mra/exec/operator.h"
#include "mra/expr/scalar_expr.h"
#include "mra/parallel/parallel_ops.h"

namespace mra {
namespace bench {
namespace {

Relation MakeInput(size_t distinct, int64_t value_range, uint64_t seed,
                   const char* name) {
  util::IntRelationOptions options;
  options.name = name;
  options.distinct_tuples = distinct;
  options.arity = 2;
  options.value_range = value_range;
  options.duplicates = util::DupDistribution::kUniform;
  options.max_multiplicity = 4;
  options.seed = seed;
  return Unwrap(util::MakeIntRelation(options));
}

constexpr size_t kMorsel = 1024;

/// The measured pipeline: Γ_{k, sum, cnt}(jl ⋈_{k=k} jr) — a partitioned
/// build+probe feeding a partitioned two-phase aggregation.
exec::PhysOpPtr BuildPipeline(const Relation* left, const Relation* right,
                              size_t workers) {
  std::vector<AggSpec> aggs = {{AggKind::kSum, 1, "sum_v"},
                               {AggKind::kCnt, 0, "cnt"}};
  exec::PhysOpPtr join;
  if (workers <= 1) {
    // workers == 0 selects the serial kernels outright — the overhead
    // baseline; workers == 1 is the parallel operator on a one-lane lease.
    join = workers == 0
               ? exec::PhysOpPtr(std::make_unique<exec::HashJoinOp>(
                     std::vector<size_t>{0}, std::vector<size_t>{0}, nullptr,
                     std::make_unique<exec::ScanOp>(left),
                     std::make_unique<exec::ScanOp>(right)))
               : exec::PhysOpPtr(std::make_unique<parallel::ParallelHashJoinOp>(
                     std::vector<size_t>{0}, std::vector<size_t>{0}, nullptr,
                     std::make_unique<exec::ScanOp>(left),
                     std::make_unique<exec::ScanOp>(right), 1, kMorsel));
  } else {
    join = std::make_unique<parallel::ParallelHashJoinOp>(
        std::vector<size_t>{0}, std::vector<size_t>{0}, nullptr,
        std::make_unique<exec::ScanOp>(left),
        std::make_unique<exec::ScanOp>(right), workers, kMorsel);
  }
  RelationSchema schema =
      Unwrap(ops::GroupBySchema({0}, aggs, join->schema()));
  if (workers == 0) {
    return std::make_unique<exec::HashGroupByOp>(std::vector<size_t>{0}, aggs,
                                                 schema, std::move(join));
  }
  return std::make_unique<parallel::ParallelHashGroupByOp>(
      std::vector<size_t>{0}, aggs, schema, std::move(join),
      std::max<size_t>(workers, 1), kMorsel);
}

uint64_t Drain(exec::PhysicalOperator& root) {
  MRA_CHECK(root.Open().ok());
  exec::RowBatch batch;
  uint64_t weighted = 0;
  while (true) {
    MRA_CHECK(root.NextBatch(batch).ok());
    if (batch.empty()) break;
    for (const exec::Row& row : batch) weighted += row.count;
  }
  root.Close();
  return weighted;
}

double SecondsToDrain(const std::function<exec::PhysOpPtr()>& make,
                      uint64_t* weighted_out) {
  double best = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    exec::PhysOpPtr root = make();
    auto start = std::chrono::steady_clock::now();
    *weighted_out = Drain(*root);
    auto end = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double>(end - start).count());
  }
  return best;
}

void VerifyScaling(size_t rows) {
  Header("E20: morsel-driven parallel scaling",
         "Claim: the partitioned hash join + group-by pipeline at 1M rows "
         "reaches >= 2x at 4 workers over 1, and the 1-worker parallel "
         "operator costs <= 5% over the serial kernel (one-lane leases "
         "skip radix routing).");

  size_t side = std::max<size_t>(10'000, rows / 2);
  int64_t range = static_cast<int64_t>(side) / 2;
  Relation jl = MakeInput(side, range, 20, "jl");
  Relation jr = MakeInput(side, range, 21, "jr");

  // One reference bag, asserted identical across every lane count.
  Relation reference =
      Unwrap(exec::ExecuteToRelation(*BuildPipeline(&jl, &jr, 0)));
  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    Relation result =
        Unwrap(exec::ExecuteToRelation(*BuildPipeline(&jl, &jr, workers)));
    MRA_CHECK(result.Equals(reference))
        << "parallel pipeline changed the result multiset at workers="
        << workers;
  }

  Row("%-10s %-12s %-12s %-10s", "workers", "seconds", "speedup",
      "vs serial");
  uint64_t weighted = 0;
  double serial_s =
      SecondsToDrain([&] { return BuildPipeline(&jl, &jr, 0); }, &weighted);
  Row("%-10s %-12.4f %-12s %-10s", "serial", serial_s, "-", "1.00x");
  double one_worker_s = 0.0;
  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    double s = SecondsToDrain(
        [&] { return BuildPipeline(&jl, &jr, workers); }, &weighted);
    if (workers == 1) one_worker_s = s;
    Row("%-10zu %-12.4f %-11.2fx %-9.2fx", workers,
        s, one_worker_s / s, serial_s / s);
  }

  double overhead = one_worker_s / serial_s - 1.0;
  Row("");
  Row("1-worker overhead over serial kernels: %.1f%%", overhead * 100.0);
  if (overhead > 0.05) {
    Row("REGRESSION: 1-worker parallel operator costs %.1f%% over the "
        "serial kernel (budget: 5%%)", overhead * 100.0);
  }

  unsigned hw = std::thread::hardware_concurrency();
  if (hw < 4) {
    Row("note: %u hardware threads < 4 — the 2x scaling check is skipped "
        "on this machine", hw);
    return;
  }
  double four_worker_s = SecondsToDrain(
      [&] { return BuildPipeline(&jl, &jr, 4); }, &weighted);
  double speedup = one_worker_s / four_worker_s;
  Row("4-worker speedup over 1 worker: %.2fx", speedup);
  if (speedup < 2.0) {
    Row("REGRESSION: 4-worker speedup %.2fx below the 2x bar", speedup);
  }
}

// --- Microbenchmarks across lane counts. ---

void BM_ParallelPipeline(benchmark::State& state) {
  size_t workers = static_cast<size_t>(state.range(0));
  size_t side = 500'000;
  Relation l = MakeInput(side, static_cast<int64_t>(side) / 2, 20, "l");
  Relation r = MakeInput(side, static_cast<int64_t>(side) / 2, 21, "r");
  for (auto _ : state) {
    exec::PhysOpPtr root = BuildPipeline(&l, &r, workers);
    benchmark::DoNotOptimize(Drain(*root));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(side));
}
BENCHMARK(BM_ParallelPipeline)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace bench
}  // namespace mra

int main(int argc, char** argv) {
  size_t rows = 1'000'000;
  // Strip --rows N before benchmark::Initialize sees (and rejects) it.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      rows = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  mra::bench::VerifyScaling(rows);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  mra::bench::DumpMetricsJson("E20");
  return 0;
}
