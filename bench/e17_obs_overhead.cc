// E17 — observability overhead: the E15 1M-row scan → filter → project
// batch pipeline with the full observability stack armed (per-operator
// wall-time measurement, exec.op_batch_us / exec.query_us histogram
// recording, trace spans, slow-query logging) versus everything off.
//
// The claim backing "operator timing on by default" in mra_serverd: the
// hot-path cost is two steady_clock reads plus one lock-free histogram
// Observe per NextBatch call, amortised over RowBatch::capacity rows —
// under 3% end to end.  The summary block times both modes best-of-5,
// asserts identical drained cardinalities, and prints "REGRESSION" when
// the overhead crosses 3%, so the CI smoke run can grep for it.
//
//   $ ./build/bench/e17_obs_overhead                  # full 1M-row summary
//   $ ./build/bench/e17_obs_overhead --rows 50000     # CI smoke scale

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "mra/exec/operator.h"
#include "mra/expr/scalar_expr.h"
#include "mra/obs/metrics.h"
#include "mra/obs/op_metrics.h"
#include "mra/obs/slow_log.h"
#include "mra/obs/trace.h"

namespace mra {
namespace bench {
namespace {

constexpr int64_t kValueRange = 1'000'000;

Relation MakePipelineInput(size_t rows) {
  util::IntRelationOptions options;
  options.name = "r";
  options.distinct_tuples = rows;
  options.arity = 2;
  options.value_range = kValueRange;
  options.duplicates = util::DupDistribution::kUniform;
  options.max_multiplicity = 4;
  options.seed = 17;
  return Unwrap(util::MakeIntRelation(options));
}

// The E15 pipeline: σ_{%1 < kValueRange/2} then π_{%1}, both stages on
// the batch fast paths — the configuration where per-call bookkeeping is
// the thinnest slice and observability overhead is *most* visible.
exec::PhysOpPtr BuildPipeline(const Relation* input) {
  auto filter = std::make_unique<exec::FilterOp>(
      Lt(Attr(0), Lit(kValueRange / 2)),
      std::make_unique<exec::ScanOp>(input));
  RelationSchema out_schema("p", {Attribute{"c1", Type::Int()}});
  std::vector<ExprPtr> exprs;
  exprs.push_back(Attr(0));
  return std::make_unique<exec::ComputeOp>(
      std::move(exprs), std::move(out_schema), std::move(filter));
}

uint64_t DrainPipeline(exec::PhysicalOperator& root) {
  MRA_CHECK(root.Open().ok());
  uint64_t weighted = 0;
  exec::RowBatch batch(exec::kDefaultBatchSize);
  while (true) {
    MRA_CHECK(root.NextBatch(batch).ok());
    if (batch.empty()) break;
    for (const exec::Row& row : batch) weighted += row.count;
  }
  root.Close();
  return weighted;
}

// One "query" as the server would run it with observability on: a query
// id, a trace span, per-operator timing, the query-latency histogram,
// and a slow-query-log entry at the end.  With `observed` false, none of
// it — the pure pipeline.
double SecondsToDrain(const Relation* input, bool observed,
                      uint64_t* weighted_out) {
  exec::PhysOpPtr root = BuildPipeline(input);
  obs::ScopedExecTiming timing(observed);
  auto start = std::chrono::steady_clock::now();
  if (observed) {
    obs::ScopedQueryId qid(obs::NextQueryId());
    obs::ScopedSpan span("bench.drain");
    *weighted_out = DrainPipeline(*root);
    uint64_t latency_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    obs::MetricsRegistry::Global()
        .GetHistogram("exec.query_us")
        ->Observe(latency_us);
    if (obs::SlowQueryLog::Global().ShouldLog(latency_us)) {
      obs::SlowQueryEntry entry;
      entry.query_id = obs::CurrentQueryId();
      entry.latency_us = latency_us;
      entry.exec_us = latency_us;
      entry.result_rows = *weighted_out;
      entry.source = "bench: scan->filter->project drain";
      obs::SlowQueryLog::Global().Record(std::move(entry));
    }
  } else {
    *weighted_out = DrainPipeline(*root);
  }
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

void BM_PipelineDrain(benchmark::State& state) {
  Relation input = MakePipelineInput(100'000);
  bool observed = state.range(0) != 0;
  obs::ScopedExecTiming timing(observed);
  for (auto _ : state) {
    exec::PhysOpPtr root = BuildPipeline(&input);
    benchmark::DoNotOptimize(DrainPipeline(*root));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(input.distinct_size()));
}
BENCHMARK(BM_PipelineDrain)->Arg(0)->Arg(1);

void VerifyOverhead(size_t rows) {
  Header("E17: observability overhead",
         "Claim: the full observability stack (operator timing, latency "
         "histograms, trace spans, slow-query log) costs < 3% on the E15 "
         "1M-row batch pipeline.");
  Relation input = MakePipelineInput(rows);

  // Observed runs trace and slow-log like a served query would.
  obs::Tracer::Global().SetEnabled(true);
  obs::Tracer::Global().Clear();
  obs::SlowQueryLog::Global().SetThresholdMs(0);

  // Interleaved best-of-5 per mode: wall-clock seconds, so guard against
  // scheduler hiccups polluting either side of the ratio.
  double off_s = 1e30;
  double on_s = 1e30;
  uint64_t off_weighted = 0;
  uint64_t on_weighted = 0;
  for (int rep = 0; rep < 5; ++rep) {
    off_s = std::min(off_s, SecondsToDrain(&input, false, &off_weighted));
    on_s = std::min(on_s, SecondsToDrain(&input, true, &on_weighted));
  }
  MRA_CHECK(off_weighted == on_weighted)
      << "observability changed the drained bag cardinality";

  obs::Tracer::Global().SetEnabled(false);
  obs::Tracer::Global().Clear();
  obs::SlowQueryLog::Global().SetThresholdMs(-1);
  obs::SlowQueryLog::Global().Clear();

  double overhead_pct = (on_s - off_s) / off_s * 100.0;
  Row("%-12s %-12s %-12s %-14s %-10s", "rows", "obs-off s", "obs-on s",
      "rows/s obs-on", "overhead");
  Row("%-12zu %-12.3f %-12.3f %-14.3g %.2f%%", rows, off_s, on_s,
      static_cast<double>(rows) / on_s, overhead_pct);
  if (overhead_pct >= 3.0) {
    Row("REGRESSION: observability overhead %.2f%% >= 3%% budget",
        overhead_pct);
  }
  Row("");
  Row("drained: %llu weighted rows under both modes",
      static_cast<unsigned long long>(on_weighted));
}

}  // namespace
}  // namespace bench
}  // namespace mra

int main(int argc, char** argv) {
  size_t rows = 1'000'000;
  // Strip --rows N before benchmark::Initialize sees (and rejects) it.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      rows = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  mra::bench::VerifyOverhead(rows);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  mra::bench::DumpMetricsJson("E17");
  return 0;
}
