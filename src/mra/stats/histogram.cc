#include "mra/stats/histogram.h"

#include <algorithm>
#include <cstdio>

namespace mra {
namespace stats {

EquiDepthHistogram::EquiDepthHistogram(std::vector<HistogramBucket> buckets)
    : buckets_(std::move(buckets)) {
  for (const HistogramBucket& b : buckets_) total_rows_ += b.rows;
}

EquiDepthHistogram EquiDepthHistogram::Build(
    std::vector<std::pair<double, uint64_t>> values, size_t max_buckets) {
  if (values.empty() || max_buckets == 0) return EquiDepthHistogram();
  std::sort(values.begin(), values.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // Merge duplicate values so a bucket boundary can never split one value.
  std::vector<std::pair<double, uint64_t>> merged;
  merged.reserve(values.size());
  for (const auto& [v, n] : values) {
    if (!merged.empty() && merged.back().first == v) {
      merged.back().second += n;
    } else {
      merged.emplace_back(v, n);
    }
  }

  uint64_t total = 0;
  for (const auto& [v, n] : merged) total += n;
  // Target depth per bucket; the last value of a bucket may overshoot it.
  double depth =
      static_cast<double>(total) / static_cast<double>(max_buckets);

  std::vector<HistogramBucket> buckets;
  HistogramBucket current;
  bool open = false;
  for (const auto& [v, n] : merged) {
    if (!open) {
      current = HistogramBucket{v, v, 0, 0};
      open = true;
    }
    current.hi = v;
    current.rows += n;
    current.distinct += 1;
    if (static_cast<double>(current.rows) >= depth &&
        buckets.size() + 1 < max_buckets) {
      buckets.push_back(current);
      open = false;
    }
  }
  if (open) buckets.push_back(current);
  return EquiDepthHistogram(std::move(buckets));
}

double EquiDepthHistogram::EstimateLess(double v, bool inclusive) const {
  double acc = 0.0;
  for (const HistogramBucket& b : buckets_) {
    if (v > b.hi || (inclusive && v == b.hi)) {
      acc += static_cast<double>(b.rows);
      continue;
    }
    if (v < b.lo || (!inclusive && v == b.lo)) break;
    // v falls inside [lo, hi]: linear interpolation over the value range,
    // counting the boundary value's share when inclusive.
    double width = b.hi - b.lo;
    double fraction = width > 0 ? (v - b.lo) / width : 0.0;
    if (inclusive && b.distinct > 0) {
      fraction += 1.0 / static_cast<double>(b.distinct);
      fraction = std::min(fraction, 1.0);
    }
    acc += fraction * static_cast<double>(b.rows);
    break;
  }
  return acc;
}

double EquiDepthHistogram::EstimateEqual(double v) const {
  for (const HistogramBucket& b : buckets_) {
    if (v < b.lo) break;
    if (v > b.hi) continue;
    if (b.distinct == 0) return 0.0;
    return static_cast<double>(b.rows) / static_cast<double>(b.distinct);
  }
  return 0.0;
}

double EquiDepthHistogram::SelectivityLess(double v, bool inclusive) const {
  if (total_rows_ == 0) return 0.0;
  return EstimateLess(v, inclusive) / static_cast<double>(total_rows_);
}

double EquiDepthHistogram::SelectivityEqual(double v) const {
  if (total_rows_ == 0) return 0.0;
  return EstimateEqual(v) / static_cast<double>(total_rows_);
}

std::string EquiDepthHistogram::ToString() const {
  if (buckets_.empty()) return "empty histogram";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%zu buckets, rows=%llu, [%g..%g]",
                buckets_.size(),
                static_cast<unsigned long long>(total_rows_), min(), max());
  return buf;
}

}  // namespace stats
}  // namespace mra
