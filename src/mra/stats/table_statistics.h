// Persistent per-relation statistics, collected by ANALYZE.
//
// A TableStatistics snapshot carries multiplicity-weighted and distinct
// cardinalities for the whole relation plus, per attribute: a distinct
// count, a null fraction (always 0 under the paper's Definition 2.1 domains,
// which admit no NULL — the field exists so the estimator's math is ready
// for an outer-join extension), a numeric range, and an equi-depth
// histogram for ordered-numeric domains.  Snapshots are stored in the
// catalog, serialized with checkpoints, WAL-logged by ANALYZE, and go
// *stale* rather than invalid when the relation changes — the estimator
// uses whatever was last collected (collected_at records the logical time).

#ifndef MRA_STATS_TABLE_STATISTICS_H_
#define MRA_STATS_TABLE_STATISTICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mra/core/relation.h"
#include "mra/stats/histogram.h"

namespace mra {
namespace stats {

/// Statistics for one attribute.
struct ColumnStatistics {
  /// Distinct values (exact up to 64-bit hash collisions, capped during
  /// collection; see AnalyzeOptions::max_tracked_distinct).
  uint64_t distinct = 0;
  /// Fraction of rows (weighted) whose value is NULL.  Always 0 in the
  /// current NULL-free data model; see the header comment.
  double null_fraction = 0.0;
  /// Numeric/date range.
  bool has_range = false;
  double min = 0.0;
  double max = 0.0;
  /// Equi-depth histogram; empty() when the domain is not ordered-numeric
  /// or histograms were disabled for the collection.
  EquiDepthHistogram histogram;
};

/// Statistics for one relation instance.
struct TableStatistics {
  /// Multiplicity-weighted cardinality (|R| counting duplicates).
  uint64_t row_count = 0;
  /// Distinct tuple count.
  uint64_t distinct_count = 0;
  /// Catalog logical time when the snapshot was taken (staleness marker).
  uint64_t collected_at = 0;
  std::vector<ColumnStatistics> columns;

  /// Number of columns that carry a non-empty histogram.
  size_t histogram_count() const;

  /// One-line summary for ANALYZE output and debugging.
  std::string ToString() const;
};

struct AnalyzeOptions {
  /// Cap on tracked distinct values per column; beyond it the distinct
  /// count extrapolates conservatively to the relation's distinct tuple
  /// count.
  size_t max_tracked_distinct = 1u << 16;
  /// Build per-column equi-depth histograms for numeric/date columns.
  /// The optimizer's on-the-fly fallback path disables this (histograms
  /// are only worth their build cost when reused across queries).
  bool histograms = true;
  size_t histogram_buckets = EquiDepthHistogram::kDefaultBuckets;
};

/// Scans `relation` once and produces a statistics snapshot stamped with
/// `logical_time`.  Updates the stats.* metrics (histograms built; the
/// caller times the surrounding ANALYZE statement).
TableStatistics Analyze(const Relation& relation, uint64_t logical_time,
                        const AnalyzeOptions& options = {});

}  // namespace stats
}  // namespace mra

#endif  // MRA_STATS_TABLE_STATISTICS_H_
