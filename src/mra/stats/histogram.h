// Equi-depth (equi-height) histograms over ordered-numeric domains.
//
// ANALYZE builds one histogram per int/decimal/real/date column: buckets
// hold roughly equal multiplicity-weighted row counts, so heavily skewed
// value ranges get proportionally more resolution — the property that makes
// equi-depth strictly better than equi-width for selectivity estimation
// (the design follows Hyrise's AbstractHistogram family).  Multiset
// semantics matter here: bucket depth counts *rows* (multiplicities summed,
// Definition 2.4's Dup function), while per-bucket distinct counts track
// *tuples*, so the estimator can answer both "how many rows match" and
// "how many groups" questions.
//
// A bucket never splits one value: all rows of a single value land in one
// bucket, which keeps equality estimates sharp on skewed columns.

#ifndef MRA_STATS_HISTOGRAM_H_
#define MRA_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mra {
namespace stats {

/// One histogram bucket: the closed value range [lo, hi] with the weighted
/// row count and distinct value count that fall inside it.
struct HistogramBucket {
  double lo = 0.0;
  double hi = 0.0;
  uint64_t rows = 0;      // multiplicity-weighted
  uint64_t distinct = 0;  // distinct values in [lo, hi]
};

/// An immutable equi-depth histogram.
class EquiDepthHistogram {
 public:
  /// Default number of buckets; enough for ≤ ~3% per-bucket mass.
  static constexpr size_t kDefaultBuckets = 32;

  EquiDepthHistogram() = default;
  explicit EquiDepthHistogram(std::vector<HistogramBucket> buckets);

  /// Builds a histogram from (value, multiplicity) pairs; the input need
  /// not be sorted.  Returns an empty histogram for empty input.
  static EquiDepthHistogram Build(
      std::vector<std::pair<double, uint64_t>> values,
      size_t max_buckets = kDefaultBuckets);

  bool empty() const { return buckets_.empty(); }
  size_t bucket_count() const { return buckets_.size(); }
  const std::vector<HistogramBucket>& buckets() const { return buckets_; }

  /// Total multiplicity-weighted rows across all buckets.
  uint64_t total_rows() const { return total_rows_; }
  double min() const { return buckets_.empty() ? 0.0 : buckets_.front().lo; }
  double max() const { return buckets_.empty() ? 0.0 : buckets_.back().hi; }

  /// Estimated weighted rows with value < v (or ≤ v when `inclusive`).
  /// Within a bucket, mass interpolates linearly over the value range.
  double EstimateLess(double v, bool inclusive) const;

  /// Estimated weighted rows with value = v: the containing bucket's
  /// rows / distinct (uniform-per-distinct-value within a bucket), 0 when
  /// v lies outside every bucket.
  double EstimateEqual(double v) const;

  /// Selectivity helpers (fractions of total_rows); 0 on empty histograms.
  double SelectivityLess(double v, bool inclusive) const;
  double SelectivityEqual(double v) const;

  /// Compact rendering for \stats-style debugging:
  /// "32 buckets, rows=10000, [0..99]".
  std::string ToString() const;

 private:
  std::vector<HistogramBucket> buckets_;
  uint64_t total_rows_ = 0;
};

}  // namespace stats
}  // namespace mra

#endif  // MRA_STATS_HISTOGRAM_H_
