#include "mra/stats/table_statistics.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "mra/obs/metrics.h"

namespace mra {
namespace stats {

namespace {

bool IsHistogramDomain(Type type) {
  return type.IsNumeric() || type.kind() == TypeKind::kDate;
}

double ValueAsDouble(const Value& v) {
  if (v.kind() == TypeKind::kDate) return static_cast<double>(v.date_days());
  return v.AsReal();
}

obs::Counter* HistogramsBuiltCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("stats.histograms_built");
  return c;
}

}  // namespace

size_t TableStatistics::histogram_count() const {
  size_t n = 0;
  for (const ColumnStatistics& c : columns) {
    if (!c.histogram.empty()) ++n;
  }
  return n;
}

std::string TableStatistics::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "rows=%llu distinct=%llu columns=%zu histograms=%zu t=%llu",
                static_cast<unsigned long long>(row_count),
                static_cast<unsigned long long>(distinct_count),
                columns.size(), histogram_count(),
                static_cast<unsigned long long>(collected_at));
  return buf;
}

TableStatistics Analyze(const Relation& relation, uint64_t logical_time,
                        const AnalyzeOptions& options) {
  TableStatistics stats;
  stats.row_count = relation.size();
  stats.distinct_count = relation.distinct_size();
  stats.collected_at = logical_time;
  size_t arity = relation.schema().arity();
  stats.columns.resize(arity);

  std::vector<std::unordered_set<size_t>> seen(arity);
  std::vector<bool> capped(arity, false);
  std::vector<bool> first(arity, true);
  // Per-column (value, multiplicity) samples for the histogram build; only
  // populated for ordered-numeric domains when histograms are requested.
  std::vector<std::vector<std::pair<double, uint64_t>>> samples(arity);

  for (const auto& [tuple, count] : relation) {
    for (size_t i = 0; i < arity; ++i) {
      const Value& v = tuple.at(i);
      if (!capped[i]) {
        seen[i].insert(v.Hash());
        if (seen[i].size() >= options.max_tracked_distinct) capped[i] = true;
      }
      if (IsHistogramDomain(v.type())) {
        double x = ValueAsDouble(v);
        ColumnStatistics& column = stats.columns[i];
        if (first[i]) {
          column.min = column.max = x;
          column.has_range = true;
          first[i] = false;
        } else {
          column.min = std::min(column.min, x);
          column.max = std::max(column.max, x);
        }
        if (options.histograms) samples[i].emplace_back(x, count);
      }
    }
  }
  for (size_t i = 0; i < arity; ++i) {
    ColumnStatistics& column = stats.columns[i];
    // Distinct counting is exact up to hash collisions; when the cap was
    // hit, extrapolate conservatively to the distinct tuple count.
    column.distinct = capped[i] ? stats.distinct_count : seen[i].size();
    if (!samples[i].empty()) {
      column.histogram = EquiDepthHistogram::Build(std::move(samples[i]),
                                                   options.histogram_buckets);
      if (!column.histogram.empty()) HistogramsBuiltCounter()->Inc();
    }
  }
  return stats;
}

}  // namespace stats
}  // namespace mra
