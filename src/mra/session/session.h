// mra::Session — one query API over both deployment shapes.
//
// A Session runs XRA scripts against *some* database and hands back the
// `? E` results; callers do not care whether the database lives in this
// process or behind a TCP server.  Two implementations:
//
//  * EmbeddedSession — owns a txn::Database and a lang::Interpreter;
//    Execute() parses/binds/optimizes/executes in-process (batch-at-a-time
//    through the physical operators, see docs/EXECUTION.md);
//  * RemoteSession  — wraps a net::Client; Execute() ships the script to
//    an mra_serverd and decodes the chunked ResultSet reply.
//
// Both surface the identical error model (Status/Result, see DESIGN.md):
// a failing transaction bracket rolls back — in-process or server-side —
// and Execute() returns its Status.  xra_repl drives both modes through
// this interface with one REPL loop; examples/reachability.cpp shows the
// embedded shape.
//
// Thread model: a Session is not thread-safe — use one per thread, like
// the Interpreter and Client it wraps.

#ifndef MRA_SESSION_SESSION_H_
#define MRA_SESSION_SESSION_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mra/common/result.h"
#include "mra/core/relation.h"
#include "mra/lang/interpreter.h"
#include "mra/net/client.h"
#include "mra/txn/database.h"

namespace mra {
namespace session {

/// What a script evaluation produced: every `? E` result, in statement
/// order.  DML-only scripts yield an empty item list.
struct QueryResult {
  struct Item {
    /// The query statement's source form ("? select(...)").  Empty when
    /// the backend cannot report it (the wire protocol carries results
    /// only, so remote sessions leave it blank).
    std::string query;
    Relation relation;
  };
  std::vector<Item> items;
};

/// Abstract query session.  See the header comment for the contract.
class Session {
 public:
  virtual ~Session() = default;

  /// Parses and runs a whole XRA script (statements, transaction
  /// brackets, DDL); returns the `? E` results in order.  A failing
  /// bracket rolls back and surfaces as its Status — later statements do
  /// not run.
  virtual Result<QueryResult> Execute(std::string_view script) = 0;

  /// The metrics registry as JSON — this process's for an embedded
  /// session, the server's for a remote one.
  virtual Result<std::string> Stats() = 0;

  /// Per-query stats of the most recent Execute() that reached the
  /// physical executor — embedded: the interpreter's harvest; remote: the
  /// server-side stats trailer decoded from the result frame, so both
  /// deployment shapes report the *server's* numbers (parity contract in
  /// docs/EXECUTION.md).  nullptr before the first such query, or when
  /// the remote server predates protocol v3.
  virtual const lang::QueryStats* last_query_stats() const { return nullptr; }

  /// Query id attributed to the most recent Execute() — feed it to the
  /// server's ServerStats request (`\trace <id>` in the REPL) to pull the
  /// matching trace spans.  0 when no id was established.
  virtual uint64_t last_query_id() const { return 0; }

  /// Liveness probe: OK when the session can serve an Execute() now.
  virtual Status Ping() = 0;

  /// Human-readable backend tag for prompts/banners, e.g.
  /// "embedded" or "remote(127.0.0.1:7411)".
  virtual std::string_view backend() const = 0;
};

/// In-process session: owns the database and interpreter.
class EmbeddedSession : public Session {
 public:
  /// Opens (and, when `db_options.directory` is set, recovers) a database
  /// and wires an interpreter to it.  `interp_options` selects optimizer,
  /// executor and batch size (InterpreterOptions::batch_size).
  static Result<std::unique_ptr<EmbeddedSession>> Open(
      DatabaseOptions db_options = {},
      lang::InterpreterOptions interp_options = {});

  Result<QueryResult> Execute(std::string_view script) override;
  Result<std::string> Stats() override;
  Status Ping() override { return Status::OK(); }
  std::string_view backend() const override { return "embedded"; }
  const lang::QueryStats* last_query_stats() const override {
    const lang::QueryStats& stats = interp_->last_query_stats();
    return stats.valid ? &stats : nullptr;
  }
  uint64_t last_query_id() const override {
    const lang::QueryStats& stats = interp_->last_query_stats();
    return stats.valid ? stats.query_id : 0;
  }

  /// Escape hatches for embedded-only features (EXPLAIN, checkpointing,
  /// query stats) — the REPL's meta commands use these.
  lang::Interpreter& interpreter() { return *interp_; }
  Database& database() { return *db_; }

 private:
  EmbeddedSession(std::unique_ptr<Database> db,
                  lang::InterpreterOptions interp_options);

  std::unique_ptr<Database> db_;
  std::unique_ptr<lang::Interpreter> interp_;
};

/// Network session: wraps a connected net::Client.
class RemoteSession : public Session {
 public:
  /// Connects to "host:port" and performs the protocol handshake; a
  /// version mismatch surfaces as the server's Unavailable status.
  static Result<std::unique_ptr<RemoteSession>> Connect(
      std::string_view host_port_spec, net::ClientOptions options = {});

  Result<QueryResult> Execute(std::string_view script) override;
  Result<std::string> Stats() override;
  Status Ping() override { return client_.Ping(); }
  std::string_view backend() const override { return backend_; }
  const lang::QueryStats* last_query_stats() const override {
    return last_stats_.valid ? &last_stats_ : nullptr;
  }
  uint64_t last_query_id() const override { return client_.last_query_id(); }

  /// Escape hatch for remote-only features (shutdown request, reconnect
  /// control) — the REPL's meta commands use this.
  net::Client& client() { return client_; }

 private:
  RemoteSession(net::Client client, std::string backend);

  net::Client client_;
  std::string backend_;  // "remote(host:port)"
  /// Most recent server-side stats trailer, converted back to the lang
  /// shape (valid = false until a v3 server sends one).
  lang::QueryStats last_stats_;
};

}  // namespace session
}  // namespace mra

#endif  // MRA_SESSION_SESSION_H_
