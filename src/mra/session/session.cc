#include "mra/session/session.h"

#include <utility>

#include "mra/obs/metrics.h"

namespace mra {
namespace session {

// ---- EmbeddedSession ----

EmbeddedSession::EmbeddedSession(std::unique_ptr<Database> db,
                                 lang::InterpreterOptions interp_options)
    : db_(std::move(db)),
      interp_(std::make_unique<lang::Interpreter>(db_.get(), interp_options)) {}

Result<std::unique_ptr<EmbeddedSession>> EmbeddedSession::Open(
    DatabaseOptions db_options, lang::InterpreterOptions interp_options) {
  MRA_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                       Database::Open(std::move(db_options)));
  return std::unique_ptr<EmbeddedSession>(
      new EmbeddedSession(std::move(db), interp_options));
}

Result<QueryResult> EmbeddedSession::Execute(std::string_view script) {
  QueryResult out;
  MRA_RETURN_IF_ERROR(interp_->ExecuteScript(
      script, [&out](const std::string& query, const Relation& result) {
        out.items.push_back(QueryResult::Item{query, result});
      }));
  return out;
}

Result<std::string> EmbeddedSession::Stats() {
  return obs::MetricsRegistry::Global().RenderJson();
}

// ---- RemoteSession ----

RemoteSession::RemoteSession(net::Client client, std::string backend)
    : client_(std::move(client)), backend_(std::move(backend)) {}

Result<std::unique_ptr<RemoteSession>> RemoteSession::Connect(
    std::string_view host_port_spec, net::ClientOptions options) {
  MRA_ASSIGN_OR_RETURN(auto host_port, net::ParseHostPort(host_port_spec));
  MRA_ASSIGN_OR_RETURN(
      net::Client client,
      net::Client::Connect(host_port.first, host_port.second,
                           std::move(options)));
  std::string backend = "remote(" + std::string(host_port_spec) + ")";
  return std::unique_ptr<RemoteSession>(
      new RemoteSession(std::move(client), std::move(backend)));
}

Result<QueryResult> RemoteSession::Execute(std::string_view script) {
  MRA_ASSIGN_OR_RETURN(std::vector<Relation> relations,
                       client_.ExecuteScript(script));
  QueryResult out;
  out.items.reserve(relations.size());
  for (Relation& r : relations) {
    out.items.push_back(QueryResult::Item{std::string(), std::move(r)});
  }
  return out;
}

Result<std::string> RemoteSession::Stats() { return client_.ServerStats(); }

}  // namespace session
}  // namespace mra
