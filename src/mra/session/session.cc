#include "mra/session/session.h"

#include <utility>

#include "mra/obs/metrics.h"

namespace mra {
namespace session {

// ---- EmbeddedSession ----

EmbeddedSession::EmbeddedSession(std::unique_ptr<Database> db,
                                 lang::InterpreterOptions interp_options)
    : db_(std::move(db)),
      interp_(std::make_unique<lang::Interpreter>(db_.get(), interp_options)) {}

Result<std::unique_ptr<EmbeddedSession>> EmbeddedSession::Open(
    DatabaseOptions db_options, lang::InterpreterOptions interp_options) {
  MRA_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                       Database::Open(std::move(db_options)));
  return std::unique_ptr<EmbeddedSession>(
      new EmbeddedSession(std::move(db), interp_options));
}

Result<QueryResult> EmbeddedSession::Execute(std::string_view script) {
  QueryResult out;
  MRA_RETURN_IF_ERROR(interp_->ExecuteScript(
      script, [&out](const std::string& query, const Relation& result) {
        out.items.push_back(QueryResult::Item{query, result});
      }));
  return out;
}

Result<std::string> EmbeddedSession::Stats() {
  return obs::MetricsRegistry::Global().RenderJson();
}

// ---- RemoteSession ----

RemoteSession::RemoteSession(net::Client client, std::string backend)
    : client_(std::move(client)), backend_(std::move(backend)) {}

Result<std::unique_ptr<RemoteSession>> RemoteSession::Connect(
    std::string_view host_port_spec, net::ClientOptions options) {
  MRA_ASSIGN_OR_RETURN(auto host_port, net::ParseHostPort(host_port_spec));
  MRA_ASSIGN_OR_RETURN(
      net::Client client,
      net::Client::Connect(host_port.first, host_port.second,
                           std::move(options)));
  std::string backend = "remote(" + std::string(host_port_spec) + ")";
  return std::unique_ptr<RemoteSession>(
      new RemoteSession(std::move(client), std::move(backend)));
}

namespace {

/// Rehydrates the wire stats trailer into the lang shape so embedded and
/// remote sessions expose identical per-query numbers.  The wire carries
/// one total wall time per operator; it lands in next_ns (total_ns() then
/// reports it) and `timed` marks whether the server measured at all.
lang::QueryStats FromWireStats(const net::WireQueryStats& wire) {
  lang::QueryStats out;
  out.query_id = wire.query_id;
  out.result_rows = wire.result_rows;
  out.total_us = wire.total_us;
  out.bind_us = wire.bind_us;
  out.optimize_us = wire.optimize_us;
  out.lower_us = wire.lower_us;
  out.exec_us = wire.exec_us;
  out.operators.reserve(wire.operators.size());
  for (const net::WireOpStats& op : wire.operators) {
    lang::QueryStats::OpStats s;
    s.name = op.name;
    s.depth = op.depth;
    s.estimated_rows = op.estimated_rows;
    s.metrics.rows_emitted = op.rows_emitted;
    s.metrics.batches_emitted = op.batches_emitted;
    s.metrics.weighted_rows = op.weighted_rows;
    s.metrics.distinct_rows = op.distinct_rows;
    s.metrics.peak_hash_entries = op.peak_hash_entries;
    s.metrics.build_rows = op.build_rows;
    s.metrics.probe_rows = op.probe_rows;
    s.metrics.hash_bytes = op.hash_bytes;
    s.metrics.next_ns = op.time_ns;
    s.metrics.timed = op.time_ns > 0;
    out.operators.push_back(std::move(s));
  }
  out.valid = true;
  return out;
}

}  // namespace

Result<QueryResult> RemoteSession::Execute(std::string_view script) {
  MRA_ASSIGN_OR_RETURN(std::vector<Relation> relations,
                       client_.ExecuteScript(script));
  if (client_.last_query_stats().has_value()) {
    last_stats_ = FromWireStats(*client_.last_query_stats());
  }
  QueryResult out;
  out.items.reserve(relations.size());
  for (Relation& r : relations) {
    out.items.push_back(QueryResult::Item{std::string(), std::move(r)});
  }
  return out;
}

Result<std::string> RemoteSession::Stats() { return client_.ServerStats(); }

}  // namespace session
}  // namespace mra
