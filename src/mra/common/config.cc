#include "mra/common/config.h"

#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace mra {
namespace {

// One registry drives Set/Get, KnobNames, Describe and ParseConfigFlags so
// a knob added here is immediately reachable from SET, \set and the
// command line without further wiring.
struct Knob {
  std::string_view name;  // SET name; the flag is the same with '-' for '_'
  bool is_bool;
  std::string_view help;
  // Parses `value` (already validated as integer/bool by kind) into cfg.
  Status (*set)(ExecConfig* cfg, uint64_t number, bool flag);
  std::string (*get)(const ExecConfig& cfg);
};

Status ParseUint(std::string_view knob, std::string_view value,
                 uint64_t* out) {
  if (value.empty()) {
    return Status::InvalidArgument("empty value for " + std::string(knob));
  }
  errno = 0;
  char* end = nullptr;
  std::string buf(value);
  unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end == buf.c_str() || *end != '\0' ||
      buf.front() == '-') {
    return Status::InvalidArgument("bad value for " + std::string(knob) +
                                   ": '" + buf + "' (expected a non-negative "
                                   "integer)");
  }
  *out = static_cast<uint64_t>(v);
  return Status::OK();
}

Status ParseBool(std::string_view knob, std::string_view value, bool* out) {
  if (value == "true" || value == "on" || value == "1") {
    *out = true;
    return Status::OK();
  }
  if (value == "false" || value == "off" || value == "0") {
    *out = false;
    return Status::OK();
  }
  return Status::InvalidArgument("bad value for " + std::string(knob) + ": '" +
                                 std::string(value) +
                                 "' (expected true/false/on/off/1/0)");
}

std::string BoolName(bool v) { return v ? "true" : "false"; }

const Knob kKnobs[] = {
    {"batch_size", false,
     "rows per executor NextBatch pull; 0 = row-at-a-time",
     [](ExecConfig* c, uint64_t n, bool) {
       c->exec.batch_size = static_cast<size_t>(n);
       return Status::OK();
     },
     [](const ExecConfig& c) { return std::to_string(c.exec.batch_size); }},
    {"hash_ops", true,
     "hash join/dedup/group-by kernels (off = nested-loop/sort fallbacks)",
     [](ExecConfig* c, uint64_t, bool b) {
       c->exec.hash_ops = b;
       return Status::OK();
     },
     [](const ExecConfig& c) { return BoolName(c.exec.hash_ops); }},
    {"use_physical_exec", true,
     "physical operators (off = definitional evaluator)",
     [](ExecConfig* c, uint64_t, bool b) {
       c->exec.use_physical_exec = b;
       return Status::OK();
     },
     [](const ExecConfig& c) { return BoolName(c.exec.use_physical_exec); }},
    {"workers", false,
     "intra-query parallel degree; 0/1 = serial (docs/PARALLELISM.md)",
     [](ExecConfig* c, uint64_t n, bool) {
       c->exec.workers = static_cast<size_t>(n);
       return Status::OK();
     },
     [](const ExecConfig& c) { return std::to_string(c.exec.workers); }},
    {"morsel_size", false,
     "rows per morsel pulled by one worker (>= 1)",
     [](ExecConfig* c, uint64_t n, bool) {
       if (n == 0) {
         return Status::InvalidArgument("morsel_size must be >= 1");
       }
       c->exec.morsel_size = static_cast<size_t>(n);
       return Status::OK();
     },
     [](const ExecConfig& c) { return std::to_string(c.exec.morsel_size); }},
    {"parallel_threshold", false,
     "min estimated input rows before an operator goes parallel",
     [](ExecConfig* c, uint64_t n, bool) {
       c->exec.parallel_threshold = n;
       return Status::OK();
     },
     [](const ExecConfig& c) {
       return std::to_string(c.exec.parallel_threshold);
     }},
    {"sort_spill_bytes", false,
     "sort run cap in bytes before spilling to disk; 0 = budget-driven",
     [](ExecConfig* c, uint64_t n, bool) {
       c->exec.sort_spill_bytes = n;
       return Status::OK();
     },
     [](const ExecConfig& c) {
       return std::to_string(c.exec.sort_spill_bytes);
     }},
    {"sort_merge_join", true,
     "force sort-merge for every equi-join (off = cost-based choice)",
     [](ExecConfig* c, uint64_t, bool b) {
       c->exec.sort_merge_join = b;
       return Status::OK();
     },
     [](const ExecConfig& c) { return BoolName(c.exec.sort_merge_join); }},
    {"statement_timeout_ms", false,
     "kill queries running past N ms (kDeadlineExceeded); 0 = off",
     [](ExecConfig* c, uint64_t n, bool) {
       c->governance.statement_timeout_ms = static_cast<int64_t>(n);
       return Status::OK();
     },
     [](const ExecConfig& c) {
       return std::to_string(c.governance.statement_timeout_ms);
     }},
    {"query_mem_budget_mb", false,
     "per-query executor memory budget in MiB; 0 = unlimited",
     [](ExecConfig* c, uint64_t n, bool) {
       c->governance.query_mem_budget_bytes = n << 20;
       return Status::OK();
     },
     [](const ExecConfig& c) {
       return std::to_string(c.governance.query_mem_budget_bytes >> 20);
     }},
    {"optimize", true, "run plans through the optimizer",
     [](ExecConfig* c, uint64_t, bool b) {
       c->planner.optimize = b;
       return Status::OK();
     },
     [](const ExecConfig& c) { return BoolName(c.planner.optimize); }},
    {"subplan_reuse", true,
     "evaluate repeated subplans once behind a shared cache",
     [](ExecConfig* c, uint64_t, bool b) {
       c->planner.subplan_reuse = b;
       return Status::OK();
     },
     [](const ExecConfig& c) { return BoolName(c.planner.subplan_reuse); }},
};

const Knob* FindKnob(std::string_view name) {
  for (const Knob& k : kKnobs) {
    if (k.name == name) return &k;
  }
  return nullptr;
}

std::string FlagName(std::string_view knob) {
  std::string flag = "--";
  for (char ch : knob) flag.push_back(ch == '_' ? '-' : ch);
  return flag;
}

}  // namespace

Status ExecConfig::Set(std::string_view knob, std::string_view value) {
  const Knob* k = FindKnob(knob);
  if (k == nullptr) {
    std::string names;
    for (const Knob& other : kKnobs) {
      if (!names.empty()) names += ", ";
      names += std::string(other.name);
    }
    return Status::InvalidArgument("unknown knob '" + std::string(knob) +
                                   "' (knobs: " + names + ")");
  }
  if (k->is_bool) {
    bool b = false;
    Status parsed = ParseBool(knob, value, &b);
    if (!parsed.ok()) return parsed;
    return k->set(this, 0, b);
  }
  uint64_t n = 0;
  Status parsed = ParseUint(knob, value, &n);
  if (!parsed.ok()) return parsed;
  return k->set(this, n, false);
}

Result<std::string> ExecConfig::Get(std::string_view knob) const {
  const Knob* k = FindKnob(knob);
  if (k == nullptr) {
    return Status::InvalidArgument("unknown knob '" + std::string(knob) + "'");
  }
  return k->get(*this);
}

std::vector<std::string_view> ExecConfig::KnobNames() {
  std::vector<std::string_view> names;
  for (const Knob& k : kKnobs) names.push_back(k.name);
  return names;
}

std::string ExecConfig::Describe() const {
  std::ostringstream out;
  for (const Knob& k : kKnobs) {
    out << k.name << " = " << k.get(*this) << "\n";
  }
  return out.str();
}

Status ParseConfigFlags(int* argc, char** argv, ExecConfig* config) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string_view arg = argv[i];
    const Knob* matched = nullptr;
    bool negated = false;
    for (const Knob& k : kKnobs) {
      std::string flag = FlagName(k.name);
      if (arg == flag) {
        matched = &k;
        break;
      }
      if (k.is_bool && arg == "--no-" + flag.substr(2)) {
        matched = &k;
        negated = true;
        break;
      }
    }
    if (matched == nullptr) {
      argv[out++] = argv[i];  // not ours; leave for the caller
      continue;
    }
    if (matched->is_bool) {
      Status set = matched->set(config, 0, !negated);
      if (!set.ok()) return set;
      continue;
    }
    if (i + 1 >= *argc) {
      return Status::InvalidArgument("missing value for " + std::string(arg));
    }
    uint64_t n = 0;
    Status parsed = ParseUint(matched->name, argv[++i], &n);
    if (!parsed.ok()) return parsed;
    Status set = matched->set(config, n, false);
    if (!set.ok()) return set;
  }
  // Compact: everything past the consumed flags is already copied down.
  *argc = out;
  argv[out] = nullptr;
  return Status::OK();
}

std::string ConfigFlagHelp() {
  std::ostringstream out;
  for (const Knob& k : kKnobs) {
    std::string flag = FlagName(k.name);
    if (k.is_bool) {
      out << "  " << flag << " / --no-" << flag.substr(2) << "\n"
          << "                          " << k.help << "\n";
    } else {
      out << "  " << flag << " N";
      for (size_t pad = flag.size() + 2; pad < 24; ++pad) out << ' ';
      out << k.help << "\n";
    }
  }
  return out.str();
}

}  // namespace mra
