// One format for planner and optimizer choice annotations.
//
// Physical operators carry "kind: detail" notes (hash-join key choices,
// hash fallbacks) and the optimizer reports its decision trail ("rule: …",
// "reordered: …"); EXPLAIN renders both bracketed as "[kind: detail]".
// Every producer and renderer goes through these helpers so the format is
// pinned in exactly one place (and one test).

#ifndef MRA_COMMON_ANNOTATION_H_
#define MRA_COMMON_ANNOTATION_H_

#include <string>
#include <string_view>

namespace mra {

/// "kind: detail" — the text stored on operators and report entries.
inline std::string AnnotationText(std::string_view kind,
                                  std::string_view detail) {
  std::string out;
  out.reserve(kind.size() + detail.size() + 2);
  out.append(kind);
  out.append(": ");
  out.append(detail);
  return out;
}

/// "[text]" — how EXPLAIN renders one annotation.
inline std::string BracketAnnotation(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('[');
  out.append(text);
  out.push_back(']');
  return out;
}

/// "[kind: detail]" in one step.
inline std::string RenderAnnotation(std::string_view kind,
                                    std::string_view detail) {
  return BracketAnnotation(AnnotationText(kind, detail));
}

}  // namespace mra

#endif  // MRA_COMMON_ANNOTATION_H_
