// Hash combinators shared by Tuple and Value hashing.

#ifndef MRA_COMMON_HASH_H_
#define MRA_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

namespace mra {

/// Mixes `value` into `seed` (boost::hash_combine-style, 64-bit constants).
inline size_t HashCombine(size_t seed, size_t value) {
  // Golden-ratio constant for 64-bit mixing.
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Finalizing mix (splitmix64) — spreads low-entropy integer keys.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace mra

#endif  // MRA_COMMON_HASH_H_
