// MRA_CHECK: precondition/invariant assertions that abort with a message.
// Used for programming errors only; recoverable conditions use Status.

#ifndef MRA_COMMON_CHECK_H_
#define MRA_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace mra {
namespace internal {

/// Accumulates a failure message and aborts the process on destruction.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* condition) {
    stream_ << "MRA_CHECK failed at " << file << ":" << line << ": "
            << condition;
  }

  [[noreturn]] ~CheckFailStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    stream_ << " " << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Swallows the streamed message when the check passes.
struct CheckVoidify {
  void operator&(const CheckFailStream&) {}
};

}  // namespace internal
}  // namespace mra

#define MRA_CHECK(condition)                \
  (condition) ? (void)0                     \
              : ::mra::internal::CheckVoidify() & \
                    ::mra::internal::CheckFailStream(__FILE__, __LINE__, #condition)

#define MRA_CHECK_EQ(a, b) MRA_CHECK((a) == (b))
#define MRA_CHECK_NE(a, b) MRA_CHECK((a) != (b))
#define MRA_CHECK_LT(a, b) MRA_CHECK((a) < (b))
#define MRA_CHECK_LE(a, b) MRA_CHECK((a) <= (b))
#define MRA_CHECK_GT(a, b) MRA_CHECK((a) > (b))
#define MRA_CHECK_GE(a, b) MRA_CHECK((a) >= (b))

#endif  // MRA_COMMON_CHECK_H_
