#include "mra/common/status.h"

namespace mra {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kEvalError:
      return "EvalError";
    case StatusCode::kUndefined:
      return "Undefined";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTxnError:
      return "TxnError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace mra
