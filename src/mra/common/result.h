// Result<T>: value-or-Status, plus the propagation macros used throughout mra.

#ifndef MRA_COMMON_RESULT_H_
#define MRA_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "mra/common/check.h"
#include "mra/common/status.h"

namespace mra {

/// Holds either a `T` or a non-OK `Status`.  Accessing the value of an error
/// result is a checked programming error.
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    MRA_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    MRA_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    MRA_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    MRA_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;
};

namespace internal {
// Helpers so the macros work uniformly for Status and Result<T>.
inline Status ToStatus(const Status& s) { return s; }
inline Status ToStatus(Status&& s) { return std::move(s); }
template <typename T>
Status ToStatus(const Result<T>& r) {
  return r.status();
}
}  // namespace internal

}  // namespace mra

#define MRA_CONCAT_IMPL(a, b) a##b
#define MRA_CONCAT(a, b) MRA_CONCAT_IMPL(a, b)

/// Evaluates `expr` (a Status or Result); returns its Status on error.
#define MRA_RETURN_IF_ERROR(expr)                                   \
  do {                                                              \
    auto&& mra_status_ = (expr);                                    \
    if (!mra_status_.ok()) {                                        \
      return ::mra::internal::ToStatus(                             \
          std::forward<decltype(mra_status_)>(mra_status_));        \
    }                                                               \
  } while (false)

#define MRA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

/// `MRA_ASSIGN_OR_RETURN(auto x, SomeResultExpr())` — assigns on success,
/// early-returns the Status on failure.
#define MRA_ASSIGN_OR_RETURN(lhs, expr) \
  MRA_ASSIGN_OR_RETURN_IMPL(MRA_CONCAT(mra_result_, __LINE__), lhs, expr)

#endif  // MRA_COMMON_RESULT_H_
