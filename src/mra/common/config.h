// Unified execution configuration: one layered struct for every knob that
// used to be scattered across InterpreterOptions, ParallelOptions and
// PlannerOptions.  Each field is defined exactly once, here; the language,
// session, server and example layers all consume `ExecConfig` directly
// (lang::InterpreterOptions is a deprecated alias).
//
// Three entry points:
//  * field access         — `config.exec.batch_size = 64;`
//  * ConfigBuilder        — fluent construction for tests and embedders;
//  * string-keyed knobs   — `config.Set("workers", "4")` backs the
//    `SET <knob> = <value>;` statement (XRA + SQL) and the REPL `\set`,
//    and ParseConfigFlags maps `--workers 4` / `--no-hash-ops` style
//    command-line flags onto the same registry, so the REPL and serverd
//    parse flags through one funnel (docs/PARALLELISM.md has the knob
//    reference).

#ifndef MRA_COMMON_CONFIG_H_
#define MRA_COMMON_CONFIG_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mra/common/result.h"
#include "mra/common/status.h"

namespace mra {

struct ExecConfig {
  /// Executor shape: batching, kernel selection, parallelism.
  struct Exec {
    /// Rows pulled per NextBatch() call when draining a physical plan;
    /// 0 selects the legacy row-at-a-time Next() loop.
    size_t batch_size = 1024;
    /// Select the hash-based kernels (HashJoin, hash Dedup/GroupBy) when
    /// they apply; when false the planner falls back to NestedLoopJoin
    /// and SortDedup.
    bool hash_ops = true;
    /// Execute through the physical operators (mra/exec); when false the
    /// definitional evaluator (mra/algebra) runs instead.
    bool use_physical_exec = true;
    /// Intra-query parallel degree: number of worker lanes the planner may
    /// give one operator.  0 and 1 both mean serial execution; higher
    /// values enable the morsel-driven partitioned kernels when the
    /// operator's estimated input reaches `parallel_threshold`
    /// (docs/PARALLELISM.md).  Requires hash_ops.
    size_t workers = 0;
    /// Rows per morsel: the unit a worker pulls from a shared child
    /// cursor, and the cancellation granularity inside parallel phases.
    size_t morsel_size = 1024;
    /// Minimum estimated input cardinality (build+probe for joins) before
    /// the planner lowers an operator to its parallel variant; below it
    /// the serial kernel wins on fan-out overhead alone.
    uint64_t parallel_threshold = 8192;
    /// In-memory working-set cap for one sort run, in bytes: a SortOp whose
    /// buffered rows exceed it sorts the buffer and spills it as a merge
    /// run through the storage encoder (docs/EXECUTION.md).  0 means no
    /// fixed cap — the sort still spills at half the query memory budget
    /// when one is armed, and stays fully in memory otherwise.
    uint64_t sort_spill_bytes = 0;
    /// Force the sort-merge join strategy for every equi-join, overriding
    /// the cost-based hash-vs-sort-merge choice (docs/OPTIMIZER.md).
    bool sort_merge_join = false;
  } exec;

  /// Per-query governance (docs/GOVERNANCE.md).
  struct Governance {
    /// Statement timeout: a physically-executed query still running this
    /// many milliseconds after it starts is killed at the next batch
    /// boundary with kDeadlineExceeded.  0 disables.
    int64_t statement_timeout_ms = 0;
    /// Per-query memory budget in bytes, charged by the materialising and
    /// hash-building operators; exceeding it kills the query with
    /// kResourceExhausted.  0 means unlimited.
    uint64_t query_mem_budget_bytes = 0;
    /// Optional external cancel flag consulted at every batch boundary —
    /// the REPL points this at its SIGINT flag so Ctrl-C cancels the
    /// in-flight query (a signal handler may only do the atomic store).
    /// The holder resets it to false before each new query.  Not a
    /// string-keyed knob: it is a live handle, not a value.
    std::shared_ptr<std::atomic<bool>> cancel_token;
  } governance;

  /// Plan-level toggles.
  struct Planner {
    /// Run plans through the rule/cost optimizer before execution.
    bool optimize = true;
    /// Detect repeated subplans during lowering and evaluate each distinct
    /// one once behind a shared SubplanCacheOp.
    bool subplan_reuse = true;
  } planner;

  /// Session behaviour.
  struct Session {
    /// When the database's (serial) transaction slot is taken, wait for it
    /// instead of failing with TxnError.  Off for interactive/embedded
    /// use; the network server turns it on so concurrent sessions queue
    /// their brackets rather than bounce.
    bool block_on_txn_slot = false;
  } session;

  /// Sets a knob by name ("workers", "batch_size", …; KnobNames() lists
  /// them).  Backs `SET <knob> = <value>;` and `\set`.  Returns
  /// InvalidArgument for an unknown knob or an unparseable value.
  Status Set(std::string_view knob, std::string_view value);

  /// Reads a knob back in its canonical string form.
  Result<std::string> Get(std::string_view knob) const;

  /// All settable knob names, in display order.
  static std::vector<std::string_view> KnobNames();

  /// "knob = value" lines for every knob, for `\set` with no arguments.
  std::string Describe() const;
};

/// Fluent builder so embedders construct a config in one expression:
///   auto cfg = ConfigBuilder().Workers(4).BatchSize(256).Build();
class ConfigBuilder {
 public:
  ConfigBuilder& BatchSize(size_t v) { cfg_.exec.batch_size = v; return *this; }
  ConfigBuilder& HashOps(bool v) { cfg_.exec.hash_ops = v; return *this; }
  ConfigBuilder& UsePhysicalExec(bool v) {
    cfg_.exec.use_physical_exec = v;
    return *this;
  }
  ConfigBuilder& Workers(size_t v) { cfg_.exec.workers = v; return *this; }
  ConfigBuilder& MorselSize(size_t v) {
    cfg_.exec.morsel_size = v;
    return *this;
  }
  ConfigBuilder& ParallelThreshold(uint64_t v) {
    cfg_.exec.parallel_threshold = v;
    return *this;
  }
  ConfigBuilder& SortSpillBytes(uint64_t v) {
    cfg_.exec.sort_spill_bytes = v;
    return *this;
  }
  ConfigBuilder& SortMergeJoin(bool v) {
    cfg_.exec.sort_merge_join = v;
    return *this;
  }
  ConfigBuilder& StatementTimeoutMs(int64_t v) {
    cfg_.governance.statement_timeout_ms = v;
    return *this;
  }
  ConfigBuilder& QueryMemBudgetBytes(uint64_t v) {
    cfg_.governance.query_mem_budget_bytes = v;
    return *this;
  }
  ConfigBuilder& CancelToken(std::shared_ptr<std::atomic<bool>> t) {
    cfg_.governance.cancel_token = std::move(t);
    return *this;
  }
  ConfigBuilder& Optimize(bool v) { cfg_.planner.optimize = v; return *this; }
  ConfigBuilder& SubplanReuse(bool v) {
    cfg_.planner.subplan_reuse = v;
    return *this;
  }
  ConfigBuilder& BlockOnTxnSlot(bool v) {
    cfg_.session.block_on_txn_slot = v;
    return *this;
  }

  ExecConfig Build() const { return cfg_; }

 private:
  ExecConfig cfg_;
};

/// Consumes the config-owned flags from an argv (`--batch-size 64`,
/// `--workers 4`, `--no-hash-ops`, `--query-mem-budget-mb 32`, …),
/// compacting argv in place so the caller's own flag loop only sees what
/// is left.  Every knob in the registry is reachable: value knobs as
/// `--<knob-with-hyphens> V`, boolean knobs as `--<knob>` / `--no-<knob>`.
/// Returns InvalidArgument on a recognised flag with a bad/missing value;
/// unrecognised flags are left untouched for the caller.
Status ParseConfigFlags(int* argc, char** argv, ExecConfig* config);

/// Help text describing the flags ParseConfigFlags accepts, one per line,
/// indented to match the examples' usage blocks.
std::string ConfigFlagHelp();

}  // namespace mra

#endif  // MRA_COMMON_CONFIG_H_
