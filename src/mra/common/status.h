// Error model for the mra library.
//
// Following the idiom used by database codebases (RocksDB, Arrow), recoverable
// errors are reported through `Status` / `Result<T>` return values rather than
// exceptions.  Programming errors (violated preconditions) are reported through
// the MRA_CHECK macros in check.h.

#ifndef MRA_COMMON_STATUS_H_
#define MRA_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace mra {

/// Broad classification of an error; the message carries the detail.
enum class StatusCode : int {
  kOk = 0,
  /// Malformed request: bad schema, arity mismatch, unknown attribute index.
  kInvalidArgument = 1,
  /// Named entity (relation, attribute) does not exist.
  kNotFound = 2,
  /// Named entity already exists (e.g. duplicate relation name).
  kAlreadyExists = 3,
  /// Static type error in an expression or statement.
  kTypeError = 4,
  /// Runtime evaluation error (division by zero, overflow).
  kEvalError = 5,
  /// Partial function applied outside its domain, e.g. AVG of an empty
  /// multi-set (Definition 3.3 of the paper calls these partial functions).
  kUndefined = 6,
  /// Syntax error in XRA or SQL text.
  kParseError = 7,
  /// Transaction cannot proceed (e.g. statement outside a transaction).
  kTxnError = 8,
  /// I/O failure in the storage layer (WAL, checkpoint files).
  kIoError = 9,
  /// Corrupt persistent state detected during recovery.
  kCorruption = 10,
  /// Internal invariant violation that was recoverable enough to report.
  kInternal = 11,
  /// A transaction's post-state violates a registered integrity constraint
  /// (the correctness property of §4.3; constraint semantics follow the
  /// integrity-control companion work the paper cites as [11]).
  kConstraintViolation = 12,
  /// The service is temporarily overloaded (e.g. the query server shed
  /// the connection with a Busy frame).  Retriable after a backoff, in
  /// contrast to the fatal protocol errors above.
  kUnavailable = 13,
  /// The query was cancelled on request (Cancel frame, `\cancel <id>`,
  /// REPL Ctrl-C).  Not retriable: the caller asked for it to stop.
  kCancelled = 14,
  /// The query ran past its statement timeout and was killed mid-plan.
  /// Retriable after a backoff, like kUnavailable.
  kDeadlineExceeded = 15,
  /// The query exceeded its per-query memory budget; the message names
  /// the operator that tripped the budget and the high-water mark.
  kResourceExhausted = 16,
};

/// Returns a stable human-readable name, e.g. "TypeError".
std::string_view StatusCodeName(StatusCode code);

/// A cheap, movable success-or-error value.  The OK status carries no
/// allocation; error statuses hold a code and message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(message)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status EvalError(std::string msg) {
    return Status(StatusCode::kEvalError, std::move(msg));
  }
  static Status Undefined(std::string msg) {
    return Status(StatusCode::kUndefined, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TxnError(std::string msg) {
    return Status(StatusCode::kTxnError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // Shared so that Status copies are cheap; error paths are cold.
  std::shared_ptr<const Rep> rep_;
};

}  // namespace mra

#endif  // MRA_COMMON_STATUS_H_
