// Relation schemas (Definition 2.2): a relation name plus an *ordered* list
// of attributes, each defined on a domain.  Attribute ordering enables
// addressing by prefixed index (%1, %2, …) as the paper does for anonymous
// intermediate relations; attribute names are kept as well for the SQL front
// end and for display.

#ifndef MRA_CORE_SCHEMA_H_
#define MRA_CORE_SCHEMA_H_

#include <string>
#include <vector>

#include "mra/common/result.h"
#include "mra/core/type.h"

namespace mra {

/// One attribute: a display name and its domain.
struct Attribute {
  std::string name;
  Type type;

  bool operator==(const Attribute& other) const {
    return name == other.name && type == other.type;
  }
};

/// An ordered attribute list with an optional relation name.
///
/// Two schemas are *compatible* (the paper's "defined on schema ℰ") when the
/// domain lists are equal; attribute and relation names are notational only
/// and do not affect compatibility — this mirrors the paper's convention of
/// anonymous intermediate relations.
class RelationSchema {
 public:
  RelationSchema() = default;
  RelationSchema(std::string name, std::vector<Attribute> attributes)
      : name_(std::move(name)), attributes_(std::move(attributes)) {}
  explicit RelationSchema(std::vector<Attribute> attributes)
      : attributes_(std::move(attributes)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t arity() const { return attributes_.size(); }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// 0-based access.  (The paper's %i notation is 1-based; the textual
  /// language converts.)
  const Attribute& attribute(size_t i) const {
    MRA_CHECK_LT(i, attributes_.size());
    return attributes_[i];
  }
  Type TypeOf(size_t i) const { return attribute(i).type; }

  /// Index of the attribute with the given display name, or NotFound.
  /// Ambiguous names (duplicates, possible after ⊕) are InvalidArgument.
  Result<size_t> IndexOf(std::string_view attr_name) const;

  /// Domain-list equality (the paper's notion of "same schema").
  bool CompatibleWith(const RelationSchema& other) const;

  /// Schema concatenation ℰ ⊕ ℰ' (Definition 2.4, lifted to schemas as the
  /// paper does for the product operator).
  RelationSchema Concat(const RelationSchema& other) const;

  /// Schema projection π_a(ℰ): keeps the attributes at the given 0-based
  /// indexes, in list order, duplicates allowed (Definition 2.4).
  Result<RelationSchema> Project(const std::vector<size_t>& indexes) const;

  /// "name(attr1: type1, …)" — display form.
  std::string ToString() const;

  bool operator==(const RelationSchema& other) const {
    return name_ == other.name_ && attributes_ == other.attributes_;
  }

 private:
  std::string name_;
  std::vector<Attribute> attributes_;
};

}  // namespace mra

#endif  // MRA_CORE_SCHEMA_H_
