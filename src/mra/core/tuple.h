// Tuples (Definition 2.4): elements of dom(ℛ), with attribute access r.i,
// tuple projection π_a(r), concatenation r1 ⊕ r2, and equality.

#ifndef MRA_CORE_TUPLE_H_
#define MRA_CORE_TUPLE_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "mra/common/result.h"
#include "mra/core/schema.h"
#include "mra/core/value.h"

namespace mra {

/// An ordered list of atomic values.  Tuples do not carry their schema; the
/// containing Relation (or operator) does, matching the paper's treatment of
/// tuples as bare elements of dom(ℛ).
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  /// #r — the number of attributes (Definition 2.4).
  size_t arity() const { return values_.size(); }

  /// r.i with 0-based i (the paper's r.i is 1-based; callers working from
  /// textual %i notation subtract one).
  const Value& at(size_t i) const {
    MRA_CHECK_LT(i, values_.size());
    return values_[i];
  }
  const std::vector<Value>& values() const { return values_; }

  /// Tuple concatenation r1 ⊕ r2 (Definition 2.4).
  Tuple Concat(const Tuple& other) const;

  /// Overwrites this tuple with a ⊕ b, reusing this tuple's value storage
  /// (no allocation when the combined arity fits the existing capacity).
  /// Neither operand may alias this tuple.
  void AssignConcat(const Tuple& a, const Tuple& b);

  /// Tuple projection π_a(r): concatenates the attributes named by the
  /// 0-based index list `a` into a new tuple; indexes may repeat
  /// (Definition 2.4).  Out-of-range indexes are checked errors — validate
  /// against the schema first via RelationSchema::Project.
  Tuple Project(const std::vector<size_t>& indexes) const;

  /// Overwrites this tuple with π_indexes(src), reusing this tuple's value
  /// storage (no allocation when the arity fits the existing capacity).
  /// `src` must not alias this tuple — the executor projects through a
  /// scratch tuple and swaps.
  void AssignProjection(const Tuple& src, const std::vector<size_t>& indexes);

  /// Exchanges value storage with `other` in O(1), allocation-free.
  void Swap(Tuple& other) { values_.swap(other.values_); }

  /// Attribute-wise equality (Definition 2.4).  Only meaningful between
  /// tuples of one schema; arity mismatch is a checked error.
  bool Equals(const Tuple& other) const;
  bool operator==(const Tuple& other) const { return Equals(other); }
  bool operator!=(const Tuple& other) const { return !Equals(other); }

  size_t Hash() const;

  /// Hash of π_attrs(*this) without materialising the projection; equal to
  /// Project(attrs).Hash() by construction, so probe-side rows can be
  /// hashed against stored key tuples allocation-free.
  size_t HashKey(const std::vector<size_t>& attrs) const;

  /// key == π_attrs(*this), again without materialising the projection.
  /// `key` must have arity attrs.size().
  bool KeyEquals(const Tuple& key, const std::vector<size_t>& attrs) const;

  /// Checks that this tuple inhabits dom(schema): arity and domains match.
  Status ConformsTo(const RelationSchema& schema) const;

  /// "(v1, v2, …)".
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

/// Hash/equality functors for unordered containers keyed by Tuple.
struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};
struct TupleEq {
  bool operator()(const Tuple& a, const Tuple& b) const {
    return a.arity() == b.arity() && a.Equals(b);
  }
};

}  // namespace mra

#endif  // MRA_CORE_TUPLE_H_
