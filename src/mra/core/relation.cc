#include "mra/core/relation.h"

#include <algorithm>
#include <sstream>

namespace mra {

Status Relation::Insert(const Tuple& tuple, uint64_t count) {
  MRA_RETURN_IF_ERROR(tuple.ConformsTo(schema_));
  InsertUnchecked(tuple, count);
  return Status::OK();
}

void Relation::InsertUnchecked(const Tuple& tuple, uint64_t count) {
  if (count == 0) return;
  map_[tuple] += count;
  total_ += count;
}

void Relation::InsertUnchecked(Tuple&& tuple, uint64_t count) {
  if (count == 0) return;
  map_[std::move(tuple)] += count;
  total_ += count;
}

uint64_t Relation::Remove(const Tuple& tuple, uint64_t count) {
  auto it = map_.find(tuple);
  if (it == map_.end()) return 0;
  uint64_t removed = std::min(count, it->second);
  it->second -= removed;
  total_ -= removed;
  if (it->second == 0) map_.erase(it);
  return removed;
}

uint64_t Relation::Multiplicity(const Tuple& tuple) const {
  auto it = map_.find(tuple);
  return it == map_.end() ? 0 : it->second;
}

void Relation::Clear() {
  map_.clear();
  total_ = 0;
}

bool Relation::Equals(const Relation& other) const {
  if (!schema_.CompatibleWith(other.schema_)) return false;
  if (total_ != other.total_ || map_.size() != other.map_.size()) return false;
  for (const auto& [tuple, count] : map_) {
    if (other.Multiplicity(tuple) != count) return false;
  }
  return true;
}

bool Relation::MultiSubsetOf(const Relation& other) const {
  if (!schema_.CompatibleWith(other.schema_)) return false;
  if (total_ > other.total_) return false;
  for (const auto& [tuple, count] : map_) {
    if (other.Multiplicity(tuple) < count) return false;
  }
  return true;
}

std::vector<std::pair<Tuple, uint64_t>> Relation::SortedEntries() const {
  std::vector<std::pair<Tuple, uint64_t>> entries(map_.begin(), map_.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              return a.first.ToString() < b.first.ToString();
            });
  return entries;
}

std::vector<Tuple> Relation::ExpandedTuples() const {
  std::vector<Tuple> tuples;
  tuples.reserve(total_);
  for (const auto& [tuple, count] : SortedEntries()) {
    for (uint64_t i = 0; i < count; ++i) tuples.push_back(tuple);
  }
  return tuples;
}

std::string Relation::ToString() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [tuple, count] : SortedEntries()) {
    if (!first) out << ", ";
    first = false;
    out << tuple.ToString() << " : " << count;
  }
  out << "}";
  return out.str();
}

}  // namespace mra
