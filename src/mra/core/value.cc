#include "mra/core/value.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "mra/common/hash.h"

namespace mra {

namespace {

// Formats a double so that integral values still read as reals ("3.0") and
// round-trips typical literals without noise digits.
std::string FormatReal(double v) {
  std::ostringstream out;
  out.precision(15);
  out << v;
  std::string s = out.str();
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
    s += ".0";
  }
  return s;
}

std::string FormatDecimalScaled(int64_t scaled) {
  bool negative = scaled < 0;
  // Careful with INT64_MIN: split before negation.
  uint64_t magnitude =
      negative ? ~static_cast<uint64_t>(scaled) + 1 : static_cast<uint64_t>(scaled);
  uint64_t whole = magnitude / kDecimalScale;
  uint64_t frac = magnitude % kDecimalScale;
  std::string out;
  if (negative) out += '-';
  out += std::to_string(whole);
  if (frac != 0) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "%04llu",
                  static_cast<unsigned long long>(frac));
    std::string digits(buf);
    while (!digits.empty() && digits.back() == '0') digits.pop_back();
    out += '.';
    out += digits;
  }
  return out;
}

}  // namespace

Result<Value> Value::DecimalFromString(std::string_view text) {
  if (text.empty()) return Status::ParseError("empty decimal literal");
  size_t pos = 0;
  bool negative = false;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    pos = 1;
  }
  int64_t whole = 0;
  size_t whole_digits = 0;
  while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) {
    whole = whole * 10 + (text[pos] - '0');
    ++pos;
    ++whole_digits;
  }
  int64_t frac = 0;
  size_t frac_digits = 0;
  if (pos < text.size() && text[pos] == '.') {
    ++pos;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
      if (frac_digits == 4) {
        return Status::ParseError("decimal literal has more than 4 fractional "
                                  "digits: " +
                                  std::string(text));
      }
      frac = frac * 10 + (text[pos] - '0');
      ++pos;
      ++frac_digits;
    }
  }
  if (pos != text.size() || (whole_digits == 0 && frac_digits == 0)) {
    return Status::ParseError("malformed decimal literal: " + std::string(text));
  }
  while (frac_digits < 4) {
    frac *= 10;
    ++frac_digits;
  }
  int64_t scaled = whole * kDecimalScale + frac;
  if (negative) scaled = -scaled;
  return Value::DecimalScaled(scaled);
}

Result<Value> Value::DateFromString(std::string_view text) {
  int year = 0, month = 0, day = 0;
  // Expect exactly YYYY-MM-DD (4-2-2 digits).
  if (text.size() != 10 || text[4] != '-' || text[7] != '-') {
    return Status::ParseError("malformed date literal (want YYYY-MM-DD): " +
                              std::string(text));
  }
  auto parse_int = [&](size_t from, size_t len, int* out) {
    const char* begin = text.data() + from;
    auto [ptr, ec] = std::from_chars(begin, begin + len, *out);
    return ec == std::errc() && ptr == begin + len;
  };
  if (!parse_int(0, 4, &year) || !parse_int(5, 2, &month) ||
      !parse_int(8, 2, &day)) {
    return Status::ParseError("malformed date literal (want YYYY-MM-DD): " +
                              std::string(text));
  }
  return DateFromCivil(year, month, day);
}

Result<Value> Value::DateFromCivil(int year, int month, int day) {
  if (month < 1 || month > 12 || day < 1 || day > 31) {
    return Status::InvalidArgument("invalid civil date");
  }
  int64_t days = DaysFromCivil(year, month, day);
  // Round-trip to reject e.g. Feb 30.
  int y2, m2, d2;
  CivilFromDays(days, &y2, &m2, &d2);
  if (y2 != year || m2 != month || d2 != day) {
    return Status::InvalidArgument("invalid civil date");
  }
  return Value::Date(static_cast<int32_t>(days));
}

double Value::AsReal() const {
  switch (kind_) {
    case TypeKind::kInt:
      return static_cast<double>(int_value());
    case TypeKind::kDecimal:
      return static_cast<double>(decimal_scaled()) / kDecimalScale;
    case TypeKind::kReal:
      return real_value();
    default:
      MRA_CHECK(false) << "AsReal on non-numeric value" << ToString();
      return 0.0;
  }
}

bool Value::Equals(const Value& other) const {
  MRA_CHECK(kind_ == other.kind_)
      << "Value::Equals across domains:" << ToString() << "vs"
      << other.ToString();
  return rep_ == other.rep_;
}

int Value::Compare(const Value& other) const {
  MRA_CHECK(kind_ == other.kind_)
      << "Value::Compare across domains:" << ToString() << "vs"
      << other.ToString();
  switch (kind_) {
    case TypeKind::kReal: {
      double a = std::get<double>(rep_), b = std::get<double>(other.rep_);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case TypeKind::kString: {
      const std::string& a = std::get<std::string>(rep_);
      const std::string& b = std::get<std::string>(other.rep_);
      int c = a.compare(b);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default: {
      int64_t a = std::get<int64_t>(rep_), b = std::get<int64_t>(other.rep_);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
  }
}

size_t Value::Hash() const {
  size_t h = Mix64(static_cast<uint64_t>(kind_));
  switch (kind_) {
    case TypeKind::kReal: {
      double v = std::get<double>(rep_);
      // Normalise -0.0 so equal reals hash equally.
      if (v == 0.0) v = 0.0;
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(v));
      __builtin_memcpy(&bits, &v, sizeof(bits));
      return HashCombine(h, Mix64(bits));
    }
    case TypeKind::kString:
      return HashCombine(h, std::hash<std::string>{}(
                                std::get<std::string>(rep_)));
    default:
      return HashCombine(
          h, Mix64(static_cast<uint64_t>(std::get<int64_t>(rep_))));
  }
}

std::string Value::ToString() const {
  switch (kind_) {
    case TypeKind::kBool:
      return bool_value() ? "true" : "false";
    case TypeKind::kInt:
      return std::to_string(int_value());
    case TypeKind::kDecimal:
      return FormatDecimalScaled(decimal_scaled());
    case TypeKind::kReal:
      return FormatReal(real_value());
    case TypeKind::kString:
      return "'" + string_value() + "'";
    case TypeKind::kDate: {
      int y, m, d;
      CivilFromDays(date_days(), &y, &m, &d);
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
      return buf;
    }
  }
  return "?";
}

// Howard Hinnant's days_from_civil / civil_from_days (public domain
// algorithms), specialised to int64.
int64_t Value::DaysFromCivil(int year, int month, int day) {
  int64_t y = year;
  y -= month <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);          // [0,399]
  const unsigned doy =
      (153u * (month + (month > 2 ? -3 : 9)) + 2) / 5 + day - 1;      // [0,365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;         // [0,146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void Value::CivilFromDays(int64_t days, int* year, int* month, int* day) {
  days += 719468;
  const int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(days - era * 146097);    // [0,146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;          // [0,399]
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);       // [0,365]
  const unsigned mp = (5 * doy + 2) / 153;                            // [0,11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                    // [1,31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                         // [1,12]
  *year = static_cast<int>(y + (m <= 2));
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

}  // namespace mra
