// Multi-set relations (Definition 2.2): a relation instance R of schema ℛ is
// a function R : dom(ℛ) → ℕ.  We store the support of that function — the
// tuples with non-zero multiplicity — in a hash map, which makes duplicate
// tuples O(1) in space and time.  This representation is exactly the
// (r, R(r)) pair notation the paper introduces after Definition 2.4.

#ifndef MRA_CORE_RELATION_H_
#define MRA_CORE_RELATION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "mra/common/result.h"
#include "mra/core/schema.h"
#include "mra/core/tuple.h"

namespace mra {

/// A multi-set of tuples over one schema.
class Relation {
 public:
  using Map = std::unordered_map<Tuple, uint64_t, TupleHash, TupleEq>;
  using const_iterator = Map::const_iterator;

  Relation() = default;
  explicit Relation(RelationSchema schema) : schema_(std::move(schema)) {}

  const RelationSchema& schema() const { return schema_; }
  void set_schema_name(std::string name) { schema_.set_name(std::move(name)); }

  /// Adds `count` occurrences of `tuple` after validating that the tuple
  /// inhabits dom(schema).  count == 0 is a no-op.
  Status Insert(const Tuple& tuple, uint64_t count = 1);

  /// Adds occurrences without schema validation.  For operator internals
  /// whose outputs conform by construction.
  void InsertUnchecked(const Tuple& tuple, uint64_t count = 1);
  void InsertUnchecked(Tuple&& tuple, uint64_t count = 1);

  /// Removes up to `count` occurrences (clamped at zero, like the multi-set
  /// difference of Definition 3.1).  Returns how many were actually removed.
  uint64_t Remove(const Tuple& tuple, uint64_t count = 1);

  /// R(x): the multiplicity of `tuple` (0 when absent) — Definition 2.2.
  uint64_t Multiplicity(const Tuple& tuple) const;

  /// x ∈ R ⇔ R(x) > 0 (Definition 2.4).
  bool Contains(const Tuple& tuple) const { return Multiplicity(tuple) > 0; }

  /// Total cardinality counting duplicates: Σ_x R(x).
  uint64_t size() const { return total_; }
  /// Number of distinct tuples: |{x | R(x) > 0}|.
  size_t distinct_size() const { return map_.size(); }
  bool empty() const { return total_ == 0; }

  void Clear();

  /// R1 = R2 (Definition 2.3): pointwise-equal multiplicity functions.
  /// Relations over incompatible schemas are never equal.
  bool Equals(const Relation& other) const;
  bool operator==(const Relation& other) const { return Equals(other); }
  bool operator!=(const Relation& other) const { return !Equals(other); }

  /// R1 ⊑ R2 (Definition 2.3): R1(x) ≤ R2(x) for all x.
  bool MultiSubsetOf(const Relation& other) const;

  // Iteration over (tuple, multiplicity) pairs, unspecified order.
  const_iterator begin() const { return map_.begin(); }
  const_iterator end() const { return map_.end(); }

  /// All tuples with duplicates materialised (Σ R(x) entries).  Intended for
  /// tests and small results; order is deterministic (sorted by display
  /// form) so output is reproducible.
  std::vector<Tuple> ExpandedTuples() const;

  /// Distinct tuples sorted by display form — deterministic iteration for
  /// printing.
  std::vector<std::pair<Tuple, uint64_t>> SortedEntries() const;

  /// "{(a, b) : 2, (c, d) : 1}" — the paper's pair notation, sorted.
  std::string ToString() const;

 private:
  RelationSchema schema_;
  Map map_;
  uint64_t total_ = 0;
};

}  // namespace mra

#endif  // MRA_CORE_RELATION_H_
