#include "mra/core/schema.h"

#include <sstream>

namespace mra {

Result<size_t> RelationSchema::IndexOf(std::string_view attr_name) const {
  size_t found = attributes_.size();
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == attr_name) {
      if (found != attributes_.size()) {
        return Status::InvalidArgument("ambiguous attribute name: " +
                                       std::string(attr_name));
      }
      found = i;
    }
  }
  if (found == attributes_.size()) {
    return Status::NotFound("no attribute named " + std::string(attr_name) +
                            " in " + ToString());
  }
  return found;
}

bool RelationSchema::CompatibleWith(const RelationSchema& other) const {
  if (attributes_.size() != other.attributes_.size()) return false;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].type != other.attributes_[i].type) return false;
  }
  return true;
}

RelationSchema RelationSchema::Concat(const RelationSchema& other) const {
  std::vector<Attribute> attrs = attributes_;
  attrs.insert(attrs.end(), other.attributes_.begin(), other.attributes_.end());
  return RelationSchema(std::move(attrs));
}

Result<RelationSchema> RelationSchema::Project(
    const std::vector<size_t>& indexes) const {
  std::vector<Attribute> attrs;
  attrs.reserve(indexes.size());
  for (size_t i : indexes) {
    if (i >= attributes_.size()) {
      return Status::InvalidArgument(
          "projection index %" + std::to_string(i + 1) + " out of range for " +
          ToString());
    }
    attrs.push_back(attributes_[i]);
  }
  return RelationSchema(std::move(attrs));
}

std::string RelationSchema::ToString() const {
  std::ostringstream out;
  out << (name_.empty() ? "<anonymous>" : name_) << "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out << ", ";
    out << attributes_[i].name << ": " << attributes_[i].type.name();
  }
  out << ")";
  return out.str();
}

}  // namespace mra
