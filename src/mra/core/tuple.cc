#include "mra/core/tuple.h"

#include <sstream>

#include "mra/common/hash.h"

namespace mra {

Tuple Tuple::Concat(const Tuple& other) const {
  std::vector<Value> values;
  values.reserve(values_.size() + other.values_.size());
  values.insert(values.end(), values_.begin(), values_.end());
  values.insert(values.end(), other.values_.begin(), other.values_.end());
  return Tuple(std::move(values));
}

void Tuple::AssignConcat(const Tuple& a, const Tuple& b) {
  MRA_CHECK(this != &a && this != &b) << "AssignConcat must not alias";
  values_.resize(a.values_.size() + b.values_.size());
  for (size_t i = 0; i < a.values_.size(); ++i) values_[i] = a.values_[i];
  for (size_t i = 0; i < b.values_.size(); ++i) {
    values_[a.values_.size() + i] = b.values_[i];
  }
}

Tuple Tuple::Project(const std::vector<size_t>& indexes) const {
  std::vector<Value> values;
  values.reserve(indexes.size());
  for (size_t i : indexes) {
    MRA_CHECK_LT(i, values_.size()) << "tuple projection index out of range";
    values.push_back(values_[i]);
  }
  return Tuple(std::move(values));
}

void Tuple::AssignProjection(const Tuple& src,
                             const std::vector<size_t>& indexes) {
  MRA_CHECK(this != &src) << "AssignProjection must not alias its source";
  values_.resize(indexes.size());
  for (size_t k = 0; k < indexes.size(); ++k) {
    MRA_CHECK_LT(indexes[k], src.values_.size())
        << "tuple projection index out of range";
    values_[k] = src.values_[indexes[k]];
  }
}

bool Tuple::Equals(const Tuple& other) const {
  MRA_CHECK_EQ(values_.size(), other.values_.size())
      << "Tuple::Equals across schemas";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i].kind() != other.values_[i].kind() ||
        !values_[i].Equals(other.values_[i])) {
      return false;
    }
  }
  return true;
}

size_t Tuple::Hash() const {
  size_t h = Mix64(values_.size());
  for (const Value& v : values_) h = HashCombine(h, v.Hash());
  return h;
}

size_t Tuple::HashKey(const std::vector<size_t>& attrs) const {
  size_t h = Mix64(attrs.size());
  for (size_t i : attrs) {
    MRA_CHECK_LT(i, values_.size()) << "key attribute out of range";
    h = HashCombine(h, values_[i].Hash());
  }
  return h;
}

bool Tuple::KeyEquals(const Tuple& key, const std::vector<size_t>& attrs) const {
  MRA_CHECK_EQ(key.arity(), attrs.size()) << "KeyEquals arity mismatch";
  for (size_t k = 0; k < attrs.size(); ++k) {
    const Value& mine = values_[attrs[k]];
    const Value& theirs = key.values_[k];
    if (mine.kind() != theirs.kind() || !mine.Equals(theirs)) return false;
  }
  return true;
}

Status Tuple::ConformsTo(const RelationSchema& schema) const {
  if (values_.size() != schema.arity()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(values_.size()) +
        " does not match schema " + schema.ToString());
  }
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i].type() != schema.TypeOf(i)) {
      return Status::TypeError("attribute %" + std::to_string(i + 1) +
                               " of tuple " + ToString() + " has domain " +
                               values_[i].type().ToString() +
                               ", schema expects " +
                               schema.TypeOf(i).ToString());
    }
  }
  return Status::OK();
}

std::string Tuple::ToString() const {
  std::ostringstream out;
  out << "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out << ", ";
    out << values_[i].ToString();
  }
  out << ")";
  return out.str();
}

}  // namespace mra
