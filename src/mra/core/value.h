// Atomic values (Definition 2.1).  A Value is an element of exactly one
// domain; cross-domain operations are programming errors at this layer
// (numeric promotion is handled by the expression evaluator).

#ifndef MRA_CORE_VALUE_H_
#define MRA_CORE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "mra/common/result.h"
#include "mra/core/type.h"

namespace mra {

/// Fixed-point decimals carry 4 fractional digits: the stored integer is the
/// numeric value multiplied by kDecimalScale.
inline constexpr int64_t kDecimalScale = 10000;

/// One atomic value.  Immutable after construction except via assignment.
class Value {
 public:
  /// Default-constructed value: int 0.  Needed for container resizing only.
  Value() : kind_(TypeKind::kInt), rep_(int64_t{0}) {}

  static Value Bool(bool v) { return Value(TypeKind::kBool, int64_t{v}); }
  static Value Int(int64_t v) { return Value(TypeKind::kInt, v); }
  static Value Real(double v) { return Value(TypeKind::kReal, v); }
  static Value Str(std::string v) {
    return Value(TypeKind::kString, std::move(v));
  }

  /// Decimal from a raw scaled integer: `DecimalScaled(123400)` is 12.34.
  static Value DecimalScaled(int64_t scaled) {
    return Value(TypeKind::kDecimal, scaled);
  }
  /// Decimal from a whole number of units: `Decimal(12)` is 12.0000.
  static Value Decimal(int64_t units) {
    return Value(TypeKind::kDecimal, units * kDecimalScale);
  }
  /// Parses "[-]digits[.digits]" with at most 4 fractional digits.
  static Result<Value> DecimalFromString(std::string_view text);

  /// Date from a count of days since 1970-01-01 (may be negative).
  static Value Date(int32_t days) {
    return Value(TypeKind::kDate, int64_t{days});
  }
  /// Parses "YYYY-MM-DD" (proleptic Gregorian).
  static Result<Value> DateFromString(std::string_view text);
  /// Builds a date from civil year/month/day; validates the calendar day.
  static Result<Value> DateFromCivil(int year, int month, int day);

  TypeKind kind() const { return kind_; }
  Type type() const { return Type(kind_); }

  // Accessors.  Calling the accessor of the wrong kind is a checked error.
  bool bool_value() const {
    MRA_CHECK(kind_ == TypeKind::kBool);
    return std::get<int64_t>(rep_) != 0;
  }
  int64_t int_value() const {
    MRA_CHECK(kind_ == TypeKind::kInt);
    return std::get<int64_t>(rep_);
  }
  /// The raw scaled integer of a decimal (value * 10^4).
  int64_t decimal_scaled() const {
    MRA_CHECK(kind_ == TypeKind::kDecimal);
    return std::get<int64_t>(rep_);
  }
  double real_value() const {
    MRA_CHECK(kind_ == TypeKind::kReal);
    return std::get<double>(rep_);
  }
  const std::string& string_value() const {
    MRA_CHECK(kind_ == TypeKind::kString);
    return std::get<std::string>(rep_);
  }
  int32_t date_days() const {
    MRA_CHECK(kind_ == TypeKind::kDate);
    return static_cast<int32_t>(std::get<int64_t>(rep_));
  }

  /// Numeric value widened to double (int, decimal or real only).
  double AsReal() const;

  /// Equality per Definition 2.4: only defined between values of the same
  /// domain (tuples compared attribute-wise share a schema).
  bool Equals(const Value& other) const;

  /// Three-way comparison within one domain: -1, 0 or +1.  Booleans order
  /// false < true; strings lexicographically; others numerically.
  int Compare(const Value& other) const;
  bool Less(const Value& other) const { return Compare(other) < 0; }

  bool operator==(const Value& other) const { return Equals(other); }
  bool operator!=(const Value& other) const { return !Equals(other); }

  size_t Hash() const;

  /// Display form: `true`, `42`, `12.34`, `3.5`, `'text'`, `1994-02-14`.
  std::string ToString() const;

  // --- Civil-calendar helpers (public: reused by the SQL/XRA parsers). ---

  /// Days since 1970-01-01 of a civil date (Howard Hinnant's algorithm).
  static int64_t DaysFromCivil(int year, int month, int day);
  /// Inverse of DaysFromCivil.
  static void CivilFromDays(int64_t days, int* year, int* month, int* day);

 private:
  Value(TypeKind kind, int64_t v) : kind_(kind), rep_(v) {}
  Value(TypeKind kind, double v) : kind_(kind), rep_(v) {}
  Value(TypeKind kind, std::string v) : kind_(kind), rep_(std::move(v)) {}

  TypeKind kind_;
  std::variant<int64_t, double, std::string> rep_;
};

}  // namespace mra

#endif  // MRA_CORE_VALUE_H_
