#include "mra/core/type.h"

#include <string>

namespace mra {

std::string_view Type::name() const {
  switch (kind_) {
    case TypeKind::kBool:
      return "bool";
    case TypeKind::kInt:
      return "int";
    case TypeKind::kDecimal:
      return "decimal";
    case TypeKind::kReal:
      return "real";
    case TypeKind::kString:
      return "string";
    case TypeKind::kDate:
      return "date";
  }
  return "unknown";
}

Result<Type> Type::FromName(std::string_view name) {
  if (name == "bool") return Type::Bool();
  if (name == "int") return Type::Int();
  if (name == "decimal") return Type::Decimal();
  if (name == "real") return Type::Real();
  if (name == "string") return Type::String();
  if (name == "date") return Type::Date();
  return Status::InvalidArgument("unknown type name: " + std::string(name));
}

Type Type::CommonNumeric(Type a, Type b) {
  MRA_CHECK(a.IsNumeric() && b.IsNumeric())
      << "CommonNumeric on non-numeric types" << a.ToString() << b.ToString();
  if (a.kind() == TypeKind::kReal || b.kind() == TypeKind::kReal) {
    return Type::Real();
  }
  if (a.kind() == TypeKind::kDecimal || b.kind() == TypeKind::kDecimal) {
    return Type::Decimal();
  }
  return Type::Int();
}

}  // namespace mra
