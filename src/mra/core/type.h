// Domains (Definition 2.1): sets of atomic values.
//
// The paper names integers, reals, booleans and strings as common domains and
// notes that more specialised atomic domains such as date and money are
// possible; we provide all six.

#ifndef MRA_CORE_TYPE_H_
#define MRA_CORE_TYPE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "mra/common/result.h"

namespace mra {

/// The atomic domains of the data model (Definition 2.1).
enum class TypeKind : uint8_t {
  kBool = 0,
  kInt = 1,
  /// Fixed-point numeric with 4 fractional digits ("money" in the paper).
  kDecimal = 2,
  kReal = 3,
  kString = 4,
  /// Calendar day, stored as days since 1970-01-01.
  kDate = 5,
};

/// A domain.  Currently a thin wrapper over TypeKind; kept as a class so that
/// parameterised domains (e.g. varchar(n)) can be added without API breaks.
class Type {
 public:
  constexpr Type() : kind_(TypeKind::kInt) {}
  constexpr explicit Type(TypeKind kind) : kind_(kind) {}

  static constexpr Type Bool() { return Type(TypeKind::kBool); }
  static constexpr Type Int() { return Type(TypeKind::kInt); }
  static constexpr Type Decimal() { return Type(TypeKind::kDecimal); }
  static constexpr Type Real() { return Type(TypeKind::kReal); }
  static constexpr Type String() { return Type(TypeKind::kString); }
  static constexpr Type Date() { return Type(TypeKind::kDate); }

  constexpr TypeKind kind() const { return kind_; }

  /// True for int, decimal and real — the domains on which SUM/AVG and
  /// arithmetic are defined (Definition 3.3 requires "a numeric domain").
  constexpr bool IsNumeric() const {
    return kind_ == TypeKind::kInt || kind_ == TypeKind::kDecimal ||
           kind_ == TypeKind::kReal;
  }

  /// True if values of this type admit a total order (all current types do).
  constexpr bool IsOrdered() const { return true; }

  constexpr bool operator==(const Type& other) const {
    return kind_ == other.kind_;
  }
  constexpr bool operator!=(const Type& other) const {
    return kind_ != other.kind_;
  }

  /// Lower-case name as used in XRA schema syntax: "int", "real", ….
  std::string_view name() const;
  std::string ToString() const { return std::string(name()); }

  /// Parses an XRA type name ("bool", "int", "decimal", "real", "string",
  /// "date").  Case-sensitive.
  static Result<Type> FromName(std::string_view name);

  /// Numeric promotion for mixed arithmetic/comparison:
  /// int < decimal < real.  Both inputs must be numeric.
  static Type CommonNumeric(Type a, Type b);

 private:
  TypeKind kind_;
};

}  // namespace mra

#endif  // MRA_CORE_TYPE_H_
