// Abstract syntax of XRA scripts.
//
// Scalar sub-expressions need no name resolution (XRA addresses attributes
// positionally with %i, as the paper does), so the parser produces ExprPtr
// trees directly.  Relation expressions reference database relations by
// name and are bound to logical plans per statement execution by the
// binder, against the executing transaction's view.

#ifndef MRA_LANG_AST_H_
#define MRA_LANG_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "mra/algebra/aggregate.h"
#include "mra/core/relation.h"
#include "mra/expr/scalar_expr.h"

namespace mra {
namespace lang {

struct RelExpr;
using RelExprPtr = std::shared_ptr<const RelExpr>;

/// A relation-valued expression (Definitions 3.1/3.2/3.4 in textual form).
struct RelExpr {
  enum class Kind : uint8_t {
    kName,      // database relation or temporary
    kLiteral,   // {(…) : n, …} with inferred schema, or empty(a: t, …)
    kUnion,
    kDiff,
    kIntersect,
    kProduct,
    kJoin,
    kSelect,
    kProject,
    kUnique,
    kGroupBy,
    kSort,     // ordered emission + optional weighted limit (practical ext.)
    kClosure,  // §5 extension
  };

  Kind kind;
  int line = 0;

  std::string name;                // kName
  Relation literal;                // kLiteral
  ExprPtr condition;               // kJoin, kSelect
  std::vector<ExprPtr> projections;  // kProject
  std::vector<size_t> keys;        // kGroupBy, kSort (0-based)
  std::vector<AggSpec> aggs;       // kGroupBy
  std::vector<bool> sort_desc;     // kSort: per-key descending flag
  uint64_t limit = 0;              // kSort: weighted LIMIT, 0 = none
  std::vector<RelExprPtr> children;

  /// Source-like rendering (used in error messages and the REPL).
  std::string ToString() const;
};

/// One statement (Definition 4.1 plus the DDL extension).
struct Stmt {
  enum class Kind : uint8_t {
    kCreate,  // create name(attr: type, …)      [extension]
    kDrop,    // drop name                        [extension]
    kInsert,  // insert(name, E)
    kDelete,  // delete(name, E)
    kUpdate,  // update(name, E, [e1, …, en])
    kAssign,          // name := E
    kQuery,           // ? E
    kConstraint,      // constraint name (E)   [extension: §4.3 correctness]
    kDropConstraint,  // drop constraint name   [extension]
    kExplain,         // explain [analyze] E    [extension: observability]
    kAnalyze,         // analyze name           [extension: statistics]
    kSet,             // set knob = value       [extension: session config]
  };

  Kind kind;
  int line = 0;
  std::string target;              // relation / temporary name; kSet knob
  RelationSchema schema;           // kCreate
  RelExprPtr expr;                 // kInsert/kDelete/kUpdate/kAssign/kQuery/kExplain
  std::vector<ExprPtr> alpha;      // kUpdate attribute expression list
  bool analyze = false;            // kExplain: execute and report actuals
  std::string value;               // kSet: the knob's new value, verbatim

  std::string ToString() const;
};

/// A parsed script: a sequence of transactions and auto-committed
/// single statements.  `begin p end` brackets a program (Definition 4.3);
/// a bare statement executes as a single-statement transaction.
struct Script {
  struct Item {
    bool is_transaction = false;
    std::vector<Stmt> stmts;
  };
  std::vector<Item> items;
};

}  // namespace lang
}  // namespace mra

#endif  // MRA_LANG_AST_H_
