#include "mra/lang/interpreter.h"

#include "mra/exec/physical_planner.h"
#include "mra/lang/binder.h"
#include "mra/lang/parser.h"

namespace mra {
namespace lang {

Result<Relation> Interpreter::EvaluateExpr(const RelExpr& expr,
                                           const RelationProvider& provider) {
  MRA_ASSIGN_OR_RETURN(PlanPtr plan, BindRelExpr(expr, provider));
  if (options_.optimize) {
    opt::Optimizer optimizer(&provider);
    MRA_ASSIGN_OR_RETURN(plan, optimizer.Optimize(std::move(plan)));
  }
  if (options_.use_physical_exec) {
    return exec::ExecutePlan(plan, provider);
  }
  return EvaluatePlan(*plan, provider);
}

Status Interpreter::ExecuteStmt(const Stmt& stmt, Transaction& txn,
                                const QueryCallback& on_query) {
  switch (stmt.kind) {
    case Stmt::Kind::kCreate:
    case Stmt::Kind::kDrop:
    case Stmt::Kind::kConstraint:
    case Stmt::Kind::kDropConstraint:
      return Status::TxnError(
          "DDL statements are top-level only (line " +
          std::to_string(stmt.line) + ")");
    case Stmt::Kind::kInsert: {
      MRA_ASSIGN_OR_RETURN(Relation delta, EvaluateExpr(*stmt.expr, txn));
      return txn.Insert(stmt.target, delta);
    }
    case Stmt::Kind::kDelete: {
      MRA_ASSIGN_OR_RETURN(Relation delta, EvaluateExpr(*stmt.expr, txn));
      return txn.Delete(stmt.target, delta);
    }
    case Stmt::Kind::kUpdate: {
      MRA_ASSIGN_OR_RETURN(Relation matched, EvaluateExpr(*stmt.expr, txn));
      return txn.Update(stmt.target, matched, stmt.alpha);
    }
    case Stmt::Kind::kAssign: {
      MRA_ASSIGN_OR_RETURN(Relation value, EvaluateExpr(*stmt.expr, txn));
      return txn.Assign(stmt.target, std::move(value));
    }
    case Stmt::Kind::kQuery: {
      MRA_ASSIGN_OR_RETURN(Relation result, EvaluateExpr(*stmt.expr, txn));
      if (on_query) on_query(stmt.ToString(), result);
      return Status::OK();
    }
  }
  return Status::Internal("bad statement kind");
}

Status Interpreter::ExecuteItem(const Script::Item& item,
                                const QueryCallback& on_query) {
  // Top-level DDL runs outside transaction brackets.
  if (!item.is_transaction && item.stmts.size() == 1) {
    const Stmt& stmt = item.stmts[0];
    if (stmt.kind == Stmt::Kind::kCreate) {
      return db_->CreateRelation(stmt.schema);
    }
    if (stmt.kind == Stmt::Kind::kDrop) {
      return db_->DropRelation(stmt.target);
    }
    if (stmt.kind == Stmt::Kind::kConstraint) {
      MRA_ASSIGN_OR_RETURN(PlanPtr violation_query,
                           BindRelExpr(*stmt.expr, db_->catalog()));
      return db_->AddConstraint(stmt.target, std::move(violation_query));
    }
    if (stmt.kind == Stmt::Kind::kDropConstraint) {
      return db_->DropConstraint(stmt.target);
    }
  }

  MRA_ASSIGN_OR_RETURN(std::unique_ptr<Transaction> txn, db_->Begin());
  for (const Stmt& stmt : item.stmts) {
    Status s = ExecuteStmt(stmt, *txn, on_query);
    if (!s.ok()) {
      // Atomicity (Definition 4.3): the whole bracket rolls back.
      (void)txn->Abort();
      return s;
    }
  }
  return txn->Commit();
}

Status Interpreter::ExecuteScript(std::string_view source,
                                  const QueryCallback& on_query) {
  MRA_ASSIGN_OR_RETURN(Script script, ParseScript(source));
  for (const Script::Item& item : script.items) {
    MRA_RETURN_IF_ERROR(ExecuteItem(item, on_query));
  }
  return Status::OK();
}

Result<std::vector<Relation>> Interpreter::ExecuteScriptCollect(
    std::string_view source) {
  std::vector<Relation> results;
  MRA_RETURN_IF_ERROR(ExecuteScript(
      source, [&results](const std::string&, const Relation& r) {
        results.push_back(r);
      }));
  return results;
}

Result<Relation> Interpreter::Query(std::string_view rel_expr_source) {
  MRA_ASSIGN_OR_RETURN(RelExprPtr expr, ParseRelExpr(rel_expr_source));
  return EvaluateExpr(*expr, db_->catalog());
}

Result<std::string> Interpreter::Explain(std::string_view rel_expr_source) {
  MRA_ASSIGN_OR_RETURN(RelExprPtr expr, ParseRelExpr(rel_expr_source));
  const Catalog& catalog = db_->catalog();
  MRA_ASSIGN_OR_RETURN(PlanPtr plan, BindRelExpr(*expr, catalog));
  std::string out = "logical plan:\n" + plan->ToString();
  opt::Optimizer optimizer(&catalog);
  MRA_ASSIGN_OR_RETURN(PlanPtr optimized, optimizer.Optimize(plan));
  out += "\noptimized plan:\n" + optimized->ToString();
  MRA_ASSIGN_OR_RETURN(exec::PhysOpPtr physical,
                       exec::LowerPlan(optimized, catalog));
  out += "\nphysical plan:\n" + physical->ToString();
  return out;
}

}  // namespace lang
}  // namespace mra
