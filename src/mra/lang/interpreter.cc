#include "mra/lang/interpreter.h"

#include <chrono>
#include <cstdio>
#include <optional>

#include "mra/common/annotation.h"
#include "mra/exec/physical_planner.h"
#include "mra/lang/binder.h"
#include "mra/lang/parser.h"
#include "mra/obs/metrics.h"
#include "mra/obs/slow_log.h"
#include "mra/obs/trace.h"
#include "mra/opt/stats.h"

namespace mra {
namespace lang {

namespace {

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void HarvestOpStats(const exec::PhysicalOperator& op, uint32_t depth,
                    QueryStats* stats) {
  stats->operators.push_back(QueryStats::OpStats{
      std::string(op.name()), depth, op.estimated_rows(), op.metrics()});
  for (const exec::PhysicalOperator* child : op.children()) {
    HarvestOpStats(*child, depth + 1, stats);
  }
}

obs::Counter* QueryCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("exec.queries");
  return c;
}

obs::Histogram* QueryLatency() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Global().GetHistogram("exec.query_us");
  return h;
}

}  // namespace

std::shared_ptr<exec::ExecContext> Interpreter::BeginGoverned() {
  auto ctx = std::make_shared<exec::ExecContext>();
  ctx->set_query_id(obs::CurrentQueryId());
  ctx->SetDeadlineAfterMs(options_.governance.statement_timeout_ms);
  ctx->SetMemoryBudget(options_.governance.query_mem_budget_bytes);
  ctx->SetCancelToken(options_.governance.cancel_token);
  std::lock_guard<std::mutex> lock(govern_mutex_);
  if (pending_cancel_id_ != 0) {
    // A Cancel raced ahead of the query it targets (cancel-before-open).
    // Apply it if this is that query; either way it is consumed — a
    // pending id for a different query is stale once a new one starts.
    if (pending_cancel_id_ == ctx->query_id()) ctx->RequestCancel();
    pending_cancel_id_ = 0;
  }
  current_ctx_ = ctx;
  return ctx;
}

void Interpreter::EndGoverned() {
  std::lock_guard<std::mutex> lock(govern_mutex_);
  current_ctx_.reset();
}

void Interpreter::CancelQuery(uint64_t query_id) {
  std::lock_guard<std::mutex> lock(govern_mutex_);
  if (current_ctx_ != nullptr &&
      (query_id == 0 || current_ctx_->query_id() == query_id)) {
    current_ctx_->RequestCancel();
    return;
  }
  if (query_id != 0) pending_cancel_id_ = query_id;
}

Result<Relation> Interpreter::EvaluateExpr(const RelExpr& expr,
                                           const RelationProvider& provider) {
  QueryCounter()->Inc();
  QueryStats stats;
  stats.query_id = obs::CurrentQueryId();
  // Governance brackets the whole evaluation: the statement timeout counts
  // from here, and CancelQuery() can reach the context from another thread
  // until EndGoverned() runs (the guard covers every return path).
  std::shared_ptr<exec::ExecContext> gctx = BeginGoverned();
  struct GovernGuard {
    Interpreter* interp;
    ~GovernGuard() { interp->EndGoverned(); }
  } govern_guard{this};
  uint64_t t0 = NowMicros();
  PlanPtr plan;
  {
    obs::ScopedSpan span("bind");
    MRA_ASSIGN_OR_RETURN(plan, BindRelExpr(expr, provider));
  }
  uint64_t t1 = NowMicros();
  stats.bind_us = t1 - t0;
  if (options_.planner.optimize) {
    obs::ScopedSpan span("optimize");
    opt::Optimizer optimizer(&provider);
    MRA_ASSIGN_OR_RETURN(plan, optimizer.Optimize(std::move(plan)));
  }
  uint64_t t2 = NowMicros();
  stats.optimize_us = t2 - t1;
  if (!options_.exec.use_physical_exec) {
    obs::ScopedSpan span("execute");
    Result<Relation> result = EvaluatePlan(*plan, provider);
    QueryLatency()->Observe(NowMicros() - t0);
    return result;
  }
  exec::PhysOpPtr root;
  {
    obs::ScopedSpan span("lower");
    // Estimates drive both EXPLAIN ANALYZE's est-vs-actual annotations and
    // the parallel-variant decision (workers > 1), so the production path
    // lowers with the statistics-backed estimator, like ExplainExpr.
    opt::StatsCache stats_cache(&provider);
    exec::CardinalityEstimator estimator =
        [&provider, &stats_cache](const Plan& node) {
          return opt::EstimateCardinality(node, provider, &stats_cache);
        };
    MRA_ASSIGN_OR_RETURN(root, exec::LowerPlan(plan, provider, &estimator,
                                               options_, gctx.get()));
  }
  uint64_t t3 = NowMicros();
  stats.lower_us = t3 - t2;
  Result<Relation> result = [&]() -> Result<Relation> {
    obs::ScopedSpan span("execute");
    return exec::ExecuteToRelation(*root, options_.exec.batch_size);
  }();
  uint64_t t4 = NowMicros();
  stats.exec_us = t4 - t3;
  stats.total_us = t4 - t0;
  HarvestOpStats(*root, 0, &stats);
  if (result.ok()) {
    stats.result_rows = result->size();
    stats.valid = true;
  }
  last_query_stats_ = std::move(stats);
  QueryLatency()->Observe(last_query_stats_.total_us);

  obs::SlowQueryLog& slow_log = obs::SlowQueryLog::Global();
  // A governed kill is always log-worthy while the log is enabled — the
  // entry's "killed:<reason>" event tag is how an operator finds out
  // after the fact why a query died (cancel, deadline or budget).
  const exec::KillReason kill_reason = gctx->kill_reason();
  const bool governed_kill =
      !result.ok() && kill_reason != exec::KillReason::kNone;
  if ((result.ok() && slow_log.ShouldLog(last_query_stats_.total_us)) ||
      (governed_kill && slow_log.enabled())) {
    obs::SlowQueryEntry entry;
    entry.query_id = last_query_stats_.query_id;
    entry.latency_us = last_query_stats_.total_us;
    entry.bind_us = last_query_stats_.bind_us;
    entry.optimize_us = last_query_stats_.optimize_us;
    entry.lower_us = last_query_stats_.lower_us;
    entry.exec_us = last_query_stats_.exec_us;
    entry.result_rows = last_query_stats_.result_rows;
    entry.source = current_source_;
    entry.plan = exec::RenderPlanWithMetrics(*root);
    if (governed_kill) {
      entry.events.push_back("killed:" +
                             std::string(exec::KillReasonName(kill_reason)));
    }
    slow_log.Record(std::move(entry));
  }
  return result;
}

Status Interpreter::ExecuteStmt(const Stmt& stmt, Transaction& txn,
                                const QueryCallback& on_query) {
  current_source_ = stmt.ToString();
  switch (stmt.kind) {
    case Stmt::Kind::kCreate:
    case Stmt::Kind::kDrop:
    case Stmt::Kind::kConstraint:
    case Stmt::Kind::kDropConstraint:
      return Status::TxnError(
          "DDL statements are top-level only (line " +
          std::to_string(stmt.line) + ")");
    case Stmt::Kind::kAnalyze:
      // Statistics describe committed state; collecting them against a
      // transaction's working copies would persist uncommitted numbers.
      return Status::TxnError(
          "analyze is top-level only (line " + std::to_string(stmt.line) +
          ")");
    case Stmt::Kind::kSet:
      // Config changes take effect between statements, not inside a
      // bracket whose earlier statements already ran under the old knobs.
      return Status::TxnError("set is top-level only (line " +
                              std::to_string(stmt.line) + ")");
    case Stmt::Kind::kInsert: {
      MRA_ASSIGN_OR_RETURN(Relation delta, EvaluateExpr(*stmt.expr, txn));
      return txn.Insert(stmt.target, delta);
    }
    case Stmt::Kind::kDelete: {
      MRA_ASSIGN_OR_RETURN(Relation delta, EvaluateExpr(*stmt.expr, txn));
      return txn.Delete(stmt.target, delta);
    }
    case Stmt::Kind::kUpdate: {
      MRA_ASSIGN_OR_RETURN(Relation matched, EvaluateExpr(*stmt.expr, txn));
      return txn.Update(stmt.target, matched, stmt.alpha);
    }
    case Stmt::Kind::kAssign: {
      MRA_ASSIGN_OR_RETURN(Relation value, EvaluateExpr(*stmt.expr, txn));
      return txn.Assign(stmt.target, std::move(value));
    }
    case Stmt::Kind::kQuery: {
      MRA_ASSIGN_OR_RETURN(Relation result, EvaluateExpr(*stmt.expr, txn));
      if (on_query) on_query(stmt.ToString(), result);
      return Status::OK();
    }
    case Stmt::Kind::kExplain: {
      MRA_ASSIGN_OR_RETURN(std::string text,
                           ExplainExpr(*stmt.expr, txn, stmt.analyze));
      if (on_query) {
        // The plan text travels as a one-tuple relation so it flows through
        // the ordinary query channel (a multi-row rendering would lose line
        // order: relations are unordered bags).
        Relation rel(
            RelationSchema("explain", {Attribute{"plan", Type::String()}}));
        rel.InsertUnchecked(Tuple({Value::Str(std::move(text))}), 1);
        on_query(stmt.ToString(), rel);
      }
      return Status::OK();
    }
  }
  return Status::Internal("bad statement kind");
}

Status Interpreter::ExecuteItem(const Script::Item& item,
                                const QueryCallback& on_query) {
  // Top-level DDL runs outside transaction brackets.
  if (!item.is_transaction && item.stmts.size() == 1) {
    const Stmt& stmt = item.stmts[0];
    if (stmt.kind == Stmt::Kind::kCreate) {
      return db_->CreateRelation(stmt.schema);
    }
    if (stmt.kind == Stmt::Kind::kDrop) {
      return db_->DropRelation(stmt.target);
    }
    if (stmt.kind == Stmt::Kind::kConstraint) {
      PlanPtr violation_query;
      {
        // Bind against a stable committed state; AddConstraint re-locks
        // exclusively, so the read lock must not outlive the binding.
        auto read_lock = db_->ReadLock();
        MRA_ASSIGN_OR_RETURN(violation_query,
                             BindRelExpr(*stmt.expr, db_->catalog()));
      }
      return db_->AddConstraint(stmt.target, std::move(violation_query));
    }
    if (stmt.kind == Stmt::Kind::kDropConstraint) {
      return db_->DropConstraint(stmt.target);
    }
    if (stmt.kind == Stmt::Kind::kSet) {
      return SetOption(stmt.target, stmt.value);
    }
    if (stmt.kind == Stmt::Kind::kAnalyze) {
      MRA_ASSIGN_OR_RETURN(stats::TableStatistics stats,
                           db_->Analyze(stmt.target));
      if (on_query) {
        // The collection summary travels the query channel as a one-tuple
        // relation, like EXPLAIN's plan text.
        Relation rel(RelationSchema(
            "analyze", {Attribute{"summary", Type::String()}}));
        rel.InsertUnchecked(
            Tuple({Value::Str(stmt.target + ": " + stats.ToString())}), 1);
        on_query(stmt.ToString(), rel);
      }
      return Status::OK();
    }
  }

  MRA_ASSIGN_OR_RETURN(std::unique_ptr<Transaction> txn,
                       db_->Begin(options_.session.block_on_txn_slot));
  for (const Stmt& stmt : item.stmts) {
    Status s = ExecuteStmt(stmt, *txn, on_query);
    if (!s.ok()) {
      // Atomicity (Definition 4.3): the whole bracket rolls back.
      (void)txn->Abort();
      return s;
    }
  }
  return txn->Commit();
}

Status Interpreter::ExecuteScript(std::string_view source,
                                  const QueryCallback& on_query) {
  // The whole script shares one query id unless the caller (e.g. the
  // network server, which binds the wire-provided id) set one already.
  std::optional<obs::ScopedQueryId> qid;
  if (obs::CurrentQueryId() == 0) qid.emplace(obs::NextQueryId());
  obs::ScopedSpan script_span("script");
  Script script;
  {
    obs::ScopedSpan span("parse");
    MRA_ASSIGN_OR_RETURN(script, ParseScript(source));
  }
  for (const Script::Item& item : script.items) {
    MRA_RETURN_IF_ERROR(ExecuteItem(item, on_query));
  }
  return Status::OK();
}

Result<std::vector<Relation>> Interpreter::ExecuteScriptCollect(
    std::string_view source) {
  std::vector<Relation> results;
  MRA_RETURN_IF_ERROR(ExecuteScript(
      source, [&results](const std::string&, const Relation& r) {
        results.push_back(r);
      }));
  return results;
}

Result<Relation> Interpreter::Query(std::string_view rel_expr_source) {
  std::optional<obs::ScopedQueryId> qid;
  if (obs::CurrentQueryId() == 0) qid.emplace(obs::NextQueryId());
  current_source_ = std::string(rel_expr_source);
  obs::ScopedSpan query_span("query");
  RelExprPtr expr;
  {
    obs::ScopedSpan span("parse");
    MRA_ASSIGN_OR_RETURN(expr, ParseRelExpr(rel_expr_source));
  }
  // Bind-through-execute pins relation instances from the committed
  // catalog, so the whole evaluation runs under the shared read lock —
  // concurrent with other queries, serialized against commits.
  auto read_lock = db_->ReadLock();
  return EvaluateExpr(*expr, db_->catalog());
}

Result<std::string> Interpreter::Explain(std::string_view rel_expr_source) {
  MRA_ASSIGN_OR_RETURN(RelExprPtr expr, ParseRelExpr(rel_expr_source));
  auto read_lock = db_->ReadLock();
  return ExplainExpr(*expr, db_->catalog(), /*analyze=*/false);
}

Result<std::string> Interpreter::ExplainAnalyze(
    std::string_view rel_expr_source) {
  MRA_ASSIGN_OR_RETURN(RelExprPtr expr, ParseRelExpr(rel_expr_source));
  auto read_lock = db_->ReadLock();
  return ExplainExpr(*expr, db_->catalog(), /*analyze=*/true);
}

Result<std::string> Interpreter::ExplainExpr(const RelExpr& expr,
                                             const RelationProvider& provider,
                                             bool analyze) {
  MRA_ASSIGN_OR_RETURN(PlanPtr plan, BindRelExpr(expr, provider));
  std::string out = "logical plan:\n" + plan->ToString();
  opt::Optimizer optimizer(&provider);
  opt::OptimizerReport report;
  MRA_ASSIGN_OR_RETURN(PlanPtr optimized, optimizer.Optimize(plan, &report));
  out += "\noptimized plan:\n" + optimized->ToString();
  // The optimizer's decision trail: which rules fired, which join regions
  // were reordered (and into what order).
  for (const std::string& entry : report.entries) {
    out += "\n" + BracketAnnotation(entry);
  }

  // Annotate every operator with the planner's cardinality prediction so
  // the analyzed rendering can expose the estimation error per node.
  opt::StatsCache stats_cache(&provider);
  exec::CardinalityEstimator estimator =
      [&provider, &stats_cache](const Plan& node) {
        return opt::EstimateCardinality(node, provider, &stats_cache);
      };
  // EXPLAIN ANALYZE executes the plan for real, so it is governed like
  // any query (an analyzed runaway join is still a runaway join).
  std::shared_ptr<exec::ExecContext> gctx = analyze ? BeginGoverned() : nullptr;
  struct GovernGuard {
    Interpreter* interp;
    ~GovernGuard() {
      if (interp != nullptr) interp->EndGoverned();
    }
  } govern_guard{analyze ? this : nullptr};
  MRA_ASSIGN_OR_RETURN(
      exec::PhysOpPtr physical,
      exec::LowerPlan(optimized, provider, &estimator, options_, gctx.get()));
  if (!analyze) {
    out += "\nphysical plan:\n" + physical->ToString();
    return out;
  }

  QueryCounter()->Inc();
  obs::ScopedExecTiming timing(true);
  uint64_t t0 = NowMicros();
  Result<Relation> result = [&]() -> Result<Relation> {
    obs::ScopedSpan span("execute");
    return exec::ExecuteToRelation(*physical, options_.exec.batch_size);
  }();
  uint64_t exec_us = NowMicros() - t0;
  QueryLatency()->Observe(exec_us);
  MRA_RETURN_IF_ERROR(result.status());

  last_query_stats_ = QueryStats{};
  last_query_stats_.query_id = obs::CurrentQueryId();
  last_query_stats_.exec_us = exec_us;
  last_query_stats_.total_us = exec_us;
  HarvestOpStats(*physical, 0, &last_query_stats_);
  last_query_stats_.result_rows = result->size();
  last_query_stats_.valid = true;

  out += "\nphysical plan (analyzed):\n" + exec::RenderPlanWithMetrics(*physical);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(exec_us) / 1e3);
  out += "result: " + std::to_string(result->size()) + " rows (" +
         std::to_string(result->distinct_size()) + " distinct), " + buf +
         "ms\n";
  return out;
}

}  // namespace lang
}  // namespace mra
