// Tokens of the XRA language — the textual form of the extended relational
// algebra, after the PRISMA/DB language the paper cites as its practical
// instantiation.

#ifndef MRA_LANG_TOKEN_H_
#define MRA_LANG_TOKEN_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace mra {
namespace lang {

enum class TokenKind : uint8_t {
  kEnd,         // end of input
  kIdentifier,  // relation / attribute names
  kAttrRef,     // %1, %2, …
  kIntLit,
  kRealLit,
  kStringLit,   // 'text'
  kDateLit,     // date'1994-02-14'
  kDecimalLit,  // dec'12.34'

  // Keywords.
  kKwCreate,
  kKwDrop,
  kKwInsert,
  kKwDelete,
  kKwUpdate,
  kKwBegin,
  kKwEnd,
  kKwUnion,
  kKwDiff,
  kKwIntersect,
  kKwProduct,
  kKwJoin,
  kKwSelect,
  kKwProject,
  kKwUnique,
  kKwGroupby,
  kKwSort,
  kKwClosure,
  kKwConstraint,
  kKwExplain,
  kKwAnalyze,
  kKwSet,
  kKwEmpty,
  kKwCnt,
  kKwSum,
  kKwAvg,
  kKwMin,
  kKwMax,
  kKwAnd,
  kKwOr,
  kKwNot,
  kKwTrue,
  kKwFalse,

  // Punctuation and operators.
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kComma,
  kSemicolon,
  kColon,
  kAssign,  // :=
  kQuery,   // ?
  kEq,      // =
  kNe,      // <>
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
};

std::string_view TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  /// Raw text (identifier name, literal body without quotes/prefix).
  std::string text;
  /// 0-based attribute index for kAttrRef (the source %i is 1-based).
  size_t attr_index = 0;
  int line = 0;
  int column = 0;

  std::string Describe() const;
};

}  // namespace lang
}  // namespace mra

#endif  // MRA_LANG_TOKEN_H_
