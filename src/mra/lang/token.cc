#include "mra/lang/token.h"

namespace mra {
namespace lang {

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd:
      return "end of input";
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kAttrRef:
      return "attribute reference";
    case TokenKind::kIntLit:
      return "integer literal";
    case TokenKind::kRealLit:
      return "real literal";
    case TokenKind::kStringLit:
      return "string literal";
    case TokenKind::kDateLit:
      return "date literal";
    case TokenKind::kDecimalLit:
      return "decimal literal";
    case TokenKind::kKwCreate:
      return "'create'";
    case TokenKind::kKwDrop:
      return "'drop'";
    case TokenKind::kKwInsert:
      return "'insert'";
    case TokenKind::kKwDelete:
      return "'delete'";
    case TokenKind::kKwUpdate:
      return "'update'";
    case TokenKind::kKwBegin:
      return "'begin'";
    case TokenKind::kKwEnd:
      return "'end'";
    case TokenKind::kKwUnion:
      return "'union'";
    case TokenKind::kKwDiff:
      return "'diff'";
    case TokenKind::kKwIntersect:
      return "'intersect'";
    case TokenKind::kKwProduct:
      return "'product'";
    case TokenKind::kKwJoin:
      return "'join'";
    case TokenKind::kKwSelect:
      return "'select'";
    case TokenKind::kKwProject:
      return "'project'";
    case TokenKind::kKwUnique:
      return "'unique'";
    case TokenKind::kKwGroupby:
      return "'groupby'";
    case TokenKind::kKwSort:
      return "'sort'";
    case TokenKind::kKwClosure:
      return "'closure'";
    case TokenKind::kKwConstraint:
      return "'constraint'";
    case TokenKind::kKwExplain:
      return "'explain'";
    case TokenKind::kKwAnalyze:
      return "'analyze'";
    case TokenKind::kKwSet:
      return "'set'";
    case TokenKind::kKwEmpty:
      return "'empty'";
    case TokenKind::kKwCnt:
      return "'cnt'";
    case TokenKind::kKwSum:
      return "'sum'";
    case TokenKind::kKwAvg:
      return "'avg'";
    case TokenKind::kKwMin:
      return "'min'";
    case TokenKind::kKwMax:
      return "'max'";
    case TokenKind::kKwAnd:
      return "'and'";
    case TokenKind::kKwOr:
      return "'or'";
    case TokenKind::kKwNot:
      return "'not'";
    case TokenKind::kKwTrue:
      return "'true'";
    case TokenKind::kKwFalse:
      return "'false'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kAssign:
      return "':='";
    case TokenKind::kQuery:
      return "'?'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'<>'";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kPercent:
      return "'%'";
  }
  return "?";
}

std::string Token::Describe() const {
  std::string out(TokenKindName(kind));
  if (kind == TokenKind::kIdentifier || kind == TokenKind::kIntLit ||
      kind == TokenKind::kRealLit || kind == TokenKind::kStringLit) {
    out += " '" + text + "'";
  }
  if (kind == TokenKind::kAttrRef) {
    out += " %" + std::to_string(attr_index + 1);
  }
  return out;
}

}  // namespace lang
}  // namespace mra
