// Binds parsed relation expressions to typed logical plans, resolving
// relation names against a RelationProvider (the executing transaction's
// view, so temporaries created by earlier statements are visible —
// Definition 4.3's intermediate states D^{t.i}).

#ifndef MRA_LANG_BINDER_H_
#define MRA_LANG_BINDER_H_

#include "mra/algebra/evaluator.h"
#include "mra/algebra/plan.h"
#include "mra/lang/ast.h"

namespace mra {
namespace lang {

/// Produces a type-checked logical plan for `expr`.  All schema and type
/// errors surface here with source line context.
Result<PlanPtr> BindRelExpr(const RelExpr& expr,
                            const RelationProvider& provider);

}  // namespace lang
}  // namespace mra

#endif  // MRA_LANG_BINDER_H_
