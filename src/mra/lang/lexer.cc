#include "mra/lang/lexer.h"

#include <cctype>
#include <unordered_map>

namespace mra {
namespace lang {

namespace {

const std::unordered_map<std::string_view, TokenKind>& Keywords() {
  static const auto* keywords =
      new std::unordered_map<std::string_view, TokenKind>{
          {"create", TokenKind::kKwCreate},
          {"drop", TokenKind::kKwDrop},
          {"insert", TokenKind::kKwInsert},
          {"delete", TokenKind::kKwDelete},
          {"update", TokenKind::kKwUpdate},
          {"begin", TokenKind::kKwBegin},
          {"end", TokenKind::kKwEnd},
          {"union", TokenKind::kKwUnion},
          {"diff", TokenKind::kKwDiff},
          {"intersect", TokenKind::kKwIntersect},
          {"product", TokenKind::kKwProduct},
          {"join", TokenKind::kKwJoin},
          {"select", TokenKind::kKwSelect},
          {"project", TokenKind::kKwProject},
          {"unique", TokenKind::kKwUnique},
          {"groupby", TokenKind::kKwGroupby},
          {"sort", TokenKind::kKwSort},
          {"closure", TokenKind::kKwClosure},
          {"constraint", TokenKind::kKwConstraint},
          {"explain", TokenKind::kKwExplain},
          {"analyze", TokenKind::kKwAnalyze},
          {"set", TokenKind::kKwSet},
          {"empty", TokenKind::kKwEmpty},
          {"cnt", TokenKind::kKwCnt},
          {"sum", TokenKind::kKwSum},
          {"avg", TokenKind::kKwAvg},
          {"min", TokenKind::kKwMin},
          {"max", TokenKind::kKwMax},
          {"and", TokenKind::kKwAnd},
          {"or", TokenKind::kKwOr},
          {"not", TokenKind::kKwNot},
          {"true", TokenKind::kKwTrue},
          {"false", TokenKind::kKwFalse},
      };
  return *keywords;
}

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespaceAndComments();
      if (AtEnd()) break;
      MRA_ASSIGN_OR_RETURN(Token t, Lex());
      tokens.push_back(std::move(t));
    }
    tokens.push_back(Make(TokenKind::kEnd));
    return tokens;
  }

 private:
  bool AtEnd() const { return pos_ >= source_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = source_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  Token Make(TokenKind kind, std::string text = {}) const {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line_;
    t.column = column_;
    return t;
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at line " + std::to_string(line_) +
                              ", column " + std::to_string(column_));
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '-' && Peek(1) == '-') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else {
        break;
      }
    }
  }

  Result<Token> Lex() {
    char c = Peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return LexWord();
    }
    if (std::isdigit(static_cast<unsigned char>(c))) return LexNumber();
    switch (c) {
      case '%':
        return LexAttrRef();
      case '\'':
        return LexString(TokenKind::kStringLit);
      case '(':
        Advance();
        return Make(TokenKind::kLParen);
      case ')':
        Advance();
        return Make(TokenKind::kRParen);
      case '[':
        Advance();
        return Make(TokenKind::kLBracket);
      case ']':
        Advance();
        return Make(TokenKind::kRBracket);
      case '{':
        Advance();
        return Make(TokenKind::kLBrace);
      case '}':
        Advance();
        return Make(TokenKind::kRBrace);
      case ',':
        Advance();
        return Make(TokenKind::kComma);
      case ';':
        Advance();
        return Make(TokenKind::kSemicolon);
      case ':':
        Advance();
        if (Peek() == '=') {
          Advance();
          return Make(TokenKind::kAssign);
        }
        return Make(TokenKind::kColon);
      case '?':
        Advance();
        return Make(TokenKind::kQuery);
      case '=':
        Advance();
        return Make(TokenKind::kEq);
      case '<':
        Advance();
        if (Peek() == '>') {
          Advance();
          return Make(TokenKind::kNe);
        }
        if (Peek() == '=') {
          Advance();
          return Make(TokenKind::kLe);
        }
        return Make(TokenKind::kLt);
      case '>':
        Advance();
        if (Peek() == '=') {
          Advance();
          return Make(TokenKind::kGe);
        }
        return Make(TokenKind::kGt);
      case '+':
        Advance();
        return Make(TokenKind::kPlus);
      case '-':
        Advance();
        return Make(TokenKind::kMinus);
      case '*':
        Advance();
        return Make(TokenKind::kStar);
      case '/':
        Advance();
        return Make(TokenKind::kSlash);
      default:
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  Result<Token> LexWord() {
    std::string word;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
      word.push_back(Advance());
    }
    // Prefixed literals: date'…' and dec'…'.
    if ((word == "date" || word == "dec") && Peek() == '\'') {
      MRA_ASSIGN_OR_RETURN(Token body, LexString(word == "date"
                                                     ? TokenKind::kDateLit
                                                     : TokenKind::kDecimalLit));
      return body;
    }
    auto it = Keywords().find(word);
    if (it != Keywords().end()) return Make(it->second, std::move(word));
    return Make(TokenKind::kIdentifier, std::move(word));
  }

  Result<Token> LexNumber() {
    std::string digits;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      digits.push_back(Advance());
    }
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      digits.push_back(Advance());
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        digits.push_back(Advance());
      }
      return Make(TokenKind::kRealLit, std::move(digits));
    }
    return Make(TokenKind::kIntLit, std::move(digits));
  }

  Result<Token> LexAttrRef() {
    Advance();  // '%'
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
      // A bare % is the modulo operator.
      return Make(TokenKind::kPercent);
    }
    std::string digits;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      digits.push_back(Advance());
    }
    size_t index = std::stoull(digits);
    if (index == 0) return Error("attribute references are 1-based (%1, %2, …)");
    Token t = Make(TokenKind::kAttrRef);
    t.attr_index = index - 1;
    return t;
  }

  Result<Token> LexString(TokenKind kind) {
    Advance();  // opening quote
    std::string body;
    while (true) {
      if (AtEnd()) return Error("unterminated string literal");
      char c = Advance();
      if (c == '\'') {
        if (Peek() == '\'') {
          body.push_back(Advance());  // '' escapes a quote
          continue;
        }
        break;
      }
      body.push_back(c);
    }
    return Make(kind, std::move(body));
  }

  std::string_view source_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view source) {
  return Lexer(source).Run();
}

}  // namespace lang
}  // namespace mra
