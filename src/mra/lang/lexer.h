// Lexer for XRA source text.  `--` starts a comment that runs to the end of
// the line; string bodies escape a quote by doubling it ('it''s').

#ifndef MRA_LANG_LEXER_H_
#define MRA_LANG_LEXER_H_

#include <string_view>
#include <vector>

#include "mra/common/result.h"
#include "mra/lang/token.h"

namespace mra {
namespace lang {

/// Tokenises the whole input (the final token is kEnd).  Returns ParseError
/// with line/column context on malformed input.
Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace lang
}  // namespace mra

#endif  // MRA_LANG_LEXER_H_
