// Recursive-descent parser for XRA scripts.
//
// Grammar sketch (see docs/LANGUAGE.md for the full language reference):
//
//   script  := item*
//   item    := 'begin' stmt (';' stmt)* 'end' [';']  |  stmt [';']
//   stmt    := 'create' name '(' attr ':' type {',' …} ')'
//            | 'drop' name
//            | 'insert' '(' name ',' rexpr ')'
//            | 'delete' '(' name ',' rexpr ')'
//            | 'update' '(' name ',' rexpr ',' '[' scalar {',' …} ']' ')'
//            | name ':=' rexpr
//            | '?' rexpr
//   rexpr   := name | '{' tuple [':' mult] {',' …} '}' | 'empty' '(' … ')'
//            | 'union'|'diff'|'intersect'|'product' '(' rexpr ',' rexpr ')'
//            | 'join' '(' scalar ',' rexpr ',' rexpr ')'
//            | 'select' '(' scalar ',' rexpr ')'
//            | 'project' '(' '[' scalar {',' …} ']' ',' rexpr ')'
//            | 'unique' '(' rexpr ')'
//            | 'groupby' '(' '[' %i {',' …} ']' ',' agg '(' %i ')' {',' …}
//                        ',' rexpr ')'
//
// Scalar expressions use the usual precedence:
// or < and < not < comparisons < + - < * / % < unary - < primary.

#ifndef MRA_LANG_PARSER_H_
#define MRA_LANG_PARSER_H_

#include <string_view>

#include "mra/common/result.h"
#include "mra/lang/ast.h"

namespace mra {
namespace lang {

/// Parses a whole script (statements and begin/end transactions).
Result<Script> ParseScript(std::string_view source);

/// Parses a single relation expression (for embedding / tests).
Result<RelExprPtr> ParseRelExpr(std::string_view source);

/// Parses a single scalar expression (for embedding / tests).
Result<ExprPtr> ParseScalarExpr(std::string_view source);

}  // namespace lang
}  // namespace mra

#endif  // MRA_LANG_PARSER_H_
