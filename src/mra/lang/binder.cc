#include "mra/lang/binder.h"

namespace mra {
namespace lang {

namespace {

// Decorates an error status with the source line of the offending node.
Status AtLine(Status s, int line) {
  if (s.ok()) return s;
  return Status(s.code(), s.message() + " (line " + std::to_string(line) + ")");
}

template <typename T>
Result<T> AtLine(Result<T> r, int line) {
  if (r.ok()) return r;
  return AtLine(r.status(), line);
}

}  // namespace

Result<PlanPtr> BindRelExpr(const RelExpr& expr,
                            const RelationProvider& provider) {
  switch (expr.kind) {
    case RelExpr::Kind::kName: {
      MRA_ASSIGN_OR_RETURN(const Relation* rel,
                           AtLine(provider.GetRelation(expr.name), expr.line));
      return Plan::Scan(expr.name, rel->schema());
    }
    case RelExpr::Kind::kLiteral:
      return Plan::ConstRel(expr.literal);
    case RelExpr::Kind::kUnion:
    case RelExpr::Kind::kDiff:
    case RelExpr::Kind::kIntersect:
    case RelExpr::Kind::kProduct: {
      MRA_ASSIGN_OR_RETURN(PlanPtr l, BindRelExpr(*expr.children[0], provider));
      MRA_ASSIGN_OR_RETURN(PlanPtr r, BindRelExpr(*expr.children[1], provider));
      switch (expr.kind) {
        case RelExpr::Kind::kUnion:
          return AtLine(Plan::Union(std::move(l), std::move(r)), expr.line);
        case RelExpr::Kind::kDiff:
          return AtLine(Plan::Difference(std::move(l), std::move(r)),
                        expr.line);
        case RelExpr::Kind::kIntersect:
          return AtLine(Plan::Intersect(std::move(l), std::move(r)),
                        expr.line);
        default:
          return AtLine(Plan::Product(std::move(l), std::move(r)), expr.line);
      }
    }
    case RelExpr::Kind::kJoin: {
      MRA_ASSIGN_OR_RETURN(PlanPtr l, BindRelExpr(*expr.children[0], provider));
      MRA_ASSIGN_OR_RETURN(PlanPtr r, BindRelExpr(*expr.children[1], provider));
      return AtLine(Plan::Join(expr.condition, std::move(l), std::move(r)),
                    expr.line);
    }
    case RelExpr::Kind::kSelect: {
      MRA_ASSIGN_OR_RETURN(PlanPtr in, BindRelExpr(*expr.children[0], provider));
      return AtLine(Plan::Select(expr.condition, std::move(in)), expr.line);
    }
    case RelExpr::Kind::kProject: {
      MRA_ASSIGN_OR_RETURN(PlanPtr in, BindRelExpr(*expr.children[0], provider));
      return AtLine(Plan::Project(expr.projections, std::move(in)), expr.line);
    }
    case RelExpr::Kind::kUnique: {
      MRA_ASSIGN_OR_RETURN(PlanPtr in, BindRelExpr(*expr.children[0], provider));
      return AtLine(Plan::Unique(std::move(in)), expr.line);
    }
    case RelExpr::Kind::kClosure: {
      MRA_ASSIGN_OR_RETURN(PlanPtr in, BindRelExpr(*expr.children[0], provider));
      return AtLine(Plan::Closure(std::move(in)), expr.line);
    }
    case RelExpr::Kind::kGroupBy: {
      MRA_ASSIGN_OR_RETURN(PlanPtr in, BindRelExpr(*expr.children[0], provider));
      return AtLine(Plan::GroupBy(expr.keys, expr.aggs, std::move(in)),
                    expr.line);
    }
    case RelExpr::Kind::kSort: {
      MRA_ASSIGN_OR_RETURN(PlanPtr in, BindRelExpr(*expr.children[0], provider));
      return AtLine(
          Plan::Sort(expr.keys, expr.sort_desc, expr.limit, std::move(in)),
          expr.line);
    }
  }
  return Status::Internal("bad relation expression kind");
}

}  // namespace lang
}  // namespace mra
