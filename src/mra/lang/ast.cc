#include "mra/lang/ast.h"

#include <sstream>

namespace mra {
namespace lang {

namespace {

void RenderExprList(const std::vector<ExprPtr>& exprs, std::ostream& out) {
  out << "[";
  for (size_t i = 0; i < exprs.size(); ++i) {
    if (i > 0) out << ", ";
    out << exprs[i]->ToString();
  }
  out << "]";
}

}  // namespace

std::string RelExpr::ToString() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kName:
      return name;
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kUnion:
      out << "union(" << children[0]->ToString() << ", "
          << children[1]->ToString() << ")";
      break;
    case Kind::kDiff:
      out << "diff(" << children[0]->ToString() << ", "
          << children[1]->ToString() << ")";
      break;
    case Kind::kIntersect:
      out << "intersect(" << children[0]->ToString() << ", "
          << children[1]->ToString() << ")";
      break;
    case Kind::kProduct:
      out << "product(" << children[0]->ToString() << ", "
          << children[1]->ToString() << ")";
      break;
    case Kind::kJoin:
      out << "join(" << condition->ToString() << ", "
          << children[0]->ToString() << ", " << children[1]->ToString() << ")";
      break;
    case Kind::kSelect:
      out << "select(" << condition->ToString() << ", "
          << children[0]->ToString() << ")";
      break;
    case Kind::kProject:
      out << "project(";
      RenderExprList(projections, out);
      out << ", " << children[0]->ToString() << ")";
      break;
    case Kind::kUnique:
      out << "unique(" << children[0]->ToString() << ")";
      break;
    case Kind::kClosure:
      out << "closure(" << children[0]->ToString() << ")";
      break;
    case Kind::kSort: {
      out << "sort([";
      for (size_t i = 0; i < keys.size(); ++i) {
        if (i > 0) out << ", ";
        if (sort_desc[i]) out << "-";
        out << "%" << keys[i] + 1;
      }
      out << "], " << children[0]->ToString();
      if (limit > 0) out << ", " << limit;
      out << ")";
      break;
    }
    case Kind::kGroupBy: {
      out << "groupby([";
      for (size_t i = 0; i < keys.size(); ++i) {
        if (i > 0) out << ", ";
        out << "%" << keys[i] + 1;
      }
      out << "], ";
      for (size_t i = 0; i < aggs.size(); ++i) {
        if (i > 0) out << ", ";
        out << AggKindName(aggs[i].kind) << "(%" << aggs[i].attr + 1 << ")";
      }
      out << ", " << children[0]->ToString() << ")";
      break;
    }
  }
  return out.str();
}

std::string Stmt::ToString() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kCreate: {
      out << "create " << target << "(";
      for (size_t i = 0; i < schema.arity(); ++i) {
        if (i > 0) out << ", ";
        out << schema.attribute(i).name << ": "
            << schema.attribute(i).type.name();
      }
      out << ")";
      break;
    }
    case Kind::kDrop:
      out << "drop " << target;
      break;
    case Kind::kInsert:
      out << "insert(" << target << ", " << expr->ToString() << ")";
      break;
    case Kind::kDelete:
      out << "delete(" << target << ", " << expr->ToString() << ")";
      break;
    case Kind::kUpdate: {
      out << "update(" << target << ", " << expr->ToString() << ", [";
      for (size_t i = 0; i < alpha.size(); ++i) {
        if (i > 0) out << ", ";
        out << alpha[i]->ToString();
      }
      out << "])";
      break;
    }
    case Kind::kAssign:
      out << target << " := " << expr->ToString();
      break;
    case Kind::kQuery:
      out << "? " << expr->ToString();
      break;
    case Kind::kConstraint:
      out << "constraint " << target << " (" << expr->ToString() << ")";
      break;
    case Kind::kDropConstraint:
      out << "drop constraint " << target;
      break;
    case Kind::kExplain:
      out << "explain " << (analyze ? "analyze " : "") << expr->ToString();
      break;
    case Kind::kAnalyze:
      out << "analyze " << target;
      break;
    case Kind::kSet:
      out << "set " << target << " = " << value;
      break;
  }
  return out.str();
}

}  // namespace lang
}  // namespace mra
