#include "mra/lang/parser.h"

#include "mra/lang/lexer.h"

namespace mra {
namespace lang {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Script> ParseScript() {
    Script script;
    while (!Check(TokenKind::kEnd)) {
      Script::Item item;
      if (Check(TokenKind::kKwBegin)) {
        Advance();
        item.is_transaction = true;
        while (!Check(TokenKind::kKwEnd)) {
          MRA_ASSIGN_OR_RETURN(Stmt stmt, ParseStmt());
          item.stmts.push_back(std::move(stmt));
          if (Check(TokenKind::kSemicolon)) {
            Advance();
          } else {
            break;
          }
        }
        MRA_RETURN_IF_ERROR(Expect(TokenKind::kKwEnd));
        if (Check(TokenKind::kSemicolon)) Advance();
        if (item.stmts.empty()) {
          return Error("empty transaction bracket");
        }
      } else {
        MRA_ASSIGN_OR_RETURN(Stmt stmt, ParseStmt());
        item.stmts.push_back(std::move(stmt));
        if (Check(TokenKind::kSemicolon)) Advance();
      }
      script.items.push_back(std::move(item));
    }
    return script;
  }

  Result<RelExprPtr> ParseSingleRelExpr() {
    MRA_ASSIGN_OR_RETURN(RelExprPtr e, ParseRelExpr());
    MRA_RETURN_IF_ERROR(Expect(TokenKind::kEnd));
    return e;
  }

  Result<ExprPtr> ParseSingleScalar() {
    MRA_ASSIGN_OR_RETURN(ExprPtr e, ParseScalar());
    MRA_RETURN_IF_ERROR(Expect(TokenKind::kEnd));
    return e;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " (found " + Peek().Describe() +
                              " at line " + std::to_string(Peek().line) + ")");
  }

  Status Expect(TokenKind kind) {
    if (!Check(kind)) {
      return Error("expected " + std::string(TokenKindName(kind)));
    }
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier() {
    if (!Check(TokenKind::kIdentifier)) return Error("expected an identifier");
    return Advance().text;
  }

  // --- Statements. ---

  Result<Stmt> ParseStmt() {
    Stmt stmt;
    stmt.line = Peek().line;
    switch (Peek().kind) {
      case TokenKind::kKwCreate: {
        Advance();
        stmt.kind = Stmt::Kind::kCreate;
        MRA_ASSIGN_OR_RETURN(stmt.target, ExpectIdentifier());
        MRA_ASSIGN_OR_RETURN(std::vector<Attribute> attrs, ParseAttrDecls());
        stmt.schema = RelationSchema(stmt.target, std::move(attrs));
        return stmt;
      }
      case TokenKind::kKwDrop: {
        Advance();
        if (Check(TokenKind::kKwConstraint)) {
          Advance();
          stmt.kind = Stmt::Kind::kDropConstraint;
        } else {
          stmt.kind = Stmt::Kind::kDrop;
        }
        MRA_ASSIGN_OR_RETURN(stmt.target, ExpectIdentifier());
        return stmt;
      }
      case TokenKind::kKwConstraint: {
        Advance();
        stmt.kind = Stmt::Kind::kConstraint;
        MRA_ASSIGN_OR_RETURN(stmt.target, ExpectIdentifier());
        MRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
        MRA_ASSIGN_OR_RETURN(stmt.expr, ParseRelExpr());
        MRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return stmt;
      }
      case TokenKind::kKwInsert:
      case TokenKind::kKwDelete: {
        stmt.kind = Peek().kind == TokenKind::kKwInsert ? Stmt::Kind::kInsert
                                                        : Stmt::Kind::kDelete;
        Advance();
        MRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
        MRA_ASSIGN_OR_RETURN(stmt.target, ExpectIdentifier());
        MRA_RETURN_IF_ERROR(Expect(TokenKind::kComma));
        MRA_ASSIGN_OR_RETURN(stmt.expr, ParseRelExpr());
        MRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return stmt;
      }
      case TokenKind::kKwUpdate: {
        Advance();
        stmt.kind = Stmt::Kind::kUpdate;
        MRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
        MRA_ASSIGN_OR_RETURN(stmt.target, ExpectIdentifier());
        MRA_RETURN_IF_ERROR(Expect(TokenKind::kComma));
        MRA_ASSIGN_OR_RETURN(stmt.expr, ParseRelExpr());
        MRA_RETURN_IF_ERROR(Expect(TokenKind::kComma));
        MRA_ASSIGN_OR_RETURN(stmt.alpha, ParseScalarList());
        MRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return stmt;
      }
      case TokenKind::kQuery: {
        Advance();
        stmt.kind = Stmt::Kind::kQuery;
        MRA_ASSIGN_OR_RETURN(stmt.expr, ParseRelExpr());
        return stmt;
      }
      case TokenKind::kKwAnalyze: {
        Advance();
        stmt.kind = Stmt::Kind::kAnalyze;
        MRA_ASSIGN_OR_RETURN(stmt.target, ExpectIdentifier());
        return stmt;
      }
      case TokenKind::kKwSet: {
        Advance();
        stmt.kind = Stmt::Kind::kSet;
        MRA_ASSIGN_OR_RETURN(stmt.target, ExpectIdentifier());
        MRA_RETURN_IF_ERROR(Expect(TokenKind::kEq));
        // The value travels verbatim; ExecConfig::Set parses it against
        // the knob's type (number or boolean).
        switch (Peek().kind) {
          case TokenKind::kIntLit:
          case TokenKind::kIdentifier:
          case TokenKind::kKwTrue:
          case TokenKind::kKwFalse:
            stmt.value = Advance().text;
            return stmt;
          default:
            return Error("expected a knob value");
        }
      }
      case TokenKind::kKwExplain: {
        Advance();
        stmt.kind = Stmt::Kind::kExplain;
        if (Check(TokenKind::kKwAnalyze)) {
          Advance();
          stmt.analyze = true;
        }
        MRA_ASSIGN_OR_RETURN(stmt.expr, ParseRelExpr());
        return stmt;
      }
      case TokenKind::kIdentifier: {
        stmt.kind = Stmt::Kind::kAssign;
        MRA_ASSIGN_OR_RETURN(stmt.target, ExpectIdentifier());
        MRA_RETURN_IF_ERROR(Expect(TokenKind::kAssign));
        MRA_ASSIGN_OR_RETURN(stmt.expr, ParseRelExpr());
        return stmt;
      }
      default:
        return Error("expected a statement");
    }
  }

  Result<std::vector<Attribute>> ParseAttrDecls() {
    MRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    std::vector<Attribute> attrs;
    while (true) {
      MRA_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
      MRA_RETURN_IF_ERROR(Expect(TokenKind::kColon));
      MRA_ASSIGN_OR_RETURN(std::string type_name, ExpectIdentifier());
      MRA_ASSIGN_OR_RETURN(Type type, Type::FromName(type_name));
      attrs.push_back({std::move(name), type});
      if (Check(TokenKind::kComma)) {
        Advance();
        continue;
      }
      break;
    }
    MRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return attrs;
  }

  // --- Relation expressions. ---

  Result<RelExprPtr> ParseRelExpr() {
    auto node = std::make_shared<RelExpr>();
    node->line = Peek().line;
    switch (Peek().kind) {
      case TokenKind::kIdentifier:
        node->kind = RelExpr::Kind::kName;
        node->name = Advance().text;
        return RelExprPtr(node);
      case TokenKind::kLBrace:
        return ParseRelationLiteral();
      case TokenKind::kKwEmpty: {
        Advance();
        MRA_ASSIGN_OR_RETURN(std::vector<Attribute> attrs, ParseAttrDecls());
        node->kind = RelExpr::Kind::kLiteral;
        node->literal = Relation(RelationSchema(std::move(attrs)));
        return RelExprPtr(node);
      }
      case TokenKind::kKwUnion:
      case TokenKind::kKwDiff:
      case TokenKind::kKwIntersect:
      case TokenKind::kKwProduct: {
        TokenKind op = Advance().kind;
        node->kind = op == TokenKind::kKwUnion      ? RelExpr::Kind::kUnion
                     : op == TokenKind::kKwDiff     ? RelExpr::Kind::kDiff
                     : op == TokenKind::kKwIntersect ? RelExpr::Kind::kIntersect
                                                     : RelExpr::Kind::kProduct;
        MRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
        MRA_ASSIGN_OR_RETURN(RelExprPtr l, ParseRelExpr());
        MRA_RETURN_IF_ERROR(Expect(TokenKind::kComma));
        MRA_ASSIGN_OR_RETURN(RelExprPtr r, ParseRelExpr());
        MRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        node->children = {std::move(l), std::move(r)};
        return RelExprPtr(node);
      }
      case TokenKind::kKwJoin: {
        Advance();
        node->kind = RelExpr::Kind::kJoin;
        MRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
        MRA_ASSIGN_OR_RETURN(node->condition, ParseScalar());
        MRA_RETURN_IF_ERROR(Expect(TokenKind::kComma));
        MRA_ASSIGN_OR_RETURN(RelExprPtr l, ParseRelExpr());
        MRA_RETURN_IF_ERROR(Expect(TokenKind::kComma));
        MRA_ASSIGN_OR_RETURN(RelExprPtr r, ParseRelExpr());
        MRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        node->children = {std::move(l), std::move(r)};
        return RelExprPtr(node);
      }
      case TokenKind::kKwSelect: {
        Advance();
        node->kind = RelExpr::Kind::kSelect;
        MRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
        MRA_ASSIGN_OR_RETURN(node->condition, ParseScalar());
        MRA_RETURN_IF_ERROR(Expect(TokenKind::kComma));
        MRA_ASSIGN_OR_RETURN(RelExprPtr input, ParseRelExpr());
        MRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        node->children = {std::move(input)};
        return RelExprPtr(node);
      }
      case TokenKind::kKwProject: {
        Advance();
        node->kind = RelExpr::Kind::kProject;
        MRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
        MRA_ASSIGN_OR_RETURN(node->projections, ParseScalarList());
        MRA_RETURN_IF_ERROR(Expect(TokenKind::kComma));
        MRA_ASSIGN_OR_RETURN(RelExprPtr input, ParseRelExpr());
        MRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        node->children = {std::move(input)};
        return RelExprPtr(node);
      }
      case TokenKind::kKwClosure:
      case TokenKind::kKwUnique: {
        node->kind = Peek().kind == TokenKind::kKwClosure
                         ? RelExpr::Kind::kClosure
                         : RelExpr::Kind::kUnique;
        Advance();
        MRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
        MRA_ASSIGN_OR_RETURN(RelExprPtr input, ParseRelExpr());
        MRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        node->children = {std::move(input)};
        return RelExprPtr(node);
      }
      case TokenKind::kKwGroupby:
        return ParseGroupBy();
      case TokenKind::kKwSort:
        return ParseSort();
      default:
        return Error("expected a relation expression");
    }
  }

  Result<RelExprPtr> ParseGroupBy() {
    auto node = std::make_shared<RelExpr>();
    node->line = Peek().line;
    node->kind = RelExpr::Kind::kGroupBy;
    Advance();  // 'groupby'
    MRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    MRA_RETURN_IF_ERROR(Expect(TokenKind::kLBracket));
    if (!Check(TokenKind::kRBracket)) {
      while (true) {
        if (!Check(TokenKind::kAttrRef)) {
          return Error("grouping list expects attribute references (%i)");
        }
        node->keys.push_back(Advance().attr_index);
        if (Check(TokenKind::kComma)) {
          Advance();
          continue;
        }
        break;
      }
    }
    MRA_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
    MRA_RETURN_IF_ERROR(Expect(TokenKind::kComma));
    // One or more aggregate calls, then the input expression.
    while (true) {
      AggKind agg_kind;
      switch (Peek().kind) {
        case TokenKind::kKwCnt:
          agg_kind = AggKind::kCnt;
          break;
        case TokenKind::kKwSum:
          agg_kind = AggKind::kSum;
          break;
        case TokenKind::kKwAvg:
          agg_kind = AggKind::kAvg;
          break;
        case TokenKind::kKwMin:
          agg_kind = AggKind::kMin;
          break;
        case TokenKind::kKwMax:
          agg_kind = AggKind::kMax;
          break;
        default:
          if (node->aggs.empty()) {
            return Error("groupby expects at least one aggregate call");
          }
          goto aggregates_done;
      }
      Advance();
      MRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      if (!Check(TokenKind::kAttrRef)) {
        return Error("aggregate call expects an attribute reference (%i)");
      }
      node->aggs.push_back(AggSpec{agg_kind, Advance().attr_index, {}});
      MRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      MRA_RETURN_IF_ERROR(Expect(TokenKind::kComma));
    }
  aggregates_done:
    MRA_ASSIGN_OR_RETURN(RelExprPtr input, ParseRelExpr());
    MRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    node->children = {std::move(input)};
    return RelExprPtr(node);
  }

  /// sort([%1, -%2], E)  |  sort([%1], E, 10)
  /// A '-' prefix on a key sorts that key descending; the optional trailing
  /// integer is the multiplicity-weighted LIMIT.
  Result<RelExprPtr> ParseSort() {
    auto node = std::make_shared<RelExpr>();
    node->line = Peek().line;
    node->kind = RelExpr::Kind::kSort;
    Advance();  // 'sort'
    MRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    MRA_RETURN_IF_ERROR(Expect(TokenKind::kLBracket));
    if (!Check(TokenKind::kRBracket)) {
      while (true) {
        bool desc = false;
        if (Check(TokenKind::kMinus)) {
          Advance();
          desc = true;
        }
        if (!Check(TokenKind::kAttrRef)) {
          return Error("sort key list expects attribute references (%i)");
        }
        node->keys.push_back(Advance().attr_index);
        node->sort_desc.push_back(desc);
        if (Check(TokenKind::kComma)) {
          Advance();
          continue;
        }
        break;
      }
    }
    MRA_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
    MRA_RETURN_IF_ERROR(Expect(TokenKind::kComma));
    MRA_ASSIGN_OR_RETURN(RelExprPtr input, ParseRelExpr());
    if (Check(TokenKind::kComma)) {
      Advance();
      if (!Check(TokenKind::kIntLit)) {
        return Error("sort limit expects an integer");
      }
      node->limit = std::stoull(Advance().text);
      if (node->limit == 0) {
        return Error("sort limit must be >= 1 (omit it for no limit)");
      }
    }
    MRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    if (node->keys.empty() && node->limit == 0) {
      return Error("sort with no keys needs a limit");
    }
    node->children = {std::move(input)};
    return RelExprPtr(node);
  }

  Result<RelExprPtr> ParseRelationLiteral() {
    auto node = std::make_shared<RelExpr>();
    node->line = Peek().line;
    node->kind = RelExpr::Kind::kLiteral;
    MRA_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    if (Check(TokenKind::kRBrace)) {
      return Error(
          "empty relation literal needs a schema: use empty(attr: type, …)");
    }
    std::vector<std::pair<Tuple, uint64_t>> entries;
    while (true) {
      MRA_ASSIGN_OR_RETURN(Tuple t, ParseTupleLiteral());
      uint64_t count = 1;
      if (Check(TokenKind::kColon)) {
        Advance();
        if (!Check(TokenKind::kIntLit)) {
          return Error("tuple multiplicity expects an integer");
        }
        count = std::stoull(Advance().text);
      }
      entries.emplace_back(std::move(t), count);
      if (Check(TokenKind::kComma)) {
        Advance();
        continue;
      }
      break;
    }
    MRA_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    // Infer the schema from the first tuple; attribute names are positional.
    const Tuple& first = entries.front().first;
    std::vector<Attribute> attrs;
    attrs.reserve(first.arity());
    for (size_t i = 0; i < first.arity(); ++i) {
      attrs.push_back({"a" + std::to_string(i + 1), first.at(i).type()});
    }
    Relation rel((RelationSchema(std::move(attrs))));
    for (auto& [tuple, count] : entries) {
      Status s = rel.Insert(tuple, count);
      if (!s.ok()) {
        return Status::ParseError("relation literal at line " +
                                  std::to_string(node->line) +
                                  " is not uniform: " + s.message());
      }
    }
    node->literal = std::move(rel);
    return RelExprPtr(node);
  }

  Result<Tuple> ParseTupleLiteral() {
    MRA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    std::vector<Value> values;
    while (true) {
      MRA_ASSIGN_OR_RETURN(Value v, ParseValueLiteral());
      values.push_back(std::move(v));
      if (Check(TokenKind::kComma)) {
        Advance();
        continue;
      }
      break;
    }
    MRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return Tuple(std::move(values));
  }

  Result<Value> ParseValueLiteral() {
    bool negate = false;
    if (Check(TokenKind::kMinus)) {
      Advance();
      negate = true;
    }
    switch (Peek().kind) {
      case TokenKind::kIntLit: {
        int64_t v = std::stoll(Advance().text);
        return Value::Int(negate ? -v : v);
      }
      case TokenKind::kRealLit: {
        double v = std::stod(Advance().text);
        return Value::Real(negate ? -v : v);
      }
      case TokenKind::kStringLit:
        if (negate) return Error("cannot negate a string literal");
        return Value::Str(Advance().text);
      case TokenKind::kDateLit:
        if (negate) return Error("cannot negate a date literal");
        return Value::DateFromString(Advance().text);
      case TokenKind::kDecimalLit: {
        MRA_ASSIGN_OR_RETURN(Value v, Value::DecimalFromString(Advance().text));
        return negate ? Value::DecimalScaled(-v.decimal_scaled()) : v;
      }
      case TokenKind::kKwTrue:
        if (negate) return Error("cannot negate a boolean literal");
        Advance();
        return Value::Bool(true);
      case TokenKind::kKwFalse:
        if (negate) return Error("cannot negate a boolean literal");
        Advance();
        return Value::Bool(false);
      default:
        return Error("expected a value literal");
    }
  }

  // --- Scalar expressions. ---

  Result<std::vector<ExprPtr>> ParseScalarList() {
    MRA_RETURN_IF_ERROR(Expect(TokenKind::kLBracket));
    std::vector<ExprPtr> exprs;
    while (true) {
      MRA_ASSIGN_OR_RETURN(ExprPtr e, ParseScalar());
      exprs.push_back(std::move(e));
      if (Check(TokenKind::kComma)) {
        Advance();
        continue;
      }
      break;
    }
    MRA_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
    return exprs;
  }

  Result<ExprPtr> ParseScalar() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    MRA_ASSIGN_OR_RETURN(ExprPtr e, ParseAnd());
    while (Check(TokenKind::kKwOr)) {
      Advance();
      MRA_ASSIGN_OR_RETURN(ExprPtr r, ParseAnd());
      e = Or(std::move(e), std::move(r));
    }
    return e;
  }

  Result<ExprPtr> ParseAnd() {
    MRA_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
    while (Check(TokenKind::kKwAnd)) {
      Advance();
      MRA_ASSIGN_OR_RETURN(ExprPtr r, ParseNot());
      e = And(std::move(e), std::move(r));
    }
    return e;
  }

  Result<ExprPtr> ParseNot() {
    if (Check(TokenKind::kKwNot)) {
      Advance();
      MRA_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
      return Not(std::move(e));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    MRA_ASSIGN_OR_RETURN(ExprPtr e, ParseAdditive());
    BinaryOp op;
    switch (Peek().kind) {
      case TokenKind::kEq:
        op = BinaryOp::kEq;
        break;
      case TokenKind::kNe:
        op = BinaryOp::kNe;
        break;
      case TokenKind::kLt:
        op = BinaryOp::kLt;
        break;
      case TokenKind::kLe:
        op = BinaryOp::kLe;
        break;
      case TokenKind::kGt:
        op = BinaryOp::kGt;
        break;
      case TokenKind::kGe:
        op = BinaryOp::kGe;
        break;
      default:
        return e;
    }
    Advance();
    MRA_ASSIGN_OR_RETURN(ExprPtr r, ParseAdditive());
    return ExprPtr(std::make_shared<BinaryExpr>(op, std::move(e), std::move(r)));
  }

  Result<ExprPtr> ParseAdditive() {
    MRA_ASSIGN_OR_RETURN(ExprPtr e, ParseMultiplicative());
    while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
      BinaryOp op = Advance().kind == TokenKind::kPlus ? BinaryOp::kAdd
                                                       : BinaryOp::kSub;
      MRA_ASSIGN_OR_RETURN(ExprPtr r, ParseMultiplicative());
      e = std::make_shared<BinaryExpr>(op, std::move(e), std::move(r));
    }
    return e;
  }

  Result<ExprPtr> ParseMultiplicative() {
    MRA_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
    while (Check(TokenKind::kStar) || Check(TokenKind::kSlash) ||
           Check(TokenKind::kPercent)) {
      TokenKind t = Advance().kind;
      BinaryOp op = t == TokenKind::kStar    ? BinaryOp::kMul
                    : t == TokenKind::kSlash ? BinaryOp::kDiv
                                             : BinaryOp::kMod;
      MRA_ASSIGN_OR_RETURN(ExprPtr r, ParseUnary());
      e = std::make_shared<BinaryExpr>(op, std::move(e), std::move(r));
    }
    return e;
  }

  Result<ExprPtr> ParseUnary() {
    if (Check(TokenKind::kMinus)) {
      Advance();
      MRA_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      return Neg(std::move(e));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    switch (Peek().kind) {
      case TokenKind::kAttrRef:
        return Attr(Advance().attr_index);
      case TokenKind::kIntLit:
        return Lit(Value::Int(std::stoll(Advance().text)));
      case TokenKind::kRealLit:
        return Lit(Value::Real(std::stod(Advance().text)));
      case TokenKind::kStringLit:
        return Lit(Value::Str(Advance().text));
      case TokenKind::kDateLit: {
        MRA_ASSIGN_OR_RETURN(Value v, Value::DateFromString(Advance().text));
        return Lit(std::move(v));
      }
      case TokenKind::kDecimalLit: {
        MRA_ASSIGN_OR_RETURN(Value v, Value::DecimalFromString(Advance().text));
        return Lit(std::move(v));
      }
      case TokenKind::kKwTrue:
        Advance();
        return Lit(Value::Bool(true));
      case TokenKind::kKwFalse:
        Advance();
        return Lit(Value::Bool(false));
      case TokenKind::kLParen: {
        Advance();
        MRA_ASSIGN_OR_RETURN(ExprPtr e, ParseScalar());
        MRA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return e;
      }
      default:
        return Error("expected a scalar expression");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Script> ParseScript(std::string_view source) {
  MRA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens)).ParseScript();
}

Result<RelExprPtr> ParseRelExpr(std::string_view source) {
  MRA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens)).ParseSingleRelExpr();
}

Result<ExprPtr> ParseScalarExpr(std::string_view source) {
  MRA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens)).ParseSingleScalar();
}

}  // namespace lang
}  // namespace mra
