// Executes XRA scripts against a Database: the complete sequential data
// manipulation language of §4 (statements → programs → transactions).
//
// Execution model:
//  * `begin s1; …; sn end` runs as one transaction bracket: any statement
//    failure aborts the whole bracket (atomicity, Definition 4.3) and
//    aborts script execution with the error;
//  * a bare top-level statement runs as a single-statement transaction;
//  * `create`/`drop` are top-level only (DDL extension, see DESIGN.md);
//  * `? E` results are delivered through the query callback.

#ifndef MRA_LANG_INTERPRETER_H_
#define MRA_LANG_INTERPRETER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>

#include "mra/common/config.h"
#include "mra/exec/exec_context.h"
#include "mra/lang/ast.h"
#include "mra/obs/op_metrics.h"
#include "mra/opt/optimizer.h"
#include "mra/txn/database.h"
#include "mra/txn/transaction.h"

namespace mra {
namespace lang {

/// Deprecated alias: the interpreter's knobs are the unified ExecConfig
/// (mra/common/config.h) — one layered struct shared with the planner,
/// session, server and examples.  Old field names map as:
///   optimize             → config.planner.optimize
///   use_physical_exec    → config.exec.use_physical_exec
///   batch_size           → config.exec.batch_size
///   hash_ops             → config.exec.hash_ops
///   block_on_txn_slot    → config.session.block_on_txn_slot
///   statement_timeout_ms → config.governance.statement_timeout_ms
///   query_mem_budget_*   → config.governance.query_mem_budget_bytes
///   cancel_token         → config.governance.cancel_token
using InterpreterOptions = ExecConfig;

/// Execution statistics of the most recent physically-executed query,
/// harvested from the operator tree after it drains.  Programmatic
/// counterpart of EXPLAIN ANALYZE's rendering.
struct QueryStats {
  struct OpStats {
    std::string name;            // operator name, e.g. "HashJoin"
    uint32_t depth = 0;          // depth in the plan tree (root = 0)
    double estimated_rows = -1;  // planner estimate; < 0 when not annotated
    obs::OperatorMetrics metrics;
  };

  /// Operators in preorder (parent before children, matching the
  /// EXPLAIN rendering top to bottom).
  std::vector<OpStats> operators;
  /// Query id the stats belong to (obs::CurrentQueryId() at evaluation;
  /// 0 when the caller established none).
  uint64_t query_id = 0;
  /// Multiplicity-weighted cardinality of the result.
  uint64_t result_rows = 0;
  /// Wall time per phase (total = bind + optimize + lower + execute).
  uint64_t total_us = 0;
  uint64_t bind_us = 0;
  uint64_t optimize_us = 0;
  uint64_t lower_us = 0;
  uint64_t exec_us = 0;
  /// False until a physically-executed query completes.
  bool valid = false;
};

/// Not itself thread-safe: use one Interpreter per thread/session.  Many
/// interpreters may share one Database — Query/Explain evaluate under the
/// database's shared read lock, transaction brackets serialize on its
/// transaction slot (see the thread-model note in txn/database.h).
class Interpreter {
 public:
  using Options = ExecConfig;

  /// Receives each `? E` result, with the statement's source text form.
  using QueryCallback =
      std::function<void(const std::string& query, const Relation& result)>;

  explicit Interpreter(Database* db, Options options = {})
      : db_(db), options_(options) {
    MRA_CHECK(db != nullptr);
  }

  /// Parses and executes a whole script.  Statements after a failing
  /// transaction do not run; the failing bracket leaves D_t unchanged.
  Status ExecuteScript(std::string_view source, const QueryCallback& on_query);

  /// Convenience: execute a script, collecting the query results.
  Result<std::vector<Relation>> ExecuteScriptCollect(std::string_view source);

  /// Evaluates one relation expression against the committed state,
  /// outside any transaction (a read-only query).
  Result<Relation> Query(std::string_view rel_expr_source);

  /// Renders the bound logical plan, the optimized plan and the lowered
  /// physical plan of a relation expression (EXPLAIN).
  Result<std::string> Explain(std::string_view rel_expr_source);

  /// EXPLAIN ANALYZE: executes the expression with per-call timing enabled
  /// and renders the plans with the physical tree annotated per operator —
  /// estimated vs. actual cardinality, estimation error, wall time and
  /// hash-table peaks.  Also fills last_query_stats().
  Result<std::string> ExplainAnalyze(std::string_view rel_expr_source);

  /// Shared EXPLAIN body over an already-parsed expression and an
  /// arbitrary view (the SQL front end explains against its transaction).
  Result<std::string> ExplainExpr(const RelExpr& expr,
                                  const RelationProvider& provider,
                                  bool analyze);

  /// Stats of the most recent query run through the physical executor
  /// (`valid` is false before the first one).
  const QueryStats& last_query_stats() const { return last_query_stats_; }

  /// The session's live configuration.  SetOption backs the `SET
  /// <knob> = <value>;` statement (XRA and SQL) and the REPL's `\set`:
  /// changes take effect for the next statement.
  const ExecConfig& options() const { return options_; }
  Status SetOption(std::string_view knob, std::string_view value) {
    return options_.Set(knob, value);
  }

  /// Executes one already-parsed DML/query statement inside an open
  /// transaction (used by the SQL front end, which manages its own
  /// bracketing).  DDL statements are rejected here.
  Status ExecuteStmt(const Stmt& stmt, Transaction& txn,
                     const QueryCallback& on_query);

  /// Binds, optimizes and evaluates a relation expression against an
  /// arbitrary view (committed state or transaction overlay).
  Result<Relation> EvaluateExpr(const RelExpr& expr,
                                const RelationProvider& provider);

  /// Requests cooperative cancellation of the running query.  Safe to call
  /// from any thread (this is the one cross-thread entry point of the
  /// otherwise single-threaded Interpreter): if `query_id` names the query
  /// currently executing — or is 0, meaning "whatever is running" — its
  /// governance context is tripped and the plan unwinds with kCancelled at
  /// its next batch boundary.  A non-zero id that is not running yet is
  /// remembered and applied when that query starts (cancel-before-open);
  /// the pending id is dropped as stale when a different query starts.
  void CancelQuery(uint64_t query_id);

 private:
  Status ExecuteItem(const Script::Item& item, const QueryCallback& on_query);

  /// Builds, registers (for CancelQuery) and returns the governance
  /// context for one evaluation; EndGoverned() deregisters it.
  std::shared_ptr<exec::ExecContext> BeginGoverned();
  void EndGoverned();

  Database* db_;
  Options options_;
  QueryStats last_query_stats_;
  /// Source text of the query being evaluated, for the slow-query log
  /// (set by Query/ExecuteScript; the interpreter is single-threaded).
  std::string current_source_;
  /// Guards the two members below against CancelQuery from other threads.
  std::mutex govern_mutex_;
  std::shared_ptr<exec::ExecContext> current_ctx_;
  uint64_t pending_cancel_id_ = 0;
};

}  // namespace lang
}  // namespace mra

#endif  // MRA_LANG_INTERPRETER_H_
