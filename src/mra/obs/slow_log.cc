#include "mra/obs/slow_log.h"

#include <chrono>

#include "mra/obs/metrics.h"

namespace mra {
namespace obs {

namespace {

void AppendClipped(std::string& out, const std::string& s) {
  if (s.size() <= SlowQueryLog::kMaxFieldBytes) {
    AppendJsonString(out, s);
    return;
  }
  std::string clipped = s.substr(0, SlowQueryLog::kMaxFieldBytes);
  clipped += "…(truncated)";
  AppendJsonString(out, clipped);
}

}  // namespace

std::string SlowQueryEntry::ToJsonLine() const {
  std::string out;
  out.reserve(256 + source.size() + plan.size());
  out += "{\"query_id\":";
  out += std::to_string(query_id);
  out += ",\"wall_ms\":";
  out += std::to_string(wall_ms);
  out += ",\"latency_us\":";
  out += std::to_string(latency_us);
  out += ",\"bind_us\":";
  out += std::to_string(bind_us);
  out += ",\"optimize_us\":";
  out += std::to_string(optimize_us);
  out += ",\"lower_us\":";
  out += std::to_string(lower_us);
  out += ",\"exec_us\":";
  out += std::to_string(exec_us);
  out += ",\"result_rows\":";
  out += std::to_string(result_rows);
  out += ",\"source\":";
  AppendClipped(out, source);
  out += ",\"plan\":";
  AppendClipped(out, plan);
  out += ",\"events\":[";
  bool first = true;
  for (const std::string& e : events) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(out, e);
  }
  out += "]}";
  return out;
}

SlowQueryLog& SlowQueryLog::Global() {
  static SlowQueryLog* log = new SlowQueryLog();
  return *log;
}

void SlowQueryLog::Record(SlowQueryEntry entry) {
  if (entry.wall_ms == 0) {
    entry.wall_ms = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
  }
  std::string line = entry.ToJsonLine();
  total_logged_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < kCapacity) {
    ring_.push_back(std::move(line));
    return;
  }
  ring_[next_] = std::move(line);
  next_ = (next_ + 1) % kCapacity;
}

std::vector<std::string> SlowQueryLog::Lines() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> lines;
  lines.reserve(ring_.size());
  // Once the ring wrapped, next_ points at the oldest entry.
  for (size_t i = 0; i < ring_.size(); ++i) {
    size_t idx = ring_.size() < kCapacity ? i : (next_ + i) % kCapacity;
    lines.push_back(ring_[idx]);
  }
  return lines;
}

std::string SlowQueryLog::RenderJsonLines() const {
  std::string out;
  for (const std::string& line : Lines()) {
    out += line;
    out += '\n';
  }
  return out;
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
}

}  // namespace obs
}  // namespace mra
