// Structured slow-query log: queries whose end-to-end latency crosses a
// configurable threshold are captured as JSON-lines entries — query text,
// an EXPLAIN ANALYZE plan snapshot, the per-phase latency breakdown, and
// any shed/retry events observed — into a fixed-size ring buffer that
// `\slowlog` (REPL) and the ServerStats wire request expose live.
//
// The threshold is in milliseconds (`--slow-query-ms` on mra_serverd and
// xra_repl); negative disables the log entirely, 0 logs every query.
// The schema is documented in docs/OBSERVABILITY.md.

#ifndef MRA_OBS_SLOW_LOG_H_
#define MRA_OBS_SLOW_LOG_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mra {
namespace obs {

/// One logged slow query.  All latencies are microseconds.
struct SlowQueryEntry {
  uint64_t query_id = 0;
  uint64_t wall_ms = 0;       // Unix epoch milliseconds at completion.
  uint64_t latency_us = 0;    // End-to-end (what the threshold gates).
  uint64_t bind_us = 0;
  uint64_t optimize_us = 0;
  uint64_t lower_us = 0;
  uint64_t exec_us = 0;
  uint64_t result_rows = 0;
  std::string source;         // Query text (truncated to kMaxFieldBytes).
  std::string plan;           // EXPLAIN ANALYZE snapshot, same truncation.
  std::vector<std::string> events;  // e.g. "shed", "retry", "rollback".

  /// Renders the entry as one JSON object (no trailing newline).
  std::string ToJsonLine() const;
};

class SlowQueryLog {
 public:
  static constexpr size_t kCapacity = 256;
  /// Source and plan snapshots are clipped to keep entries bounded.
  static constexpr size_t kMaxFieldBytes = 4096;

  static SlowQueryLog& Global();

  SlowQueryLog() = default;
  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Threshold in ms; < 0 disables the log (the default), 0 logs all.
  void SetThresholdMs(int64_t ms) {
    threshold_ms_.store(ms, std::memory_order_relaxed);
  }
  int64_t threshold_ms() const {
    return threshold_ms_.load(std::memory_order_relaxed);
  }
  bool enabled() const { return threshold_ms() >= 0; }

  /// Whether a query with this latency should be recorded — the hot-path
  /// check is one relaxed load plus a compare.
  bool ShouldLog(uint64_t latency_us) const {
    int64_t ms = threshold_ms();
    return ms >= 0 && latency_us >= static_cast<uint64_t>(ms) * 1000;
  }

  /// Appends an entry (clipping source/plan), overwriting the oldest
  /// once kCapacity is reached.
  void Record(SlowQueryEntry entry);

  /// Entries in arrival order, oldest first, rendered as JSON lines.
  std::vector<std::string> Lines() const;

  /// Lines() joined with newlines (one JSON object per line).
  std::string RenderJsonLines() const;

  /// Total entries ever recorded (including overwritten ones).
  uint64_t total_logged() const {
    return total_logged_.load(std::memory_order_relaxed);
  }

  void Clear();

 private:
  std::atomic<int64_t> threshold_ms_{-1};
  std::atomic<uint64_t> total_logged_{0};
  mutable std::mutex mutex_;
  std::vector<std::string> ring_;  // Pre-rendered JSON lines.
  size_t next_ = 0;                // Ring insertion cursor once full.
};

}  // namespace obs
}  // namespace mra

#endif  // MRA_OBS_SLOW_LOG_H_
