#include "mra/obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace mra {
namespace obs {

namespace {

thread_local uint32_t tls_span_depth = 0;

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
  ring_.reserve(kCapacity);
}

uint64_t Tracer::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < kCapacity) {
    ring_.push_back(std::move(event));
    return;
  }
  ring_[next_] = std::move(event);
  next_ = (next_ + 1) % kCapacity;
  ++dropped_;
}

std::vector<TraceEvent> Tracer::Events() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events = ring_;
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.depth < b.depth;
            });
  return events;
}

std::string Tracer::Render() const {
  std::vector<TraceEvent> events = Events();
  std::ostringstream out;
  if (events.empty()) {
    out << "(no spans recorded; enable tracing first)\n";
    return out.str();
  }
  for (const TraceEvent& e : events) {
    char line[64];
    std::snprintf(line, sizeof(line), "[+%10.3fms] ",
                  static_cast<double>(e.start_us) / 1000.0);
    out << line;
    for (uint32_t i = 0; i < e.depth; ++i) out << "  ";
    std::snprintf(line, sizeof(line), " %.3fms",
                  static_cast<double>(e.duration_us) / 1000.0);
    out << e.name << line << "\n";
  }
  if (dropped() > 0) {
    out << "(" << dropped() << " older spans dropped)\n";
  }
  return out.str();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  dropped_ = 0;
}

ScopedSpan::ScopedSpan(std::string_view name)
    : active_(Tracer::Global().enabled()) {
  if (!active_) return;
  name_ = std::string(name);
  depth_ = tls_span_depth++;
  start_us_ = Tracer::Global().NowMicros();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  --tls_span_depth;
  Tracer& tracer = Tracer::Global();
  uint64_t end_us = tracer.NowMicros();
  tracer.Record(TraceEvent{std::move(name_), depth_, start_us_,
                           end_us - start_us_});
}

}  // namespace obs
}  // namespace mra
