#include "mra/obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <random>
#include <sstream>

namespace mra {
namespace obs {

namespace {

thread_local uint32_t tls_span_depth = 0;
thread_local uint64_t tls_query_id = 0;

}  // namespace

uint64_t NextQueryId() {
  // The random starting offset keeps ids from two processes (or two runs)
  // from colliding in aggregated logs; the low bits stay sequential so
  // ordering by id still follows issue order within a process.
  static std::atomic<uint64_t> next{
      (static_cast<uint64_t>(std::random_device{}()) << 20) | 1};
  uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id == 0 ? NextQueryId() : id;
}

uint64_t CurrentQueryId() { return tls_query_id; }

ScopedQueryId::ScopedQueryId(uint64_t query_id) : previous_(tls_query_id) {
  tls_query_id = query_id;
}

ScopedQueryId::~ScopedQueryId() { tls_query_id = previous_; }

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
  ring_.reserve(kCapacity);
}

uint64_t Tracer::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < kCapacity) {
    ring_.push_back(std::move(event));
    return;
  }
  ring_[next_] = std::move(event);
  next_ = (next_ + 1) % kCapacity;
  ++dropped_;
}

std::vector<TraceEvent> Tracer::Events(uint64_t query_id) const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events = ring_;
  }
  if (query_id != 0) {
    events.erase(std::remove_if(events.begin(), events.end(),
                                [query_id](const TraceEvent& e) {
                                  return e.query_id != query_id;
                                }),
                 events.end());
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.depth < b.depth;
            });
  return events;
}

std::string Tracer::Render(uint64_t query_id) const {
  std::vector<TraceEvent> events = Events(query_id);
  std::ostringstream out;
  if (events.empty()) {
    out << "(no spans recorded; enable tracing first)\n";
    return out.str();
  }
  uint64_t last_query_id = 0;
  for (const TraceEvent& e : events) {
    // When rendering a mixed trace, headline each query's span group.
    if (query_id == 0 && e.query_id != 0 && e.query_id != last_query_id) {
      out << "query " << e.query_id << ":\n";
    }
    last_query_id = e.query_id;
    char line[64];
    std::snprintf(line, sizeof(line), "[+%10.3fms] ",
                  static_cast<double>(e.start_us) / 1000.0);
    out << line;
    for (uint32_t i = 0; i < e.depth; ++i) out << "  ";
    std::snprintf(line, sizeof(line), " %.3fms",
                  static_cast<double>(e.duration_us) / 1000.0);
    out << e.name << line << "\n";
  }
  if (dropped() > 0) {
    out << "(" << dropped() << " older spans dropped)\n";
  }
  return out.str();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  dropped_ = 0;
}

ScopedSpan::ScopedSpan(std::string_view name)
    : active_(Tracer::Global().enabled()) {
  if (!active_) return;
  name_ = std::string(name);
  depth_ = tls_span_depth++;
  query_id_ = tls_query_id;
  start_us_ = Tracer::Global().NowMicros();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  --tls_span_depth;
  Tracer& tracer = Tracer::Global();
  uint64_t end_us = tracer.NowMicros();
  tracer.Record(TraceEvent{std::move(name_), depth_, start_us_,
                           end_us - start_us_, query_id_});
}

}  // namespace obs
}  // namespace mra
