// Per-operator execution metrics, filled in by the PhysicalOperator
// Open/Next/Close wrappers (mra/exec/operator.h).
//
// Row counts are always collected (plain single-threaded increments on the
// operator's own state — a volcano tree never shares an operator across
// threads).  Wall-clock timing costs two steady_clock reads per call, so
// it is gated behind the process-wide toggle below, which EXPLAIN ANALYZE
// and the REPL flip around an execution.  Both the multiplicity-weighted
// and the emitted-row cardinality are reported: their ratio is exactly the
// duplication factor the paper's multi-set semantics exploits.

#ifndef MRA_OBS_OP_METRICS_H_
#define MRA_OBS_OP_METRICS_H_

#include <atomic>
#include <cstdint>

namespace mra {
namespace obs {

struct OperatorMetrics {
  /// Rows emitted by Next() / NextBatch() (bag-stream rows, not tuples).
  uint64_t rows_emitted = 0;
  /// Non-empty batches emitted by NextBatch(); 0 under pure tuple-at-a-time
  /// execution.  rows_emitted / batches_emitted is the realized batch fill.
  uint64_t batches_emitted = 0;
  /// Multiplicity-weighted tuple count: the sum of the emitted counts —
  /// the cardinality of the multi-set the stream denotes.
  uint64_t weighted_rows = 0;
  /// Distinct tuples, for operators that materialise (difference,
  /// intersection, group-by, dedup); 0 for pure streaming operators.
  uint64_t distinct_rows = 0;
  /// Peak entries held in the operator's hash table (join build side,
  /// dedup's seen-set, group-by's group table); 0 when hash-free.
  uint64_t peak_hash_entries = 0;
  /// Rows consumed into a hash build: the join's build side, group-by's
  /// whole input, dedup's insertion stream.  0 for hash-free operators.
  uint64_t build_rows = 0;
  /// Probe-side rows hashed against a build table (hash join only).
  uint64_t probe_rows = 0;
  /// Peak approximate heap bytes held by the operator's hash arena
  /// (HashKeyIndex::ApproxBytes plus payload vectors).
  uint64_t hash_bytes = 0;
  /// Worker lanes a parallel operator ran with (workers=N in EXPLAIN
  /// ANALYZE); 0 for serial operators.
  uint32_t workers = 0;
  /// Summed per-lane CPU-side wall time inside parallel phases.  For a
  /// parallel operator this exceeds the elapsed open_ns/next_ns (the
  /// lanes overlap); their ratio is the realized parallel speedup.
  uint64_t cpu_ns = 0;

  // Wall time, only nonzero while exec timing is enabled.
  uint64_t open_ns = 0;
  uint64_t next_ns = 0;
  uint64_t close_ns = 0;
  /// True when exec timing was enabled for this operator's run — lets the
  /// analyzed rendering distinguish "measured 0ns" from "not measured".
  bool timed = false;

  uint64_t total_ns() const { return open_ns + next_ns + close_ns; }

  void ResetRuntime() { *this = OperatorMetrics{}; }
};

namespace internal {
inline std::atomic<bool>& ExecTimingFlag() {
  static std::atomic<bool> flag{false};
  return flag;
}
}  // namespace internal

/// Whether operators should measure wall time per Open/Next/Close call.
inline bool ExecTimingEnabled() {
  return internal::ExecTimingFlag().load(std::memory_order_relaxed);
}

inline void SetExecTiming(bool enabled) {
  internal::ExecTimingFlag().store(enabled, std::memory_order_relaxed);
}

/// RAII: enables exec timing for a scope, restoring the previous setting.
class ScopedExecTiming {
 public:
  explicit ScopedExecTiming(bool enabled) : previous_(ExecTimingEnabled()) {
    SetExecTiming(enabled);
  }
  ~ScopedExecTiming() { SetExecTiming(previous_); }

  ScopedExecTiming(const ScopedExecTiming&) = delete;
  ScopedExecTiming& operator=(const ScopedExecTiming&) = delete;

 private:
  bool previous_;
};

}  // namespace obs
}  // namespace mra

#endif  // MRA_OBS_OP_METRICS_H_
