#include "mra/obs/metrics.h"

#include <sstream>

namespace mra {
namespace obs {

uint64_t Histogram::BucketUpperBound(size_t i) {
  if (i + 1 >= kNumBuckets) return UINT64_MAX;
  return uint64_t{1} << i;
}

size_t Histogram::BucketFor(uint64_t micros) {
  size_t i = 0;
  while (i + 1 < kNumBuckets && micros > BucketUpperBound(i)) ++i;
  return i;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_micros_.store(0, std::memory_order_relaxed);
}

std::string MetricsSnapshot::RenderText() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters) {
    out << name << " " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    out << name << " " << value << "\n";
  }
  for (const auto& [name, h] : histograms) {
    out << name << " count=" << h.count << " sum_us=" << h.sum_micros;
    if (h.count > 0) {
      out << " mean_us=" << (h.sum_micros / h.count) << " buckets=[";
      bool first = true;
      for (size_t i = 0; i < h.buckets.size(); ++i) {
        if (h.buckets[i] == 0) continue;
        if (!first) out << " ";
        first = false;
        if (Histogram::BucketUpperBound(i) == UINT64_MAX) {
          out << "inf:" << h.buckets[i];
        } else {
          out << "le" << Histogram::BucketUpperBound(i) << "us:"
              << h.buckets[i];
        }
      }
      out << "]";
    }
    out << "\n";
  }
  return out.str();
}

namespace {

void AppendJsonString(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

std::string MetricsSnapshot::RenderJson() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out << ",";
    first = false;
    AppendJsonString(out, name);
    out << ":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out << ",";
    first = false;
    AppendJsonString(out, name);
    out << ":" << value;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out << ",";
    first = false;
    AppendJsonString(out, name);
    out << ":{\"count\":" << h.count << ",\"sum_us\":" << h.sum_micros
        << ",\"buckets\":[";
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out << ",";
      out << h.buckets[i];
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.count = h->count();
    data.sum_micros = h->sum_micros();
    data.buckets.reserve(Histogram::kNumBuckets);
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      data.buckets.push_back(h->bucket(i));
    }
    snap.histograms[name] = std::move(data);
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) c->Reset();
  for (const auto& [name, g] : gauges_) g->Reset();
  for (const auto& [name, h] : histograms_) h->Reset();
}

}  // namespace obs
}  // namespace mra
