#include "mra/obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace mra {
namespace obs {

// Bucket layout (log-linear, see the class comment in metrics.h):
//   index < kSubBuckets            — exact: bucket i holds value i.
//   group g ≥ 1, sub s ∈ [0, 16)   — index g·16 + s covers
//       [2^(g+3) + s·2^(g-1), 2^(g+3) + (s+1)·2^(g-1) - 1].
// The two regions are continuous: group 1 has width-1 sub-buckets over
// [16, 31], so index v still equals v there.

uint64_t Histogram::BucketUpperBound(size_t i) {
  if (i + 1 >= kNumBuckets) return UINT64_MAX;
  if (i < kSubBuckets) return i;
  uint64_t group = i >> kSubBucketBits;
  uint64_t sub = i & (kSubBuckets - 1);
  uint64_t width = uint64_t{1} << (group - 1);
  uint64_t base = uint64_t{1} << (group + kSubBucketBits - 1);
  return base + (sub + 1) * width - 1;
}

size_t Histogram::BucketFor(uint64_t micros) {
  if (micros < kSubBuckets) return micros;
  // Position of the most significant set bit; micros ≥ 16 so msb ≥ 4.
  uint32_t msb = 63 - static_cast<uint32_t>(__builtin_clzll(micros));
  uint32_t group = msb - kSubBucketBits + 1;
  if (group > kGroups) return kNumBuckets - 1;
  uint64_t sub = (micros >> (msb - kSubBucketBits)) & (kSubBuckets - 1);
  return group * kSubBuckets + sub;
}

uint64_t HistogramData::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation, 1-based; q=0 → first, q=1 → last.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      uint64_t upper = Histogram::BucketUpperBound(i);
      return std::min(upper, max_micros);
    }
  }
  return max_micros;
}

void HistogramData::MergeFrom(const HistogramData& other) {
  count += other.count;
  sum_micros += other.sum_micros;
  max_micros = std::max(max_micros, other.max_micros);
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size(), 0);
  }
  for (size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
}

void Histogram::Merge(const HistogramData& data) {
  size_t n = std::min(data.buckets.size(), kNumBuckets);
  for (size_t i = 0; i < n; ++i) {
    if (data.buckets[i] == 0) continue;
    buckets_[i].fetch_add(data.buckets[i], std::memory_order_relaxed);
  }
  count_.fetch_add(data.count, std::memory_order_relaxed);
  sum_micros_.fetch_add(data.sum_micros, std::memory_order_relaxed);
  if (data.max_micros > max_micros_.load(std::memory_order_relaxed)) {
    max_micros_.store(data.max_micros, std::memory_order_relaxed);
  }
}

HistogramData Histogram::Snapshot() const {
  HistogramData data;
  data.count = count();
  data.sum_micros = sum_micros();
  data.max_micros = max_micros();
  data.buckets.reserve(kNumBuckets);
  for (size_t i = 0; i < kNumBuckets; ++i) data.buckets.push_back(bucket(i));
  return data;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_micros_.store(0, std::memory_order_relaxed);
  max_micros_.store(0, std::memory_order_relaxed);
}

std::string MetricsSnapshot::RenderText() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters) {
    out << name << " " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    out << name << " " << value << "\n";
  }
  for (const auto& [name, h] : histograms) {
    out << name << " count=" << h.count << " sum_us=" << h.sum_micros;
    if (h.count > 0) {
      out << " mean_us=" << (h.sum_micros / h.count)
          << " p50_us=" << h.Quantile(0.50) << " p95_us=" << h.Quantile(0.95)
          << " p99_us=" << h.Quantile(0.99) << " max_us=" << h.max_micros
          << " buckets=[";
      bool first = true;
      for (size_t i = 0; i < h.buckets.size(); ++i) {
        if (h.buckets[i] == 0) continue;
        if (!first) out << " ";
        first = false;
        if (Histogram::BucketUpperBound(i) == UINT64_MAX) {
          out << "inf:" << h.buckets[i];
        } else {
          out << "le" << Histogram::BucketUpperBound(i) << "us:"
              << h.buckets[i];
        }
      }
      out << "]";
    }
    out << "\n";
  }
  return out.str();
}

void AppendJsonString(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

namespace {

void AppendJsonKey(std::ostream& out, const std::string& s) {
  std::string buf;
  AppendJsonString(buf, s);
  out << buf;
}

// Prometheus metric names admit [a-zA-Z0-9_:]; we map everything else
// (dots in our names) to '_' and prefix the namespace.
std::string PromName(const std::string& name) {
  std::string out = "mra_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::RenderJson() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out << ",";
    first = false;
    AppendJsonKey(out, name);
    out << ":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out << ",";
    first = false;
    AppendJsonKey(out, name);
    out << ":" << value;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out << ",";
    first = false;
    AppendJsonKey(out, name);
    out << ":{\"count\":" << h.count << ",\"sum_us\":" << h.sum_micros
        << ",\"max_us\":" << h.max_micros << ",\"p50_us\":" << h.Quantile(0.50)
        << ",\"p95_us\":" << h.Quantile(0.95)
        << ",\"p99_us\":" << h.Quantile(0.99) << ",\"buckets\":{";
    // Sparse map keyed by inclusive upper bound — 464 mostly-zero entries
    // would bloat every snapshot.
    bool bfirst = true;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      if (!bfirst) out << ",";
      bfirst = false;
      uint64_t upper = Histogram::BucketUpperBound(i);
      if (upper == UINT64_MAX) {
        out << "\"inf\":" << h.buckets[i];
      } else {
        out << "\"" << upper << "\":" << h.buckets[i];
      }
    }
    out << "}}";
  }
  out << "}}";
  return out.str();
}

std::string MetricsSnapshot::RenderPrometheus() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters) {
    std::string pname = PromName(name);
    out << "# TYPE " << pname << " counter\n";
    out << pname << " " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    std::string pname = PromName(name);
    out << "# TYPE " << pname << " gauge\n";
    out << pname << " " << value << "\n";
  }
  for (const auto& [name, h] : histograms) {
    std::string pname = PromName(name);
    out << "# TYPE " << pname << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      cumulative += h.buckets[i];
      uint64_t upper = Histogram::BucketUpperBound(i);
      if (upper == UINT64_MAX) continue;  // Folded into +Inf below.
      out << pname << "_bucket{le=\"" << upper << "\"} " << cumulative
          << "\n";
    }
    out << pname << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    out << pname << "_sum " << h.sum_micros << "\n";
    out << pname << "_count " << h.count << "\n";
  }
  return out.str();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->Snapshot();
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) c->Reset();
  for (const auto& [name, g] : gauges_) g->Reset();
  for (const auto& [name, h] : histograms_) h->Reset();
}

}  // namespace obs
}  // namespace mra
