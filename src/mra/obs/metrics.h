// Process-wide metrics registry: named counters, gauges and fixed-bucket
// latency histograms with lock-free hot paths.
//
// Registration (name → metric) takes a mutex once; the returned pointers
// are stable for the process lifetime, so instrumentation sites cache them
// in a function-local static and pay one relaxed atomic RMW per event:
//
//   static obs::Counter* appends =
//       obs::MetricsRegistry::Global().GetCounter("wal.appends");
//   appends->Inc();
//
// Snapshots iterate the (sorted) registration maps, so text and JSON
// exports list metrics in a deterministic order.  The metrics catalog is
// documented in docs/OBSERVABILITY.md.

#ifndef MRA_OBS_METRICS_H_
#define MRA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mra {
namespace obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void Inc(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that can move both ways (active transactions, open files, …).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Latency histogram with fixed exponential buckets: bucket i counts
/// observations in (2^{i-1}, 2^i] microseconds (bucket 0 is ≤ 1µs, the
/// last bucket is unbounded).  Observe/merge are lock-free.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 26;  // ≤1µs … >~33s.

  void Observe(uint64_t micros) {
    buckets_[BucketFor(micros)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_micros_.fetch_add(micros, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_micros() const {
    return sum_micros_.load(std::memory_order_relaxed);
  }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Inclusive upper bound of bucket `i` in µs (UINT64_MAX for the last).
  static uint64_t BucketUpperBound(size_t i);

  void Reset();

 private:
  static size_t BucketFor(uint64_t micros);

  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_micros_{0};
};

/// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  struct HistogramData {
    uint64_t count = 0;
    uint64_t sum_micros = 0;
    std::vector<uint64_t> buckets;  // kNumBuckets entries.
  };
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramData> histograms;

  /// Human-oriented rendering, one metric per line, sorted by name.
  std::string RenderText() const;
  /// Machine-oriented rendering: one JSON object with "counters",
  /// "gauges" and "histograms" members, keys sorted.
  std::string RenderJson() const;
};

/// The process-wide registry.  `Global()` is the instance everything in
/// the engine instruments; tests may construct private registries.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named metric.  Pointers stay valid for the
  /// registry's lifetime.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  std::string RenderText() const { return Snapshot().RenderText(); }
  std::string RenderJson() const { return Snapshot().RenderJson(); }

  /// Zeroes every registered metric (registrations and pointers survive).
  /// For tests and REPL `\metrics reset`.
  void Reset();

 private:
  mutable std::mutex mutex_;  // Guards the maps, not the metric values.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace mra

#endif  // MRA_OBS_METRICS_H_
