// Process-wide metrics registry: named counters, gauges and log-bucketed
// (HDR-style) latency histograms with lock-free hot paths.
//
// Registration (name → metric) takes a mutex once; the returned pointers
// are stable for the process lifetime, so instrumentation sites cache them
// in a function-local static and pay one relaxed atomic RMW per event:
//
//   static obs::Counter* appends =
//       obs::MetricsRegistry::Global().GetCounter("wal.appends");
//   appends->Inc();
//
// Snapshots iterate the (sorted) registration maps, so text, JSON and
// Prometheus exports list metrics in a deterministic order.  The metrics
// catalog is documented in docs/OBSERVABILITY.md.

#ifndef MRA_OBS_METRICS_H_
#define MRA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mra {
namespace obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void Inc(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that can move both ways (active transactions, open files, …).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time copy of one histogram, detached from its atomics.  The
/// unit of merging and quantile estimation: snapshots from different
/// histograms (or different processes speaking the same bucket layout —
/// see net/protocol.h ServerStats) combine with MergeFrom.
struct HistogramData {
  uint64_t count = 0;
  uint64_t sum_micros = 0;
  uint64_t max_micros = 0;
  std::vector<uint64_t> buckets;  // Histogram::kNumBuckets entries (or 0).

  /// Estimated value at quantile `q` ∈ [0, 1] in µs: the inclusive upper
  /// bound of the bucket where the cumulative count crosses q·count,
  /// clamped to max_micros (so the unbounded tail bucket reports the real
  /// maximum, not infinity).  0 when empty.
  uint64_t Quantile(double q) const;

  /// Element-wise accumulation (counts add, max takes the larger); the
  /// mergeability HDR-style buckets buy — aggregating per-worker or
  /// per-server distributions loses no bucket resolution.
  void MergeFrom(const HistogramData& other);
};

/// Latency histogram with log-linear (HDR-style) buckets over
/// microseconds.  Values below kSubBuckets are recorded exactly (one
/// bucket per value); above that every power-of-two octave splits into
/// kSubBuckets equal-width sub-buckets, so the relative quantization
/// error of any recorded value — and hence of every quantile estimate —
/// stays below 1/kSubBuckets (6.25%).  Observe and Merge are lock-free:
/// relaxed atomic adds plus one relaxed max update.
class Histogram {
 public:
  /// log2 of the sub-bucket count; 4 → 16 sub-buckets per octave.
  static constexpr uint32_t kSubBucketBits = 4;
  static constexpr uint32_t kSubBuckets = 1u << kSubBucketBits;
  /// Octave groups above the exact region.  Group kGroups tops out at
  /// 2^(kGroups + kSubBucketBits) µs ≈ 71 minutes; larger observations
  /// land in the final (unbounded) bucket.
  static constexpr uint32_t kGroups = 28;
  static constexpr size_t kNumBuckets = kSubBuckets * (kGroups + 1);  // 464.

  void Observe(uint64_t micros) {
    buckets_[BucketFor(micros)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_micros_.fetch_add(micros, std::memory_order_relaxed);
    // Lossy-max is fine: a racing larger value wins on its own update.
    if (micros > max_micros_.load(std::memory_order_relaxed)) {
      max_micros_.store(micros, std::memory_order_relaxed);
    }
  }

  /// Accumulates a snapshot into this histogram (atomic adds) — merging
  /// stays safe against concurrent Observe calls.
  void Merge(const HistogramData& data);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_micros() const {
    return sum_micros_.load(std::memory_order_relaxed);
  }
  uint64_t max_micros() const {
    return max_micros_.load(std::memory_order_relaxed);
  }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  HistogramData Snapshot() const;

  /// Convenience quantile over a fresh snapshot.
  uint64_t Quantile(double q) const { return Snapshot().Quantile(q); }

  /// Inclusive upper bound of bucket `i` in µs (UINT64_MAX for the last).
  static uint64_t BucketUpperBound(size_t i);

  /// Bucket index a value lands in (exposed for tests).
  static size_t BucketFor(uint64_t micros);

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_micros_{0};
  std::atomic<uint64_t> max_micros_{0};
};

/// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramData> histograms;

  /// Human-oriented rendering, one metric per line, sorted by name;
  /// histograms include p50/p95/p99 and the non-empty buckets.
  std::string RenderText() const;
  /// Machine-oriented rendering: one JSON object with "counters",
  /// "gauges" and "histograms" members, keys sorted.
  std::string RenderJson() const;
  /// Prometheus text exposition (version 0.0.4): names are prefixed with
  /// `mra_` and dots become underscores; histograms render cumulative
  /// `_bucket{le="…"}` series (non-empty buckets plus `+Inf`), `_sum`
  /// and `_count`.
  std::string RenderPrometheus() const;
};

/// Appends `s` to `out` as a JSON string literal (quotes + escapes).
void AppendJsonString(std::string& out, std::string_view s);

/// The process-wide registry.  `Global()` is the instance everything in
/// the engine instruments; tests may construct private registries.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named metric.  Pointers stay valid for the
  /// registry's lifetime.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  std::string RenderText() const { return Snapshot().RenderText(); }
  std::string RenderJson() const { return Snapshot().RenderJson(); }
  std::string RenderPrometheus() const {
    return Snapshot().RenderPrometheus();
  }

  /// Zeroes every registered metric (registrations and pointers survive).
  /// For tests and REPL `\metrics reset`.
  void Reset();

 private:
  mutable std::mutex mutex_;  // Guards the maps, not the metric values.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace mra

#endif  // MRA_OBS_METRICS_H_
