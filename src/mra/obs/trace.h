// Lightweight scoped-span tracing: RAII spans around engine phases
// (parse → bind → optimize → plan → execute), recorded into a fixed-size
// ring buffer.  Tracing is off by default; a disabled ScopedSpan costs one
// relaxed atomic load and nothing else.
//
// Spans nest through a thread-local depth counter, so the rendering
// indents a span under the span that was open when it started.  Events
// are recorded at span end; `Render()` re-sorts by start time to restore
// chronological (parent-before-child) order.

#ifndef MRA_OBS_TRACE_H_
#define MRA_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mra {
namespace obs {

/// One completed span.
struct TraceEvent {
  std::string name;
  uint32_t depth = 0;        // Nesting level at span start.
  uint64_t start_us = 0;     // Relative to the tracer epoch.
  uint64_t duration_us = 0;
};

class Tracer {
 public:
  static constexpr size_t kCapacity = 4096;

  static Tracer& Global();

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends one event, overwriting the oldest once kCapacity is reached.
  void Record(TraceEvent event);

  /// Completed events in chronological (start-time) order.
  std::vector<TraceEvent> Events() const;

  /// Events dropped to the ring buffer's overwrite so far.
  uint64_t dropped() const { return dropped_; }

  /// Indented text rendering of Events().
  std::string Render() const;

  void Clear();

  /// Microseconds since the tracer epoch (its construction).
  uint64_t NowMicros() const;

 private:
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;       // Ring insertion cursor once full.
  uint64_t dropped_ = 0;  // Overwritten events.
};

/// RAII span: records [construction, destruction) into Tracer::Global()
/// when tracing is enabled at construction time.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_;
  uint32_t depth_ = 0;
  uint64_t start_us_ = 0;
  std::string name_;
};

}  // namespace obs
}  // namespace mra

#endif  // MRA_OBS_TRACE_H_
