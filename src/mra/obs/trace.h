// Lightweight scoped-span tracing: RAII spans around engine phases
// (parse → bind → optimize → plan → execute), recorded into a fixed-size
// ring buffer.  Tracing is off by default; a disabled ScopedSpan costs one
// relaxed atomic load and nothing else.
//
// Spans nest through a thread-local depth counter, so the rendering
// indents a span under the span that was open when it started.  Events
// are recorded at span end; `Render()` re-sorts by start time to restore
// chronological (parent-before-child) order.

#ifndef MRA_OBS_TRACE_H_
#define MRA_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mra {
namespace obs {

/// One completed span.
struct TraceEvent {
  std::string name;
  uint32_t depth = 0;        // Nesting level at span start.
  uint64_t start_us = 0;     // Relative to the tracer epoch.
  uint64_t duration_us = 0;
  uint64_t query_id = 0;     // Query the span belongs to; 0 = none.
};

/// Allocates a process-unique query id (never 0).  Ids from different
/// processes are unlikely to collide: the counter starts at a random
/// 32-bit offset, so a client-generated id survives server-side reuse
/// checks and log greps stay unambiguous.
uint64_t NextQueryId();

/// The query id bound to this thread (0 outside query execution).  Spans
/// capture it at construction, which is what makes a remote query's
/// server-side spans attributable: the server binds the wire query_id
/// before invoking the interpreter.
uint64_t CurrentQueryId();

/// Binds `query_id` to the current thread for its lifetime, restoring
/// the previous binding on destruction (nests safely).
class ScopedQueryId {
 public:
  explicit ScopedQueryId(uint64_t query_id);
  ~ScopedQueryId();

  ScopedQueryId(const ScopedQueryId&) = delete;
  ScopedQueryId& operator=(const ScopedQueryId&) = delete;

 private:
  uint64_t previous_;
};

class Tracer {
 public:
  static constexpr size_t kCapacity = 4096;

  static Tracer& Global();

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends one event, overwriting the oldest once kCapacity is reached.
  void Record(TraceEvent event);

  /// Completed events in chronological (start-time) order, optionally
  /// restricted to one query (`query_id` 0 = everything).
  std::vector<TraceEvent> Events(uint64_t query_id = 0) const;

  /// Events dropped to the ring buffer's overwrite so far.
  uint64_t dropped() const { return dropped_; }

  /// Indented text rendering of Events(query_id).
  std::string Render(uint64_t query_id = 0) const;

  void Clear();

  /// Microseconds since the tracer epoch (its construction).
  uint64_t NowMicros() const;

 private:
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;       // Ring insertion cursor once full.
  uint64_t dropped_ = 0;  // Overwritten events.
};

/// RAII span: records [construction, destruction) into Tracer::Global()
/// when tracing is enabled at construction time.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_;
  uint32_t depth_ = 0;
  uint64_t start_us_ = 0;
  uint64_t query_id_ = 0;
  std::string name_;
};

}  // namespace obs
}  // namespace mra

#endif  // MRA_OBS_TRACE_H_
