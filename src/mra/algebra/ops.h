// The multi-set relational operators, as direct transcriptions of
// Definitions 3.1 (basic algebra), 3.2 (standard algebra) and 3.4 (extended
// algebra).  These materialising functions are the library's *definitional*
// semantics: the physical executor (mra/exec) and the optimizer are tested
// against them.
//
// Multiplicity semantics (for x in the appropriate domain):
//   (E1 ⊎ E2)(x) = E1(x) + E2(x)                          union
//   (E1 −  E2)(x) = max(0, E1(x) − E2(x))                 difference
//   (E1 ×  E3)(x1 ⊕ x3) = E1(x1) · E3(x3)                 product
//   (σ_φ E)(x)  = E(x) if φ(x), else 0                    selection
//   (π_α E)(y)  = Σ_{x : π_α(x) = y} E(x)                 projection
//   (E1 ∩  E2)(x) = min(E1(x), E2(x))                     intersection
//   (E1 ⋈_φ E2) = σ_φ(E1 × E2)                            join
//   (δE)(x)     = 1 if E(x) > 0, else 0                   unique
//   Γ_{α,f,p} E = per-group aggregation                    groupby

#ifndef MRA_ALGEBRA_OPS_H_
#define MRA_ALGEBRA_OPS_H_

#include <string>
#include <vector>

#include "mra/algebra/aggregate.h"
#include "mra/core/relation.h"
#include "mra/expr/eval.h"
#include "mra/expr/scalar_expr.h"

namespace mra {
namespace ops {

/// E1 ⊎ E2 — additive multi-set union (Definition 3.1).  Operands must have
/// compatible schemas.
Result<Relation> Union(const Relation& left, const Relation& right);

/// E1 − E2 — clamped multi-set difference (Definition 3.1).
Result<Relation> Difference(const Relation& left, const Relation& right);

/// E1 × E3 — Cartesian product; multiplicities multiply (Definition 3.1).
Result<Relation> Product(const Relation& left, const Relation& right);

/// σ_φ E — selection by a boolean condition on individual tuples
/// (Definition 3.1).  The condition is type-checked against the schema.
Result<Relation> Select(const ExprPtr& condition, const Relation& input);

/// π_α E — extended projection (Definitions 3.1 and 3.4): each output
/// attribute is an arithmetic expression over the input tuple; plain
/// attribute lists are the special case where every expression is %i.
/// Projection is additive: it does NOT remove duplicates.
Result<Relation> Project(const std::vector<ExprPtr>& exprs,
                         const Relation& input,
                         const std::vector<std::string>& names = {});

/// π with a plain 0-based attribute index list (Definition 3.1 form).
Result<Relation> ProjectIndexes(const std::vector<size_t>& indexes,
                                const Relation& input);

/// E1 ∩ E2 — multi-set intersection (Definition 3.2).
Result<Relation> Intersect(const Relation& left, const Relation& right);

/// E1 ⋈_φ E2 — theta join (Definition 3.2).  Definitionally σ_φ(E1 × E2);
/// implemented directly without materialising the product.
Result<Relation> Join(const ExprPtr& condition, const Relation& left,
                      const Relation& right);

/// δE — duplicate removal (Definition 3.4).
Result<Relation> Unique(const Relation& input);

/// Γ_{α,f,p} E — groupby (Definition 3.4), generalised to a list of
/// aggregates (the paper's operator is the single-element case).  `keys`
/// are 0-based grouping attribute indexes and must be duplicate-free; the
/// output schema is π_keys(ℰ) ⊕ one attribute per aggregate.  With empty
/// `keys` the result is the single all-tuples aggregate row, matching the
/// paper's "one single attribute tuple" case — note that for CNT/SUM this
/// yields a row even over an empty input, while AVG/MIN/MAX over an empty
/// input are undefined (partial functions).
Result<Relation> GroupBy(const std::vector<size_t>& keys,
                         const std::vector<AggSpec>& aggs,
                         const Relation& input);

/// Checks groupby arguments against an input schema and computes the output
/// schema (shared by the definitional operator, the plan builder and the
/// physical operator).
Result<RelationSchema> GroupBySchema(const std::vector<size_t>& keys,
                                     const std::vector<AggSpec>& aggs,
                                     const RelationSchema& input);

/// Three-way comparison of two tuples under the sort total order: the listed
/// keys in order (desc[i] flips key i), then the *whole* tuple ascending as
/// the tiebreak.  The tiebreak makes the order total, which is what lets the
/// weighted LIMIT below (and the physical Top-K) be deterministic.
int CompareForSort(const Tuple& a, const Tuple& b,
                   const std::vector<size_t>& keys,
                   const std::vector<bool>& desc);

/// sort_[keys],limit E — the definitional semantics of the sort node.  A
/// Definition 2.1 relation is an unordered multiset, so with limit = 0 the
/// operator is the identity on bags (ordering is a property of the emitted
/// stream, checked separately against the physical operator).  With
/// limit = k > 0 it is the deterministic multiplicity-weighted Top-K under
/// CompareForSort: tuples are taken in sort order until k total multiplicity
/// is reached, the boundary tuple keeping the clamped remainder.
Result<Relation> Sort(const std::vector<size_t>& keys,
                      const std::vector<bool>& desc, uint64_t limit,
                      const Relation& input);

}  // namespace ops
}  // namespace mra

#endif  // MRA_ALGEBRA_OPS_H_
