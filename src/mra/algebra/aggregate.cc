#include "mra/algebra/aggregate.h"

namespace mra {

std::string_view AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCnt:
      return "cnt";
    case AggKind::kSum:
      return "sum";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
  }
  return "?";
}

Result<AggKind> AggKindFromName(std::string_view name) {
  if (name == "cnt" || name == "count") return AggKind::kCnt;
  if (name == "sum") return AggKind::kSum;
  if (name == "avg") return AggKind::kAvg;
  if (name == "min") return AggKind::kMin;
  if (name == "max") return AggKind::kMax;
  return Status::InvalidArgument("unknown aggregate function: " +
                                 std::string(name));
}

Result<Type> AggResultType(AggKind kind, Type attr_type) {
  switch (kind) {
    case AggKind::kCnt:
      return Type::Int();
    case AggKind::kSum:
      if (!attr_type.IsNumeric()) {
        return Status::TypeError("SUM requires a numeric attribute, got " +
                                 attr_type.ToString());
      }
      return attr_type;
    case AggKind::kAvg:
      if (!attr_type.IsNumeric()) {
        return Status::TypeError("AVG requires a numeric attribute, got " +
                                 attr_type.ToString());
      }
      return attr_type.kind() == TypeKind::kDecimal ? Type::Decimal()
                                                    : Type::Real();
    case AggKind::kMin:
    case AggKind::kMax:
      if (!attr_type.IsOrdered()) {
        return Status::TypeError("MIN/MAX require an ordered attribute");
      }
      return attr_type;
  }
  return Status::Internal("bad aggregate kind");
}

AggAccumulator::AggAccumulator(AggKind kind, Type attr_type)
    : kind_(kind), attr_type_(attr_type) {}

void AggAccumulator::Add(const Value& v, uint64_t count) {
  if (count == 0) return;
  count_ += count;
  switch (kind_) {
    case AggKind::kCnt:
      return;
    case AggKind::kSum:
    case AggKind::kAvg:
      switch (v.kind()) {
        case TypeKind::kInt:
          sum_int_ += v.int_value() * static_cast<int64_t>(count);
          return;
        case TypeKind::kDecimal:
          sum_int_ += v.decimal_scaled() * static_cast<int64_t>(count);
          return;
        case TypeKind::kReal:
          sum_real_ += v.real_value() * static_cast<double>(count);
          return;
        default:
          MRA_CHECK(false) << "SUM/AVG over non-numeric value" << v.ToString();
      }
      return;
    case AggKind::kMin:
      if (!has_extreme_ || v.Compare(extreme_) < 0) {
        extreme_ = v;
        has_extreme_ = true;
      }
      return;
    case AggKind::kMax:
      if (!has_extreme_ || v.Compare(extreme_) > 0) {
        extreme_ = v;
        has_extreme_ = true;
      }
      return;
  }
}

void AggAccumulator::Merge(const AggAccumulator& other) {
  MRA_CHECK(kind_ == other.kind_ && attr_type_ == other.attr_type_)
      << "merging incompatible accumulators";
  count_ += other.count_;
  sum_int_ += other.sum_int_;
  sum_real_ += other.sum_real_;
  if (other.has_extreme_) {
    if (!has_extreme_ ||
        (kind_ == AggKind::kMin && other.extreme_.Compare(extreme_) < 0) ||
        (kind_ == AggKind::kMax && other.extreme_.Compare(extreme_) > 0)) {
      extreme_ = other.extreme_;
      has_extreme_ = true;
    }
  }
}

Result<Value> AggAccumulator::Finish() const {
  switch (kind_) {
    case AggKind::kCnt:
      return Value::Int(static_cast<int64_t>(count_));
    case AggKind::kSum:
      switch (attr_type_.kind()) {
        case TypeKind::kInt:
          return Value::Int(sum_int_);
        case TypeKind::kDecimal:
          return Value::DecimalScaled(sum_int_);
        case TypeKind::kReal:
          return Value::Real(sum_real_);
        default:
          return Status::TypeError("SUM over non-numeric attribute");
      }
    case AggKind::kAvg: {
      if (count_ == 0) {
        return Status::Undefined(
            "AVG is a partial function: undefined on an empty multi-set");
      }
      switch (attr_type_.kind()) {
        case TypeKind::kInt:
          return Value::Real(static_cast<double>(sum_int_) /
                             static_cast<double>(count_));
        case TypeKind::kDecimal: {
          __int128 q = static_cast<__int128>(sum_int_) /
                       static_cast<int64_t>(count_);
          return Value::DecimalScaled(static_cast<int64_t>(q));
        }
        case TypeKind::kReal:
          return Value::Real(sum_real_ / static_cast<double>(count_));
        default:
          return Status::TypeError("AVG over non-numeric attribute");
      }
    }
    case AggKind::kMin:
    case AggKind::kMax:
      if (!has_extreme_) {
        return Status::Undefined(
            std::string(AggKindName(kind_)) +
            " is a partial function: undefined on an empty multi-set");
      }
      return extreme_;
  }
  return Status::Internal("bad aggregate kind");
}

Result<Value> Aggregate(AggKind kind, size_t attr, const Relation& input) {
  if (attr >= input.schema().arity()) {
    return Status::InvalidArgument(
        "aggregate attribute %" + std::to_string(attr + 1) +
        " out of range for " + input.schema().ToString());
  }
  // Validate the attribute domain against the aggregate's requirements.
  MRA_RETURN_IF_ERROR(AggResultType(kind, input.schema().TypeOf(attr)));
  AggAccumulator acc(kind, input.schema().TypeOf(attr));
  for (const auto& [tuple, count] : input) {
    acc.Add(tuple.at(attr), count);
  }
  return acc.Finish();
}

}  // namespace mra
