#include "mra/algebra/closure.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mra/algebra/ops.h"

namespace mra {
namespace ops {

Status CheckClosureInput(const RelationSchema& schema) {
  if (schema.arity() != 2) {
    return Status::InvalidArgument(
        "closure requires a binary relation, got " + schema.ToString());
  }
  if (schema.TypeOf(0) != schema.TypeOf(1)) {
    return Status::InvalidArgument(
        "closure requires both attributes on one domain, got " +
        schema.ToString());
  }
  return Status::OK();
}

namespace {

using ValueSet = std::unordered_set<Tuple, TupleHash, TupleEq>;

Tuple Pair(const Value& a, const Value& b) { return Tuple({a, b}); }

// Adjacency of the base edge set, keyed by source value (wrapped in a
// unary tuple so the core hash applies).
std::unordered_map<Tuple, std::vector<Value>, TupleHash, TupleEq>
BuildAdjacency(const Relation& input) {
  std::unordered_map<Tuple, std::vector<Value>, TupleHash, TupleEq> adj;
  for (const auto& [tuple, count] : input) {
    (void)count;  // closure is set-valued
    adj[Tuple({tuple.at(0)})].push_back(tuple.at(1));
  }
  return adj;
}

}  // namespace

Result<Relation> TransitiveClosure(const Relation& input) {
  MRA_RETURN_IF_ERROR(CheckClosureInput(input.schema()));
  auto adjacency = BuildAdjacency(input);

  Relation closure(input.schema());
  ValueSet known;
  std::vector<Tuple> frontier;
  for (const auto& [tuple, count] : input) {
    (void)count;
    if (known.insert(tuple).second) {
      closure.InsertUnchecked(tuple, 1);
      frontier.push_back(tuple);
    }
  }

  // Semi-naive: extend only the pairs discovered in the previous round by
  // one base edge on the right.
  while (!frontier.empty()) {
    std::vector<Tuple> next;
    for (const Tuple& pair : frontier) {
      auto it = adjacency.find(Tuple({pair.at(1)}));
      if (it == adjacency.end()) continue;
      for (const Value& target : it->second) {
        Tuple extended = Pair(pair.at(0), target);
        if (known.insert(extended).second) {
          closure.InsertUnchecked(extended, 1);
          next.push_back(std::move(extended));
        }
      }
    }
    frontier = std::move(next);
  }
  return closure;
}

Result<Relation> TransitiveClosureNaive(const Relation& input) {
  MRA_RETURN_IF_ERROR(CheckClosureInput(input.schema()));
  // C_0 = δE; C_{i+1} = δ(C_i ⊎ π_{1,4}(C_i ⋈_{%2=%3} C_i)); stop at the
  // fixpoint.  Every round re-derives all known pairs from scratch — the
  // baseline the semi-naive strategy improves on.  (The self-join itself
  // runs hash-based so the comparison isolates the iteration strategy,
  // not the join algorithm.)
  MRA_ASSIGN_OR_RETURN(Relation closure, Unique(input));
  while (true) {
    // Hash C by source value, then extend every pair by every edge of C.
    std::unordered_map<Tuple, std::vector<Value>, TupleHash, TupleEq> by_src;
    for (const auto& [pair, count] : closure) {
      (void)count;
      by_src[Tuple({pair.at(0)})].push_back(pair.at(1));
    }
    Relation next(input.schema());
    for (const auto& [pair, count] : closure) {
      (void)count;
      next.InsertUnchecked(pair, 1);
    }
    bool changed = false;
    for (const auto& [pair, count] : closure) {
      (void)count;
      auto it = by_src.find(Tuple({pair.at(1)}));
      if (it == by_src.end()) continue;
      for (const Value& target : it->second) {
        Tuple extended = Pair(pair.at(0), target);
        if (!next.Contains(extended)) {
          next.InsertUnchecked(extended, 1);
          changed = true;
        }
      }
    }
    if (!changed) return next;
    closure = std::move(next);
  }
}

}  // namespace ops
}  // namespace mra
