#include "mra/algebra/ops.h"

#include <algorithm>
#include <unordered_set>

namespace mra {
namespace ops {

namespace {

Status CheckCompatible(const Relation& left, const Relation& right,
                       const char* op) {
  if (!left.schema().CompatibleWith(right.schema())) {
    return Status::InvalidArgument(
        std::string(op) + " requires operands of one schema, got " +
        left.schema().ToString() + " and " + right.schema().ToString());
  }
  return Status::OK();
}

}  // namespace

Result<Relation> Union(const Relation& left, const Relation& right) {
  MRA_RETURN_IF_ERROR(CheckCompatible(left, right, "union"));
  Relation out(left.schema());
  for (const auto& [tuple, count] : left) out.InsertUnchecked(tuple, count);
  for (const auto& [tuple, count] : right) out.InsertUnchecked(tuple, count);
  return out;
}

Result<Relation> Difference(const Relation& left, const Relation& right) {
  MRA_RETURN_IF_ERROR(CheckCompatible(left, right, "difference"));
  Relation out(left.schema());
  for (const auto& [tuple, count] : left) {
    uint64_t other = right.Multiplicity(tuple);
    if (count > other) out.InsertUnchecked(tuple, count - other);
  }
  return out;
}

Result<Relation> Product(const Relation& left, const Relation& right) {
  Relation out(left.schema().Concat(right.schema()));
  for (const auto& [lt, lc] : left) {
    for (const auto& [rt, rc] : right) {
      out.InsertUnchecked(lt.Concat(rt), lc * rc);
    }
  }
  return out;
}

Result<Relation> Select(const ExprPtr& condition, const Relation& input) {
  MRA_RETURN_IF_ERROR(CheckPredicate(condition, input.schema()));
  Relation out(input.schema());
  for (const auto& [tuple, count] : input) {
    MRA_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*condition, tuple));
    if (keep) out.InsertUnchecked(tuple, count);
  }
  return out;
}

Result<Relation> Project(const std::vector<ExprPtr>& exprs,
                         const Relation& input,
                         const std::vector<std::string>& names) {
  MRA_ASSIGN_OR_RETURN(RelationSchema schema,
                       InferProjectionSchema(exprs, input.schema(), names));
  Relation out(std::move(schema));
  for (const auto& [tuple, count] : input) {
    MRA_ASSIGN_OR_RETURN(Tuple projected, ProjectTuple(exprs, tuple));
    out.InsertUnchecked(std::move(projected), count);
  }
  return out;
}

Result<Relation> ProjectIndexes(const std::vector<size_t>& indexes,
                                const Relation& input) {
  std::vector<ExprPtr> exprs;
  exprs.reserve(indexes.size());
  for (size_t i : indexes) exprs.push_back(Attr(i));
  return Project(exprs, input);
}

Result<Relation> Intersect(const Relation& left, const Relation& right) {
  MRA_RETURN_IF_ERROR(CheckCompatible(left, right, "intersection"));
  Relation out(left.schema());
  // Iterate the smaller support for the min().
  const Relation& small = left.distinct_size() <= right.distinct_size()
                              ? left
                              : right;
  const Relation& large = &small == &left ? right : left;
  for (const auto& [tuple, count] : small) {
    uint64_t m = std::min(count, large.Multiplicity(tuple));
    if (m > 0) out.InsertUnchecked(tuple, m);
  }
  return out;
}

Result<Relation> Join(const ExprPtr& condition, const Relation& left,
                      const Relation& right) {
  RelationSchema joined = left.schema().Concat(right.schema());
  MRA_RETURN_IF_ERROR(CheckPredicate(condition, joined));
  Relation out(std::move(joined));
  for (const auto& [lt, lc] : left) {
    for (const auto& [rt, rc] : right) {
      Tuple combined = lt.Concat(rt);
      MRA_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*condition, combined));
      if (keep) out.InsertUnchecked(std::move(combined), lc * rc);
    }
  }
  return out;
}

Result<Relation> Unique(const Relation& input) {
  Relation out(input.schema());
  for (const auto& [tuple, count] : input) {
    (void)count;  // δ maps every positive multiplicity to 1.
    out.InsertUnchecked(tuple, 1);
  }
  return out;
}

int CompareForSort(const Tuple& a, const Tuple& b,
                   const std::vector<size_t>& keys,
                   const std::vector<bool>& desc) {
  for (size_t i = 0; i < keys.size(); ++i) {
    int c = a.at(keys[i]).Compare(b.at(keys[i]));
    if (c != 0) return desc[i] ? -c : c;
  }
  // Whole-tuple ascending tiebreak: totalises the order so equal-key ties
  // resolve the same way everywhere (definitional, in-memory, spilled).
  for (size_t i = 0; i < a.arity(); ++i) {
    int c = a.at(i).Compare(b.at(i));
    if (c != 0) return c;
  }
  return 0;
}

Result<Relation> Sort(const std::vector<size_t>& keys,
                      const std::vector<bool>& desc, uint64_t limit,
                      const Relation& input) {
  if (desc.size() != keys.size()) {
    return Status::InvalidArgument("sort keys and desc flags differ in size");
  }
  for (size_t k : keys) {
    if (k >= input.schema().arity()) {
      return Status::InvalidArgument(
          "sort key %" + std::to_string(k + 1) + " out of range for schema " +
          input.schema().ToString());
    }
  }
  if (limit == 0) return input;  // Identity on the bag; order is stream-only.
  std::vector<std::pair<Tuple, uint64_t>> entries(input.begin(), input.end());
  std::sort(entries.begin(), entries.end(),
            [&](const auto& a, const auto& b) {
              return CompareForSort(a.first, b.first, keys, desc) < 0;
            });
  Relation out(input.schema());
  uint64_t remaining = limit;
  for (auto& [tuple, count] : entries) {
    if (remaining == 0) break;
    uint64_t take = std::min(count, remaining);
    remaining -= take;
    out.InsertUnchecked(std::move(tuple), take);
  }
  return out;
}

Result<RelationSchema> GroupBySchema(const std::vector<size_t>& keys,
                                     const std::vector<AggSpec>& aggs,
                                     const RelationSchema& input) {
  std::unordered_set<size_t> seen;
  for (size_t k : keys) {
    if (k >= input.arity()) {
      return Status::InvalidArgument(
          "grouping attribute %" + std::to_string(k + 1) +
          " out of range for " + input.ToString());
    }
    if (!seen.insert(k).second) {
      return Status::InvalidArgument(
          "grouping attribute list must be duplicate-free (Definition 3.4)");
    }
  }
  if (aggs.empty()) {
    return Status::InvalidArgument("groupby requires at least one aggregate");
  }
  MRA_ASSIGN_OR_RETURN(RelationSchema key_schema, input.Project(keys));
  std::vector<Attribute> attrs = key_schema.attributes();
  for (const AggSpec& agg : aggs) {
    if (agg.attr >= input.arity()) {
      return Status::InvalidArgument(
          "aggregate attribute %" + std::to_string(agg.attr + 1) +
          " out of range for " + input.ToString());
    }
    MRA_ASSIGN_OR_RETURN(Type out_type,
                         AggResultType(agg.kind, input.TypeOf(agg.attr)));
    std::string name = agg.output_name;
    if (name.empty()) {
      name = std::string(AggKindName(agg.kind));
      if (agg.kind != AggKind::kCnt) {
        name += "_" + input.attribute(agg.attr).name;
      }
    }
    attrs.push_back({std::move(name), out_type});
  }
  return RelationSchema(std::move(attrs));
}

Result<Relation> GroupBy(const std::vector<size_t>& keys,
                         const std::vector<AggSpec>& aggs,
                         const Relation& input) {
  MRA_ASSIGN_OR_RETURN(RelationSchema out_schema,
                       GroupBySchema(keys, aggs, input.schema()));
  Relation out(std::move(out_schema));

  auto make_accumulators = [&] {
    std::vector<AggAccumulator> accs;
    accs.reserve(aggs.size());
    for (const AggSpec& agg : aggs) {
      accs.emplace_back(agg.kind, input.schema().TypeOf(agg.attr));
    }
    return accs;
  };

  std::unordered_map<Tuple, std::vector<AggAccumulator>, TupleHash, TupleEq>
      groups;
  for (const auto& [tuple, count] : input) {
    Tuple key = tuple.Project(keys);
    auto [it, inserted] = groups.try_emplace(std::move(key));
    if (inserted) it->second = make_accumulators();
    for (size_t i = 0; i < aggs.size(); ++i) {
      it->second[i].Add(tuple.at(aggs[i].attr), count);
    }
  }

  // Empty grouping list over any input (including empty) yields the single
  // all-tuples aggregate row (Definition 3.4's second case).
  if (keys.empty() && groups.empty()) {
    groups.try_emplace(Tuple{}, make_accumulators());
  }

  for (const auto& [key, accs] : groups) {
    std::vector<Value> values = key.values();
    for (const AggAccumulator& acc : accs) {
      MRA_ASSIGN_OR_RETURN(Value v, acc.Finish());
      values.push_back(std::move(v));
    }
    out.InsertUnchecked(Tuple(std::move(values)), 1);
  }
  return out;
}

}  // namespace ops
}  // namespace mra
