// Transitive closure — the extension §5 of the paper names explicitly:
// "The addition of a transitive closure operator allowing expressions with
// a recursive nature is discussed in [11]" (Grefen's PRISMA thesis).
//
// closure(E) is defined for binary relations whose two attributes share one
// domain.  Its result is the reachability relation: the *duplicate-free*
// smallest relation C with δE ⊑ C and (x,y), (y,z) ∈ C ⟹ (x,z) ∈ C.
// The result is a set (all multiplicities 1): under bag semantics a cyclic
// input would otherwise make path multiplicities diverge, so — as in the
// thesis — the operator deduplicates, exactly like δ.

#ifndef MRA_ALGEBRA_CLOSURE_H_
#define MRA_ALGEBRA_CLOSURE_H_

#include "mra/common/result.h"
#include "mra/core/relation.h"

namespace mra {
namespace ops {

/// Validates that `schema` is binary with equal attribute domains.
Status CheckClosureInput(const RelationSchema& schema);

/// closure(E) by semi-naive iteration: each round joins only the newly
/// discovered pairs against the base edges.  O(|C| · avg-degree) overall.
Result<Relation> TransitiveClosure(const Relation& input);

/// closure(E) by naive fixpoint iteration (re-deriving everything each
/// round).  Same result; kept as the baseline for the iteration-strategy
/// benchmark (E10).
Result<Relation> TransitiveClosureNaive(const Relation& input);

}  // namespace ops
}  // namespace mra

#endif  // MRA_ALGEBRA_CLOSURE_H_
