// Multi-set aggregate functions (Definition 3.3): CNT, SUM, AVG, MIN, MAX.
//
// All aggregates are multiplicity-weighted: CNT_p E = Σ_x E(x) and
// SUM_p E = Σ_x x.p · E(x).  AVG = SUM/CNT.  MIN/MAX range over the support
// {x | E(x) > 0}.  AVG, MIN and MAX are *partial* functions — applying them
// to an empty multi-set returns StatusCode::kUndefined, exactly as the paper
// notes after Definition 3.3.  SUM and CNT of an empty multi-set are 0
// (empty sum).

#ifndef MRA_ALGEBRA_AGGREGATE_H_
#define MRA_ALGEBRA_AGGREGATE_H_

#include <cstdint>
#include <string>

#include "mra/common/result.h"
#include "mra/core/relation.h"

namespace mra {

enum class AggKind : uint8_t { kCnt, kSum, kAvg, kMin, kMax };

/// Lower-case name as used in XRA: "cnt", "sum", ….
std::string_view AggKindName(AggKind kind);
/// Parses an XRA aggregate name.
Result<AggKind> AggKindFromName(std::string_view name);

/// One aggregate application f_p: function plus the 0-based attribute index
/// it aggregates over.  For CNT the attribute is a dummy parameter kept
/// "only for reasons of syntactical uniformity" (Definition 3.3); any valid
/// index works and does not affect the result.
struct AggSpec {
  AggKind kind;
  size_t attr = 0;
  /// Display name of the output attribute; synthesised when empty
  /// ("cnt", "sum_<attr>", …).
  std::string output_name;
};

/// ran(f_p): result domain of aggregate `kind` applied to an attribute of
/// type `attr_type`.  CNT → int; SUM preserves the numeric domain; AVG maps
/// int/real → real and decimal → decimal; MIN/MAX preserve the domain.
/// SUM/AVG require a numeric attribute; MIN/MAX any ordered domain.
Result<Type> AggResultType(AggKind kind, Type attr_type);

/// Streaming accumulator for one aggregate.  Feed (value, multiplicity)
/// pairs, then Finish().
class AggAccumulator {
 public:
  explicit AggAccumulator(AggKind kind, Type attr_type);

  /// Adds `count` occurrences of `v` (the value of the aggregated attribute
  /// in one distinct tuple).
  void Add(const Value& v, uint64_t count);

  /// Merges another accumulator over the same (kind, type) into this one —
  /// the combine step of two-phase (parallel) aggregation.
  void Merge(const AggAccumulator& other);

  /// The aggregate value; kUndefined for AVG/MIN/MAX over an empty input.
  Result<Value> Finish() const;

 private:
  AggKind kind_;
  Type attr_type_;
  uint64_t count_ = 0;       // CNT / AVG denominator.
  int64_t sum_int_ = 0;      // SUM for int and decimal (scaled).
  double sum_real_ = 0.0;    // SUM for real.
  bool has_extreme_ = false;
  Value extreme_;            // MIN/MAX candidate.
};

/// Computes one aggregate over a whole relation: f_p(E) of Definition 3.3.
Result<Value> Aggregate(AggKind kind, size_t attr, const Relation& input);

}  // namespace mra

#endif  // MRA_ALGEBRA_AGGREGATE_H_
