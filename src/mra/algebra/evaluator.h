// Reference (definitional) plan evaluation: walks a logical plan bottom-up,
// materialising every intermediate result with the operators of
// mra/algebra/ops.h.  Slow but a literal transcription of the paper's
// semantics — the physical executor and the optimizer are validated against
// it.

#ifndef MRA_ALGEBRA_EVALUATOR_H_
#define MRA_ALGEBRA_EVALUATOR_H_

#include <string>

#include "mra/algebra/plan.h"
#include "mra/core/relation.h"

namespace mra {

namespace stats {
struct TableStatistics;
}  // namespace stats

/// Resolves database relation names during evaluation.  Implemented by the
/// catalog and by transaction contexts (which overlay uncommitted state).
class RelationProvider {
 public:
  virtual ~RelationProvider() = default;

  /// The relation currently bound to `name`; NotFound if absent.  The
  /// returned pointer stays valid for the duration of the evaluation.
  virtual Result<const Relation*> GetRelation(const std::string& name) const = 0;

  /// The last ANALYZE snapshot for `name`, or nullptr when none was ever
  /// collected.  Providers without a statistics store (the default) return
  /// nullptr; the optimizer then falls back to scanning the live relation.
  virtual const stats::TableStatistics* GetStatistics(
      const std::string& name) const {
    (void)name;
    return nullptr;
  }
};

/// A provider with no relations — sufficient for plans built from ConstRel
/// nodes only.
class EmptyProvider final : public RelationProvider {
 public:
  Result<const Relation*> GetRelation(const std::string& name) const override {
    return Status::NotFound("no relation named " + name);
  }
};

/// Evaluates `plan` against the database visible through `provider`.
Result<Relation> EvaluatePlan(const Plan& plan,
                              const RelationProvider& provider);

}  // namespace mra

#endif  // MRA_ALGEBRA_EVALUATOR_H_
