#include "mra/algebra/evaluator.h"

#include "mra/algebra/closure.h"
#include "mra/algebra/ops.h"

namespace mra {

Result<Relation> EvaluatePlan(const Plan& plan,
                              const RelationProvider& provider) {
  switch (plan.kind()) {
    case PlanKind::kScan: {
      MRA_ASSIGN_OR_RETURN(const Relation* rel,
                           provider.GetRelation(plan.relation_name()));
      if (!rel->schema().CompatibleWith(plan.schema())) {
        return Status::Internal("relation " + plan.relation_name() +
                                " changed schema after planning");
      }
      return *rel;
    }
    case PlanKind::kConstRel:
      return plan.const_relation();
    case PlanKind::kUnion: {
      MRA_ASSIGN_OR_RETURN(Relation l, EvaluatePlan(*plan.child(0), provider));
      MRA_ASSIGN_OR_RETURN(Relation r, EvaluatePlan(*plan.child(1), provider));
      return ops::Union(l, r);
    }
    case PlanKind::kDifference: {
      MRA_ASSIGN_OR_RETURN(Relation l, EvaluatePlan(*plan.child(0), provider));
      MRA_ASSIGN_OR_RETURN(Relation r, EvaluatePlan(*plan.child(1), provider));
      return ops::Difference(l, r);
    }
    case PlanKind::kIntersect: {
      MRA_ASSIGN_OR_RETURN(Relation l, EvaluatePlan(*plan.child(0), provider));
      MRA_ASSIGN_OR_RETURN(Relation r, EvaluatePlan(*plan.child(1), provider));
      return ops::Intersect(l, r);
    }
    case PlanKind::kProduct: {
      MRA_ASSIGN_OR_RETURN(Relation l, EvaluatePlan(*plan.child(0), provider));
      MRA_ASSIGN_OR_RETURN(Relation r, EvaluatePlan(*plan.child(1), provider));
      return ops::Product(l, r);
    }
    case PlanKind::kJoin: {
      MRA_ASSIGN_OR_RETURN(Relation l, EvaluatePlan(*plan.child(0), provider));
      MRA_ASSIGN_OR_RETURN(Relation r, EvaluatePlan(*plan.child(1), provider));
      return ops::Join(plan.condition(), l, r);
    }
    case PlanKind::kSelect: {
      MRA_ASSIGN_OR_RETURN(Relation in, EvaluatePlan(*plan.child(0), provider));
      return ops::Select(plan.condition(), in);
    }
    case PlanKind::kProject: {
      MRA_ASSIGN_OR_RETURN(Relation in, EvaluatePlan(*plan.child(0), provider));
      // Preserve the attribute names chosen at plan-build time.
      std::vector<std::string> names;
      names.reserve(plan.schema().arity());
      for (const Attribute& a : plan.schema().attributes()) {
        names.push_back(a.name);
      }
      return ops::Project(plan.projections(), in, names);
    }
    case PlanKind::kUnique: {
      MRA_ASSIGN_OR_RETURN(Relation in, EvaluatePlan(*plan.child(0), provider));
      return ops::Unique(in);
    }
    case PlanKind::kGroupBy: {
      MRA_ASSIGN_OR_RETURN(Relation in, EvaluatePlan(*plan.child(0), provider));
      return ops::GroupBy(plan.group_keys(), plan.aggregates(), in);
    }
    case PlanKind::kClosure: {
      MRA_ASSIGN_OR_RETURN(Relation in, EvaluatePlan(*plan.child(0), provider));
      return ops::TransitiveClosure(in);
    }
    case PlanKind::kSort: {
      MRA_ASSIGN_OR_RETURN(Relation in, EvaluatePlan(*plan.child(0), provider));
      return ops::Sort(plan.sort_keys(), plan.sort_desc(), plan.sort_limit(),
                       in);
    }
  }
  return Status::Internal("bad plan kind");
}

}  // namespace mra
