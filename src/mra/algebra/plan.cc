#include "mra/algebra/plan.h"

#include <sstream>

#include "mra/algebra/closure.h"
#include "mra/algebra/ops.h"
#include "mra/expr/eval.h"

namespace mra {

std::string_view PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kScan:
      return "scan";
    case PlanKind::kConstRel:
      return "const";
    case PlanKind::kUnion:
      return "union";
    case PlanKind::kDifference:
      return "diff";
    case PlanKind::kIntersect:
      return "intersect";
    case PlanKind::kProduct:
      return "product";
    case PlanKind::kJoin:
      return "join";
    case PlanKind::kSelect:
      return "select";
    case PlanKind::kProject:
      return "project";
    case PlanKind::kUnique:
      return "unique";
    case PlanKind::kGroupBy:
      return "groupby";
    case PlanKind::kClosure:
      return "closure";
    case PlanKind::kSort:
      return "sort";
  }
  return "?";
}

PlanPtr Plan::Scan(std::string name, RelationSchema schema) {
  auto plan = std::shared_ptr<Plan>(new Plan(PlanKind::kScan));
  plan->relation_name_ = std::move(name);
  plan->schema_ = std::move(schema);
  return plan;
}

PlanPtr Plan::ConstRel(Relation relation) {
  auto plan = std::shared_ptr<Plan>(new Plan(PlanKind::kConstRel));
  plan->schema_ = relation.schema();
  plan->const_relation_ = std::move(relation);
  return plan;
}

namespace {

Status CheckSetOperands(const PlanPtr& left, const PlanPtr& right,
                        const char* op) {
  if (!left->schema().CompatibleWith(right->schema())) {
    return Status::InvalidArgument(
        std::string(op) + " requires operands of one schema, got " +
        left->schema().ToString() + " and " + right->schema().ToString());
  }
  return Status::OK();
}

}  // namespace

Result<PlanPtr> Plan::Union(PlanPtr left, PlanPtr right) {
  MRA_RETURN_IF_ERROR(CheckSetOperands(left, right, "union"));
  auto plan = std::shared_ptr<Plan>(new Plan(PlanKind::kUnion));
  plan->schema_ = left->schema();
  plan->children_ = {std::move(left), std::move(right)};
  return PlanPtr(plan);
}

Result<PlanPtr> Plan::Difference(PlanPtr left, PlanPtr right) {
  MRA_RETURN_IF_ERROR(CheckSetOperands(left, right, "diff"));
  auto plan = std::shared_ptr<Plan>(new Plan(PlanKind::kDifference));
  plan->schema_ = left->schema();
  plan->children_ = {std::move(left), std::move(right)};
  return PlanPtr(plan);
}

Result<PlanPtr> Plan::Intersect(PlanPtr left, PlanPtr right) {
  MRA_RETURN_IF_ERROR(CheckSetOperands(left, right, "intersect"));
  auto plan = std::shared_ptr<Plan>(new Plan(PlanKind::kIntersect));
  plan->schema_ = left->schema();
  plan->children_ = {std::move(left), std::move(right)};
  return PlanPtr(plan);
}

Result<PlanPtr> Plan::Product(PlanPtr left, PlanPtr right) {
  auto plan = std::shared_ptr<Plan>(new Plan(PlanKind::kProduct));
  plan->schema_ = left->schema().Concat(right->schema());
  plan->children_ = {std::move(left), std::move(right)};
  return PlanPtr(plan);
}

Result<PlanPtr> Plan::Join(ExprPtr condition, PlanPtr left, PlanPtr right) {
  RelationSchema joined = left->schema().Concat(right->schema());
  MRA_RETURN_IF_ERROR(CheckPredicate(condition, joined));
  auto plan = std::shared_ptr<Plan>(new Plan(PlanKind::kJoin));
  plan->schema_ = std::move(joined);
  plan->condition_ = std::move(condition);
  plan->children_ = {std::move(left), std::move(right)};
  return PlanPtr(plan);
}

Result<PlanPtr> Plan::Select(ExprPtr condition, PlanPtr input) {
  MRA_RETURN_IF_ERROR(CheckPredicate(condition, input->schema()));
  auto plan = std::shared_ptr<Plan>(new Plan(PlanKind::kSelect));
  plan->schema_ = input->schema();
  plan->condition_ = std::move(condition);
  plan->children_ = {std::move(input)};
  return PlanPtr(plan);
}

Result<PlanPtr> Plan::Project(std::vector<ExprPtr> exprs, PlanPtr input,
                              std::vector<std::string> names) {
  MRA_ASSIGN_OR_RETURN(RelationSchema schema,
                       InferProjectionSchema(exprs, input->schema(), names));
  auto plan = std::shared_ptr<Plan>(new Plan(PlanKind::kProject));
  plan->schema_ = std::move(schema);
  plan->projections_ = std::move(exprs);
  plan->children_ = {std::move(input)};
  return PlanPtr(plan);
}

Result<PlanPtr> Plan::ProjectIndexes(const std::vector<size_t>& indexes,
                                     PlanPtr input) {
  std::vector<ExprPtr> exprs;
  exprs.reserve(indexes.size());
  for (size_t i : indexes) exprs.push_back(Attr(i));
  return Project(std::move(exprs), std::move(input));
}

Result<PlanPtr> Plan::Unique(PlanPtr input) {
  auto plan = std::shared_ptr<Plan>(new Plan(PlanKind::kUnique));
  plan->schema_ = input->schema();
  plan->children_ = {std::move(input)};
  return PlanPtr(plan);
}

Result<PlanPtr> Plan::GroupBy(std::vector<size_t> keys,
                              std::vector<AggSpec> aggs, PlanPtr input) {
  MRA_ASSIGN_OR_RETURN(RelationSchema schema,
                       ops::GroupBySchema(keys, aggs, input->schema()));
  auto plan = std::shared_ptr<Plan>(new Plan(PlanKind::kGroupBy));
  plan->schema_ = std::move(schema);
  plan->group_keys_ = std::move(keys);
  plan->aggregates_ = std::move(aggs);
  plan->children_ = {std::move(input)};
  return PlanPtr(plan);
}

Result<PlanPtr> Plan::Sort(std::vector<size_t> keys, std::vector<bool> desc,
                           uint64_t limit, PlanPtr input) {
  if (keys.empty() && limit == 0) {
    return Status::InvalidArgument("sort requires keys or a limit");
  }
  if (desc.size() != keys.size()) {
    return Status::InvalidArgument("sort keys and desc flags differ in size");
  }
  for (size_t k : keys) {
    if (k >= input->schema().arity()) {
      return Status::InvalidArgument(
          "sort key %" + std::to_string(k + 1) + " out of range for schema " +
          input->schema().ToString());
    }
  }
  auto plan = std::shared_ptr<Plan>(new Plan(PlanKind::kSort));
  plan->schema_ = input->schema();
  plan->sort_keys_ = std::move(keys);
  plan->sort_desc_ = std::move(desc);
  plan->sort_limit_ = limit;
  plan->children_ = {std::move(input)};
  return PlanPtr(plan);
}

Result<PlanPtr> Plan::Closure(PlanPtr input) {
  MRA_RETURN_IF_ERROR(ops::CheckClosureInput(input->schema()));
  auto plan = std::shared_ptr<Plan>(new Plan(PlanKind::kClosure));
  plan->schema_ = input->schema();
  plan->children_ = {std::move(input)};
  return PlanPtr(plan);
}

namespace {

void RenderPayload(const Plan& plan, std::ostream& out) {
  switch (plan.kind()) {
    case PlanKind::kScan:
      out << " " << plan.relation_name();
      break;
    case PlanKind::kConstRel:
      out << " |" << plan.const_relation().size() << "|";
      break;
    case PlanKind::kSelect:
    case PlanKind::kJoin:
      out << " " << plan.condition()->ToString();
      break;
    case PlanKind::kProject: {
      out << " [";
      const auto& exprs = plan.projections();
      for (size_t i = 0; i < exprs.size(); ++i) {
        if (i > 0) out << ", ";
        out << exprs[i]->ToString();
      }
      out << "]";
      break;
    }
    case PlanKind::kGroupBy: {
      out << " [";
      const auto& keys = plan.group_keys();
      for (size_t i = 0; i < keys.size(); ++i) {
        if (i > 0) out << ", ";
        out << "%" << keys[i] + 1;
      }
      out << "], ";
      const auto& aggs = plan.aggregates();
      for (size_t i = 0; i < aggs.size(); ++i) {
        if (i > 0) out << ", ";
        out << AggKindName(aggs[i].kind) << "(%" << aggs[i].attr + 1 << ")";
      }
      break;
    }
    case PlanKind::kSort: {
      out << " [";
      const auto& keys = plan.sort_keys();
      const auto& desc = plan.sort_desc();
      for (size_t i = 0; i < keys.size(); ++i) {
        if (i > 0) out << ", ";
        if (desc[i]) out << "-";
        out << "%" << keys[i] + 1;
      }
      out << "]";
      if (plan.sort_limit() > 0) out << ", " << plan.sort_limit();
      break;
    }
    default:
      break;
  }
}

void RenderTree(const Plan& plan, int depth, std::ostream& out) {
  for (int i = 0; i < depth; ++i) out << "  ";
  out << PlanKindName(plan.kind());
  RenderPayload(plan, out);
  out << "\n";
  for (const PlanPtr& child : plan.children()) {
    RenderTree(*child, depth + 1, out);
  }
}

void RenderInline(const Plan& plan, std::ostream& out) {
  if (plan.kind() == PlanKind::kScan) {
    out << plan.relation_name();
    return;
  }
  out << PlanKindName(plan.kind()) << "(";
  bool first = true;
  std::ostringstream payload;
  RenderPayload(plan, payload);
  std::string p = payload.str();
  if (!p.empty()) {
    out << p.substr(1);  // Drop the leading space.
    first = false;
  }
  for (const PlanPtr& child : plan.children()) {
    if (!first) out << ", ";
    first = false;
    RenderInline(*child, out);
  }
  out << ")";
}

}  // namespace

std::string Plan::ToString() const {
  std::ostringstream out;
  RenderTree(*this, 0, out);
  return out.str();
}

std::string Plan::ToInlineString() const {
  std::ostringstream out;
  RenderInline(*this, out);
  return out.str();
}

bool PlanEquals(const PlanPtr& a, const PlanPtr& b) {
  if (a == b) return true;
  if (a->kind() != b->kind()) return false;
  if (a->num_children() != b->num_children()) return false;
  switch (a->kind()) {
    case PlanKind::kScan:
      if (a->relation_name() != b->relation_name()) return false;
      break;
    case PlanKind::kConstRel:
      if (!a->const_relation().Equals(b->const_relation())) return false;
      break;
    case PlanKind::kSelect:
    case PlanKind::kJoin:
      if (!ExprEquals(a->condition(), b->condition())) return false;
      break;
    case PlanKind::kProject: {
      const auto& ea = a->projections();
      const auto& eb = b->projections();
      if (ea.size() != eb.size()) return false;
      for (size_t i = 0; i < ea.size(); ++i) {
        if (!ExprEquals(ea[i], eb[i])) return false;
      }
      break;
    }
    case PlanKind::kGroupBy: {
      if (a->group_keys() != b->group_keys()) return false;
      const auto& ga = a->aggregates();
      const auto& gb = b->aggregates();
      if (ga.size() != gb.size()) return false;
      for (size_t i = 0; i < ga.size(); ++i) {
        if (ga[i].kind != gb[i].kind || ga[i].attr != gb[i].attr) return false;
      }
      break;
    }
    case PlanKind::kSort:
      if (a->sort_keys() != b->sort_keys() ||
          a->sort_desc() != b->sort_desc() ||
          a->sort_limit() != b->sort_limit()) {
        return false;
      }
      break;
    default:
      break;
  }
  for (size_t i = 0; i < a->num_children(); ++i) {
    if (!PlanEquals(a->child(i), b->child(i))) return false;
  }
  return true;
}

}  // namespace mra
