// Logical plans: extended relational algebra expressions as immutable trees
// (Definitions 3.1, 3.2 and 3.4).  A plan is what the XRA/SQL front ends
// produce, what the optimizer rewrites, and what the physical planner lowers
// to executable operators.  Every node carries its output schema, computed
// and type-checked at construction time by the builder functions below.

#ifndef MRA_ALGEBRA_PLAN_H_
#define MRA_ALGEBRA_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "mra/algebra/aggregate.h"
#include "mra/core/relation.h"
#include "mra/expr/scalar_expr.h"

namespace mra {

enum class PlanKind : uint8_t {
  kScan,        // a database relation (the base case of Definition 3.1)
  kConstRel,    // an inline multi-set literal
  kUnion,       // ⊎
  kDifference,  // −
  kIntersect,   // ∩
  kProduct,     // ×
  kJoin,        // ⋈_φ
  kSelect,      // σ_φ
  kProject,     // π_α (extended)
  kUnique,      // δ
  kGroupBy,     // Γ_{α,f,p}
  kClosure,     // transitive closure (§5 extension)
  kSort,        // ordered emission + optional weighted LIMIT (practical ext.)
};

std::string_view PlanKindName(PlanKind kind);

class Plan;
/// Shared immutable plan handle; rewrites rebuild nodes.
using PlanPtr = std::shared_ptr<const Plan>;

/// One logical operator node.  A single class (rather than a subclass per
/// operator) keeps rewrite code simple; payload accessors are checked
/// against the node kind.
class Plan {
 public:
  PlanKind kind() const { return kind_; }
  const RelationSchema& schema() const { return schema_; }

  const std::vector<PlanPtr>& children() const { return children_; }
  const PlanPtr& child(size_t i) const {
    MRA_CHECK_LT(i, children_.size());
    return children_[i];
  }
  size_t num_children() const { return children_.size(); }

  /// kScan: the database relation's name.
  const std::string& relation_name() const {
    MRA_CHECK(kind_ == PlanKind::kScan);
    return relation_name_;
  }
  /// kConstRel: the literal relation.
  const Relation& const_relation() const {
    MRA_CHECK(kind_ == PlanKind::kConstRel);
    return const_relation_;
  }
  /// kSelect / kJoin: the condition φ.
  const ExprPtr& condition() const {
    MRA_CHECK(kind_ == PlanKind::kSelect || kind_ == PlanKind::kJoin);
    return condition_;
  }
  /// kProject: the expression list α (Definition 3.4).
  const std::vector<ExprPtr>& projections() const {
    MRA_CHECK(kind_ == PlanKind::kProject);
    return projections_;
  }
  /// kGroupBy: the duplicate-free grouping attribute indexes α.
  const std::vector<size_t>& group_keys() const {
    MRA_CHECK(kind_ == PlanKind::kGroupBy);
    return group_keys_;
  }
  /// kGroupBy: the aggregates (f, p).
  const std::vector<AggSpec>& aggregates() const {
    MRA_CHECK(kind_ == PlanKind::kGroupBy);
    return aggregates_;
  }
  /// kSort: the 0-based sort key attribute indexes, major first.
  const std::vector<size_t>& sort_keys() const {
    MRA_CHECK(kind_ == PlanKind::kSort);
    return sort_keys_;
  }
  /// kSort: per-key descending flags (parallel to sort_keys()).
  const std::vector<bool>& sort_desc() const {
    MRA_CHECK(kind_ == PlanKind::kSort);
    return sort_desc_;
  }
  /// kSort: multiplicity-weighted row limit; 0 means no limit.
  uint64_t sort_limit() const {
    MRA_CHECK(kind_ == PlanKind::kSort);
    return sort_limit_;
  }

  /// Multi-line indented rendering using the paper's operator names.
  std::string ToString() const;
  /// Single-line algebra-style rendering, e.g.
  /// "project([%1], select((%6 = 'NL'), join((%2 = %4), beer, brewery)))".
  std::string ToInlineString() const;

  // --- Builders.  Each validates operand schemas / expression types. ---

  /// A database relation reference.  The caller resolves the schema (e.g.
  /// through the catalog); the name is kept for evaluation-time lookup.
  static PlanPtr Scan(std::string name, RelationSchema schema);
  /// An inline relation literal.
  static PlanPtr ConstRel(Relation relation);

  static Result<PlanPtr> Union(PlanPtr left, PlanPtr right);
  static Result<PlanPtr> Difference(PlanPtr left, PlanPtr right);
  static Result<PlanPtr> Intersect(PlanPtr left, PlanPtr right);
  static Result<PlanPtr> Product(PlanPtr left, PlanPtr right);
  static Result<PlanPtr> Join(ExprPtr condition, PlanPtr left, PlanPtr right);
  static Result<PlanPtr> Select(ExprPtr condition, PlanPtr input);
  static Result<PlanPtr> Project(std::vector<ExprPtr> exprs, PlanPtr input,
                                 std::vector<std::string> names = {});
  /// Convenience: plain attribute-list projection π_(%i1,…,%in).
  static Result<PlanPtr> ProjectIndexes(const std::vector<size_t>& indexes,
                                        PlanPtr input);
  static Result<PlanPtr> Unique(PlanPtr input);
  static Result<PlanPtr> GroupBy(std::vector<size_t> keys,
                                 std::vector<AggSpec> aggs, PlanPtr input);
  /// Transitive closure of a binary same-domain relation (§5 extension;
  /// result is duplicate-free, see mra/algebra/closure.h).
  static Result<PlanPtr> Closure(PlanPtr input);
  /// Ordered emission on `keys` (desc[i] flips key i), with an optional
  /// multiplicity-weighted LIMIT (0 = none).  As a *bag*, sort with no
  /// limit is the identity — the ordering is a property of the emitted
  /// stream, not of the multiset (Definition 2.1 relations are unordered);
  /// with a limit it denotes the deterministic weighted Top-K under
  /// (keys, then the full tuple ascending) with the boundary tuple's
  /// multiplicity clamped.
  static Result<PlanPtr> Sort(std::vector<size_t> keys,
                              std::vector<bool> desc, uint64_t limit,
                              PlanPtr input);

 private:
  explicit Plan(PlanKind kind) : kind_(kind) {}

  PlanKind kind_;
  RelationSchema schema_;
  std::vector<PlanPtr> children_;

  std::string relation_name_;
  Relation const_relation_;
  ExprPtr condition_;
  std::vector<ExprPtr> projections_;
  std::vector<size_t> group_keys_;
  std::vector<AggSpec> aggregates_;
  std::vector<size_t> sort_keys_;
  std::vector<bool> sort_desc_;
  uint64_t sort_limit_ = 0;
};

/// Structural plan equality (schemas, payloads and children).
bool PlanEquals(const PlanPtr& a, const PlanPtr& b);

}  // namespace mra

#endif  // MRA_ALGEBRA_PLAN_H_
