#include "mra/catalog/catalog.h"

namespace mra {

Status Catalog::CreateRelation(RelationSchema schema) {
  if (schema.name().empty()) {
    return Status::InvalidArgument(
        "database relations must be named (Definition 2.5)");
  }
  std::string name = schema.name();
  auto [it, inserted] =
      relations_.try_emplace(name, Relation(std::move(schema)));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("relation " + name + " already exists");
  }
  return Status::OK();
}

Status Catalog::DropRelation(const std::string& name) {
  if (relations_.erase(name) == 0) {
    return Status::NotFound("no relation named " + name);
  }
  statistics_.erase(name);
  return Status::OK();
}

Status Catalog::SetStatistics(const std::string& name,
                              stats::TableStatistics stats) {
  if (relations_.count(name) == 0) {
    return Status::NotFound("no relation named " + name);
  }
  statistics_[name] = std::move(stats);
  return Status::OK();
}

const stats::TableStatistics* Catalog::GetStatistics(
    const std::string& name) const {
  auto it = statistics_.find(name);
  return it == statistics_.end() ? nullptr : &it->second;
}

Result<const Relation*> Catalog::GetRelation(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named " + name);
  }
  return &it->second;
}

Result<Relation*> Catalog::GetMutableRelation(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named " + name);
  }
  return &it->second;
}

Status Catalog::SetRelation(const std::string& name, Relation relation) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named " + name);
  }
  if (!it->second.schema().CompatibleWith(relation.schema())) {
    return Status::InvalidArgument(
        "assignment to " + name + " with incompatible schema " +
        relation.schema().ToString());
  }
  relation.set_schema_name(name);
  it->second = std::move(relation);
  return Status::OK();
}

std::vector<std::string> Catalog::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

}  // namespace mra
