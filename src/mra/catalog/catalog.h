// Database schemas and instances (Definitions 2.5 and 2.6): a set of named
// relation schemas together with their current instances and the logical
// time of the state.  Catalog is the in-memory "database state" D_t; the
// transaction layer (mra/txn) layers atomicity and durability on top.

#ifndef MRA_CATALOG_CATALOG_H_
#define MRA_CATALOG_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "mra/algebra/evaluator.h"
#include "mra/common/result.h"
#include "mra/core/relation.h"
#include "mra/stats/table_statistics.h"

namespace mra {

/// A database state: named relations plus logical time.
class Catalog final : public RelationProvider {
 public:
  Catalog() = default;

  /// Adds an empty relation for `schema`.  The schema must carry a name
  /// (Definition 2.5: relations in a database are addressed by name);
  /// duplicates are AlreadyExists.
  Status CreateRelation(RelationSchema schema);

  Status DropRelation(const std::string& name);

  bool HasRelation(const std::string& name) const {
    return relations_.count(name) > 0;
  }

  /// RelationProvider: resolves a name to its current instance.
  Result<const Relation*> GetRelation(const std::string& name) const override;

  /// Mutable access for the statement layer.
  Result<Relation*> GetMutableRelation(const std::string& name);

  /// Replaces the instance bound to `name` (the ← of Definition 4.1).  The
  /// new instance must be schema-compatible with the declared schema.
  Status SetRelation(const std::string& name, Relation relation);

  /// Names of all relations, sorted (a database schema is a *set* of
  /// relation schemas; sorting only fixes iteration order).
  std::vector<std::string> RelationNames() const;

  size_t relation_count() const { return relations_.size(); }

  /// Installs an ANALYZE snapshot for `name` (NotFound if the relation does
  /// not exist).  Statistics are advisory: they go stale rather than invalid
  /// when the instance changes, and are dropped with the relation.
  Status SetStatistics(const std::string& name, stats::TableStatistics stats);

  /// RelationProvider: the last snapshot for `name`, or nullptr.
  const stats::TableStatistics* GetStatistics(
      const std::string& name) const override;

  /// All stored snapshots, for checkpoint serialization (sorted by name).
  const std::map<std::string, stats::TableStatistics>& statistics() const {
    return statistics_;
  }

  /// The logical time t of this state (Definition 2.6).
  uint64_t logical_time() const { return logical_time_; }
  /// Installs the next state: a single-step transition D_t → D_{t+1}.
  void AdvanceTime() { ++logical_time_; }
  void set_logical_time(uint64_t t) { logical_time_ = t; }

  /// Deep copy of the whole state (used for transaction snapshots and for
  /// the pre/post states of a transition).
  Catalog Clone() const { return *this; }

 private:
  // std::map keeps deterministic iteration for serialization and printing.
  std::map<std::string, Relation> relations_;
  std::map<std::string, stats::TableStatistics> statistics_;
  uint64_t logical_time_ = 0;
};

}  // namespace mra

#endif  // MRA_CATALOG_CATALOG_H_
