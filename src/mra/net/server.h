// A multi-threaded TCP query server over one shared Database.
//
// Architecture: one accept thread plus one thread per connected session.
// Each session owns a lang::Interpreter (with block_on_txn_slot set, so
// concurrent transaction brackets queue on the database's serial slot
// instead of bouncing) and speaks the frame protocol of net/protocol.h.
//
// Robustness limits, all configurable through ServerOptions:
//  * max_sessions       — the accept thread stops pulling connections once
//                         this many sessions are live; further clients
//                         queue in the kernel backlog (accept_backlog) —
//                         backpressure, not rejection;
//  * shed_grace_ms      — how long the accept loop tolerates sitting at the
//                         session cap before it degrades gracefully: queued
//                         connections are then accepted, answered with a
//                         Busy frame carrying busy_retry_after_ms, and
//                         closed (shed, not served), until a slot frees.
//                         Negative disables shedding (pure backpressure);
//  * max_frame_bytes    — a header announcing more is answered with an
//                         Error frame and the connection is closed before
//                         any payload is read;
//  * request_timeout_ms — bounds each network read of a request and the
//                         total handling time.  Since protocol v4 the
//                         deadline preempts a running plan: it arms the
//                         per-query governance deadline (unless the
//                         interpreter options set their own statement
//                         timeout), so an over-deadline query is killed at
//                         its next batch boundary with kDeadlineExceeded —
//                         carrying the same retry-after hint a Busy frame
//                         does — instead of pinning the worker thread.
//                         The post-execution check remains as a backstop
//                         for time lost outside the governed plan;
//  * idle_timeout_ms    — sessions with no frame for this long are reaped.
//
// Query governance (docs/GOVERNANCE.md): every Query/Script execution is
// registered in a server-wide running-query registry keyed by its query
// id, so a v4 Cancel frame — from any session — trips the cooperative
// cancellation flag of the matching in-flight plan (`\cancel <id>`).
//
// Shutdown is drain-then-stop: RequestShutdown() (also triggered by a
// client Shutdown frame) stops the accept loop; sessions finish the
// request in flight, then close.  Shutdown() blocks until every session
// thread is joined.  Metrics land in obs::MetricsRegistry::Global() under
// the net.* prefix (catalog in docs/OBSERVABILITY.md).

#ifndef MRA_NET_SERVER_H_
#define MRA_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mra/lang/interpreter.h"
#include "mra/net/protocol.h"
#include "mra/net/socket.h"
#include "mra/txn/database.h"

namespace mra {
namespace net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; Server::port() reports the resolved one.
  uint16_t port = 0;
  /// Cap on concurrently served sessions (thread-per-connection).
  int max_sessions = 64;
  /// Kernel accept-queue bound: clients beyond max_sessions wait here.
  int accept_backlog = 16;
  /// At the session cap, wait this long for a slot before shedding queued
  /// connections with a Busy frame.  Short cap-holds still queue (clients
  /// see backpressure, not errors); sustained overload sheds.  Negative
  /// disables shedding entirely.
  int shed_grace_ms = 1'000;
  /// Retry-after hint carried in Busy frames sent while shedding.
  uint32_t busy_retry_after_ms = 200;
  uint32_t max_frame_bytes = 16u << 20;
  int request_timeout_ms = 30'000;
  /// 0 disables idle reaping.
  int idle_timeout_ms = 300'000;
  /// Per-session interpreter configuration.  block_on_txn_slot is forced
  /// on regardless: concurrent brackets must queue, not error.
  lang::InterpreterOptions interpreter;
};

class Server {
 public:
  /// The database must outlive the server.
  explicit Server(Database* db, ServerOptions options = {});

  /// Stops and joins everything (Shutdown()).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listener and starts the accept thread.
  Status Start();

  /// Resolved listen port (after Start()).
  uint16_t port() const { return port_; }

  /// Non-blocking shutdown trigger: stop accepting, ask sessions to drain.
  /// Safe from any thread, including a session's own (a Shutdown frame).
  void RequestShutdown();

  /// RequestShutdown() + blocks until the accept thread and every session
  /// have exited.  Idempotent; called by the destructor.
  void Shutdown();

  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  /// Live sessions right now (0 after Shutdown()).
  int active_sessions() const;

  /// Total sessions ever accepted.
  uint64_t sessions_served() const;

 private:
  /// Live-introspection record for one session, published through the
  /// ServerStats request.  Guarded by info_mutex_ (not mutex_, so a slow
  /// stats reader never delays accept/drain bookkeeping).
  struct SessionInfo {
    std::string peer;
    std::string current_query;  // Truncated; empty when idle.
    bool busy = false;
    uint64_t queries = 0;
    uint64_t last_latency_us = 0;
    uint64_t last_active_us = 0;  // Steady-clock µs of the last request.
  };

  /// Per-session connection state threaded through HandleFrame.
  struct SessionContext {
    uint64_t id = 0;
    /// Version negotiated in the Hello exchange; v2 peers get the old
    /// payload shapes (raw-text Query/Script, trailer-free ResultSet).
    uint32_t version = kProtocolVersion;
  };

  void AcceptLoop();
  void RunSession(uint64_t session_id, Socket sock);

  /// Handles one request frame; returns false when the session must close
  /// (shutdown ack, protocol violation, send failure).
  bool HandleFrame(SessionContext& ctx, lang::Interpreter& interp,
                   const Frame& request, Socket& sock);

  /// Builds the ServerStats reply (`query_id` filters the trace spans).
  ServerStatsReply BuildServerStats(uint64_t query_id) const;

  /// Sends a frame, counting bytes; false on send failure.
  bool Send(Socket& sock, FrameKind kind, std::string_view payload);

  /// Joins session threads that have finished (mutex_ must be held).
  void ReapFinishedLocked();

  Database* db_;
  ServerOptions options_;
  Listener listener_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  uint64_t start_us_ = 0;  // Steady-clock µs at Start(), for uptime.

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<uint64_t, std::thread> sessions_;  // Running or finished.
  std::vector<uint64_t> finished_;            // Ready to join.
  int active_ = 0;
  uint64_t next_session_id_ = 1;
  uint64_t sessions_served_ = 0;
  bool joined_ = false;

  mutable std::mutex info_mutex_;
  std::map<uint64_t, SessionInfo> session_info_;

  /// query_id → the interpreter evaluating it right now, so a Cancel
  /// frame from any session reaches the plan mid-flight.  An entry lives
  /// exactly as long as its HandleFrame execution, which also keeps the
  /// Interpreter pointer valid.  Guarded by running_mutex_.
  mutable std::mutex running_mutex_;
  std::map<uint64_t, lang::Interpreter*> running_;
};

}  // namespace net
}  // namespace mra

#endif  // MRA_NET_SERVER_H_
