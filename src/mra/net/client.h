// Blocking client for the mra query server: connects, handshakes, and
// exposes the request kinds as typed calls.  Results arrive as ordinary
// mra::Relation values — the same bytes the storage layer would write to
// a checkpoint.  Not thread-safe; use one Client per thread.
//
// Robustness: with max_retries > 0 the client retries *idempotent*
// (read-only) requests — Query, Stats, Ping — and the Connect handshake
// after retriable failures, reconnecting automatically when the
// connection died.  Retriable means a transport fault (IoError: refused,
// reset, timed out, torn frame) or the server shedding load (a Busy frame,
// surfaced as Unavailable with a retry-after hint that floors the
// backoff).  A protocol-version mismatch also surfaces as Unavailable
// (this server cannot serve the client's dialect); with retries off — the
// default — it reaches the caller directly.  Protocol errors — bad CRC,
// malformed payloads (Corruption / InvalidArgument) — and server-side
// evaluation errors are fatal: retrying cannot fix them and mutating
// requests (Script, Shutdown) are never retried because the first attempt
// may have executed.

#ifndef MRA_NET_CLIENT_H_
#define MRA_NET_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "mra/common/result.h"
#include "mra/core/relation.h"
#include "mra/net/protocol.h"
#include "mra/net/socket.h"

namespace mra {
namespace net {

struct ClientOptions {
  /// Bounds every network wait (connect-to-response); < 0 waits forever.
  int io_timeout_ms = 30'000;
  uint32_t max_frame_bytes = 16u << 20;
  /// Reported to the server in the Hello handshake.
  std::string client_name = "mra-client";
  /// Retries after a retriable failure, for idempotent requests and the
  /// Connect handshake only (see the header comment).  0 disables.
  int max_retries = 0;
  /// Exponential backoff with jitter: attempt k sleeps a uniform-random
  /// time in [d/2, d] where d = min(retry_cap_ms, retry_base_ms << k),
  /// floored by the server's Busy retry-after hint when one arrived.
  int retry_base_ms = 10;
  int retry_cap_ms = 2'000;
  /// Cooperative interrupt token (e.g. flipped by a SIGINT handler — the
  /// store is async-signal-safe).  While a response is pending the client
  /// polls it between short waits; on true it is consumed (reset to
  /// false) and the in-flight query is cancelled out-of-band: a
  /// short-lived side connection sends a v4 Cancel frame for the last
  /// minted query id, then the original wait continues — the killed
  /// query answers with its kCancelled Error.  Null disables polling.
  std::shared_ptr<std::atomic<bool>> interrupt;
};

class Client {
 public:
  /// Connects and performs the Hello handshake; fails on a version
  /// mismatch (the server's Error status is passed through).
  static Result<Client> Connect(const std::string& host, uint16_t port,
                                ClientOptions options = {});

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Evaluates one XRA relation expression server-side.
  Result<Relation> Query(std::string_view rel_expr_source);

  /// Runs a whole XRA script server-side (statements, brackets, DDL);
  /// returns every `? E` result in order.  A failing bracket rolls back
  /// server-side and surfaces here as its Status.
  Result<std::vector<Relation>> ExecuteScript(std::string_view source);

  /// The server's metrics registry export.  `format` selects the dialect:
  /// "" or "json" (default), "prom" (Prometheus exposition), "text".
  Result<std::string> ServerStats(std::string_view format = {});

  /// Live-introspection snapshot (v3 servers): sessions, latency
  /// histogram, slow-query log, trace spans.  `query_id` filters the
  /// trace to one query; 0 asks for the overview.  Read-only, so retried
  /// like Query.  InvalidArgument against a v2 server.
  Result<ServerStatsReply> FetchServerStats(uint64_t query_id = 0);

  /// Round-trip liveness probe (payload echoed server-side).
  Status Ping();

  /// Asks the server to kill the in-flight query with this client-minted
  /// id (v4 servers; see last_query_id()).  Works from any session —
  /// this is how `\cancel <id>` reaches a query another connection runs.
  /// Returns whether the id matched a running query; false means it
  /// already finished (or never started), which is not an error.
  Result<bool> Cancel(uint64_t query_id);

  /// Asks the server to drain and stop.  Returns once the ack arrives.
  Status RequestShutdown();

  /// Server banner from the handshake, e.g. "mra_serverd".
  const std::string& server_banner() const { return server_banner_; }
  /// The negotiated protocol version (min of both dialects); payload
  /// shapes downgrade to v2 automatically when the server is older.
  uint32_t server_version() const { return server_version_; }

  /// The id this client minted for its most recent Query/ExecuteScript
  /// (0 before the first one, or when the server predates v3).  Feed it
  /// to FetchServerStats() to pull that query's server-side trace.
  uint64_t last_query_id() const { return last_query_id_; }

  /// Server-side stats trailer from the most recent Query/ExecuteScript
  /// response; empty against a v2 server or when the server sent none.
  const std::optional<WireQueryStats>& last_query_stats() const {
    return last_query_stats_;
  }

  bool connected() const { return sock_.valid(); }
  void Close() { sock_.Close(); }

  /// The retry-after hint (ms) from the most recent Busy shed notice the
  /// server sent this client; 0 when none arrived yet.
  uint32_t last_busy_retry_after_ms() const { return busy_hint_ms_; }

  /// True when `status` is worth retrying: a transport fault (IoError) or
  /// the server shedding load (Unavailable).  Protocol and evaluation
  /// errors are fatal.
  static bool IsRetriable(const Status& status);

 private:
  Client(ClientOptions options, std::string host, uint16_t port)
      : options_(std::move(options)),
        host_(std::move(host)),
        port_(port),
        rng_(std::random_device{}()) {}

  /// Sends one request frame and reads the response; an Error response is
  /// unwrapped into its transported Status, a Busy response into
  /// Unavailable (stashing the retry-after hint).
  Result<Frame> RoundTrip(FrameKind kind, std::string_view payload);

  /// RoundTrip plus the retry/reconnect loop, for idempotent kinds only.
  Result<Frame> RetryingRoundTrip(FrameKind kind, std::string_view payload);

  /// (Re)establishes the connection and redoes the Hello handshake.
  Status Reconnect();

  /// Sleeps the jittered exponential backoff for retry attempt `attempt`.
  void BackoffSleep(int attempt);

  /// Reads the response frame.  With an interrupt token armed this polls
  /// readability in short slices so a flipped token turns into an
  /// out-of-band Cancel of the in-flight query (then keeps waiting).
  Result<Frame> AwaitResponse();

  /// Best-effort psql-style cancel: the session socket is mid-response,
  /// so the Cancel frame travels on an ephemeral side connection.
  void SendOutOfBandCancel(uint64_t query_id);

  /// Decodes a ResultSet response at the negotiated version, stashing the
  /// v3 stats trailer (when present) into last_query_stats_.
  Result<std::vector<Relation>> DecodeResults(const Frame& response);

  Socket sock_;
  ClientOptions options_;
  std::string host_;
  uint16_t port_ = 0;
  std::string server_banner_;
  uint32_t server_version_ = 0;
  uint32_t busy_hint_ms_ = 0;
  uint64_t last_query_id_ = 0;
  std::optional<WireQueryStats> last_query_stats_;
  std::mt19937 rng_;
};

/// Parses "host:port" (e.g. "127.0.0.1:7411", "[::1]:7411", "db.example:7411").
Result<std::pair<std::string, uint16_t>> ParseHostPort(std::string_view spec);

}  // namespace net
}  // namespace mra

#endif  // MRA_NET_CLIENT_H_
