// Blocking client for the mra query server: connects, handshakes, and
// exposes the request kinds as typed calls.  Results arrive as ordinary
// mra::Relation values — the same bytes the storage layer would write to
// a checkpoint.  Not thread-safe; use one Client per thread.

#ifndef MRA_NET_CLIENT_H_
#define MRA_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "mra/common/result.h"
#include "mra/core/relation.h"
#include "mra/net/protocol.h"
#include "mra/net/socket.h"

namespace mra {
namespace net {

struct ClientOptions {
  /// Bounds every network wait (connect-to-response); < 0 waits forever.
  int io_timeout_ms = 30'000;
  uint32_t max_frame_bytes = 16u << 20;
  /// Reported to the server in the Hello handshake.
  std::string client_name = "mra-client";
};

class Client {
 public:
  /// Connects and performs the Hello handshake; fails on a version
  /// mismatch (the server's Error status is passed through).
  static Result<Client> Connect(const std::string& host, uint16_t port,
                                ClientOptions options = {});

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Evaluates one XRA relation expression server-side.
  Result<Relation> Query(std::string_view rel_expr_source);

  /// Runs a whole XRA script server-side (statements, brackets, DDL);
  /// returns every `? E` result in order.  A failing bracket rolls back
  /// server-side and surfaces here as its Status.
  Result<std::vector<Relation>> ExecuteScript(std::string_view source);

  /// The server's metrics registry as JSON (net.*, exec.*, txn.*, …).
  Result<std::string> ServerStats();

  /// Round-trip liveness probe (payload echoed server-side).
  Status Ping();

  /// Asks the server to drain and stop.  Returns once the ack arrives.
  Status RequestShutdown();

  /// Server banner from the handshake, e.g. "mra_serverd".
  const std::string& server_banner() const { return server_banner_; }
  uint32_t server_version() const { return server_version_; }

  bool connected() const { return sock_.valid(); }
  void Close() { sock_.Close(); }

 private:
  Client(Socket sock, ClientOptions options)
      : sock_(std::move(sock)), options_(std::move(options)) {}

  /// Sends one request frame and reads the response; an Error response is
  /// unwrapped into its transported Status.
  Result<Frame> RoundTrip(FrameKind kind, std::string_view payload);

  Socket sock_;
  ClientOptions options_;
  std::string server_banner_;
  uint32_t server_version_ = 0;
};

/// Parses "host:port" (e.g. "127.0.0.1:7411", "[::1]:7411", "db.example:7411").
Result<std::pair<std::string, uint16_t>> ParseHostPort(std::string_view spec);

}  // namespace net
}  // namespace mra

#endif  // MRA_NET_CLIENT_H_
