#include "mra/net/protocol.h"

#include <algorithm>
#include <utility>

#include "mra/net/socket.h"
#include "mra/storage/serializer.h"

namespace mra {
namespace net {

namespace {

// Sanity bound on ResultSet cardinality: a response cannot carry more
// relations than one byte per relation would allow, so a corrupt count is
// refused before the decode loop spins.
constexpr uint32_t kMaxRelationsPerResultSet = 1u << 20;

}  // namespace

std::string_view FrameKindName(FrameKind kind) {
  switch (kind) {
    case FrameKind::kHello:
      return "Hello";
    case FrameKind::kQuery:
      return "Query";
    case FrameKind::kScript:
      return "Script";
    case FrameKind::kResultSet:
      return "ResultSet";
    case FrameKind::kError:
      return "Error";
    case FrameKind::kStats:
      return "Stats";
    case FrameKind::kPing:
      return "Ping";
    case FrameKind::kShutdown:
      return "Shutdown";
    case FrameKind::kBusy:
      return "Busy";
    case FrameKind::kServerStats:
      return "ServerStats";
    case FrameKind::kCancel:
      return "Cancel";
  }
  return "?";
}

bool IsValidFrameKind(uint8_t kind) {
  return kind >= static_cast<uint8_t>(FrameKind::kHello) &&
         kind <= static_cast<uint8_t>(FrameKind::kCancel);
}

std::string EncodeFrame(FrameKind kind, std::string_view payload) {
  // CRC covers the kind byte and the payload, so a frame whose kind byte
  // was flipped in flight fails the check even though the length is fine.
  storage::Encoder crc_input;
  crc_input.PutU8(static_cast<uint8_t>(kind));
  std::string crc_buffer = crc_input.TakeBuffer();
  crc_buffer.append(payload.data(), payload.size());
  uint32_t crc = storage::Crc32(crc_buffer);

  storage::Encoder enc;
  enc.PutU32(kMagic);
  enc.PutU8(static_cast<uint8_t>(kind));
  enc.PutU32(static_cast<uint32_t>(payload.size()));
  enc.PutU32(crc);
  std::string out = enc.TakeBuffer();
  out.append(payload.data(), payload.size());
  return out;
}

Result<FrameHeader> ParseFrameHeader(std::string_view header,
                                     const WireLimits& limits) {
  if (header.size() != kFrameHeaderBytes) {
    return Status::Corruption("frame header must be " +
                              std::to_string(kFrameHeaderBytes) + " bytes");
  }
  storage::Decoder dec(header);
  MRA_ASSIGN_OR_RETURN(uint32_t magic, dec.GetU32());
  if (magic != kMagic) {
    return Status::Corruption("bad frame magic (not an mra peer?)");
  }
  MRA_ASSIGN_OR_RETURN(uint8_t kind, dec.GetU8());
  if (!IsValidFrameKind(kind)) {
    return Status::Corruption("unknown frame kind " + std::to_string(kind));
  }
  FrameHeader out;
  out.kind = static_cast<FrameKind>(kind);
  MRA_ASSIGN_OR_RETURN(out.payload_len, dec.GetU32());
  MRA_ASSIGN_OR_RETURN(out.crc, dec.GetU32());
  if (out.payload_len > limits.max_frame_bytes) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(out.payload_len) +
        " bytes exceeds the " + std::to_string(limits.max_frame_bytes) +
        "-byte limit");
  }
  return out;
}

Status CheckFramePayload(const FrameHeader& header, std::string_view payload) {
  if (payload.size() != header.payload_len) {
    return Status::Corruption("frame payload length mismatch");
  }
  storage::Encoder crc_input;
  crc_input.PutU8(static_cast<uint8_t>(header.kind));
  std::string crc_buffer = crc_input.TakeBuffer();
  crc_buffer.append(payload.data(), payload.size());
  if (storage::Crc32(crc_buffer) != header.crc) {
    return Status::Corruption("frame CRC mismatch");
  }
  return Status::OK();
}

Result<Frame> DecodeFrame(std::string_view data, const WireLimits& limits) {
  if (data.size() < kFrameHeaderBytes) {
    return Status::Corruption("truncated frame header");
  }
  MRA_ASSIGN_OR_RETURN(
      FrameHeader header,
      ParseFrameHeader(data.substr(0, kFrameHeaderBytes), limits));
  std::string_view payload = data.substr(kFrameHeaderBytes);
  if (payload.size() < header.payload_len) {
    return Status::Corruption("truncated frame payload");
  }
  if (payload.size() > header.payload_len) {
    return Status::Corruption("trailing bytes after frame payload");
  }
  MRA_RETURN_IF_ERROR(CheckFramePayload(header, payload));
  return Frame{header.kind, std::string(payload)};
}

Result<size_t> WriteFrame(Socket& sock, FrameKind kind,
                          std::string_view payload) {
  std::string wire = EncodeFrame(kind, payload);
  MRA_RETURN_IF_ERROR(sock.SendAll(wire));
  return wire.size();
}

Result<Frame> ReadFrame(Socket& sock, const WireLimits& limits,
                        int timeout_ms) {
  MRA_ASSIGN_OR_RETURN(std::string header_bytes,
                       sock.RecvExact(kFrameHeaderBytes, timeout_ms));
  MRA_ASSIGN_OR_RETURN(FrameHeader header,
                       ParseFrameHeader(header_bytes, limits));
  std::string payload;
  if (header.payload_len > 0) {
    MRA_ASSIGN_OR_RETURN(payload,
                         sock.RecvExact(header.payload_len, timeout_ms));
  }
  MRA_RETURN_IF_ERROR(CheckFramePayload(header, payload));
  return Frame{header.kind, std::move(payload)};
}

std::string EncodeHello(uint32_t version, std::string_view peer) {
  storage::Encoder enc;
  enc.PutU32(version);
  enc.PutString(peer);
  return enc.TakeBuffer();
}

Result<Hello> DecodeHello(std::string_view payload) {
  storage::Decoder dec(payload);
  Hello out;
  MRA_ASSIGN_OR_RETURN(out.version, dec.GetU32());
  MRA_ASSIGN_OR_RETURN(out.peer, dec.GetString());
  if (!dec.AtEnd()) {
    return Status::Corruption("trailing bytes in Hello payload");
  }
  return out;
}

std::string EncodeError(const Status& status) {
  storage::Encoder enc;
  enc.PutU8(static_cast<uint8_t>(status.code()));
  enc.PutString(status.message());
  return enc.TakeBuffer();
}

std::string EncodeErrorWithHint(const Status& status,
                                uint32_t retry_after_ms) {
  if (retry_after_ms == 0) return EncodeError(status);
  storage::Encoder enc;
  enc.PutU8(static_cast<uint8_t>(status.code()));
  enc.PutString(status.message());
  enc.PutU32(retry_after_ms);
  return enc.TakeBuffer();
}

Result<ErrorNotice> DecodeErrorNotice(std::string_view payload) {
  storage::Decoder dec(payload);
  Result<uint8_t> code = dec.GetU8();
  if (!code.ok()) return code.status();
  Result<std::string> message = dec.GetString();
  if (!message.ok()) return message.status();
  ErrorNotice notice;
  if (!dec.AtEnd()) {
    // The optional v4 retry-after hint is exactly one trailing u32;
    // anything else trailing is still malformed.
    Result<uint32_t> hint = dec.GetU32();
    if (!hint.ok() || !dec.AtEnd()) {
      return Status::Corruption("malformed Error payload");
    }
    notice.retry_after_ms = *hint;
  }
  if (*code == 0 ||
      *code > static_cast<uint8_t>(StatusCode::kResourceExhausted)) {
    return Status::Corruption("malformed Error payload");
  }
  notice.status = Status(static_cast<StatusCode>(*code), *std::move(message));
  return notice;
}

Status DecodeError(std::string_view payload) {
  Result<ErrorNotice> notice = DecodeErrorNotice(payload);
  if (!notice.ok()) return notice.status();
  return notice->status;
}

std::string EncodeCancelRequest(uint64_t query_id) {
  storage::Encoder enc;
  enc.PutU64(query_id);
  return enc.TakeBuffer();
}

Result<uint64_t> DecodeCancelRequest(std::string_view payload) {
  storage::Decoder dec(payload);
  Result<uint64_t> query_id = dec.GetU64();
  if (!query_id.ok() || !dec.AtEnd() || *query_id == 0) {
    return Status::Corruption("malformed Cancel payload");
  }
  return *query_id;
}

std::string EncodeCancelReply(bool delivered) {
  storage::Encoder enc;
  enc.PutU8(delivered ? 1 : 0);
  return enc.TakeBuffer();
}

Result<bool> DecodeCancelReply(std::string_view payload) {
  storage::Decoder dec(payload);
  Result<uint8_t> delivered = dec.GetU8();
  if (!delivered.ok() || !dec.AtEnd() || *delivered > 1) {
    return Status::Corruption("malformed Cancel reply");
  }
  return *delivered == 1;
}

namespace {

void EncodeRelations(storage::Encoder& enc,
                     const std::vector<Relation>& relations) {
  enc.PutU32(static_cast<uint32_t>(relations.size()));
  for (const Relation& r : relations) {
    enc.PutSchema(r.schema());
    // Chunked row encoding (protocol v2): the sorted entries stream out in
    // batches of kResultSetChunkRows, each prefixed with its row count, so
    // a streaming server can flush per executor RowBatch without knowing
    // the total cardinality up front.  SortedEntries keeps the bytes
    // deterministic for a given relation.
    const std::vector<std::pair<Tuple, uint64_t>> entries = r.SortedEntries();
    for (size_t begin = 0; begin < entries.size();
         begin += kResultSetChunkRows) {
      size_t end = std::min<size_t>(begin + kResultSetChunkRows,
                                    entries.size());
      enc.PutU32(static_cast<uint32_t>(end - begin));
      for (size_t j = begin; j < end; ++j) {
        enc.PutTuple(entries[j].first);
        enc.PutU64(entries[j].second);
      }
    }
    enc.PutU32(0);  // end-of-relation terminator
  }
}

Result<std::vector<Relation>> DecodeRelations(storage::Decoder& dec) {
  MRA_ASSIGN_OR_RETURN(uint32_t n, dec.GetU32());
  if (n > kMaxRelationsPerResultSet) {
    return Status::Corruption("implausible ResultSet cardinality");
  }
  std::vector<Relation> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    MRA_ASSIGN_OR_RETURN(RelationSchema schema, dec.GetSchema());
    Relation r(std::move(schema));
    while (true) {
      MRA_ASSIGN_OR_RETURN(uint32_t k, dec.GetU32());
      if (k == 0) break;
      // A corrupt, huge k fails fast at the first short GetTuple — every
      // row costs at least one byte, so no allocation happens up front.
      for (uint32_t j = 0; j < k; ++j) {
        MRA_ASSIGN_OR_RETURN(Tuple t, dec.GetTuple());
        MRA_ASSIGN_OR_RETURN(uint64_t count, dec.GetU64());
        if (count == 0) {
          return Status::Corruption("zero multiplicity in ResultSet chunk");
        }
        MRA_RETURN_IF_ERROR(r.Insert(std::move(t), count));
      }
    }
    out.push_back(std::move(r));
  }
  return out;
}

void EncodeWireQueryStats(storage::Encoder& enc, const WireQueryStats& s) {
  enc.PutU64(s.query_id);
  enc.PutU64(s.result_rows);
  enc.PutU64(s.total_us);
  enc.PutU64(s.bind_us);
  enc.PutU64(s.optimize_us);
  enc.PutU64(s.lower_us);
  enc.PutU64(s.exec_us);
  enc.PutU32(static_cast<uint32_t>(s.operators.size()));
  for (const WireOpStats& op : s.operators) {
    enc.PutString(op.name);
    enc.PutU32(op.depth);
    enc.PutDouble(op.estimated_rows);
    enc.PutU64(op.rows_emitted);
    enc.PutU64(op.batches_emitted);
    enc.PutU64(op.weighted_rows);
    enc.PutU64(op.distinct_rows);
    enc.PutU64(op.peak_hash_entries);
    enc.PutU64(op.build_rows);
    enc.PutU64(op.probe_rows);
    enc.PutU64(op.hash_bytes);
    enc.PutU64(op.time_ns);
  }
}

// A plan deeper than this is not a plan, it is an attack.
constexpr uint32_t kMaxWireOperators = 1u << 16;

Result<WireQueryStats> DecodeWireQueryStats(storage::Decoder& dec) {
  WireQueryStats s;
  MRA_ASSIGN_OR_RETURN(s.query_id, dec.GetU64());
  MRA_ASSIGN_OR_RETURN(s.result_rows, dec.GetU64());
  MRA_ASSIGN_OR_RETURN(s.total_us, dec.GetU64());
  MRA_ASSIGN_OR_RETURN(s.bind_us, dec.GetU64());
  MRA_ASSIGN_OR_RETURN(s.optimize_us, dec.GetU64());
  MRA_ASSIGN_OR_RETURN(s.lower_us, dec.GetU64());
  MRA_ASSIGN_OR_RETURN(s.exec_us, dec.GetU64());
  MRA_ASSIGN_OR_RETURN(uint32_t n, dec.GetU32());
  if (n > kMaxWireOperators) {
    return Status::Corruption("implausible operator count in stats trailer");
  }
  s.operators.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    WireOpStats op;
    MRA_ASSIGN_OR_RETURN(op.name, dec.GetString());
    MRA_ASSIGN_OR_RETURN(op.depth, dec.GetU32());
    MRA_ASSIGN_OR_RETURN(op.estimated_rows, dec.GetDouble());
    MRA_ASSIGN_OR_RETURN(op.rows_emitted, dec.GetU64());
    MRA_ASSIGN_OR_RETURN(op.batches_emitted, dec.GetU64());
    MRA_ASSIGN_OR_RETURN(op.weighted_rows, dec.GetU64());
    MRA_ASSIGN_OR_RETURN(op.distinct_rows, dec.GetU64());
    MRA_ASSIGN_OR_RETURN(op.peak_hash_entries, dec.GetU64());
    MRA_ASSIGN_OR_RETURN(op.build_rows, dec.GetU64());
    MRA_ASSIGN_OR_RETURN(op.probe_rows, dec.GetU64());
    MRA_ASSIGN_OR_RETURN(op.hash_bytes, dec.GetU64());
    MRA_ASSIGN_OR_RETURN(op.time_ns, dec.GetU64());
    s.operators.push_back(std::move(op));
  }
  return s;
}

}  // namespace

std::string EncodeResultSet(const std::vector<Relation>& relations) {
  storage::Encoder enc;
  EncodeRelations(enc, relations);
  return enc.TakeBuffer();
}

Result<std::vector<Relation>> DecodeResultSet(std::string_view payload) {
  storage::Decoder dec(payload);
  MRA_ASSIGN_OR_RETURN(std::vector<Relation> out, DecodeRelations(dec));
  if (!dec.AtEnd()) {
    return Status::Corruption("trailing bytes in ResultSet payload");
  }
  return out;
}

std::string EncodeQueryRequest(uint64_t query_id, std::string_view text) {
  storage::Encoder enc;
  enc.PutU64(query_id);
  enc.PutString(text);
  return enc.TakeBuffer();
}

Result<QueryRequest> DecodeQueryRequest(std::string_view payload) {
  storage::Decoder dec(payload);
  QueryRequest out;
  MRA_ASSIGN_OR_RETURN(out.query_id, dec.GetU64());
  MRA_ASSIGN_OR_RETURN(out.text, dec.GetString());
  if (!dec.AtEnd()) {
    return Status::Corruption("trailing bytes in QueryRequest payload");
  }
  return out;
}

std::string EncodeResultSetWithStats(const std::vector<Relation>& relations,
                                     const WireQueryStats* stats) {
  storage::Encoder enc;
  EncodeRelations(enc, relations);
  enc.PutU8(stats != nullptr ? 1 : 0);
  if (stats != nullptr) EncodeWireQueryStats(enc, *stats);
  return enc.TakeBuffer();
}

Result<std::vector<Relation>> DecodeResultSetWithStats(
    std::string_view payload, std::optional<WireQueryStats>* stats_out) {
  storage::Decoder dec(payload);
  MRA_ASSIGN_OR_RETURN(std::vector<Relation> out, DecodeRelations(dec));
  if (stats_out != nullptr) stats_out->reset();
  MRA_ASSIGN_OR_RETURN(uint8_t has_stats, dec.GetU8());
  if (has_stats > 1) {
    return Status::Corruption("malformed ResultSet stats flag");
  }
  if (has_stats == 1) {
    MRA_ASSIGN_OR_RETURN(WireQueryStats stats, DecodeWireQueryStats(dec));
    if (stats_out != nullptr) *stats_out = std::move(stats);
  }
  if (!dec.AtEnd()) {
    return Status::Corruption("trailing bytes in ResultSet payload");
  }
  return out;
}

std::string EncodeServerStatsRequest(uint64_t query_id) {
  storage::Encoder enc;
  enc.PutU64(query_id);
  return enc.TakeBuffer();
}

Result<uint64_t> DecodeServerStatsRequest(std::string_view payload) {
  storage::Decoder dec(payload);
  MRA_ASSIGN_OR_RETURN(uint64_t query_id, dec.GetU64());
  if (!dec.AtEnd()) {
    return Status::Corruption("trailing bytes in ServerStats request");
  }
  return query_id;
}

std::string EncodeServerStatsReply(const ServerStatsReply& reply) {
  storage::Encoder enc;
  enc.PutU64(reply.uptime_us);
  enc.PutU64(reply.sessions_served);
  enc.PutU32(reply.active_sessions);
  enc.PutU64(reply.queries);
  enc.PutU64(reply.sheds);
  enc.PutU64(reply.slow_logged);
  enc.PutU64(reply.query_latency.count);
  enc.PutU64(reply.query_latency.sum_micros);
  enc.PutU64(reply.query_latency.max_micros);
  // Histogram buckets travel sparsely: (u32 index, u64 count) pairs.
  uint32_t nonzero = 0;
  for (uint64_t b : reply.query_latency.buckets) {
    if (b != 0) ++nonzero;
  }
  enc.PutU32(nonzero);
  for (size_t i = 0; i < reply.query_latency.buckets.size(); ++i) {
    if (reply.query_latency.buckets[i] == 0) continue;
    enc.PutU32(static_cast<uint32_t>(i));
    enc.PutU64(reply.query_latency.buckets[i]);
  }
  enc.PutU32(static_cast<uint32_t>(reply.sessions.size()));
  for (const ServerSessionInfo& s : reply.sessions) {
    enc.PutU64(s.id);
    enc.PutString(s.peer);
    enc.PutString(s.current_query);
    enc.PutU8(s.busy ? 1 : 0);
    enc.PutU64(s.queries);
    enc.PutU64(s.last_latency_us);
    enc.PutU64(s.idle_ms);
  }
  enc.PutU32(static_cast<uint32_t>(reply.slow_log.size()));
  for (const std::string& line : reply.slow_log) enc.PutString(line);
  enc.PutString(reply.trace);
  return enc.TakeBuffer();
}

Result<ServerStatsReply> DecodeServerStatsReply(std::string_view payload) {
  // Sanity bounds: a reply lists live sessions (bounded by the server's
  // session cap) and a fixed-capacity slow-log ring; anything far past
  // those is a corrupt count.
  constexpr uint32_t kMaxSessions = 1u << 16;
  constexpr uint32_t kMaxSlowLogLines = 1u << 16;
  storage::Decoder dec(payload);
  ServerStatsReply out;
  MRA_ASSIGN_OR_RETURN(out.uptime_us, dec.GetU64());
  MRA_ASSIGN_OR_RETURN(out.sessions_served, dec.GetU64());
  MRA_ASSIGN_OR_RETURN(out.active_sessions, dec.GetU32());
  MRA_ASSIGN_OR_RETURN(out.queries, dec.GetU64());
  MRA_ASSIGN_OR_RETURN(out.sheds, dec.GetU64());
  MRA_ASSIGN_OR_RETURN(out.slow_logged, dec.GetU64());
  MRA_ASSIGN_OR_RETURN(out.query_latency.count, dec.GetU64());
  MRA_ASSIGN_OR_RETURN(out.query_latency.sum_micros, dec.GetU64());
  MRA_ASSIGN_OR_RETURN(out.query_latency.max_micros, dec.GetU64());
  MRA_ASSIGN_OR_RETURN(uint32_t nonzero, dec.GetU32());
  if (nonzero > obs::Histogram::kNumBuckets) {
    return Status::Corruption("implausible histogram bucket count");
  }
  out.query_latency.buckets.assign(obs::Histogram::kNumBuckets, 0);
  for (uint32_t i = 0; i < nonzero; ++i) {
    MRA_ASSIGN_OR_RETURN(uint32_t index, dec.GetU32());
    MRA_ASSIGN_OR_RETURN(uint64_t count, dec.GetU64());
    if (index >= obs::Histogram::kNumBuckets) {
      return Status::Corruption("histogram bucket index out of range");
    }
    out.query_latency.buckets[index] = count;
  }
  MRA_ASSIGN_OR_RETURN(uint32_t n_sessions, dec.GetU32());
  if (n_sessions > kMaxSessions) {
    return Status::Corruption("implausible session count");
  }
  out.sessions.reserve(n_sessions);
  for (uint32_t i = 0; i < n_sessions; ++i) {
    ServerSessionInfo s;
    MRA_ASSIGN_OR_RETURN(s.id, dec.GetU64());
    MRA_ASSIGN_OR_RETURN(s.peer, dec.GetString());
    MRA_ASSIGN_OR_RETURN(s.current_query, dec.GetString());
    MRA_ASSIGN_OR_RETURN(uint8_t busy, dec.GetU8());
    if (busy > 1) return Status::Corruption("malformed session busy flag");
    s.busy = busy == 1;
    MRA_ASSIGN_OR_RETURN(s.queries, dec.GetU64());
    MRA_ASSIGN_OR_RETURN(s.last_latency_us, dec.GetU64());
    MRA_ASSIGN_OR_RETURN(s.idle_ms, dec.GetU64());
    out.sessions.push_back(std::move(s));
  }
  MRA_ASSIGN_OR_RETURN(uint32_t n_lines, dec.GetU32());
  if (n_lines > kMaxSlowLogLines) {
    return Status::Corruption("implausible slow-log line count");
  }
  out.slow_log.reserve(n_lines);
  for (uint32_t i = 0; i < n_lines; ++i) {
    MRA_ASSIGN_OR_RETURN(std::string line, dec.GetString());
    out.slow_log.push_back(std::move(line));
  }
  MRA_ASSIGN_OR_RETURN(out.trace, dec.GetString());
  if (!dec.AtEnd()) {
    return Status::Corruption("trailing bytes in ServerStats reply");
  }
  return out;
}

std::string EncodeBusy(uint32_t retry_after_ms, std::string_view message) {
  storage::Encoder enc;
  enc.PutU32(retry_after_ms);
  enc.PutString(message);
  return enc.TakeBuffer();
}

Result<BusyNotice> DecodeBusy(std::string_view payload) {
  storage::Decoder dec(payload);
  BusyNotice out;
  MRA_ASSIGN_OR_RETURN(out.retry_after_ms, dec.GetU32());
  MRA_ASSIGN_OR_RETURN(out.message, dec.GetString());
  if (!dec.AtEnd()) {
    return Status::Corruption("trailing bytes in Busy payload");
  }
  return out;
}

}  // namespace net
}  // namespace mra
