#include "mra/net/protocol.h"

#include <algorithm>
#include <utility>

#include "mra/net/socket.h"
#include "mra/storage/serializer.h"

namespace mra {
namespace net {

namespace {

// Sanity bound on ResultSet cardinality: a response cannot carry more
// relations than one byte per relation would allow, so a corrupt count is
// refused before the decode loop spins.
constexpr uint32_t kMaxRelationsPerResultSet = 1u << 20;

}  // namespace

std::string_view FrameKindName(FrameKind kind) {
  switch (kind) {
    case FrameKind::kHello:
      return "Hello";
    case FrameKind::kQuery:
      return "Query";
    case FrameKind::kScript:
      return "Script";
    case FrameKind::kResultSet:
      return "ResultSet";
    case FrameKind::kError:
      return "Error";
    case FrameKind::kStats:
      return "Stats";
    case FrameKind::kPing:
      return "Ping";
    case FrameKind::kShutdown:
      return "Shutdown";
    case FrameKind::kBusy:
      return "Busy";
  }
  return "?";
}

bool IsValidFrameKind(uint8_t kind) {
  return kind >= static_cast<uint8_t>(FrameKind::kHello) &&
         kind <= static_cast<uint8_t>(FrameKind::kBusy);
}

std::string EncodeFrame(FrameKind kind, std::string_view payload) {
  // CRC covers the kind byte and the payload, so a frame whose kind byte
  // was flipped in flight fails the check even though the length is fine.
  storage::Encoder crc_input;
  crc_input.PutU8(static_cast<uint8_t>(kind));
  std::string crc_buffer = crc_input.TakeBuffer();
  crc_buffer.append(payload.data(), payload.size());
  uint32_t crc = storage::Crc32(crc_buffer);

  storage::Encoder enc;
  enc.PutU32(kMagic);
  enc.PutU8(static_cast<uint8_t>(kind));
  enc.PutU32(static_cast<uint32_t>(payload.size()));
  enc.PutU32(crc);
  std::string out = enc.TakeBuffer();
  out.append(payload.data(), payload.size());
  return out;
}

Result<FrameHeader> ParseFrameHeader(std::string_view header,
                                     const WireLimits& limits) {
  if (header.size() != kFrameHeaderBytes) {
    return Status::Corruption("frame header must be " +
                              std::to_string(kFrameHeaderBytes) + " bytes");
  }
  storage::Decoder dec(header);
  MRA_ASSIGN_OR_RETURN(uint32_t magic, dec.GetU32());
  if (magic != kMagic) {
    return Status::Corruption("bad frame magic (not an mra peer?)");
  }
  MRA_ASSIGN_OR_RETURN(uint8_t kind, dec.GetU8());
  if (!IsValidFrameKind(kind)) {
    return Status::Corruption("unknown frame kind " + std::to_string(kind));
  }
  FrameHeader out;
  out.kind = static_cast<FrameKind>(kind);
  MRA_ASSIGN_OR_RETURN(out.payload_len, dec.GetU32());
  MRA_ASSIGN_OR_RETURN(out.crc, dec.GetU32());
  if (out.payload_len > limits.max_frame_bytes) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(out.payload_len) +
        " bytes exceeds the " + std::to_string(limits.max_frame_bytes) +
        "-byte limit");
  }
  return out;
}

Status CheckFramePayload(const FrameHeader& header, std::string_view payload) {
  if (payload.size() != header.payload_len) {
    return Status::Corruption("frame payload length mismatch");
  }
  storage::Encoder crc_input;
  crc_input.PutU8(static_cast<uint8_t>(header.kind));
  std::string crc_buffer = crc_input.TakeBuffer();
  crc_buffer.append(payload.data(), payload.size());
  if (storage::Crc32(crc_buffer) != header.crc) {
    return Status::Corruption("frame CRC mismatch");
  }
  return Status::OK();
}

Result<Frame> DecodeFrame(std::string_view data, const WireLimits& limits) {
  if (data.size() < kFrameHeaderBytes) {
    return Status::Corruption("truncated frame header");
  }
  MRA_ASSIGN_OR_RETURN(
      FrameHeader header,
      ParseFrameHeader(data.substr(0, kFrameHeaderBytes), limits));
  std::string_view payload = data.substr(kFrameHeaderBytes);
  if (payload.size() < header.payload_len) {
    return Status::Corruption("truncated frame payload");
  }
  if (payload.size() > header.payload_len) {
    return Status::Corruption("trailing bytes after frame payload");
  }
  MRA_RETURN_IF_ERROR(CheckFramePayload(header, payload));
  return Frame{header.kind, std::string(payload)};
}

Result<size_t> WriteFrame(Socket& sock, FrameKind kind,
                          std::string_view payload) {
  std::string wire = EncodeFrame(kind, payload);
  MRA_RETURN_IF_ERROR(sock.SendAll(wire));
  return wire.size();
}

Result<Frame> ReadFrame(Socket& sock, const WireLimits& limits,
                        int timeout_ms) {
  MRA_ASSIGN_OR_RETURN(std::string header_bytes,
                       sock.RecvExact(kFrameHeaderBytes, timeout_ms));
  MRA_ASSIGN_OR_RETURN(FrameHeader header,
                       ParseFrameHeader(header_bytes, limits));
  std::string payload;
  if (header.payload_len > 0) {
    MRA_ASSIGN_OR_RETURN(payload,
                         sock.RecvExact(header.payload_len, timeout_ms));
  }
  MRA_RETURN_IF_ERROR(CheckFramePayload(header, payload));
  return Frame{header.kind, std::move(payload)};
}

std::string EncodeHello(uint32_t version, std::string_view peer) {
  storage::Encoder enc;
  enc.PutU32(version);
  enc.PutString(peer);
  return enc.TakeBuffer();
}

Result<Hello> DecodeHello(std::string_view payload) {
  storage::Decoder dec(payload);
  Hello out;
  MRA_ASSIGN_OR_RETURN(out.version, dec.GetU32());
  MRA_ASSIGN_OR_RETURN(out.peer, dec.GetString());
  if (!dec.AtEnd()) {
    return Status::Corruption("trailing bytes in Hello payload");
  }
  return out;
}

std::string EncodeError(const Status& status) {
  storage::Encoder enc;
  enc.PutU8(static_cast<uint8_t>(status.code()));
  enc.PutString(status.message());
  return enc.TakeBuffer();
}

Status DecodeError(std::string_view payload) {
  storage::Decoder dec(payload);
  Result<uint8_t> code = dec.GetU8();
  if (!code.ok()) return code.status();
  Result<std::string> message = dec.GetString();
  if (!message.ok()) return message.status();
  if (!dec.AtEnd() || *code == 0 ||
      *code > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::Corruption("malformed Error payload");
  }
  return Status(static_cast<StatusCode>(*code), *std::move(message));
}

std::string EncodeResultSet(const std::vector<Relation>& relations) {
  storage::Encoder enc;
  enc.PutU32(static_cast<uint32_t>(relations.size()));
  for (const Relation& r : relations) {
    enc.PutSchema(r.schema());
    // Chunked row encoding (protocol v2): the sorted entries stream out in
    // batches of kResultSetChunkRows, each prefixed with its row count, so
    // a streaming server can flush per executor RowBatch without knowing
    // the total cardinality up front.  SortedEntries keeps the bytes
    // deterministic for a given relation.
    const std::vector<std::pair<Tuple, uint64_t>> entries = r.SortedEntries();
    for (size_t begin = 0; begin < entries.size();
         begin += kResultSetChunkRows) {
      size_t end = std::min<size_t>(begin + kResultSetChunkRows,
                                    entries.size());
      enc.PutU32(static_cast<uint32_t>(end - begin));
      for (size_t j = begin; j < end; ++j) {
        enc.PutTuple(entries[j].first);
        enc.PutU64(entries[j].second);
      }
    }
    enc.PutU32(0);  // end-of-relation terminator
  }
  return enc.TakeBuffer();
}

Result<std::vector<Relation>> DecodeResultSet(std::string_view payload) {
  storage::Decoder dec(payload);
  MRA_ASSIGN_OR_RETURN(uint32_t n, dec.GetU32());
  if (n > kMaxRelationsPerResultSet) {
    return Status::Corruption("implausible ResultSet cardinality");
  }
  std::vector<Relation> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    MRA_ASSIGN_OR_RETURN(RelationSchema schema, dec.GetSchema());
    Relation r(std::move(schema));
    while (true) {
      MRA_ASSIGN_OR_RETURN(uint32_t k, dec.GetU32());
      if (k == 0) break;
      // A corrupt, huge k fails fast at the first short GetTuple — every
      // row costs at least one byte, so no allocation happens up front.
      for (uint32_t j = 0; j < k; ++j) {
        MRA_ASSIGN_OR_RETURN(Tuple t, dec.GetTuple());
        MRA_ASSIGN_OR_RETURN(uint64_t count, dec.GetU64());
        if (count == 0) {
          return Status::Corruption("zero multiplicity in ResultSet chunk");
        }
        MRA_RETURN_IF_ERROR(r.Insert(std::move(t), count));
      }
    }
    out.push_back(std::move(r));
  }
  if (!dec.AtEnd()) {
    return Status::Corruption("trailing bytes in ResultSet payload");
  }
  return out;
}

std::string EncodeBusy(uint32_t retry_after_ms, std::string_view message) {
  storage::Encoder enc;
  enc.PutU32(retry_after_ms);
  enc.PutString(message);
  return enc.TakeBuffer();
}

Result<BusyNotice> DecodeBusy(std::string_view payload) {
  storage::Decoder dec(payload);
  BusyNotice out;
  MRA_ASSIGN_OR_RETURN(out.retry_after_ms, dec.GetU32());
  MRA_ASSIGN_OR_RETURN(out.message, dec.GetString());
  if (!dec.AtEnd()) {
    return Status::Corruption("trailing bytes in Busy payload");
  }
  return out;
}

}  // namespace net
}  // namespace mra
