#include "mra/net/client.h"

namespace mra {
namespace net {

Result<Client> Client::Connect(const std::string& host, uint16_t port,
                               ClientOptions options) {
  MRA_ASSIGN_OR_RETURN(Socket sock, Socket::Connect(host, port));
  Client client(std::move(sock), std::move(options));
  MRA_ASSIGN_OR_RETURN(
      Frame hello_response,
      client.RoundTrip(FrameKind::kHello,
                       EncodeHello(kProtocolVersion,
                                   client.options_.client_name)));
  if (hello_response.kind != FrameKind::kHello) {
    return Status::Corruption("handshake answered with " +
                              std::string(FrameKindName(hello_response.kind)));
  }
  MRA_ASSIGN_OR_RETURN(Hello hello, DecodeHello(hello_response.payload));
  client.server_version_ = hello.version;
  client.server_banner_ = std::move(hello.peer);
  return client;
}

Result<Frame> Client::RoundTrip(FrameKind kind, std::string_view payload) {
  if (!sock_.valid()) return Status::IoError("client is not connected");
  Result<size_t> sent = WriteFrame(sock_, kind, payload);
  if (!sent.ok()) {
    sock_.Close();
    return sent.status();
  }
  Result<Frame> response =
      ReadFrame(sock_, WireLimits{options_.max_frame_bytes},
                options_.io_timeout_ms);
  if (!response.ok()) {
    // Framing is connection state; after any read failure the stream
    // position is unknown, so the connection is done.
    sock_.Close();
    return response.status();
  }
  if (response->kind == FrameKind::kError) {
    return DecodeError(response->payload);
  }
  return response;
}

Result<Relation> Client::Query(std::string_view rel_expr_source) {
  MRA_ASSIGN_OR_RETURN(Frame response,
                       RoundTrip(FrameKind::kQuery, rel_expr_source));
  if (response.kind != FrameKind::kResultSet) {
    return Status::Corruption("Query answered with " +
                              std::string(FrameKindName(response.kind)));
  }
  MRA_ASSIGN_OR_RETURN(std::vector<Relation> relations,
                       DecodeResultSet(response.payload));
  if (relations.size() != 1) {
    return Status::Corruption("Query expects exactly one relation, got " +
                              std::to_string(relations.size()));
  }
  return std::move(relations[0]);
}

Result<std::vector<Relation>> Client::ExecuteScript(std::string_view source) {
  MRA_ASSIGN_OR_RETURN(Frame response,
                       RoundTrip(FrameKind::kScript, source));
  if (response.kind != FrameKind::kResultSet) {
    return Status::Corruption("Script answered with " +
                              std::string(FrameKindName(response.kind)));
  }
  return DecodeResultSet(response.payload);
}

Result<std::string> Client::ServerStats() {
  MRA_ASSIGN_OR_RETURN(Frame response, RoundTrip(FrameKind::kStats, {}));
  if (response.kind != FrameKind::kStats) {
    return Status::Corruption("Stats answered with " +
                              std::string(FrameKindName(response.kind)));
  }
  return std::move(response.payload);
}

Status Client::Ping() {
  constexpr std::string_view kProbe = "mra-ping";
  Result<Frame> response = RoundTrip(FrameKind::kPing, kProbe);
  MRA_RETURN_IF_ERROR(response.status());
  if (response->kind != FrameKind::kPing || response->payload != kProbe) {
    return Status::Corruption("Ping echo mismatch");
  }
  return Status::OK();
}

Status Client::RequestShutdown() {
  Result<Frame> response = RoundTrip(FrameKind::kShutdown, {});
  MRA_RETURN_IF_ERROR(response.status());
  if (response->kind != FrameKind::kShutdown) {
    return Status::Corruption("Shutdown answered with " +
                              std::string(FrameKindName(response->kind)));
  }
  sock_.Close();  // The server closes its side after the ack.
  return Status::OK();
}

Result<std::pair<std::string, uint16_t>> ParseHostPort(std::string_view spec) {
  size_t colon;
  std::string host;
  if (!spec.empty() && spec.front() == '[') {
    // Bracketed IPv6 literal: [::1]:7411.
    size_t close = spec.find(']');
    if (close == std::string_view::npos || close + 1 >= spec.size() ||
        spec[close + 1] != ':') {
      return Status::InvalidArgument("expected [v6-address]:port, got \"" +
                                     std::string(spec) + "\"");
    }
    host = std::string(spec.substr(1, close - 1));
    colon = close + 1;
  } else {
    colon = spec.rfind(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("expected host:port, got \"" +
                                     std::string(spec) + "\"");
    }
    host = std::string(spec.substr(0, colon));
  }
  std::string_view port_str = spec.substr(colon + 1);
  if (host.empty() || port_str.empty()) {
    return Status::InvalidArgument("expected host:port, got \"" +
                                   std::string(spec) + "\"");
  }
  uint32_t port = 0;
  for (char c : port_str) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad port in \"" + std::string(spec) +
                                     "\"");
    }
    port = port * 10 + static_cast<uint32_t>(c - '0');
    if (port > 65535) {
      return Status::InvalidArgument("port out of range in \"" +
                                     std::string(spec) + "\"");
    }
  }
  if (port == 0) {
    return Status::InvalidArgument("port must be nonzero in \"" +
                                   std::string(spec) + "\"");
  }
  return std::make_pair(std::move(host), static_cast<uint16_t>(port));
}

}  // namespace net
}  // namespace mra
