#include "mra/net/client.h"

#include <chrono>
#include <thread>

#include "mra/obs/metrics.h"
#include "mra/obs/trace.h"

namespace mra {
namespace net {

namespace {

struct ClientMetrics {
  obs::Counter* retries;
  obs::Counter* reconnects;
  obs::Counter* busy;
  obs::Histogram* rtt_us;

  static ClientMetrics& Get() {
    static ClientMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      ClientMetrics out;
      out.retries = reg.GetCounter("net.client.retries");
      out.reconnects = reg.GetCounter("net.client.reconnects");
      out.busy = reg.GetCounter("net.client.busy");
      out.rtt_us = reg.GetHistogram("net.client.rtt_us");
      return out;
    }();
    return m;
  }
};

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

bool Client::IsRetriable(const Status& status) {
  return status.code() == StatusCode::kIoError ||
         status.code() == StatusCode::kUnavailable;
}

Result<Client> Client::Connect(const std::string& host, uint16_t port,
                               ClientOptions options) {
  Client client(std::move(options), host, port);
  Status status = client.Reconnect();
  // Connecting is idempotent, so the handshake retries like a read.
  for (int attempt = 0;
       !status.ok() && IsRetriable(status) &&
       attempt < client.options_.max_retries;
       ++attempt) {
    client.BackoffSleep(attempt);
    ClientMetrics::Get().retries->Inc();
    status = client.Reconnect();
  }
  MRA_RETURN_IF_ERROR(status);
  return client;
}

Status Client::Reconnect() {
  sock_.Close();
  MRA_ASSIGN_OR_RETURN(sock_, Socket::Connect(host_, port_));
  MRA_ASSIGN_OR_RETURN(
      Frame hello_response,
      RoundTrip(FrameKind::kHello,
                EncodeHello(kProtocolVersion, options_.client_name)));
  if (hello_response.kind != FrameKind::kHello) {
    return Status::Corruption("handshake answered with " +
                              std::string(FrameKindName(hello_response.kind)));
  }
  MRA_ASSIGN_OR_RETURN(Hello hello, DecodeHello(hello_response.payload));
  server_version_ = hello.version;
  server_banner_ = std::move(hello.peer);
  return Status::OK();
}

void Client::BackoffSleep(int attempt) {
  // Exponential growth with a cap; << is safe because attempt is bounded
  // by the number of doublings it takes to pass the cap.
  int64_t delay = options_.retry_base_ms > 0 ? options_.retry_base_ms : 1;
  for (int i = 0; i < attempt && delay < options_.retry_cap_ms; ++i) {
    delay *= 2;
  }
  if (delay > options_.retry_cap_ms) delay = options_.retry_cap_ms;
  // A Busy hint is the server telling us when capacity should free up;
  // never retry sooner than that.
  if (busy_hint_ms_ > 0 && delay < static_cast<int64_t>(busy_hint_ms_)) {
    delay = busy_hint_ms_;
  }
  // Full jitter over the upper half: decorrelates a thundering herd of
  // clients that all saw the same failure at the same time.
  std::uniform_int_distribution<int64_t> dist(delay / 2, delay);
  std::this_thread::sleep_for(std::chrono::milliseconds(dist(rng_)));
}

Result<Frame> Client::AwaitResponse() {
  if (!options_.interrupt) {
    return ReadFrame(sock_, WireLimits{options_.max_frame_bytes},
                     options_.io_timeout_ms);
  }
  // Sliced wait so an interrupt (Ctrl-C in the REPL) is noticed within
  // ~50ms: consume the token, cancel the in-flight query out-of-band,
  // and keep waiting — the killed query still answers on this socket.
  constexpr int kSliceMs = 50;
  int64_t waited_ms = 0;
  for (;;) {
    MRA_ASSIGN_OR_RETURN(bool readable, sock_.WaitReadable(kSliceMs));
    if (readable) {
      return ReadFrame(sock_, WireLimits{options_.max_frame_bytes},
                       options_.io_timeout_ms);
    }
    if (options_.interrupt->exchange(false, std::memory_order_acq_rel)) {
      SendOutOfBandCancel(last_query_id_);
    }
    waited_ms += kSliceMs;
    if (options_.io_timeout_ms >= 0 && waited_ms >= options_.io_timeout_ms) {
      return Status::IoError("timed out waiting for the response");
    }
  }
}

void Client::SendOutOfBandCancel(uint64_t query_id) {
  if (query_id == 0 || (server_version_ != 0 && server_version_ < 4)) return;
  Result<Socket> side = Socket::Connect(host_, port_);
  if (!side.ok()) return;
  // Bounded handshake + Cancel; every step is best-effort — if the query
  // finished meanwhile the registry simply reports not-delivered.
  constexpr int kSideTimeoutMs = 2'000;
  WireLimits limits{options_.max_frame_bytes};
  if (!WriteFrame(*side, FrameKind::kHello,
                  EncodeHello(kProtocolVersion, options_.client_name))
           .ok()) {
    return;
  }
  Result<Frame> hello = ReadFrame(*side, limits, kSideTimeoutMs);
  if (!hello.ok() || hello->kind != FrameKind::kHello) return;
  if (!WriteFrame(*side, FrameKind::kCancel, EncodeCancelRequest(query_id))
           .ok()) {
    return;
  }
  ReadFrame(*side, limits, kSideTimeoutMs);  // Drain the ack.
}

Result<Frame> Client::RoundTrip(FrameKind kind, std::string_view payload) {
  if (!sock_.valid()) return Status::IoError("client is not connected");
  uint64_t t0 = NowMicros();
  Result<size_t> sent = WriteFrame(sock_, kind, payload);
  if (!sent.ok()) {
    sock_.Close();
    return sent.status();
  }
  Result<Frame> response = AwaitResponse();
  if (response.ok()) {
    // A completed exchange (even one carrying an Error/Busy frame) is a
    // measured round trip; transport failures are not.
    ClientMetrics::Get().rtt_us->Observe(NowMicros() - t0);
  }
  if (!response.ok()) {
    // Framing is connection state; after any read failure the stream
    // position is unknown, so the connection is done.
    sock_.Close();
    return response.status();
  }
  if (response->kind == FrameKind::kError) {
    Result<ErrorNotice> notice = DecodeErrorNotice(response->payload);
    if (!notice.ok()) return notice.status();
    // A v4 deadline-kill carries the same retry-after hint a Busy frame
    // does; let it floor the backoff the same way.
    if (notice->retry_after_ms > 0) busy_hint_ms_ = notice->retry_after_ms;
    return notice->status;
  }
  if (response->kind == FrameKind::kBusy) {
    // The server shed this connection and is about to close it.
    sock_.Close();
    ClientMetrics::Get().busy->Inc();
    Result<BusyNotice> notice = DecodeBusy(response->payload);
    if (!notice.ok()) return notice.status();
    busy_hint_ms_ = notice->retry_after_ms;
    return Status::Unavailable(
        notice->message + " (retry after " +
        std::to_string(notice->retry_after_ms) + "ms)");
  }
  return response;
}

Result<Frame> Client::RetryingRoundTrip(FrameKind kind,
                                        std::string_view payload) {
  Result<Frame> response = RoundTrip(kind, payload);
  for (int attempt = 0;
       !response.ok() && IsRetriable(response.status()) &&
       attempt < options_.max_retries;
       ++attempt) {
    BackoffSleep(attempt);
    ClientMetrics::Get().retries->Inc();
    if (!sock_.valid()) {
      Status reconnected = Reconnect();
      if (!reconnected.ok()) {
        // The failed reconnect consumed this attempt.
        response = reconnected;
        continue;
      }
      ClientMetrics::Get().reconnects->Inc();
    }
    response = RoundTrip(kind, payload);
  }
  return response;
}

Result<std::vector<Relation>> Client::DecodeResults(const Frame& response) {
  last_query_stats_.reset();
  if (response.kind != FrameKind::kResultSet) {
    return Status::Corruption("query answered with " +
                              std::string(FrameKindName(response.kind)));
  }
  if (server_version_ >= 3) {
    return DecodeResultSetWithStats(response.payload, &last_query_stats_);
  }
  return DecodeResultSet(response.payload);
}

Result<Relation> Client::Query(std::string_view rel_expr_source) {
  std::string payload;
  std::string_view wire = rel_expr_source;
  if (server_version_ >= 3) {
    // Mint the id client-side so the caller can correlate this query with
    // server-side traces before the response even arrives.  A retry
    // resends the same payload, so the id stays stable across attempts.
    last_query_id_ = obs::NextQueryId();
    payload = EncodeQueryRequest(last_query_id_, rel_expr_source);
    wire = payload;
  } else {
    last_query_id_ = 0;
  }
  MRA_ASSIGN_OR_RETURN(Frame response,
                       RetryingRoundTrip(FrameKind::kQuery, wire));
  MRA_ASSIGN_OR_RETURN(std::vector<Relation> relations,
                       DecodeResults(response));
  if (relations.size() != 1) {
    return Status::Corruption("Query expects exactly one relation, got " +
                              std::to_string(relations.size()));
  }
  return std::move(relations[0]);
}

Result<std::vector<Relation>> Client::ExecuteScript(std::string_view source) {
  std::string payload;
  std::string_view wire = source;
  if (server_version_ >= 3) {
    last_query_id_ = obs::NextQueryId();
    payload = EncodeQueryRequest(last_query_id_, source);
    wire = payload;
  } else {
    last_query_id_ = 0;
  }
  MRA_ASSIGN_OR_RETURN(Frame response, RoundTrip(FrameKind::kScript, wire));
  return DecodeResults(response);
}

Result<std::string> Client::ServerStats(std::string_view format) {
  MRA_ASSIGN_OR_RETURN(Frame response,
                       RetryingRoundTrip(FrameKind::kStats, format));
  if (response.kind != FrameKind::kStats) {
    return Status::Corruption("Stats answered with " +
                              std::string(FrameKindName(response.kind)));
  }
  return std::move(response.payload);
}

Result<ServerStatsReply> Client::FetchServerStats(uint64_t query_id) {
  if (server_version_ != 0 && server_version_ < 3) {
    return Status::InvalidArgument(
        "server speaks protocol v" + std::to_string(server_version_) +
        "; ServerStats needs v3");
  }
  MRA_ASSIGN_OR_RETURN(
      Frame response,
      RetryingRoundTrip(FrameKind::kServerStats,
                        EncodeServerStatsRequest(query_id)));
  if (response.kind != FrameKind::kServerStats) {
    return Status::Corruption("ServerStats answered with " +
                              std::string(FrameKindName(response.kind)));
  }
  return DecodeServerStatsReply(response.payload);
}

Result<bool> Client::Cancel(uint64_t query_id) {
  if (server_version_ != 0 && server_version_ < 4) {
    return Status::InvalidArgument(
        "server speaks protocol v" + std::to_string(server_version_) +
        "; Cancel needs v4");
  }
  if (query_id == 0) {
    return Status::InvalidArgument("query id 0 is never in flight");
  }
  MRA_ASSIGN_OR_RETURN(
      Frame response,
      RoundTrip(FrameKind::kCancel, EncodeCancelRequest(query_id)));
  if (response.kind != FrameKind::kCancel) {
    return Status::Corruption("Cancel answered with " +
                              std::string(FrameKindName(response.kind)));
  }
  return DecodeCancelReply(response.payload);
}

Status Client::Ping() {
  constexpr std::string_view kProbe = "mra-ping";
  Result<Frame> response = RetryingRoundTrip(FrameKind::kPing, kProbe);
  MRA_RETURN_IF_ERROR(response.status());
  if (response->kind != FrameKind::kPing || response->payload != kProbe) {
    return Status::Corruption("Ping echo mismatch");
  }
  return Status::OK();
}

Status Client::RequestShutdown() {
  Result<Frame> response = RoundTrip(FrameKind::kShutdown, {});
  MRA_RETURN_IF_ERROR(response.status());
  if (response->kind != FrameKind::kShutdown) {
    return Status::Corruption("Shutdown answered with " +
                              std::string(FrameKindName(response->kind)));
  }
  sock_.Close();  // The server closes its side after the ack.
  return Status::OK();
}

Result<std::pair<std::string, uint16_t>> ParseHostPort(std::string_view spec) {
  size_t colon;
  std::string host;
  if (!spec.empty() && spec.front() == '[') {
    // Bracketed IPv6 literal: [::1]:7411.
    size_t close = spec.find(']');
    if (close == std::string_view::npos || close + 1 >= spec.size() ||
        spec[close + 1] != ':') {
      return Status::InvalidArgument("expected [v6-address]:port, got \"" +
                                     std::string(spec) + "\"");
    }
    host = std::string(spec.substr(1, close - 1));
    colon = close + 1;
  } else {
    colon = spec.rfind(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("expected host:port, got \"" +
                                     std::string(spec) + "\"");
    }
    host = std::string(spec.substr(0, colon));
  }
  std::string_view port_str = spec.substr(colon + 1);
  if (host.empty() || port_str.empty()) {
    return Status::InvalidArgument("expected host:port, got \"" +
                                   std::string(spec) + "\"");
  }
  uint32_t port = 0;
  for (char c : port_str) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad port in \"" + std::string(spec) +
                                     "\"");
    }
    port = port * 10 + static_cast<uint32_t>(c - '0');
    if (port > 65535) {
      return Status::InvalidArgument("port out of range in \"" +
                                     std::string(spec) + "\"");
    }
  }
  if (port == 0) {
    return Status::InvalidArgument("port must be nonzero in \"" +
                                   std::string(spec) + "\"");
  }
  return std::make_pair(std::move(host), static_cast<uint16_t>(port));
}

}  // namespace net
}  // namespace mra
