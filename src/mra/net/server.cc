#include "mra/net/server.h"

#include <chrono>

#include "mra/fault/failpoint.h"
#include "mra/obs/metrics.h"

namespace mra {
namespace net {

namespace {

// How often blocked waits re-check the draining flag.  Bounds both the
// shutdown latency of an idle session and the accept loop's reaction time.
constexpr int kPollSliceMs = 50;

struct NetMetrics {
  obs::Counter* accepted;
  obs::Gauge* active;
  obs::Counter* requests;
  obs::Counter* request_errors;
  obs::Counter* request_timeouts;
  obs::Counter* bytes_in;
  obs::Counter* bytes_out;
  obs::Counter* idle_reaped;
  obs::Counter* shutdowns;
  obs::Counter* sheds;
  obs::Histogram* request_latency_us;

  static NetMetrics& Get() {
    static NetMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      NetMetrics out;
      out.accepted = reg.GetCounter("net.connections");
      out.active = reg.GetGauge("net.connections.active");
      out.requests = reg.GetCounter("net.requests");
      out.request_errors = reg.GetCounter("net.requests.errors");
      out.request_timeouts = reg.GetCounter("net.requests.timeouts");
      out.bytes_in = reg.GetCounter("net.bytes_in");
      out.bytes_out = reg.GetCounter("net.bytes_out");
      out.idle_reaped = reg.GetCounter("net.sessions.idle_reaped");
      out.shutdowns = reg.GetCounter("net.shutdowns");
      out.sheds = reg.GetCounter("net.sheds");
      out.request_latency_us = reg.GetHistogram("net.request_us");
      return out;
    }();
    return m;
  }
};

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Server::Server(Database* db, ServerOptions options)
    : db_(db), options_(std::move(options)) {
  MRA_CHECK(db != nullptr);
  // Concurrent sessions must queue their brackets on the serial slot.
  options_.interpreter.block_on_txn_slot = true;
}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::Internal("server already started");
  }
  MRA_ASSIGN_OR_RETURN(
      listener_,
      Listener::Bind(options_.host, options_.port, options_.accept_backlog));
  port_ = listener_.port();
  accept_thread_ = std::thread(&Server::AcceptLoop, this);
  return Status::OK();
}

void Server::RequestShutdown() {
  draining_.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  cv_.notify_all();
}

void Server::Shutdown() {
  if (!started_.load(std::memory_order_relaxed)) return;
  RequestShutdown();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (joined_) return;
    joined_ = true;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Sessions notice draining_ within a poll slice and exit after the
  // request in flight (if any) completes.
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return active_ == 0; });
  ReapFinishedLocked();
  for (auto& [id, thread] : sessions_) {
    if (thread.joinable()) thread.join();
  }
  sessions_.clear();
  listener_.Close();
}

int Server::active_sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_;
}

uint64_t Server::sessions_served() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_served_;
}

void Server::ReapFinishedLocked() {
  for (uint64_t id : finished_) {
    auto it = sessions_.find(id);
    if (it == sessions_.end()) continue;
    if (it->second.joinable()) it->second.join();
    sessions_.erase(it);
  }
  finished_.clear();
}

void Server::AcceptLoop() {
  NetMetrics& metrics = NetMetrics::Get();
  while (!draining()) {
    bool shedding = false;
    {
      // Backpressure: hold off accepting while at the session cap, so
      // waiting clients sit in the kernel's bounded accept queue.  After
      // shed_grace_ms at the cap, degrade gracefully instead: pull queued
      // connections and turn them away with a Busy frame, so clients get
      // a structured retry-after hint rather than an unbounded wait.
      std::unique_lock<std::mutex> lock(mutex_);
      auto have_slot = [this] {
        return draining() || active_ < options_.max_sessions;
      };
      if (options_.shed_grace_ms < 0) {
        cv_.wait(lock, have_slot);
      } else {
        shedding = !cv_.wait_for(
            lock, std::chrono::milliseconds(options_.shed_grace_ms),
            have_slot);
      }
      if (draining()) break;
      ReapFinishedLocked();
    }
    Result<bool> acceptable = listener_.WaitAcceptable(kPollSliceMs);
    if (!acceptable.ok()) break;  // Listener closed underneath us.
    if (!*acceptable) continue;
    Result<Socket> sock = listener_.Accept();
    if (!sock.ok()) continue;  // Client gave up while queued; keep serving.
    if (shedding) {
      metrics.sheds->Inc();
      // Best-effort notice; the shed connection closes either way.
      (void)WriteFrame(*sock, FrameKind::kBusy,
                       EncodeBusy(options_.busy_retry_after_ms,
                                  "server at session capacity"));
      sock->Close();
      continue;
    }
    metrics.accepted->Inc();
    metrics.active->Add(1);
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t id = next_session_id_++;
    ++active_;
    ++sessions_served_;
    sessions_.emplace(
        id, std::thread(&Server::RunSession, this, id, std::move(*sock)));
  }
}

bool Server::Send(Socket& sock, FrameKind kind, std::string_view payload) {
  Result<size_t> sent = WriteFrame(sock, kind, payload);
  if (sent.ok()) NetMetrics::Get().bytes_out->Inc(*sent);
  return sent.ok();
}

bool Server::HandleFrame(lang::Interpreter& interp, const Frame& request,
                         Socket& sock) {
  NetMetrics& metrics = NetMetrics::Get();
  metrics.requests->Inc();
  uint64_t t0 = NowMicros();

  // Produce the response; `close` requests ending the session afterwards.
  bool close = false;
  FrameKind response_kind = FrameKind::kError;
  std::string response;
  switch (request.kind) {
    case FrameKind::kHello: {
      Result<Hello> hello = DecodeHello(request.payload);
      if (!hello.ok()) {
        response = EncodeError(hello.status());
        close = true;
      } else if (hello->version != kProtocolVersion) {
        // Unavailable, not InvalidArgument: the request is well-formed,
        // this server just cannot serve that dialect — the peer should
        // upgrade (or find a server that speaks its version).
        response = EncodeError(Status::Unavailable(
            "protocol version " + std::to_string(hello->version) +
            " unsupported (server speaks " +
            std::to_string(kProtocolVersion) + ")"));
        close = true;
      } else {
        response_kind = FrameKind::kHello;
        response = EncodeHello(kProtocolVersion, "mra_serverd");
      }
      break;
    }
    case FrameKind::kQuery: {
      Result<Relation> result = interp.Query(request.payload);
      if (result.ok()) {
        response_kind = FrameKind::kResultSet;
        response = EncodeResultSet({*std::move(result)});
      } else {
        response = EncodeError(result.status());
      }
      break;
    }
    case FrameKind::kScript: {
      Result<std::vector<Relation>> results =
          interp.ExecuteScriptCollect(request.payload);
      if (results.ok()) {
        response_kind = FrameKind::kResultSet;
        response = EncodeResultSet(*results);
      } else {
        response = EncodeError(results.status());
      }
      break;
    }
    case FrameKind::kStats: {
      response_kind = FrameKind::kStats;
      response = obs::MetricsRegistry::Global().RenderJson();
      break;
    }
    case FrameKind::kPing: {
      response_kind = FrameKind::kPing;
      response = request.payload;
      break;
    }
    case FrameKind::kShutdown: {
      metrics.shutdowns->Inc();
      response_kind = FrameKind::kShutdown;
      close = true;
      RequestShutdown();
      break;
    }
    case FrameKind::kResultSet:
    case FrameKind::kError:
    case FrameKind::kBusy: {
      response = EncodeError(Status::InvalidArgument(
          std::string(FrameKindName(request.kind)) +
          " frames are server-to-client only"));
      close = true;
      break;
    }
  }

  uint64_t elapsed_us = NowMicros() - t0;
  metrics.request_latency_us->Observe(elapsed_us);
  if (response_kind == FrameKind::kError) metrics.request_errors->Inc();

  // The deadline cannot preempt a running plan, but an over-deadline
  // result is not delivered: the client already gave up on it.
  if (options_.request_timeout_ms > 0 &&
      elapsed_us / 1000 > static_cast<uint64_t>(options_.request_timeout_ms)) {
    metrics.request_timeouts->Inc();
    Send(sock, FrameKind::kError,
         EncodeError(Status::IoError(
             "request exceeded the " +
             std::to_string(options_.request_timeout_ms) + "ms deadline")));
    return false;
  }
  if (!Send(sock, response_kind, response)) return false;
  return !close;
}

void Server::RunSession(uint64_t session_id, Socket sock) {
  // Failpoint `server.session`: fail the session right after accept —
  // `error` answers with an Error frame and closes, `abort` kills the
  // whole process mid-session (crash-recovery drills).
  static fault::Failpoint* fp_session =
      fault::FaultRegistry::Global().Get("server.session");

  NetMetrics& metrics = NetMetrics::Get();
  lang::Interpreter interp(db_, options_.interpreter);
  int idle_ms = 0;

  Status session_fault = fault::InjectIfArmed(fp_session);
  if (!session_fault.ok()) {
    metrics.request_errors->Inc();
    Send(sock, FrameKind::kError, EncodeError(session_fault));
  }

  while (session_fault.ok() && !draining()) {
    Result<bool> readable = sock.WaitReadable(kPollSliceMs);
    if (!readable.ok()) break;
    if (!*readable) {
      idle_ms += kPollSliceMs;
      if (options_.idle_timeout_ms > 0 && idle_ms >= options_.idle_timeout_ms) {
        metrics.idle_reaped->Inc();
        break;
      }
      continue;
    }
    idle_ms = 0;
    // A readable socket either holds a frame or an EOF; the remaining
    // reads are bounded by the request deadline (slow-loris protection).
    Result<Frame> frame =
        ReadFrame(sock, WireLimits{options_.max_frame_bytes},
                  options_.request_timeout_ms);
    if (!frame.ok()) {
      // Framing is lost (or the peer closed): report if the socket still
      // works, then drop the connection.
      if (frame.status().code() != StatusCode::kIoError) {
        metrics.request_errors->Inc();
        Send(sock, FrameKind::kError, EncodeError(frame.status()));
      }
      break;
    }
    metrics.bytes_in->Inc(kFrameHeaderBytes + frame->payload.size());
    if (!HandleFrame(interp, *frame, sock)) break;
  }

  sock.Close();
  metrics.active->Add(-1);
  std::lock_guard<std::mutex> lock(mutex_);
  --active_;
  finished_.push_back(session_id);
  cv_.notify_all();
}

}  // namespace net
}  // namespace mra
