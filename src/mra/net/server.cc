#include "mra/net/server.h"

#include <algorithm>
#include <chrono>

#include "mra/fault/failpoint.h"
#include "mra/obs/metrics.h"
#include "mra/obs/slow_log.h"
#include "mra/obs/trace.h"

namespace mra {
namespace net {

namespace {

// How often blocked waits re-check the draining flag.  Bounds both the
// shutdown latency of an idle session and the accept loop's reaction time.
constexpr int kPollSliceMs = 50;

struct NetMetrics {
  obs::Counter* accepted;
  obs::Gauge* active;
  obs::Counter* requests;
  obs::Counter* request_errors;
  obs::Counter* request_timeouts;
  obs::Counter* bytes_in;
  obs::Counter* bytes_out;
  obs::Counter* idle_reaped;
  obs::Counter* shutdowns;
  obs::Counter* sheds;
  obs::Counter* cancels;
  obs::Histogram* request_latency_us;

  static NetMetrics& Get() {
    static NetMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      NetMetrics out;
      out.accepted = reg.GetCounter("net.connections");
      out.active = reg.GetGauge("net.connections.active");
      out.requests = reg.GetCounter("net.requests");
      out.request_errors = reg.GetCounter("net.requests.errors");
      out.request_timeouts = reg.GetCounter("net.requests.timeouts");
      out.bytes_in = reg.GetCounter("net.bytes_in");
      out.bytes_out = reg.GetCounter("net.bytes_out");
      out.idle_reaped = reg.GetCounter("net.sessions.idle_reaped");
      out.shutdowns = reg.GetCounter("net.shutdowns");
      out.sheds = reg.GetCounter("net.sheds");
      out.cancels = reg.GetCounter("net.cancels");
      out.request_latency_us = reg.GetHistogram("net.request_us");
      return out;
    }();
    return m;
  }
};

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// `\top` shows at most this much of a session's current query text.
constexpr size_t kCurrentQueryClip = 200;

std::string ClipQueryText(std::string_view text) {
  if (text.size() <= kCurrentQueryClip) return std::string(text);
  return std::string(text.substr(0, kCurrentQueryClip)) + "…";
}

// Converts the interpreter's harvested stats into the wire mirror that
// rides back in the ResultSet trailer.
WireQueryStats ToWireStats(const lang::QueryStats& stats) {
  WireQueryStats out;
  out.query_id = stats.query_id;
  out.result_rows = stats.result_rows;
  out.total_us = stats.total_us;
  out.bind_us = stats.bind_us;
  out.optimize_us = stats.optimize_us;
  out.lower_us = stats.lower_us;
  out.exec_us = stats.exec_us;
  out.operators.reserve(stats.operators.size());
  for (const lang::QueryStats::OpStats& op : stats.operators) {
    WireOpStats w;
    w.name = op.name;
    w.depth = op.depth;
    w.estimated_rows = op.estimated_rows;
    w.rows_emitted = op.metrics.rows_emitted;
    w.batches_emitted = op.metrics.batches_emitted;
    w.weighted_rows = op.metrics.weighted_rows;
    w.distinct_rows = op.metrics.distinct_rows;
    w.peak_hash_entries = op.metrics.peak_hash_entries;
    w.build_rows = op.metrics.build_rows;
    w.probe_rows = op.metrics.probe_rows;
    w.hash_bytes = op.metrics.hash_bytes;
    w.time_ns = op.metrics.total_ns();
    out.operators.push_back(std::move(w));
  }
  return out;
}

}  // namespace

Server::Server(Database* db, ServerOptions options)
    : db_(db), options_(std::move(options)) {
  MRA_CHECK(db != nullptr);
  // Concurrent sessions must queue their brackets on the serial slot.
  options_.interpreter.session.block_on_txn_slot = true;
  // The request deadline preempts running plans: unless the operator set
  // an explicit statement timeout, arm the governance deadline with it so
  // an over-deadline query dies at a batch boundary instead of running to
  // completion for a client that already gave up.
  if (options_.interpreter.governance.statement_timeout_ms == 0 &&
      options_.request_timeout_ms > 0) {
    options_.interpreter.governance.statement_timeout_ms =
        options_.request_timeout_ms;
  }
}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::Internal("server already started");
  }
  MRA_ASSIGN_OR_RETURN(
      listener_,
      Listener::Bind(options_.host, options_.port, options_.accept_backlog));
  port_ = listener_.port();
  start_us_ = NowMicros();
  accept_thread_ = std::thread(&Server::AcceptLoop, this);
  return Status::OK();
}

void Server::RequestShutdown() {
  draining_.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  cv_.notify_all();
}

void Server::Shutdown() {
  if (!started_.load(std::memory_order_relaxed)) return;
  RequestShutdown();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (joined_) return;
    joined_ = true;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Sessions notice draining_ within a poll slice and exit after the
  // request in flight (if any) completes.
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return active_ == 0; });
  ReapFinishedLocked();
  for (auto& [id, thread] : sessions_) {
    if (thread.joinable()) thread.join();
  }
  sessions_.clear();
  listener_.Close();
}

int Server::active_sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_;
}

uint64_t Server::sessions_served() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_served_;
}

void Server::ReapFinishedLocked() {
  for (uint64_t id : finished_) {
    auto it = sessions_.find(id);
    if (it == sessions_.end()) continue;
    if (it->second.joinable()) it->second.join();
    sessions_.erase(it);
  }
  finished_.clear();
}

void Server::AcceptLoop() {
  NetMetrics& metrics = NetMetrics::Get();
  while (!draining()) {
    bool shedding = false;
    {
      // Backpressure: hold off accepting while at the session cap, so
      // waiting clients sit in the kernel's bounded accept queue.  After
      // shed_grace_ms at the cap, degrade gracefully instead: pull queued
      // connections and turn them away with a Busy frame, so clients get
      // a structured retry-after hint rather than an unbounded wait.
      std::unique_lock<std::mutex> lock(mutex_);
      auto have_slot = [this] {
        return draining() || active_ < options_.max_sessions;
      };
      if (options_.shed_grace_ms < 0) {
        cv_.wait(lock, have_slot);
      } else {
        shedding = !cv_.wait_for(
            lock, std::chrono::milliseconds(options_.shed_grace_ms),
            have_slot);
      }
      if (draining()) break;
      ReapFinishedLocked();
    }
    Result<bool> acceptable = listener_.WaitAcceptable(kPollSliceMs);
    if (!acceptable.ok()) break;  // Listener closed underneath us.
    if (!*acceptable) continue;
    Result<Socket> sock = listener_.Accept();
    if (!sock.ok()) continue;  // Client gave up while queued; keep serving.
    if (shedding) {
      metrics.sheds->Inc();
      // Sheds are operator-relevant overload signals, so they land in the
      // slow-query stream too (query_id 0: no query ever started).
      obs::SlowQueryLog& slow_log = obs::SlowQueryLog::Global();
      if (slow_log.enabled()) {
        obs::SlowQueryEntry entry;
        entry.source = "(connection shed before handshake)";
        entry.events.push_back("shed");
        slow_log.Record(std::move(entry));
      }
      // Best-effort notice; the shed connection closes either way.
      (void)WriteFrame(*sock, FrameKind::kBusy,
                       EncodeBusy(options_.busy_retry_after_ms,
                                  "server at session capacity"));
      sock->Close();
      continue;
    }
    metrics.accepted->Inc();
    metrics.active->Add(1);
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t id = next_session_id_++;
    ++active_;
    ++sessions_served_;
    sessions_.emplace(
        id, std::thread(&Server::RunSession, this, id, std::move(*sock)));
  }
}

bool Server::Send(Socket& sock, FrameKind kind, std::string_view payload) {
  Result<size_t> sent = WriteFrame(sock, kind, payload);
  if (sent.ok()) NetMetrics::Get().bytes_out->Inc(*sent);
  return sent.ok();
}

bool Server::HandleFrame(SessionContext& ctx, lang::Interpreter& interp,
                         const Frame& request, Socket& sock) {
  NetMetrics& metrics = NetMetrics::Get();
  metrics.requests->Inc();
  uint64_t t0 = NowMicros();

  bool is_exec = request.kind == FrameKind::kQuery ||
                 request.kind == FrameKind::kScript;

  // Produce the response; `close` requests ending the session afterwards.
  bool close = false;
  // Set when the governance deadline already killed the plan: the client
  // got a proper kDeadlineExceeded, so the post-hoc timeout backstop must
  // not also tear the connection down.
  bool deadline_preempted = false;
  FrameKind response_kind = FrameKind::kError;
  std::string response;
  switch (request.kind) {
    case FrameKind::kHello: {
      Result<Hello> hello = DecodeHello(request.payload);
      if (!hello.ok()) {
        response = EncodeError(hello.status());
        close = true;
      } else if (hello->version < kMinProtocolVersion ||
                 hello->version > kProtocolVersion) {
        // Unavailable, not InvalidArgument: the request is well-formed,
        // this server just cannot serve that dialect — the peer should
        // upgrade (or find a server that speaks its version).
        response = EncodeError(Status::Unavailable(
            "protocol version " + std::to_string(hello->version) +
            " unsupported (server speaks " +
            std::to_string(kProtocolVersion) + ", accepts down to " +
            std::to_string(kMinProtocolVersion) + ")"));
        close = true;
      } else {
        // Negotiate down to the client's dialect; the reply names the
        // version this session will actually speak.
        ctx.version = std::min(hello->version, kProtocolVersion);
        response_kind = FrameKind::kHello;
        response = EncodeHello(ctx.version, "mra_serverd");
        std::lock_guard<std::mutex> lock(info_mutex_);
        session_info_[ctx.id].peer = hello->peer;
      }
      break;
    }
    case FrameKind::kQuery:
    case FrameKind::kScript: {
      // v3 requests carry a client-minted query id ahead of the text;
      // v2 requests are the raw text (id minted here so server-side
      // attribution works for old clients too).
      uint64_t query_id = 0;
      std::string_view text;
      std::string text_storage;
      Status decode_status = Status::OK();
      if (ctx.version >= 3) {
        Result<QueryRequest> req = DecodeQueryRequest(request.payload);
        if (!req.ok()) {
          decode_status = req.status();
        } else {
          query_id = req->query_id;
          text_storage = std::move(req->text);
          text = text_storage;
        }
      } else {
        text = request.payload;
      }
      if (!decode_status.ok()) {
        response = EncodeError(decode_status);
        close = true;
        break;
      }
      if (query_id == 0) query_id = obs::NextQueryId();
      {
        std::lock_guard<std::mutex> lock(info_mutex_);
        SessionInfo& info = session_info_[ctx.id];
        info.busy = true;
        info.current_query = ClipQueryText(text);
        ++info.queries;
        info.last_active_us = t0;
      }
      obs::ScopedQueryId scoped_id(query_id);
      // Register the in-flight query so a Cancel frame from any session
      // can reach it (docs/GOVERNANCE.md).  The entry lives exactly as
      // long as this execution, which keeps the Interpreter pointer valid.
      struct RunningGuard {
        Server* server;
        uint64_t id;
        ~RunningGuard() {
          std::lock_guard<std::mutex> lock(server->running_mutex_);
          server->running_.erase(id);
        }
      } running_guard{this, query_id};
      {
        std::lock_guard<std::mutex> lock(running_mutex_);
        running_[query_id] = &interp;
      }
      // Deadline kills are retriable (like Busy): v4 errors carry the
      // same retry-after hint so clients back off instead of hammering.
      auto encode_exec_error = [&](const Status& status) {
        if (status.code() == StatusCode::kDeadlineExceeded) {
          deadline_preempted = true;
          if (ctx.version >= 4) {
            return EncodeErrorWithHint(status, options_.busy_retry_after_ms);
          }
        }
        return EncodeError(status);
      };
      const WireQueryStats* stats_ptr = nullptr;
      WireQueryStats wire_stats;
      if (request.kind == FrameKind::kQuery) {
        Result<Relation> result = interp.Query(text);
        if (result.ok()) {
          response_kind = FrameKind::kResultSet;
          std::vector<Relation> relations;
          relations.push_back(*std::move(result));
          if (ctx.version >= 3 && interp.last_query_stats().valid) {
            wire_stats = ToWireStats(interp.last_query_stats());
            stats_ptr = &wire_stats;
          }
          response = ctx.version >= 3
                         ? EncodeResultSetWithStats(relations, stats_ptr)
                         : EncodeResultSet(relations);
        } else {
          response = encode_exec_error(result.status());
        }
      } else {
        Result<std::vector<Relation>> results =
            interp.ExecuteScriptCollect(text);
        if (results.ok()) {
          response_kind = FrameKind::kResultSet;
          // A script's trailer carries the stats of its last evaluated
          // query (documented in docs/EXECUTION.md).
          if (ctx.version >= 3 && interp.last_query_stats().valid &&
              interp.last_query_stats().query_id == query_id) {
            wire_stats = ToWireStats(interp.last_query_stats());
            stats_ptr = &wire_stats;
          }
          response = ctx.version >= 3
                         ? EncodeResultSetWithStats(*results, stats_ptr)
                         : EncodeResultSet(*results);
        } else {
          response = encode_exec_error(results.status());
        }
      }
      break;
    }
    case FrameKind::kStats: {
      // The optional payload selects the export format.
      response_kind = FrameKind::kStats;
      if (request.payload == "prom") {
        response = obs::MetricsRegistry::Global().RenderPrometheus();
      } else if (request.payload == "text") {
        response = obs::MetricsRegistry::Global().RenderText();
      } else {
        response = obs::MetricsRegistry::Global().RenderJson();
      }
      break;
    }
    case FrameKind::kServerStats: {
      Result<uint64_t> query_id = DecodeServerStatsRequest(request.payload);
      if (!query_id.ok()) {
        response = EncodeError(query_id.status());
        close = true;
      } else {
        response_kind = FrameKind::kServerStats;
        response = EncodeServerStatsReply(BuildServerStats(*query_id));
      }
      break;
    }
    case FrameKind::kPing: {
      response_kind = FrameKind::kPing;
      response = request.payload;
      break;
    }
    case FrameKind::kShutdown: {
      metrics.shutdowns->Inc();
      response_kind = FrameKind::kShutdown;
      close = true;
      RequestShutdown();
      break;
    }
    case FrameKind::kCancel: {
      if (ctx.version < 4) {
        response = EncodeError(Status::InvalidArgument(
            "Cancel frames require protocol v4 (session negotiated v" +
            std::to_string(ctx.version) + ")"));
        close = true;
        break;
      }
      Result<uint64_t> qid = DecodeCancelRequest(request.payload);
      if (!qid.ok()) {
        response = EncodeError(qid.status());
        close = true;
        break;
      }
      bool delivered = false;
      {
        std::lock_guard<std::mutex> lock(running_mutex_);
        auto it = running_.find(*qid);
        if (it != running_.end()) {
          // Trips the cooperative flag; the plan unwinds at its next
          // batch boundary.  Safe under running_mutex_: the interpreter
          // never takes it, and the registry entry pins the pointer.
          it->second->CancelQuery(*qid);
          delivered = true;
        }
      }
      if (delivered) metrics.cancels->Inc();
      response_kind = FrameKind::kCancel;
      response = EncodeCancelReply(delivered);
      break;
    }
    case FrameKind::kResultSet:
    case FrameKind::kError:
    case FrameKind::kBusy: {
      response = EncodeError(Status::InvalidArgument(
          std::string(FrameKindName(request.kind)) +
          " frames are server-to-client only"));
      close = true;
      break;
    }
  }

  uint64_t elapsed_us = NowMicros() - t0;
  metrics.request_latency_us->Observe(elapsed_us);
  if (response_kind == FrameKind::kError) metrics.request_errors->Inc();
  if (is_exec) {
    std::lock_guard<std::mutex> lock(info_mutex_);
    SessionInfo& info = session_info_[ctx.id];
    info.busy = false;
    info.current_query.clear();
    info.last_latency_us = elapsed_us;
    info.last_active_us = NowMicros();
  }

  // Backstop for time lost outside the governed plan (parse, encode,
  // waiting on the txn slot): the in-plan deadline normally kills an
  // over-deadline query first — it surfaces as kDeadlineExceeded above —
  // but if total handling time still blew the budget, the result is not
  // delivered: the client already gave up on it.
  if (!deadline_preempted && options_.request_timeout_ms > 0 &&
      elapsed_us / 1000 > static_cast<uint64_t>(options_.request_timeout_ms)) {
    metrics.request_timeouts->Inc();
    obs::SlowQueryLog& slow_log = obs::SlowQueryLog::Global();
    if (slow_log.enabled()) {
      obs::SlowQueryEntry entry;
      entry.query_id = obs::CurrentQueryId();
      entry.latency_us = elapsed_us;
      entry.source = "(request over deadline)";
      entry.events.push_back("timeout");
      slow_log.Record(std::move(entry));
    }
    Send(sock, FrameKind::kError,
         EncodeError(Status::IoError(
             "request exceeded the " +
             std::to_string(options_.request_timeout_ms) + "ms deadline")));
    return false;
  }
  if (!Send(sock, response_kind, response)) return false;
  return !close;
}

ServerStatsReply Server::BuildServerStats(uint64_t query_id) const {
  auto& reg = obs::MetricsRegistry::Global();
  ServerStatsReply reply;
  uint64_t now_us = NowMicros();
  reply.uptime_us = now_us - start_us_;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    reply.sessions_served = sessions_served_;
    reply.active_sessions = static_cast<uint32_t>(active_);
  }
  reply.queries = reg.GetCounter("exec.queries")->value();
  reply.sheds = reg.GetCounter("net.sheds")->value();
  reply.slow_logged = obs::SlowQueryLog::Global().total_logged();
  reply.query_latency = reg.GetHistogram("exec.query_us")->Snapshot();
  {
    std::lock_guard<std::mutex> lock(info_mutex_);
    for (const auto& [id, info] : session_info_) {
      ServerSessionInfo s;
      s.id = id;
      s.peer = info.peer;
      s.current_query = info.current_query;
      s.busy = info.busy;
      s.queries = info.queries;
      s.last_latency_us = info.last_latency_us;
      s.idle_ms =
          info.last_active_us == 0 || info.busy
              ? 0
              : (now_us - std::min(info.last_active_us, now_us)) / 1000;
      reply.sessions.push_back(std::move(s));
    }
  }
  reply.slow_log = obs::SlowQueryLog::Global().Lines();
  if (obs::Tracer::Global().enabled() || query_id != 0) {
    reply.trace = obs::Tracer::Global().Render(query_id);
  }
  return reply;
}

void Server::RunSession(uint64_t session_id, Socket sock) {
  // Failpoint `server.session`: fail the session right after accept —
  // `error` answers with an Error frame and closes, `abort` kills the
  // whole process mid-session (crash-recovery drills).
  static fault::Failpoint* fp_session =
      fault::FaultRegistry::Global().Get("server.session");

  NetMetrics& metrics = NetMetrics::Get();
  lang::Interpreter interp(db_, options_.interpreter);
  SessionContext ctx;
  ctx.id = session_id;
  {
    std::lock_guard<std::mutex> lock(info_mutex_);
    SessionInfo& info = session_info_[session_id];
    info.peer = "(pre-handshake)";
    info.last_active_us = NowMicros();
  }
  int idle_ms = 0;

  Status session_fault = fault::InjectIfArmed(fp_session);
  if (!session_fault.ok()) {
    metrics.request_errors->Inc();
    Send(sock, FrameKind::kError, EncodeError(session_fault));
  }

  while (session_fault.ok() && !draining()) {
    Result<bool> readable = sock.WaitReadable(kPollSliceMs);
    if (!readable.ok()) break;
    if (!*readable) {
      idle_ms += kPollSliceMs;
      if (options_.idle_timeout_ms > 0 && idle_ms >= options_.idle_timeout_ms) {
        metrics.idle_reaped->Inc();
        break;
      }
      continue;
    }
    idle_ms = 0;
    // A readable socket either holds a frame or an EOF; the remaining
    // reads are bounded by the request deadline (slow-loris protection).
    Result<Frame> frame =
        ReadFrame(sock, WireLimits{options_.max_frame_bytes},
                  options_.request_timeout_ms);
    if (!frame.ok()) {
      // Framing is lost (or the peer closed): report if the socket still
      // works, then drop the connection.
      if (frame.status().code() != StatusCode::kIoError) {
        metrics.request_errors->Inc();
        Send(sock, FrameKind::kError, EncodeError(frame.status()));
      }
      break;
    }
    metrics.bytes_in->Inc(kFrameHeaderBytes + frame->payload.size());
    if (!HandleFrame(ctx, interp, *frame, sock)) break;
  }

  sock.Close();
  metrics.active->Add(-1);
  {
    std::lock_guard<std::mutex> lock(info_mutex_);
    session_info_.erase(session_id);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  --active_;
  finished_.push_back(session_id);
  cv_.notify_all();
}

}  // namespace net
}  // namespace mra
