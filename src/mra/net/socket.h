// Thin RAII wrappers over POSIX TCP sockets: a connected stream socket
// with timeout-aware exact-size reads, and a listener with poll-based
// accept so server threads can notice a shutdown flag between waits.
// Everything reports failures through Status — no exceptions, no errno
// leaks past this layer.

#ifndef MRA_NET_SOCKET_H_
#define MRA_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "mra/common/result.h"

namespace mra {
namespace net {

/// A connected TCP stream socket (move-only; closes on destruction).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to host:port (numeric or resolvable host).  SIGPIPE is
  /// disabled per-send, and TCP_NODELAY is set: frames are whole logical
  /// messages, so Nagle only adds latency.
  static Result<Socket> Connect(const std::string& host, uint16_t port);

  /// Writes all of `data`, retrying short writes.
  Status SendAll(std::string_view data);

  /// Reads exactly `n` bytes.  `timeout_ms` bounds the wait for *each*
  /// chunk (< 0 blocks indefinitely); an expired wait is IoError
  /// "timed out", a peer close mid-read is IoError "closed".
  Result<std::string> RecvExact(size_t n, int timeout_ms);

  /// Waits until the socket is readable (data or EOF): true = readable,
  /// false = the timeout elapsed with nothing to read.
  Result<bool> WaitReadable(int timeout_ms);

  /// Half-closes both directions, unblocking any reader on the peer.
  void ShutdownBoth();

  void Close();
  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

/// A listening TCP socket (move-only; closes on destruction).
class Listener {
 public:
  Listener() = default;
  ~Listener();

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds host:port and listens.  Port 0 picks an ephemeral port;
  /// `port()` reports the resolved one.  `backlog` is the kernel accept
  /// queue bound — the server's backpressure buffer.
  static Result<Listener> Bind(const std::string& host, uint16_t port,
                               int backlog);

  /// Waits for a pending connection: true = Accept() will not block.
  Result<bool> WaitAcceptable(int timeout_ms);

  /// Accepts one pending connection (call after WaitAcceptable).
  Result<Socket> Accept();

  uint16_t port() const { return port_; }
  bool valid() const { return fd_ >= 0; }

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace net
}  // namespace mra

#endif  // MRA_NET_SOCKET_H_
