#include "mra/net/socket.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "mra/fault/failpoint.h"

namespace mra {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

// poll() one fd for POLLIN; true = readable, false = timeout.
Result<bool> PollIn(int fd, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  pfd.revents = 0;
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("poll");
  if (rc == 0) return false;
  if (pfd.revents & POLLNVAL) return Status::IoError("poll: closed fd");
  return true;
}

}  // namespace

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Socket> Socket::Connect(const std::string& host, uint16_t port) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* info = nullptr;
  std::string port_str = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &info);
  if (rc != 0) {
    return Status::IoError("cannot resolve " + host + ": " +
                           ::gai_strerror(rc));
  }
  Status last = Status::IoError("no addresses for " + host);
  for (struct addrinfo* ai = info; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ::freeaddrinfo(info);
      return Socket(fd);
    }
    last = Errno("connect to " + host + ":" + port_str);
    ::close(fd);
  }
  ::freeaddrinfo(info);
  return last;
}

Status Socket::SendAll(std::string_view data) {
  // Failpoint `net.send`: `error` fails before any byte leaves, `torn(N)`
  // sends only the first N bytes and then fails — the peer sees a
  // truncated frame, exactly as if this endpoint died mid-send.
  static fault::Failpoint* fp_send =
      fault::FaultRegistry::Global().Get("net.send");

  if (fd_ < 0) return Status::IoError("send on closed socket");
  fault::Failpoint::Outcome fo = fp_send->Hit();
  if (fo.kind == fault::ActionKind::kError) return fp_send->InjectedError();
  bool torn = fo.kind == fault::ActionKind::kTorn;
  if (torn) data = data.substr(0, std::min<size_t>(fo.keep_bytes, data.size()));
  size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a peer that vanished mid-response must surface as a
    // Status, not kill the server process with SIGPIPE.
    ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  // A torn send delivers its prefix, then reports the transport failure.
  return torn ? fp_send->InjectedError() : Status::OK();
}

Result<std::string> Socket::RecvExact(size_t n, int timeout_ms) {
  // Failpoint `net.recv`: `error` fails the read (the connection state is
  // then unknown, as after a real transport fault); `delay(MS)` stalls.
  static fault::Failpoint* fp_recv =
      fault::FaultRegistry::Global().Get("net.recv");

  if (fd_ < 0) return Status::IoError("recv on closed socket");
  MRA_RETURN_IF_ERROR(fault::InjectIfArmed(fp_recv));
  std::string out;
  out.resize(n);
  size_t got = 0;
  while (got < n) {
    MRA_ASSIGN_OR_RETURN(bool readable, PollIn(fd_, timeout_ms));
    if (!readable) return Status::IoError("recv timed out");
    ssize_t r = ::recv(fd_, out.data() + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (r == 0) return Status::IoError("connection closed by peer");
    got += static_cast<size_t>(r);
  }
  return out;
}

Result<bool> Socket::WaitReadable(int timeout_ms) {
  if (fd_ < 0) return Status::IoError("wait on closed socket");
  return PollIn(fd_, timeout_ms);
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::~Listener() { Close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

Result<Listener> Listener::Bind(const std::string& host, uint16_t port,
                                int backlog) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  struct addrinfo* info = nullptr;
  std::string port_str = std::to_string(port);
  int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                         port_str.c_str(), &hints, &info);
  if (rc != 0) {
    return Status::IoError("cannot resolve " + host + ": " +
                           ::gai_strerror(rc));
  }
  Status last = Status::IoError("no addresses to bind for " + host);
  for (struct addrinfo* ai = info; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
        ::listen(fd, backlog) != 0) {
      last = Errno("bind/listen on " + host + ":" + port_str);
      ::close(fd);
      continue;
    }
    // Recover the actual port (meaningful when binding port 0).
    struct sockaddr_storage addr;
    socklen_t addr_len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      &addr_len) != 0) {
      last = Errno("getsockname");
      ::close(fd);
      continue;
    }
    Listener out;
    out.fd_ = fd;
    if (addr.ss_family == AF_INET) {
      out.port_ = ntohs(reinterpret_cast<struct sockaddr_in*>(&addr)->sin_port);
    } else {
      out.port_ =
          ntohs(reinterpret_cast<struct sockaddr_in6*>(&addr)->sin6_port);
    }
    ::freeaddrinfo(info);
    return out;
  }
  ::freeaddrinfo(info);
  return last;
}

Result<bool> Listener::WaitAcceptable(int timeout_ms) {
  if (fd_ < 0) return Status::IoError("wait on closed listener");
  return PollIn(fd_, timeout_ms);
}

Result<Socket> Listener::Accept() {
  if (fd_ < 0) return Status::IoError("accept on closed listener");
  int fd;
  do {
    fd = ::accept(fd_, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Errno("accept");
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace net
}  // namespace mra
